package rewrite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// truthOf evaluates a truth table at a minterm.
func truthAt(tt uint64, m int) bool { return tt>>uint(m)&1 == 1 }

// replicate builds the 64-bit replicated table from the low 2^nvars bits.
func replicate(tt uint64, nvars int) uint64 {
	width := 1 << uint(nvars)
	if width >= 64 {
		return tt
	}
	tt &= 1<<uint(width) - 1
	for width < 64 {
		tt |= tt << uint(width)
		width *= 2
	}
	return tt
}

func TestVarTruth(t *testing.T) {
	for i := 0; i < 6; i++ {
		for m := 0; m < 64; m++ {
			want := m>>uint(i)&1 == 1
			if truthAt(VarTruth(i), m) != want {
				t.Fatalf("VarTruth(%d) wrong at minterm %d", i, m)
			}
		}
	}
}

func TestCofactorsAndDepends(t *testing.T) {
	// f = x0 & x1 over 2 vars, replicated.
	f := VarTruth(0) & VarTruth(1)
	if Cof1(f, 0) != VarTruth(1) {
		t.Fatal("Cof1 wrong")
	}
	if Cof0(f, 0) != 0 {
		t.Fatal("Cof0 wrong")
	}
	if !Depends(f, 0) || !Depends(f, 1) || Depends(f, 2) {
		t.Fatal("Depends wrong")
	}
}

func TestOnes(t *testing.T) {
	f := VarTruth(0) & VarTruth(1)
	if Ones(f, 2) != 1 {
		t.Fatalf("Ones = %d, want 1", Ones(f, 2))
	}
	if Ones(f, 3) != 2 {
		t.Fatalf("Ones over 3 vars = %d, want 2", Ones(f, 3))
	}
}

func TestCubeTruth(t *testing.T) {
	c := Cube{Pos: 0b001, Neg: 0b010} // x0 & !x1
	want := VarTruth(0) &^ VarTruth(1)
	if c.Truth() != want {
		t.Fatal("cube truth wrong")
	}
	if c.NumLits() != 2 {
		t.Fatal("NumLits wrong")
	}
	if (Cube{}).Truth() != ^uint64(0) {
		t.Fatal("empty cube must be tautology")
	}
}

// coverTruth ORs the cube truths.
func coverTruth(cover []Cube) uint64 {
	var tt uint64
	for _, c := range cover {
		tt |= c.Truth()
	}
	return tt
}

// Property: Isop(tt, tt) is an exact, irredundant-by-construction cover.
func TestIsopExactRandom(t *testing.T) {
	f := func(raw uint64, nv uint8) bool {
		nvars := int(nv%5) + 2 // 2..6
		tt := replicate(raw, nvars)
		cover, ftt := Isop(tt, tt, nvars)
		return ftt == tt && coverTruth(cover) == tt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIsopIntervalRandom(t *testing.T) {
	// With L <= U, the cover must satisfy L <= cover <= U.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		nvars := 2 + rng.Intn(5)
		l := replicate(rng.Uint64(), nvars)
		u := l | replicate(rng.Uint64(), nvars)
		cover, ftt := Isop(l, u, nvars)
		ct := coverTruth(cover)
		if ct != ftt {
			t.Fatalf("reported truth differs from cover truth")
		}
		if l&^ct != 0 {
			t.Fatalf("cover misses lower-bound minterms")
		}
		if ct&^u != 0 {
			t.Fatalf("cover exceeds upper bound")
		}
	}
}

func TestIsopEdgeCases(t *testing.T) {
	if cover, _ := Isop(0, 0, 4); len(cover) != 0 {
		t.Fatal("empty function should have empty cover")
	}
	cover, ftt := Isop(^uint64(0), ^uint64(0), 4)
	if len(cover) != 1 || cover[0].NumLits() != 0 || ftt != ^uint64(0) {
		t.Fatal("tautology should be a single empty cube")
	}
	// Single minterm of 6 vars: one cube with 6 literals.
	tt := uint64(1) // minterm 0: all vars 0
	cover, _ = Isop(tt, tt, 6)
	if len(cover) != 1 || cover[0].NumLits() != 6 {
		t.Fatalf("single minterm: %+v", cover)
	}
}

func TestCoverCost(t *testing.T) {
	if CoverCost(nil) != 0 {
		t.Fatal("empty cover cost")
	}
	// Two cubes of 2 literals: 2 ANDs... (1 node each) + 1 OR = 3.
	cov := []Cube{{Pos: 0b11}, {Neg: 0b11}}
	if CoverCost(cov) != 3 {
		t.Fatalf("cost = %d, want 3", CoverCost(cov))
	}
}
