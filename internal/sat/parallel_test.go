package sat

import (
	"context"
	"math/rand"
	"testing"

	"obfuslock/internal/obs"
)

// random3SAT adds a deterministic random 3-SAT formula (distinct
// variables per clause) to the solver. Around ratio 4.5 the instances
// mix satisfiable and unsatisfiable outcomes and are non-trivial for
// unit propagation.
func random3SAT(s *Solver, vars, clauses int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < vars; i++ {
		s.NewVar()
	}
	for i := 0; i < clauses; i++ {
		a := rng.Intn(vars)
		b := rng.Intn(vars)
		for b == a {
			b = rng.Intn(vars)
		}
		c := rng.Intn(vars)
		for c == a || c == b {
			c = rng.Intn(vars)
		}
		s.AddClause(MkLit(a, rng.Intn(2) == 0), MkLit(b, rng.Intn(2) == 0), MkLit(c, rng.Intn(2) == 0))
	}
}

// TestSolveParallelMatchesSolve pins the portfolio's central contract:
// at any worker count the status and, on Sat, the full model are
// byte-identical to the sequential solver.
func TestSolveParallelMatchesSolve(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seq := New()
		random3SAT(seq, 60, 280, seed)
		want := seq.Solve()

		for _, workers := range []int{2, 4} {
			par := New()
			random3SAT(par, 60, 280, seed)
			if len(par.clauses) < parMinClauses {
				t.Fatalf("seed %d: instance below the parallel floor (%d clauses); test would be vacuous", seed, len(par.clauses))
			}
			got := par.SolveParallel(context.Background(), workers)
			if got != want {
				t.Fatalf("seed %d workers %d: SolveParallel %v, Solve %v", seed, workers, got, want)
			}
			if want == Sat {
				sm, pm := seq.Model(), par.Model()
				for v := range sm {
					if sm[v] != pm[v] {
						t.Fatalf("seed %d workers %d: model differs at var %d", seed, workers, v)
					}
				}
			}
		}
	}
}

// TestSolveParallelPigeonhole drives a genuinely multi-epoch UNSAT
// instance through the portfolio and checks the refutation plus the
// portfolio telemetry counters.
func TestSolveParallelPigeonhole(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8)
	if len(s.clauses) < parMinClauses {
		t.Fatalf("PHP(9,8) below the parallel floor (%d clauses)", len(s.clauses))
	}
	reg := obs.NewRegistry()
	s.SetTelemetry(reg)
	if st := s.SolveParallel(context.Background(), 4); st != Unsat {
		t.Fatalf("PHP(9,8): got %v", st)
	}
	if !s.ok {
		// Root refutation: ok must have been cleared no matter which
		// worker found it.
		if st := s.Solve(); st != Unsat {
			t.Fatalf("solver must stay UNSAT, got %v", st)
		}
	}
	if v := reg.Counter(MetricParEpochs).Value(); v < 1 {
		t.Fatalf("expected at least one epoch barrier, got %d", v)
	}
}

// TestSolveParallelDeterministic runs the same instance twice at a
// fixed worker count: statuses and aggregate work counters must match
// exactly (the portfolio's schedule is conflict-counted, not
// wall-clock-counted).
func TestSolveParallelDeterministic(t *testing.T) {
	run := func() (Status, Stats) {
		s := New()
		pigeonhole(s, 9, 8)
		st := s.SolveParallel(context.Background(), 4)
		return st, s.Stats()
	}
	st1, stats1 := run()
	st2, stats2 := run()
	if st1 != st2 {
		t.Fatalf("status differs across runs: %v vs %v", st1, st2)
	}
	if stats1 != stats2 {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", stats1, stats2)
	}
}

// TestSolveParallelIncremental interleaves clause additions and solves:
// the parallel solver must track the sequential one call for call, and
// an assumption-level UNSAT must not poison later solves.
func TestSolveParallelIncremental(t *testing.T) {
	seq := New()
	par := New()
	random3SAT(seq, 60, 270, 42)
	random3SAT(par, 60, 270, 42)

	a := MkLit(3, false)
	for round := 0; round < 3; round++ {
		want := seq.Solve(a)
		got := par.SolveParallel(context.Background(), 4, a)
		if got != want {
			t.Fatalf("round %d: parallel %v, sequential %v", round, got, want)
		}
		if want == Sat {
			sm, pm := seq.Model(), par.Model()
			for v := range sm {
				if sm[v] != pm[v] {
					t.Fatalf("round %d: model differs at var %d", round, v)
				}
			}
			// Block the current model's projection on ten variables to
			// force new search work next round.
			var block []Lit
			for v := 0; v < 10; v++ {
				block = append(block, MkLit(v, sm[v]))
			}
			seq.AddClause(block...)
			par.AddClause(block...)
		}
	}
}

// TestSolvePreCancelledContext is the regression test for the
// pre-cancelled-context fix: both Solve and SolveParallel must return
// Unknown immediately instead of burning a restart round.
func TestSolvePreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	s := New()
	random3SAT(s, 60, 280, 7)
	s.SetContext(ctx)
	before := s.Stats()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("Solve on pre-cancelled context: got %v, want Unknown", st)
	}
	if d := s.Stats().Sub(before); d.Conflicts != 0 || d.Decisions != 0 {
		t.Fatalf("Solve did work under a pre-cancelled context: %+v", d)
	}

	p := New()
	random3SAT(p, 60, 280, 7)
	if st := p.SolveParallel(ctx, 4); st != Unknown {
		t.Fatalf("SolveParallel on pre-cancelled context: got %v, want Unknown", st)
	}
	if d := p.Stats(); d.Conflicts != 0 || d.Decisions != 0 {
		t.Fatalf("SolveParallel did work under a pre-cancelled context: %+v", d)
	}
	// The solver recovers once the hook is cleared.
	s.SetContext(nil)
	if st := s.Solve(); st == Unknown {
		t.Fatal("solver must solve normally after the cancelled context is removed")
	}
}

// TestSolveParallelBudgetFallsBack pins the budget interaction: a
// conflict-limited solver must behave exactly like Solve (Unknown on
// exhaustion), since racing an unbounded helper against a bounded
// parent would make the status depend on the worker count.
func TestSolveParallelBudgetFallsBack(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8)
	s.SetBudget(10)
	if st := s.SolveParallel(context.Background(), 4); st != Unknown {
		t.Fatalf("budgeted parallel solve: got %v, want Unknown", st)
	}
	if !s.exhausted {
		t.Fatal("budgeted solve must report exhaustion")
	}
}
