package techmap

import (
	"context"
	"testing"

	"obfuslock/internal/aig"
	"obfuslock/internal/core"
	"obfuslock/internal/netlistgen"
)

func TestMapCountsCells(t *testing.T) {
	g := aig.New()
	in := g.AddInputs(3)
	ab := g.And(in[0], in[1])
	x := g.Xor(ab, in[2])
	mj := g.Maj(in[0], in[1], in[2])
	g.AddOutput(x, "f")
	g.AddOutput(mj, "g")
	m := Map(g)
	if m.CellCount[CellAnd.Name] != 1 {
		t.Fatalf("AND cells = %d, want 1", m.CellCount[CellAnd.Name])
	}
	if m.CellCount[CellXor.Name] != 1 {
		t.Fatalf("XOR cells = %d, want 1", m.CellCount[CellXor.Name])
	}
	if m.CellCount[CellMaj.Name] != 1 {
		t.Fatalf("MAJ cells = %d, want 1", m.CellCount[CellMaj.Name])
	}
	if m.NumCells != 3 {
		t.Fatalf("cells = %d, want 3", m.NumCells)
	}
}

func TestMapPolarityChoice(t *testing.T) {
	// A node used only complemented should map to the inverting cell with
	// no extra inverter.
	g := aig.New()
	in := g.AddInputs(3)
	ab := g.And(in[0], in[1])
	g.AddOutput(g.And(ab.Not(), in[2]), "f") // ab used complemented only
	m := Map(g)
	if m.CellCount[CellNand.Name] != 1 {
		t.Fatalf("expected 1 NAND, got %+v", m.CellCount)
	}
	if m.CellCount[CellInv.Name] != 0 {
		t.Fatalf("expected no inverters, got %+v", m.CellCount)
	}
}

func TestMapInverterSharing(t *testing.T) {
	// One net used complemented by two fanouts: a single inverter.
	g := aig.New()
	in := g.AddInputs(3)
	ab := g.And(in[0], in[1])
	g.AddOutput(g.And(ab.Not(), in[2]), "f")
	g.AddOutput(g.Xor(ab.Not(), in[2]), "g")
	g.AddOutput(ab, "h") // positive use too: forces a polarity + INV
	m := Map(g)
	if m.CellCount[CellInv.Name] != 1 {
		t.Fatalf("expected exactly 1 inverter, got %+v", m.CellCount)
	}
}

func TestAnalyzeMonotoneInSize(t *testing.T) {
	small := netlistgen.Multiplier(4)
	big := netlistgen.Multiplier(8)
	rs := Analyze(small, 16, 1)
	rb := Analyze(big, 16, 1)
	if rb.AreaUM2 <= rs.AreaUM2 || rb.TotalUW <= rs.TotalUW || rb.NumCells <= rs.NumCells {
		t.Fatalf("bigger multiplier must cost more: %v vs %v", rs, rb)
	}
	if rb.CriticalPathPS <= rs.CriticalPathPS {
		t.Fatalf("bigger multiplier must be slower: %v vs %v", rs, rb)
	}
	if rs.DynamicUW <= 0 || rs.LeakageUW <= 0 {
		t.Fatalf("power must be positive: %v", rs)
	}
}

func TestCompareOverheadSigns(t *testing.T) {
	orig := Analyze(netlistgen.Multiplier(5), 16, 1)
	// Same circuit: zero overhead.
	ov := Compare(orig, orig)
	if ov.AreaPct != 0 || ov.PowerPct != 0 || ov.DelayPct != 0 {
		t.Fatalf("self-comparison must be zero: %+v", ov)
	}
}

func TestObfusLockOverheadModest(t *testing.T) {
	c := netlistgen.AdderCmp(12)
	opt := core.DefaultOptions()
	opt.TargetSkewBits = 10
	opt.Seed = 31
	opt.AllowDirect = false
	res, err := core.Lock(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	orig := Analyze(c, 16, 2)
	locked := Analyze(res.Locked.Enc, 16, 2)
	ov := Compare(orig, locked)
	if ov.AreaPct < 0 {
		t.Fatalf("locked netlist smaller than original? %+v", ov)
	}
	// On a small benchmark the relative overhead is large; just bound it
	// sanely — Fig. 5 percentages are reproduced on the full-size suite.
	if ov.AreaPct > 400 {
		t.Fatalf("area overhead implausibly high: %+v", ov)
	}
	t.Logf("overhead on small adder: %+v", ov)
}
