package netlistgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"obfuslock/internal/aig"
)

func evalWord(g *aig.AIG, pattern []bool, lo, n int) uint64 {
	out := g.Eval(pattern)
	var w uint64
	for i := 0; i < n; i++ {
		if out[lo+i] {
			w |= 1 << uint(i)
		}
	}
	return w
}

func setWord(pattern []bool, lo, n int, v uint64) {
	for i := 0; i < n; i++ {
		pattern[lo+i] = v>>uint(i)&1 == 1
	}
}

func TestMultiplierCorrect(t *testing.T) {
	n := 6
	g := Multiplier(n)
	if g.NumInputs() != 2*n || g.NumOutputs() != 2*n {
		t.Fatalf("interface: %v", g.Stats())
	}
	f := func(a, b uint16) bool {
		av := uint64(a) & (1<<uint(n) - 1)
		bv := uint64(b) & (1<<uint(n) - 1)
		pat := make([]bool, 2*n)
		setWord(pat, 0, n, av)
		setWord(pat, n, n, bv)
		return evalWord(g, pat, 0, 2*n) == av*bv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Corner cases.
	for _, c := range [][2]uint64{{0, 0}, {63, 63}, {1, 63}, {32, 2}} {
		pat := make([]bool, 2*n)
		setWord(pat, 0, n, c[0])
		setWord(pat, n, n, c[1])
		if got := evalWord(g, pat, 0, 2*n); got != c[0]*c[1] {
			t.Fatalf("%d*%d = %d, got %d", c[0], c[1], c[0]*c[1], got)
		}
	}
}

func TestSquarerCorrect(t *testing.T) {
	n := 7
	g := Squarer(n)
	f := func(a uint16) bool {
		av := uint64(a) & (1<<uint(n) - 1)
		pat := make([]bool, n)
		setWord(pat, 0, n, av)
		return evalWord(g, pat, 0, 2*n) == av*av
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 128}); err != nil {
		t.Error(err)
	}
}

func TestMaxCorrect(t *testing.T) {
	k, w := 4, 8
	g := Max(k, w)
	f := func(x0, x1, x2, x3 uint8) bool {
		vals := []uint64{uint64(x0), uint64(x1), uint64(x2), uint64(x3)}
		pat := make([]bool, k*w)
		for i, v := range vals {
			setWord(pat, i*w, w, v)
		}
		want := vals[0]
		for _, v := range vals[1:] {
			if v > want {
				want = v
			}
		}
		return evalWord(g, pat, 0, w) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAdderCmpCorrect(t *testing.T) {
	n := 8
	g := AdderCmp(n)
	f := func(a, b uint8, cin bool) bool {
		pat := make([]bool, 2*n+1)
		setWord(pat, 0, n, uint64(a))
		setWord(pat, n, n, uint64(b))
		pat[2*n] = cin
		out := g.Eval(pat)
		var sum uint64
		for i := 0; i < n; i++ {
			if out[i] {
				sum |= 1 << uint(i)
			}
		}
		c := uint64(0)
		if cin {
			c = 1
		}
		wantSum := uint64(a) + uint64(b) + c
		if sum != wantSum&(1<<uint(n)-1) {
			return false
		}
		if out[n] != (wantSum>>uint(n)&1 == 1) {
			return false
		}
		// Difference bits follow cout.
		var diff uint64
		for i := 0; i < n; i++ {
			if out[n+1+i] {
				diff |= 1 << uint(i)
			}
		}
		if diff != (uint64(a)-uint64(b))&(1<<uint(n)-1) {
			return false
		}
		if out[2*n+1] != (a < b) {
			return false
		}
		if out[2*n+2] != (a == b) {
			return false
		}
		par := false
		for i := 0; i < n; i++ {
			if (uint64(a)>>uint(i)&1 == 1) != (uint64(b)>>uint(i)&1 == 1) {
				par = !par
			}
		}
		return out[2*n+3] == par
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestControlDeterministicAndSized(t *testing.T) {
	spec := ControlSpec{Name: "t", Inputs: 40, Outputs: 16, TargetNodes: 500, Seed: 99}
	g1 := Control(spec)
	g2 := Control(spec)
	if g1.NumNodes() != g2.NumNodes() || g1.MaxVar() != g2.MaxVar() {
		t.Fatal("Control is not deterministic for a fixed seed")
	}
	if g1.NumInputs() != 40 || g1.NumOutputs() != 16 {
		t.Fatalf("interface: %v", g1.Stats())
	}
	if g1.NumNodes() < 500 || g1.NumNodes() > 600 {
		t.Fatalf("node count %d not near target 500", g1.NumNodes())
	}
	// Same functional output for equal seeds.
	rng := rand.New(rand.NewSource(1))
	pat := make([]bool, 40)
	for i := range pat {
		pat[i] = rng.Intn(2) == 1
	}
	o1, o2 := g1.Eval(pat), g2.Eval(pat)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("same-seed circuits differ functionally")
		}
	}
	// Different seed must give a different circuit (overwhelmingly likely).
	spec.Seed = 100
	g3 := Control(spec)
	diff := g3.NumNodes() != g1.NumNodes()
	if !diff {
		o3 := g3.Eval(pat)
		for i := range o1 {
			if o1[i] != o3[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestCatalogShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog is large")
	}
	for _, b := range Catalog() {
		g := b.Build()
		n := g.NumNodes()
		if n < b.PaperNodes/4 || n > b.PaperNodes*4 {
			t.Errorf("%s: %d nodes, paper %d — out of range", b.Name, n, b.PaperNodes)
		}
		if g.NumInputs() == 0 || g.NumOutputs() == 0 {
			t.Errorf("%s: empty interface", b.Name)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("c6288"); !ok {
		t.Fatal("c6288 missing from catalog")
	}
	if _, ok := Lookup("nonesuch"); ok {
		t.Fatal("bogus lookup succeeded")
	}
}

func TestSmallSuiteBuilds(t *testing.T) {
	for _, b := range SmallSuite() {
		g := b.Build()
		if g.NumNodes() == 0 {
			t.Errorf("%s: empty circuit", b.Name)
		}
	}
}
