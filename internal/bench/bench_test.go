package bench

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"

	"obfuslock/internal/aig"
	"obfuslock/internal/cec"
)

const sampleNetlist = `
# a small sample
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
OUTPUT(g)
t1 = AND(a, b)
t2 = NOT(c)
t3 = OR(t1, t2)
f = NAND(t3, a)
g = XOR(a, b)
`

func TestReadSample(t *testing.T) {
	g, err := Read(strings.NewReader(sampleNetlist))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumInputs() != 3 || g.NumOutputs() != 2 {
		t.Fatalf("interface: %v", g.Stats())
	}
	// f = !((a&b | !c) & a), g = a^b — check all 8 patterns.
	for m := 0; m < 8; m++ {
		a, b, c := m&1 == 1, m>>1&1 == 1, m>>2&1 == 1
		out := g.Eval([]bool{a, b, c})
		wantF := !(((a && b) || !c) && a)
		wantG := a != b
		if out[0] != wantF || out[1] != wantG {
			t.Fatalf("minterm %d: got %v want [%v %v]", m, out, wantF, wantG)
		}
	}
}

func TestReadOutOfOrder(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(f)
f = AND(t, a)
t = OR(a, b)
`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out := g.Eval([]bool{true, false})
	if !out[0] {
		t.Fatal("out-of-order netlist misparsed")
	}
}

func TestReadConstantsAndWideGates(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(f)
OUTPUT(k)
one = vdd
zero = gnd
w = AND(a, b, c, d)
x = NOR(a, b, c)
y = XNOR(a, b, c)
f = OR(w, x, y, zero)
k = BUF(one)
`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 16; m++ {
		pat := []bool{m&1 == 1, m>>1&1 == 1, m>>2&1 == 1, m>>3&1 == 1}
		out := g.Eval(pat)
		w := pat[0] && pat[1] && pat[2] && pat[3]
		x := !(pat[0] || pat[1] || pat[2])
		y := !((pat[0] != pat[1]) != pat[2])
		if out[0] != (w || x || y) {
			t.Fatalf("minterm %d wrong", m)
		}
		if !out[1] {
			t.Fatal("vdd output must be constant 1")
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"cycle", "INPUT(a)\nOUTPUT(f)\nf = AND(g, a)\ng = AND(f, a)\n"},
		{"missing driver", "INPUT(a)\nOUTPUT(f)\nf = AND(x, a)\n"},
		{"undriven output", "INPUT(a)\nOUTPUT(f)\n"},
		{"bad gate", "INPUT(a)\nOUTPUT(f)\nf = FROB(a)\n"},
		{"malformed", "INPUT(a)\nOUTPUT(f)\nf AND a\n"},
		{"dup input", "INPUT(a)\nINPUT(a)\nOUTPUT(f)\nf = BUF(a)\n"},
		{"dup signal", "INPUT(a)\nOUTPUT(f)\nf = BUF(a)\nf = NOT(a)\n"},
		{"maj arity", "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = MAJ(a, b)\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func randomGraph(rng *rand.Rand, nin, nnodes int) *aig.AIG {
	g := aig.New()
	lits := g.AddInputs(nin)
	for i := 0; i < nnodes; i++ {
		pick := func() aig.Lit {
			l := lits[rng.Intn(len(lits))]
			if rng.Intn(2) == 0 {
				l = l.Not()
			}
			return l
		}
		switch rng.Intn(4) {
		case 0, 1:
			lits = append(lits, g.And(pick(), pick()))
		case 2:
			lits = append(lits, g.Xor(pick(), pick()))
		default:
			lits = append(lits, g.Maj(pick(), pick(), pick()))
		}
	}
	for i := 0; i < 3; i++ {
		g.AddOutput(lits[len(lits)-1-i], "")
	}
	return g
}

// Round trip: Write then Read must preserve the function exactly.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 5+rng.Intn(4), 30+rng.Intn(40))
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		r, err := cec.Check(context.Background(), g, back, cec.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !r.Equivalent {
			t.Fatalf("trial %d: round trip not equivalent (cex %v)", trial, r.Counterexample)
		}
	}
}

func TestRoundTripConstOutputs(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	g.AddOutput(aig.ConstTrue, "t")
	g.AddOutput(aig.ConstFalse, "z")
	g.AddOutput(a.Not(), "na")
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := back.Eval([]bool{true})
	if !out[0] || out[1] || out[2] {
		t.Fatalf("const round trip wrong: %v", out)
	}
}

func TestReadOversizedLine(t *testing.T) {
	// A single gate line larger than the 1 MiB scanner buffer must fail
	// with the dedicated diagnostic, not bufio's bare "token too long".
	var sb strings.Builder
	sb.WriteString("INPUT(a)\nOUTPUT(f)\n")
	sb.WriteString("f = AND(a")
	for sb.Len() < 1<<20+4096 {
		sb.WriteString(", a")
	}
	sb.WriteString(")\n")
	_, err := Read(strings.NewReader(sb.String()))
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "1 MiB line buffer") || !strings.Contains(msg, "line 3") {
		t.Fatalf("want a 'line 3 exceeds the 1 MiB line buffer' diagnostic, got: %v", err)
	}
}
