package sat

import "testing"

// The propagate hot path must be allocation-free once the solver's
// buffers are warm: an implication chain solved under an assumption
// exercises watcher traversal and trail growth over hundreds of
// variables with zero conflicts.
func TestPropagateAllocFree(t *testing.T) {
	s := New()
	const n = 400
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		s.AddClause(MkLit(i, true), MkLit(i+1, false))
	}
	a := MkLit(0, false)
	if s.Solve(a) != Sat {
		t.Fatal("chain should be SAT")
	}
	avg := testing.AllocsPerRun(20, func() {
		if s.Solve(a) != Sat {
			t.Fatal("chain should stay SAT")
		}
	})
	if avg != 0 {
		t.Errorf("propagate-only solve allocates %.1f times per run, want 0", avg)
	}
}

// The analyze hot path (conflict analysis, learnt recording, clause
// bumping, backtracking) must amortize to (near) zero allocations:
// random decision polarities defeat phase saving, so every measured
// solve replays genuine conflicts through the pooled analyze buffers
// and the clause arena. A regression to per-conflict or per-learnt heap
// allocation shows up as hundreds of allocations per run; the small
// allowance covers amortized arena and learnt-index growth.
func TestAnalyzeAllocAmortized(t *testing.T) {
	s := New()
	pigeonhole(s, 7, 7) // satisfiable, but with real search effort
	s.SetRandomPolarity(42)
	solve := func() {
		if s.Solve() != Sat {
			t.Fatal("PHP(7,7) should be SAT")
		}
	}
	// Warm every pool: scratch slices, arena headroom, watcher lists.
	for i := 0; i < 6; i++ {
		solve()
	}
	before := s.Stats()
	avg := testing.AllocsPerRun(30, solve)
	if d := s.Stats().Sub(before); d.Conflicts == 0 {
		t.Fatalf("workout produced no conflicts; the guard is not measuring analyze")
	}
	if avg > 2 {
		t.Errorf("conflict workout allocates %.1f times per run, want <= 2 amortized", avg)
	}
}
