// Command attack evaluates locked netlists against the attack suite, and
// regenerates the paper's experiments at full scale.
//
// Attack a locked design (key inputs named k0, k1, ...):
//
//	attack -enc locked.bench -oracle design.bench -attack sat -timeout 1m
//
// Regenerate experiments (full benchmark suite — hours at paper scale):
//
//	attack -table1 -skews 10,20,30 -timeout 10m
//	attack -table1 -small -workers 4 -det   # deterministic parallel sweep
//	attack -fig4
//	attack -fig5
//	attack -structural
//
// Experiment modes run on a worker pool (-workers, default GOMAXPROCS)
// with per-cell seeds derived from -seed, so the emitted tables are
// byte-identical at any worker count; -det additionally replaces
// wall-clock cells with stable markers so the whole output (and
// metrics.json) is byte-for-byte reproducible. Ctrl-C cancels the run
// cleanly through every layer down to the SAT solvers.
//
// Observability (see DESIGN.md "Observability"):
//
//	-trace out.jsonl   full span/event stream as JSON Lines
//	-progress          live one-line status on stderr
//	-pprof prefix      write <prefix>.cpu.pprof, <prefix>.heap.pprof and
//	                   <prefix>.allocs.pprof; spans label the profiles
//	-debug-addr addr   serve /metrics, /flight and /debug/pprof live
//	-ledger path       write a ledger.json run record at exit
//	-v                 print cumulative SAT-solver statistics
//	-metrics path      metrics.json written by -table1 (default metrics.json)
//
// Any telemetry flag arms a flight recorder — a ring of the most recent
// spans/events — dumped to stderr on SIGQUIT, panic, or when a single
// attack exhausts its budget without a key.
//
// The equivalence checks inside the removal and Valkyrie attacks run
// SAT-swept by default (-sweep, -sweep-words; see DESIGN.md "Equivalence
// checking & SAT sweeping"); -sweep=false forces the monolithic miter.
//
// Exit status is non-zero when a key-recovery attack returns no key, so
// scripted resilience sweeps can branch on the result.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"obfuslock"
	"obfuslock/internal/aig"
	"obfuslock/internal/attacks"
	"obfuslock/internal/bench"
	"obfuslock/internal/cec"
	"obfuslock/internal/cliflags"
	"obfuslock/internal/exec"
	"obfuslock/internal/experiments"
	"obfuslock/internal/locking"
	"obfuslock/internal/memo"
	"obfuslock/internal/netlistgen"
	"obfuslock/internal/obs"
	"obfuslock/internal/sat"
	"obfuslock/internal/simp"
)

func main() {
	encPath := flag.String("enc", "", "encrypted .bench netlist")
	oraclePath := flag.String("oracle", "", "original .bench netlist (the working chip)")
	attackName := flag.String("attack", "sat", "attack: sat, appsat, portfolio, sensitization, sps, removal, bypass, valkyrie, spi")
	timeout := flag.Duration("timeout", time.Minute, "attack timeout")
	maxIter := flag.Int("maxiter", 2048, "DIP iteration cap")
	seed := flag.Int64("seed", 1, "attack randomness seed")

	table1 := flag.Bool("table1", false, "regenerate Table I on the full suite")
	fig4 := flag.Bool("fig4", false, "regenerate Fig. 4 statistics (s9234)")
	fig5 := flag.Bool("fig5", false, "regenerate Fig. 5 overheads")
	structural := flag.Bool("structural", false, "regenerate the structural-attack evaluation")
	small := flag.Bool("small", false, "use the reduced-size suite for experiment modes")
	skews := flag.String("skews", "10,20,30", "comma-separated skewness levels for experiment modes")
	workers := flag.Int("workers", 0, "experiment parallelism (0: GOMAXPROCS)")
	det := flag.Bool("det", false, "deterministic sweep: no wall-clock cells or timeouts; output is byte-reproducible")
	sweepCEC := flag.Bool("sweep", true, "use SAT sweeping (fraig) for the equivalence checks of removal/valkyrie")
	sweepWords := flag.Int("sweep-words", 8, "64-pattern signature words seeding the sweep's equivalence classes")

	var solver cliflags.Solver
	var cacheFlags cliflags.Cache
	var tele cliflags.Telemetry
	solver.Register(flag.CommandLine)
	cacheFlags.Register(flag.CommandLine)
	tele.Register(flag.CommandLine)

	verbose := flag.Bool("v", false, "print cumulative SAT-solver statistics after the attack")
	metricsPath := flag.String("metrics", "metrics.json", "machine-readable output of -table1")
	flag.Parse()

	if err := validateFlags(*encPath, *oraclePath, *attackName, *table1, *fig4, *fig5, *structural); err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := cacheFlags.Validate(cliflags.Visited(flag.CommandLine)); err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		flag.Usage()
		os.Exit(2)
	}

	sess, err := tele.Start("attack")
	if err != nil {
		fatal(err)
	}
	defer sess.Finish()
	sess.ArmFlightDump()
	defer sess.PanicDump()
	tracer := sess.Tracer

	cache, err := cacheFlags.Open(tracer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		flag.Usage()
		os.Exit(2)
	}
	defer cache.Close()

	// writeLedger runs both on normal returns (deferred) and explicitly on
	// the non-zero exit paths, which bypass deferred calls via os.Exit.
	writeLedger := func() {
		if err := sess.WriteLedger(cache); err != nil {
			fmt.Fprintln(os.Stderr, "attack:", err)
		}
	}
	defer writeLedger()

	// Ctrl-C / SIGTERM cancels the context; every layer down to the SAT
	// solvers polls it, so the run winds down instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	suite := netlistgen.Catalog()
	if *small {
		suite = netlistgen.SmallSuite()
	}
	levels := parseSkews(*skews)
	sopt := solver.SimpOptions()
	budget := experiments.Budget{
		Timeout:       *timeout,
		MaxIterations: *maxIter,
		Workers:       *workers,
		Deterministic: *det,
		Simp:          sopt,
		DIPBatch:      solver.DIPBatch,
		SatWorkers:    solver.Workers(),
		Trace:         tracer,
		Cache:         cache,
	}

	switch {
	case *table1:
		rows, err := experiments.TableI(ctx, suite, levels, *seed, budget, os.Stdout)
		if err != nil {
			fatal(err)
		}
		// In deterministic mode the tracer metrics (wall-clock histograms)
		// are excluded so metrics.json is byte-reproducible too.
		mtr := tracer
		if *det {
			mtr = nil
		}
		if err := writeMetrics(*metricsPath, rows, mtr); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d rows)\n", *metricsPath, len(rows))
		return
	case *fig4:
		b := suite[0]
		c := b.Build()
		before, after, err := experiments.Fig4(ctx, c, levels[0], *seed, *workers, cache)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s @ %g bits\n", b.Name, levels[0])
		fmt.Printf("before: skew-hist=%v key-hist=%v max-skew=%.1f critical-visible=%v\n",
			before.SkewHist, before.KeyHist, before.MaxSkewBits, before.CriticalVisible)
		fmt.Printf("after:  skew-hist=%v key-hist=%v max-skew=%.1f critical-visible=%v\n",
			after.SkewHist, after.KeyHist, after.MaxSkewBits, after.CriticalVisible)
		return
	case *fig5:
		if _, err := experiments.Fig5(ctx, suite, levels, *seed, *workers, cache, os.Stdout); err != nil {
			fatal(err)
		}
		return
	case *structural:
		if _, err := experiments.Structural(ctx, suite, levels[0], *seed, *workers, cache, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	enc := readBench(*encPath)
	orig := readBench(*oraclePath)
	l, err := locking.FromNetlist(enc, "unknown")
	if err != nil {
		fatal(err)
	}
	if l.NumInputs != orig.NumInputs() {
		fatal(fmt.Errorf("oracle has %d inputs, locked design expects %d",
			orig.NumInputs(), l.NumInputs))
	}
	oracle := locking.NewOracle(orig)
	aopt := attacks.DefaultIOOptions()
	aopt.Timeout = *timeout
	aopt.MaxIterations = *maxIter
	aopt.Seed = *seed
	aopt.Trace = tracer
	aopt.Simp = sopt
	aopt.DIPBatch = solver.DIPBatch
	aopt.SatWorkers = solver.Workers()
	aopt.Cache = cache

	// report prints the outcome and returns false when no key came back —
	// the caller exits non-zero so sweep scripts can branch on it.
	report := func(key []bool, extra string) bool {
		status := "no key"
		if key != nil {
			if ok, _ := l.VerifyKey(orig, key); ok {
				status = "CORRECT key " + keyString(key)
			} else {
				status = "incorrect key " + keyString(key)
			}
		}
		fmt.Printf("%s: %s%s\n", *attackName, status, extra)
		return key != nil
	}

	gotKey := true
	// The oracle-guided attacks (sat, appsat, portfolio) dispatch through
	// the facade's attack registry — one code path instead of a switch arm
	// per attack; the analysis attacks below have bespoke outputs.
	if a, ok := obfuslock.AttackNamed(*attackName); ok {
		r := a.Run(ctx, l, oracle, aopt)
		gotKey = report(r.Key, fmt.Sprintf(" (iters=%d queries=%d exact=%v timeout=%v runtime=%v)",
			r.Iterations, r.Queries, r.Exact, r.TimedOut, r.Runtime))
		printSolverStats(*verbose, r.SolverStats)
		if !gotKey {
			if r.TimedOut {
				// The wedged-DIP-loop post-mortem: what the attack was
				// doing when the budget ran out.
				sess.DumpFlight("attack budget exhausted")
			}
			writeLedger()
			sess.Finish()
			os.Exit(1)
		}
		return
	}
	switch *attackName {
	case "sensitization":
		r := attacks.Sensitization(ctx, l, oracle, exec.WithConflicts(500000), sopt)
		fmt.Printf("sensitization: %d/%d key bits isolatable (runtime %v)\n",
			r.NumIsolatable, l.KeyBits, r.Runtime)
	case "sps":
		r := attacks.SPS(l, 256, *seed, 10)
		fmt.Println("sps: top skewed nodes (candidate critical nodes):")
		for i, v := range r.Candidates {
			fmt.Printf("  n%d  %.1f bits\n", v, r.SkewBits[i])
		}
	case "removal":
		sps := attacks.SPS(l, 256, *seed, 10)
		r := attacks.Removal(ctx, l, orig, sps.Candidates, cecOptions(*sweepCEC, *sweepWords, *seed, solver.Workers(), tracer, sopt, cache))
		fmt.Printf("removal: success=%v tried=%d runtime=%v\n", r.Success, r.Tried, r.Runtime)
	case "bypass":
		wrong := make([]bool, l.KeyBits)
		r := attacks.Bypass(ctx, l, orig, wrong, 1024, exec.WithConflicts(1000000), sopt)
		fmt.Printf("bypass: success=%v patterns=%d exhausted=%v runtime=%v\n",
			r.Success, r.Patterns, r.Exhausted, r.Runtime)
	case "valkyrie":
		r := attacks.Valkyrie(ctx, l, orig, 8, 128, *seed, cecOptions(*sweepCEC, *sweepWords, *seed, solver.Workers(), tracer, sopt, cache))
		fmt.Printf("valkyrie: found-pair=%v restore-only=%v pairs-tried=%d runtime=%v\n",
			r.FoundPair, r.RestoreOnly, r.PairsTried, r.Runtime)
	case "spi":
		r := attacks.SPI(l, 6)
		gotKey = report(r.Key, fmt.Sprintf(" (xor-rule=%d point-rule=%d runtime=%v)",
			r.XORRuleHits, r.PointRuleHits, r.Runtime))
	}
	if !gotKey {
		writeLedger()
		sess.Finish()
		os.Exit(1)
	}
}

// cecOptions builds the equivalence-check configuration for the attacks
// that prove candidate modifications equivalent to the oracle.
func cecOptions(sweep bool, sweepWords int, seed int64, satWorkers int, tracer *obs.Tracer, sopt simp.Options, cache *memo.Cache) cec.Options {
	opt := cec.DefaultOptions()
	if sweep {
		opt = cec.SweepOptions()
		opt.SweepWords = sweepWords
	}
	opt.Seed = seed
	opt.Budget.SatWorkers = satWorkers
	opt.Trace = tracer
	opt.Simp = sopt
	opt.Cache = cache
	return opt
}

// validateFlags rejects inconsistent mode combinations before any work
// starts: exactly one experiment mode, or single-attack mode with both
// -enc and -oracle.
func validateFlags(encPath, oraclePath, attackName string, table1, fig4, fig5, structural bool) error {
	modes := 0
	for _, m := range []bool{table1, fig4, fig5, structural} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("pick one experiment mode (-table1, -fig4, -fig5 or -structural)")
	}
	if modes == 1 {
		if encPath != "" || oraclePath != "" {
			return fmt.Errorf("-enc/-oracle do not apply in experiment modes")
		}
		return nil
	}
	if encPath == "" || oraclePath == "" {
		return fmt.Errorf("-enc and -oracle are required (or use an experiment mode)")
	}
	known := map[string]bool{
		"sat": true, "appsat": true, "portfolio": true, "sensitization": true,
		"sps": true, "removal": true, "bypass": true, "valkyrie": true, "spi": true,
	}
	if !known[attackName] {
		return fmt.Errorf("unknown attack %q", attackName)
	}
	return nil
}

func writeMetrics(path string, rows []experiments.TableIRow, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return experiments.WriteMetricsJSON(f, rows, tr)
}

func printSolverStats(verbose bool, st sat.Stats) {
	if !verbose {
		return
	}
	fmt.Printf("solver: decisions=%d propagations=%d conflicts=%d restarts=%d learnt=%d deleted=%d reductions=%d gcs=%d chrono=%d\n",
		st.Decisions, st.Propagations, st.Conflicts, st.Restarts,
		st.Learnt, st.Deleted, st.Reductions, st.GCs, st.Chrono)
}

func parseSkews(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad skew list %q: %v", s, err))
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		out = []float64{20}
	}
	return out
}

func readBench(path string) *aig.AIG {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	g, err := bench.Read(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return g
}

func keyString(key []bool) string {
	b := make([]byte, len(key))
	for i, v := range key {
		b[i] = '0'
		if v {
			b[i] = '1'
		}
	}
	return string(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "attack:", err)
	os.Exit(1)
}
