// Package rewrite provides the logic-synthesis transformations ObfusLock
// builds on: k-feasible cut enumeration with truth tables, ISOP-based
// functional rewriting (the DAG-aware rewriting step of the paper),
// depth-maximizing unbalancing (the reshaping used before Boolean
// multi-level splitting), and key-polarity bubble insertion/hiding.
package rewrite

import "math/bits"

// Truth tables over up to 6 variables are stored in a uint64 with the
// value for minterm m in bit m, replicated to fill all 64 bits so that
// bitwise ops work uniformly regardless of the support size.

// varMasks[i] has 1-bits exactly where variable i is 1.
var varMasks = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// VarTruth returns the truth table of variable i (of up to 6).
func VarTruth(i int) uint64 { return varMasks[i] }

// Cof0 returns the negative cofactor of tt with respect to variable i,
// replicated over both halves.
func Cof0(tt uint64, i int) uint64 {
	lo := tt &^ varMasks[i]
	return lo | lo<<(1<<uint(i))
}

// Cof1 returns the positive cofactor of tt with respect to variable i.
func Cof1(tt uint64, i int) uint64 {
	hi := tt & varMasks[i]
	return hi | hi>>(1<<uint(i))
}

// Depends reports whether tt depends on variable i.
func Depends(tt uint64, i int) bool { return Cof0(tt, i) != Cof1(tt, i) }

// Ones counts minterms of tt over nvars variables.
func Ones(tt uint64, nvars int) int {
	width := 1 << uint(nvars)
	mask := ^uint64(0)
	if width < 64 {
		mask = 1<<uint(width) - 1
	}
	return bits.OnesCount64(tt & mask)
}

// Cube is a product term: a conjunction of positive literals (Pos bit set)
// and negative literals (Neg bit set) over cut-local variables.
type Cube struct {
	Pos, Neg uint32
}

// Truth returns the truth table of the cube.
func (c Cube) Truth() uint64 {
	tt := ^uint64(0)
	for i := 0; i < 6; i++ {
		if c.Pos>>uint(i)&1 == 1 {
			tt &= varMasks[i]
		}
		if c.Neg>>uint(i)&1 == 1 {
			tt &= ^varMasks[i]
		}
	}
	return tt
}

// NumLits returns the number of literals in the cube.
func (c Cube) NumLits() int {
	return bits.OnesCount32(c.Pos) + bits.OnesCount32(c.Neg)
}

// Isop computes an irredundant sum-of-products for any function f with
// L <= f <= U (Minato-Morreale). Pass L = U = tt for an exact cover.
// nvars bounds the variables considered (<= 6). The returned cover's truth
// table is also returned.
func Isop(l, u uint64, nvars int) ([]Cube, uint64) {
	if l == 0 {
		return nil, 0
	}
	if u == ^uint64(0) {
		return []Cube{{}}, ^uint64(0)
	}
	// Find the top variable on which either bound depends.
	v := -1
	for i := nvars - 1; i >= 0; i-- {
		if Depends(l, i) || Depends(u, i) {
			v = i
			break
		}
	}
	if v < 0 {
		// l is a constant: it must be 1 (l != 0 over the full domain).
		return []Cube{{}}, ^uint64(0)
	}
	l0, l1 := Cof0(l, v), Cof1(l, v)
	u0, u1 := Cof0(u, v), Cof1(u, v)

	c0, f0 := Isop(l0&^u1, u0, v)
	c1, f1 := Isop(l1&^u0, u1, v)
	lnew := (l0 &^ f0) | (l1 &^ f1)
	cs, fs := Isop(lnew, u0&u1, v)

	cover := make([]Cube, 0, len(c0)+len(c1)+len(cs))
	for _, c := range c0 {
		c.Neg |= 1 << uint(v)
		cover = append(cover, c)
	}
	for _, c := range c1 {
		c.Pos |= 1 << uint(v)
		cover = append(cover, c)
	}
	cover = append(cover, cs...)
	f := (f0 &^ varMasks[v]) | (f1 & varMasks[v]) | fs
	return cover, f
}

// CoverCost estimates the AIG node cost of a cover: AND nodes inside cubes
// plus OR nodes joining them.
func CoverCost(cover []Cube) int {
	cost := 0
	for _, c := range cover {
		if n := c.NumLits(); n > 1 {
			cost += n - 1
		}
	}
	if len(cover) > 1 {
		cost += len(cover) - 1
	}
	return cost
}
