package core

import (
	"context"
	"testing"

	"obfuslock/internal/attacks"
	"obfuslock/internal/locking"
	"obfuslock/internal/netlistgen"
)

// Seed sweep: locks at 10 bits of skewness must survive a 150-DIP SAT
// attack for every construction seed (Theorem 3 needs ~2^10/c queries).
func TestSATResistanceSeedSweep(t *testing.T) {
	c := netlistgen.AdderCmp(12)
	for seed := int64(41); seed <= 42; seed++ {
		opt := DefaultOptions()
		opt.TargetSkewBits = 10
		opt.Seed = seed
		opt.AllowDirect = false
		res, err := Lock(context.Background(), c, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Report.Attachments < 3 {
			t.Fatalf("seed %d: only %d attachments; L must be composed", seed, res.Report.Attachments)
		}
		oracle := locking.NewOracle(c)
		aopt := attacks.DefaultIOOptions()
		aopt.MaxIterations = 150
		r := attacks.SATAttack(context.Background(), res.Locked, oracle, aopt)
		if r.Exact {
			t.Fatalf("seed %d: cracked in %d iterations", seed, r.Iterations)
		}
		if r.Key != nil {
			if ok, _ := res.Locked.VerifyKey(c, r.Key); ok {
				t.Fatalf("seed %d: partial key correct", seed)
			}
		}
	}
}
