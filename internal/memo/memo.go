// Package memo implements a deterministic, content-addressed result cache
// for semantic circuit queries (CEC verdicts, skewness estimates, projected
// model counts, witness pools, PPA reports).
//
// Keys are strings built from a canonical structural fingerprint of the
// queried (sub)circuit — aig.Fingerprint / aig.FingerprintCone for
// renumbering-invariant semantic verdicts, aig.StructuralHash for queries
// whose results are tied to concrete variable numbering — concatenated with
// a query descriptor that captures every option influencing the result
// (seeds included). Because each key fully determines its value, caching
// never changes observable results: outputs are byte-identical with the
// cache on, off, cold, or warm, at any worker count.
//
// The cache is an in-process sharded LRU with byte accounting, a
// singleflight layer that lets concurrent identical queries from the
// exec.Collect worker pool compute once and share the result, and an
// optional JSON-Lines on-disk spill (Options.Dir) that warms the next
// process. Values are treated as immutable once stored; callers must not
// mutate what Do returns (copy slices before editing).
//
// A nil *Cache is valid and disables caching: Do computes directly.
package memo

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"obfuslock/internal/obs"
)

const (
	numShards      = 16
	entryOverhead  = 96
	unsizedEntry   = 512
	defaultMaxMiB  = 64
	spillSizeLimit = 4 << 20 // skip spilling single values larger than 4 MiB
)

// Options configures a Cache.
type Options struct {
	// MaxBytes bounds the in-memory footprint (approximate; keys + encoded
	// values + bookkeeping). 0 means 64 MiB.
	MaxBytes int64
	// Dir, when non-empty, enables the JSONL disk spill: entries are
	// appended to Dir/cache.jsonl as they are stored and loaded back by
	// New, warming the cache across processes. The directory is created
	// if missing; New fails if it cannot be written.
	Dir string
	// Trace registers the memo.* counters (hit, miss, inflight_dedup,
	// evict, spill, disk_load) and the memo.bytes gauge. Nil is free.
	Trace *obs.Tracer
}

type entry struct {
	key        string
	val        any
	size       int64
	prev, next *entry // LRU ring; head.next is most recent
}

type call struct {
	done chan struct{}
	val  any
	err  error
}

type shard struct {
	mu       sync.Mutex
	entries  map[string]*entry
	head     entry // sentinel of the LRU ring
	bytes    int64
	inflight map[string]*call
}

// Cache is a sharded, content-addressed LRU with singleflight. The zero
// value is not usable; construct with New. A nil *Cache disables caching.
type Cache struct {
	shards   [numShards]shard
	maxShard int64

	spillMu sync.Mutex
	spill   *os.File

	hit, miss, dedup, evict, spilled, loaded *obs.Counter
	bytes                                    *obs.Gauge
	// hitRatio and lookupUS exist only with a tracer attached (nil
	// otherwise): the ratio gauge mirrors Stats().HitRatio() into the
	// metric stream, and the histogram times the cache machinery per
	// lookup (hit resolution or miss classification — never the compute).
	hitRatio *obs.Gauge
	lookupUS *obs.Histogram
}

// New builds a cache. With Options.Dir set, the spill file is opened for
// append (creating the directory as needed) and existing entries are
// loaded; an unwritable directory is an error.
func New(opt Options) (*Cache, error) {
	max := opt.MaxBytes
	if max <= 0 {
		max = defaultMaxMiB << 20
	}
	// With a tracer the counters land in its metrics snapshot; without one
	// they still count locally so Stats keeps working.
	counter := func(name string) *obs.Counter {
		if ctr := opt.Trace.Counter(name); ctr != nil {
			return ctr
		}
		return new(obs.Counter)
	}
	bytes := opt.Trace.Gauge("memo.bytes")
	if bytes == nil {
		bytes = new(obs.Gauge)
	}
	c := &Cache{
		maxShard: max / numShards,
		hit:      counter("memo.hit"),
		miss:     counter("memo.miss"),
		dedup:    counter("memo.inflight_dedup"),
		evict:    counter("memo.evict"),
		spilled:  counter("memo.spill"),
		loaded:   counter("memo.disk_load"),
		bytes:    bytes,
		hitRatio: opt.Trace.Gauge("memo.hit_ratio"),
		lookupUS: opt.Trace.Histogram("memo.lookup_us"),
	}
	if c.maxShard < 1 {
		c.maxShard = 1
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.entries = make(map[string]*entry)
		s.inflight = make(map[string]*call)
		s.head.prev, s.head.next = &s.head, &s.head
	}
	if opt.Dir != "" {
		if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("memo: cache dir: %w", err)
		}
		path := filepath.Join(opt.Dir, "cache.jsonl")
		c.load(path)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("memo: cache spill: %w", err)
		}
		c.spill = f
	}
	return c, nil
}

// Close flushes and closes the spill file, if any.
func (c *Cache) Close() error {
	if c == nil || c.spill == nil {
		return nil
	}
	c.spillMu.Lock()
	defer c.spillMu.Unlock()
	err := c.spill.Close()
	c.spill = nil
	return err
}

// Enabled reports whether the cache is active (non-nil).
func (c *Cache) Enabled() bool { return c != nil }

func (c *Cache) shard(key string) *shard {
	// FNV-1a over the key picks the shard.
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 0x100000001b3
	}
	return &c.shards[h%numShards]
}

// get returns the stored value for key, refreshing its LRU position.
func (c *Cache) get(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.moveFront(e)
	return e.val, true
}

// put stores a value, evicting least-recently-used entries past the shard
// budget, and spills it to disk unless fromDisk.
func (c *Cache) put(key string, v any, fromDisk bool) {
	raw, rawErr := json.Marshal(v)
	size := int64(len(key)) + entryOverhead
	if rawErr == nil {
		size += int64(len(raw))
	} else {
		size += unsizedEntry
	}
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		// Keys fully determine values, so an existing entry is the same
		// result; just refresh it.
		s.moveFront(e)
		s.mu.Unlock()
		return
	}
	e := &entry{key: key, val: v, size: size}
	s.entries[key] = e
	s.bytes += size
	e.next = s.head.next
	e.prev = &s.head
	e.next.prev = e
	s.head.next = e
	var evicted int64
	for s.bytes > c.maxShard && s.head.prev != &s.head && s.head.prev != e {
		old := s.head.prev
		s.unlink(old)
		delete(s.entries, old.key)
		s.bytes -= old.size
		evicted++
	}
	s.mu.Unlock()
	c.evict.Add(evicted)
	c.bytes.Set(float64(c.totalBytes()))
	if !fromDisk && rawErr == nil && len(raw) <= spillSizeLimit {
		c.appendSpill(key, raw)
	}
}

// totalBytes sums the byte accounting across shards.
func (c *Cache) totalBytes() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.bytes
		s.mu.Unlock()
	}
	return total
}

func (s *shard) moveFront(e *entry) {
	s.unlink(e)
	e.next = s.head.next
	e.prev = &s.head
	e.next.prev = e
	s.head.next = e
}

func (s *shard) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

// do runs the singleflight protocol: a cache hit returns immediately, the
// first miss computes, and concurrent callers of the same key wait for the
// leader's result instead of recomputing.
func (c *Cache) do(key string, compute func() (any, error)) (any, error) {
	var t0 time.Time
	if c.lookupUS != nil {
		t0 = time.Now()
	}
	if v, ok := c.get(key); ok {
		c.hit.Inc()
		c.lookupDone(t0)
		return v, nil
	}
	s := c.shard(key)
	s.mu.Lock()
	// Re-check under the lock: the leader may have stored meanwhile.
	if e, ok := s.entries[key]; ok {
		s.moveFront(e)
		s.mu.Unlock()
		c.hit.Inc()
		c.lookupDone(t0)
		return e.val, nil
	}
	if cl, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		c.dedup.Inc()
		c.lookupDone(t0)
		<-cl.done
		if cl.err != nil {
			return nil, cl.err
		}
		return cl.val, nil
	}
	cl := &call{done: make(chan struct{})}
	s.inflight[key] = cl
	s.mu.Unlock()
	c.miss.Inc()
	c.lookupDone(t0)

	cl.val, cl.err = compute()
	if cl.err == nil {
		c.put(key, cl.val, false)
	}
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(cl.done)
	return cl.val, cl.err
}

type spillRecord struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

func (c *Cache) appendSpill(key string, raw json.RawMessage) {
	if c.spill == nil {
		return
	}
	line, err := json.Marshal(spillRecord{K: key, V: raw})
	if err != nil {
		return
	}
	line = append(line, '\n')
	c.spillMu.Lock()
	defer c.spillMu.Unlock()
	if c.spill == nil {
		return
	}
	if _, err := c.spill.Write(line); err == nil {
		c.spilled.Inc()
	}
}

// load reads a spill file written by a previous process. Values come back
// as json.RawMessage; Do decodes them into the caller's type on first hit.
// Malformed lines (torn writes) are skipped.
func (c *Cache) load(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), spillSizeLimit+1024)
	for sc.Scan() {
		var rec spillRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.K == "" {
			continue
		}
		c.put(rec.K, json.RawMessage(append([]byte(nil), rec.V...)), true)
		c.loaded.Inc()
	}
}

// Do returns the cached value for key, computing (and storing) it on a
// miss. Concurrent calls with the same key compute once. A nil cache, or a
// cached value of an unexpected type, falls through to compute. The
// returned value is shared: treat it as immutable.
func Do[T any](c *Cache, key string, compute func() (T, error)) (T, error) {
	if c == nil {
		return compute()
	}
	v, err := c.do(key, func() (any, error) { return compute() })
	if err != nil {
		var zero T
		return zero, err
	}
	if t, ok := v.(T); ok {
		return t, nil
	}
	if raw, ok := v.(json.RawMessage); ok {
		var t T
		if json.Unmarshal(raw, &t) == nil {
			// Swap the decoded value in so later hits skip the decode.
			c.promote(key, t)
			return t, nil
		}
	}
	// Type clash (two call sites sharing a key is a bug, but stay safe).
	return compute()
}

// promote replaces a disk-loaded raw entry with its decoded value.
func (c *Cache) promote(key string, v any) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		e.val = v
	}
	s.mu.Unlock()
}

// lookupDone records the cache-machinery latency for one lookup and
// refreshes the hit-ratio gauge. Inert without a tracer.
func (c *Cache) lookupDone(t0 time.Time) {
	if c.lookupUS != nil {
		c.lookupUS.RecordDuration(time.Since(t0))
	}
	if c.hitRatio != nil {
		c.hitRatio.Set(c.Stats().HitRatio())
	}
}

// Stats is a point-in-time summary of cache effectiveness, available
// with or without a tracer attached.
type Stats struct {
	// Hits and Misses partition completed lookups (a singleflight
	// follower counts as neither; see InflightDedups).
	Hits   int64
	Misses int64
	// InflightDedups counts lookups that waited on a concurrent
	// identical computation instead of recomputing.
	InflightDedups int64
	// Evictions counts entries dropped by the LRU byte budget.
	Evictions int64
	// Spills and DiskLoads count entries written to and warmed from the
	// JSONL spill file.
	Spills    int64
	DiskLoads int64
	// Bytes is the current approximate in-memory footprint.
	Bytes int64
}

// Lookups returns hits + misses.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses }

// HitRatio returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// Stats reports cache counters (tracked with or without a tracer). A
// nil cache returns the zero Stats.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:           c.hit.Value(),
		Misses:         c.miss.Value(),
		InflightDedups: c.dedup.Value(),
		Evictions:      c.evict.Value(),
		Spills:         c.spilled.Value(),
		DiskLoads:      c.loaded.Value(),
		Bytes:          c.totalBytes(),
	}
}
