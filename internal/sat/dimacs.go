package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDimacs parses a DIMACS CNF file into a fresh solver. Comment lines
// and the problem line are tolerated in any position; variables are
// created on demand, so a missing or understated problem line still works.
func ReadDimacs(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var clause []Lit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "cnf" {
				n, err := strconv.Atoi(fields[2])
				if err != nil {
					return nil, fmt.Errorf("dimacs: line %d: bad variable count: %v", lineNo, err)
				}
				for s.NumVars() < n {
					s.NewVar()
				}
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs: line %d: bad literal %q", lineNo, tok)
			}
			if v == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			idx := v
			if idx < 0 {
				idx = -idx
			}
			for s.NumVars() < idx {
				s.NewVar()
			}
			clause = append(clause, MkLit(idx-1, v < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dimacs: %v", err)
	}
	if len(clause) > 0 {
		return nil, fmt.Errorf("dimacs: trailing clause without terminating 0")
	}
	return s, nil
}

// forEachLiveProblem calls f with the arena reference of every live
// problem clause, in database order. Deleted clauses (reduceDB,
// Simplify) and clauses mid-relocation are skipped — the raw clause
// index may contain both until the next compaction filters it.
func (s *Solver) forEachLiveProblem(f func(c cref)) {
	for _, c := range s.clauses {
		if s.ar.deleted(c) || s.ar.reloc(c) {
			continue
		}
		f(c)
	}
}

// WriteDimacs emits the solver's problem clauses (not learnt clauses) in
// DIMACS CNF format. Unit facts implied at level 0 are emitted as unit
// clauses so the formula round-trips; deleted and relocated arena slots
// are skipped. Note that after Simplify with variable elimination the
// emitted formula is equisatisfiable, not equivalent.
func (s *Solver) WriteDimacs(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if !s.ok {
		// Formula already refuted: emit a trivially UNSAT pair.
		fmt.Fprintf(bw, "p cnf 1 2\n1 0\n-1 0\n")
		return bw.Flush()
	}
	nClauses := 0
	s.forEachLiveProblem(func(cref) { nClauses++ })
	units := s.trail[:len(s.trail)]
	if lim := len(s.trailLim); lim > 0 {
		units = s.trail[:s.trailLim[0]] // root-level facts only
	}
	fmt.Fprintf(bw, "p cnf %d %d\n", s.numVars, nClauses+len(units))
	for _, l := range units {
		v := l.Var() + 1
		if l.Neg() {
			v = -v
		}
		fmt.Fprintf(bw, "%d 0\n", v)
	}
	s.forEachLiveProblem(func(c cref) {
		for _, w := range s.ar.lits(c) {
			l := Lit(w)
			v := l.Var() + 1
			if l.Neg() {
				v = -v
			}
			fmt.Fprintf(bw, "%d ", v)
		}
		fmt.Fprintln(bw, 0)
	})
	return bw.Flush()
}
