package obfuslock

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (Section V) at laptop scale. The circuits come from the
// reduced-size suite so `go test -bench=.` finishes in minutes; run the
// full-size sweep with `go run ./cmd/attack -table1` (and -fig4/-fig5/
// -structural). EXPERIMENTS.md records paper-vs-measured for every row.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"obfuslock/internal/aig"
	"obfuslock/internal/attacks"
	"obfuslock/internal/bench"
	"obfuslock/internal/cec"
	"obfuslock/internal/core"
	"obfuslock/internal/experiments"
	"obfuslock/internal/lockbase"
	"obfuslock/internal/locking"
	"obfuslock/internal/memo"
	"obfuslock/internal/netlistgen"
	"obfuslock/internal/obs"
	"obfuslock/internal/rewrite"
	"obfuslock/internal/sat"
	"obfuslock/internal/simp"
	"obfuslock/internal/skew"
	"obfuslock/internal/techmap"
)

// Every BENCH_*.json row is a bench.Record — wall time per op, heap
// allocations per op, plus the cumulative SAT-solver work behind it, so
// a perf regression can be told apart from a search-behavior change
// (same ns/op, different conflicts — or vice versa). AllocsPerOp guards
// the solver's pooled hot paths: the arena clause store keeps it within
// ~10k for the attack benchmarks, and CI fails a >10% regression.
var (
	benchRecMu sync.Mutex
	benchRecs  = map[string]bench.Record{}
	// attackBenchRecs feeds BENCH_attack.json: the serial/batched
	// head-to-head of BenchmarkSATAttackBatched, with query counts so the
	// speedup claim can be checked for equal oracle work.
	attackBenchRecs = map[string]bench.Record{}
	// parBenchRecs feeds BENCH_sat_par.json: the 1/2/4-worker sweep of
	// BenchmarkSATAttackParallel, with the portfolio's shared-clause
	// counters so the speedup can be traced to actual clause exchange.
	parBenchRecs = map[string]bench.Record{}
)

// mallocCount reads the process-wide cumulative allocation counter.
// Snapshot it before and after a benchmark's b.N loop and hand the
// delta to recordBench: the SAT-heavy benchmarks run no concurrent
// goroutines, so the delta is the loop's own allocations (modulo
// runtime noise well under CI's 10% regression threshold).
func mallocCount() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// cacheBenchRecord is BENCH_cache.json: the same deterministic Table I
// cell timed against a cold and a pre-warmed result cache, plus the memo
// counters proving the warm run reused results instead of just getting
// lucky with solver heuristics.
type cacheBenchRecord struct {
	ColdNs  int64   `json:"cold_ns_per_op"`
	WarmNs  int64   `json:"warm_ns_per_op"`
	Speedup float64 `json:"speedup"`
	Hits    int64   `json:"memo_hits"`
	Misses  int64   `json:"memo_misses"`
}

var cacheBenchRec *cacheBenchRecord // written by BenchmarkTableICached

// recordBench files the finished (sub-)benchmark's per-op time, per-op
// allocations (mallocs is the mallocCount delta across the b.N loop)
// and solver counters under its full name. Call after the b.N loop.
func recordBench(b *testing.B, solver sat.Stats, mallocs uint64) {
	benchRecMu.Lock()
	defer benchRecMu.Unlock()
	benchRecs[b.Name()] = bench.Record{
		NsPerOp:     b.Elapsed().Nanoseconds() / int64(max(b.N, 1)),
		AllocsPerOp: int64(mallocs) / int64(max(b.N, 1)),
		Solver:      solver,
	}
}

// TestMain dumps the recorded benchmarks to BENCH_sat.json when any
// benchmark that calls recordBench ran (plain `go test` writes nothing).
// CI's bench-smoke job runs the SAT-heavy benchmarks at -benchtime 1x and
// archives the file next to the run.
func TestMain(m *testing.M) {
	code := m.Run()
	if len(benchRecs) > 0 {
		data, err := json.MarshalIndent(benchRecs, "", "  ")
		if err == nil {
			err = os.WriteFile("BENCH_sat.json", append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "BENCH_sat.json:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	if len(attackBenchRecs) > 0 {
		out := make(map[string]any, len(attackBenchRecs)+2)
		for k, v := range attackBenchRecs {
			out[k] = v
		}
		if s, bt := attackBenchRecs["serial"], attackBenchRecs["batched"]; s.NsPerOp > 0 && bt.NsPerOp > 0 {
			out["speedup"] = float64(s.NsPerOp) / float64(bt.NsPerOp)
			out["equal_queries"] = s.Queries == bt.Queries
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err == nil {
			err = os.WriteFile("BENCH_attack.json", append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "BENCH_attack.json:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	if len(parBenchRecs) > 0 {
		out := make(map[string]any, len(parBenchRecs)+1)
		for k, v := range parBenchRecs {
			out[k] = v
		}
		if s1, s4 := parBenchRecs["1"], parBenchRecs["4"]; s1.NsPerOp > 0 && s4.NsPerOp > 0 {
			out["speedup"] = float64(s1.NsPerOp) / float64(s4.NsPerOp)
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err == nil {
			err = os.WriteFile("BENCH_sat_par.json", append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "BENCH_sat_par.json:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	if cacheBenchRec != nil {
		data, err := json.MarshalIndent(cacheBenchRec, "", "  ")
		if err == nil {
			err = os.WriteFile("BENCH_cache.json", append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "BENCH_cache.json:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// benchBudget bounds each attack cell: the paper used a 3 h timeout; the
// scaled harness uses seconds with a DIP cap far below 2^skew, so the
// whole suite fits inside go test's default 10-minute package timeout.
var benchBudget = experiments.Budget{
	Timeout:       10 * time.Second,
	MaxIterations: 60,
}

var benchSkews = []float64{8, 12}

// suiteByName picks reduced-suite circuits by name. Only circuits with
// enough inputs appear in the attack experiments: min(2^s, 2^(keybits−s))
// must stay above the attack budgets, and 12-input toys cannot hold 12
// bits of skewness (the paper's b09/b10 remark), so they would only
// measure the scale artifact. The slowest-to-lock control circuit
// (s9234-s, ~30 s per lock) is reserved for Fig. 4 to keep the whole
// harness under go test's default timeout; run the full-size sweeps with
// cmd/attack.
func suiteByName(names ...string) []netlistgen.Benchmark {
	var out []netlistgen.Benchmark
	for _, bm := range netlistgen.SmallSuite() {
		for _, n := range names {
			if bm.Name == n {
				out = append(out, bm)
			}
		}
	}
	return out
}

// BenchmarkTableI regenerates Table I (key efficiency, lock runtime, and
// SAT/AppSAT resilience, whole-circuit and sub-circuit attacker
// strategies) on the reduced suite.
func BenchmarkTableI(b *testing.B) {
	fmt.Fprintln(os.Stderr, experiments.TableIHeader)
	for _, bm := range suiteByName("c7552-s", "max-s", "b14-s") {
		for _, s := range benchSkews {
			b.Run(fmt.Sprintf("%s/skew%g", bm.Name, s), func(b *testing.B) {
				var solver sat.Stats
				m0 := mallocCount()
				for i := 0; i < b.N; i++ {
					row, err := experiments.TableIEntry(context.Background(), bm, s, 1, benchBudget, nil)
					if err != nil {
						b.Skip(err) // e.g. too few inputs for the skew target
					}
					solver = solver.Add(row.SolverStats)
					if i == 0 {
						fmt.Fprintln(os.Stderr, row)
						b.ReportMetric(float64(row.KeyBits), "keybits")
						b.ReportMetric(row.SkewBits, "skewbits")
						b.ReportMetric(row.LockTime.Seconds(), "lock-s")
					}
				}
				recordBench(b, solver, mallocCount()-m0)
			})
		}
	}
}

// BenchmarkTableICached measures the memoization tentpole on the
// deterministic backbone of a Table I cell — lock construction plus the
// key-correctness proof, the SAT-heavy work every sweep repeats. The cold
// sub-benchmark pays the full solver bill into a fresh cache each op; the
// warm one replays a pre-warmed cache. The pair lands in BENCH_cache.json
// with the memo counters, so CI can assert the warm path actually reuses
// results (hits > 0) rather than recomputing faster.
func BenchmarkTableICached(b *testing.B) {
	c := suiteByName("max-s")[0].Build()
	cell := func(cache *memo.Cache) {
		opt := core.DefaultOptions()
		opt.TargetSkewBits = 8
		opt.Seed = 1
		opt.AllowDirect = false
		opt.Cache = cache
		res, err := core.Lock(context.Background(), c, opt)
		if err != nil {
			b.Fatal(err)
		}
		vopt := cec.DefaultOptions()
		vopt.Cache = cache
		if err := res.Locked.VerifyWith(context.Background(), c, vopt); err != nil {
			b.Fatal(err)
		}
		// The row's reporting columns: mapped-overhead and achieved-skewness
		// metrics of the locked netlist, both memoized layers.
		techmap.AnalyzeWith(res.Locked.Enc, 8, 1, cache)
		so := skew.DefaultSplittingOptions()
		so.Seed = 1
		so.Cache = cache
		skew.SplittingBits(res.Locked.Enc, res.Locked.Enc.Output(0), so)
	}

	var coldNs, warmNs, hits, misses int64
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache, err := memo.New(memo.Options{})
			if err != nil {
				b.Fatal(err)
			}
			cell(cache)
			cache.Close()
		}
		coldNs = b.Elapsed().Nanoseconds() / int64(max(b.N, 1))
	})
	b.Run("warm", func(b *testing.B) {
		cache, err := memo.New(memo.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer cache.Close()
		cell(cache) // pre-warm outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cell(cache)
		}
		warmNs = b.Elapsed().Nanoseconds() / int64(max(b.N, 1))
		st := cache.Stats()
		hits, misses = st.Hits, st.Misses
	})
	if coldNs > 0 && warmNs > 0 {
		rec := &cacheBenchRecord{ColdNs: coldNs, WarmNs: warmNs,
			Speedup: float64(coldNs) / float64(warmNs), Hits: hits, Misses: misses}
		benchRecMu.Lock()
		cacheBenchRec = rec
		benchRecMu.Unlock()
		b.ReportMetric(rec.Speedup, "warm-speedup")
	}
}

// BenchmarkFig4 regenerates the Fig. 4 node-statistics panels on the
// s9234-class circuit: before structural transformation the critical node
// is discoverable; after it is eliminated.
func BenchmarkFig4(b *testing.B) {
	bm := netlistgen.SmallSuite()[0] // s9234-s
	c := bm.Build()
	for i := 0; i < b.N; i++ {
		before, after, err := experiments.Fig4(context.Background(), c, 10, 1, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Fprintf(os.Stderr, "Fig4 %s before: skew-hist=%v key-hist=%v critical-visible=%v\n",
				bm.Name, before.SkewHist, before.KeyHist, before.CriticalVisible)
			fmt.Fprintf(os.Stderr, "Fig4 %s after:  skew-hist=%v key-hist=%v critical-visible=%v\n",
				bm.Name, after.SkewHist, after.KeyHist, after.CriticalVisible)
			if !before.CriticalVisible {
				b.Error("naive double-flip should expose the critical node")
			}
			if after.CriticalVisible {
				b.Error("structural transformation left a critical node")
			}
		}
	}
}

// BenchmarkFig5 regenerates the Fig. 5 area/power/delay overheads across
// skewness levels.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(context.Background(), suiteByName("c7552-s", "max-s"), benchSkews, 1, 0, nil, os.Stderr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			var area, power float64
			for _, r := range rows {
				area += r.Area.AreaPct
				power += r.Area.PowerPct
			}
			b.ReportMetric(area/float64(len(rows)), "avg-area-%")
			b.ReportMetric(power/float64(len(rows)), "avg-power-%")
		}
	}
}

// BenchmarkStructuralAttacks regenerates the structural-security
// evaluation: critical-node elimination, Valkyrie, SPI and removal.
func BenchmarkStructuralAttacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Structural(context.Background(), suiteByName("c7552-s", "max-s"), 10, 1, 0, nil, os.Stderr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if !r.CriticalEliminated || r.ValkyrieBroke || !r.SPIWrong || !r.RemovalFailed {
					b.Errorf("%s: structural resistance violated: %+v", r.Bench, r)
				}
			}
		}
	}
}

// BenchmarkLockRuntime measures the "Run." column of Table I in isolation:
// ObfusLock encryption time per benchmark and skewness level.
func BenchmarkLockRuntime(b *testing.B) {
	for _, bm := range suiteByName("c7552-s", "max-s") {
		c := bm.Build()
		for _, s := range benchSkews {
			if float64(c.NumInputs()) < s+4 {
				continue
			}
			b.Run(fmt.Sprintf("%s/skew%g", bm.Name, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					opt := core.DefaultOptions()
					opt.TargetSkewBits = s
					opt.Seed = int64(i + 1)
					opt.AllowDirect = false
					if _, err := core.Lock(context.Background(), c, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblation quantifies the design choices DESIGN.md calls out:
// the cost of the final rewriting pass and of the structural blending
// (versus the naive double-flip), in nodes and mapped area.
func BenchmarkAblation(b *testing.B) {
	c := netlistgen.SmallSuite()[1].Build() // adder/comparator
	origArea := techmap.Analyze(c, 8, 1).AreaUM2
	variants := []struct {
		name string
		opt  func() core.Options
	}{
		{"full", func() core.Options {
			o := core.DefaultOptions()
			return o
		}},
		{"no-final-rewrite", func() core.Options {
			o := core.DefaultOptions()
			o.FinalRewrite = false
			return o
		}},
		{"naive-double-flip", func() core.Options {
			o := core.DefaultOptions()
			o.DisableObfuscation = true
			return o
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := v.opt()
				opt.TargetSkewBits = 10
				opt.Seed = 3
				opt.AllowDirect = false
				res, err := core.Lock(context.Background(), c, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					area := techmap.Analyze(res.Locked.Enc, 8, 1).AreaUM2
					b.ReportMetric(float64(res.Report.EncNodes), "nodes")
					b.ReportMetric((area-origArea)/origArea*100, "area-ovh-%")
				}
			}
		})
	}
}

// BenchmarkTheoryLemma1 checks the error-matrix shape of Lemma 1 on an
// exhaustively enumerable instance while timing the enumeration.
func BenchmarkTheoryLemma1(b *testing.B) {
	g := NewCircuit()
	in := g.AddInputs(6)
	g.AddOutput(g.AndN(in[:4]...), "f") // M = 4
	opt := DefaultOptions()
	opt.TargetSkewBits = 3
	opt.Seed = 7
	res, err := Lock(g, opt)
	if err != nil {
		b.Fatal(err)
	}
	l := res.Locked
	for i := 0; i < b.N; i++ {
		total := 1 << 6
		bad := 0
		x := make([]bool, 6)
		k := make([]bool, 6)
		for xm := 0; xm < total; xm++ {
			for j := 0; j < 6; j++ {
				x[j] = xm>>j&1 == 1
			}
			want := g.Eval(x)[0]
			errs := 0
			for km := 0; km < total; km++ {
				for j := 0; j < 6; j++ {
					k[j] = km>>j&1 == 1
				}
				full := append(append([]bool{}, x...), k...)
				if l.Enc.Eval(full)[0] != want {
					errs++
				}
			}
			if errs != 4 && errs != total-4 {
				bad++
			}
		}
		if bad != 0 {
			b.Fatalf("%d rows violate Lemma 1", bad)
		}
	}
}

// BenchmarkFraigCEC compares the monolithic-miter equivalence check with
// the swept (fraig) mode on an obfuscated/rewritten pair from the
// experiment suite: the two sides share most of their logic, so sweeping
// collapses the combined graph before the final solve. The recorded
// speedup is the tentpole claim of the SAT-sweeping engine.
func BenchmarkFraigCEC(b *testing.B) {
	c := suiteByName("max-s")[0].Build()
	rw := rewrite.Balance(rewrite.FunctionalRewrite(c, rewrite.ObfuscationOptions(5)))
	for _, mode := range []string{"monolithic", "swept"} {
		b.Run(mode, func(b *testing.B) {
			opt := cec.DefaultOptions()
			if mode == "swept" {
				opt = cec.SweepOptions()
			}
			opt.SimWords = 0 // no pre-filter: measure the SAT paths
			var solver sat.Stats
			m0 := mallocCount()
			for i := 0; i < b.N; i++ {
				r, err := cec.Check(context.Background(), c, rw, opt)
				if err != nil {
					b.Fatal(err)
				}
				if !r.Decided || !r.Equivalent {
					b.Fatal("rewritten pair must be proven equivalent")
				}
				solver = solver.Add(r.SolverStats)
			}
			recordBench(b, solver, mallocCount()-m0)
		})
	}
}

// BenchmarkSATAttackBatched measures the batched-DIP-pipeline tentpole
// head-to-head: the classic serial loop (DIPBatch=1) versus the batched
// default on the same SARLock cell. A 12-bit SARLock forces one DIP per
// wrong key (~2^12 iterations) — the worst case the batching targets.
// The protected width equals the input count, so no two patterns share
// a wrong key and both modes need exactly the same DIP set: TestMain
// asserts the speedup was measured at equal oracle work before writing
// BENCH_attack.json; CI gates on speedup >= 2 with equal_queries true.
func BenchmarkSATAttackBatched(b *testing.B) {
	orig := netlistgen.Multiplier(6)
	l, err := lockbase.SARLock(orig, 12, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		batch int
	}{{"serial", 1}, {"batched", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			var solver sat.Stats
			var queries, iters int
			m0 := mallocCount()
			for i := 0; i < b.N; i++ {
				opt := attacks.DefaultIOOptions()
				opt.MaxIterations = 8000 // > 2^12
				opt.DIPBatch = mode.batch
				oracle := locking.NewOracle(orig)
				r := attacks.SATAttack(context.Background(), l, oracle, opt)
				if !r.Exact {
					b.Fatalf("attack must finish the 12-bit SARLock: %+v", r)
				}
				solver = solver.Add(r.SolverStats)
				queries, iters = r.Queries, r.Iterations
			}
			mallocs := mallocCount() - m0
			benchRecMu.Lock()
			attackBenchRecs[mode.name] = bench.Record{
				NsPerOp:     b.Elapsed().Nanoseconds() / int64(max(b.N, 1)),
				AllocsPerOp: int64(mallocs) / int64(max(b.N, 1)),
				Queries:     queries,
				Iterations:  iters,
				Solver:      solver,
			}
			benchRecMu.Unlock()
			b.ReportMetric(float64(queries), "queries")
		})
	}
}

// phpConstLock builds a locked circuit whose key provably cannot affect
// any output: out_j = y_j XOR (php(y) AND k_j), where php(y) is the
// conjunction of the pigeonhole constraints for p pigeons in h holes
// over the y input matrix — a circuit that is semantically constant
// false but only provably so by refuting PHP(p, h). The SAT attack's
// first miter solve is therefore a single hard UNSAT proof (exact
// termination after zero DIPs), which is exactly the workload the
// parallel portfolio targets: Unsat answers race across diversified
// workers while Sat models only ever come from the sequential parent.
func phpConstLock(p, h, keyBits int) (*aig.AIG, *locking.Locked) {
	n := p * h
	orig := aig.New()
	oy := orig.AddInputs(n)
	for j := 0; j < keyBits; j++ {
		orig.AddOutput(oy[j%n], fmt.Sprintf("o%d", j))
	}
	g := aig.New()
	y := g.AddInputs(n)
	keys := g.AddInputs(keyBits)
	cell := func(i, j int) aig.Lit { return y[i*h+j] }
	cons := make([]aig.Lit, 0, p+h*p*(p-1)/2)
	for i := 0; i < p; i++ {
		row := make([]aig.Lit, h)
		for j := 0; j < h; j++ {
			row[j] = cell(i, j)
		}
		cons = append(cons, g.OrN(row...))
	}
	for j := 0; j < h; j++ {
		for i := 0; i < p; i++ {
			for k := i + 1; k < p; k++ {
				cons = append(cons, g.And(cell(i, j), cell(k, j)).Not())
			}
		}
	}
	php := g.AndN(cons...)
	for j := 0; j < keyBits; j++ {
		g.AddOutput(g.Xor(y[j%n], g.And(php, keys[j])), fmt.Sprintf("o%d", j))
	}
	return orig, &locking.Locked{Scheme: "php-const", Enc: g,
		NumInputs: n, KeyBits: keyBits, Key: make([]bool, keyBits)}
}

// BenchmarkSATAttackParallel measures the parallel-portfolio tentpole on
// the hard-miter attack: the php-const lock makes the attack one big
// UNSAT proof, run at 1, 2 and 4 SAT workers. Keys, iteration and query
// counts are byte-identical across widths (pinned by
// TestSatWorkersKeysByteIdentical); only the wall clock may move. The
// records land in BENCH_sat_par.json together with the portfolio's
// shared-clause counters; CI gates the committed artifact on
// speedup >= 1.5 and a regenerated run on 4-worker <= 1-worker. The
// speedup is algorithmic, not core-count parallelism: the helper
// workers' clause-sharing clique refutes PHP in a fraction of the
// sequential parent's conflicts, so it survives even a single-core
// runner where the workers time-share one CPU.
func BenchmarkSATAttackParallel(b *testing.B) {
	orig, l := phpConstLock(10, 9, 8)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			var solver sat.Stats
			var shared int64
			m0 := mallocCount()
			for i := 0; i < b.N; i++ {
				reg := obs.NewRegistry()
				tr := obs.NewWithRegistry(obs.Discard, reg)
				opt := attacks.DefaultIOOptions()
				opt.MaxIterations = 10
				opt.SatWorkers = w
				opt.Trace = tr
				r := attacks.SATAttack(context.Background(), l, locking.NewOracle(orig), opt)
				if !r.Exact || r.Iterations != 0 || r.Key == nil {
					b.Fatalf("php-const attack must terminate exactly after zero DIPs: %+v", r)
				}
				solver = solver.Add(r.SolverStats)
				shared += reg.Counter(sat.MetricParShared).Value()
			}
			mallocs := mallocCount() - m0
			benchRecMu.Lock()
			parBenchRecs[fmt.Sprintf("%d", w)] = bench.Record{
				NsPerOp:     b.Elapsed().Nanoseconds() / int64(max(b.N, 1)),
				AllocsPerOp: int64(mallocs) / int64(max(b.N, 1)),
				Shared:      shared / int64(max(b.N, 1)),
				Solver:      solver,
			}
			benchRecMu.Unlock()
			b.ReportMetric(float64(shared)/float64(max(b.N, 1)), "shared-clauses")
		})
	}
}

// BenchmarkSATAttackSimp measures the preprocessing tentpole where it
// matters most: the incremental DIP loop of the SAT attack, whose miter
// grows by two oracle copies per iteration. A 6-bit SARLock forces ~2^6
// iterations, so one op is dominated by solver search rather than
// construction; the on/off pair quantifies the win, and BENCH_sat.json
// keeps the per-op solver counters for regression tracking.
func BenchmarkSATAttackSimp(b *testing.B) {
	orig := netlistgen.Multiplier(4)
	l, err := lockbase.SARLock(orig, 6, 1)
	if err != nil {
		b.Fatal(err)
	}
	oracle := locking.NewOracle(orig)
	for _, mode := range []string{"on", "off"} {
		b.Run(mode, func(b *testing.B) {
			var solver sat.Stats
			m0 := mallocCount()
			for i := 0; i < b.N; i++ {
				opt := attacks.DefaultIOOptions()
				opt.MaxIterations = 200 // > 2^6
				// Pin the classic serial DIP loop: this benchmark isolates
				// the simp on/off delta, and the protected width (6) is
				// narrower than the input count (8), so batched enumeration
				// would burn iterations on DIPs that collide on the
				// protected bits.
				opt.DIPBatch = 1
				if mode == "off" {
					opt.Simp = simp.Off()
				}
				r := attacks.SATAttack(context.Background(), l, oracle, opt)
				if !r.Exact {
					b.Fatalf("attack must finish the 6-bit SARLock: %+v", r)
				}
				solver = solver.Add(r.SolverStats)
			}
			recordBench(b, solver, mallocCount()-m0)
		})
	}
}
