package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"obfuslock/internal/aig"
	"obfuslock/internal/count"
	"obfuslock/internal/locking"
	"obfuslock/internal/obs"
	"obfuslock/internal/rewrite"
)

// selectCut walks backwards from the protected output's root, repeatedly
// expanding the deepest frontier node into its fanins, until the frontier
// is wide enough AND the number of reachable patterns on it is exponential
// in its width (checked with the approximate model counter). Primary
// inputs stop the expansion (a PI frontier is trivially fully reachable).
func selectCut(ctx context.Context, g *aig.AIG, po int, minCut int, seed int64, tr *obs.Tracer) ([]uint32, float64, error) {
	lv, _ := g.Levels()
	root := g.Output(po)
	inFrontier := map[uint32]bool{}
	var frontier []uint32
	add := func(v uint32) {
		if v != 0 && !inFrontier[v] {
			inFrontier[v] = true
			frontier = append(frontier, v)
		}
	}
	if g.Op(root.Var()) == aig.OpInput {
		return nil, 0, fmt.Errorf("core: protected output is a primary input")
	}
	for _, f := range g.Fanins(root.Var()) {
		add(f.Var())
	}
	expand := func() bool {
		// Pick the deepest expandable frontier node.
		best := -1
		for i, v := range frontier {
			if g.Op(v) == aig.OpInput {
				continue
			}
			if best < 0 || lv[v] > lv[frontier[best]] {
				best = i
			}
		}
		if best < 0 {
			return false // all PIs
		}
		v := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)
		delete(inFrontier, v)
		for _, f := range g.Fanins(v) {
			add(f.Var())
		}
		return true
	}
	const gamma = 0.7
	copt := count.DefaultOptions()
	copt.Seed = seed
	copt.Trials = 3
	copt.Trace = tr
	for round := 0; ; round++ {
		for len(frontier) < minCut {
			if !expand() {
				break
			}
		}
		// All-PI frontier: fully reachable by definition.
		allPI := true
		for _, v := range frontier {
			if g.Op(v) != aig.OpInput {
				allPI = false
				break
			}
		}
		cutLits := make([]aig.Lit, len(frontier))
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		for i, v := range frontier {
			cutLits[i] = aig.MkLit(v, false)
		}
		if allPI {
			return frontier, float64(len(frontier)), nil
		}
		r := count.ReachablePatterns(ctx, g, cutLits, copt)
		if r.Decided && !math.IsInf(r.Log2Count, -1) && r.Log2Count >= gamma*float64(len(frontier)) {
			return frontier, r.Log2Count, nil
		}
		// Not reachable enough: push the cut deeper.
		progressed := false
		for i := 0; i < 4; i++ {
			if expand() {
				progressed = true
			}
		}
		if !progressed {
			return frontier, float64(len(frontier)), nil // PI cut fallback
		}
		if round > 64 {
			return nil, 0, fmt.Errorf("core: no sufficiently reachable cut found")
		}
	}
}

// lockSubCircuit locks only the transitive fan-out cone of a selected cut:
// the sub-circuit between the cut and the protected output is double-flip
// locked over the cut variables, and the result is stitched back into the
// full netlist. Attackers must reason through the input logic to drive cut
// patterns, which the reachability condition makes expensive.
func lockSubCircuit(ctx context.Context, c *aig.AIG, opt Options, sp *obs.Span) (*Result, error) {
	po := opt.ProtectedOutput
	if po < 0 {
		po = pickProtectedOutput(c)
	}
	if po >= c.NumOutputs() {
		return nil, fmt.Errorf("core: protected output %d out of range", po)
	}
	minCut := opt.SubCircuitMinCut
	if minCut <= 0 {
		minCut = int(opt.TargetSkewBits) + 8
	}
	csp := sp.Span("lock.select_cut", obs.Int("min_cut", int64(minCut)))
	cut, reach, err := selectCut(ctx, c, po, minCut, opt.Seed, opt.Trace)
	if err != nil {
		csp.End(obs.Str("error", err.Error()))
		return nil, err
	}
	csp.End(obs.Int("cut_width", int64(len(cut))), obs.Float("log2_reach", reach))
	sub, bnd := c.ExtractBounded([]aig.Lit{c.Output(po)}, cut)

	subOpt := opt
	subOpt.SubCircuit = false
	subOpt.AllowDirect = false
	subOpt.ProtectedOutput = 0
	subRes, err := lockDoubleFlip(ctx, sub, subOpt, sp)
	if err != nil {
		return nil, fmt.Errorf("core: sub-circuit lock: %w", err)
	}
	subL := subRes.Locked

	// Stitch: rebuild C, append key inputs, replace the protected output
	// by the locked sub-circuit evaluated on the cut signals.
	enc := c.Copy()
	enc.Name = c.Name + "_obfuslock"
	ks := make([]aig.Lit, subL.KeyBits)
	for i := range ks {
		ks[i] = enc.AddInput(locking.KeyName(i))
	}
	piMap := make([]aig.Lit, len(bnd)+subL.KeyBits)
	for i, v := range bnd {
		piMap[i] = aig.MkLit(v, false)
	}
	copy(piMap[len(bnd):], ks)
	newOut := enc.ImportCone(subL.Enc, piMap, []aig.Lit{subL.Enc.Output(0)})[0]
	enc.SetOutput(po, newOut)
	encC := enc.Cleanup()
	if opt.FinalRewrite {
		encC = rewrite.FunctionalRewrite(encC, rewrite.ObfuscationOptions(opt.Seed+9))
	}

	l := &locking.Locked{
		Scheme:    "obfuslock",
		Enc:       encC,
		NumInputs: c.NumInputs(),
		KeyBits:   subL.KeyBits,
		Key:       subL.Key,
	}
	rep := subRes.Report
	rep.Mode = "sub-circuit"
	rep.ProtectedOutput = po
	rep.CutWidth = len(cut)
	rep.CutLog2Reach = reach
	rep.OrigNodes = c.NumNodes()
	rep.EncNodes = encC.NumNodes()

	// Compose the locking-function reference over the full inputs:
	// L(cut(x)).
	var lockFn *aig.AIG
	if subRes.LockingFunction != nil {
		lockFn = aig.New()
		xs2 := make([]aig.Lit, c.NumInputs())
		for i := range xs2 {
			xs2[i] = lockFn.AddInput(c.InputName(i))
		}
		bndRoots := make([]aig.Lit, len(bnd))
		for i, v := range bnd {
			bndRoots[i] = aig.MkLit(v, false)
		}
		mappedBnd := lockFn.ImportCone(c, xs2, bndRoots)
		lOut := lockFn.ImportCone(subRes.LockingFunction, mappedBnd,
			[]aig.Lit{subRes.LockingFunction.Output(0)})
		lockFn.AddOutput(lOut[0], "L")
	}
	return &Result{Locked: l, Report: rep, LockingFunction: lockFn}, nil
}
