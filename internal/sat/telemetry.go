package sat

import "obfuslock/internal/obs"

// Telemetry histogram names registered by SetTelemetry.
const (
	// MetricConflictDepth is the decision level at each conflict.
	MetricConflictDepth = "sat.conflict_depth"
	// MetricLBD is the literal block distance (distinct decision levels)
	// of each learnt clause — the canonical learnt-quality signal.
	MetricLBD = "sat.lbd"
	// MetricPropsPerDecision is the number of propagations between
	// consecutive branching decisions.
	MetricPropsPerDecision = "sat.props_per_decision"
	// MetricParEpochs counts SolveParallel epoch barriers.
	MetricParEpochs = "sat.par_epochs"
	// MetricParShared counts learnt clauses exchanged at epoch barriers
	// (summed over exporting workers).
	MetricParShared = "sat.par_shared"
	// MetricParWinner counts SolveParallel calls decided by a helper
	// worker rather than the parent search.
	MetricParWinner = "sat.par_winner"
	// MetricParEpochLatency is the wall-clock of each epoch barrier in
	// microseconds.
	MetricParEpochLatency = "sat.par_epoch_us"
)

// SetTelemetry attaches distribution telemetry to the solver: every
// conflict records its decision depth and the learnt clause's LBD, and
// every decision records the propagations since the previous one, into
// the registry's shared histograms (several solvers aggregate into one
// distribution; the histograms are lock-free). A nil registry detaches
// telemetry; with it detached the search loop pays only a nil check per
// conflict. (LBD itself is always computed — the tiered learnt database
// needs it — telemetry only records the value.)
func (s *Solver) SetTelemetry(reg *obs.Registry) {
	if reg == nil {
		s.hConflictDepth, s.hLBD, s.hPropsPerDec = nil, nil, nil
		s.cParEpochs, s.cParShared, s.cParWinner, s.hParEpoch = nil, nil, nil, nil
		return
	}
	s.hConflictDepth = reg.Histogram(MetricConflictDepth)
	s.hLBD = reg.Histogram(MetricLBD)
	s.hPropsPerDec = reg.Histogram(MetricPropsPerDecision)
	s.cParEpochs = reg.Counter(MetricParEpochs)
	s.cParShared = reg.Counter(MetricParShared)
	s.cParWinner = reg.Counter(MetricParWinner)
	s.hParEpoch = reg.Histogram(MetricParEpochLatency)
	s.lastDecProps = s.stats.Propagations
}

// lbd computes the literal block distance of a learnt clause: the
// number of distinct decision levels among its literals. It reuses a
// generation-stamped scratch array so repeated calls never allocate
// once the level space is sized.
func (s *Solver) lbd(learnt []Lit) int {
	need := len(s.trailLim) + 1
	if len(s.lbdStamp) < need {
		grown := make([]uint32, s.numVars+1)
		copy(grown, s.lbdStamp)
		s.lbdStamp = grown
	}
	s.lbdGen++
	n := 0
	for _, l := range learnt {
		lv := s.level[l.Var()]
		if s.lbdStamp[lv] != s.lbdGen {
			s.lbdStamp[lv] = s.lbdGen
			n++
		}
	}
	return n
}

// lbdOfClause is lbd over an arena clause's current assignment levels,
// used to re-score learnt antecedents during conflict analysis (every
// literal of a reason/conflict clause is assigned there).
func (s *Solver) lbdOfClause(c cref) int {
	need := len(s.trailLim) + 1
	if len(s.lbdStamp) < need {
		grown := make([]uint32, s.numVars+1)
		copy(grown, s.lbdStamp)
		s.lbdStamp = grown
	}
	s.lbdGen++
	n := 0
	for _, w := range s.ar.lits(c) {
		lv := s.level[Lit(w).Var()]
		if s.lbdStamp[lv] != s.lbdGen {
			s.lbdStamp[lv] = s.lbdGen
			n++
		}
	}
	return n
}
