// Package locking defines the conventions shared by every locking scheme
// and attack in this repository: how key inputs are represented, how keys
// are applied, and how oracles are queried.
//
// A locked circuit is an AIG whose primary inputs are the m original
// inputs followed by KeyBits key inputs (named k0, k1, ...). Binding the
// key inputs to the correct key restores the original function.
package locking

import (
	"context"
	"fmt"

	"obfuslock/internal/aig"
	"obfuslock/internal/cec"
)

// Locked is a key-protected circuit.
type Locked struct {
	// Scheme names the locking method ("obfuslock", "sarlock", ...).
	Scheme string
	// Enc is the encrypted netlist: inputs = original inputs ++ key inputs.
	Enc *aig.AIG
	// NumInputs is the number of original (non-key) inputs m.
	NumInputs int
	// KeyBits is the key length l.
	KeyBits int
	// Key is the correct key k*.
	Key []bool
}

// Validate checks internal consistency.
func (l *Locked) Validate() error {
	if l.Enc.NumInputs() != l.NumInputs+l.KeyBits {
		return fmt.Errorf("locking: enc has %d inputs, want %d original + %d key",
			l.Enc.NumInputs(), l.NumInputs, l.KeyBits)
	}
	if len(l.Key) != l.KeyBits {
		return fmt.Errorf("locking: key length %d != KeyBits %d", len(l.Key), l.KeyBits)
	}
	return nil
}

// ApplyKey binds the key inputs to constants, returning a circuit over the
// original inputs only.
func (l *Locked) ApplyKey(key []bool) *aig.AIG {
	if len(key) != l.KeyBits {
		panic("locking: key length mismatch")
	}
	ng := aig.New()
	ng.Name = l.Enc.Name
	piMap := make([]aig.Lit, l.Enc.NumInputs())
	for i := 0; i < l.NumInputs; i++ {
		piMap[i] = ng.AddInput(l.Enc.InputName(i))
	}
	for i := 0; i < l.KeyBits; i++ {
		if key[i] {
			piMap[l.NumInputs+i] = aig.ConstTrue
		} else {
			piMap[l.NumInputs+i] = aig.ConstFalse
		}
	}
	outs := ng.Import(l.Enc, piMap)
	for i, o := range outs {
		ng.AddOutput(o, l.Enc.OutputName(i))
	}
	return ng
}

// Unlocked applies the correct key.
func (l *Locked) Unlocked() *aig.AIG { return l.ApplyKey(l.Key) }

// BindInputs binds the first m primary inputs of enc to the constants x,
// keeping the remaining inputs (the key inputs, by convention) free. The
// result is the key-only cone used when recording I/O constraints in
// oracle-guided attacks.
func BindInputs(enc *aig.AIG, m int, x []bool) *aig.AIG {
	return BindInputsInto(aig.New(), enc, m, x)
}

// BindInputsInto is BindInputs building into dst, which is Reset first.
// Reusing one dst across calls keeps the per-call allocations independent
// of how often the cone is rebuilt (the attacks bind one pattern per DIP).
func BindInputsInto(dst, enc *aig.AIG, m int, x []bool) *aig.AIG {
	if len(x) != m || m > enc.NumInputs() {
		panic("locking: BindInputs shape mismatch")
	}
	ng := dst
	ng.Reset()
	piMap := make([]aig.Lit, enc.NumInputs())
	for i := 0; i < m; i++ {
		if x[i] {
			piMap[i] = aig.ConstTrue
		} else {
			piMap[i] = aig.ConstFalse
		}
	}
	for i := m; i < enc.NumInputs(); i++ {
		piMap[i] = ng.AddInput(enc.InputName(i))
	}
	outs := ng.Import(enc, piMap)
	for i, o := range outs {
		ng.AddOutput(o, enc.OutputName(i))
	}
	return ng
}

// VerifyKey checks by SAT whether key restores orig exactly. The proof
// runs unbounded; use VerifyKeyContext to make it cancellable.
func (l *Locked) VerifyKey(orig *aig.AIG, key []bool) (bool, error) {
	return l.VerifyKeyContext(context.Background(), orig, key)
}

// VerifyKeyContext is VerifyKey under a cancellation context; a cancelled
// proof reports an "equivalence undecided" error.
func (l *Locked) VerifyKeyContext(ctx context.Context, orig *aig.AIG, key []bool) (bool, error) {
	return l.VerifyKeyWith(ctx, orig, key, cec.DefaultOptions())
}

// VerifyKeyWith is VerifyKeyContext under explicit equivalence-check
// options — e.g. SAT sweeping (cec.SweepOptions), budgets or tracing.
func (l *Locked) VerifyKeyWith(ctx context.Context, orig *aig.AIG, key []bool, opt cec.Options) (bool, error) {
	r, err := cec.Check(ctx, orig, l.ApplyKey(key), opt)
	if err != nil {
		return false, err
	}
	if !r.Decided {
		return false, fmt.Errorf("locking: equivalence undecided")
	}
	return r.Equivalent, nil
}

// Verify checks internal consistency and that the stored key restores the
// original function exactly.
func (l *Locked) Verify(orig *aig.AIG) error {
	if err := l.Validate(); err != nil {
		return err
	}
	ok, err := l.VerifyKey(orig, l.Key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("locking: stored key does not restore the circuit")
	}
	return nil
}

// VerifyWith is Verify under a cancellation context and explicit
// equivalence-check options (e.g. the swept checker).
func (l *Locked) VerifyWith(ctx context.Context, orig *aig.AIG, opt cec.Options) error {
	if err := l.Validate(); err != nil {
		return err
	}
	ok, err := l.VerifyKeyWith(ctx, orig, l.Key, opt)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("locking: stored key does not restore the circuit")
	}
	return nil
}

// WrongKeyIsWrong checks that the given wrong key corrupts the function.
func (l *Locked) WrongKeyIsWrong(orig *aig.AIG, key []bool) (bool, error) {
	ok, err := l.VerifyKey(orig, key)
	return !ok, err
}

// Oracle models the attacker's working chip: query-only access to the
// original function. It counts queries.
type Oracle struct {
	g       *aig.AIG
	Queries int
}

// NewOracle wraps the original circuit.
func NewOracle(g *aig.AIG) *Oracle { return &Oracle{g: g} }

// Query returns the oracle outputs for one input pattern.
func (o *Oracle) Query(x []bool) []bool {
	o.Queries++
	return o.g.Eval(x)
}

// Circuit returns the wrapped original circuit. Attack portfolios use it
// to give every racing variant its own oracle (query counters are not
// shared across goroutines) and to verify the winning key.
func (o *Oracle) Circuit() *aig.AIG { return o.g }

// NumInputs returns the oracle interface width.
func (o *Oracle) NumInputs() int { return o.g.NumInputs() }

// NumOutputs returns the oracle output width.
func (o *Oracle) NumOutputs() int { return o.g.NumOutputs() }

// KeyInputLits returns the Enc literals of the key inputs.
func (l *Locked) KeyInputLits() []aig.Lit {
	lits := make([]aig.Lit, l.KeyBits)
	for i := range lits {
		lits[i] = l.Enc.Input(l.NumInputs + i)
	}
	return lits
}

// KeyName returns the conventional name of key input i.
func KeyName(i int) string { return fmt.Sprintf("k%d", i) }

// FromNetlist reconstructs a Locked from an encrypted netlist by the key
// naming convention: the trailing inputs named k0, k1, ... are the key.
// The secret key is unknown (nil) — this is the attacker's view.
func FromNetlist(enc *aig.AIG, scheme string) (*Locked, error) {
	n := enc.NumInputs()
	// Find the first input named "k0" such that all following inputs are
	// k1, k2, ... to the end.
	for start := 0; start < n; start++ {
		if enc.InputName(start) != KeyName(0) {
			continue
		}
		ok := true
		for i := start; i < n; i++ {
			if enc.InputName(i) != KeyName(i-start) {
				ok = false
				break
			}
		}
		if ok {
			return &Locked{
				Scheme:    scheme,
				Enc:       enc,
				NumInputs: start,
				KeyBits:   n - start,
			}, nil
		}
	}
	return nil, fmt.Errorf("locking: no trailing k0,k1,... key inputs found")
}
