// Package fraig implements simulation-guided SAT sweeping (ABC-style
// "fraiging"): candidate equivalence classes seeded from 64-way
// bit-parallel simulation signatures are refined with solver
// counterexamples and discharged oldest-first on a single incremental SAT
// solver, merging proven-equivalent nodes into a reduced AIG.
//
// The engine is the substrate of the swept equivalence-checking mode in
// internal/cec: fraiging the combined miter graph collapses the shared
// logic of the two sides before the final (much smaller) miter solve.
//
// Invariants:
//
//   - classes only ever split — a counterexample pattern partitions every
//     class by the simulated value, and two nodes separated once never
//     rejoin;
//   - nodes merge only after an Unsat proof (or a structural hash hit in
//     the rebuilt graph); budget-exhausted queries leave the node intact
//     and mark the sweep undecided;
//   - the sweep is deterministic: patterns come from the seed alone, nodes
//     are processed in ascending variable order (topological, oldest
//     first), and class representatives are always the lowest processed
//     variable, so equal inputs give byte-identical reduced graphs.
package fraig

import (
	"context"
	"time"

	"obfuslock/internal/aig"
	"obfuslock/internal/cnf"
	"obfuslock/internal/exec"
	"obfuslock/internal/obs"
	"obfuslock/internal/sat"
	"obfuslock/internal/sim"
	"obfuslock/internal/simp"
)

// Options configures a sweep.
type Options struct {
	// Words of 64 random simulation patterns seeding the candidate
	// equivalence classes (0: 8).
	Words int
	// Seed drives the random patterns; equal seeds give identical sweeps.
	Seed int64
	// Budget bounds each SAT query (Conflicts is a per-query cap; the
	// wall-clock side is enforced through ctx). An exhausted query leaves
	// its node unmerged and marks the result undecided.
	Budget exec.Budget
	// Simp controls inprocessing of the shared incremental solver (zero
	// value: enabled; simp.Off() disables). Variable elimination is
	// forced off regardless: the sweep keeps encoding new cones against
	// already-encoded internal variables, which elimination would break.
	Simp simp.Options
	// Trace receives the fraig.sweep span and the fraig.* counters
	// (nil: disabled, zero cost).
	Trace *obs.Tracer
}

// DefaultOptions returns the standard sweep configuration: 8 signature
// words and a 10k-conflict cap per query.
func DefaultOptions() Options {
	return Options{Words: 8, Seed: 1, Budget: exec.WithConflicts(10000)}
}

// Stats counts the work of one sweep.
type Stats struct {
	// Classes is the number of initial candidate classes (two or more
	// members with identical normalized signatures).
	Classes int
	// Candidates is the number of nodes initially slated for a proof
	// (class members beyond each representative).
	Candidates int
	// Merges is the number of nodes replaced by an equivalent
	// representative in the reduced graph.
	Merges int
	// SatProved counts merges discharged by an Unsat answer; Structural
	// counts merges that the rebuilt graph's hashing had already
	// performed by the time the proof was attempted.
	SatProved  int
	Structural int
	// SatRefuted counts Sat answers: real counterexamples fed back as new
	// simulation patterns.
	SatRefuted int
	// SimRefuted counts class splits caused by counterexample refinement.
	SimRefuted int
	// Undecided counts queries that exhausted their conflict budget (or
	// were cancelled) and left their node unmerged.
	Undecided int
	// Rounds is the number of counterexample refinement rounds.
	Rounds int
}

// Result reports a completed sweep.
type Result struct {
	// Reduced is the swept graph: identical interface (input/output order
	// and names) and function, with proven-equivalent nodes merged and
	// unreachable logic removed.
	Reduced *aig.AIG
	// Stats counts classes, merges, refutations and proofs.
	Stats Stats
	// Decided is false when at least one query exhausted its budget or
	// the context was cancelled: the reduction is still sound (only
	// proven merges were applied), but possibly incomplete.
	Decided bool
	// SolverStats is the SAT work of the sweep's shared prover.
	SolverStats sat.Stats
}

// MetricProofLatency is the histogram of per-candidate equivalence
// proof latencies (microseconds), one observation per SAT query.
const MetricProofLatency = "fraig.proof_us"

// sweeper carries the mutable state of one Sweep call.
type sweeper struct {
	g       *aig.AIG
	ng      *aig.AIG
	m       []aig.Lit // old var -> literal in ng
	nf      []bool    // signature normalization phase per old var
	classOf []int32   // old var -> class index, -1 when unclassified
	classes [][]uint32
	st      Stats
	hProof  *obs.Histogram // per-query proof latency; nil with telemetry off
}

// Sweep reduces g by merging functionally equivalent nodes. The input
// graph is not modified. Cancelling ctx stops proving (the remaining
// logic is copied unmerged) and marks the result undecided.
func Sweep(ctx context.Context, g *aig.AIG, opt Options) *Result {
	if opt.Words <= 0 {
		opt.Words = 8
	}
	tr := opt.Trace
	sp := tr.Span("fraig.sweep",
		obs.Int("nodes", int64(g.NumNodes())),
		obs.Int("words", int64(opt.Words)))

	sw := &sweeper{g: g, ng: aig.New(), hProof: tr.Histogram(MetricProofLatency)}
	sw.ng.Name = g.Name
	sw.buildClasses(opt)

	// Rebuild oldest-first on a single incremental solver. Learnt clauses
	// and proven equalities (added as unit clauses over the query
	// selectors) persist across queries.
	s := sat.New()
	s.SetContext(ctx)
	s.SetTelemetry(tr.Registry())
	enc := cnf.NewEncoder(sw.ng, s)
	sw.m = make([]aig.Lit, g.MaxVar()+1)
	sw.m[0] = aig.ConstFalse
	for i := 0; i < g.NumInputs(); i++ {
		sw.m[g.InputVar(i)] = sw.ng.AddInput(g.InputName(i))
		enc.InputLit(i) // pre-create the solver variable for cex extraction
	}

	// Inprocessing: every simpEvery SAT queries, re-simplify the shared
	// solver (subsumption/strengthening/vivification only — the sweep
	// keeps adding cones over internal variables, so elimination is off).
	fopt := opt.Simp
	fopt.NoVarElim = true
	simpEvery := fopt.InprocessEvery
	if simpEvery == 0 {
		simpEvery = 64
	}
	lastSimp := 0

	decided := true
	proving := true
	for v := uint32(1); v <= g.MaxVar(); v++ {
		fan := g.Fanins(v)
		f := func(i int) aig.Lit { return sw.m[fan[i].Var()].NotIf(fan[i].IsCompl()) }
		switch g.Op(v) {
		case aig.OpInput:
			continue // mapped above
		case aig.OpAnd:
			sw.m[v] = sw.ng.And(f(0), f(1))
		case aig.OpXor:
			sw.m[v] = sw.ng.Xor(f(0), f(1))
		case aig.OpMaj:
			sw.m[v] = sw.ng.Maj(f(0), f(1), f(2))
		}
		if sw.classOf[v] < 0 || !proving {
			continue
		}
		if ctx != nil && ctx.Err() != nil {
			proving, decided = false, false
			continue
		}
		switch sw.prove(ctx, v, s, enc, opt, sp) {
		case proveUndecided:
			decided = false
			if ctx != nil && ctx.Err() != nil {
				proving = false
			}
		}
		if q := sw.st.SatProved + sw.st.SatRefuted + sw.st.Undecided; fopt.Enabled() && simpEvery > 0 && q-lastSimp >= simpEvery {
			lastSimp = q
			simp.Apply(s, fopt, tr)
		}
	}
	for i, po := range g.Outputs() {
		sw.ng.AddOutput(sw.m[po.Var()].NotIf(po.IsCompl()), g.OutputName(i))
	}
	reduced := sw.ng.Cleanup()

	if tr.Enabled() {
		tr.Counter("fraig.classes").Add(int64(sw.st.Classes))
		tr.Counter("fraig.merges").Add(int64(sw.st.Merges))
		tr.Counter("fraig.sim_refuted").Add(int64(sw.st.SimRefuted))
		tr.Counter("fraig.sat_proved").Add(int64(sw.st.SatProved))
		tr.Counter("fraig.undecided").Add(int64(sw.st.Undecided))
	}
	sp.End(
		obs.Int("classes", int64(sw.st.Classes)),
		obs.Int("merges", int64(sw.st.Merges)),
		obs.Int("rounds", int64(sw.st.Rounds)),
		obs.Int("nodes_out", int64(reduced.NumNodes())),
		obs.Bool("decided", decided))
	return &Result{Reduced: reduced, Stats: sw.st, Decided: decided, SolverStats: s.Stats()}
}

// buildClasses seeds the candidate classes from phase-normalized
// simulation signatures. Variable 0 (constant false) participates, so
// constant-valued nodes become candidates against the constant.
func (sw *sweeper) buildClasses(opt Options) {
	g := sw.g
	vec := sim.RunRandom(g, opt.Words, opt.Seed)
	sw.nf = make([]bool, g.MaxVar()+1)
	sw.classOf = make([]int32, g.MaxVar()+1)
	buckets := make(map[string]int32)
	var keyBuf []byte
	for v := uint32(0); v <= g.MaxVar(); v++ {
		sw.classOf[v] = -1
		words := vec.Node(v)
		// Normalize so that a node and its complement share a class: flip
		// the signature when its first bit is set.
		sw.nf[v] = len(words) > 0 && words[0]&1 == 1
		keyBuf = keyBuf[:0]
		for _, w := range words {
			if sw.nf[v] {
				w = ^w
			}
			keyBuf = append(keyBuf,
				byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
				byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
		}
		key := string(keyBuf)
		if cid, ok := buckets[key]; ok {
			sw.classes[cid] = append(sw.classes[cid], v)
			sw.classOf[v] = cid
		} else {
			cid = int32(len(sw.classes))
			buckets[key] = cid
			sw.classes = append(sw.classes, []uint32{v})
			sw.classOf[v] = cid
		}
	}
	// Unclassify singletons so the rebuild loop skips them outright.
	for cid, members := range sw.classes {
		if len(members) < 2 {
			for _, v := range members {
				sw.classOf[v] = -1
			}
			sw.classes[cid] = nil
			continue
		}
		sw.st.Classes++
		sw.st.Candidates += len(members) - 1
	}
}

type proveOutcome int

const (
	proveDone proveOutcome = iota
	proveUndecided
)

// prove tries to merge v into the representative of its class, feeding Sat
// counterexamples back as refinement patterns and retrying against the new
// representative until v either merges, becomes its own representative, or
// the budget runs out.
func (sw *sweeper) prove(ctx context.Context, v uint32, s *sat.Solver, enc *cnf.Encoder, opt Options, sp *obs.Span) proveOutcome {
	for {
		members := sw.classes[sw.classOf[v]]
		u := members[0]
		if u == v {
			return proveDone // v is the representative
		}
		target := sw.m[u].NotIf(sw.nf[v] != sw.nf[u])
		if sw.m[v] == target {
			// The rebuild's structural hashing already merged them.
			sw.st.Merges++
			sw.st.Structural++
			return proveDone
		}
		lits := enc.Encode(sw.m[v], target)
		d := cnf.XorLit(s, lits[0], lits[1])
		s.SetBudget(opt.Budget.ConflictCap())
		var t0 time.Time
		if sw.hProof != nil {
			t0 = time.Now()
		}
		// Unbudgeted proofs ride the parallel portfolio (a conflict cap
		// makes SolveParallel fall back to the sequential solver, so
		// budgeted sweeps stay exactly as before).
		var status sat.Status
		if wk := opt.Budget.SatWorkerCount(); wk > 1 {
			status = s.SolveParallel(ctx, wk, d)
		} else {
			status = s.Solve(d)
		}
		if sw.hProof != nil {
			sw.hProof.RecordDuration(time.Since(t0))
		}
		switch status {
		case sat.Unsat:
			s.AddClause(d.Not()) // lock the proven equality in for later queries
			sw.m[v] = target
			sw.st.Merges++
			sw.st.SatProved++
			return proveDone
		case sat.Sat:
			sw.st.SatRefuted++
			pattern := make([]bool, sw.ng.NumInputs())
			for i := range pattern {
				pattern[i] = s.ModelValue(enc.InputLit(i))
			}
			splits := sw.refine(pattern)
			sw.st.Rounds++
			sp.Event("fraig.refine",
				obs.Int("round", int64(sw.st.Rounds)),
				obs.Int("splits", int64(splits)))
			// v is now provably separated from u; loop against the new
			// representative (strictly fewer older members remain).
		default:
			sw.st.Undecided++
			return proveUndecided
		}
	}
}

// refine replays one counterexample pattern on the original graph and
// partitions every candidate class by the observed (normalized) value.
// Classes only ever split; each split keeps its representative group under
// the old class index and appends the other group as a new class.
func (sw *sweeper) refine(pattern []bool) int {
	vals := sim.EvalAll(sw.g, pattern)
	splits := 0
	n := len(sw.classes) // new classes appended below are already consistent
	for cid := 0; cid < n; cid++ {
		members := sw.classes[cid]
		if len(members) < 2 {
			continue
		}
		ref := vals[members[0]] != sw.nf[members[0]]
		var stay, move []uint32
		for _, u := range members {
			if (vals[u] != sw.nf[u]) == ref {
				stay = append(stay, u)
			} else {
				move = append(move, u)
			}
		}
		if len(move) == 0 {
			continue
		}
		splits++
		sw.st.SimRefuted++
		sw.classes[cid] = stay
		nid := int32(len(sw.classes))
		sw.classes = append(sw.classes, move)
		for _, u := range move {
			sw.classOf[u] = nid
		}
	}
	return splits
}
