package service

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Wire schema identifiers. SchemaVersion names the job-submission layout
// and ResultSchema the result layout; both are versioned independently
// of the package so clients can pin what they parse. Bumping either is
// an API change: the golden round-trip tests and the CI schema-diff step
// both fail until the goldens and docs are regenerated to match.
const (
	// SchemaVersion is the versioned job-spec schema accepted by
	// POST /v1/jobs (and by the in-process facade runner).
	SchemaVersion = "obfuslock-job/v1"
	// ResultSchema is the versioned result layout embedded in a finished
	// job's envelope.
	ResultSchema = "obfuslock-result/v1"
)

// Job kinds accepted by JobSpec.Kind.
const (
	// KindLock applies a locking scheme to Circuit.
	KindLock = "lock"
	// KindAttack runs a registered oracle-guided attack against the
	// locked netlist in Circuit with Oracle as the working chip.
	KindAttack = "attack"
	// KindCEC decides functional equivalence of Circuit and Oracle.
	KindCEC = "cec"
	// KindCount approximately counts models of one output of Circuit.
	KindCount = "count"
	// KindSample estimates the skewness of one output of Circuit in bits.
	KindSample = "sample"
)

// Kinds lists the accepted job kinds in documentation order.
func Kinds() []string {
	return []string{KindLock, KindAttack, KindCEC, KindCount, KindSample}
}

// Budget is the wire form of an execution budget: wall clock in
// milliseconds, a SAT conflict cap, and the per-solve SAT portfolio
// width. It is the same vocabulary as the in-process exec.Budget — the
// facade converts between the two losslessly — with explicit integer
// units so the JSON never depends on Go duration formatting.
type Budget struct {
	// TimeoutMS bounds the job's wall clock in milliseconds (0: none).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxConflicts caps SAT conflicts per solve (0: unlimited).
	MaxConflicts int64 `json:"max_conflicts,omitempty"`
	// SatWorkers is the deterministic SAT portfolio width per solve
	// (0 or 1: sequential; n>1: n workers; results are byte-identical
	// at every setting).
	SatWorkers int `json:"sat_workers,omitempty"`
}

// SchemeOptions parameterizes the locking schemes. It is the single
// options vocabulary for both paths — the facade's LockWith takes it
// directly and JobSpec carries it over the wire — so a job submitted
// over HTTP and an in-process call are the same object. Each scheme
// reads the fields it needs and ignores the rest; zero values fall back
// to per-scheme defaults.
type SchemeOptions struct {
	// KeyBits is the number of inserted key gates (RLL).
	KeyBits int `json:"key_bits,omitempty"`
	// ProtWidth is the protected input width (SARLock, Anti-SAT, TTLock,
	// SFLL-HD): the flip logic watches this many inputs.
	ProtWidth int `json:"prot_width,omitempty"`
	// HammingDistance is SFLL-HD's protected distance h.
	HammingDistance int `json:"hamming_distance,omitempty"`
	// SkewBits is the target skewness for the "obfuslock" scheme
	// (0: the facade default of 20 bits).
	SkewBits float64 `json:"skew_bits,omitempty"`
	// Seed drives each scheme's randomized choices.
	Seed int64 `json:"seed,omitempty"`
}

// AttackOptions is the serializable subset of the oracle-guided attack
// knobs: everything that shapes the attack transcript and nothing that
// holds a runtime handle (tracers and caches are per-process and never
// ride the wire). Wall clock, conflict caps and SAT parallelism live in
// the job's Budget.
type AttackOptions struct {
	// MaxIterations caps DIP iterations (0: unlimited).
	MaxIterations int `json:"max_iterations,omitempty"`
	// Seed drives randomized reinforcement (AppSAT) and portfolio
	// reseeding.
	Seed int64 `json:"seed,omitempty"`
	// DIPBatch is the bit-parallel DIP batching width (0: default;
	// 1: classic serial loop).
	DIPBatch int `json:"dip_batch,omitempty"`
	// ReinforceEvery iterations AppSAT adds random-query constraints.
	ReinforceEvery int `json:"reinforce_every,omitempty"`
	// RandomQueries per AppSAT reinforcement round.
	RandomQueries int `json:"random_queries,omitempty"`
}

// JobSpec is one versioned job submission: the body of POST /v1/jobs and
// the argument of the facade's RunJob. Circuits travel as .bench text so
// the wire format needs no binary framing and stays diffable.
type JobSpec struct {
	// Schema must equal SchemaVersion.
	Schema string `json:"schema"`
	// Kind selects the pipeline: lock, attack, cec, count or sample.
	Kind string `json:"kind"`
	// Tenant attributes the job for quota accounting (empty: "default").
	Tenant string `json:"tenant,omitempty"`
	// Label is an optional client tag echoed in the job envelope.
	Label string `json:"label,omitempty"`
	// Circuit is the primary .bench netlist: the circuit to lock, the
	// locked design to attack (key inputs named k0, k1, ...), the left
	// side of a CEC pair, or the circuit to count/sample over.
	Circuit string `json:"circuit,omitempty"`
	// Oracle is the secondary .bench netlist: the attacker's working
	// chip (attack) or the right side of a CEC pair.
	Oracle string `json:"oracle,omitempty"`
	// Scheme names the locking scheme for lock jobs ("obfuslock" or any
	// registered baseline).
	Scheme string `json:"scheme,omitempty"`
	// SchemeOptions parameterizes the scheme (nil: defaults).
	SchemeOptions *SchemeOptions `json:"scheme_options,omitempty"`
	// Attack names the registered attack for attack jobs.
	Attack string `json:"attack,omitempty"`
	// AttackOptions parameterizes the attack (nil: defaults).
	AttackOptions *AttackOptions `json:"attack_options,omitempty"`
	// Budget bounds the job (nil: unlimited, subject to tenant caps).
	Budget *Budget `json:"budget,omitempty"`
	// Output is the output index for count/sample jobs.
	Output int `json:"output,omitempty"`
	// Sweep selects SAT sweeping for cec jobs (nil: enabled).
	Sweep *bool `json:"sweep,omitempty"`
	// Seed drives the randomized parts of cec/count/sample jobs.
	Seed int64 `json:"seed,omitempty"`
}

// JobResult is the versioned outcome of a finished job. It carries no
// wall-clock fields on purpose: two runs of the same spec — serial or
// under heavy concurrency, cache cold or warm — must produce
// byte-identical encodings, which is what the loadgen soak asserts.
// Timing lives in the job envelope, not the result.
type JobResult struct {
	// Schema equals ResultSchema.
	Schema string `json:"schema"`
	// Kind echoes the spec's kind.
	Kind string `json:"kind"`
	// Scheme echoes the lock scheme (lock jobs).
	Scheme string `json:"scheme,omitempty"`
	// Attack echoes the attack name (attack jobs).
	Attack string `json:"attack,omitempty"`
	// Locked is the locked netlist as .bench text (lock jobs).
	Locked string `json:"locked,omitempty"`
	// Key is the secret key (lock jobs) or the recovered key (attack
	// jobs) as a 0/1 string, k0 first; empty when no key was recovered.
	Key string `json:"key,omitempty"`
	// KeyBits is the key length (lock and attack jobs).
	KeyBits int `json:"key_bits,omitempty"`
	// Exact is true when an attack proved its key correct (termination).
	Exact bool `json:"exact,omitempty"`
	// TimedOut is true when an attack hit its budget before terminating.
	TimedOut bool `json:"timed_out,omitempty"`
	// Iterations counts DIPs processed (attack jobs).
	Iterations int `json:"iterations,omitempty"`
	// Queries counts oracle queries (attack jobs).
	Queries int `json:"queries,omitempty"`
	// Equivalent reports the CEC verdict (cec jobs, when decided).
	Equivalent *bool `json:"equivalent,omitempty"`
	// Decided is false when a budget expired before a cec/count verdict.
	Decided *bool `json:"decided,omitempty"`
	// Log2Count estimates log2 of the model count (count jobs; omitted
	// when the count is zero — see CountZero).
	Log2Count *float64 `json:"log2_count,omitempty"`
	// CountZero is true when the model count is exactly zero (count
	// jobs; JSON cannot carry the -Inf that log2 would be).
	CountZero bool `json:"count_zero,omitempty"`
	// ExactCount is true when the count was fully enumerated.
	ExactCount bool `json:"exact_count,omitempty"`
	// SkewBits is the estimated output skewness in bits (sample jobs).
	SkewBits *float64 `json:"skew_bits,omitempty"`
}

// Error is the structured error body every non-2xx response carries:
//
//	{"error": {"code": "quota_exhausted", "message": "..."}}
//
// Code is machine-matchable and stable; Message is human-readable.
type Error struct {
	// Code identifies the failure class (see the Code* constants).
	Code string `json:"code"`
	// Message elaborates for humans.
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e == nil {
		return "<nil>"
	}
	return e.Code + ": " + e.Message
}

// Stable error codes. The HTTP status each maps to is fixed by
// HTTPStatus, so clients can branch on either.
const (
	// CodeBadRequest covers malformed JSON, unknown fields and
	// per-kind validation failures (HTTP 400).
	CodeBadRequest = "bad_request"
	// CodeBadSchema reports an unsupported schema version (HTTP 400).
	CodeBadSchema = "bad_schema"
	// CodeUnknownJob reports a job id the server does not know (404).
	CodeUnknownJob = "unknown_job"
	// CodeQuotaExhausted reports a tenant over its concurrency quota
	// (HTTP 429).
	CodeQuotaExhausted = "quota_exhausted"
	// CodeQueueFull reports scheduler backpressure: the bounded backlog
	// is full (HTTP 429).
	CodeQueueFull = "queue_full"
	// CodeDraining reports that the server is shutting down and no
	// longer admits jobs (HTTP 503).
	CodeDraining = "draining"
	// CodeCancelled marks a job cancelled by the client (job envelope
	// only).
	CodeCancelled = "cancelled"
	// CodeFailed marks a job whose execution errored (job envelope only).
	CodeFailed = "failed"
)

// HTTPStatus maps an error code to its HTTP status. Unknown codes map
// to 500.
func HTTPStatus(code string) int {
	switch code {
	case CodeBadRequest, CodeBadSchema:
		return 400
	case CodeUnknownJob:
		return 404
	case CodeQuotaExhausted, CodeQueueFull:
		return 429
	case CodeDraining:
		return 503
	default:
		return 500
	}
}

// Errorf builds a structured error.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// maxSpecBytes bounds one job submission (netlists included). Large
// enough for every benchmark in the suite, small enough that a stray
// client cannot balloon the daemon.
const maxSpecBytes = 64 << 20

// DecodeSpec parses one JobSpec from r under the strict wire contract:
// unknown fields are rejected (schema evolution is explicit — new fields
// come with a version bump or are added here first), trailing garbage is
// rejected, and the spec is validated. The returned error is the
// structured 400/bad_schema body.
func DecodeSpec(r io.Reader) (JobSpec, *Error) {
	var spec JobSpec
	dec := json.NewDecoder(io.LimitReader(r, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, Errorf(CodeBadRequest, "invalid job spec: %v", err)
	}
	if dec.More() {
		return spec, Errorf(CodeBadRequest, "invalid job spec: trailing data after the JSON object")
	}
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

// Validate checks the schema version, the kind, and the per-kind
// required fields. It does not parse the embedded netlists or check
// scheme/attack names against a registry — the server layers that on
// with the registries it was configured with.
func (s *JobSpec) Validate() *Error {
	if s.Schema != SchemaVersion {
		return Errorf(CodeBadSchema, "unsupported schema %q (this server speaks %s)", s.Schema, SchemaVersion)
	}
	switch s.Kind {
	case KindLock:
		if s.Circuit == "" {
			return Errorf(CodeBadRequest, "lock jobs require a circuit")
		}
		if s.Scheme == "" {
			return Errorf(CodeBadRequest, "lock jobs require a scheme")
		}
		if s.Attack != "" || s.AttackOptions != nil {
			return Errorf(CodeBadRequest, "lock jobs take no attack fields")
		}
	case KindAttack:
		if s.Circuit == "" || s.Oracle == "" {
			return Errorf(CodeBadRequest, "attack jobs require a locked circuit and an oracle")
		}
		if s.Attack == "" {
			return Errorf(CodeBadRequest, "attack jobs require an attack name")
		}
		if s.Scheme != "" || s.SchemeOptions != nil {
			return Errorf(CodeBadRequest, "attack jobs take no scheme fields")
		}
	case KindCEC:
		if s.Circuit == "" || s.Oracle == "" {
			return Errorf(CodeBadRequest, "cec jobs require two circuits (circuit, oracle)")
		}
	case KindCount, KindSample:
		if s.Circuit == "" {
			return Errorf(CodeBadRequest, "%s jobs require a circuit", s.Kind)
		}
		if s.Output < 0 {
			return Errorf(CodeBadRequest, "output index must be non-negative, got %d", s.Output)
		}
	default:
		return Errorf(CodeBadRequest, "unknown kind %q (have %s)", s.Kind, strings.Join(Kinds(), ", "))
	}
	if b := s.Budget; b != nil {
		if b.TimeoutMS < 0 {
			return Errorf(CodeBadRequest, "budget.timeout_ms must be non-negative, got %d", b.TimeoutMS)
		}
		if b.MaxConflicts < 0 {
			return Errorf(CodeBadRequest, "budget.max_conflicts must be non-negative, got %d", b.MaxConflicts)
		}
	}
	return nil
}

// TenantOrDefault resolves the quota-accounting tenant.
func (s *JobSpec) TenantOrDefault() string {
	if s.Tenant == "" {
		return "default"
	}
	return s.Tenant
}
