// IP-protection walkthrough: the full defender + red-team flow on the
// c6288-class multiplier — lock, measure PPA overhead, then run the entire
// attack battery (I/O and structural) against the shipped netlist.
//
// This is the workload the paper's introduction motivates: an untrusted
// foundry holds the encrypted netlist and a working chip, and must not be
// able to recover the function.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"obfuslock"
	"obfuslock/internal/attacks"
	"obfuslock/internal/cec"
	"obfuslock/internal/exec"
	"obfuslock/internal/experiments"
	"obfuslock/internal/locking"
	"obfuslock/internal/netlistgen"
	"obfuslock/internal/simp"
)

func main() {
	// The IP to protect: a 16-bit adder/comparator datapath (c7552
	// family, reduced so the demo finishes in seconds; 33 inputs keep the
	// wrong-key corruption set at ~2^23 patterns, far beyond any bypass
	// budget — multiplier-class IPs work too but their XOR-dense miters
	// make the red-team equivalence proofs slow).
	c := netlistgen.AdderCmp(16)
	fmt.Printf("IP: %s — %s\n", c.Name, c.Stats())

	// ---- Defender side -------------------------------------------------
	opt := obfuslock.DefaultOptions()
	opt.TargetSkewBits = 10
	opt.Seed = 7
	opt.AllowDirect = false
	start := time.Now()
	res, err := obfuslock.Lock(c, opt)
	if err != nil {
		log.Fatal(err)
	}
	l := res.Locked
	fmt.Printf("locked in %v: key=%d bits, L skew=%.1f bits (%d operator attachments)\n",
		time.Since(start), res.Report.KeyBits, res.Report.SkewBits, res.Report.Attachments)

	if err := l.Verify(c); err != nil {
		log.Fatal(err)
	}
	fmt.Println("key verified by SAT equivalence checking")

	orig := obfuslock.AnalyzePPA(c, 8, 1)
	locked := obfuslock.AnalyzePPA(l.Enc, 8, 1)
	ov := obfuslock.ComparePPA(orig, locked)
	fmt.Printf("PPA: original %v\n     locked   %v\n", orig, locked)
	fmt.Printf("overhead: area %.1f%%, power %.1f%%, delay %.1f%%\n",
		ov.AreaPct, ov.PowerPct, ov.DelayPct)

	// Fig. 4 style check: before/after structural transformation.
	before, after, err := experiments.Fig4(context.Background(), c, 10, 7, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig4 before transformation: critical node visible = %v (max skew %.1f bits)\n",
		before.CriticalVisible, before.MaxSkewBits)
	fmt.Printf("Fig4 after  transformation: critical node visible = %v\n",
		after.CriticalVisible)

	// ---- Attacker side -------------------------------------------------
	oracle := locking.NewOracle(c)
	fmt.Println("\nred team: oracle-guided I/O attacks")
	aopt := attacks.DefaultIOOptions()
	aopt.MaxIterations = 64
	aopt.Timeout = time.Minute
	sat := attacks.SATAttack(context.Background(), l, oracle, aopt)
	fmt.Printf("  SAT attack:   %s\n", verdict(l, c, sat))
	app := attacks.AppSAT(context.Background(), l, oracle, aopt)
	fmt.Printf("  AppSAT:       %s\n", verdict(l, c, app))

	sens := attacks.Sensitization(context.Background(), l, oracle, exec.WithConflicts(200000), simp.Default())
	fmt.Printf("  sensitization: %d/%d key bits isolatable\n", sens.NumIsolatable, l.KeyBits)

	fmt.Println("red team: structural attacks")
	_, survives := attacks.CriticalNodeSurvives(context.Background(), l, c, c.Output(res.Report.ProtectedOutput), cec.DefaultFindOptions())
	fmt.Printf("  critical node survives CEC search: %v\n", survives)

	copt := cec.DefaultOptions()
	copt.Budget = exec.WithConflicts(50000)
	sps := attacks.SPS(l, 128, 1, 8)
	rm := attacks.Removal(context.Background(), l, c, sps.Candidates, copt)
	fmt.Printf("  SPS+removal:  success=%v (%d candidates tried)\n", rm.Success, rm.Tried)

	vk := attacks.Valkyrie(context.Background(), l, c, 6, 64, 1, copt)
	fmt.Printf("  valkyrie:     found perturb/restore pair=%v (%d pairs tried)\n",
		vk.FoundPair, vk.PairsTried)

	spi := attacks.SPI(l, 6)
	ok, _ := l.VerifyKey(c, spi.Key)
	fmt.Printf("  SPI:          returned correct key=%v\n", ok)

	wrong := make([]bool, l.KeyBits)
	bp := attacks.Bypass(context.Background(), l, c, wrong, 128, exec.WithConflicts(500000), simp.Default())
	fmt.Printf("  bypass:       feasible=%v (corrupted patterns enumerated: %d, budget exhausted: %v)\n",
		bp.Success, bp.Patterns, bp.Exhausted)
}

func verdict(l *obfuslock.Locked, c *obfuslock.Circuit, r attacks.IOResult) string {
	if r.Key != nil {
		if ok, _ := l.VerifyKey(c, r.Key); ok {
			return fmt.Sprintf("BROKEN in %d iterations (%v)", r.Iterations, r.Runtime)
		}
	}
	return fmt.Sprintf("defeated — %d iterations, wrong/no key (%v)", r.Iterations, r.Runtime)
}
