// Command loadgen soak-tests an obfuslockd daemon: it generates a
// deterministic mixed workload (lock, attack, cec, count and sample
// jobs over the small benchmark suite), computes every expected result
// serially in-process through the same RunJob path the daemon uses, then
// submits the jobs concurrently and asserts the daemon's result bytes
// are identical to the serial reference — the service layer's
// determinism contract, checked end to end under backpressure.
//
//	obfuslockd -addr localhost:8080 -tenants "soak=8" &
//	loadgen -addr http://localhost:8080 -jobs 64 -concurrency 16 -tenant soak
//
// A slice of the jobs is cancelled right after submission to exercise
// DELETE /v1/jobs/{id}; those are excluded from the byte comparison.
// 429 responses (tenant quota, queue backpressure) are retried and
// counted — a soak against a quota-limited daemon SHOULD see some, or it
// never exercised admission control.
//
// The run report is JSON on stdout:
//
//	{"jobs":64,"completed":58,"cancelled":6,"failed":0,
//	 "mismatches":0,"rejected_429":17}
//
// Exit status is non-zero on any mismatch or unexpected job failure, so
// CI can gate on it directly.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"obfuslock"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "obfuslockd base URL")
	jobs := flag.Int("jobs", 64, "number of jobs to submit")
	concurrency := flag.Int("concurrency", 16, "concurrent submitters")
	tenant := flag.String("tenant", "", "tenant name for quota accounting")
	seed := flag.Int64("seed", 1, "workload master seed")
	cancelEvery := flag.Int("cancel-every", 8, "cancel every n-th job after submission (0: never)")
	pollEvery := flag.Duration("poll", 20*time.Millisecond, "status poll interval")
	timeout := flag.Duration("timeout", 5*time.Minute, "whole-run deadline")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	specs := buildWorkload(*jobs, *seed, *tenant)

	// The serial reference run: the same specs through the same RunJob
	// path, one at a time, no cache. Byte-identity of the daemon's
	// results against these bytes is the whole point of the soak.
	expected := make([][]byte, len(specs))
	for i, spec := range specs {
		res, err := obfuslock.RunJob(ctx, spec, obfuslock.JobRuntime{})
		if err != nil {
			fatal(fmt.Errorf("serial reference job %d (%s): %w", i, spec.Kind, err))
		}
		enc, err := json.Marshal(res)
		if err != nil {
			fatal(err)
		}
		expected[i] = enc
	}

	var completed, cancelled, failed, mismatches, rejected atomic.Int64
	client := &http.Client{}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				runOne(ctx, client, *addr, specs[i], expected[i], i%max(*cancelEvery, 1) == 0 && *cancelEvery > 0,
					*pollEvery, &completed, &cancelled, &failed, &mismatches, &rejected)
			}
		}()
	}
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()

	report := map[string]int64{
		"jobs":         int64(len(specs)),
		"completed":    completed.Load(),
		"cancelled":    cancelled.Load(),
		"failed":       failed.Load(),
		"mismatches":   mismatches.Load(),
		"rejected_429": rejected.Load(),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.Encode(report)
	if mismatches.Load() > 0 || failed.Load() > 0 {
		os.Exit(1)
	}
}

// envelope is the client-side view of a job Status: Result stays raw so
// the comparison sees the daemon's exact bytes, not a re-encoding.
type envelope struct {
	ID     string              `json:"id"`
	State  string              `json:"state"`
	Result json.RawMessage     `json:"result"`
	Error  *obfuslock.JobError `json:"error"`
}

// runOne submits one job (retrying 429 backpressure), optionally cancels
// it, polls it to a terminal state and scores the outcome.
func runOne(ctx context.Context, client *http.Client, addr string, spec obfuslock.JobSpec, want []byte,
	cancelIt bool, poll time.Duration,
	completed, cancelled, failed, mismatches, rejected *atomic.Int64) {
	body, err := json.Marshal(spec)
	if err != nil {
		failed.Add(1)
		return
	}
	var env envelope
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			failed.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			failed.Add(1)
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected.Add(1)
			select {
			case <-ctx.Done():
				failed.Add(1)
				return
			case <-time.After(time.Duration(10+attempt%20*10) * time.Millisecond):
			}
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			fmt.Fprintf(os.Stderr, "loadgen: submit %s: HTTP %d: %s\n", spec.Kind, resp.StatusCode, strings.TrimSpace(string(data)))
			failed.Add(1)
			return
		}
		if err := json.Unmarshal(data, &env); err != nil {
			failed.Add(1)
			return
		}
		break
	}
	if cancelIt {
		req, _ := http.NewRequestWithContext(ctx, http.MethodDelete, addr+"/v1/jobs/"+env.ID, nil)
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/jobs/"+env.ID, nil)
		if err != nil {
			failed.Add(1)
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			failed.Add(1)
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(data, &env); err != nil {
			failed.Add(1)
			return
		}
		switch env.State {
		case "done":
			completed.Add(1)
			if !bytes.Equal(env.Result, want) {
				mismatches.Add(1)
				fmt.Fprintf(os.Stderr, "loadgen: MISMATCH job %s (%s):\n  daemon: %s\n  serial: %s\n",
					env.ID, spec.Kind, env.Result, want)
			}
			return
		case "cancelled":
			// Expected only for cancel targets; anything else lost a race
			// with the daemon's drain and counts as a failure.
			if cancelIt {
				cancelled.Add(1)
			} else {
				failed.Add(1)
			}
			return
		case "failed":
			failed.Add(1)
			if env.Error != nil {
				fmt.Fprintf(os.Stderr, "loadgen: job %s failed: %s\n", env.ID, env.Error.Message)
			}
			return
		}
		select {
		case <-ctx.Done():
			failed.Add(1)
			return
		case <-time.After(poll):
		}
	}
}

// buildWorkload generates the deterministic mixed spec list: per-index
// kinds and per-index seeds derived from the master seed, so the same
// (-jobs, -seed) pair always produces the same workload — and therefore
// the same expected bytes.
func buildWorkload(n int, seed int64, tenant string) []obfuslock.JobSpec {
	suite := obfuslock.SmallBenchmarks()
	benches := make([]string, len(suite))
	// Approximate model counting is exponential in input width; count
	// jobs stay on the narrow circuits so the soak is bounded by SAT
	// work, not by one pathological counting instance.
	var narrow []string
	for i, b := range suite {
		c := b.Build()
		var sb strings.Builder
		if err := obfuslock.WriteBench(&sb, c); err != nil {
			fatal(err)
		}
		benches[i] = sb.String()
		if len(c.Inputs()) <= 16 {
			narrow = append(narrow, benches[i])
		}
	}
	if len(narrow) == 0 {
		narrow = benches[:1]
	}
	schemes := obfuslock.Schemes()
	specs := make([]obfuslock.JobSpec, 0, n)
	for i := 0; i < n; i++ {
		s := obfuslock.DeriveSeed(seed, i)
		bench := benches[i%len(benches)]
		spec := obfuslock.JobSpec{
			Schema: obfuslock.JobSchemaVersion,
			Tenant: tenant,
			Label:  fmt.Sprintf("soak-%03d", i),
		}
		switch i % 5 {
		case 0, 1: // lock: rotate through the baseline schemes
			scheme := schemes[i%len(schemes)]
			spec.Kind = "lock"
			spec.Circuit = bench
			spec.Scheme = scheme
			spec.SchemeOptions = &obfuslock.SchemeOptions{
				KeyBits: 8, ProtWidth: 6, HammingDistance: 1, Seed: s,
			}
		case 2: // attack a freshly locked baseline, iteration-capped
			locked := lockFor(bench, schemes[i%len(schemes)], s)
			spec.Kind = "attack"
			spec.Circuit = locked
			spec.Oracle = bench
			spec.Attack = "sat"
			spec.AttackOptions = &obfuslock.JobAttackOptions{MaxIterations: 16, Seed: s}
		case 3: // cec: a circuit against itself (provably equivalent)
			spec.Kind = "cec"
			spec.Circuit = bench
			spec.Oracle = bench
			spec.Seed = s
		default: // count or sample, alternating
			if i%2 == 0 {
				spec.Kind = "count"
				spec.Circuit = narrow[i%len(narrow)]
			} else {
				spec.Kind = "sample"
				spec.Circuit = bench
			}
			spec.Output = 0
			spec.Seed = s
		}
		specs = append(specs, spec)
	}
	return specs
}

// lockFor builds an attack target in-process: the .bench text of the
// named baseline applied to the circuit.
func lockFor(benchText, scheme string, seed int64) string {
	res, err := obfuslock.RunJob(context.Background(), obfuslock.JobSpec{
		Schema:  obfuslock.JobSchemaVersion,
		Kind:    "lock",
		Circuit: benchText,
		Scheme:  scheme,
		SchemeOptions: &obfuslock.SchemeOptions{
			KeyBits: 8, ProtWidth: 6, HammingDistance: 1, Seed: seed,
		},
	}, obfuslock.JobRuntime{})
	if err != nil {
		fatal(err)
	}
	return res.Locked
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
