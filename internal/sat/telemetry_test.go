package sat

import (
	"testing"

	"obfuslock/internal/obs"
)

// phpClauses encodes the pigeonhole principle PHP(n+1, n): n+1 pigeons
// into n holes, unsatisfiable and guaranteed to generate conflicts and
// nontrivial learnt clauses.
func phpClauses(s *Solver, holes int) {
	pigeons := holes + 1
	vars := make([][]int, pigeons)
	for p := 0; p < pigeons; p++ {
		vars[p] = make([]int, holes)
		for h := 0; h < holes; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
			}
		}
	}
}

func TestSetTelemetryRecordsDistributions(t *testing.T) {
	reg := obs.NewRegistry()
	s := New()
	s.SetTelemetry(reg)
	phpClauses(s, 5)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(6,5) = %v, want UNSAT", st)
	}
	stats := s.Stats()
	depth := reg.Histogram(MetricConflictDepth)
	lbd := reg.Histogram(MetricLBD)
	props := reg.Histogram(MetricPropsPerDecision)
	if depth.Count() == 0 || lbd.Count() == 0 || props.Count() == 0 {
		t.Fatalf("telemetry empty: depth=%d lbd=%d props=%d",
			depth.Count(), lbd.Count(), props.Count())
	}
	if depth.Count() != stats.Conflicts {
		t.Fatalf("conflict-depth count %d != conflicts %d", depth.Count(), stats.Conflicts)
	}
	if lbd.Count() != stats.Learnt {
		t.Fatalf("lbd count %d != learnt %d", lbd.Count(), stats.Learnt)
	}
	if props.Count() > stats.Decisions {
		t.Fatalf("props-per-decision count %d > decisions %d", props.Count(), stats.Decisions)
	}
	// LBD is at least 1 for any learnt clause and bounded by its length.
	if ms := reg.Snapshot(); len(ms) == 0 {
		t.Fatal("registry snapshot empty")
	}
	if lbd.Quantile(0) < 1 {
		t.Fatalf("min lbd = %v, want >= 1", lbd.Quantile(0))
	}
}

func TestSetTelemetryDetach(t *testing.T) {
	reg := obs.NewRegistry()
	s := New()
	s.SetTelemetry(reg)
	s.SetTelemetry(nil)
	phpClauses(s, 4)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(5,4) = %v, want UNSAT", st)
	}
	if n := reg.Histogram(MetricConflictDepth).Count(); n != 0 {
		t.Fatalf("detached solver still recorded %d conflicts", n)
	}
}

// TestTelemetryDoesNotChangeSearch pins that attaching telemetry is
// observation-only: identical solver work with and without it.
func TestTelemetryDoesNotChangeSearch(t *testing.T) {
	run := func(reg *obs.Registry) Stats {
		s := New()
		if reg != nil {
			s.SetTelemetry(reg)
		}
		phpClauses(s, 5)
		s.Solve()
		return s.Stats()
	}
	plain := run(nil)
	traced := run(obs.NewRegistry())
	if plain != traced {
		t.Fatalf("telemetry changed search: %+v vs %+v", plain, traced)
	}
}
