package fraig_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"obfuslock/internal/aig"
	"obfuslock/internal/bench"
	"obfuslock/internal/exec"
	"obfuslock/internal/fraig"
	"obfuslock/internal/obs"
)

// randAIG builds a seeded random graph. Roughly a third of the nodes are
// deliberate functional duplicates built from a different structure
// (XOR as an OpXor node and as its AND decomposition), so a sweep always
// has real merging work.
func randAIG(seed int64, nin, nnodes int) *aig.AIG {
	rng := rand.New(rand.NewSource(seed))
	g := aig.New()
	var lits []aig.Lit
	for i := 0; i < nin; i++ {
		lits = append(lits, g.AddInput(fmt.Sprintf("x%d", i)))
	}
	pick := func() aig.Lit {
		return lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
	}
	for i := 0; i < nnodes; i++ {
		a, b := pick(), pick()
		var l aig.Lit
		switch rng.Intn(4) {
		case 0:
			l = g.And(a, b)
		case 1:
			l = g.Xor(a, b)
		case 2:
			l = g.Maj(a, b, pick())
		case 3:
			// Structural duplicate of an XOR: same function, AND form.
			l = g.XorAnd(a, b)
			lits = append(lits, g.Xor(a, b))
		}
		lits = append(lits, l)
	}
	for i := 0; i < 3; i++ {
		g.AddOutput(pick(), fmt.Sprintf("y%d", i))
	}
	return g
}

// sameFunction exhaustively compares two graphs with identical interfaces.
func sameFunction(t *testing.T, a, b *aig.AIG) {
	t.Helper()
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		t.Fatalf("interface mismatch: %d/%d in, %d/%d out",
			a.NumInputs(), b.NumInputs(), a.NumOutputs(), b.NumOutputs())
	}
	n := a.NumInputs()
	if n > 12 {
		t.Fatalf("sameFunction is exhaustive; %d inputs is too many", n)
	}
	pat := make([]bool, n)
	for m := 0; m < 1<<uint(n); m++ {
		for i := range pat {
			pat[i] = m>>uint(i)&1 == 1
		}
		va, vb := a.Eval(pat), b.Eval(pat)
		for o := range va {
			if va[o] != vb[o] {
				t.Fatalf("output %d differs on %v", o, pat)
			}
		}
	}
}

func TestSweepPreservesFunction(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randAIG(seed, 6, 40)
		res := fraig.Sweep(context.Background(), g, fraig.DefaultOptions())
		if !res.Decided {
			t.Fatalf("seed %d: unlimited-enough budget left the sweep undecided", seed)
		}
		sameFunction(t, g, res.Reduced)
		if res.Reduced.NumNodes() > g.NumNodes() {
			t.Fatalf("seed %d: sweep grew the graph: %d -> %d",
				seed, g.NumNodes(), res.Reduced.NumNodes())
		}
	}
}

func TestSweepMergesDuplicates(t *testing.T) {
	// Two structurally different XOR forms of the same inputs must merge.
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.Xor(a, b), "x")
	g.AddOutput(g.XorAnd(a, b), "y")
	res := fraig.Sweep(context.Background(), g, fraig.DefaultOptions())
	if res.Stats.Merges == 0 {
		t.Fatal("no merges on a graph with a known duplicate")
	}
	if res.Reduced.Output(0) != res.Reduced.Output(1) {
		t.Fatalf("equivalent outputs did not merge: %v vs %v",
			res.Reduced.Output(0), res.Reduced.Output(1))
	}
	sameFunction(t, g, res.Reduced)
}

// TestSweepDeterministic pins byte-identical results across repeated runs
// and across worker counts: sweeps dispatched through exec.Collect with
// seeds from exec.DeriveSeed must not depend on the pool size.
func TestSweepDeterministic(t *testing.T) {
	const n = 8
	run := func(workers int) []string {
		outs := make([]string, n)
		exec.Collect(context.Background(), workers, n,
			func(ctx context.Context, i int) string {
				g := randAIG(exec.DeriveSeed(7, i), 6, 50)
				opt := fraig.DefaultOptions()
				opt.Seed = exec.DeriveSeed(7, i)
				res := fraig.Sweep(ctx, g, opt)
				var buf bytes.Buffer
				if err := bench.Write(&buf, res.Reduced); err != nil {
					t.Error(err)
				}
				return buf.String()
			},
			func(i int, s string) { outs[i] = s })
		return outs
	}
	w1 := run(1)
	w4 := run(4)
	w1b := run(1)
	for i := 0; i < n; i++ {
		if w1[i] != w4[i] {
			t.Fatalf("sweep %d differs between workers=1 and workers=4", i)
		}
		if w1[i] != w1b[i] {
			t.Fatalf("sweep %d differs between repeated runs", i)
		}
	}
}

func TestSweepBudgetExhaustedIsUndecided(t *testing.T) {
	g := randAIG(3, 6, 60)
	opt := fraig.DefaultOptions()
	opt.Budget = exec.WithConflicts(-1) // exhaust immediately: every query Unknown
	res := fraig.Sweep(context.Background(), g, opt)
	if res.Stats.Candidates > 0 && res.Decided {
		t.Fatal("zero-budget sweep reported decided")
	}
	if res.Stats.SatProved != 0 {
		t.Fatal("zero-budget sweep proved something")
	}
	sameFunction(t, g, res.Reduced) // still sound
}

func TestSweepCancelledStaysSound(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := randAIG(4, 6, 60)
	res := fraig.Sweep(ctx, g, fraig.DefaultOptions())
	if res.Decided && res.Stats.Candidates > 0 {
		t.Fatal("cancelled sweep reported decided")
	}
	sameFunction(t, g, res.Reduced)
}

func TestSweepInstrumentation(t *testing.T) {
	col := obs.NewCollector()
	tr := obs.New(col)
	opt := fraig.DefaultOptions()
	opt.Trace = tr
	g := randAIG(5, 6, 50)
	res := fraig.Sweep(context.Background(), g, opt)
	if res.Stats.Merges == 0 {
		t.Fatal("expected merges on the duplicate-rich random graph")
	}
	found := false
	for _, m := range tr.Metrics() {
		if m.Name == "fraig.merges" {
			found = true
		}
	}
	if !found {
		t.Fatal("fraig.merges counter not recorded")
	}
	if len(col.Spans()) == 0 {
		t.Fatal("no fraig.sweep span recorded")
	}
}
