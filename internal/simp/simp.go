// Package simp is the policy layer over the SAT solver's SatELite-style
// simplifier (internal/sat's Simplify): consumer packages embed an
// Options and call Apply before their first solve, or InprocessDue
// between incremental rounds, without each reimplementing the flag
// mapping and observability plumbing.
//
// The zero value of Options means simplification is ON with the default
// techniques — consumers gain preprocessing just by embedding the field.
// The negative flags (Disable, NoVarElim, ...) exist so that the zero
// value stays the recommended configuration; Off() is the opt-out.
package simp

import (
	"obfuslock/internal/obs"
	"obfuslock/internal/sat"
)

// Options selects which simplification techniques run. The zero value
// enables everything with sat.DefaultSimpOptions tuning.
type Options struct {
	// Disable turns simplification off entirely.
	Disable bool
	// NoVarElim keeps bounded variable elimination off, leaving only
	// the equivalence-preserving techniques (subsumption,
	// strengthening, vivification, top-level units). Required when a
	// caller later adds clauses over arbitrary internal variables it
	// did not freeze — see Equivalence.
	NoVarElim bool
	// NoSubsume turns off backward subsumption and self-subsuming
	// resolution.
	NoSubsume bool
	// NoVivify turns off clause vivification.
	NoVivify bool
	// InprocessEvery re-runs simplification between incremental solve
	// rounds every N rounds. 0 means the consumer's default cadence;
	// negative disables inprocessing (the initial Apply still runs).
	InprocessEvery int
}

// Default returns the recommended configuration: everything on.
func Default() Options { return Options{} }

// Off returns the opt-out configuration (the CLIs' -simp=false).
func Off() Options { return Options{Disable: true} }

// Equivalence returns a configuration safe for consumers that keep
// adding clauses over arbitrary internal variables after simplifying
// (e.g. fraig's rolling equivalence proofs): variable elimination is
// equisatisfiability-only, so it stays off; the equivalence-preserving
// techniques remain.
func Equivalence() Options { return Options{NoVarElim: true} }

// Enabled reports whether Apply would do anything.
func (o Options) Enabled() bool {
	return !o.Disable && !(o.NoVarElim && o.NoSubsume && o.NoVivify)
}

// InprocessDue reports whether an inprocessing pass is due after the
// given 1-based incremental round, with the consumer's default cadence
// def (used when InprocessEvery is 0).
func (o Options) InprocessDue(round, def int) bool {
	if !o.Enabled() || o.InprocessEvery < 0 {
		return false
	}
	every := o.InprocessEvery
	if every == 0 {
		every = def
	}
	if every <= 0 {
		return false
	}
	return round > 0 && round%every == 0
}

// solverOptions maps the policy flags onto the mechanism's tuning.
func (o Options) solverOptions() sat.SimpOptions {
	so := sat.DefaultSimpOptions()
	so.VarElim = so.VarElim && !o.NoVarElim
	so.Subsume = so.Subsume && !o.NoSubsume
	so.Vivify = so.Vivify && !o.NoVivify
	return so
}

// Apply runs one simplification pass on the solver under a
// "sat.simplify" span, bumping the sat.simp.* counters with the pass's
// deltas. It returns false when simplification refutes the formula
// (like sat.Solver.Simplify); callers treat that exactly like an Unsat
// solve answer. A nil tracer costs nothing beyond the pass itself.
func Apply(s *sat.Solver, o Options, tr *obs.Tracer) bool {
	if !o.Enabled() {
		return true
	}
	sp := tr.Span("sat.simplify",
		obs.Int("vars", int64(s.NumVars())),
		obs.Int("clauses", int64(s.NumClauses())))
	before := s.SimpStats()
	ok := s.Simplify(o.solverOptions())
	d := s.SimpStats().Sub(before)
	if tr.Enabled() {
		tr.Counter("sat.simp.eliminated_vars").Add(d.ElimVars)
		tr.Counter("sat.simp.subsumed").Add(d.SubsumedClauses)
		tr.Counter("sat.simp.strengthened").Add(d.StrengthenedLits + d.VivifiedLits)
	}
	sp.End(
		obs.Int("eliminated_vars", d.ElimVars),
		obs.Int("subsumed", d.SubsumedClauses),
		obs.Int("strengthened", d.StrengthenedLits),
		obs.Int("vivified", d.VivifiedLits),
		obs.Int("fixed", d.FixedVars),
		obs.Bool("unsat", !ok))
	return ok
}
