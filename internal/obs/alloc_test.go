package obs

import "testing"

// hotLoop mimics the solver/attack hot-loop instrumentation pattern: a
// span per unit of work, a guarded event with fields, counters.
func hotLoop(tr *Tracer, n int) {
	c := tr.Counter("conflicts")
	for i := 0; i < n; i++ {
		sp := tr.Span("solve")
		if sp.Enabled() {
			sp.Event("conflict", Int("n", int64(i)), Float("rate", 0.5))
		}
		c.Add(1)
		sp.End()
	}
}

// TestDisabledPathZeroAllocs pins the contract relied on by the solver
// and attack loops: with tracing disabled, span/event/counter calls
// allocate nothing.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var tr *Tracer
	if allocs := testing.AllocsPerRun(1000, func() { hotLoop(tr, 1) }); allocs != 0 {
		t.Fatalf("disabled tracer hot loop allocates %v per op, want 0", allocs)
	}
}

// BenchmarkDisabledSpanEvent measures the disabled-sink fast path; run
// with -benchmem to see 0 allocs/op.
func BenchmarkDisabledSpanEvent(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Span("solve")
		if sp.Enabled() {
			sp.Event("conflict", Int("n", int64(i)))
		}
		sp.End()
	}
}

// BenchmarkEnabledSpanEvent is the comparison point: a live collector
// sink (in-memory), amortized per span+event.
func BenchmarkEnabledSpanEvent(b *testing.B) {
	tr := New(Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Span("solve")
		if sp.Enabled() {
			sp.Event("conflict", Int("n", int64(i)))
		}
		sp.End()
	}
}
