package service

import (
	"time"

	"obfuslock/internal/exec"
)

// Exec converts the wire budget into the in-process exec.Budget. The
// two are the same vocabulary — wall clock, conflict cap, SAT portfolio
// width — with the wire side pinned to integer milliseconds so encoded
// jobs never depend on Go duration formatting.
func (b Budget) Exec() exec.Budget {
	return exec.Budget{
		Timeout:    time.Duration(b.TimeoutMS) * time.Millisecond,
		Conflicts:  b.MaxConflicts,
		SatWorkers: b.SatWorkers,
	}
}

// BudgetFrom converts an in-process exec.Budget to the wire form,
// truncating the timeout to whole milliseconds.
func BudgetFrom(b exec.Budget) Budget {
	return Budget{
		TimeoutMS:    int64(b.Timeout / time.Millisecond),
		MaxConflicts: b.Conflicts,
		SatWorkers:   b.SatWorkers,
	}
}
