package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"obfuslock/internal/aig"
	"obfuslock/internal/netlistgen"
	"obfuslock/internal/skew"
)

// lockAndVerify locks c and checks key correctness plus wrong-key breakage.
func lockAndVerify(t *testing.T, c *aig.AIG, opt Options) *Result {
	t.Helper()
	res, err := Lock(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Locked
	if err := l.Verify(c); err != nil {
		t.Fatalf("correct key: %v", err)
	}
	rng := rand.New(rand.NewSource(99))
	broken := 0
	for trial := 0; trial < 3; trial++ {
		wrong := append([]bool(nil), l.Key...)
		wrong[rng.Intn(len(wrong))] = !wrong[rng.Intn(len(wrong))]
		same := true
		for i := range wrong {
			if wrong[i] != l.Key[i] {
				same = false
			}
		}
		if same {
			continue
		}
		b, err := l.WrongKeyIsWrong(c, wrong)
		if err != nil {
			t.Fatal(err)
		}
		if b {
			broken++
		}
	}
	if broken == 0 {
		t.Fatal("no sampled wrong key corrupts the circuit")
	}
	return res
}

func TestLockDoubleFlipAdder(t *testing.T) {
	c := netlistgen.AdderCmp(12) // 25 inputs
	opt := DefaultOptions()
	opt.TargetSkewBits = 10
	opt.Seed = 1
	opt.AllowDirect = false
	res := lockAndVerify(t, c, opt)
	if res.Report.Mode != "double-flip" {
		t.Fatalf("mode = %s", res.Report.Mode)
	}
	if res.Report.SkewBits < 10 {
		t.Fatalf("skew %.1f bits < target 10", res.Report.SkewBits)
	}
	if res.Locked.KeyBits < 10 {
		t.Fatalf("key bits %d implausibly small for 10-bit skew", res.Locked.KeyBits)
	}
	if res.Report.KeyBits != res.Locked.KeyBits {
		t.Fatal("report/locked key bits disagree")
	}
}

func TestLockMultiplier(t *testing.T) {
	c := netlistgen.Multiplier(6) // 12 inputs
	opt := DefaultOptions()
	opt.TargetSkewBits = 8
	opt.Seed = 2
	opt.AllowDirect = false
	res := lockAndVerify(t, c, opt)
	if res.Report.EncNodes <= res.Report.OrigNodes {
		t.Log("locked netlist not larger — suspicious but not fatal (rewriting may shrink)")
	}
}

func TestLockDeterministicForSeed(t *testing.T) {
	c := netlistgen.Multiplier(6)
	opt := DefaultOptions()
	opt.TargetSkewBits = 8
	opt.Seed = 3
	opt.AllowDirect = false
	r1, err := Lock(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Lock(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Locked.KeyBits != r2.Locked.KeyBits || r1.Locked.Enc.NumNodes() != r2.Locked.Enc.NumNodes() {
		t.Fatal("same seed produced different locks")
	}
	for i := range r1.Locked.Key {
		if r1.Locked.Key[i] != r2.Locked.Key[i] {
			t.Fatal("same seed produced different keys")
		}
	}
}

func TestLockRejectsTooFewInputs(t *testing.T) {
	c := netlistgen.Multiplier(3) // 6 inputs
	opt := DefaultOptions()
	opt.TargetSkewBits = 20
	opt.AllowDirect = false
	if _, err := Lock(context.Background(), c, opt); err == nil {
		t.Fatal("expected failure for 20-bit target on a 6-input circuit")
	}
}

func TestLockDirectOnSkewedCircuit(t *testing.T) {
	// A circuit whose only output is already highly skewed: AND of 16
	// inputs (16 bits of skewness).
	g := aig.New()
	in := g.AddInputs(16)
	g.AddOutput(g.AndN(in...), "f")
	opt := DefaultOptions()
	opt.TargetSkewBits = 12
	opt.Seed = 4
	res := lockAndVerify(t, g, opt)
	if res.Report.Mode != "direct" {
		t.Fatalf("mode = %s, want direct", res.Report.Mode)
	}
	if res.Locked.KeyBits != 16 {
		t.Fatalf("direct mode key bits = %d, want 16", res.Locked.KeyBits)
	}
}

func TestLockSubCircuit(t *testing.T) {
	c := netlistgen.AdderCmp(16) // 33 inputs
	opt := DefaultOptions()
	opt.TargetSkewBits = 8
	opt.Seed = 5
	opt.SubCircuit = true
	opt.SubCircuitMinCut = 12
	res := lockAndVerify(t, c, opt)
	if res.Report.Mode != "sub-circuit" {
		t.Fatalf("mode = %s", res.Report.Mode)
	}
	if res.Report.CutWidth < 12 {
		t.Fatalf("cut width %d < requested 12", res.Report.CutWidth)
	}
	if res.Report.CutLog2Reach < 0.7*float64(res.Report.CutWidth)-1e-9 {
		t.Fatalf("cut reachability %.1f too low for width %d",
			res.Report.CutLog2Reach, res.Report.CutWidth)
	}
}

// xorBlend must preserve the function for all rule paths.
func TestXorBlendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		g := aig.New()
		lits := g.AddInputs(6)
		for i := 0; i < 25; i++ {
			pick := func() aig.Lit {
				l := lits[rng.Intn(len(lits))]
				if rng.Intn(2) == 0 {
					l = l.Not()
				}
				return l
			}
			switch rng.Intn(4) {
			case 0, 1:
				lits = append(lits, g.And(pick(), pick()))
			case 2:
				lits = append(lits, g.Xor(pick(), pick()))
			default:
				lits = append(lits, g.Maj(pick(), pick(), pick()))
			}
		}
		f := lits[len(lits)-1]
		tt := lits[len(lits)-2]
		b := &blendBudget{
			reshape: rng.Intn(20),
			elim:    rng.Intn(40),
			rng:     rand.New(rand.NewSource(int64(trial))),
		}
		blended := xorBlend(g, f, tt, b)
		want := g.Xor(f, tt)
		// Exhaustive check over the 6 inputs.
		g.AddOutput(blended, "blend")
		g.AddOutput(want, "want")
		pat := make([]bool, 6)
		for m := 0; m < 64; m++ {
			for i := 0; i < 6; i++ {
				pat[i] = m>>i&1 == 1
			}
			out := g.Eval(pat)
			no := g.NumOutputs()
			if out[no-2] != out[no-1] {
				t.Fatalf("trial %d: xorBlend wrong at %v (reshape=%d elim=%d)",
					trial, pat, b.reshape, b.elim)
			}
		}
	}
}

// Lemma 1: for input permutation encryption of a single-output function
// with |f^1| = M over m inputs, every row of the error matrix has exactly
// M or 2^m - M errors, and the counts match.
func TestLemma1ErrorMatrix(t *testing.T) {
	m := 6
	g := aig.New()
	in := g.AddInputs(m)
	g.AddOutput(g.AndN(in[:4]...), "f") // M = 2^(6-4) = 4
	opt := DefaultOptions()
	opt.TargetSkewBits = 3
	opt.Seed = 7
	res, err := Lock(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Mode != "direct" {
		t.Fatalf("expected direct mode, got %s", res.Report.Mode)
	}
	l := res.Locked
	M := 4
	total := 1 << m
	rowsWithM, rowsWithCoM := 0, 0
	x := make([]bool, m)
	k := make([]bool, m)
	for xm := 0; xm < total; xm++ {
		for i := 0; i < m; i++ {
			x[i] = xm>>i&1 == 1
		}
		want := g.Eval(x)[0]
		errs := 0
		for km := 0; km < total; km++ {
			for i := 0; i < m; i++ {
				k[i] = km>>i&1 == 1
			}
			full := append(append([]bool{}, x...), k...)
			if l.Enc.Eval(full)[0] != want {
				errs++
			}
		}
		switch errs {
		case M:
			rowsWithM++
		case total - M:
			rowsWithCoM++
		default:
			t.Fatalf("row %d has %d errors, want %d or %d", xm, errs, M, total-M)
		}
	}
	// Lemma 1: M rows carry 2^m-M errors; 2^m-M rows carry M errors.
	if rowsWithCoM != M || rowsWithM != total-M {
		t.Fatalf("row distribution: %d rows with %d errs, %d rows with %d errs",
			rowsWithM, M, rowsWithCoM, total-M)
	}
}

// Lemma 2: the number of correct keys is at most h = min(M, 2^m - M).
func TestLemma2CorrectKeyBound(t *testing.T) {
	m := 6
	g := aig.New()
	in := g.AddInputs(m)
	g.AddOutput(g.AndN(in[:4]...), "f") // h = 4
	opt := DefaultOptions()
	opt.TargetSkewBits = 3
	opt.Seed = 8
	res, err := Lock(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Locked
	correct := 0
	total := 1 << m
	k := make([]bool, m)
	x := make([]bool, m)
	for km := 0; km < total; km++ {
		for i := 0; i < m; i++ {
			k[i] = km>>i&1 == 1
		}
		ok := true
		for xm := 0; xm < total && ok; xm++ {
			for i := 0; i < m; i++ {
				x[i] = xm>>i&1 == 1
			}
			full := append(append([]bool{}, x...), k...)
			if l.Enc.Eval(full)[0] != g.Eval(x)[0] {
				ok = false
			}
		}
		if ok {
			correct++
		}
	}
	if correct < 1 || correct > 4 {
		t.Fatalf("correct keys = %d, want between 1 and h=4", correct)
	}
}

// The locking circuit skewness verified by splitting should be close to an
// exhaustive count on small cones.
func TestLockingCircuitSkewAccuracy(t *testing.T) {
	c := netlistgen.Multiplier(6) // 12 inputs
	work := c.Copy()
	bo := defaultBuildOptions(7, 11)
	lc, err := buildLockingCircuit(work, bo)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive probability of the root.
	probe := work.Copy()
	probe.AddOutput(lc.Root, "L")
	idx := probe.NumOutputs() - 1
	ones, total := 0, 0
	pat := make([]bool, work.NumInputs())
	for m := 0; m < 1<<uint(work.NumInputs()); m++ {
		for i := range pat {
			pat[i] = m>>uint(i)&1 == 1
		}
		if probe.Eval(pat)[idx] {
			ones++
		}
		total++
	}
	if ones == 0 {
		t.Fatal("locking circuit is constant false — invalid")
	}
	exact := skew.Bits(float64(ones) / float64(total))
	if exact < 6 {
		t.Fatalf("exact skew %.2f bits below target-1", exact)
	}
	if math.Abs(exact-lc.SkewBits) > 3 {
		t.Fatalf("estimated %.2f vs exact %.2f bits", lc.SkewBits, exact)
	}
}
