package sat

// Image is a replayable snapshot of a solver taken before any search or
// simplification has run: the variable count, the arena-packed problem
// clauses, the level-0 trail with its reasons, the watcher lists and the
// frozen marks, all captured verbatim. NewFromImage reconstructs a
// solver whose observable state — and therefore whose subsequent search
// — is bit-identical to the snapshot source. That exactness is the
// point: the SAT attack memoizes miter construction through an Image,
// and the replayed attack must stay byte-identical with a cache-off run
// (the CI determinism sweeps diff the two).
//
// The fields are exported with JSON tags so an Image survives a round
// trip through the memo disk spill unchanged; treat a stored Image as
// immutable (NewFromImage deep-copies everything it installs).
type Image struct {
	NumVars int      `json:"num_vars"`
	Ok      bool     `json:"ok"`
	Arena   []uint32 `json:"arena"`
	Wasted  int      `json:"wasted"`
	Clauses []uint32 `json:"clauses"`
	// WatchRefs/WatchBlockers are the flattened watcher table in list
	// order: WatchLen[l] consecutive entries belong to literal index l.
	// List order matters — level-0 propagation appends and reorders
	// watchers, and replaying them in a different order would change the
	// propagation order of the rebuilt solver.
	WatchRefs     []uint32 `json:"watch_refs"`
	WatchBlockers []int32  `json:"watch_blockers"`
	WatchLen      []int32  `json:"watch_len"`
	Assign        []int8   `json:"assign"`
	Level         []int32  `json:"level"`
	Reason        []uint32 `json:"reason"`
	Trail         []int32  `json:"trail"`
	Qhead         int      `json:"qhead"`
	Polarity      []bool   `json:"polarity"`
	Frozen        []bool   `json:"frozen"`
	Stats         Stats    `json:"stats"`
}

// Export snapshots the solver into an Image. It is only valid before
// search or simplification: no decisions on the trail, no learnt
// clauses, no conflicts, no Simplify pass — Export panics otherwise.
// (After any of those the state also holds activity scores, learnt
// metadata and elimination records, which an Image deliberately does not
// model.) Clause additions and the level-0 propagation they trigger are
// fine, which is exactly the state of a freshly built attack miter.
func (s *Solver) Export() *Image {
	if len(s.trailLim) != 0 || len(s.learnts) != 0 || s.stats.Conflicts != 0 {
		panic("sat: Export after search started")
	}
	if s.simpMark >= 0 {
		panic("sat: Export after Simplify")
	}
	img := &Image{
		NumVars:  s.numVars,
		Ok:       s.ok,
		Arena:    append([]uint32(nil), s.ar.data...),
		Wasted:   s.ar.wasted,
		Qhead:    s.qhead,
		Assign:   append([]int8(nil), s.assign...),
		Level:    append([]int32(nil), s.level...),
		Polarity: append([]bool(nil), s.polarity...),
		Frozen:   append([]bool(nil), s.frozen...),
		Stats:    s.stats,
	}
	img.Clauses = make([]uint32, len(s.clauses))
	for i, c := range s.clauses {
		img.Clauses[i] = uint32(c)
	}
	img.WatchLen = make([]int32, len(s.watches))
	total := 0
	for _, ws := range s.watches {
		total += len(ws)
	}
	img.WatchRefs = make([]uint32, 0, total)
	img.WatchBlockers = make([]int32, 0, total)
	for l, ws := range s.watches {
		img.WatchLen[l] = int32(len(ws))
		for _, w := range ws {
			img.WatchRefs = append(img.WatchRefs, uint32(w.cref))
			img.WatchBlockers = append(img.WatchBlockers, int32(w.blocker))
		}
	}
	img.Reason = make([]uint32, len(s.reason))
	for i, r := range s.reason {
		img.Reason[i] = uint32(r)
	}
	img.Trail = make([]int32, len(s.trail))
	for i, l := range s.trail {
		img.Trail[i] = int32(l)
	}
	return img
}

// Valid reports whether the image is structurally consistent: slice
// lengths line up with NumVars, watcher counts match the flattened
// table, and every clause reference and trail literal is in range. An
// Image decoded from a truncated or foreign spill file fails this check;
// callers should then rebuild the solver from scratch instead of
// replaying it.
func (img *Image) Valid() bool {
	if img == nil || img.NumVars < 0 {
		return false
	}
	n := img.NumVars
	if len(img.Assign) != n || len(img.Level) != n || len(img.Reason) != n ||
		len(img.Polarity) != n || len(img.Frozen) != n || len(img.WatchLen) != 2*n {
		return false
	}
	total := 0
	for _, c := range img.WatchLen {
		if c < 0 {
			return false
		}
		total += int(c)
	}
	if len(img.WatchRefs) != total || len(img.WatchBlockers) != total {
		return false
	}
	if img.Qhead < 0 || img.Qhead > len(img.Trail) {
		return false
	}
	for _, c := range img.Clauses {
		if int(c) >= len(img.Arena) {
			return false
		}
	}
	for _, w := range img.WatchRefs {
		if int(w) >= len(img.Arena) {
			return false
		}
	}
	for _, l := range img.Trail {
		if l < 0 || Lit(l).Var() >= n {
			return false
		}
	}
	return true
}

// NewFromImage rebuilds a solver from a snapshot. The returned solver is
// independent of the image (everything is copied) and behaves exactly
// like the solver Export was called on: same clause arena layout, same
// watcher order, same trail, same counters — so the same sequence of
// AddClause/Solve calls yields the same answers, models and statistics.
// Runtime hooks (context, budget, progress, telemetry) are not part of
// an Image; install them on the returned solver as needed. NewFromImage
// returns nil when the image fails Valid.
func NewFromImage(img *Image) *Solver {
	if !img.Valid() {
		return nil
	}
	s := New()
	for i := 0; i < img.NumVars; i++ {
		s.NewVar()
	}
	s.ok = img.Ok
	s.ar.data = append([]uint32(nil), img.Arena...)
	s.ar.wasted = img.Wasted
	s.clauses = make([]cref, len(img.Clauses))
	for i, c := range img.Clauses {
		s.clauses[i] = cref(c)
	}
	off := 0
	for l := range s.watches {
		n := int(img.WatchLen[l])
		if n == 0 {
			continue
		}
		ws := make([]watcher, n)
		for k := 0; k < n; k++ {
			ws[k] = watcher{cref(img.WatchRefs[off]), Lit(img.WatchBlockers[off])}
			off++
		}
		s.watches[l] = ws
	}
	copy(s.assign, img.Assign)
	copy(s.level, img.Level)
	for i, r := range img.Reason {
		s.reason[i] = cref(r)
	}
	s.trail = make([]Lit, 0, len(img.Trail))
	for _, l := range img.Trail {
		s.trail = append(s.trail, Lit(l))
	}
	s.qhead = img.Qhead
	copy(s.polarity, img.Polarity)
	copy(s.frozen, img.Frozen)
	s.stats = img.Stats
	return s
}
