package obfuslock

// Documentation-consistency checks for the attack-facing packages. The
// attack surface is the part of the codebase external users script
// against first (cmd/attack, the facade's Attack* API), so its godoc is
// held to a stricter bar than the rest of the tree: every exported
// symbol documented and a doc.go package overview per package. CI runs
// this alongside go vet.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// godocPackages are the directories under the documentation audit.
var godocPackages = []string{
	"internal/attacks",
	"internal/locking",
	"internal/service",
}

// TestGodocDocGo requires a doc.go package overview in every audited
// package: the package comment is the first thing godoc renders, and
// keeping it in a dedicated file stops it from silently migrating (or
// duplicating) when the leading source file is renamed.
func TestGodocDocGo(t *testing.T) {
	for _, dir := range godocPackages {
		if _, err := os.Stat(filepath.Join(dir, "doc.go")); err != nil {
			t.Errorf("%s: missing doc.go package overview: %v", dir, err)
		}
	}
}

// TestGodocExportedSymbols walks the audited packages and reports every
// exported type, function, method, const and var that lacks a doc
// comment. Grouped declarations are covered by their group comment.
func TestGodocExportedSymbols(t *testing.T) {
	for _, dir := range godocPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for name, file := range pkg.Files {
				for _, decl := range file.Decls {
					checkDeclDocs(t, fset, name, decl)
				}
			}
		}
	}
}

// checkDeclDocs reports the undocumented exported symbols of one
// top-level declaration.
func checkDeclDocs(t *testing.T, fset *token.FileSet, file string, decl ast.Decl) {
	t.Helper()
	undocumented := func(name string, pos token.Pos) {
		t.Errorf("%s:%d: exported symbol %s has no doc comment",
			file, fset.Position(pos).Line, name)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				if recv := receiverName(d.Recv.List[0].Type); recv != "" {
					if !ast.IsExported(recv) {
						return // method on an unexported type
					}
					name = recv + "." + name
				}
			}
			undocumented(name, d.Pos())
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					undocumented(s.Name.Name, s.Pos())
				}
			case *ast.ValueSpec:
				// A group comment (const/var block doc) or a per-spec
				// comment both count; a trailing line comment does too.
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						undocumented(n.Name, n.Pos())
					}
				}
			}
		}
	}
}

// receiverName unwraps a method receiver type expression to its named
// type, tolerating pointers and generic instantiations.
func receiverName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}
