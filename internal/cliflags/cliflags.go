// Package cliflags factors the flag plumbing shared by the obfuslock
// CLIs (obfuslock, attack, obfuslockd) into three reusable groups —
// solver tuning, result cache, telemetry — so a flag means the same
// thing, with the same name and the same validation, in every tool.
//
// Each group is a struct with a Register method binding its flags onto a
// flag.FlagSet. Telemetry additionally owns the whole lifecycle of the
// observability stack: Start builds the tracer/flight-recorder/profile
// pipeline exactly once, and the returned Session carries the handles
// plus an idempotent Finish.
package cliflags

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"obfuslock/internal/memo"
	"obfuslock/internal/obs"
	"obfuslock/internal/simp"
)

// Solver groups the SAT-tuning flags common to every solver-backed tool:
// -simp, -sat-workers and -dip-batch.
type Solver struct {
	// Simp is the -simp value (CNF pre-/inprocessing on).
	Simp bool
	// SatWorkers is the raw -sat-workers value in the CLI convention
	// (1: sequential, 0: all cores); Workers() maps it to the internal one.
	SatWorkers int
	// DIPBatch is the -dip-batch value.
	DIPBatch int
}

// Register binds the solver flags.
func (s *Solver) Register(fs *flag.FlagSet) {
	fs.BoolVar(&s.Simp, "simp", true,
		"SatELite-style CNF preprocessing/inprocessing in every SAT solver")
	fs.IntVar(&s.SatWorkers, "sat-workers", 1,
		"parallel SAT portfolio width per solve; results are byte-identical at any width (1: sequential, 0: GOMAXPROCS)")
	fs.IntVar(&s.DIPBatch, "dip-batch", 0,
		"DIPs enumerated per solver round and answered in one bit-parallel oracle pass (0: default width, 1: classic serial loop)")
}

// SimpOptions resolves -simp into the preprocessing configuration.
func (s *Solver) SimpOptions() simp.Options {
	if !s.Simp {
		return simp.Off()
	}
	return simp.Default()
}

// Workers maps the CLI's -sat-workers convention (0 means "all cores")
// onto the internal exec.SatWorkers one (negative means "all cores",
// 0 means sequential).
func (s *Solver) Workers() int {
	if s.SatWorkers == 0 {
		return -1
	}
	return s.SatWorkers
}

// Cache groups the result-cache flags: -cache, -cache-dir, -cache-mb.
type Cache struct {
	// Enabled is the -cache value.
	Enabled bool
	// Dir is the -cache-dir spill directory.
	Dir string
	// MB is the -cache-mb in-memory budget.
	MB int
}

// Register binds the cache flags.
func (c *Cache) Register(fs *flag.FlagSet) {
	fs.BoolVar(&c.Enabled, "cache", false,
		"memoize SAT-backed sub-queries in a content-addressed result cache")
	fs.StringVar(&c.Dir, "cache-dir", "",
		"spill the cache to <dir>/cache.jsonl and reload it on start (requires -cache)")
	fs.IntVar(&c.MB, "cache-mb", 256,
		"in-memory cache budget in MiB (requires -cache)")
}

// Validate enforces the cache flag contract: -cache-mb must be a
// positive budget, and the tuning flags only mean something when the
// cache is on. set maps the flag names the user actually passed
// (flag.Visit) to true.
func (c *Cache) Validate(set map[string]bool) error {
	if set["cache-mb"] && c.MB <= 0 {
		return fmt.Errorf("-cache-mb must be positive, got %d", c.MB)
	}
	if !c.Enabled && (set["cache-dir"] || set["cache-mb"]) {
		return fmt.Errorf("-cache-dir/-cache-mb require -cache")
	}
	return nil
}

// Open builds the cache (nil when disabled). An unusable -cache-dir —
// unwritable, or a corrupt spill file — is an error, reported before any
// work starts. A nil *memo.Cache is valid everywhere and caches nothing.
func (c *Cache) Open(tr *obs.Tracer) (*memo.Cache, error) {
	if !c.Enabled {
		return nil, nil
	}
	return memo.New(memo.Options{MaxBytes: int64(c.MB) << 20, Dir: c.Dir, Trace: tr})
}

// Visited snapshots which flags the user explicitly passed on fs.
func Visited(fs *flag.FlagSet) map[string]bool {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// Telemetry groups the observability flags: -trace, -progress, -pprof,
// -debug-addr and -ledger.
type Telemetry struct {
	// TracePath is the -trace JSONL output file.
	TracePath string
	// Progress is the -progress live status line.
	Progress bool
	// PprofPrefix is the -pprof profile prefix.
	PprofPrefix string
	// DebugAddr is the -debug-addr live introspection address.
	DebugAddr string
	// LedgerPath is the -ledger run-record output file.
	LedgerPath string
}

// Register binds the telemetry flags.
func (t *Telemetry) Register(fs *flag.FlagSet) {
	fs.StringVar(&t.TracePath, "trace", "",
		"write the span/event stream as JSON Lines to this file")
	fs.BoolVar(&t.Progress, "progress", false,
		"live one-line progress on stderr")
	fs.StringVar(&t.PprofPrefix, "pprof", "",
		"write <prefix>.cpu.pprof, <prefix>.heap.pprof and <prefix>.allocs.pprof profiles")
	fs.StringVar(&t.DebugAddr, "debug-addr", "",
		"serve /metrics, /flight and /debug/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&t.LedgerPath, "ledger", "",
		"write a ledger.json run record (flags, build, metrics, peak RSS) to this file")
}

// Enabled reports whether any telemetry flag is on (which arms the
// flight recorder).
func (t *Telemetry) Enabled() bool {
	return t.TracePath != "" || t.Progress || t.PprofPrefix != "" ||
		t.DebugAddr != "" || t.LedgerPath != ""
}

// Session is one tool invocation's observability stack, built by
// Telemetry.Start: the tracer and its registry, the flight recorder, the
// run ledger, and the cleanup chain.
type Session struct {
	// Tool is the name used in diagnostics and the ledger.
	Tool string
	// Tracer is the configured tracer (nil when all flags are off: the
	// zero-cost path; a nil *obs.Tracer is valid everywhere).
	Tracer *obs.Tracer
	// Registry is the tracer's metric namespace, always non-nil.
	Registry *obs.Registry
	// Sink is the combined span/event sink (nil when no stream flag is
	// on); daemons fan per-job streams into it as an extra sink.
	Sink obs.Sink
	// Flight is the recent-span ring, armed by any telemetry flag.
	Flight *obs.Flight
	// Ledger is the run record (nil without -ledger).
	Ledger *obs.Ledger
	// DebugAddr is the bound -debug-addr listener address ("" when off).
	DebugAddr string

	ledgerPath string
	closers    []func()
	finished   bool
	ledgerDone bool
}

// Start builds the observability stack from the flags: trace file,
// progress line, flight recorder, span-duration histograms, pprof
// profiles, debug endpoint, ledger. It returns an error instead of
// exiting so the caller owns the usage message.
func (t *Telemetry) Start(tool string) (*Session, error) {
	s := &Session{Tool: tool, Registry: obs.NewRegistry(), ledgerPath: t.LedgerPath}
	if t.LedgerPath != "" {
		s.Ledger = obs.NewLedger(tool)
	}
	var sinks []obs.Sink
	if t.TracePath != "" {
		f, err := os.Create(t.TracePath)
		if err != nil {
			s.close()
			return nil, err
		}
		sinks = append(sinks, obs.NewJSONL(f))
		s.closers = append(s.closers, func() { f.Close() })
	}
	if t.Progress {
		p := obs.NewProgress(os.Stderr)
		sinks = append(sinks, p)
		s.closers = append(s.closers, p.Done)
	}
	if t.Enabled() {
		s.Flight = obs.NewFlight(obs.DefaultFlightDepth)
		sinks = append(sinks, s.Flight)
	}
	if len(sinks) > 0 {
		// Every completed span also lands in a span.<name>_us histogram,
		// so /metrics and the ledger carry per-phase latency distributions.
		sinks = append(sinks, obs.NewSpanDurations(s.Registry))
	}
	s.Sink = obs.Multi(sinks...)
	sink := s.Sink
	if sink == nil && t.PprofPrefix != "" {
		// pprof labels need an enabled tracer even with no stream.
		sink = obs.Discard
	}
	s.Tracer = obs.NewWithRegistry(sink, s.Registry)
	s.Tracer.EnablePprofLabels()
	if t.PprofPrefix != "" {
		stop, err := obs.StartProfiles(t.PprofPrefix)
		if err != nil {
			s.close()
			return nil, err
		}
		s.closers = append(s.closers, func() {
			if err := stop(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: pprof: %v\n", tool, err)
			}
		})
	}
	if t.DebugAddr != "" {
		addr, err := obs.ListenDebug(t.DebugAddr, s.Tracer, s.Flight)
		if err != nil {
			s.close()
			return nil, err
		}
		s.DebugAddr = addr
		fmt.Fprintf(os.Stderr, "%s: debug endpoint on http://%s (/metrics, /flight, /debug/pprof)\n", tool, addr)
	}
	return s, nil
}

// Finish flushes the tracer and runs the cleanup chain exactly once.
// Safe to both defer and call explicitly before os.Exit.
func (s *Session) Finish() {
	if s.finished {
		return
	}
	s.finished = true
	s.Tracer.Close()
	s.close()
}

func (s *Session) close() {
	for _, c := range s.closers {
		c()
	}
	s.closers = nil
}

// WriteLedger finalizes and writes the run record (no-op without
// -ledger; idempotent, so it can run both deferred and on explicit
// non-zero exit paths). cache, when non-nil, contributes its hit ratio.
func (s *Session) WriteLedger(cache *memo.Cache) error {
	if s.Ledger == nil || s.ledgerDone {
		return nil
	}
	s.ledgerDone = true
	if st := cache.Stats(); st.Lookups() > 0 {
		s.Ledger.AddExtra("cache_hit_ratio", st.HitRatio())
	}
	s.Ledger.Finish(s.Tracer)
	return s.Ledger.WriteFile(s.ledgerPath)
}

// DumpFlight writes the flight recorder's recent-span ring to stderr
// (no-op when the recorder is off or empty).
func (s *Session) DumpFlight(reason string) {
	if s.Flight == nil || s.Flight.Len() == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %s — flight recorder dump:\n", s.Tool, reason)
	s.Flight.WriteTo(os.Stderr)
}

// ArmFlightDump dumps the flight recorder on SIGQUIT (the run keeps
// going, like a thread dump).
func (s *Session) ArmFlightDump() {
	if s.Flight == nil {
		return
	}
	qc := make(chan os.Signal, 1)
	signal.Notify(qc, syscall.SIGQUIT)
	go func() {
		for range qc {
			s.DumpFlight("SIGQUIT")
		}
	}()
}

// PanicDump preserves the flight recorder's evidence when the run dies:
// deferred in main, it dumps the ring and re-panics.
func (s *Session) PanicDump() {
	if r := recover(); r != nil {
		s.DumpFlight("panic")
		panic(r)
	}
}
