// Package lockbase implements the classic logic-locking baselines ObfusLock
// is compared against: random XOR insertion (RLL/EPIC), SARLock, Anti-SAT,
// TTLock, and SFLL-HD. Each exhibits one corner of the locking trilemma —
// RLL is efficient but falls to the SAT attack; SARLock/Anti-SAT resist SAT
// but expose a critical flip node to structural analysis; TTLock/SFLL-HD
// strip functionality but with deterministic, discoverable patterns.
package lockbase

import (
	"fmt"
	"math/rand"

	"obfuslock/internal/aig"
	"obfuslock/internal/locking"
)

// rebuildWithKeys copies g into a new graph and appends l key inputs,
// returning the new graph, the map from old vars to new literals and the
// key literals.
func rebuildWithKeys(g *aig.AIG, l int) (*aig.AIG, []aig.Lit, []aig.Lit) {
	ng := aig.New()
	ng.Name = g.Name
	piMap := make([]aig.Lit, g.NumInputs())
	for i := range piMap {
		piMap[i] = ng.AddInput(g.InputName(i))
	}
	keys := make([]aig.Lit, l)
	for i := range keys {
		keys[i] = ng.AddInput(locking.KeyName(i))
	}
	return ng, piMap, keys
}

// RLL performs random logic locking: keyBits XOR/XNOR key gates inserted on
// randomly chosen internal signals (Roy et al., "Ending piracy of
// integrated circuits").
func RLL(g *aig.AIG, keyBits int, seed int64) (*locking.Locked, error) {
	if g.NumNodes() < keyBits {
		return nil, fmt.Errorf("lockbase: circuit too small for %d key bits", keyBits)
	}
	rng := rand.New(rand.NewSource(seed))
	// Choose distinct internal nodes to re-key.
	var internal []uint32
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if g.Op(v) != aig.OpInput {
			internal = append(internal, v)
		}
	}
	rng.Shuffle(len(internal), func(i, j int) { internal[i], internal[j] = internal[j], internal[i] })
	chosen := make(map[uint32]int, keyBits)
	for i := 0; i < keyBits; i++ {
		chosen[internal[i]] = i
	}
	key := make([]bool, keyBits)
	for i := range key {
		key[i] = rng.Intn(2) == 1 // XNOR insertion when true
	}

	ng, piMap, keys := rebuildWithKeys(g, keyBits)
	m := make([]aig.Lit, g.MaxVar()+1)
	m[0] = aig.ConstFalse
	for i, v := range gInputVars(g) {
		m[v] = piMap[i]
	}
	mapped := func(l aig.Lit) aig.Lit { return m[l.Var()].NotIf(l.IsCompl()) }
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if g.Op(v) == aig.OpInput {
			continue
		}
		fan := g.Fanins(v)
		var nl aig.Lit
		switch g.Op(v) {
		case aig.OpAnd:
			nl = ng.And(mapped(fan[0]), mapped(fan[1]))
		case aig.OpXor:
			nl = ng.Xor(mapped(fan[0]), mapped(fan[1]))
		case aig.OpMaj:
			nl = ng.Maj(mapped(fan[0]), mapped(fan[1]), mapped(fan[2]))
		}
		if ki, ok := chosen[v]; ok {
			// XOR with key; XNOR when the correct bit is 1.
			nl = ng.Xor(nl, keys[ki].NotIf(key[ki]))
		}
		m[v] = nl
	}
	for i := 0; i < g.NumOutputs(); i++ {
		ng.AddOutput(mapped(g.Output(i)), g.OutputName(i))
	}
	return &locking.Locked{
		Scheme:    "rll",
		Enc:       ng,
		NumInputs: g.NumInputs(),
		KeyBits:   keyBits,
		Key:       key,
	}, nil
}

func gInputVars(g *aig.AIG) []uint32 {
	vs := make([]uint32, g.NumInputs())
	for i := range vs {
		vs[i] = g.InputVar(i)
	}
	return vs
}

// protectedInputs picks the inputs covered by point-function schemes: the
// first min(n, limit) inputs.
func protectedInputs(g *aig.AIG, limit int) int {
	n := g.NumInputs()
	if n > limit {
		return limit
	}
	return n
}

// equalsConst builds AND_i (x_i XNOR c_i).
func equalsConst(ng *aig.AIG, xs []aig.Lit, c []bool) aig.Lit {
	terms := make([]aig.Lit, len(xs))
	for i := range xs {
		terms[i] = xs[i].NotIf(!c[i])
	}
	return ng.AndN(terms...)
}

// equalsLits builds AND_i (a_i XNOR b_i).
func equalsLits(ng *aig.AIG, a, b []aig.Lit) aig.Lit {
	terms := make([]aig.Lit, len(a))
	for i := range a {
		terms[i] = ng.Xor(a[i], b[i]).Not()
	}
	return ng.AndN(terms...)
}

// SARLock locks g with a comparator-based single-flip unit (Yasin et al.):
// the first output is XORed with (x == k) & (k != k*). Each wrong key
// corrupts exactly one input pattern, forcing the SAT attack through
// exponentially many DIPs. protLimit bounds the compared input width.
func SARLock(g *aig.AIG, protLimit int, seed int64) (*locking.Locked, error) {
	if g.NumOutputs() == 0 {
		return nil, fmt.Errorf("lockbase: no outputs to protect")
	}
	rng := rand.New(rand.NewSource(seed))
	n := protectedInputs(g, protLimit)
	key := make([]bool, n)
	for i := range key {
		key[i] = rng.Intn(2) == 1
	}
	ng, piMap, keys := rebuildWithKeys(g, n)
	outs := ng.Import(g, piMap)
	xs := piMap[:n]
	xEqK := equalsLits(ng, xs, keys)
	kEqStar := equalsConst(ng, keys, key)
	flip := ng.And(xEqK, kEqStar.Not())
	outs[0] = ng.Xor(outs[0], flip)
	for i, o := range outs {
		ng.AddOutput(o, g.OutputName(i))
	}
	return &locking.Locked{
		Scheme:    "sarlock",
		Enc:       ng,
		NumInputs: g.NumInputs(),
		KeyBits:   n,
		Key:       key,
	}, nil
}

// AntiSAT locks g with an Anti-SAT block (Xie & Srivastava): the flip
// signal is AND(x XOR kA) & NAND(x XOR kB), which is constant 0 exactly
// when kA == kB. Key: kA ++ kB with kA = kB = r.
func AntiSAT(g *aig.AIG, protLimit int, seed int64) (*locking.Locked, error) {
	if g.NumOutputs() == 0 {
		return nil, fmt.Errorf("lockbase: no outputs to protect")
	}
	rng := rand.New(rand.NewSource(seed))
	n := protectedInputs(g, protLimit)
	r := make([]bool, n)
	for i := range r {
		r[i] = rng.Intn(2) == 1
	}
	key := append(append([]bool{}, r...), r...)
	ng, piMap, keys := rebuildWithKeys(g, 2*n)
	outs := ng.Import(g, piMap)
	xs := piMap[:n]
	ta := make([]aig.Lit, n)
	tb := make([]aig.Lit, n)
	for i := 0; i < n; i++ {
		ta[i] = ng.Xor(xs[i], keys[i])
		tb[i] = ng.Xor(xs[i], keys[n+i])
	}
	flip := ng.And(ng.AndN(ta...), ng.AndN(tb...).Not())
	outs[0] = ng.Xor(outs[0], flip)
	for i, o := range outs {
		ng.AddOutput(o, g.OutputName(i))
	}
	return &locking.Locked{
		Scheme:    "antisat",
		Enc:       ng,
		NumInputs: g.NumInputs(),
		KeyBits:   2 * n,
		Key:       key,
	}, nil
}

// TTLock strips one input minterm p from the first output and restores it
// with a comparator keyed by k (Yasin et al., "What to lock?"). Correct key
// k* = p.
func TTLock(g *aig.AIG, protLimit int, seed int64) (*locking.Locked, error) {
	if g.NumOutputs() == 0 {
		return nil, fmt.Errorf("lockbase: no outputs to protect")
	}
	rng := rand.New(rand.NewSource(seed))
	n := protectedInputs(g, protLimit)
	p := make([]bool, n)
	for i := range p {
		p[i] = rng.Intn(2) == 1
	}
	ng, piMap, keys := rebuildWithKeys(g, n)
	outs := ng.Import(g, piMap)
	xs := piMap[:n]
	// Functionality-stripped circuit: flip output at x == p (hard-coded).
	strip := equalsConst(ng, xs, p)
	// Restore unit: flip back at x == k.
	restore := equalsLits(ng, xs, keys)
	outs[0] = ng.Xor(ng.Xor(outs[0], strip), restore)
	for i, o := range outs {
		ng.AddOutput(o, g.OutputName(i))
	}
	return &locking.Locked{
		Scheme:    "ttlock",
		Enc:       ng,
		NumInputs: g.NumInputs(),
		KeyBits:   n,
		Key:       p,
	}, nil
}

// hammingEquals builds a circuit testing popcount(bits) == h.
func hammingEquals(ng *aig.AIG, bits []aig.Lit, h int) aig.Lit {
	// Dynamic-programming one-hot counter: cnt[j] = "exactly j ones so far".
	n := len(bits)
	if h < 0 || h > n {
		return aig.ConstFalse
	}
	cnt := make([]aig.Lit, n+1)
	cnt[0] = aig.ConstTrue
	for j := 1; j <= n; j++ {
		cnt[j] = aig.ConstFalse
	}
	for _, b := range bits {
		next := make([]aig.Lit, n+1)
		next[0] = ng.And(cnt[0], b.Not())
		for j := 1; j <= n; j++ {
			next[j] = ng.Or(ng.And(cnt[j], b.Not()), ng.And(cnt[j-1], b))
		}
		cnt = next
	}
	return cnt[h]
}

// SFLLHD locks g with stripped-functionality logic locking at Hamming
// distance h (Yasin et al., CCS'17): the first output is flipped for every
// input at distance h from k*, and the restore unit flips back inputs at
// distance h from k.
func SFLLHD(g *aig.AIG, protLimit, h int, seed int64) (*locking.Locked, error) {
	if g.NumOutputs() == 0 {
		return nil, fmt.Errorf("lockbase: no outputs to protect")
	}
	rng := rand.New(rand.NewSource(seed))
	n := protectedInputs(g, protLimit)
	if h >= n {
		return nil, fmt.Errorf("lockbase: hamming distance %d >= protected width %d", h, n)
	}
	key := make([]bool, n)
	for i := range key {
		key[i] = rng.Intn(2) == 1
	}
	ng, piMap, keys := rebuildWithKeys(g, n)
	outs := ng.Import(g, piMap)
	xs := piMap[:n]
	// Strip: HD(x, k*) == h with k* hard-coded.
	diffStar := make([]aig.Lit, n)
	for i := range diffStar {
		diffStar[i] = xs[i].NotIf(key[i]) // x_i XOR k*_i
	}
	strip := hammingEquals(ng, diffStar, h)
	// Restore: HD(x, k) == h.
	diffKey := make([]aig.Lit, n)
	for i := range diffKey {
		diffKey[i] = ng.Xor(xs[i], keys[i])
	}
	restore := hammingEquals(ng, diffKey, h)
	outs[0] = ng.Xor(ng.Xor(outs[0], strip), restore)
	for i, o := range outs {
		ng.AddOutput(o, g.OutputName(i))
	}
	return &locking.Locked{
		Scheme:    "sfll-hd",
		Enc:       ng,
		NumInputs: g.NumInputs(),
		KeyBits:   n,
		Key:       key,
	}, nil
}
