package lockbase

import (
	"math/rand"
	"testing"

	"obfuslock/internal/aig"
	"obfuslock/internal/locking"
	"obfuslock/internal/netlistgen"
)

func testCircuit() *aig.AIG { return netlistgen.Multiplier(4) }

func flipBit(key []bool, i int) []bool {
	k := append([]bool(nil), key...)
	k[i] = !k[i]
	return k
}

func checkScheme(t *testing.T, orig *aig.AIG, l *locking.Locked, wrongMustBreak bool) {
	t.Helper()
	if err := l.Verify(orig); err != nil {
		t.Fatalf("%s: %v", l.Scheme, err)
	}
	if wrongMustBreak {
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 3; trial++ {
			wrong := flipBit(l.Key, rng.Intn(l.KeyBits))
			broke, err := l.WrongKeyIsWrong(orig, wrong)
			if err != nil {
				t.Fatal(err)
			}
			if !broke {
				t.Fatalf("%s: wrong key %v still correct", l.Scheme, wrong)
			}
		}
	}
}

func TestRLL(t *testing.T) {
	orig := testCircuit()
	l, err := RLL(orig, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.KeyBits != 12 || l.Scheme != "rll" {
		t.Fatalf("meta: %+v", l)
	}
	// RLL wrong keys are not guaranteed observable on redundant nodes, so
	// only require the correct key to work plus at least one wrong key to
	// break.
	checkScheme(t, orig, l, false)
	broke := false
	for i := 0; i < l.KeyBits && !broke; i++ {
		b, err := l.WrongKeyIsWrong(orig, flipBit(l.Key, i))
		if err != nil {
			t.Fatal(err)
		}
		broke = b
	}
	if !broke {
		t.Fatal("rll: no single-bit flip corrupts the circuit")
	}
}

func TestSARLock(t *testing.T) {
	orig := testCircuit()
	l, err := SARLock(orig, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkScheme(t, orig, l, true)
	// Error profile: a wrong key corrupts exactly the pattern x == k on the
	// protected bits.
	wrong := flipBit(l.Key, 3)
	bound := l.ApplyKey(wrong)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		x := make([]bool, orig.NumInputs())
		for i := range x {
			x[i] = rng.Intn(2) == 1
		}
		atK := true
		for i := 0; i < l.KeyBits; i++ {
			if x[i] != wrong[i] {
				atK = false
				break
			}
		}
		want := orig.Eval(x)
		got := bound.Eval(x)
		same := true
		for i := range want {
			if want[i] != got[i] {
				same = false
			}
		}
		if atK && same {
			t.Fatal("sarlock: wrong key did not corrupt its own pattern")
		}
		if !atK && !same {
			t.Fatal("sarlock: wrong key corrupted a non-matching pattern")
		}
	}
}

func TestAntiSAT(t *testing.T) {
	orig := testCircuit()
	l, err := AntiSAT(orig, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.KeyBits != 16 {
		t.Fatalf("antisat key bits = %d, want 16", l.KeyBits)
	}
	if err := l.Verify(orig); err != nil {
		t.Fatal(err)
	}
	// Any key with kA == kB is correct — check a second equal pair.
	alt := make([]bool, 16)
	for i := 0; i < 8; i++ {
		alt[i] = i%2 == 0
		alt[8+i] = i%2 == 0
	}
	ok, err := l.VerifyKey(orig, alt)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("antisat: equal key halves must be correct")
	}
	// Unequal halves must break.
	broke, err := l.WrongKeyIsWrong(orig, flipBit(l.Key, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !broke {
		t.Fatal("antisat: unequal halves still correct")
	}
}

func TestTTLock(t *testing.T) {
	orig := testCircuit()
	l, err := TTLock(orig, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkScheme(t, orig, l, true)
}

func TestSFLLHD(t *testing.T) {
	orig := testCircuit()
	for _, h := range []int{0, 1, 2} {
		l, err := SFLLHD(orig, 8, h, 5)
		if err != nil {
			t.Fatal(err)
		}
		checkScheme(t, orig, l, true)
		// The stripped circuit (wrong key far from k*) must differ from the
		// original on patterns at distance h from k*.
		wrong := append([]bool(nil), l.Key...)
		for i := range wrong {
			wrong[i] = !wrong[i]
		}
		broke, err := l.WrongKeyIsWrong(orig, wrong)
		if err != nil {
			t.Fatal(err)
		}
		if !broke {
			t.Fatalf("sfll-hd(h=%d): inverted key still correct", h)
		}
	}
}

func TestSFLLHDInvalidParams(t *testing.T) {
	orig := testCircuit()
	if _, err := SFLLHD(orig, 4, 4, 1); err == nil {
		t.Fatal("expected error for h >= width")
	}
}

func TestRLLTooManyKeys(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.And(a, b), "f")
	if _, err := RLL(g, 10, 1); err == nil {
		t.Fatal("expected error for oversized key")
	}
}

func TestHammingEquals(t *testing.T) {
	g := aig.New()
	in := g.AddInputs(5)
	for h := 0; h <= 5; h++ {
		g.AddOutput(hammingEquals(g, in, h), "")
	}
	pat := make([]bool, 5)
	for m := 0; m < 32; m++ {
		ones := 0
		for i := 0; i < 5; i++ {
			pat[i] = m>>i&1 == 1
			if pat[i] {
				ones++
			}
		}
		out := g.Eval(pat)
		for h := 0; h <= 5; h++ {
			if out[h] != (ones == h) {
				t.Fatalf("hammingEquals(%d) wrong at %05b", h, m)
			}
		}
	}
}
