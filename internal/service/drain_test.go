package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// waitForGoroutines polls until the goroutine count drops back to at
// most base (plus the runtime's own slack) or the deadline passes, and
// returns the final count. Direct equality is too brittle — the runtime
// and the http test server keep a few service goroutines alive — so
// callers compare against a tolerance.
func waitForGoroutines(base int, deadline time.Duration) int {
	var n int
	for start := time.Now(); time.Since(start) < deadline; {
		n = runtime.NumGoroutine()
		if n <= base {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
	return runtime.NumGoroutine()
}

// TestDrainCompletesInFlight proves the graceful path: a drain with a
// generous deadline lets the running job finish (done, not cancelled),
// refuses new submissions with 503/draining, and flips /healthz to 503.
func TestDrainCompletesInFlight(t *testing.T) {
	block := make(chan struct{})
	runner := &stubRunner{block: block}
	srv := New(Config{Runner: runner, Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, data := postJob(t, ts, validSpec(KindCEC), "")
	var st Status
	json.Unmarshal(data, &st)
	deadline := time.Now().Add(5 * time.Second)
	for len(runner.seen()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- srv.Drain(ctx)
	}()

	// Draining state is visible before the drain completes.
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}
	if resp, body := postJob(t, ts, validSpec(KindCEC), ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain = %d, want 503: %s", resp.StatusCode, body)
	} else if jerr := decodeError(t, body); jerr.Code != CodeDraining {
		t.Errorf("code = %s, want %s", jerr.Code, CodeDraining)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/healthz during drain = %d, want 503", resp.StatusCode)
		}
	}

	close(block) // let the in-flight job finish
	if err := <-drainDone; err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if fin := getStatus(t, ts, st.ID); fin.State != StateDone {
		t.Errorf("in-flight job state after graceful drain = %s, want done", fin.State)
	}
}

// TestDrainDeadlineCancels proves the checkpoint path: when the drain
// budget expires with a job still running, the server cancels it (the
// runner observes its context) and the drain still returns cleanly.
func TestDrainDeadlineCancels(t *testing.T) {
	runner := &stubRunner{block: make(chan struct{})} // only ctx releases it
	srv := New(Config{Runner: runner, Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, data := postJob(t, ts, validSpec(KindCEC), "")
	var st Status
	json.Unmarshal(data, &st)
	deadline := time.Now().Add(5 * time.Second)
	for len(runner.seen()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain with expired budget should cancel and succeed, got %v", err)
	}
	if fin := getStatus(t, ts, st.ID); fin.State != StateCancelled {
		t.Errorf("job state after forced drain = %s, want cancelled", fin.State)
	}
}

// TestCancelQueuedNeverRuns submits behind a busy worker, cancels the
// queued job, and proves the runner never sees it while its admission
// slot is still reclaimed.
func TestCancelQueuedNeverRuns(t *testing.T) {
	block := make(chan struct{})
	runner := &stubRunner{block: block}
	srv := New(Config{
		Runner:        runner,
		Workers:       1,
		QueueDepth:    4,
		DefaultLimits: TenantLimits{MaxActive: 2},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, first := postJob(t, ts, validSpec(KindCEC), "")
	var run Status
	json.Unmarshal(first, &run)
	deadline := time.Now().Add(5 * time.Second)
	for len(runner.seen()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	queued := validSpec(KindSample)
	queued.Label = "queued-victim"
	_, second := postJob(t, ts, queued, "")
	var vic Status
	json.Unmarshal(second, &vic)
	if st := getStatus(t, ts, vic.ID); st.State != StateQueued {
		t.Fatalf("second job state = %s, want queued", st.State)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+vic.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var afterCancel Status
	json.NewDecoder(resp.Body).Decode(&afterCancel)
	resp.Body.Close()
	if afterCancel.State != StateCancelled {
		t.Fatalf("cancel of a queued job must be immediate, state = %s", afterCancel.State)
	}

	close(block)
	waitTerminal(t, ts, run.ID)
	// The tombstoned task drains through the worker; once it has, the
	// runner must have seen exactly one spec and both slots must be free.
	deadline = time.Now().Add(5 * time.Second)
	for srv.sched.Active("default") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("admission slots not reclaimed: %d active", srv.sched.Active("default"))
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, spec := range runner.seen() {
		if spec.Label == "queued-victim" {
			t.Error("runner executed a job cancelled while queued")
		}
	}
}

// TestPreCancelledSubmissionSkipsScheduler proves a submission whose
// request context is already dead is rejected before touching the
// scheduler: no runner call, no admission slot, no job entry.
func TestPreCancelledSubmissionSkipsScheduler(t *testing.T) {
	runner := &stubRunner{}
	srv := New(Config{Runner: runner})
	defer srv.Close()

	body, _ := json.Marshal(validSpec(KindCEC))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead before the handler runs
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(string(body))).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)

	if rec.Code != http.StatusBadRequest {
		t.Fatalf("pre-cancelled submit = %d, want 400: %s", rec.Code, rec.Body)
	}
	if jerr := decodeError(t, rec.Body.Bytes()); jerr.Code != CodeBadRequest {
		t.Errorf("code = %s", jerr.Code)
	}
	if n := len(runner.seen()); n != 0 {
		t.Errorf("runner saw %d specs, want 0", n)
	}
	if a := srv.sched.Active("default"); a != 0 {
		t.Errorf("admission slots leaked: %d active", a)
	}
	srv.mu.Lock()
	jobs := len(srv.jobs)
	srv.mu.Unlock()
	if jobs != 0 {
		t.Errorf("job table has %d entries, want 0", jobs)
	}
}

// TestWaitModeDisconnectFreesSlot proves a ?wait=1 client that goes away
// mid-run cancels its job: the worker and the tenant's admission slot
// come back instead of burning on an answer nobody will read.
func TestWaitModeDisconnectFreesSlot(t *testing.T) {
	runner := &stubRunner{block: make(chan struct{})} // only ctx releases it
	srv := New(Config{Runner: runner, Workers: 1, DefaultLimits: TenantLimits{MaxActive: 1}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(validSpec(KindCEC))
	reqCtx, disconnect := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(reqCtx, http.MethodPost, ts.URL+"/v1/jobs?wait=1", strings.NewReader(string(body)))
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(runner.seen()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	disconnect()
	if err := <-errc; err == nil {
		t.Fatal("client request should have failed on disconnect")
	}
	// The slot must come back without anyone completing the job manually.
	deadline = time.Now().Add(5 * time.Second)
	for srv.sched.Active("default") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("admission slot never released after client disconnect")
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv.mu.Lock()
	var job *Job
	for _, j := range srv.jobs {
		job = j
	}
	srv.mu.Unlock()
	if job == nil || job.State() != StateCancelled {
		t.Errorf("abandoned job state = %v, want cancelled", job.State())
	}
}

// TestLifecycleLeaksNoGoroutines runs a full mixed lifecycle — complete,
// cancel-running, cancel-queued, fail, drain — and proves the goroutine
// count returns to baseline: no stuck workers, watchers or event
// followers.
func TestLifecycleLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()

	block := make(chan struct{})
	runner := &stubRunner{block: block}
	srv := New(Config{Runner: runner, Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv.Handler())

	var ids []string
	for i := 0; i < 4; i++ {
		_, data := postJob(t, ts, validSpec(KindCEC), "")
		var st Status
		json.Unmarshal(data, &st)
		ids = append(ids, st.ID)
	}
	// Cancel one running and one queued job, follow another's events.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+ids[0], nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	follow := make(chan struct{})
	go func() {
		defer close(follow)
		resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[3] + "/events?follow=1")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	close(block)
	for _, id := range ids {
		waitTerminal(t, ts, id)
	}
	<-follow

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cancel()
	srv.Close()
	ts.Close()
	http.DefaultClient.CloseIdleConnections()

	if n := waitForGoroutines(base, 5*time.Second); n > base+3 {
		t.Errorf("goroutines leaked: %d before, %d after", base, n)
	}
}

// TestDrainIdempotent calls Drain twice (concurrently and again after
// completion) and proves both observe the drained state.
func TestDrainIdempotent(t *testing.T) {
	srv := New(Config{Runner: &stubRunner{}})
	defer srv.Close()

	var done atomic.Int32
	for i := 0; i < 3; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Drain(ctx); err == nil {
				done.Add(1)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for done.Load() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("concurrent drains stuck: %d/3 done", done.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Errorf("drain after drain = %v", err)
	}
}
