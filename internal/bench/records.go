package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"obfuslock/internal/sat"
)

// Record is one row of the BENCH_*.json artifacts the benchmark harness
// emits (BENCH_sat.json, BENCH_attack.json): wall time and heap
// allocations per op, the cumulative SAT-solver work behind them, and —
// for the attack benchmarks — the oracle-query and DIP-iteration counts
// that make equal-work comparisons honest. All BENCH files share this
// one type so their schemas cannot drift apart; fields a given
// benchmark does not measure are simply omitted.
type Record struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	Queries     int   `json:"queries,omitempty"`
	Iterations  int   `json:"iterations,omitempty"`
	// Shared counts learnt clauses exported between parallel-portfolio
	// workers (BENCH_sat_par.json; zero for sequential solves).
	Shared int64     `json:"shared_clauses,omitempty"`
	Solver sat.Stats `json:"solver"`
}

// ReadRecords parses a BENCH_*.json artifact: a JSON object mapping
// benchmark names to Records. Scalar summary entries living beside the
// records (BENCH_attack.json's "speedup" and "equal_queries") are
// skipped rather than rejected, and unknown per-record fields are
// ignored, so older readers tolerate newer artifacts.
func ReadRecords(r io.Reader) (map[string]Record, error) {
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, err
	}
	out := make(map[string]Record, len(raw))
	for name, msg := range raw {
		trimmed := bytes.TrimSpace(msg)
		if len(trimmed) == 0 || trimmed[0] != '{' {
			continue // summary scalar, not a record
		}
		var rec Record
		if err := json.Unmarshal(trimmed, &rec); err != nil {
			return nil, fmt.Errorf("bench: record %q: %w", name, err)
		}
		out[name] = rec
	}
	return out, nil
}
