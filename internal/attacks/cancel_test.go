package attacks

import (
	"context"
	"runtime"
	"testing"
	"time"

	"obfuslock/internal/exec"
	"obfuslock/internal/lockbase"
	"obfuslock/internal/locking"
	"obfuslock/internal/obs"
	"obfuslock/internal/simp"
)

// cancelOnDIP is an obs.Sink that fires a CancelFunc on the attack's
// first per-iteration "dip" event. The event is emitted synchronously
// inside the DIP loop, right before its cancellation check, so the
// cancellation is pinned mid-attack no matter how fast the solver
// finishes — a wall-clock sleep would race attack completion.
type cancelOnDIP struct{ cancel context.CancelFunc }

func (c *cancelOnDIP) SpanStart(obs.SpanData) {}
func (c *cancelOnDIP) SpanEnd(obs.SpanData)   {}
func (c *cancelOnDIP) Event(_ uint64, name string, _ time.Time, _ []obs.Field) {
	if name == "dip" {
		c.cancel()
	}
}
func (c *cancelOnDIP) Metric(obs.MetricSnapshot) {}

// waitForGoroutines polls until the goroutine count drops back to at most
// base (plus the runtime's own slack) or the deadline passes, and returns
// the final count. Direct equality is too brittle — the runtime keeps a
// few service goroutines alive — so callers compare against a tolerance.
func waitForGoroutines(base int, deadline time.Duration) int {
	var n int
	for start := time.Now(); time.Since(start) < deadline; {
		n = runtime.NumGoroutine()
		if n <= base {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
	return runtime.NumGoroutine()
}

// Cancelling the context mid-attack must stop the SAT attack promptly
// with a timeout-style result and leak no goroutines. The context is
// cancelled from the first DIP iteration's trace event, so the attack is
// provably mid-run when cancellation lands.
func TestSATAttackPromptCancellation(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.SARLock(orig, 14, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := DefaultIOOptions()
	opt.Trace = obs.New(&cancelOnDIP{cancel: cancel})
	start := time.Now()
	res := SATAttack(ctx, l, locking.NewOracle(orig), opt)
	elapsed := time.Since(start)
	if !res.TimedOut {
		t.Fatalf("cancelled attack did not report TimedOut: %+v", res)
	}
	if res.Exact {
		t.Fatalf("cancelled attack claims an exact key: %+v", res)
	}
	// The solver polls cancellation every 64 conflict-loop ticks plus each
	// DIP round boundary; well under a second on this instance.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	if n := waitForGoroutines(base, 2*time.Second); n > base+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", base, n)
	}
}

// A context cancelled before the attack starts must return immediately.
func TestSATAttackPreCancelled(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.SARLock(orig, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res := SATAttack(ctx, l, locking.NewOracle(orig), DefaultIOOptions())
	if !res.TimedOut || res.Exact {
		t.Fatalf("pre-cancelled attack ran anyway: %+v", res)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("pre-cancelled attack took %v", time.Since(start))
	}
}

// Cancellation must reach the Sensitization per-bit solves too.
func TestSensitizationCancellation(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.RLL(orig, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Sensitization(ctx, l, locking.NewOracle(orig), exec.WithConflicts(100000), simp.Default())
	if !res.TimedOut {
		t.Fatalf("pre-cancelled sensitization did not report TimedOut: %+v", res)
	}
	if res.NumIsolatable != 0 {
		t.Fatalf("pre-cancelled sensitization isolated %d bits", res.NumIsolatable)
	}
}

// Portfolio races SAT and AppSAT on a crackable lock: some variant must
// win with a verified key, losers are cancelled, and every goroutine is
// joined before Portfolio returns.
func TestPortfolioWinsAndJoins(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.RLL(orig, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	opt := DefaultIOOptions()
	variants := []PortfolioVariant{
		{Name: "sat", Attack: "sat", Locked: l, Oracle: locking.NewOracle(orig), Orig: orig, Opt: opt},
		{Name: "appsat", Attack: "appsat", Locked: l, Oracle: locking.NewOracle(orig), Orig: orig, Opt: opt},
	}
	res := Portfolio(context.Background(), variants, nil)
	if res.Winner == "" || res.Key == nil {
		t.Fatalf("no winner on RLL: %+v", res)
	}
	ok, err := l.VerifyKey(orig, res.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("portfolio winner %q returned a wrong key", res.Winner)
	}
	if len(res.Outcomes) != len(variants) {
		t.Fatalf("outcomes: got %d, want %d", len(res.Outcomes), len(variants))
	}
	if n := waitForGoroutines(base, 2*time.Second); n > base+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", base, n)
	}
}

// A cancelled portfolio has no winner and still joins every variant.
// Cancellation fires from the first DIP iteration either variant
// reaches, so no variant can have completed before it lands.
func TestPortfolioCancelled(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.SARLock(orig, 14, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := DefaultIOOptions()
	opt.Trace = obs.New(&cancelOnDIP{cancel: cancel})
	res := Portfolio(ctx, []PortfolioVariant{
		{Name: "sat", Attack: "sat", Locked: l, Oracle: locking.NewOracle(orig), Orig: orig, Opt: opt},
		{Name: "appsat", Attack: "appsat", Locked: l, Oracle: locking.NewOracle(orig), Orig: orig, Opt: opt},
	}, nil)
	if res.Winner != "" || res.Key != nil {
		t.Fatalf("cancelled portfolio produced a winner: %+v", res)
	}
	if n := waitForGoroutines(base, 2*time.Second); n > base+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", base, n)
	}
}
