package core

import (
	"context"
	"testing"

	"obfuslock/internal/netlistgen"
	"obfuslock/internal/obs"
)

// TestLockTraceSpans asserts that a traced lock emits one completed span
// per pipeline phase, with per-attachment gain events under the
// L-construction span.
func TestLockTraceSpans(t *testing.T) {
	col := obs.NewCollector()
	c := netlistgen.Multiplier(6)
	opt := DefaultOptions()
	opt.TargetSkewBits = 8
	opt.Seed = 3
	opt.AllowDirect = false
	opt.Trace = obs.New(col)
	res, err := Lock(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	// lock.assess_skew is absent: it only runs with AllowDirect.
	for _, name := range []string{
		"lock", "lock.build_l", "lock.permute",
		"lock.cec", "lock.blend", "lock.assemble", "lock.rewrite",
	} {
		sd, ok := col.SpanNamed(name)
		if !ok {
			t.Fatalf("missing span %q", name)
		}
		if name != "lock" && sd.Parent == 0 {
			t.Fatalf("span %q has no parent", name)
		}
	}
	// The root span carries the outcome.
	root, _ := col.SpanNamed("lock")
	fields := map[string]any{}
	for _, f := range root.Fields {
		fields[f.Key] = f.Value()
	}
	if fields["key_bits"] != int64(res.Report.KeyBits) {
		t.Fatalf("root span key_bits %v, report %d", fields["key_bits"], res.Report.KeyBits)
	}
	// L-construction emits one attach event per accepted attachment.
	attach := col.EventsNamed("attach")
	if len(attach) == 0 {
		t.Fatal("no attach events")
	}
	if got := attach[len(attach)-1].Fields["n"].(int64); got != int64(res.Report.Attachments) {
		t.Fatalf("last attach n=%d, report counts %d", got, res.Report.Attachments)
	}
}

// TestLockSubCircuitTraceSpans asserts the sub-circuit path adds the cut
// selection span with the counter's trial events.
func TestLockSubCircuitTraceSpans(t *testing.T) {
	col := obs.NewCollector()
	c := netlistgen.Multiplier(7)
	opt := DefaultOptions()
	opt.TargetSkewBits = 8
	opt.Seed = 1
	opt.SubCircuit = true
	opt.Trace = obs.New(col)
	if _, err := Lock(context.Background(), c, opt); err != nil {
		t.Fatal(err)
	}
	if _, ok := col.SpanNamed("lock.select_cut"); !ok {
		t.Fatal("missing lock.select_cut span")
	}
	if _, ok := col.SpanNamed("count.approx"); !ok {
		t.Fatal("missing count.approx span from cut selection")
	}
}
