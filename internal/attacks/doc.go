// Package attacks implements the attack suite ObfusLock is evaluated
// against: the oracle-guided SAT attack and AppSAT (I/O attacks), the
// sensitization attack, and the structural attacks — SPS, removal,
// bypass, Valkyrie-style perturb/restore search, a structural-feature
// classifier standing in for the published ML attacks, and an SPI-style
// synthesis attack.
//
// # The DIP loop
//
// The I/O attacks share one engine, the DIP loop (Subramanyan et al.):
// a miter of two copies of the locked circuit with tied inputs and
// independent keys is solved for a distinguishing input pattern (DIP) —
// an input on which some pair of keys disagrees. The oracle answers the
// DIP, the correct output is asserted for both key copies, and the loop
// repeats. When no DIP remains, every key consistent with the recorded
// constraints is functionally correct, and extractKey returns the
// lexicographically smallest one. AppSAT is the same loop with periodic
// random-query reinforcement and an iteration cap, trading the
// exactness proof for speed on compound schemes.
//
// # Batched DIP pipelining
//
// The loop runs in batched rounds (IOOptions.DIPBatch): after an
// UNSAT-free solve, up to K candidate DIPs are enumerated by adding an
// activation-guarded blocking clause per harvested pattern and
// re-solving; the whole batch is answered by one bit-parallel oracle
// pass (locking.Oracle.QueryBatch), and the resulting I/O constraints
// are added in bulk before the next round's solve. The batching
// contract:
//
//   - Blocking clauses are permanent but carry the miter's activation
//     literal, so they never constrain key extraction; once the batch's
//     I/O constraints are recorded they are implied outright, so they
//     never change termination either.
//   - An UNSAT answer while enumerating *within* a round only ends the
//     batch; termination is decided solely by the next round's fresh
//     solve, after the constraints have landed.
//   - Batches are drained in enumeration order — one "dip" trace event
//     per pattern, iteration counts and oracle-query accounting exactly
//     as in the serial loop (K=1 is the classic algorithm).
//   - An exact attack recovers the same canonical key at any K and any
//     worker count, because the lexicographically-smallest consistent
//     key is a property of the constraint-set semantics, not of the
//     search path.
//
// Portfolio races variants of the loop concurrently; variants attacking
// the same locked circuit share answered I/O pairs through a DIPQueue,
// so one variant's oracle work shrinks the other's key space. Miter
// construction is memoized through internal/memo (IOOptions.Cache) as a
// replayable sat.Image keyed on the circuit fingerprint, so repeated
// attacks on the same circuit skip straight to the loop.
package attacks
