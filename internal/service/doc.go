// Package service is the locking-as-a-service layer: the job-oriented
// wire API and the admission-controlled execution engine behind the
// obfuslockd daemon.
//
// The package has three parts, deliberately decoupled:
//
//   - The wire schema (spec.go): versioned JobSpec/JobResult types
//     ("obfuslock-job/v1" / "obfuslock-result/v1") covering every
//     registered locking scheme and oracle-guided attack plus
//     equivalence checking, model counting and skewness sampling.
//     Circuits travel as .bench text; budgets as explicit integer
//     fields. Decoding is strict — unknown fields are a structured 400,
//     not a silent drop — and JobResult carries no wall-clock fields, so
//     a job's result is byte-identical whether it ran serially or under
//     heavy concurrency (the loadgen soak asserts exactly this).
//
//   - The scheduler (sched.go): an exec.Queue — bounded backlog,
//     fail-fast saturation — fronted by per-tenant concurrency quotas
//     and budget ceilings (TenantLimits). Admission control is the
//     production story: quota exhaustion and backpressure map to HTTP
//     429 with a structured error body and Retry-After, drain to 503.
//
//   - The HTTP surface (server.go): async submission (POST /v1/jobs),
//     polling (GET /v1/jobs/{id}), a JSONL progress stream fed by each
//     job's obs tracer (GET /v1/jobs/{id}/events, ?follow=1 to tail),
//     cancellation (DELETE — context cancellation propagates down to
//     the SAT conflict loops), a synchronous ?wait=1 mode in which a
//     client disconnect cancels the job and frees its worker slot, and
//     graceful drain (Server.Drain): stop admitting, finish or cancel
//     in-flight jobs, then let the daemon flush its ledger.
//
// Execution itself is injected through the Runner interface; the
// production implementation lives in the facade (obfuslock.NewJobRunner)
// where the scheme and attack registries are in scope. This keeps the
// wire types self-contained — nothing in a JobSpec or JobResult
// references another package — which the facade's API-surface test
// enforces.
package service
