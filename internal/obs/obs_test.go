package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Span("root", Int("i", 1))
	if sp.Enabled() {
		t.Fatal("nil span reports enabled")
	}
	child := sp.Span("child")
	child.Event("e", Str("k", "v"))
	child.End()
	sp.End()
	tr.Event("orphan")
	tr.Counter("c").Add(5)
	tr.Gauge("g").Set(1)
	tr.Histogram("h").Observe(2)
	if got := tr.Metrics(); got != nil {
		t.Fatalf("nil tracer metrics = %v", got)
	}
	tr.Close()
	if New(nil) != nil {
		t.Fatal("New(nil) should return a disabled (nil) tracer")
	}
}

func TestCollectorHierarchy(t *testing.T) {
	col := NewCollector()
	tr := New(col)
	root := tr.Span("lock", Str("circuit", "c17"))
	build := root.Span("lock.build_l")
	build.Event("attach", Int("n", 1), Float("gain_bits", 2.5))
	build.Event("attach", Int("n", 2), Float("gain_bits", 1.25))
	build.End(Int("attachments", 2))
	root.End()

	spans := col.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "lock.build_l" || spans[1].Name != "lock" {
		t.Fatalf("span order: %q then %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent=%d, root id=%d", spans[0].Parent, spans[1].ID)
	}
	ev := col.EventsNamed("attach")
	if len(ev) != 2 {
		t.Fatalf("got %d attach events, want 2", len(ev))
	}
	if ev[0].SpanID != spans[0].ID {
		t.Fatalf("event span=%d, want %d", ev[0].SpanID, spans[0].ID)
	}
	if ev[1].Fields["gain_bits"] != 1.25 {
		t.Fatalf("gain_bits = %v", ev[1].Fields["gain_bits"])
	}
}

func TestMetricsRegistry(t *testing.T) {
	tr := New(NewCollector())
	c := tr.Counter("sat.conflicts")
	c.Add(10)
	tr.Counter("sat.conflicts").Inc() // same instance by name
	if c.Value() != 11 {
		t.Fatalf("counter = %d, want 11", c.Value())
	}
	tr.Gauge("skew.bits").Set(20.5)
	h := tr.Histogram("dip.us")
	h.Observe(3)
	h.Observe(1)
	h.Observe(2)
	ms := tr.Metrics()
	if len(ms) != 3 {
		t.Fatalf("got %d metrics, want 3", len(ms))
	}
	// Sorted by name: dip.us, sat.conflicts, skew.bits.
	if ms[0].Name != "dip.us" || ms[0].Count != 3 || ms[0].Min != 1 || ms[0].Max != 3 || ms[0].Sum != 6 {
		t.Fatalf("histogram snapshot = %+v", ms[0])
	}
	if ms[1].Name != "sat.conflicts" || ms[1].Value != 11 {
		t.Fatalf("counter snapshot = %+v", ms[1])
	}
	if ms[2].Name != "skew.bits" || ms[2].Value != 20.5 {
		t.Fatalf("gauge snapshot = %+v", ms[2])
	}
}

func TestJSONLValidAndComplete(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONL(&buf))
	root := tr.Span("attack.sat", Int("key_bits", 12))
	root.Event("dip", Int("iter", 1), Dur("elapsed", 1500*time.Microsecond),
		Bool("exact", false), Float("rate", 0.5), Str("phase", "solve"))
	root.End(Bool("exact", true))
	tr.Counter("oracle.queries").Add(7)
	tr.Histogram("iter.us").Observe(12)
	tr.Close()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d JSONL lines, want 5:\n%s", len(lines), buf.String())
	}
	types := map[string]int{}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", ln, err)
		}
		types[m["type"].(string)]++
	}
	if types["span_start"] != 1 || types["span_end"] != 1 || types["event"] != 1 || types["metric"] != 2 {
		t.Fatalf("record mix = %v", types)
	}

	// Spot-check the event record's field encoding.
	var ev map[string]any
	json.Unmarshal([]byte(lines[1]), &ev)
	fields := ev["fields"].(map[string]any)
	if fields["iter"] != float64(1) || fields["elapsed"] != float64(1500) ||
		fields["exact"] != false || fields["rate"] != 0.5 || fields["phase"] != "solve" {
		t.Fatalf("event fields = %v", fields)
	}
}

func TestJSONLNonFiniteFloats(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONL(&buf))
	tr.Span("x", Float("inf", math.Inf(1)), Float("nan", math.NaN())).End()
	tr.Gauge("g").Set(math.Inf(-1))
	tr.Close()
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("invalid JSON with non-finite float %q: %v", ln, err)
		}
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	tr := New(Multi(a, nil, b))
	tr.Span("s").End()
	if len(a.Spans()) != 1 || len(b.Spans()) != 1 {
		t.Fatalf("multi fan-out: a=%d b=%d", len(a.Spans()), len(b.Spans()))
	}
	if Multi() != nil {
		t.Fatal("Multi() should collapse to nil")
	}
	if Multi(nil, a) != Sink(a) {
		t.Fatal("Multi with one live sink should return it directly")
	}
}

func TestProgressSinkPaints(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	tr := New(p)
	sp := tr.Span("lock")
	inner := sp.Span("lock.blend")
	inner.End()
	sp.End()
	p.Done()
	out := buf.String()
	if !strings.Contains(out, "lock>lock.blend") {
		t.Fatalf("progress output missing span path: %q", out)
	}
	if !strings.Contains(out, "done in") {
		t.Fatalf("progress output missing completion note: %q", out)
	}
}

// TestConcurrentSpansFanIn drives one tracer from many goroutines, the
// shape a parallel sweep produces, and checks the sinks survive the
// interleaving: the Progress sink must drop exactly the ended span even
// when several same-named spans are open (removal is by span ID), and the
// collector must see every span and event.
func TestConcurrentSpansFanIn(t *testing.T) {
	col := NewCollector()
	prog := NewProgress(&bytes.Buffer{})
	tr := New(Multi(col, prog))
	const workers = 8
	const spansPer = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				sp := tr.Span("cell", Int("worker", int64(w)))
				sp.Event("tick", Int("i", int64(i)))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	tr.Close()
	ended := 0
	for _, sd := range col.Spans() {
		if sd.Name == "cell" {
			ended++
		}
	}
	if ended != workers*spansPer {
		t.Fatalf("collector saw %d ended cell spans, want %d", ended, workers*spansPer)
	}
	if got := len(col.EventsNamed("tick")); got != workers*spansPer {
		t.Fatalf("collector saw %d tick events, want %d", got, workers*spansPer)
	}
	prog.mu.Lock()
	open := len(prog.open)
	prog.mu.Unlock()
	if open != 0 {
		t.Fatalf("progress sink still tracks %d open spans after all ended", open)
	}
}
