package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"obfuslock/internal/netlistgen"
	"obfuslock/internal/obs"
)

func TestWriteMetricsJSON(t *testing.T) {
	rows := []TableIRow{
		{
			Bench: "adder", Nodes: 120, SkewBits: 8.4, KeyBits: 16,
			LockTime: 1500 * time.Millisecond,
			SATSub:   "TO", SATWhole: "TO", AppSATSub: "wrong", AppSATWhole: "wrong",
		},
		{
			Bench: "mult", Nodes: 300, SkewBits: 12.1, KeyBits: 20,
			LockTime: 2 * time.Second,
			SATSub:   "3.5", SATWhole: "TO", AppSATSub: "wrong", AppSATWhole: "TO",
		},
	}
	tr := obs.New(obs.Discard)
	tr.Counter("oracle_queries").Add(42)
	tr.Histogram("dip_us").Record(250000)
	tr.Histogram("dip_us").Record(750000)

	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, rows, tr); err != nil {
		t.Fatal(err)
	}
	var mf MetricsFile
	if err := json.Unmarshal(buf.Bytes(), &mf); err != nil {
		t.Fatalf("metrics.json is not valid JSON: %v\n%s", err, buf.String())
	}
	if mf.Schema != MetricsSchema {
		t.Fatalf("schema %q, want %q", mf.Schema, MetricsSchema)
	}
	if len(mf.Rows) != 2 {
		t.Fatalf("got %d rows", len(mf.Rows))
	}
	r := mf.Rows[0]
	if r.Bench != "adder" || r.KeyBits != 16 || r.LockSeconds != 1.5 {
		t.Fatalf("row mangled: %+v", r)
	}
	for _, cellKey := range []string{"sat_sub", "sat_whole", "appsat_sub", "appsat_whole"} {
		if _, ok := r.Attacks[cellKey]; !ok {
			t.Fatalf("missing attack cell %q", cellKey)
		}
	}
	if len(mf.Metrics) != 2 {
		t.Fatalf("got %d metrics, want 2: %+v", len(mf.Metrics), mf.Metrics)
	}
	var seenCounter, seenHist bool
	for _, m := range mf.Metrics {
		switch m.Name {
		case "oracle_queries":
			seenCounter = m.Kind == "counter" && m.Value == 42
		case "dip_us":
			seenHist = m.Kind == "histogram" && m.Count == 2 && m.Sum == 1000000 &&
				m.P50 >= 250000 && m.P99 <= 750000
		}
	}
	if !seenCounter || !seenHist {
		t.Fatalf("metric snapshots wrong: %+v", mf.Metrics)
	}
}

func TestWriteMetricsJSONNilTracerEmptyRows(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	var mf MetricsFile
	if err := json.Unmarshal(buf.Bytes(), &mf); err != nil {
		t.Fatal(err)
	}
	if mf.Schema != MetricsSchema || len(mf.Rows) != 0 || len(mf.Metrics) != 0 {
		t.Fatalf("unexpected document: %+v", mf)
	}
}

func TestTableIEntryTraced(t *testing.T) {
	col := obs.NewCollector()
	budget := quickBudget()
	budget.Trace = obs.New(col)
	b := netlistgen.SmallSuite()[1]
	if _, err := TableIEntry(context.Background(), b, 8, 1, budget, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := col.SpanNamed("lock"); !ok {
		t.Fatal("no lock span recorded")
	}
	cells := 0
	for _, sd := range col.Spans() {
		if sd.Name == "table1.cell" {
			cells++
		}
	}
	if cells != 4 {
		t.Fatalf("got %d completed table1.cell spans, want 4", cells)
	}
	attacks := map[string]bool{}
	for _, sd := range col.Started() {
		if sd.Name != "table1.cell" {
			continue
		}
		for _, f := range sd.Fields {
			if f.Key == "attack" {
				attacks[f.Value().(string)] = true
			}
		}
	}
	for _, want := range []string{"sat-sub", "sat-whole", "appsat-sub", "appsat-whole"} {
		if !attacks[want] {
			t.Fatalf("missing cell span for attack %q (have %v)", want, attacks)
		}
	}
}
