package sat

import "math"

// Flat clause arena. Every clause lives in one shared []uint32: a header
// word, two extra words for learnt clauses (activity, LBD|tier|used
// meta), then the literals. Clause references (cref) are arena offsets
// of the header word, so following a reference is one slice index — no
// pointer chase, no per-clause allocation, and the whole database is
// contiguous for the propagation loop.
//
// Deletion marks the header and accounts the words as wasted; the
// storage is reclaimed by a compacting garbage collector
// (Solver.garbageCollect) that copies live clauses into a fresh arena,
// leaves a forwarding reference behind each moved clause, and remaps
// every watcher, reason and database index through the forwarding
// table. In-place shrinking (simplification strengthening a clause)
// likewise accounts the dropped tail words as wasted.
//
// Layout:
//
//	problem clause: [hdr][lit0]...[litN-1]
//	learnt clause:  [hdr][act][meta][lit0]...[litN-1]
//	hdr  = size<<3 | reloc<<2 | deleted<<1 | learnt
//	act  = float32 bits (claInc-bumped activity, local-tier ordering)
//	meta = used<<18 | tier<<16 | min(lbd, 0xffff)
//
// A relocated clause keeps its header (sizes stay readable during GC)
// with the reloc bit set, and its first post-header word holds the
// forwarding cref. Clauses always have >= 2 literals (units go to the
// trail), so that word exists.

// cref is a clause reference: the arena offset of the clause header.
type cref uint32

// crefUndef is the absent clause reference (no reason / no conflict).
const crefUndef cref = ^cref(0)

const (
	hdrLearnt    uint32 = 1 << 0
	hdrDeleted   uint32 = 1 << 1
	hdrReloc     uint32 = 1 << 2
	hdrSizeShift        = 3
)

// Learnt-clause tiers (glucose/Chanseok-Oh style three-tier management).
const (
	tierLocal uint32 = iota // reducible: sorted out by reduceDB
	tierMid                 // LBD <= 6: kept while it keeps being used
	tierCore                // LBD <= 3: kept forever
)

const (
	metaLBDMask   uint32 = 0xffff
	metaTierShift        = 16
	metaTierMask  uint32 = 3 << metaTierShift
	metaUsedBit   uint32 = 1 << 18
	learntExtra          = 2 // words between header and literals
)

// tierFor maps an LBD to the tier a fresh learnt clause lands in.
func tierFor(lbd int) uint32 {
	switch {
	case lbd <= 3:
		return tierCore
	case lbd <= 6:
		return tierMid
	}
	return tierLocal
}

type arena struct {
	data   []uint32
	wasted int // words owned by deleted clauses and shrunk tails
}

// alloc packs a clause into the arena and returns its reference.
func (a *arena) alloc(lits []Lit, learnt bool, lbd int) cref {
	c := cref(len(a.data))
	hdr := uint32(len(lits)) << hdrSizeShift
	if learnt {
		hdr |= hdrLearnt
	}
	a.data = append(a.data, hdr)
	if learnt {
		meta := uint32(lbd)
		if meta > metaLBDMask {
			meta = metaLBDMask
		}
		meta |= tierFor(lbd) << metaTierShift
		a.data = append(a.data, 0, meta)
	}
	for _, l := range lits {
		a.data = append(a.data, uint32(l))
	}
	return c
}

func (a *arena) size(c cref) int     { return int(a.data[c] >> hdrSizeShift) }
func (a *arena) learnt(c cref) bool  { return a.data[c]&hdrLearnt != 0 }
func (a *arena) deleted(c cref) bool { return a.data[c]&hdrDeleted != 0 }
func (a *arena) reloc(c cref) bool   { return a.data[c]&hdrReloc != 0 }

// words is the clause's total footprint including header and extras.
func (a *arena) words(c cref) int {
	n := 1 + a.size(c)
	if a.data[c]&hdrLearnt != 0 {
		n += learntExtra
	}
	return n
}

func (a *arena) litOff(c cref) cref {
	if a.data[c]&hdrLearnt != 0 {
		return c + 1 + learntExtra
	}
	return c + 1
}

// lits returns the clause's literal words. Callers read/write literals
// as Lit(w) / uint32(l); the slice aliases the arena, so it is
// invalidated by alloc and garbageCollect.
func (a *arena) lits(c cref) []uint32 {
	off := a.litOff(c)
	return a.data[off : off+cref(a.size(c))]
}

// litAt reads one literal.
func (a *arena) litAt(c cref, i int) Lit { return Lit(a.data[a.litOff(c)+cref(i)]) }

// del marks the clause deleted and accounts its words as garbage. The
// literals stay readable until the next garbageCollect, so lazily
// cleaned watcher lists can still inspect the header.
func (a *arena) del(c cref) {
	a.data[c] |= hdrDeleted
	a.wasted += a.words(c)
}

// shrink truncates the clause to its first n literals, accounting the
// dropped tail as garbage.
func (a *arena) shrink(c cref, n int) {
	old := a.size(c)
	if n >= old {
		return
	}
	const flagMask = uint32(1)<<hdrSizeShift - 1
	a.data[c] = a.data[c]&flagMask | uint32(n)<<hdrSizeShift
	a.wasted += old - n
}

func (a *arena) act(c cref) float32 { return math.Float32frombits(a.data[c+1]) }
func (a *arena) setAct(c cref, v float32) {
	a.data[c+1] = math.Float32bits(v)
}

func (a *arena) lbd(c cref) int { return int(a.data[c+2] & metaLBDMask) }
func (a *arena) setLBD(c cref, lbd int) {
	v := uint32(lbd)
	if v > metaLBDMask {
		v = metaLBDMask
	}
	a.data[c+2] = a.data[c+2]&^metaLBDMask | v
}

func (a *arena) tier(c cref) uint32 { return (a.data[c+2] & metaTierMask) >> metaTierShift }
func (a *arena) setTier(c cref, t uint32) {
	a.data[c+2] = a.data[c+2]&^metaTierMask | t<<metaTierShift
}

func (a *arena) used(c cref) bool { return a.data[c+2]&metaUsedBit != 0 }
func (a *arena) setUsed(c cref, u bool) {
	if u {
		a.data[c+2] |= metaUsedBit
	} else {
		a.data[c+2] &^= metaUsedBit
	}
}

// gcDue reports whether enough garbage accumulated to pay for a
// compaction pass (a third of the arena, and enough absolute waste that
// tiny solvers never bother).
func (a *arena) gcDue() bool {
	return a.wasted > 1024 && 3*a.wasted > len(a.data)
}

// maybeGC compacts the arena when enough garbage accumulated. Callers
// must be at a point where watcher lists and reasons are the only
// outstanding cref holders (i.e. not mid-simplification, where
// occurrence lists also hold refs).
func (s *Solver) maybeGC() {
	if s.ar.gcDue() {
		s.garbageCollect()
	}
}

// garbageCollect compacts the clause arena: live clauses are copied to
// a fresh arena in database order (problem clauses first, then
// learnts), each old header gains a forwarding reference, and every
// outstanding cref — clause/learnt indices, trail reasons, watcher
// lists — is remapped. Deleted clauses are dropped from the watcher
// lists here, which replaces the old tombstone-flag + full-watch-rebuild
// protocol in reduceDB.
func (s *Solver) garbageCollect() {
	old := s.ar.data
	to := make([]uint32, 0, len(old)-s.ar.wasted+16)
	move := func(c cref) cref {
		if old[c]&hdrReloc != 0 {
			return cref(old[c+1])
		}
		n := 1 + int(old[c]>>hdrSizeShift)
		if old[c]&hdrLearnt != 0 {
			n += learntExtra
		}
		nc := cref(len(to))
		to = append(to, old[c:c+cref(n)]...)
		old[c] |= hdrReloc
		old[c+1] = uint32(nc)
		return nc
	}
	keep := s.clauses[:0]
	newMark := 0
	for i, c := range s.clauses {
		if old[c]&hdrDeleted == 0 {
			if i < s.simpMark {
				newMark++
			}
			keep = append(keep, move(c))
		}
	}
	s.clauses = keep
	if s.simpMark >= 0 {
		s.simpMark = newMark
	}
	keepL := s.learnts[:0]
	for _, c := range s.learnts {
		if old[c]&hdrDeleted == 0 {
			keepL = append(keepL, move(c))
		}
	}
	s.learnts = keepL
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != crefUndef {
			if old[r]&hdrDeleted != 0 {
				// A root-level reason whose clause was since removed
				// (vivification propagations); root reasons are never
				// dereferenced, so drop the edge instead of keeping the
				// dead clause alive.
				s.reason[l.Var()] = crefUndef
				continue
			}
			s.reason[l.Var()] = move(r)
		}
	}
	for i := range s.watches {
		ws := s.watches[i][:0]
		for _, w := range s.watches[i] {
			if old[w.cref]&hdrDeleted != 0 {
				continue
			}
			w.cref = move(w.cref)
			ws = append(ws, w)
		}
		s.watches[i] = ws
	}
	s.ar.data = to
	s.ar.wasted = 0
	s.stats.GCs++
}
