package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// MetricSnapshot is the sink-facing view of one metric.
type MetricSnapshot struct {
	Name string
	// Kind is "counter", "gauge" or "histogram".
	Kind string
	// Value is the counter total or last gauge value.
	Value float64
	// Count/Sum/Min/Max summarize histogram observations.
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Counter is a monotonically increasing metric. A nil *Counter is valid
// and inert.
type Counter struct {
	name string
	v    atomic.Int64
}

// Counter returns the named counter, creating it on first use. Disabled
// tracers return nil (whose methods are no-ops).
func (t *Tracer) Counter(name string) *Counter {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.counters == nil {
		t.counters = make(map[string]*Counter)
	}
	c := t.counters[name]
	if c == nil {
		c = &Counter{name: name}
		t.counters[name] = c
	}
	return c
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric. A nil *Gauge is valid and inert.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Gauge returns the named gauge, creating it on first use.
func (t *Tracer) Gauge(name string) *Gauge {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.gauges == nil {
		t.gauges = make(map[string]*Gauge)
	}
	g := t.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		t.gauges[name] = g
	}
	return g
}

// Set records the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram summarizes a stream of observations (count, sum, min, max).
// A nil *Histogram is valid and inert.
type Histogram struct {
	name string
	mu   sync.Mutex
	n    int64
	sum  float64
	min  float64
	max  float64
}

// Histogram returns the named histogram, creating it on first use.
func (t *Tracer) Histogram(name string) *Histogram {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.hists == nil {
		t.hists = make(map[string]*Histogram)
	}
	h := t.hists[name]
	if h == nil {
		h = &Histogram{name: name}
		t.hists[name] = h
	}
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.mu.Unlock()
}

// Metrics snapshots every registered metric, sorted by name.
func (t *Tracer) Metrics() []MetricSnapshot {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []MetricSnapshot
	for name, c := range t.counters {
		out = append(out, MetricSnapshot{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range t.gauges {
		out = append(out, MetricSnapshot{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range t.hists {
		h.mu.Lock()
		out = append(out, MetricSnapshot{
			Name: name, Kind: "histogram",
			Count: h.n, Sum: h.sum, Min: h.min, Max: h.max,
		})
		h.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
