package core

import (
	"math/rand"

	"obfuslock/internal/aig"
)

// Rule indices for blendBudget.applied, matching the paper's numbering:
// (2) AND decomposition, (3) XOR propagation, (4) majority self-duality,
// (5a) complement hoisting, (5b) AND-side elimination, plus the plain
// AND-structure XOR fallback when both budgets are exhausted.
const (
	ruleAnd = iota
	ruleXor
	ruleMaj
	ruleCompl
	ruleElim
	ruleFallback
	numRules
)

// blendBudget tracks the remaining rule applications during structural
// reshaping and elimination.
type blendBudget struct {
	reshape int // applications of rules (2)-(4): decompose the L side
	elim    int // applications of rule (5)-style C-side elimination
	rng     *rand.Rand
	// protect lists critical variables (root of C's protected cone, root
	// of L) that must never be referenced by a fallback XOR: rules keep
	// firing on them even with exhausted budgets, so the critical nodes
	// are guaranteed to be decomposed away.
	protect map[uint32]bool
	// applied counts rule applications per kind, reported on the
	// lock.blend span.
	applied [numRules]int
}

func (b *blendBudget) spendReshape(t aig.Lit) bool {
	if b.reshape > 0 {
		b.reshape--
		return true
	}
	return b.protect[t.Var()]
}

func (b *blendBudget) spendElim(f aig.Lit) bool {
	if b.elim > 0 {
		b.elim--
		return true
	}
	return b.protect[f.Var()]
}

// xorBlend computes a literal equivalent to f XOR t while decomposing,
// propagating and eliminating the XOR through the structures of both
// operands — the paper's rewrite rules:
//
//	(2) f ⊕ ab      = (f ⊕ a) ⊕ a¬b
//	(3) f ⊕ (a ⊕ b) = (f ⊕ a) ⊕ b
//	(4) f ⊕ <abc>   = <(f⊕a)(f⊕b)(f⊕c)>        (majority is self-dual)
//	(5a) f = ¬f0:    f ⊕ t = ¬(f0 ⊕ t)
//	(5b) f = f0·f1:  f ⊕ t = (f0 ⊕ t)·f1 ∨ t·¬f1
//
// Rule (5c) of the paper — absorption of a¬b terms into existing nodes —
// falls out of structural hashing: when the residual term already exists
// in the network it is reused rather than recreated. Which side is
// decomposed first is randomized per call, diversifying the netlist
// across seeds (the paper's "fully randomized locking patterns"). When
// both budgets are exhausted the remaining XOR is built from AND nodes
// (no native XOR trace); protected variables never reach the fallback.
func xorBlend(g *aig.AIG, f, t aig.Lit, b *blendBudget) aig.Lit {
	// Cheap exits first: constants and equal/complementary operands.
	if t.IsConst() {
		return f.NotIf(t == aig.ConstTrue)
	}
	if f.IsConst() {
		return t.NotIf(f == aig.ConstTrue)
	}
	if f == t {
		return aig.ConstFalse
	}
	if f == t.Not() {
		return aig.ConstTrue
	}

	if b.rng.Intn(3) == 0 {
		if l, ok := blendF(g, f, t, b); ok {
			return l
		}
		if l, ok := blendT(g, f, t, b); ok {
			return l
		}
	} else {
		if l, ok := blendT(g, f, t, b); ok {
			return l
		}
		if l, ok := blendF(g, f, t, b); ok {
			return l
		}
	}

	// Budgets exhausted (or input operands): plain AND-structure XOR.
	b.applied[ruleFallback]++
	return g.And(g.And(f, t.Not()).Not(), g.And(f.Not(), t).Not()).Not()
}

// blendT decomposes the locking side t with rules (2)-(4).
func blendT(g *aig.AIG, f, t aig.Lit, b *blendBudget) (aig.Lit, bool) {
	if g.Op(t.Var()) == aig.OpInput || !b.spendReshape(t) {
		return 0, false
	}
	if t.IsCompl() {
		// ¬t decomposes through rule (5a) mirrored on the t side.
		b.applied[ruleCompl]++
		return xorBlend(g, f, t.Not(), b).Not(), true
	}
	fan := g.Fanins(t.Var())
	switch g.Op(t.Var()) {
	case aig.OpAnd:
		b.applied[ruleAnd]++
		inner := xorBlend(g, f, fan[0], b)
		residual := g.And(fan[0], fan[1].Not())
		return xorBlend(g, inner, residual, b), true
	case aig.OpXor:
		b.applied[ruleXor]++
		inner := xorBlend(g, f, fan[0], b)
		return xorBlend(g, inner, fan[1], b), true
	case aig.OpMaj:
		b.applied[ruleMaj]++
		return g.Maj(
			xorBlend(g, f, fan[0], b),
			xorBlend(g, f, fan[1], b),
			xorBlend(g, f, fan[2], b),
		), true
	}
	return 0, false
}

// blendF eliminates through the original side f with rule (5).
func blendF(g *aig.AIG, f, t aig.Lit, b *blendBudget) (aig.Lit, bool) {
	if g.Op(f.Var()) == aig.OpInput || !b.spendElim(f) {
		return 0, false
	}
	if f.IsCompl() {
		b.applied[ruleCompl]++
		return xorBlend(g, f.Not(), t, b).Not(), true // (5a)
	}
	fan := g.Fanins(f.Var())
	switch g.Op(f.Var()) {
	case aig.OpAnd:
		b.applied[ruleElim]++
		// (5b): pick which conjunct to descend into for diversity.
		f0, f1 := fan[0], fan[1]
		if b.rng.Intn(2) == 1 {
			f0, f1 = f1, f0
		}
		left := g.And(xorBlend(g, f0, t, b), f1)
		right := g.And(t, f1.Not())
		return g.Or(left, right), true
	case aig.OpXor:
		// f = fa ⊕ fb: f ⊕ t = fa ⊕ (fb ⊕ t).
		b.applied[ruleXor]++
		inner := xorBlend(g, fan[1], t, b)
		return xorBlend(g, fan[0], inner, b), true
	case aig.OpMaj:
		b.applied[ruleMaj]++
		return g.Maj(
			xorBlend(g, fan[0], t, b),
			xorBlend(g, fan[1], t, b),
			xorBlend(g, fan[2], t, b),
		), true
	}
	return 0, false
}
