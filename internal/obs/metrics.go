package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// MetricSnapshot is the sink-facing view of one metric.
type MetricSnapshot struct {
	Name string
	// Kind is "counter", "gauge" or "histogram".
	Kind string
	// Value is the counter total or last gauge value.
	Value float64
	// Count/Sum/Min/Max summarize histogram observations.
	Count int64
	Sum   float64
	Min   float64
	Max   float64
	// P50/P90/P99 are quantile estimates interpolated from the
	// histogram's log-2 buckets (zero for counters and gauges).
	P50 float64
	P90 float64
	P99 float64
}

// Counter is a monotonically increasing metric. A nil *Counter is valid
// and inert.
type Counter struct {
	name string
	v    atomic.Int64
}

// Counter returns the named counter, creating it on first use. Disabled
// tracers return nil (whose methods are no-ops).
func (t *Tracer) Counter(name string) *Counter {
	if !t.Enabled() {
		return nil
	}
	return t.reg.Counter(name)
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric. A nil *Gauge is valid and inert.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Gauge returns the named gauge, creating it on first use.
func (t *Tracer) Gauge(name string) *Gauge {
	if !t.Enabled() {
		return nil
	}
	return t.reg.Gauge(name)
}

// Set records the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add shifts the gauge by delta (lock-free CAS loop); useful for
// level-style gauges such as a worker pool's queue depth.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count of a Histogram: bucket 0 holds
// observations <= 0, bucket i >= 1 holds [2^(i-1), 2^i - 1]. 64 buckets
// cover the whole non-negative int64 range, so the layout never resizes
// and the record path never branches on configuration.
const histBuckets = 64

// Histogram summarizes a stream of integer observations (typically
// microsecond latencies, depths, or per-step counts) in fixed log-2
// buckets. All updates are lock-free atomics: Record never allocates and
// never takes a lock, so it is safe on solver hot paths at any
// concurrency. A nil *Histogram is valid and inert.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 until first Record
	max     atomic.Int64 // math.MinInt64 until first Record
	buckets [histBuckets]atomic.Int64
}

func newHistogram(name string) *Histogram {
	h := &Histogram{name: name}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Histogram returns the named histogram, creating it on first use.
func (t *Tracer) Histogram(name string) *Histogram {
	if !t.Enabled() {
		return nil
	}
	return t.reg.Histogram(name)
}

// bucketOf maps an observation to its log-2 bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Record adds one observation. It is the zero-alloc, lock-free hot path.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// RecordDuration records d in microseconds, the repository's canonical
// latency unit (matching the *_us metric naming and JSONL dur_us).
func (h *Histogram) RecordDuration(d time.Duration) {
	h.Record(int64(d / time.Microsecond))
}

// Observe records a float observation by rounding to the nearest
// integer. Prefer Record/RecordDuration; Observe exists for callers with
// naturally float-valued inputs.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.Record(int64(math.Round(v)))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the log-2 bucket holding the q-th observation,
// clamped to the observed min/max. With no observations it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.snapshot().quantile(q)
}

// histSnap is a consistent-enough copy of the histogram's atomics; each
// field is loaded atomically, so a snapshot taken mid-Record may be off
// by the in-flight observation but is never torn.
type histSnap struct {
	count, sum, min, max int64
	buckets              [histBuckets]int64
}

func (h *Histogram) snapshot() histSnap {
	var s histSnap
	s.count = h.count.Load()
	s.sum = h.sum.Load()
	s.min = h.min.Load()
	s.max = h.max.Load()
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}

// bucketBounds returns the inclusive value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, math.MaxInt64
	}
	return lo, int64(1)<<i - 1
}

func (s histSnap) quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	rank := int64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		n := s.buckets[i]
		if n == 0 {
			continue
		}
		if seen+n < rank {
			seen += n
			continue
		}
		lo, hi := bucketBounds(i)
		// Linear interpolation within the bucket by intra-bucket rank.
		frac := float64(rank-seen-1) / float64(n)
		v := float64(lo) + frac*float64(hi-lo)
		// Clamp to the observed range: the first and last buckets are
		// partially filled by definition.
		if v < float64(s.min) {
			v = float64(s.min)
		}
		if v > float64(s.max) {
			v = float64(s.max)
		}
		return v
	}
	return float64(s.max)
}

// metricSnapshot renders the histogram as a MetricSnapshot.
func (h *Histogram) metricSnapshot() MetricSnapshot {
	s := h.snapshot()
	ms := MetricSnapshot{Name: h.name, Kind: "histogram", Count: s.count, Sum: float64(s.sum)}
	if s.count > 0 {
		ms.Min = float64(s.min)
		ms.Max = float64(s.max)
		ms.P50 = s.quantile(0.50)
		ms.P90 = s.quantile(0.90)
		ms.P99 = s.quantile(0.99)
	}
	return ms
}

// Metrics snapshots every registered metric, sorted by name.
func (t *Tracer) Metrics() []MetricSnapshot {
	if !t.Enabled() {
		return nil
	}
	return t.reg.Snapshot()
}
