// Package core implements ObfusLock itself: a logic-locking framework that
// simultaneously achieves SAT-attack resilience (through input permutation
// encryption of a highly skewed locking circuit), structural-attack
// resilience (through reshaping and elimination rewrites that remove the
// critical node), and locking efficiency (small keys, low overhead,
// seconds of runtime).
//
// The double-flip architecture follows Fig. 2(b) of the paper: the shipped
// netlist computes C(x) ⊕ L(x) ⊕ L*(x ⊕ k), where L is a highly skewed
// single-output function built from nodes of C, the obfuscated unit
// C ⊕ L is blended by the rewrite rules (2)-(5), and the restoring unit
// L*(x ⊕ k) carries key-controlled input permutation with randomized,
// hidden bubble polarities. With the correct key the two L terms cancel.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"obfuslock/internal/aig"
	"obfuslock/internal/cec"
	"obfuslock/internal/locking"
	"obfuslock/internal/memo"
	"obfuslock/internal/obs"
	"obfuslock/internal/rewrite"
	"obfuslock/internal/simp"
	"obfuslock/internal/skew"
)

// criticalSurvives checks whether any node of the wrong-key-bound netlist
// computes the given spec function of the original inputs.
func criticalSurvives(ctx context.Context, l *locking.Locked, specG *aig.AIG, spec aig.Lit, tr *obs.Tracer, so simp.Options, cache *memo.Cache) bool {
	wrong := make([]bool, l.KeyBits)
	same := true
	for i, b := range l.Key {
		if b != wrong[i] {
			same = false
			break
		}
	}
	if same && l.KeyBits > 0 {
		wrong[0] = !wrong[0]
	}
	bound := l.ApplyKey(wrong)
	fopt := cec.DefaultFindOptions()
	fopt.Trace = tr
	fopt.Simp = so
	fopt.Cache = cache
	_, found := cec.FindEquivalentNode(ctx, bound, specG, spec, fopt)
	return found
}

// Options configures ObfusLock.
type Options struct {
	// TargetSkewBits is the desired skewness of the locking circuit
	// (paper notation: -20.0 bits of skewness means 2^-20).
	TargetSkewBits float64
	// Seed drives every randomized choice; equal seeds reproduce equal
	// locks.
	Seed int64
	// ProtectedOutput selects the output to double-flip (-1: the output
	// with the deepest cone).
	ProtectedOutput int
	// ReshapeApplications budgets rules (2)-(4).
	ReshapeApplications int
	// ElimApplications budgets rule (5)-style eliminations.
	ElimApplications int
	// FinalRewrite runs a randomized functional-rewriting pass over the
	// whole encrypted netlist to erase residual traces.
	FinalRewrite bool
	// SubCircuit enables cut-based sub-circuit locking.
	SubCircuit bool
	// SubCircuitMinCut is the minimum cut width (0: derived from target).
	SubCircuitMinCut int
	// MaxSupport bounds the key length (0: derived from target).
	MaxSupport int
	// AllowDirect permits whole-circuit input permutation encryption when
	// the original outputs are already skewed enough.
	AllowDirect bool
	// DisableObfuscation skips structural reshaping/elimination and the
	// final rewrite, leaving the bare double-flip structure with an
	// explicit XOR critical node. Insecure against structural analysis —
	// exists only as the "before transformation" baseline of Fig. 4.
	DisableObfuscation bool
	// Trace receives spans/events for every lock phase (skewness
	// assessment, L-construction with per-attachment gain events,
	// permutation encryption, blending with per-rule counts, assembly,
	// functional rewrite, CEC verification). A nil tracer costs nothing.
	// Tracing never influences randomized choices: equal seeds produce
	// equal locks with or without it.
	Trace *obs.Tracer
	// Simp controls CNF preprocessing in every SAT-backed step of the
	// lock (witness samplers, model counting, CEC checks). The zero
	// value enables it; simp.Off() disables (the CLIs' -simp=false).
	// Like tracing, it never influences randomized choices.
	Simp simp.Options
	// Cache memoizes the lock's SAT-backed sub-queries (skewness splitting
	// estimates, witness pools, reachability counts, CEC scans, dead-key-bit
	// miters) in a content-addressed store. Nil disables. Caching never
	// changes results: a warm cache replays exactly what a cold run computes.
	Cache *memo.Cache
}

// DefaultOptions targets 20 bits of skewness. Rule budgets keep the
// overhead a few percent on benchmark-scale circuits; raise them (or
// re-run with a larger seed sweep) for extra structural diversity.
func DefaultOptions() Options {
	return Options{
		TargetSkewBits:      20,
		ProtectedOutput:     -1,
		ReshapeApplications: 16,
		ElimApplications:    32,
		FinalRewrite:        true,
		AllowDirect:         true,
	}
}

// Report summarizes a lock.
type Report struct {
	// Mode is "direct", "double-flip" or "sub-circuit".
	Mode string
	// KeyBits is the key length.
	KeyBits int
	// SkewBits is the verified skewness of the locking circuit (or the
	// assessed circuit skewness in direct mode).
	SkewBits float64
	// LockingNodes is the size of L's cone.
	LockingNodes int
	// Attachments counts accepted operator attachments while building L.
	Attachments int
	// ProtectedOutput is the double-flipped output index (-1 in direct mode).
	ProtectedOutput int
	// CutWidth is the sub-circuit cut size (sub-circuit mode only).
	CutWidth int
	// CutLog2Reach is the approximate log2 reachable patterns on the cut.
	CutLog2Reach float64
	// EffectiveBits is the honest security floor min(s, l−s), where s is
	// the skewness and l the key length: a SAT attack needs roughly 2^s
	// queries to hit the locking circuit's on-set, but once hit, only
	// 2^(l−s) keys survive, so both sides must be large. Small circuits
	// cannot push this high — the paper's b09/b10 remark.
	EffectiveBits float64
	// OrigNodes / EncNodes are AIG sizes before and after locking.
	OrigNodes int
	EncNodes  int
	// Runtime of the whole lock.
	Runtime time.Duration
}

// Result carries the locked circuit and its report.
type Result struct {
	Locked *locking.Locked
	Report Report
	// LockingFunction is a reference circuit over the original inputs
	// computing the locking circuit L (single output), available in
	// double-flip and sub-circuit modes. Analyses use it to check that no
	// node equivalent to L survives in the shipped netlist.
	LockingFunction *aig.AIG
}

// Lock encrypts the circuit with ObfusLock. Cancelling ctx aborts the
// lock between phases (and inside its SAT-backed checks) with an error.
func Lock(ctx context.Context, c *aig.AIG, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	sp := opt.Trace.Span("lock",
		obs.Str("circuit", c.Name),
		obs.Float("target_skew_bits", opt.TargetSkewBits),
		obs.Int("seed", opt.Seed),
		obs.Int("nodes", int64(c.NumNodes())))
	res, err := lock(ctx, c, opt, sp, start)
	if err != nil {
		sp.End(obs.Str("error", err.Error()))
		return nil, err
	}
	sp.End(
		obs.Str("mode", res.Report.Mode),
		obs.Int("key_bits", int64(res.Report.KeyBits)),
		obs.Float("skew_bits", res.Report.SkewBits),
		obs.Int("enc_nodes", int64(res.Report.EncNodes)),
		obs.Dur("runtime", res.Report.Runtime))
	// One observation per locked circuit: across a sweep this is the
	// lock-time distribution behind the paper's Table I column.
	opt.Trace.Histogram(MetricLockLatency).RecordDuration(res.Report.Runtime)
	return res, nil
}

// MetricLockLatency is the per-circuit end-to-end lock latency
// histogram (microseconds).
const MetricLockLatency = "lock.total_us"

func lock(ctx context.Context, c *aig.AIG, opt Options, sp *obs.Span, start time.Time) (*Result, error) {
	if c.NumOutputs() == 0 {
		return nil, fmt.Errorf("core: circuit has no outputs")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: lock cancelled: %w", err)
	}
	if opt.TargetSkewBits <= 0 {
		opt.TargetSkewBits = 20
	}
	if opt.ReshapeApplications <= 0 {
		opt.ReshapeApplications = 16
	}
	if opt.ElimApplications <= 0 {
		opt.ElimApplications = 32
	}

	// Step 1: assess the skewness of the original circuit. If every
	// output is already past the threshold, input permutation encryption
	// applies directly (Fig. 1, left branch).
	if opt.AllowDirect && !opt.SubCircuit {
		asp := sp.Span("lock.assess_skew")
		bits, ok := assessCircuitSkewness(c, opt)
		asp.End(obs.Float("bits", bits), obs.Bool("meaningful", ok),
			obs.Bool("direct", ok && bits >= opt.TargetSkewBits))
		if ok && bits >= opt.TargetSkewBits {
			res, err := lockDirect(c, opt, sp)
			if err == nil {
				res.Report.SkewBits = bits
				res.Report.Runtime = time.Since(start)
			}
			return res, err
		}
	}

	var (
		res *Result
		err error
	)
	if opt.SubCircuit {
		res, err = lockSubCircuit(ctx, c, opt, sp)
	} else {
		res, err = lockDoubleFlip(ctx, c, opt, sp)
	}
	if err != nil {
		return nil, err
	}
	res.Report.Runtime = time.Since(start)
	return res, nil
}

// assessCircuitSkewness estimates the combined output skewness: the sum of
// h over all outputs must stay below 2^(m - target). Returns the bits of
// the summed h-fraction and whether the estimate is meaningful.
func assessCircuitSkewness(c *aig.AIG, opt Options) (float64, bool) {
	if c.NumInputs() == 0 {
		return 0, false
	}
	// Cheap Monte-Carlo screen: any output near balance disqualifies
	// immediately (the common case).
	v := skew.NodeSkewness(c, 64, opt.Seed)
	var hFrac float64
	for _, po := range c.Outputs() {
		b := v[po.Var()]
		if b < opt.TargetSkewBits {
			// Refine with splitting only when the screen is borderline.
			if b < opt.TargetSkewBits/2 {
				return b, true
			}
			so := skew.DefaultSplittingOptions()
			so.Seed = opt.Seed
			so.Simp = opt.Simp
			so.Cache = opt.Cache
			b = skew.SplittingBits(c, po, so)
			if b < opt.TargetSkewBits {
				return b, true
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		hFrac += math.Pow(2, -b)
	}
	if hFrac == 0 {
		return math.Inf(1), true
	}
	return -math.Log2(hFrac), true
}

// lockDirect applies whole-circuit input permutation encryption:
// C_enc(x, k) = C*(x ⊕ k) with hidden random bubbles; k* = b.
func lockDirect(c *aig.AIG, opt Options, sp *obs.Span) (*Result, error) {
	m := c.NumInputs()
	psp := sp.Span("lock.permute")
	cb, bubbles := rewrite.InsertBubbles(c, opt.Seed)
	cb = rewrite.HideInverters(cb)
	if opt.FinalRewrite {
		cb = rewrite.FunctionalRewrite(cb, rewrite.ObfuscationOptions(opt.Seed))
	}
	psp.End(obs.Int("key_bits", int64(m)))
	enc := aig.New()
	enc.Name = c.Name + "_obfuslock"
	xs := make([]aig.Lit, m)
	for i := 0; i < m; i++ {
		xs[i] = enc.AddInput(c.InputName(i))
	}
	ks := make([]aig.Lit, m)
	for i := 0; i < m; i++ {
		ks[i] = enc.AddInput(locking.KeyName(i))
	}
	piMap := make([]aig.Lit, m)
	for i := 0; i < m; i++ {
		piMap[i] = enc.Xor(xs[i], ks[i])
	}
	outs := enc.Import(cb, piMap)
	for i, o := range outs {
		enc.AddOutput(o, c.OutputName(i))
	}
	l := &locking.Locked{
		Scheme:    "obfuslock",
		Enc:       enc,
		NumInputs: m,
		KeyBits:   m,
		Key:       bubbles,
	}
	return &Result{
		Locked: l,
		Report: Report{
			Mode:            "direct",
			KeyBits:         m,
			ProtectedOutput: -1,
			OrigNodes:       c.NumNodes(),
			EncNodes:        enc.NumNodes(),
		},
	}, nil
}

// pickProtectedOutput returns the output with the deepest logic cone.
func pickProtectedOutput(c *aig.AIG) int {
	lv, _ := c.Levels()
	best, bestLv := 0, -1
	for i, po := range c.Outputs() {
		if l := lv[po.Var()]; l > bestLv {
			best, bestLv = i, l
		}
	}
	return best
}

// lockDoubleFlip runs the main ObfusLock pipeline on the whole circuit.
func lockDoubleFlip(ctx context.Context, c *aig.AIG, opt Options, sp *obs.Span) (*Result, error) {
	po := opt.ProtectedOutput
	if po < 0 {
		po = pickProtectedOutput(c)
	}
	if po >= c.NumOutputs() {
		return nil, fmt.Errorf("core: protected output %d out of range", po)
	}

	// Build L inside a working copy of C so it reuses C's nodes. The
	// construction is randomized and can stall on an unlucky seed
	// (correlated candidate pools); retry with fresh seeds before giving
	// up.
	var (
		work *aig.AIG
		lc   *lockingCircuit
		err  error
	)
	bsp := sp.Span("lock.build_l", obs.Int("protected_output", int64(po)))
	for attempt := int64(0); attempt < 3; attempt++ {
		work = c.Copy()
		bopt := defaultBuildOptions(opt.TargetSkewBits, opt.Seed+7919*attempt)
		bopt.Simp = opt.Simp
		bopt.Cache = opt.Cache
		bopt.MaxSupport = opt.MaxSupport
		if bopt.MaxSupport == 0 {
			bopt.MaxSupport = int(2.5*opt.TargetSkewBits) + 8
		}
		bopt.Span = bsp
		lc, err = buildLockingCircuit(work, bopt)
		if err == nil {
			break
		}
		bsp.Event("retry", obs.Int("attempt", attempt+1), obs.Str("error", err.Error()))
	}
	if err != nil {
		bsp.End(obs.Str("error", err.Error()))
		return nil, err
	}
	bsp.End(
		obs.Float("skew_bits", lc.SkewBits),
		obs.Int("attachments", int64(lc.Attachments)),
		obs.Int("support", int64(len(lc.Support))))

	// Extract the restoring unit BEFORE blending mutates the cone.
	psp := sp.Span("lock.permute")
	lcone, sup := work.ExtractCone(lc.Root)
	keyBits := len(sup)
	lb, bubbles := rewrite.InsertBubbles(lcone, opt.Seed+1)
	lb = rewrite.HideInverters(lb)
	lb = rewrite.FunctionalRewrite(lb, rewrite.ObfuscationOptions(opt.Seed+2))
	psp.End(obs.Int("key_bits", int64(keyBits)), obs.Int("l_nodes", int64(lcone.NumNodes())))

	m := c.NumInputs()

	// Critical-function specs over the full input space, used to confirm
	// elimination after every netlist transformation (the paper's CEC
	// check that no critical node survives).
	specF := c.Output(po)
	specLG := aig.New()
	specPIs := make([]aig.Lit, m)
	for i := 0; i < m; i++ {
		specPIs[i] = specLG.AddInput(c.InputName(i))
	}
	lMap := make([]aig.Lit, keyBits)
	for i, pos := range sup {
		lMap[i] = specPIs[pos]
	}
	specL := specLG.ImportCone(lcone, lMap, []aig.Lit{lcone.Output(0)})[0]
	specLG.AddOutput(specL, "L")

	mk := func(g *aig.AIG) *locking.Locked {
		return &locking.Locked{
			Scheme: "obfuslock", Enc: g,
			NumInputs: m, KeyBits: keyBits, Key: bubbles,
		}
	}
	clean := func(g *aig.AIG) bool {
		csp := sp.Span("lock.cec")
		lk := mk(g)
		ok := !criticalSurvives(ctx, lk, c, specF, opt.Trace, opt.Simp, opt.Cache) && !criticalSurvives(ctx, lk, specLG, specL, opt.Trace, opt.Simp, opt.Cache)
		csp.End(obs.Bool("clean", ok))
		return ok
	}

	// Blend, assemble and verify elimination. L is built from nodes of C,
	// so rule applications can occasionally cancel semantically and leave
	// a node equivalent to a critical function; the construction is fully
	// randomized, so retrying with a fresh seed (and a growing rule
	// budget) produces a different netlist until the CEC check is clean.
	var encC *aig.AIG
	reshape, elim := opt.ReshapeApplications, opt.ElimApplications
	const blendAttempts = 6
	for attempt := int64(0); attempt < blendAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: lock cancelled: %w", err)
		}
		wa := work.Copy()
		var blended aig.Lit
		blendSp := sp.Span("lock.blend",
			obs.Int("attempt", attempt),
			obs.Int("reshape_budget", int64(reshape)),
			obs.Int("elim_budget", int64(elim)))
		if opt.DisableObfuscation {
			blended = wa.Xor(wa.Output(po), lc.Root)
			blendSp.End(obs.Bool("disabled", true))
		} else {
			budget := &blendBudget{
				reshape: reshape,
				elim:    elim,
				rng:     rand.New(rand.NewSource(opt.Seed + 3 + 101*attempt)),
				protect: map[uint32]bool{
					wa.Output(po).Var(): true,
					lc.Root.Var():       true,
				},
			}
			blended = xorBlend(wa, wa.Output(po), lc.Root, budget)
			blendSp.End(
				obs.Int("rule2", int64(budget.applied[ruleAnd])),
				obs.Int("rule3", int64(budget.applied[ruleXor])),
				obs.Int("rule4", int64(budget.applied[ruleMaj])),
				obs.Int("rule5a", int64(budget.applied[ruleCompl])),
				obs.Int("rule5b", int64(budget.applied[ruleElim])),
				obs.Int("fallback_xor", int64(budget.applied[ruleFallback])))
		}
		wa.SetOutput(po, blended)

		// Assemble the encrypted netlist: x inputs, then key inputs.
		asp := sp.Span("lock.assemble")
		enc := aig.New()
		enc.Name = c.Name + "_obfuslock"
		xs := make([]aig.Lit, m)
		for i := 0; i < m; i++ {
			xs[i] = enc.AddInput(c.InputName(i))
		}
		ks := make([]aig.Lit, keyBits)
		for i := range ks {
			ks[i] = enc.AddInput(locking.KeyName(i))
		}
		outs := enc.Import(wa, xs)
		// Restoring unit: L*(x_S ⊕ k).
		piMapL := make([]aig.Lit, keyBits)
		for i, pos := range sup {
			piMapL[i] = enc.Xor(xs[pos], ks[i])
		}
		restore := enc.ImportCone(lb, piMapL, []aig.Lit{lb.Output(0)})[0]
		final := enc.And(enc.And(outs[po], restore.Not()).Not(), enc.And(outs[po].Not(), restore).Not()).Not()
		outs[po] = final
		for i, o := range outs {
			enc.AddOutput(o, c.OutputName(i))
		}
		cand := enc.Cleanup()
		asp.End(obs.Int("nodes", int64(cand.NumNodes())))
		if opt.DisableObfuscation {
			encC = cand
			break
		}
		if opt.FinalRewrite {
			rsp := sp.Span("lock.rewrite")
			rw := rewrite.FunctionalRewrite(cand, rewrite.ObfuscationOptions(opt.Seed+4+attempt))
			rw = rewrite.Balance(rw)
			rsp.End(obs.Int("nodes", int64(rw.NumNodes())))
			if clean(rw) {
				encC = rw
				break
			}
		}
		bal := rewrite.Balance(cand)
		if clean(bal) {
			encC = bal
			break
		}
		reshape += reshape / 2
		elim += elim / 2
		if attempt == blendAttempts-1 {
			// Keep the last candidate rather than failing the lock; the
			// security tests surface this case.
			encC = cand
		}
	}

	l := mk(encC)
	return &Result{
		Locked:          l,
		LockingFunction: specLG,
		Report: Report{
			Mode:            "double-flip",
			KeyBits:         keyBits,
			SkewBits:        lc.SkewBits,
			LockingNodes:    lcone.NumNodes(),
			Attachments:     lc.Attachments,
			ProtectedOutput: po,
			EffectiveBits:   math.Min(lc.SkewBits, float64(keyBits)-lc.SkewBits),
			OrigNodes:       c.NumNodes(),
			EncNodes:        encC.NumNodes(),
		},
	}, nil
}
