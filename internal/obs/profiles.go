package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins CPU profiling to <prefix>.cpu.pprof and returns
// a stop function that finishes the CPU profile and writes
// <prefix>.heap.pprof (live-object heap profile after a GC) and
// <prefix>.allocs.pprof (cumulative allocation profile) — the three
// artifacts the -pprof flag produces. The stop function reports the
// first error encountered; partial output is left in place.
func StartProfiles(prefix string) (stop func() error, err error) {
	cpu, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		firstErr := cpu.Close()
		// A GC before the heap profile makes "inuse" reflect live objects,
		// not garbage awaiting collection.
		runtime.GC()
		for _, p := range []struct{ name, suffix string }{
			{"heap", ".heap.pprof"},
			{"allocs", ".allocs.pprof"},
		} {
			f, err := os.Create(prefix + p.suffix)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if err := pprof.Lookup(p.name).WriteTo(f, 0); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("write %s profile: %w", p.name, err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}
