// Package bench reads and writes gate-level netlists in the ISCAS .bench
// format, the interchange format used by the logic-locking literature.
//
// Supported gate types: AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF(F), MAJ
// (an extension emitted for extended AIGs), and constants via the
// vdd/gnd convention (lines like "x = vdd").
// Multi-input gates are accepted and decomposed into balanced trees.
package bench

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"obfuslock/internal/aig"
)

// Read parses a .bench netlist into an extended AIG.
func Read(r io.Reader) (*aig.AIG, error) {
	type gate struct {
		name string
		typ  string
		ins  []string
		line int
	}
	var (
		inputs  []string
		outputs []string
		gates   []gate
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(inputs) == 0 && len(outputs) == 0 && len(gates) == 0 &&
			(line[0] == '{' || line[0] == '[') {
			// A stray BENCH_*.json benchmark-record artifact (they sit next
			// to the netlists in scripted sweeps) — name the mixup instead
			// of reporting a baffling parse error on every line.
			return nil, fmt.Errorf("bench: line %d: input is JSON, not a .bench netlist (a BENCH_*.json benchmark record? use ReadRecords)", lineNo)
		}
		lower := strings.ToLower(line)
		switch {
		case strings.HasPrefix(lower, "input("):
			name, err := parseDecl(line)
			if err != nil {
				return nil, fmt.Errorf("bench: line %d: %v", lineNo, err)
			}
			inputs = append(inputs, name)
		case strings.HasPrefix(lower, "output("):
			name, err := parseDecl(line)
			if err != nil {
				return nil, fmt.Errorf("bench: line %d: %v", lineNo, err)
			}
			outputs = append(outputs, name)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("bench: line %d: expected assignment: %q", lineNo, line)
			}
			name := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			rl := strings.ToLower(rhs)
			if rl == "vdd" || rl == "gnd" {
				gates = append(gates, gate{name: name, typ: rl, line: lineNo})
				continue
			}
			open := strings.Index(rhs, "(")
			close_ := strings.LastIndex(rhs, ")")
			if open < 0 || close_ < open {
				return nil, fmt.Errorf("bench: line %d: malformed gate: %q", lineNo, line)
			}
			typ := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			var ins []string
			for _, f := range strings.Split(rhs[open+1:close_], ",") {
				f = strings.TrimSpace(f)
				if f != "" {
					ins = append(ins, f)
				}
			}
			gates = append(gates, gate{name: name, typ: typ, ins: ins, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("bench: line %d exceeds the 1 MiB line buffer (split long gate definitions across lines): %v", lineNo+1, err)
		}
		return nil, fmt.Errorf("bench: %v", err)
	}

	g := aig.New()
	lits := make(map[string]aig.Lit, len(inputs)+len(gates))
	for _, name := range inputs {
		if _, dup := lits[name]; dup {
			return nil, fmt.Errorf("bench: duplicate input %q", name)
		}
		lits[name] = g.AddInput(name)
	}

	// Gates may appear out of topological order; resolve iteratively.
	remaining := gates
	for len(remaining) > 0 {
		progress := false
		var deferred []gate
	gateLoop:
		for _, gt := range remaining {
			if _, dup := lits[gt.name]; dup {
				return nil, fmt.Errorf("bench: line %d: duplicate signal %q", gt.line, gt.name)
			}
			ins := make([]aig.Lit, len(gt.ins))
			for i, n := range gt.ins {
				l, ok := lits[n]
				if !ok {
					deferred = append(deferred, gt)
					continue gateLoop
				}
				ins[i] = l
			}
			l, err := buildGate(g, gt.typ, ins)
			if err != nil {
				return nil, fmt.Errorf("bench: line %d: %v", gt.line, err)
			}
			lits[gt.name] = l
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("bench: unresolved signals (cycle or missing driver), e.g. %q", deferred[0].name)
		}
		remaining = deferred
	}

	for _, name := range outputs {
		l, ok := lits[name]
		if !ok {
			return nil, fmt.Errorf("bench: output %q has no driver", name)
		}
		g.AddOutput(l, name)
	}
	return g, nil
}

func parseDecl(line string) (string, error) {
	open := strings.Index(line, "(")
	close_ := strings.LastIndex(line, ")")
	if open < 0 || close_ < open {
		return "", fmt.Errorf("malformed declaration: %q", line)
	}
	name := strings.TrimSpace(line[open+1 : close_])
	if name == "" {
		return "", fmt.Errorf("empty name in %q", line)
	}
	return name, nil
}

func buildGate(g *aig.AIG, typ string, ins []aig.Lit) (aig.Lit, error) {
	need := func(n int) error {
		if len(ins) < n {
			return fmt.Errorf("%s needs at least %d inputs, got %d", typ, n, len(ins))
		}
		return nil
	}
	switch typ {
	case "gnd":
		return aig.ConstFalse, nil
	case "vdd":
		return aig.ConstTrue, nil
	case "NOT":
		if err := need(1); err != nil {
			return 0, err
		}
		return ins[0].Not(), nil
	case "BUF", "BUFF":
		if err := need(1); err != nil {
			return 0, err
		}
		return ins[0], nil
	case "AND":
		if err := need(1); err != nil {
			return 0, err
		}
		return g.AndN(ins...), nil
	case "NAND":
		if err := need(1); err != nil {
			return 0, err
		}
		return g.AndN(ins...).Not(), nil
	case "OR":
		if err := need(1); err != nil {
			return 0, err
		}
		return g.OrN(ins...), nil
	case "NOR":
		if err := need(1); err != nil {
			return 0, err
		}
		return g.OrN(ins...).Not(), nil
	case "XOR":
		if err := need(2); err != nil {
			return 0, err
		}
		acc := ins[0]
		for _, l := range ins[1:] {
			acc = g.Xor(acc, l)
		}
		return acc, nil
	case "XNOR":
		if err := need(2); err != nil {
			return 0, err
		}
		acc := ins[0]
		for _, l := range ins[1:] {
			acc = g.Xor(acc, l)
		}
		return acc.Not(), nil
	case "MAJ":
		if len(ins) != 3 {
			return 0, fmt.Errorf("MAJ needs exactly 3 inputs, got %d", len(ins))
		}
		return g.Maj(ins[0], ins[1], ins[2]), nil
	}
	return 0, fmt.Errorf("unknown gate type %q", typ)
}

// Write emits the graph in .bench format. Internal nodes are named n<var>;
// complemented edges materialize NOT gates on demand.
func Write(w io.Writer, g *aig.AIG) error {
	bw := bufio.NewWriter(w)
	if g.Name != "" {
		fmt.Fprintf(bw, "# %s\n", g.Name)
	}
	st := g.Stats()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates\n", st.Inputs, st.Outputs, st.Nodes())

	names := make(map[uint32]string, g.MaxVar()+1)
	for i := 0; i < g.NumInputs(); i++ {
		name := g.InputName(i)
		names[g.InputVar(i)] = name
		fmt.Fprintf(bw, "INPUT(%s)\n", name)
	}
	for i := 0; i < g.NumOutputs(); i++ {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", g.OutputName(i))
	}

	needConst := false
	tfi := g.TFI(g.Outputs()...)
	for v := range tfi {
		for _, f := range g.Fanins(v) {
			if f.IsConst() {
				needConst = true
			}
		}
	}
	for _, po := range g.Outputs() {
		if po.IsConst() {
			needConst = true
		}
	}
	if needConst {
		fmt.Fprintf(bw, "const0 = gnd\n")
		names[0] = "const0"
	}

	// Emit NOT gates lazily: invName returns a name for a literal.
	inverted := make(map[uint32]string)
	litName := func(l aig.Lit) string {
		base := names[l.Var()]
		if !l.IsCompl() {
			return base
		}
		if n, ok := inverted[l.Var()]; ok {
			return n
		}
		n := base + "_n"
		fmt.Fprintf(bw, "%s = NOT(%s)\n", n, base)
		inverted[l.Var()] = n
		return n
	}

	// Stable topological emission: variables ascend in topo order already.
	vars := make([]uint32, 0, len(tfi))
	for v := range tfi {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	for _, v := range vars {
		op := g.Op(v)
		if op == aig.OpInput || op == aig.OpConst {
			continue
		}
		names[v] = fmt.Sprintf("n%d", v)
		fan := g.Fanins(v)
		switch op {
		case aig.OpAnd:
			fmt.Fprintf(bw, "n%d = AND(%s, %s)\n", v, litName(fan[0]), litName(fan[1]))
		case aig.OpXor:
			fmt.Fprintf(bw, "n%d = XOR(%s, %s)\n", v, litName(fan[0]), litName(fan[1]))
		case aig.OpMaj:
			fmt.Fprintf(bw, "n%d = MAJ(%s, %s, %s)\n", v,
				litName(fan[0]), litName(fan[1]), litName(fan[2]))
		}
	}

	// Primary outputs: emit BUF/NOT so the declared names exist.
	for i := 0; i < g.NumOutputs(); i++ {
		po := g.Output(i)
		oname := g.OutputName(i)
		if po.IsConst() {
			if po == aig.ConstTrue {
				fmt.Fprintf(bw, "%s = NOT(const0)\n", oname)
			} else {
				fmt.Fprintf(bw, "%s = BUF(const0)\n", oname)
			}
			continue
		}
		driver := names[po.Var()]
		if driver == oname && !po.IsCompl() {
			continue // an input directly feeding an identically-named output
		}
		if po.IsCompl() {
			fmt.Fprintf(bw, "%s = NOT(%s)\n", oname, driver)
		} else {
			fmt.Fprintf(bw, "%s = BUF(%s)\n", oname, driver)
		}
	}
	return bw.Flush()
}
