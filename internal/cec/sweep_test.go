package cec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"obfuslock/internal/aig"
	"obfuslock/internal/obs"
	"obfuslock/internal/rewrite"
)

// randAIG builds a seeded random graph with some deliberate functional
// duplicates, so sweeping has real merging work.
func randAIG(seed int64, nin, nnodes int) *aig.AIG {
	rng := rand.New(rand.NewSource(seed))
	g := aig.New()
	var lits []aig.Lit
	for i := 0; i < nin; i++ {
		lits = append(lits, g.AddInput(fmt.Sprintf("x%d", i)))
	}
	pick := func() aig.Lit {
		return lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
	}
	for i := 0; i < nnodes; i++ {
		a, b := pick(), pick()
		var l aig.Lit
		switch rng.Intn(4) {
		case 0:
			l = g.And(a, b)
		case 1:
			l = g.Xor(a, b)
		case 2:
			l = g.Maj(a, b, pick())
		case 3:
			l = g.XorAnd(a, b)
			lits = append(lits, g.Xor(a, b))
		}
		lits = append(lits, l)
	}
	for i := 0; i < 2; i++ {
		g.AddOutput(pick(), fmt.Sprintf("y%d", i))
	}
	return g
}

// mutate returns a copy of g with a random single change that may or may
// not alter the function (an internal fanin flip can land in a don't-care
// cone); the cross-check below only asserts that the swept and plain
// checkers agree, whatever the ground truth.
func mutate(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	ng := g.Copy()
	o := rng.Intn(ng.NumOutputs())
	if rng.Intn(2) == 0 {
		ng.SetOutput(o, ng.Output(o).Not())
		return ng
	}
	// Re-point an output at another node of the graph.
	v := uint32(1 + rng.Intn(int(ng.MaxVar())))
	ng.SetOutput(o, aig.MkLit(v, rng.Intn(2) == 1))
	return ng
}

// TestSweptCheckCrossCheck runs ~100 seeded random pairs — equivalent by
// rewriting, and mutated likely-inequivalent — through both the plain
// miter path and the swept path and requires identical verdicts.
func TestSweptCheckCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		a := randAIG(int64(i), 5, 30)
		var b *aig.AIG
		equivalentByConstruction := i%2 == 0
		if equivalentByConstruction {
			ropt := rewrite.ObfuscationOptions(int64(i) + 1000)
			b = rewrite.Balance(rewrite.FunctionalRewrite(a, ropt))
		} else {
			b = mutate(a, rng)
		}

		plainOpt := DefaultOptions()
		plain, err := Check(context.Background(), a, b, plainOpt)
		if err != nil {
			t.Fatalf("pair %d: plain check: %v", i, err)
		}
		sweptOpt := SweepOptions()
		swept, err := Check(context.Background(), a, b, sweptOpt)
		if err != nil {
			t.Fatalf("pair %d: swept check: %v", i, err)
		}
		if !plain.Decided || !swept.Decided {
			t.Fatalf("pair %d: undecided without a budget (plain=%v swept=%v)",
				i, plain.Decided, swept.Decided)
		}
		if plain.Equivalent != swept.Equivalent {
			t.Fatalf("pair %d: plain says %v, swept says %v",
				i, plain.Equivalent, swept.Equivalent)
		}
		if equivalentByConstruction && !swept.Equivalent {
			t.Fatalf("pair %d: rewritten pair reported inequivalent", i)
		}
		if !swept.Equivalent {
			// The counterexample must actually distinguish the circuits.
			va, vb := a.Eval(swept.Counterexample), b.Eval(swept.Counterexample)
			differs := false
			for o := range va {
				if va[o] != vb[o] {
					differs = true
				}
			}
			if !differs {
				t.Fatalf("pair %d: swept counterexample does not distinguish", i)
			}
		}
	}
}

// TestCheckTraced pins the tracing satellite: Check emits a cec.check span
// so CEC time shows up in -trace/-progress like every other phase.
func TestCheckTraced(t *testing.T) {
	col := obs.NewCollector()
	tr := obs.New(col)
	a := randAIG(1, 5, 30)
	ropt := rewrite.ObfuscationOptions(2)
	b := rewrite.FunctionalRewrite(a, ropt)
	for _, sweep := range []bool{false, true} {
		opt := DefaultOptions()
		if sweep {
			opt = SweepOptions()
		}
		opt.Trace = tr
		if _, err := Check(context.Background(), a, b, opt); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := col.SpanNamed("cec.check"); !ok {
		t.Fatal("no cec.check span recorded")
	}
	if _, ok := col.SpanNamed("fraig.sweep"); !ok {
		t.Fatal("swept check did not record a fraig.sweep span")
	}

	// FindEquivalentNode must trace too.
	specG := aig.New()
	sa := specG.AddInput("a")
	sb := specG.AddInput("b")
	spec := specG.And(sa, sb)
	specG.AddOutput(spec, "f")
	g := aig.New()
	ga := g.AddInput("a")
	gb := g.AddInput("b")
	g.AddOutput(g.Or(ga, gb), "z")
	fopt := DefaultFindOptions()
	fopt.Trace = tr
	FindEquivalentNode(context.Background(), g, specG, spec, fopt)
	if _, ok := col.SpanNamed("cec.find_node"); !ok {
		t.Fatal("no cec.find_node span recorded")
	}
}
