// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in pure Go, in the MiniSat/glucose lineage: clauses packed
// into a flat arena (see arena.go), two-literal watching with blockers,
// first-UIP conflict analysis with basic clause minimization, VSIDS
// variable ordering, phase saving, Luby restarts, LBD-tiered
// learnt-clause management and chronological backtracking for
// long-distance backjumps.
//
// The solver is incremental: clauses can be added between calls to Solve,
// and Solve accepts assumption literals. Conflict budgets, a stop
// callback and context cancellation (SetContext) support the bounded
// attack loops used elsewhere in the repository.
package sat

import (
	"context"
	"fmt"
	"sort"

	"obfuslock/internal/obs"
)

// Lit is a literal: variable v as 2*v (positive) or 2*v+1 (negated).
type Lit int32

// LitUndef is the absent literal.
const LitUndef Lit = -1

// MkLit builds a literal from a variable index (0-based) and a sign.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

const (
	lUndef int8 = 0
	lTrue  int8 = 1
	lFalse int8 = -1
)

// chronoLim is the backjump distance beyond which the solver backtracks
// chronologically (one level) instead of jumping to the assertion
// level, keeping the still-valid trail segment alive (Nadel & Ryvchin,
// SAT'18 — the conservative assign-at-current-level variant).
const chronoLim = 32

type watcher struct {
	cref    cref
	blocker Lit
}

// Stats counts solver work.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	// Learnt counts clauses learnt from conflict analysis.
	Learnt int64
	// Deleted counts learnt clauses removed by database reduction.
	Deleted int64
	// Reductions counts learnt-database reduction passes.
	Reductions int64
	// GCs counts arena compaction passes (garbage collection of the
	// flat clause store).
	GCs int64
	// Chrono counts chronological backtracks: conflicts where the
	// solver retreated one level instead of backjumping far.
	Chrono int64
}

// Sub returns the per-interval delta s - prev (all counters).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Decisions:    s.Decisions - prev.Decisions,
		Propagations: s.Propagations - prev.Propagations,
		Conflicts:    s.Conflicts - prev.Conflicts,
		Restarts:     s.Restarts - prev.Restarts,
		Learnt:       s.Learnt - prev.Learnt,
		Deleted:      s.Deleted - prev.Deleted,
		Reductions:   s.Reductions - prev.Reductions,
		GCs:          s.GCs - prev.GCs,
		Chrono:       s.Chrono - prev.Chrono,
	}
}

// Add returns the counter-wise sum s + o (aggregating the work of
// several solvers into one report).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Decisions:    s.Decisions + o.Decisions,
		Propagations: s.Propagations + o.Propagations,
		Conflicts:    s.Conflicts + o.Conflicts,
		Restarts:     s.Restarts + o.Restarts,
		Learnt:       s.Learnt + o.Learnt,
		Deleted:      s.Deleted + o.Deleted,
		Reductions:   s.Reductions + o.Reductions,
		GCs:          s.GCs + o.GCs,
		Chrono:       s.Chrono + o.Chrono,
	}
}

// Progress is the snapshot handed to the SetProgress callback.
type Progress struct {
	Stats
	// Vars and Clauses describe the live formula.
	Vars    int
	Clauses int
}

// Solver is a CDCL SAT solver. Create with New.
type Solver struct {
	ar       arena
	clauses  []cref // problem clauses, creation order (may contain deleted until GC)
	learnts  []cref // learnt clauses (may contain deleted until reduce/GC)
	numLocal int    // live learnts in tierLocal, reduceDB's trigger
	watches  [][]watcher

	assign   []int8
	level    []int32
	reason   []cref
	polarity []bool // saved phases
	activity []float64
	seen     []bool

	trail    []Lit
	trailLim []int
	qhead    int

	order  varHeap
	varInc float64
	claInc float64

	rndPol   bool
	rndState uint64

	ok        bool
	numVars   int
	model     []int8
	stats     Stats
	limited   bool
	budget    int64 // remaining conflicts when limited
	exhausted bool
	stopFn    func() bool
	stopTick  int
	ctxDone   <-chan struct{}

	// reduceBase is the learnt-database reduction trigger floor
	// (reduceDB fires when numLocal exceeds reduceBase +
	// Conflicts/10). Portfolio helpers diversify it; New sets the
	// default.
	reduceBase int
	// parShare, when non-nil, receives every learnt clause at learn
	// time — the export side of the parallel portfolio (parallel.go).
	// Nil outside SolveParallel, keeping the sequential search loop at
	// one predictable branch per conflict.
	parShare *shareBuf
	// parStats accumulates the work of retired portfolio helpers; it is
	// kept out of stats so the parent's own counters (which feed search
	// heuristics like the reduceDB trigger) never depend on the worker
	// count. Stats() reports the sum.
	parStats Stats

	progressFn    func(Progress)
	progressEvery int64
	progressNext  int64

	// Reused hot-path scratch: the learnt-clause builder and seen-list
	// of analyze, AddClause's normalization buffer and reduceDB's sort
	// slice. Keeping these on the solver makes the conflict loop
	// allocation-free in steady state (pinned by the alloc guard test).
	learntBuf  []Lit
	clearBuf   []int32
	addBuf     []Lit
	redScratch []cref

	// Telemetry histograms (see telemetry.go); nil when detached, which
	// must keep the search loop alloc-free and branch-cheap.
	hConflictDepth *obs.Histogram
	hLBD           *obs.Histogram
	hPropsPerDec   *obs.Histogram
	lastDecProps   int64
	lbdStamp       []uint32
	lbdGen         uint32
	// Portfolio telemetry (parallel.go): epochs run, clauses exchanged,
	// helper wins and per-epoch latency. Attached together with the
	// histograms above; all nil when detached.
	cParEpochs *obs.Counter
	cParShared *obs.Counter
	cParWinner *obs.Counter
	hParEpoch  *obs.Histogram

	// Simplification state (see simp.go). frozen vars are exempt from
	// variable elimination; elim vars have been resolved away and their
	// model values are reconstructed from elimCl after each Sat answer.
	// sp is the pooled simplifier scratch, reused across Simplify calls.
	frozen []bool
	elim   []bool
	// elimCl/elimLits/elimEnds are the flattened store of clauses
	// removed by variable elimination (see elimRecord); modelDirty marks
	// a fresh model whose eliminated vars have not been reconstructed.
	elimCl     []elimRecord
	elimLits   []Lit
	elimEnds   []int32
	modelDirty bool
	simpStats  SimpStats
	sp         *simplifier
	// Incremental-simplification watermarks: problem clauses at index >=
	// simpMark and root assignments at trail index >= simpTrailMark are
	// new since the last Simplify finished. simpMark < 0 means no pass
	// has run yet (the next one is a full pass). garbageCollect keeps
	// simpMark consistent when it filters the clause index.
	simpMark      int
	simpTrailMark int
}

// defaultReduceBase is the stock learnt-database reduction floor.
const defaultReduceBase = 2000

// New returns an empty solver.
func New() *Solver {
	s := &Solver{ok: true, varInc: 1, claInc: 1, simpMark: -1, reduceBase: defaultReduceBase}
	s.order.s = s
	return s
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return s.numVars }

// NumClauses returns the number of live problem clauses plus learnts.
func (s *Solver) NumClauses() int {
	n := 0
	for _, c := range s.clauses {
		if !s.ar.deleted(c) {
			n++
		}
	}
	for _, c := range s.learnts {
		if !s.ar.deleted(c) {
			n++
		}
	}
	return n
}

// Stats returns work counters accumulated across all Solve calls,
// including the effort spent by SolveParallel portfolio helpers.
func (s *Solver) Stats() Stats { return s.stats.Add(s.parStats) }

// SetBudget limits the total number of conflicts available to subsequent
// Solve calls; Solve returns Unknown when it is exhausted. A negative value
// removes the limit.
func (s *Solver) SetBudget(conflicts int64) {
	s.limited = conflicts >= 0
	s.budget = conflicts
	s.exhausted = false
}

// SetStop installs a callback polled periodically during search; when it
// returns true, Solve returns Unknown.
func (s *Solver) SetStop(f func() bool) { s.stopFn = f }

// SetContext installs a cancellation context. Its Done channel is polled
// at the same cadence as the SetStop callback; once the context is
// cancelled, Solve returns Unknown. A nil context removes the hook.
func (s *Solver) SetContext(ctx context.Context) {
	if ctx == nil {
		s.ctxDone = nil
		return
	}
	s.ctxDone = ctx.Done()
}

// cancelled is the non-blocking context poll.
func (s *Solver) cancelled() bool {
	if s.ctxDone == nil {
		return false
	}
	select {
	case <-s.ctxDone:
		return true
	default:
		return false
	}
}

// SetProgress installs a callback invoked every `every` conflicts
// (cumulative across Solve calls) with a snapshot of the solver
// counters. A nil callback or non-positive interval disables reporting.
// The callback runs on the solving goroutine; keep it cheap.
func (s *Solver) SetProgress(every int64, f func(Progress)) {
	if f == nil || every <= 0 {
		s.progressFn = nil
		s.progressEvery = 0
		return
	}
	s.progressFn = f
	s.progressEvery = every
	s.progressNext = s.stats.Conflicts + every
}

// SetRandomPolarity makes branching decisions use pseudo-random phases
// derived from seed instead of saved phases. Model samplers use this to
// diversify the completions of partially pinned assignments.
func (s *Solver) SetRandomPolarity(seed int64) {
	s.rndPol = true
	s.rndState = uint64(seed)*2685821657736338717 + 1
}

// NewVar creates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := s.numVars
	s.numVars++
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, crefUndef)
	s.polarity = append(s.polarity, true) // default phase: false (negated)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.frozen = append(s.frozen, false)
	s.elim = append(s.elim, false)
	s.order.insert(v)
	return v
}

func (s *Solver) valueLit(l Lit) int8 {
	a := s.assign[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Neg() {
		return -a
	}
	return a
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause. It returns false when the formula is already
// known to be unsatisfiable (now or earlier). Literals falsified at level 0
// are removed; tautologies are dropped.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	// Sort-free simplification: dedupe, drop false, detect taut/sat.
	out := s.addBuf[:0]
	for _, l := range lits {
		if l.Var() >= s.numVars {
			panic("sat: literal references unknown variable")
		}
		if s.elim[l.Var()] {
			panic("sat: clause references eliminated variable (freeze it before Simplify)")
		}
		switch s.valueLit(l) {
		case lTrue:
			return true // satisfied at level 0
		case lFalse:
			continue
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	s.addBuf = out[:0]
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], crefUndef)
		if s.propagate() != crefUndef {
			s.ok = false
			return false
		}
		return true
	}
	s.attachProblem(out)
	return true
}

// attachProblem packs a problem clause into the arena and watches it.
func (s *Solver) attachProblem(lits []Lit) cref {
	c := s.ar.alloc(lits, false, 0)
	s.clauses = append(s.clauses, c)
	s.watch(lits[0], c, lits[1])
	s.watch(lits[1], c, lits[0])
	return c
}

// attachLearnt packs a learnt clause into the arena, tiers it by LBD
// and watches it.
func (s *Solver) attachLearnt(lits []Lit, lbd int) cref {
	c := s.ar.alloc(lits, true, lbd)
	s.learnts = append(s.learnts, c)
	if s.ar.tier(c) == tierLocal {
		s.numLocal++
	}
	s.watch(lits[0], c, lits[1])
	s.watch(lits[1], c, lits[0])
	return c
}

func (s *Solver) watch(l Lit, c cref, blocker Lit) {
	s.watches[l] = append(s.watches[l], watcher{c, blocker})
}

// deleteClause marks a clause dead in the arena, maintaining the learnt
// counters. Watcher entries are dropped lazily (propagate) or at the
// next GC; callers must never delete a locked (reason) clause.
func (s *Solver) deleteClause(c cref) {
	if s.ar.deleted(c) {
		return
	}
	if s.ar.learnt(c) {
		if s.ar.tier(c) == tierLocal {
			s.numLocal--
		}
		s.stats.Deleted++
	}
	s.ar.del(c)
}

// locked reports whether the clause is the reason of its first literal.
func (s *Solver) locked(c cref) bool {
	l := s.ar.litAt(c, 0)
	return s.reason[l.Var()] == c && s.valueLit(l) == lTrue
}

func (s *Solver) uncheckedEnqueue(l Lit, from cref) {
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the reference of a
// conflicting clause or crefUndef.
func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		falseLit := p.Not()
		ws := s.watches[falseLit]
		j := 0
	nextWatch:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.valueLit(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			if s.ar.deleted(w.cref) {
				continue // lazy watcher cleanup
			}
			lits := s.ar.lits(w.cref)
			if Lit(lits[0]) == falseLit {
				lits[0], lits[1] = lits[1], lits[0]
			}
			// Invariant now: lits[1] == falseLit.
			first := Lit(lits[0])
			if first != w.blocker && s.valueLit(first) == lTrue {
				ws[j] = watcher{w.cref, first}
				j++
				continue
			}
			for k := 2; k < len(lits); k++ {
				if s.valueLit(Lit(lits[k])) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.watch(Lit(lits[1]), w.cref, first)
					continue nextWatch
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{w.cref, first}
			j++
			if s.valueLit(first) == lFalse {
				// Conflict: copy the remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[falseLit] = ws[:j]
				s.qhead = len(s.trail)
				return w.cref
			}
			s.uncheckedEnqueue(first, w.cref)
		}
		s.watches[falseLit] = ws[:j]
	}
	return crefUndef
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assign[v] == lFalse
		s.assign[v] = lUndef
		s.reason[v] = crefUndef
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

// bumpLearnt is the per-antecedent upkeep of conflict analysis: bump
// the clause's activity, mark it used (tier2 retention signal), and
// re-evaluate its LBD against the current trail — a clause whose LBD
// improved is promoted toward core and escapes future reductions.
func (s *Solver) bumpLearnt(c cref) {
	act := s.ar.act(c) + float32(s.claInc)
	s.ar.setAct(c, act)
	if act > 1e20 {
		for _, ci := range s.learnts {
			if !s.ar.deleted(ci) {
				s.ar.setAct(ci, s.ar.act(ci)*1e-20)
			}
		}
		s.claInc *= 1e-20
	}
	s.ar.setUsed(c, true)
	if t := s.ar.tier(c); t != tierCore {
		nl := s.lbdOfClause(c)
		if nl < s.ar.lbd(c) {
			s.ar.setLBD(c, nl)
			if nt := tierFor(nl); nt > t {
				if t == tierLocal {
					s.numLocal--
				}
				s.ar.setTier(c, nt)
			}
		}
	}
}

// analyze computes a first-UIP learnt clause from a conflict, returning the
// clause (asserting literal first) and the backtrack level. The returned
// slice aliases the solver's reusable buffer; it is valid until the next
// analyze call.
func (s *Solver) analyze(confl cref) ([]Lit, int) {
	learnt := append(s.learntBuf[:0], LitUndef)
	toClear := s.clearBuf[:0]
	pathC := 0
	p := LitUndef
	index := len(s.trail) - 1

	for {
		if s.ar.learnt(confl) {
			s.bumpLearnt(confl)
		}
		lits := s.ar.lits(confl)
		start := 0
		if p != LitUndef {
			start = 1
		}
		for _, w := range lits[start:] {
			q := Lit(w)
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.bumpVar(v)
				s.seen[v] = true
				toClear = append(toClear, int32(v))
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for !s.seen[s.trail[index].Var()] {
			index--
		}
		p = s.trail[index]
		index--
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = false
		pathC--
		if pathC <= 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Basic clause minimization: drop literals implied by the rest.
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		if s.reason[v] == crefUndef || !s.litRedundant(learnt[i]) {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}

	for _, v := range toClear {
		s.seen[v] = false
	}
	s.learntBuf = learnt
	s.clearBuf = toClear[:0]
	return learnt, btLevel
}

// litRedundant implements the "basic" minimization test: a literal is
// redundant when every literal of its reason clause is either seen (already
// in the learnt clause) or assigned at level 0.
func (s *Solver) litRedundant(l Lit) bool {
	lits := s.ar.lits(s.reason[l.Var()])
	for _, w := range lits[1:] {
		v := Lit(w).Var()
		if !s.seen[v] && s.level[v] > 0 {
			return false
		}
	}
	return true
}

func (s *Solver) pickBranchLit() Lit {
	for !s.order.empty() {
		v := s.order.removeMin()
		if s.assign[v] == lUndef && !s.elim[v] {
			pol := s.polarity[v]
			if s.rndPol {
				s.rndState ^= s.rndState << 13
				s.rndState ^= s.rndState >> 7
				s.rndState ^= s.rndState << 17
				pol = s.rndState&1 == 1
			}
			return MkLit(v, pol)
		}
	}
	return LitUndef
}

// luby computes the Luby restart sequence element (1-based index):
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int64) int64 {
	x := i - 1
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x %= size
	}
	return int64(1) << uint(seq)
}

func (s *Solver) stopped() bool {
	if s.stopFn == nil && s.ctxDone == nil {
		return false
	}
	s.stopTick++
	if s.stopTick&63 != 0 {
		return false
	}
	if s.cancelled() {
		return true
	}
	return s.stopFn != nil && s.stopFn()
}

// search runs CDCL until a model is found, a conflict at root level proves
// UNSAT, or nConflicts conflicts pass (restart), whichever first.
func (s *Solver) search(nConflicts int64, assumps []Lit) Status {
	conflictC := int64(0)
	for {
		confl := s.propagate()
		if confl != crefUndef {
			s.stats.Conflicts++
			conflictC++
			if s.hConflictDepth != nil {
				s.hConflictDepth.Record(int64(s.decisionLevel()))
			}
			if s.progressFn != nil && s.stats.Conflicts >= s.progressNext {
				s.progressNext = s.stats.Conflicts + s.progressEvery
				s.progressFn(Progress{Stats: s.stats, Vars: s.numVars, Clauses: s.NumClauses()})
			}
			if s.limited {
				s.budget--
				if s.budget < 0 {
					s.exhausted = true
					return Unknown
				}
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			lbd := s.lbd(learnt)
			if s.hLBD != nil {
				s.hLBD.Record(int64(lbd))
			}
			// A backjump that would discard a long trail segment is
			// replaced by a single chronological step: the learnt clause
			// is still asserting at the previous level (its non-UIP
			// literals are false at or below the assertion level).
			if len(learnt) > 1 && s.decisionLevel()-btLevel > chronoLim {
				btLevel = s.decisionLevel() - 1
				s.stats.Chrono++
			}
			// Backtracking may pop assumptions; the decision loop below
			// re-places them, and an assumption found false there proves
			// UNSAT under assumptions.
			s.cancelUntil(btLevel)
			s.stats.Learnt++
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], crefUndef)
			} else {
				c := s.attachLearnt(learnt, lbd)
				s.uncheckedEnqueue(learnt[0], c)
			}
			if s.parShare != nil {
				s.parShare.add(learnt, lbd)
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			continue
		}
		if conflictC >= nConflicts {
			return Unknown // restart point
		}
		if s.stopped() {
			s.exhausted = true
			return Unknown
		}
		if s.numLocal > s.reduceBase+int(s.stats.Conflicts/10) {
			s.reduceDB()
		}
		// Place assumptions, then decide.
		next := LitUndef
		for s.decisionLevel() < len(assumps) {
			p := assumps[s.decisionLevel()]
			switch s.valueLit(p) {
			case lTrue:
				s.trailLim = append(s.trailLim, len(s.trail)) // dummy level
			case lFalse:
				return Unsat
			default:
				next = p
			}
			if next != LitUndef {
				break
			}
		}
		if next == LitUndef {
			next = s.pickBranchLit()
			if next == LitUndef {
				return Sat // all variables assigned
			}
			s.stats.Decisions++
			if s.hPropsPerDec != nil {
				s.hPropsPerDec.Record(s.stats.Propagations - s.lastDecProps)
				s.lastDecProps = s.stats.Propagations
			}
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, crefUndef)
	}
}

// reduceDB trims the learnt database by tier: core clauses (LBD <= 3)
// are permanent; tier2 clauses survive while conflict analysis keeps
// using them and are demoted to local otherwise; the local tier is
// halved, dropping high-LBD low-activity clauses first. Deleted clauses
// are only marked — watcher entries disappear lazily in propagate and
// the storage is reclaimed by the arena GC, replacing the old
// full-watch-list rebuild per reduction.
func (s *Solver) reduceDB() {
	s.stats.Reductions++
	locals := s.redScratch[:0]
	for _, c := range s.learnts {
		if s.ar.deleted(c) {
			continue
		}
		switch s.ar.tier(c) {
		case tierCore:
			continue
		case tierMid:
			if s.ar.used(c) {
				s.ar.setUsed(c, false)
				continue
			}
			s.ar.setTier(c, tierLocal)
			s.numLocal++
		}
		locals = append(locals, c)
	}
	// Worst-first: high LBD, then low activity, then youngest (full
	// tie-break keeps the pass deterministic).
	sort.Slice(locals, func(i, j int) bool {
		ci, cj := locals[i], locals[j]
		if li, lj := s.ar.lbd(ci), s.ar.lbd(cj); li != lj {
			return li > lj
		}
		if ai, aj := s.ar.act(ci), s.ar.act(cj); ai != aj {
			return ai < aj
		}
		return ci > cj
	})
	target := len(locals) / 2
	removed := 0
	for _, c := range locals {
		if removed >= target {
			break
		}
		if s.ar.size(c) <= 2 || s.locked(c) {
			continue
		}
		s.deleteClause(c)
		removed++
	}
	s.redScratch = locals[:0]
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if !s.ar.deleted(c) {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
	s.maybeGC()
}

// Solve runs the solver under the given assumptions. It returns Sat, Unsat,
// or Unknown when a budget/stop/context limit fires. After Sat, the model
// is available via ModelValue.
func (s *Solver) Solve(assumps ...Lit) Status {
	if !s.ok {
		return Unsat
	}
	for _, a := range assumps {
		if s.elim[a.Var()] {
			panic("sat: assumption over eliminated variable (freeze it before Simplify)")
		}
	}
	if s.cancelled() {
		s.exhausted = true
		return Unknown
	}
	s.cancelUntil(0)
	if s.propagate() != crefUndef {
		s.ok = false
		return Unsat
	}
	s.exhausted = false
	status := Unknown
	for round := int64(1); ; round++ {
		status = s.search(100*luby(round), assumps)
		if status != Unknown {
			break
		}
		if s.exhausted {
			break // budget spent or stop callback fired
		}
		if s.cancelled() {
			// The in-search poll is sampled (every 64 ticks), so a
			// context cancelled before or during a short round could
			// otherwise start another full round.
			s.exhausted = true
			break
		}
		s.stats.Restarts++
		s.cancelUntil(0)
	}
	if status == Sat {
		s.model = append(s.model[:0], s.assign...)
		// Unassigned vars (possible under assumption-satisfied prefixes)
		// default to false.
		for i, a := range s.model {
			if a == lUndef {
				s.model[i] = lFalse
			}
		}
		// Eliminated-variable reconstruction is deferred until a read
		// actually needs it: frozen variables (the only ones most
		// callers read) are never eliminated, so attack loops that poll
		// ModelValue on interface literals skip the replay entirely.
		s.modelDirty = len(s.elimCl) > 0
	}
	s.cancelUntil(0)
	return status
}

// ModelValue returns the value of a literal in the last satisfying model.
func (s *Solver) ModelValue(l Lit) bool {
	if s.modelDirty && s.elim[l.Var()] {
		s.extendModel()
		s.modelDirty = false
	}
	v := s.model[l.Var()] == lTrue
	if l.Neg() {
		return !v
	}
	return v
}

// Model returns the last satisfying assignment as a bool slice per variable.
func (s *Solver) Model() []bool {
	if s.modelDirty {
		s.extendModel()
		s.modelDirty = false
	}
	m := make([]bool, s.numVars)
	for i := range m {
		m[i] = i < len(s.model) && s.model[i] == lTrue
	}
	return m
}

// varHeap is a max-heap of variables ordered by activity.
type varHeap struct {
	s       *Solver
	heap    []int
	indices []int // var -> heap position, -1 if absent
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) inHeap(v int) bool {
	return v < len(h.indices) && h.indices[v] >= 0
}

func (h *varHeap) insert(v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.inHeap(v) {
		return
	}
	h.indices[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.percolateUp(h.indices[v])
}

func (h *varHeap) update(v int) {
	if h.inHeap(v) {
		h.percolateUp(h.indices[v])
	}
}

func (h *varHeap) removeMin() int {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.indices[last] = 0
		h.percolateDown(0)
	}
	return v
}

func (h *varHeap) less(a, b int) bool {
	return h.s.activity[a] > h.s.activity[b]
}

func (h *varHeap) percolateUp(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.indices[v] = i
}

func (h *varHeap) percolateDown(i int) {
	v := h.heap[i]
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(h.heap) {
			break
		}
		c := l
		if r < len(h.heap) && h.less(h.heap[r], h.heap[l]) {
			c = r
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.indices[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.indices[v] = i
}
