package rewrite

import (
	"context"
	"math/rand"
	"testing"

	"obfuslock/internal/aig"
	"obfuslock/internal/cec"
)

func randomGraph(rng *rand.Rand, nin, nnodes int) *aig.AIG {
	g := aig.New()
	lits := g.AddInputs(nin)
	for i := 0; i < nnodes; i++ {
		pick := func() aig.Lit {
			l := lits[rng.Intn(len(lits))]
			if rng.Intn(2) == 0 {
				l = l.Not()
			}
			return l
		}
		switch rng.Intn(5) {
		case 0, 1, 2:
			lits = append(lits, g.And(pick(), pick()))
		case 3:
			lits = append(lits, g.Xor(pick(), pick()))
		default:
			lits = append(lits, g.Maj(pick(), pick(), pick()))
		}
	}
	for i := 0; i < 2; i++ {
		g.AddOutput(lits[len(lits)-1-i], "")
	}
	return g
}

func mustEquivalent(t *testing.T, a, b *aig.AIG, label string) {
	t.Helper()
	r, err := cec.Check(context.Background(), a, b, cec.DefaultOptions())
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !r.Equivalent {
		t.Fatalf("%s: not equivalent (cex %v)", label, r.Counterexample)
	}
}

func TestCutEnumerationSound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 6, 40)
	cuts := EnumerateCuts(g, 4, 8)
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if g.Op(v) == aig.OpInput {
			continue
		}
		for _, cut := range cuts[v] {
			if len(cut.Leaves) > 4 {
				t.Fatalf("cut wider than k: %v", cut.Leaves)
			}
			tt, ok := CutTruth(g, v, cut.Leaves)
			if !ok {
				// Trivial or unreachable cut; the trivial cut {v} must work.
				if len(cut.Leaves) == 1 && cut.Leaves[0] == v {
					continue
				}
				t.Fatalf("CutTruth failed for cut %v of node %d", cut.Leaves, v)
			}
			// Validate the truth table against direct evaluation: build a
			// probe comparing v with the cover of tt over leaves.
			probe := g.Copy()
			leafLits := make([]aig.Lit, len(cut.Leaves))
			for i, lf := range cut.Leaves {
				leafLits[i] = aig.MkLit(lf, false)
			}
			rebuilt := BuildFromTruth(probe, tt, leafLits)
			eq, dec := cec.LitsEquivalent(context.Background(), probe, aig.MkLit(v, false), rebuilt, -1)
			if !dec || !eq {
				t.Fatalf("cut truth of node %d over %v mismatches", v, cut.Leaves)
			}
		}
	}
}

func TestBuildFromTruthBasics(t *testing.T) {
	g := aig.New()
	in := g.AddInputs(3)
	// XOR3 truth over inputs.
	tt := VarTruth(0) ^ VarTruth(1) ^ VarTruth(2)
	root := BuildFromTruth(g, tt, in)
	g.AddOutput(root, "f")
	for m := 0; m < 8; m++ {
		pat := []bool{m&1 == 1, m>>1&1 == 1, m>>2&1 == 1}
		want := pat[0] != pat[1] != pat[2]
		if got := g.Eval(pat)[0]; got != want {
			t.Fatalf("xor3 wrong at %d", m)
		}
	}
	if BuildFromTruth(g, 0, in) != aig.ConstFalse {
		t.Fatal("constant 0")
	}
	if BuildFromTruth(g, ^uint64(0), in) != aig.ConstTrue {
		t.Fatal("constant 1")
	}
}

func TestFunctionalRewriteEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 5+rng.Intn(4), 40+rng.Intn(60))
		rw := FunctionalRewrite(g, DefaultOptions())
		mustEquivalent(t, g, rw, "deterministic rewrite")
		if rw.NumNodes() > g.NumNodes()+2 {
			t.Fatalf("size-driven rewrite grew: %d -> %d", g.NumNodes(), rw.NumNodes())
		}
	}
}

func TestFunctionalRewriteRandomizedEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 7, 60)
	rw1 := FunctionalRewrite(g, ObfuscationOptions(1))
	rw2 := FunctionalRewrite(g, ObfuscationOptions(2))
	mustEquivalent(t, g, rw1, "randomized rewrite 1")
	mustEquivalent(t, g, rw2, "randomized rewrite 2")
}

func TestFunctionalRewriteReducesRedundancy(t *testing.T) {
	// A deliberately wasteful XOR built from muxes should shrink.
	g := aig.New()
	in := g.AddInputs(2)
	x := g.Mux(in[0], in[1].Not(), in[1])
	x2 := g.Mux(x, in[0], in[0].Not()) // == XNOR(x, in0)... more junk
	g.AddOutput(g.And(x, x2.Not()).Not(), "f")
	rw := FunctionalRewrite(g, DefaultOptions())
	mustEquivalent(t, g, rw, "cleanup rewrite")
	if rw.NumNodes() > g.NumNodes() {
		t.Fatalf("rewrite grew: %d -> %d", g.NumNodes(), rw.NumNodes())
	}
}

func TestUnbalanceEquivalentAndDeeper(t *testing.T) {
	// Balanced AND tree over 16 inputs: depth 4; unbalanced chain: 15.
	g := aig.New()
	in := g.AddInputs(16)
	g.AddOutput(g.AndN(in...), "f")
	ub := Unbalance(g)
	mustEquivalent(t, g, ub, "unbalance")
	if ub.Depth() <= g.Depth() {
		t.Fatalf("depth did not increase: %d -> %d", g.Depth(), ub.Depth())
	}
	if ub.Depth() != 15 {
		t.Fatalf("chain depth = %d, want 15", ub.Depth())
	}
}

func TestUnbalanceXorAndRandom(t *testing.T) {
	g := aig.New()
	in := g.AddInputs(8)
	acc := in[0]
	for _, l := range in[1:] {
		acc = g.Xor(acc, l)
	}
	g.AddOutput(acc.Not(), "parity")
	ub := Unbalance(g)
	mustEquivalent(t, g, ub, "unbalance parity")

	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		rg := randomGraph(rng, 6, 50)
		mustEquivalent(t, rg, Unbalance(rg), "unbalance random")
	}
}

func TestBubblesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := randomGraph(rng, 8, 40)
	bubbled, b := InsertBubbles(g, 33)
	// Applying the same bubbles again must cancel.
	double := ApplyBubbles(bubbled, b)
	mustEquivalent(t, g, double, "double bubble")
	// With a nonzero vector, the circuits differ somewhere (almost surely
	// for random logic); verify by checking evaluation under b.
	anySet := false
	for _, bit := range b {
		anySet = anySet || bit
	}
	if anySet {
		pat := make([]bool, g.NumInputs())
		flipped := make([]bool, len(pat))
		for i := range pat {
			pat[i] = rng.Intn(2) == 1
			flipped[i] = pat[i] != b[i]
		}
		og := g.Eval(flipped)
		bg := bubbled.Eval(pat)
		for i := range og {
			if og[i] != bg[i] {
				t.Fatal("bubbled circuit must compute g(x^b)")
			}
		}
	}
}

func TestHideInverters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 6, 40)
		bubbled, _ := InsertBubbles(g, int64(trial))
		hidden := HideInverters(bubbled)
		mustEquivalent(t, bubbled, hidden, "hide inverters")
		if n := CountPIInverterEdges(hidden); n != 0 {
			t.Fatalf("trial %d: %d PI inverter edges remain", trial, n)
		}
	}
}

func TestHideInvertersDoubleComplement(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.And(a.Not(), b.Not()), "nor")
	g.AddOutput(g.Maj(a.Not(), b.Not(), g.And(a, b)), "m")
	hidden := HideInverters(g)
	mustEquivalent(t, g, hidden, "double complement")
	if n := CountPIInverterEdges(hidden); n != 0 {
		t.Fatalf("%d PI inverter edges remain", n)
	}
}
