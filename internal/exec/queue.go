package exec

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Queue-admission errors returned by Queue.Submit. Callers translate
// them into their own backpressure vocabulary (the service layer maps
// ErrSaturated to HTTP 429 and ErrDraining to 503).
var (
	// ErrSaturated reports that the bounded backlog is full: the task was
	// rejected, not queued. Submit never blocks — fail-fast admission is
	// what lets a server answer "try again later" instead of stalling.
	ErrSaturated = errors.New("exec: queue saturated")
	// ErrDraining reports that the queue has stopped admitting work
	// because Drain was called.
	ErrDraining = errors.New("exec: queue draining")
)

// Queue is a long-lived bounded worker pool for a dynamic stream of
// tasks — the scheduler substrate of a daemon, where work arrives one
// request at a time and must be admission-controlled. It complements
// Collect, which runs a fixed task list and returns: a Queue runs until
// drained, never blocks the submitter, and applies backpressure by
// rejecting (ErrSaturated) once its backlog bound is reached.
//
// Determinism note: a Queue makes no ordering promises — tasks run as
// workers free up. Callers that need deterministic results make each
// task self-deterministic (seeded by content, not by arrival order),
// which is exactly the contract of the job runner built on top.
type Queue struct {
	mu       sync.Mutex
	tasks    chan func()
	draining bool
	inflight sync.WaitGroup // queued + running tasks
	workers  sync.WaitGroup
	pm       PoolMetrics
}

// NewQueue starts a pool of workers (resolved through Workers:
// non-positive means GOMAXPROCS) consuming a backlog bounded at depth
// tasks (minimum 1). The optional metrics record per-task latency,
// completions and the number of tasks currently executing; the zero
// PoolMetrics is free.
func NewQueue(workers, depth int, pm PoolMetrics) *Queue {
	if depth < 1 {
		depth = 1
	}
	q := &Queue{tasks: make(chan func(), depth), pm: pm}
	for w := 0; w < Workers(workers); w++ {
		q.workers.Add(1)
		go func() {
			defer q.workers.Done()
			for task := range q.tasks {
				task()
			}
		}()
	}
	return q
}

// Submit offers a task to the queue without blocking. It returns nil
// when the task was accepted (it will eventually run, even if Drain is
// called afterwards), ErrSaturated when the backlog is full, and
// ErrDraining once Drain has been called.
func (q *Queue) Submit(task func()) error {
	if task == nil {
		return nil
	}
	run := task
	if q.pm.enabled() {
		run = func() { q.pm.meter(task) }
	}
	wrapped := func() {
		defer q.inflight.Done()
		run()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return ErrDraining
	}
	select {
	case q.tasks <- wrapped:
		q.inflight.Add(1)
		return nil
	default:
		return ErrSaturated
	}
}

// Backlog reports how many accepted tasks are waiting for a worker.
func (q *Queue) Backlog() int { return len(q.tasks) }

// Draining reports whether Drain has been called.
func (q *Queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

// Drain stops admitting new tasks and waits until every already-accepted
// task has finished, or until ctx expires (the remaining tasks keep
// running — cancelling them is the caller's business, via the contexts
// the tasks were built over). Drain is idempotent and safe to call from
// several goroutines; every call waits for completion.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if !q.draining {
		q.draining = true
		close(q.tasks)
	}
	q.mu.Unlock()
	done := make(chan struct{})
	go func() {
		q.inflight.Wait()
		q.workers.Wait()
		close(done)
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// meter wraps one task execution with the pool metrics (shared with
// CollectMetered's instrumentation: same gauge/histogram/counter names).
func (pm PoolMetrics) meter(task func()) {
	pm.QueueDepth.Add(1)
	var t0 time.Time
	if pm.TaskLatency != nil {
		t0 = time.Now()
	}
	task()
	if pm.TaskLatency != nil {
		pm.TaskLatency.RecordDuration(time.Since(t0))
	}
	pm.Tasks.Inc()
	pm.QueueDepth.Add(-1)
}
