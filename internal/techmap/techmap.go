// Package techmap maps AIGs onto a standard-cell library and estimates
// area, power and delay — the PPA numbers behind Fig. 5 of the paper. The
// library mirrors the NanGate 45nm Open Cell Library's relative cell
// sizes; the flow stands in for the paper's Cadence Genus/Innovus runs.
// Absolute values are calibrated estimates; overhead *ratios* between an
// original and a locked netlist are the meaningful output.
package techmap

import (
	"fmt"
	"sort"

	"obfuslock/internal/aig"
	"obfuslock/internal/memo"
	"obfuslock/internal/sim"
)

// Cell describes one library cell.
type Cell struct {
	Name string
	// AreaUM2 is the cell area in square microns.
	AreaUM2 float64
	// DelayPS is a load-independent pin-to-pin delay estimate.
	DelayPS float64
	// LeakNW is the leakage power in nanowatts.
	LeakNW float64
	// InCapFF is the input capacitance per pin in femtofarads.
	InCapFF float64
}

// Library cells, NanGate-45nm-flavoured.
var (
	CellInv  = Cell{"INV_X1", 0.532, 10, 1.0, 1.0}
	CellAnd  = Cell{"AND2_X1", 1.064, 25, 2.0, 1.0}
	CellNand = Cell{"NAND2_X1", 0.798, 15, 1.5, 1.1}
	CellOr   = Cell{"OR2_X1", 1.064, 25, 2.0, 1.0}
	CellNor  = Cell{"NOR2_X1", 0.798, 18, 1.8, 1.1}
	CellXor  = Cell{"XOR2_X1", 1.596, 35, 3.5, 2.0}
	CellXnor = Cell{"XNOR2_X1", 1.862, 35, 3.8, 2.0}
	CellMaj  = Cell{"MAJ3_X1", 2.128, 40, 4.5, 1.3}
)

// Electrical constants for dynamic power: P = alpha * C * Vdd^2 * f.
const (
	vdd     = 1.1 // volts
	clockHz = 1e9 // 1 ns target clock, as in the paper's analysis
)

// Mapped is the result of technology mapping.
type Mapped struct {
	// CellCount per cell name.
	CellCount map[string]int
	// NumCells is the total instance count.
	NumCells int
	// cellOf assigns each logic variable its (polarity-chosen) cell.
	cellOf []*Cell
	// invOn marks variables that additionally drive an inverter.
	invOn []bool
	// outCompl marks variables whose chosen cell produces the complement
	// of the AIG node function (e.g. NAND instead of AND).
	outCompl []bool
	g        *aig.AIG
}

// Map covers the AIG with library cells. Each logic node becomes one
// 2-or-3-input cell; output polarity (AND/NAND, OR/NOR, XOR/XNOR) is
// chosen to minimize explicit inverters given how the node's fanouts use
// it, and remaining complemented uses share one inverter per net.
func Map(g *aig.AIG) *Mapped {
	posUse := make([]int, g.MaxVar()+1)
	negUse := make([]int, g.MaxVar()+1)
	note := func(l aig.Lit) {
		if l.IsCompl() {
			negUse[l.Var()]++
		} else {
			posUse[l.Var()]++
		}
	}
	for v := uint32(1); v <= g.MaxVar(); v++ {
		for _, f := range g.Fanins(v) {
			note(f)
		}
	}
	for _, po := range g.Outputs() {
		note(po)
	}

	m := &Mapped{
		CellCount: map[string]int{},
		cellOf:    make([]*Cell, g.MaxVar()+1),
		invOn:     make([]bool, g.MaxVar()+1),
		outCompl:  make([]bool, g.MaxVar()+1),
		g:         g,
	}
	addCell := func(c *Cell) {
		m.CellCount[c.Name]++
		m.NumCells++
	}
	for v := uint32(1); v <= g.MaxVar(); v++ {
		op := g.Op(v)
		if op == aig.OpInput {
			// Complemented PI uses need one inverter on the input net.
			if negUse[v] > 0 {
				m.invOn[v] = true
				addCell(&CellInv)
			}
			continue
		}
		var pos, neg *Cell
		switch op {
		case aig.OpAnd:
			pos, neg = &CellAnd, &CellNand
		case aig.OpXor:
			pos, neg = &CellXor, &CellXnor
		case aig.OpMaj:
			pos, neg = &CellMaj, nil
		default:
			continue
		}
		// Choose the polarity that avoids an inverter, or the cheaper
		// combination when both polarities are used.
		needPos := posUse[v] > 0
		needNeg := negUse[v] > 0
		switch {
		case needNeg && !needPos && neg != nil:
			m.cellOf[v] = neg
			m.outCompl[v] = true
			addCell(neg)
		case needNeg && needPos && neg != nil && neg.AreaUM2+CellInv.AreaUM2 < pos.AreaUM2+CellInv.AreaUM2:
			m.cellOf[v] = neg
			m.outCompl[v] = true
			m.invOn[v] = true
			addCell(neg)
			addCell(&CellInv)
		default:
			m.cellOf[v] = pos
			addCell(pos)
			if needNeg {
				m.invOn[v] = true
				addCell(&CellInv)
			}
		}
	}
	return m
}

// Report holds the PPA estimate of a mapped netlist.
type Report struct {
	// AreaUM2 is the summed cell area.
	AreaUM2 float64
	// NumCells is the instance count.
	NumCells int
	// LeakageUW is the summed leakage in microwatts.
	LeakageUW float64
	// DynamicUW is the switching power in microwatts at the target clock.
	DynamicUW float64
	// TotalUW is leakage + dynamic.
	TotalUW float64
	// CriticalPathPS is the longest register-to-register path estimate.
	CriticalPathPS float64
}

func (r Report) String() string {
	return fmt.Sprintf("area=%.1fum2 cells=%d power=%.2fuW delay=%.0fps",
		r.AreaUM2, r.NumCells, r.TotalUW, r.CriticalPathPS)
}

// Analyze maps the netlist and estimates PPA. Switching activity comes
// from words*64 random simulation patterns.
func Analyze(g *aig.AIG, words int, seed int64) Report {
	return AnalyzeWith(g, words, seed, nil)
}

// AnalyzeWith is Analyze with an optional content-addressed cache for the
// report (nil: compute). The report depends on concrete net ordering
// (float accumulation follows variable order), so the key uses the exact
// netlist hash, not the canonical fingerprint.
func AnalyzeWith(g *aig.AIG, words int, seed int64, cache *memo.Cache) Report {
	if !cache.Enabled() {
		return analyze(g, words, seed)
	}
	key := fmt.Sprintf("techmap.analyze|%016x|words=%d|seed=%d", g.StructuralHash(), words, seed)
	rep, err := memo.Do(cache, key, func() (Report, error) {
		return analyze(g, words, seed), nil
	})
	if err != nil {
		return analyze(g, words, seed)
	}
	return rep
}

func analyze(g *aig.AIG, words int, seed int64) Report {
	m := Map(g)
	rep := Report{NumCells: m.NumCells}

	// Area and leakage from instance counts, in sorted cell order so the
	// float accumulation is reproducible (map iteration order is not).
	names := make([]string, 0, len(m.CellCount))
	for name := range m.CellCount {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := m.CellCount[name]
		c := cellByName(name)
		rep.AreaUM2 += c.AreaUM2 * float64(n)
		rep.LeakageUW += c.LeakNW * float64(n) / 1000
	}

	// Dynamic power: per-net toggle rate times downstream input cap.
	if g.NumInputs() > 0 && words > 0 {
		v := sim.RunRandom(g, words, seed)
		loadFF := make([]float64, g.MaxVar()+1)
		for n := uint32(1); n <= g.MaxVar(); n++ {
			if c := m.cellOf[n]; c != nil {
				for _, f := range g.Fanins(n) {
					loadFF[f.Var()] += c.InCapFF
				}
			}
		}
		var dynW float64
		for n := uint32(1); n <= g.MaxVar(); n++ {
			alpha := v.ToggleFraction(n)
			capF := loadFF[n] * 1e-15
			extra := 0.0
			if m.invOn[n] {
				extra = CellInv.InCapFF * 1e-15
			}
			dynW += alpha * (capF + extra) * vdd * vdd * clockHz / 2
		}
		rep.DynamicUW = dynW * 1e6
	}
	rep.TotalUW = rep.LeakageUW + rep.DynamicUW

	// Delay: longest path with per-cell delays; a complemented fanout use
	// of a net adds the inverter delay on that edge.
	arrive := make([]float64, g.MaxVar()+1)
	for n := uint32(1); n <= g.MaxVar(); n++ {
		c := m.cellOf[n]
		if c == nil {
			continue
		}
		worst := 0.0
		for _, f := range g.Fanins(n) {
			a := arrive[f.Var()]
			if f.IsCompl() != m.outCompl[f.Var()] && !f.IsConst() {
				a += CellInv.DelayPS
			}
			if a > worst {
				worst = a
			}
		}
		arrive[n] = worst + c.DelayPS
	}
	for _, po := range g.Outputs() {
		a := arrive[po.Var()]
		if po.IsCompl() != m.outCompl[po.Var()] && !po.IsConst() {
			a += CellInv.DelayPS
		}
		if a > rep.CriticalPathPS {
			rep.CriticalPathPS = a
		}
	}
	return rep
}

func cellByName(name string) *Cell {
	switch name {
	case CellInv.Name:
		return &CellInv
	case CellAnd.Name:
		return &CellAnd
	case CellNand.Name:
		return &CellNand
	case CellOr.Name:
		return &CellOr
	case CellNor.Name:
		return &CellNor
	case CellXor.Name:
		return &CellXor
	case CellXnor.Name:
		return &CellXnor
	case CellMaj.Name:
		return &CellMaj
	}
	panic("techmap: unknown cell " + name)
}

// Overhead summarizes locked-vs-original PPA ratios, as percentages.
type Overhead struct {
	AreaPct  float64
	PowerPct float64
	DelayPct float64
}

// Compare computes the PPA overhead of the locked netlist relative to the
// original (paper Fig. 5 metrics).
func Compare(orig, locked Report) Overhead {
	pct := func(o, l float64) float64 {
		if o == 0 {
			return 0
		}
		return (l - o) / o * 100
	}
	return Overhead{
		AreaPct:  pct(orig.AreaUM2, locked.AreaUM2),
		PowerPct: pct(orig.TotalUW, locked.TotalUW),
		DelayPct: pct(orig.CriticalPathPS, locked.CriticalPathPS),
	}
}
