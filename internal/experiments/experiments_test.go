package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"obfuslock/internal/netlistgen"
	"obfuslock/internal/simp"
)

func quickBudget() Budget {
	// The Table I shape checks below run miniature 8-bit locks, far below
	// the paper's >= 20-bit rows, and their "all attack cells must fail"
	// expectation is calibrated against the baseline solver: with CNF
	// preprocessing the AppSAT cells pick more informative DIPs and crack
	// the miniature locks on some seeds (soundly — the extracted keys
	// verify). Pin the quick budget to simp-off so the shape check keeps
	// measuring the lock, not the solver configuration; the simp-on paths
	// are covered by the attack cross-checks and determinism tests.
	return Budget{Timeout: 15 * time.Second, MaxIterations: 40, Simp: simp.Off()}
}

func TestTableIEntryShape(t *testing.T) {
	b := netlistgen.SmallSuite()[1] // adder/comparator
	var out bytes.Buffer
	row, err := TableIEntry(context.Background(), b, 8, 1, quickBudget(), &out)
	if err != nil {
		t.Fatal(err)
	}
	if row.KeyBits < 8 {
		t.Fatalf("key bits %d too small for 8-bit skew", row.KeyBits)
	}
	if row.SkewBits < 8 {
		t.Fatalf("achieved skew %.1f below target", row.SkewBits)
	}
	// At 8 bits with a 40-DIP budget, all four attack cells must be
	// failures (TO or wrong) — the paper's shape for >= 20-bit rows.
	for _, cell := range []string{row.SATSub, row.SATWhole, row.AppSATSub, row.AppSATWhole} {
		if cell != "TO" && cell != "wrong" {
			t.Fatalf("attack cell %q — lock broke or harness mislabeled (row %v)", cell, row)
		}
	}
	if !strings.Contains(out.String(), b.Name) {
		t.Fatal("row not printed")
	}
}

func TestTableISweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	rows, err := TableI(context.Background(), netlistgen.SmallSuite()[:2], []float64{8}, 1, quickBudget(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
}

func TestFig4BeforeAfter(t *testing.T) {
	c := netlistgen.SmallSuite()[1].Build()
	before, after, err := Fig4(context.Background(), c, 8, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !before.CriticalVisible {
		t.Fatal("naive double-flip should expose a critical node")
	}
	if after.CriticalVisible {
		t.Fatal("transformation left a critical node visible")
	}
	totalBefore, totalAfter := 0, 0
	for i := range before.SkewHist {
		totalBefore += before.SkewHist[i]
		totalAfter += after.SkewHist[i]
	}
	if totalBefore == 0 || totalAfter == 0 {
		t.Fatal("empty histograms")
	}
	// Both netlists carry nodes with full-key TFIs (the restore unit).
	if before.KeyHist[4] == 0 || after.KeyHist[4] == 0 {
		t.Fatal("restore unit missing from key histograms")
	}
}

func TestFig5Overheads(t *testing.T) {
	var out bytes.Buffer
	rows, err := Fig5(context.Background(), netlistgen.SmallSuite()[1:3], []float64{8}, 1, 0, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Area.AreaPct < 0 {
			t.Fatalf("%s: negative area overhead", r.Bench)
		}
	}
	if !strings.Contains(out.String(), "AVERAGE") {
		t.Fatal("missing average row")
	}
}

func TestStructuralBattery(t *testing.T) {
	rows, err := Structural(context.Background(), netlistgen.SmallSuite()[1:2], 8, 1, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if !r.CriticalEliminated || r.ValkyrieBroke || !r.SPIWrong || !r.RemovalFailed {
		t.Fatalf("structural resistance violated: %+v", r)
	}
}

func TestCountKeysInTFI(t *testing.T) {
	b := netlistgen.SmallSuite()[2]
	c := b.Build()
	// Fake "keys": the last two inputs.
	n := c.NumInputs()
	keyVars := []uint32{c.InputVar(n - 2), c.InputVar(n - 1)}
	counts := countKeysInTFI(c, keyVars)
	if counts[keyVars[0]] != 1 || counts[keyVars[1]] != 1 {
		t.Fatal("key inputs must count themselves")
	}
	if counts[c.InputVar(0)] != 0 {
		t.Fatal("unrelated input counts keys")
	}
	// Outputs depending on both keys count 2.
	found := false
	for _, po := range c.Outputs() {
		if counts[po.Var()] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("no output depends on both fake keys — unexpected for a multiplier")
	}
}
