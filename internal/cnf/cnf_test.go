package cnf

import (
	"math/rand"
	"testing"

	"obfuslock/internal/aig"
	"obfuslock/internal/sat"
)

// enumEncoder checks that the CNF encoding of a graph agrees with Eval on
// every input pattern.
func checkEncoding(t *testing.T, g *aig.AIG) {
	t.Helper()
	n := g.NumInputs()
	if n > 10 {
		t.Fatal("checkEncoding: too many inputs for enumeration")
	}
	for m := 0; m < 1<<n; m++ {
		s := sat.New()
		e := NewEncoder(g, s)
		outs := e.Encode()
		assumps := make([]sat.Lit, n)
		pat := make([]bool, n)
		for i := 0; i < n; i++ {
			pat[i] = m>>i&1 == 1
			assumps[i] = e.InputLit(i)
			if !pat[i] {
				assumps[i] = assumps[i].Not()
			}
		}
		if s.Solve(assumps...) != sat.Sat {
			t.Fatalf("encoding unsatisfiable under input %v", pat)
		}
		want := g.Eval(pat)
		for o := range outs {
			if s.ModelValue(outs[o]) != want[o] {
				t.Fatalf("pattern %v output %d: cnf %v eval %v",
					pat, o, s.ModelValue(outs[o]), want[o])
			}
		}
	}
}

func TestEncodeGateTypes(t *testing.T) {
	g := aig.New()
	in := g.AddInputs(4)
	g.AddOutput(g.And(in[0], in[1].Not()), "and")
	g.AddOutput(g.Xor(in[1], in[2]), "xor")
	g.AddOutput(g.Maj(in[0], in[2].Not(), in[3]), "maj")
	g.AddOutput(g.Or(in[0], in[3]).Not(), "nor")
	g.AddOutput(aig.ConstTrue, "one")
	g.AddOutput(aig.ConstFalse, "zero")
	checkEncoding(t, g)
}

func TestEncodeRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g := aig.New()
		lits := g.AddInputs(5)
		for i := 0; i < 20; i++ {
			pick := func() aig.Lit {
				l := lits[rng.Intn(len(lits))]
				if rng.Intn(2) == 0 {
					l = l.Not()
				}
				return l
			}
			switch rng.Intn(3) {
			case 0:
				lits = append(lits, g.And(pick(), pick()))
			case 1:
				lits = append(lits, g.Xor(pick(), pick()))
			default:
				lits = append(lits, g.Maj(pick(), pick(), pick()))
			}
		}
		g.AddOutput(lits[len(lits)-1], "f")
		g.AddOutput(lits[len(lits)-2], "g")
		checkEncoding(t, g)
	}
}

func TestMiterEquivalentUnsat(t *testing.T) {
	// XOR built natively vs from ANDs: functionally equal, structurally not.
	g1 := aig.New()
	in1 := g1.AddInputs(3)
	g1.AddOutput(g1.Xor(g1.Xor(in1[0], in1[1]), in1[2]), "f")

	g2 := aig.New()
	in2 := g2.AddInputs(3)
	g2.AddOutput(g2.XorAnd(g2.XorAnd(in2[0], in2[1]), in2[2]), "f")

	s := sat.New()
	_, diff := Miter(s, g1, g2)
	s.AddClause(diff)
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("equivalent circuits: miter %v, want UNSAT", st)
	}
}

func TestMiterInequivalentSat(t *testing.T) {
	g1 := aig.New()
	in1 := g1.AddInputs(2)
	g1.AddOutput(g1.And(in1[0], in1[1]), "f")

	g2 := aig.New()
	in2 := g2.AddInputs(2)
	g2.AddOutput(g2.Or(in2[0], in2[1]), "f")

	s := sat.New()
	inputs, diff := Miter(s, g1, g2)
	s.AddClause(diff)
	if st := s.Solve(); st != sat.Sat {
		t.Fatalf("different circuits: miter %v, want SAT", st)
	}
	// The distinguishing input must actually distinguish AND from OR.
	a := s.ModelValue(inputs[0])
	b := s.ModelValue(inputs[1])
	if (a && b) == (a || b) {
		t.Fatalf("model %v %v does not distinguish AND from OR", a, b)
	}
}

func TestXorConstraintParity(t *testing.T) {
	for rhs := 0; rhs < 2; rhs++ {
		s := sat.New()
		lits := make([]sat.Lit, 4)
		for i := range lits {
			lits[i] = sat.MkLit(s.NewVar(), false)
		}
		AddXorConstraint(s, lits, rhs == 1)
		// Enumerate all models by blocking; all must have the right parity,
		// and there must be exactly 8.
		count := 0
		for s.Solve() == sat.Sat {
			parity := false
			block := make([]sat.Lit, len(lits))
			for i, l := range lits {
				v := s.ModelValue(l)
				if v {
					parity = !parity
					block[i] = l.Not()
				} else {
					block[i] = l
				}
			}
			if parity != (rhs == 1) {
				t.Fatalf("model with wrong parity (rhs=%d)", rhs)
			}
			count++
			if count > 16 {
				t.Fatal("too many models")
			}
			s.AddClause(block...)
		}
		if count != 8 {
			t.Fatalf("rhs=%d: got %d models, want 8", rhs, count)
		}
	}
}

func TestEmptyXorConstraint(t *testing.T) {
	s := sat.New()
	AddXorConstraint(s, nil, false)
	if s.Solve() != sat.Sat {
		t.Fatal("0=0 should be SAT")
	}
	s2 := sat.New()
	AddXorConstraint(s2, nil, true)
	if s2.Solve() != sat.Unsat {
		t.Fatal("0=1 should be UNSAT")
	}
}

func TestHelperLits(t *testing.T) {
	s := sat.New()
	a := sat.MkLit(s.NewVar(), false)
	b := sat.MkLit(s.NewVar(), false)
	c := sat.MkLit(s.NewVar(), false)
	andL := AndLit(s, a, b, c)
	orL := OrLit(s, a, b, c)
	eqL := EqualLit(s, a, b)
	for m := 0; m < 8; m++ {
		va, vb, vc := m&1 == 1, m>>1&1 == 1, m>>2&1 == 1
		assume := []sat.Lit{
			a.Not(), b.Not(), c.Not(),
		}
		if va {
			assume[0] = a
		}
		if vb {
			assume[1] = b
		}
		if vc {
			assume[2] = c
		}
		if s.Solve(assume...) != sat.Sat {
			t.Fatal("helper constraints unsatisfiable")
		}
		if s.ModelValue(andL) != (va && vb && vc) {
			t.Fatalf("AndLit wrong at %d", m)
		}
		if s.ModelValue(orL) != (va || vb || vc) {
			t.Fatalf("OrLit wrong at %d", m)
		}
		if s.ModelValue(eqL) != (va == vb) {
			t.Fatalf("EqualLit wrong at %d", m)
		}
	}
}
