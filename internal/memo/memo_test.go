package memo

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"obfuslock/internal/obs"
)

type payload struct {
	N int
	S string
}

func TestDoHitMiss(t *testing.T) {
	tr := obs.New(obs.Discard)
	c, err := New(Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	compute := func() (payload, error) {
		calls++
		return payload{N: 7, S: "x"}, nil
	}
	v1, err := Do(c, "k1", compute)
	if err != nil || v1.N != 7 {
		t.Fatalf("first Do: %v %v", v1, err)
	}
	v2, err := Do(c, "k1", compute)
	if err != nil || v2 != v1 {
		t.Fatalf("second Do: %v %v", v2, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	if st.HitRatio() != 0.5 || st.Lookups() != 2 {
		t.Fatalf("hit ratio=%v lookups=%d, want 0.5/2", st.HitRatio(), st.Lookups())
	}
}

func TestNilCachePassesThrough(t *testing.T) {
	var c *Cache
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := Do(c, "k", func() (int, error) { calls++; return 42, nil })
		if err != nil || v != 42 {
			t.Fatalf("nil cache Do: %v %v", v, err)
		}
	}
	if calls != 3 {
		t.Fatalf("nil cache should always compute, got %d calls", calls)
	}
	if c.Enabled() {
		t.Fatal("nil cache reports enabled")
	}
}

func TestSingleflight(t *testing.T) {
	c, err := New(Options{Trace: obs.New(obs.Discard)})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	gate := make(chan struct{})
	const workers = 8
	var wg sync.WaitGroup
	results := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := Do(c, "shared", func() (int, error) {
				calls.Add(1)
				<-gate
				return 99, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let followers pile up behind the leader, then release it.
	for {
		if c.Stats().InflightDedups >= workers-1 {
			break
		}
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under singleflight, want 1", n)
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("worker %d got %d", i, v)
		}
	}
}

func TestEviction(t *testing.T) {
	tr := obs.New(obs.Discard)
	c, err := New(Options{MaxBytes: numShards * 512, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 200)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		if _, err := Do(c, k, func() ([]byte, error) { return big, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("expected evictions with a tiny budget")
	}
	if total := c.totalBytes(); total > numShards*512*2 {
		t.Fatalf("byte accounting did not shrink: %d", total)
	}
}

func TestDiskSpillWarmsNextCache(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := payload{N: 13, S: "persisted"}
	if _, err := Do(c1, "disk-key", func() (payload, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err := Do(c2, "disk-key", func() (payload, error) {
		return payload{}, fmt.Errorf("should not recompute")
	})
	if err != nil || got != want {
		t.Fatalf("warm cache: %v %v", got, err)
	}
	// Second hit exercises the promoted (decoded) entry.
	got, err = Do(c2, "disk-key", func() (payload, error) {
		return payload{}, fmt.Errorf("should not recompute")
	})
	if err != nil || got != want {
		t.Fatalf("promoted hit: %v %v", got, err)
	}
}

func TestUnmarshalableValueStaysInMemory(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Channels cannot be JSON-marshaled: the value must still cache in
	// memory, only the disk spill is skipped.
	ch := make(chan int)
	calls := 0
	for i := 0; i < 2; i++ {
		v, err := Do(c, "chan", func() (chan int, error) { calls++; return ch, nil })
		if err != nil || v != ch {
			t.Fatalf("Do: %v %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	c.Close()
	data, _ := os.ReadFile(filepath.Join(dir, "cache.jsonl"))
	if len(data) != 0 {
		t.Fatalf("unmarshalable value leaked to disk: %q", data)
	}
}

func TestUnwritableDirFails(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: permission bits are not enforced")
	}
	dir := t.TempDir()
	ro := filepath.Join(dir, "ro")
	if err := os.Mkdir(ro, 0o555); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Dir: filepath.Join(ro, "cache")}); err == nil {
		t.Fatal("expected error for unwritable cache dir")
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	_, err = Do(c, "e", func() (int, error) { calls++; return 0, fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("expected error")
	}
	v, err := Do(c, "e", func() (int, error) { calls++; return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("retry after error: %v %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("error was cached: %d calls", calls)
	}
}
