package obfuslock

// Cross-check of the content-addressed result cache: the same query suite
// must render byte-identical output with the cache off, cold and warm, at
// any worker count. The suite touches every cached layer — CEC verdicts,
// splitting-based skewness estimates, projected model counts, witness
// pools and techmap PPA reports — and runs every cell twice concurrently
// so the singleflight path is exercised, not just the store.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"obfuslock/internal/aig"
	"obfuslock/internal/count"
	"obfuslock/internal/exec"
	"obfuslock/internal/memo"
	"obfuslock/internal/netlistgen"
	"obfuslock/internal/rewrite"
	"obfuslock/internal/sample"
	"obfuslock/internal/skew"
	"obfuslock/internal/techmap"
)

// cacheSuite is a purpose-sized circuit set for the cross-check: big
// enough that every query layer does real SAT work, small enough that the
// four full renders (off x2, cold, warm) stay in seconds. The reduced
// benchmark suite is far too slow here — projected model counting alone
// takes minutes per 48-input control circuit.
func cacheSuite() []netlistgen.Benchmark {
	return []netlistgen.Benchmark{
		{Name: "mult4", Build: func() *aig.AIG { return netlistgen.Multiplier(4) }},
		{Name: "addcmp6", Build: func() *aig.AIG { return netlistgen.AdderCmp(6) }},
		{Name: "max3x8", Build: func() *aig.AIG { return netlistgen.Max(3, 8) }},
	}
}

// renderCacheSuite runs the query suite against the given cache (nil: off)
// at the given worker count and returns the rendered report. Each logical
// cell appears twice in the task list, so at workers > 1 identical queries
// race and must deduplicate through the singleflight layer.
func renderCacheSuite(t *testing.T, cache *memo.Cache, workers int) []byte {
	t.Helper()
	ctx := context.Background()
	suite := cacheSuite()

	cell := func(i int) string {
		b := suite[i%len(suite)]
		c := b.Build()
		var sb strings.Builder

		// CEC: the circuit against a rewritten (equivalent) copy.
		rw := rewrite.FunctionalRewrite(c, rewrite.ObfuscationOptions(7))
		copt := DefaultCECOptions()
		copt.Cache = cache
		r, err := CheckEquivalent(ctx, c, rw, copt)
		if err != nil {
			t.Error(err)
			return ""
		}
		fmt.Fprintf(&sb, "%s cec eq=%v decided=%v\n", b.Name, r.Equivalent, r.Decided)

		// Skewness: splitting estimate of output 0.
		so := skew.DefaultSplittingOptions()
		so.Seed = 3
		so.Cache = cache
		fmt.Fprintf(&sb, "%s skew bits=%.6f\n", b.Name, skew.SplittingBits(c, c.Output(0), so))

		// Counting: projected models of output 0, and reachable patterns on
		// the output cut.
		mo := count.DefaultOptions()
		mo.Pivot = 12
		mo.Trials = 3
		mo.Budget = exec.WithConflicts(50000)
		mo.Seed = 2
		mo.Cache = cache
		mr := count.Models(ctx, c, c.Output(0), mo)
		fmt.Fprintf(&sb, "%s count log2=%.6f exact=%v decided=%v\n", b.Name, mr.Log2Count, mr.Exact, mr.Decided)
		rr := count.ReachablePatterns(ctx, c, []Lit{c.Output(0), c.Output(c.NumOutputs() - 1)}, mo)
		fmt.Fprintf(&sb, "%s reach log2=%.6f decided=%v\n", b.Name, rr.Log2Count, rr.Decided)

		// Witness pools: a memoized pool draw over a fresh cube sampler.
		ps := &sample.PoolSampler{
			Cache: cache,
			Key:   fmt.Sprintf("test.pool|%016x|cond=%d|seed=11", c.StructuralHash(), c.Output(0)),
			New:   func() sample.Sampler { return sample.NewCubeSampler(c, c.Output(0), 11) },
		}
		wit := ps.Sample(4)
		fmt.Fprintf(&sb, "%s pool n=%d", b.Name, len(wit))
		for _, w := range wit {
			sb.WriteByte(' ')
			for _, v := range w {
				if v {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
		}
		sb.WriteByte('\n')

		// Techmap: the PPA report of the mapped netlist.
		fmt.Fprintf(&sb, "%s ppa %s\n", b.Name, techmap.AnalyzeWith(c, 4, 1, cache))
		return sb.String()
	}

	n := 2 * len(suite) // every cell twice: concurrent identical queries
	parts := make([]string, n)
	exec.Collect(ctx, workers, n, func(ctx context.Context, i int) string {
		return cell(i)
	}, func(i int, s string) { parts[i] = s })

	// The two copies of each cell must already agree — and the rendered
	// report keeps just one, so cache-off and cache-on runs compare equal.
	var buf bytes.Buffer
	for i := 0; i < len(suite); i++ {
		if parts[i] != parts[i+len(suite)] {
			t.Errorf("cell %d disagrees with its duplicate:\n%s---\n%s", i, parts[i], parts[i+len(suite)])
		}
		buf.WriteString(parts[i])
	}
	return buf.Bytes()
}

// TestCacheCrossCheck pins the tentpole determinism contract: identical
// bytes with the cache off, cold and warm, at 1 and 4 workers, with the
// warm pass actually hitting (not silently recomputing).
func TestCacheCrossCheck(t *testing.T) {
	off1 := renderCacheSuite(t, nil, 1)
	off4 := renderCacheSuite(t, nil, 4)
	if !bytes.Equal(off1, off4) {
		t.Fatalf("cache-off output differs between 1 and 4 workers:\n--- w1\n%s--- w4\n%s", off1, off4)
	}

	dir := t.TempDir()
	cold, err := memo.New(memo.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold1 := renderCacheSuite(t, cold, 1)
	if !bytes.Equal(off1, cold1) {
		t.Fatalf("cold cache changed the output:\n--- off\n%s--- cold\n%s", off1, cold1)
	}
	if st := cold.Stats(); st.Misses == 0 {
		t.Fatal("cold pass recorded no cache misses — the suite bypassed the cache")
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from the spill file: a genuinely warm, cross-process cache.
	warm, err := memo.New(memo.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	warm4 := renderCacheSuite(t, warm, 4)
	if !bytes.Equal(off1, warm4) {
		t.Fatalf("warm cache changed the output:\n--- off\n%s--- warm\n%s", off1, warm4)
	}
	if warm.Stats().Hits == 0 {
		t.Fatal("warm pass recorded no cache hits — the spill reload is not serving results")
	}
}
