package cec

import (
	"context"
	"math/rand"
	"testing"

	"obfuslock/internal/aig"
	"obfuslock/internal/simp"
)

func randSimpCircuit(rng *rand.Rand, nin, nops, nout int) *aig.AIG {
	g := aig.New()
	lits := g.AddInputs(nin)
	for i := 0; i < nops; i++ {
		pick := func() aig.Lit {
			l := lits[rng.Intn(len(lits))]
			if rng.Intn(2) == 0 {
				l = l.Not()
			}
			return l
		}
		var nl aig.Lit
		switch rng.Intn(3) {
		case 0:
			nl = g.And(pick(), pick())
		case 1:
			nl = g.Xor(pick(), pick())
		default:
			nl = g.Maj(pick(), pick(), pick())
		}
		lits = append(lits, nl)
	}
	for o := 0; o < nout; o++ {
		g.AddOutput(lits[len(lits)-1-o], "o")
	}
	return g
}

// Equivalence verdicts must not depend on the preprocessing configuration,
// and counterexamples found on a simplified solver must still distinguish
// the two circuits (model reconstruction through eliminated variables).
func TestCheckSimpOnOffAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 120; trial++ {
		a := randSimpCircuit(rng, 5+rng.Intn(4), 15+rng.Intn(30), 2)
		var b *aig.AIG
		if rng.Intn(2) == 0 {
			b = a.Copy() // equivalent
		} else {
			b = randSimpCircuit(rng, a.NumInputs(), 15+rng.Intn(30), 2) // almost surely different
		}
		for _, sweep := range []bool{false, true} {
			optOn := DefaultOptions()
			if sweep {
				optOn = SweepOptions()
			}
			optOn.Seed = int64(trial)
			optOff := optOn
			optOff.Simp = simp.Off()
			rOn, err1 := Check(context.Background(), a, b, optOn)
			rOff, err2 := Check(context.Background(), a, b, optOff)
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d err: %v %v", trial, err1, err2)
			}
			if rOn.Equivalent != rOff.Equivalent {
				t.Fatalf("trial %d sweep=%v: simp=%v nosimp=%v",
					trial, sweep, rOn.Equivalent, rOff.Equivalent)
			}
			if !rOn.Equivalent && rOn.Counterexample != nil {
				ya, yb := a.Eval(rOn.Counterexample), b.Eval(rOn.Counterexample)
				same := true
				for i := range ya {
					if ya[i] != yb[i] {
						same = false
					}
				}
				if same {
					t.Fatalf("trial %d sweep=%v: counterexample does not distinguish", trial, sweep)
				}
			}
		}
	}
}
