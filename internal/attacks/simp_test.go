package attacks

import (
	"context"
	"testing"

	"obfuslock/internal/lockbase"
	"obfuslock/internal/locking"
	"obfuslock/internal/netlistgen"
	"obfuslock/internal/simp"
)

// The SAT attack's exactness claim must survive any preprocessing
// configuration: whenever the DIP loop reaches UNSAT, the extracted key
// has to restore the original function exactly — with full elimination,
// with inprocessing forced on every iteration, and with simp off. The
// keys themselves may differ between configurations (several keys can be
// correct), so the check is functional, not positional.
func TestSATAttackSimpOnOffBothExact(t *testing.T) {
	type instance struct {
		name string
		mk   func(seed int64) (*locking.Locked, error)
	}
	instances := []instance{
		{"rll", func(seed int64) (*locking.Locked, error) {
			return lockbase.RLL(netlistgen.Multiplier(4), 10, seed)
		}},
		{"sarlock", func(seed int64) (*locking.Locked, error) {
			return lockbase.SARLock(netlistgen.AdderCmp(4), 6, seed)
		}},
		{"antisat", func(seed int64) (*locking.Locked, error) {
			return lockbase.AntiSAT(netlistgen.Multiplier(4), 6, seed)
		}},
	}
	configs := map[string]simp.Options{
		"on":      {},
		"off":     simp.Off(),
		"inproc1": {InprocessEvery: 1},
	}
	for seed := int64(0); seed < 8; seed++ {
		for _, ins := range instances {
			l, err := ins.mk(seed)
			if err != nil {
				t.Fatal(err)
			}
			orig := l.Unlocked()
			for name, so := range configs {
				opt := DefaultIOOptions()
				opt.Seed = seed
				opt.Simp = so
				r := SATAttack(context.Background(), l, locking.NewOracle(orig), opt)
				if !r.Exact {
					t.Fatalf("%s seed %d simp=%s: attack did not terminate exact", ins.name, seed, name)
				}
				ok, err := l.VerifyKey(orig, r.Key)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Errorf("%s seed %d simp=%s: exact claim with a wrong key (iters=%d)",
						ins.name, seed, name, r.Iterations)
				}
			}
		}
	}
}
