// Command attack evaluates locked netlists against the attack suite, and
// regenerates the paper's experiments at full scale.
//
// Attack a locked design (key inputs named k0, k1, ...):
//
//	attack -enc locked.bench -oracle design.bench -attack sat -timeout 1m
//
// Regenerate experiments (full benchmark suite — hours at paper scale):
//
//	attack -table1 -skews 10,20,30 -timeout 10m
//	attack -fig4
//	attack -fig5
//	attack -structural
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"obfuslock/internal/aig"
	"obfuslock/internal/attacks"
	"obfuslock/internal/bench"
	"obfuslock/internal/cec"
	"obfuslock/internal/experiments"
	"obfuslock/internal/locking"
	"obfuslock/internal/netlistgen"
)

func main() {
	encPath := flag.String("enc", "", "encrypted .bench netlist")
	oraclePath := flag.String("oracle", "", "original .bench netlist (the working chip)")
	attackName := flag.String("attack", "sat", "attack: sat, appsat, sensitization, sps, removal, bypass, valkyrie, spi")
	timeout := flag.Duration("timeout", time.Minute, "attack timeout")
	maxIter := flag.Int("maxiter", 2048, "DIP iteration cap")
	seed := flag.Int64("seed", 1, "attack randomness seed")

	table1 := flag.Bool("table1", false, "regenerate Table I on the full suite")
	fig4 := flag.Bool("fig4", false, "regenerate Fig. 4 statistics (s9234)")
	fig5 := flag.Bool("fig5", false, "regenerate Fig. 5 overheads")
	structural := flag.Bool("structural", false, "regenerate the structural-attack evaluation")
	small := flag.Bool("small", false, "use the reduced-size suite for experiment modes")
	skews := flag.String("skews", "10,20,30", "comma-separated skewness levels for experiment modes")
	flag.Parse()

	suite := netlistgen.Catalog()
	if *small {
		suite = netlistgen.SmallSuite()
	}
	levels := parseSkews(*skews)
	budget := experiments.Budget{Timeout: *timeout, MaxIterations: *maxIter}

	switch {
	case *table1:
		if _, err := experiments.TableI(suite, levels, *seed, budget, os.Stdout); err != nil {
			fatal(err)
		}
		return
	case *fig4:
		b := suite[0]
		c := b.Build()
		before, after, err := experiments.Fig4(c, levels[0], *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s @ %g bits\n", b.Name, levels[0])
		fmt.Printf("before: skew-hist=%v key-hist=%v max-skew=%.1f critical-visible=%v\n",
			before.SkewHist, before.KeyHist, before.MaxSkewBits, before.CriticalVisible)
		fmt.Printf("after:  skew-hist=%v key-hist=%v max-skew=%.1f critical-visible=%v\n",
			after.SkewHist, after.KeyHist, after.MaxSkewBits, after.CriticalVisible)
		return
	case *fig5:
		if _, err := experiments.Fig5(suite, levels, *seed, os.Stdout); err != nil {
			fatal(err)
		}
		return
	case *structural:
		if _, err := experiments.Structural(suite, levels[0], *seed, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if *encPath == "" || *oraclePath == "" {
		fatal(fmt.Errorf("-enc and -oracle are required (or use an experiment mode)"))
	}
	enc := readBench(*encPath)
	orig := readBench(*oraclePath)
	l, err := locking.FromNetlist(enc, "unknown")
	if err != nil {
		fatal(err)
	}
	if l.NumInputs != orig.NumInputs() {
		fatal(fmt.Errorf("oracle has %d inputs, locked design expects %d",
			orig.NumInputs(), l.NumInputs))
	}
	oracle := locking.NewOracle(orig)
	aopt := attacks.DefaultIOOptions()
	aopt.Timeout = *timeout
	aopt.MaxIterations = *maxIter
	aopt.Seed = *seed

	report := func(key []bool, extra string) {
		status := "no key"
		if key != nil {
			if ok, _ := l.VerifyKey(orig, key); ok {
				status = "CORRECT key " + keyString(key)
			} else {
				status = "incorrect key " + keyString(key)
			}
		}
		fmt.Printf("%s: %s%s\n", *attackName, status, extra)
	}

	switch *attackName {
	case "sat":
		r := attacks.SATAttack(l, oracle, aopt)
		report(r.Key, fmt.Sprintf(" (iters=%d queries=%d exact=%v timeout=%v runtime=%v)",
			r.Iterations, r.Queries, r.Exact, r.TimedOut, r.Runtime))
	case "appsat":
		r := attacks.AppSAT(l, oracle, aopt)
		report(r.Key, fmt.Sprintf(" (iters=%d queries=%d exact=%v runtime=%v)",
			r.Iterations, r.Queries, r.Exact, r.Runtime))
	case "sensitization":
		r := attacks.Sensitization(l, oracle, 500000)
		fmt.Printf("sensitization: %d/%d key bits isolatable (runtime %v)\n",
			r.NumIsolatable, l.KeyBits, r.Runtime)
	case "sps":
		r := attacks.SPS(l, 256, *seed, 10)
		fmt.Println("sps: top skewed nodes (candidate critical nodes):")
		for i, v := range r.Candidates {
			fmt.Printf("  n%d  %.1f bits\n", v, r.SkewBits[i])
		}
	case "removal":
		sps := attacks.SPS(l, 256, *seed, 10)
		r := attacks.Removal(l, orig, sps.Candidates, cec.DefaultOptions())
		fmt.Printf("removal: success=%v tried=%d runtime=%v\n", r.Success, r.Tried, r.Runtime)
	case "bypass":
		wrong := make([]bool, l.KeyBits)
		r := attacks.Bypass(l, orig, wrong, 1024, 1000000)
		fmt.Printf("bypass: success=%v patterns=%d exhausted=%v runtime=%v\n",
			r.Success, r.Patterns, r.Exhausted, r.Runtime)
	case "valkyrie":
		r := attacks.Valkyrie(l, orig, 8, 128, *seed, cec.DefaultOptions())
		fmt.Printf("valkyrie: found-pair=%v restore-only=%v pairs-tried=%d runtime=%v\n",
			r.FoundPair, r.RestoreOnly, r.PairsTried, r.Runtime)
	case "spi":
		r := attacks.SPI(l, 6)
		report(r.Key, fmt.Sprintf(" (xor-rule=%d point-rule=%d runtime=%v)",
			r.XORRuleHits, r.PointRuleHits, r.Runtime))
	default:
		fatal(fmt.Errorf("unknown attack %q", *attackName))
	}
}

func parseSkews(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad skew list %q: %v", s, err))
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		out = []float64{20}
	}
	return out
}

func readBench(path string) *aig.AIG {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	g, err := bench.Read(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return g
}

func keyString(key []bool) string {
	b := make([]byte, len(key))
	for i, v := range key {
		b[i] = '0'
		if v {
			b[i] = '1'
		}
	}
	return string(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "attack:", err)
	os.Exit(1)
}
