package obfuslock

import (
	"bytes"
	"testing"
)

// lockBench locks the small adder/comparator at a fixed seed and returns
// the serialized locked netlist.
func lockBench(t *testing.T, tr *Tracer) []byte {
	t.Helper()
	c := SmallBenchmarks()[1].Build()
	opt := DefaultOptions()
	opt.TargetSkewBits = 8
	opt.Seed = 5
	opt.AllowDirect = false
	opt.Trace = tr
	res, err := Lock(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, res.Locked.Enc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLockSeedByteIdentical pins the determinism contract: the same
// Options.Seed yields a byte-identical .bench serialization, with and
// without tracing (tracing must never influence randomized choices).
func TestLockSeedByteIdentical(t *testing.T) {
	a := lockBench(t, nil)
	b := lockBench(t, nil)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different .bench output")
	}
	traced := lockBench(t, NewTracer(NewTraceCollector()))
	if !bytes.Equal(a, traced) {
		t.Fatal("enabling tracing changed the locked netlist")
	}
}

// TestAttackTranscriptDeterministic pins the attack-side contract: at a
// fixed seed the SAT-attack transcript (iteration and oracle-query
// counts) is reproducible, and tracing does not perturb it.
func TestAttackTranscriptDeterministic(t *testing.T) {
	c := SmallBenchmarks()[1].Build()
	opt := DefaultOptions()
	opt.TargetSkewBits = 8
	opt.Seed = 5
	opt.AllowDirect = false
	res, err := Lock(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	run := func(tr *Tracer) AttackResult {
		aopt := DefaultAttackOptions()
		aopt.MaxIterations = 25
		aopt.Seed = 7
		aopt.Trace = tr
		return RunSATAttack(res.Locked, NewOracle(c), aopt)
	}
	r1 := run(nil)
	r2 := run(nil)
	if r1.Iterations != r2.Iterations || r1.Queries != r2.Queries {
		t.Fatalf("same seed, different transcript: (%d,%d) vs (%d,%d)",
			r1.Iterations, r1.Queries, r2.Iterations, r2.Queries)
	}
	col := NewTraceCollector()
	r3 := run(NewTracer(col))
	if r3.Iterations != r1.Iterations || r3.Queries != r1.Queries {
		t.Fatalf("tracing changed the transcript: (%d,%d) vs (%d,%d)",
			r3.Iterations, r3.Queries, r1.Iterations, r1.Queries)
	}
	if got := len(col.EventsNamed("dip")); got != r3.Iterations {
		t.Fatalf("%d dip events for %d iterations", got, r3.Iterations)
	}
}
