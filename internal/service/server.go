package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"obfuslock/internal/exec"
	"obfuslock/internal/obs"
)

// Runner executes one job. Implementations live above this package (the
// facade's registry-backed runner is the production one; tests inject
// stubs). The contract mirrors the rest of the repository: cancelling
// ctx stops the work promptly and deterministically, tr is a per-job
// tracer whose stream feeds the job's /events endpoint (nil-safe,
// record-only — it must never change the result), and the returned
// error is a structured job failure, not a transport error.
type Runner interface {
	// Run executes spec under ctx, reporting progress through tr.
	Run(ctx context.Context, spec JobSpec, tr *obs.Tracer) (JobResult, *Error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx context.Context, spec JobSpec, tr *obs.Tracer) (JobResult, *Error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, spec JobSpec, tr *obs.Tracer) (JobResult, *Error) {
	return f(ctx, spec, tr)
}

// Config parameterizes a Server.
type Config struct {
	// Runner executes admitted jobs (required).
	Runner Runner
	// Workers is the job-execution parallelism (0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the backlog of admitted-but-not-running jobs
	// (0: DefaultQueueDepth). Beyond it, submissions get 429/queue_full.
	QueueDepth int
	// DefaultLimits applies to tenants without an override.
	DefaultLimits TenantLimits
	// Tenants overrides limits per tenant name.
	Tenants map[string]TenantLimits
	// Schemes, when non-empty, is the accepted scheme-name list for lock
	// jobs; unknown names are rejected at admission with 400.
	Schemes []string
	// Attacks, when non-empty, is the accepted attack-name list.
	Attacks []string
	// Registry, when non-nil, receives the server's metrics (counters
	// under service.*, the scheduler's exec.* pool metrics) and becomes
	// the metric namespace of every per-job tracer.
	Registry *obs.Registry
	// ExtraSink, when non-nil, additionally receives every job's trace
	// stream (a process-wide JSONL file, flight recorder, or progress
	// sink). Per-job /events streams work without it.
	ExtraSink obs.Sink
	// MaxEventsPerJob bounds each job's retained progress records
	// (0: the package default).
	MaxEventsPerJob int
}

// DefaultQueueDepth is the backlog bound when Config.QueueDepth is 0.
const DefaultQueueDepth = 64

// Server owns the job table, the admission-controlled scheduler and the
// HTTP surface. Create with New, mount Handler, and call Drain on the
// way out.
type Server struct {
	cfg   Config
	sched *Scheduler

	baseCtx  context.Context
	stopBase context.CancelFunc
	draining atomic.Bool

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID uint64

	cSubmitted, cDone, cFailed, cCancelled *obs.Counter
	cRejectedQuota, cRejectedQueue         *obs.Counter
	gRunning                               *obs.Gauge
}

// New builds a Server from cfg. It panics when cfg.Runner is nil — a
// server without an executor is a programming error, not a runtime
// condition.
func New(cfg Config) *Server {
	if cfg.Runner == nil {
		panic("service: Config.Runner is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	var pm exec.PoolMetrics
	s := &Server{cfg: cfg, jobs: map[string]*Job{}}
	if reg := cfg.Registry; reg != nil {
		pm = exec.PoolMetrics{
			QueueDepth:  reg.Gauge(exec.MetricQueueDepth),
			TaskLatency: reg.Histogram(exec.MetricTaskLatency),
			Tasks:       reg.Counter(exec.MetricTasks),
		}
		s.cSubmitted = reg.Counter(MetricJobsSubmitted)
		s.cDone = reg.Counter(MetricJobsDone)
		s.cFailed = reg.Counter(MetricJobsFailed)
		s.cCancelled = reg.Counter(MetricJobsCancelled)
		s.cRejectedQuota = reg.Counter(MetricRejectedQuota)
		s.cRejectedQueue = reg.Counter(MetricRejectedQueue)
		s.gRunning = reg.Gauge(MetricJobsRunning)
	}
	s.sched = NewScheduler(cfg.Workers, cfg.QueueDepth, cfg.DefaultLimits, cfg.Tenants, pm)
	s.baseCtx, s.stopBase = context.WithCancel(context.Background())
	return s
}

// Server metric names (registered when Config.Registry is set).
const (
	// MetricJobsSubmitted counts accepted submissions.
	MetricJobsSubmitted = "service.jobs_submitted"
	// MetricJobsDone counts jobs finishing with a result.
	MetricJobsDone = "service.jobs_done"
	// MetricJobsFailed counts jobs finishing with an error.
	MetricJobsFailed = "service.jobs_failed"
	// MetricJobsCancelled counts cancelled jobs.
	MetricJobsCancelled = "service.jobs_cancelled"
	// MetricRejectedQuota counts 429s from tenant quotas.
	MetricRejectedQuota = "service.rejected_quota"
	// MetricRejectedQueue counts 429s from queue backpressure.
	MetricRejectedQueue = "service.rejected_queue"
	// MetricJobsRunning gauges jobs currently executing.
	MetricJobsRunning = "service.jobs_running"
)

// Handler returns the service mux:
//
//	POST   /v1/jobs            submit (202; ?wait=1 blocks and returns 200)
//	GET    /v1/jobs            list job envelopes
//	GET    /v1/jobs/{id}       one job envelope
//	GET    /v1/jobs/{id}/events  progress stream as JSONL (?follow=1 tails)
//	DELETE /v1/jobs/{id}       cancel
//	GET    /v1/schema          schema versions, kinds, schemes, attacks
//	GET    /healthz            liveness/drain state
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/schema", s.handleSchema)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		s.mu.Lock()
		out := make([]Status, 0, len(s.order))
		for _, id := range s.order {
			out = append(out, s.jobs[id].Status())
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
	default:
		writeError(w, Errorf(CodeBadRequest, "method %s not allowed", r.Method), http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, Errorf(CodeDraining, "server is draining; not admitting jobs"), 0)
		return
	}
	// A submission whose request context is already dead never touches
	// the scheduler: there is no client left to learn the job id, so
	// admitting it could only waste a worker slot.
	if err := r.Context().Err(); err != nil {
		writeError(w, Errorf(CodeBadRequest, "request context cancelled before admission: %v", err), 0)
		return
	}
	spec, jerr := DecodeSpec(r.Body)
	if jerr != nil {
		writeError(w, jerr, 0)
		return
	}
	if jerr := s.checkRegistries(spec); jerr != nil {
		writeError(w, jerr, 0)
		return
	}
	tenant := spec.TenantOrDefault()
	limits := s.sched.Limits(tenant)
	if b := limits.Clamp(budgetOf(spec)); b != (Budget{}) {
		spec.Budget = &b
	}
	if jerr := s.sched.Admit(tenant); jerr != nil {
		s.cRejectedQuota.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, jerr, 0)
		return
	}
	job := newJob(s.baseCtx, s.newID(), spec, s.cfg.MaxEventsPerJob)
	s.mu.Lock()
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.mu.Unlock()

	wait := boolParam(r, "wait")
	if wait {
		// Synchronous mode ties the job to the request: a client that
		// disconnects mid-run cancels its job, freeing the worker slot
		// for the next tenant instead of burning it on an answer nobody
		// will read.
		go func() {
			select {
			case <-r.Context().Done():
				job.Cancel("client disconnected")
			case <-job.Done():
			}
		}()
	}
	if jerr := s.sched.Submit(func() { s.execute(job) }); jerr != nil {
		s.mu.Lock()
		delete(s.jobs, job.id)
		if n := len(s.order); n > 0 && s.order[n-1] == job.id {
			s.order = s.order[:n-1]
		}
		s.mu.Unlock()
		s.sched.Release(tenant)
		if jerr.Code == CodeQueueFull {
			s.cRejectedQueue.Inc()
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, jerr, 0)
		return
	}
	s.cSubmitted.Inc()
	if wait {
		<-job.Done()
		writeJSON(w, http.StatusOK, job.Status())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.id)
	writeJSON(w, http.StatusAccepted, job.Status())
}

// checkRegistries rejects unknown scheme/attack names at admission when
// the server was configured with the registries, so clients get a 400
// with the accepted list instead of a failed job.
func (s *Server) checkRegistries(spec JobSpec) *Error {
	if spec.Kind == KindLock && len(s.cfg.Schemes) > 0 && !contains(s.cfg.Schemes, spec.Scheme) {
		return Errorf(CodeBadRequest, "unknown scheme %q (have %s)", spec.Scheme, strings.Join(s.cfg.Schemes, ", "))
	}
	if spec.Kind == KindAttack && len(s.cfg.Attacks) > 0 && !contains(s.cfg.Attacks, spec.Attack) {
		return Errorf(CodeBadRequest, "unknown attack %q (have %s)", spec.Attack, strings.Join(s.cfg.Attacks, ", "))
	}
	return nil
}

func contains(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}

// budgetOf returns the spec's budget or the zero value.
func budgetOf(spec JobSpec) Budget {
	if spec.Budget != nil {
		return *spec.Budget
	}
	return Budget{}
}

// execute runs one dequeued job on a scheduler worker. It is the single
// release point for the tenant's admission slot: completed, failed,
// cancelled-while-running and cancelled-while-queued (tombstone) paths
// all pass through here exactly once.
func (s *Server) execute(job *Job) {
	defer s.sched.Release(job.tenant)
	if !job.start() {
		// Cancelled while queued: the runner never sees it.
		s.cCancelled.Inc()
		return
	}
	s.gRunning.Add(1)
	defer s.gRunning.Add(-1)
	tr := obs.NewWithRegistry(obs.Multi(obs.NewJSONL(job.events), s.cfg.ExtraSink), s.cfg.Registry)
	res, jerr := s.cfg.Runner.Run(job.ctx, job.spec, tr)
	tr.Close()
	job.finish(&res, jerr)
	switch job.State() {
	case StateDone:
		s.cDone.Inc()
	case StateFailed:
		s.cFailed.Inc()
	case StateCancelled:
		s.cCancelled.Inc()
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	job := s.jobs[id]
	s.mu.Unlock()
	if job == nil {
		writeError(w, Errorf(CodeUnknownJob, "no job %q", id), 0)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, job.Status())
	case sub == "" && r.Method == http.MethodDelete:
		job.Cancel("cancelled by client")
		writeJSON(w, http.StatusOK, job.Status())
	case sub == "events" && r.Method == http.MethodGet:
		s.streamEvents(w, r, job)
	default:
		writeError(w, Errorf(CodeBadRequest, "unsupported %s on %s", r.Method, r.URL.Path), http.StatusMethodNotAllowed)
	}
}

// streamEvents writes the job's progress records as JSONL. With
// ?follow=1 it keeps the response open, flushing new records as the job
// emits them, until the job reaches a terminal state or the client goes
// away — a poll-free progress feed built directly on the obs span
// stream.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	follow := boolParam(r, "follow")
	offset := 0
	for {
		lines, next, closed := job.events.Snapshot(offset)
		for _, line := range lines {
			w.Write(line)
			w.Write([]byte{'\n'})
		}
		offset = next
		if flusher != nil && len(lines) > 0 {
			flusher.Flush()
		}
		if !follow || closed {
			return
		}
		if !job.events.Wait(offset, r.Context().Done()) {
			return
		}
	}
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"job_schema":    SchemaVersion,
		"result_schema": ResultSchema,
		"kinds":         Kinds(),
		"schemes":       s.cfg.Schemes,
		"attacks":       s.cfg.Attacks,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		state = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": state, "backlog": s.sched.Backlog()})
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the job engine down: stop admitting (every new
// submission gets 503/draining), let queued and running jobs finish, and
// — if ctx expires first — cancel whatever is still in flight and wait
// for the workers to observe the cancellation. On return no job is
// running; the caller can flush ledgers and exit. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	if err := s.sched.Drain(ctx); err == nil {
		return nil
	}
	// Deadline passed with work still in flight: checkpoint by
	// cancelling every live job (they all poll their contexts down to
	// the SAT conflict loops) and give the workers a bounded grace
	// period to unwind.
	s.mu.Lock()
	for _, id := range s.order {
		if job := s.jobs[id]; !job.State().Terminal() {
			job.Cancel("server draining")
		}
	}
	s.mu.Unlock()
	grace, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.sched.Drain(grace); err != nil {
		return fmt.Errorf("service: %d jobs still in flight after drain grace period", s.sched.Backlog())
	}
	return nil
}

// Close releases the server's base context (after Drain). Jobs created
// later would be stillborn; call only on the way out.
func (s *Server) Close() { s.stopBase() }

// Job looks a job up by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) newID() string {
	n := atomic.AddUint64(&s.nextID, 1)
	return fmt.Sprintf("j-%06d", n)
}

func boolParam(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeError writes the structured error body; code 0 derives the HTTP
// status from the error's code.
func writeError(w http.ResponseWriter, jerr *Error, code int) {
	if code == 0 {
		code = HTTPStatus(jerr.Code)
	}
	writeJSON(w, code, map[string]*Error{"error": jerr})
}
