// Command obfuslockd serves the obfuslock job API over HTTP: locking
// (ObfusLock and the baseline schemes), the oracle-guided attacks,
// equivalence checking, model counting and skewness sampling, all as
// asynchronous jobs.
//
//	obfuslockd -addr localhost:8080 -job-workers 4 -queue-depth 64 \
//	    -tenants "ci=4,interactive=2" -max-timeout 2m -cache
//
// Endpoints (see DESIGN.md "Service layer" and README "Running as a
// service"):
//
//	POST   /v1/jobs            submit a job (202; ?wait=1 blocks)
//	GET    /v1/jobs            list jobs
//	GET    /v1/jobs/{id}       poll one job
//	GET    /v1/jobs/{id}/events  JSONL progress stream (?follow=1 tails)
//	DELETE /v1/jobs/{id}       cancel (propagates to the SAT solvers)
//	GET    /v1/schema          schema versions, kinds, schemes, attacks
//	GET    /healthz            liveness and drain state
//	GET    /metrics            metric registry (also /flight, /debug/pprof)
//
// Admission control: -queue-depth bounds the backlog (beyond it,
// submissions get 429/queue_full with Retry-After), -tenants sets
// per-tenant active-job quotas (429/quota_exhausted), and the -max-*
// flags cap every job's budget. Results are deterministic: a job's
// result bytes are identical whether the daemon is idle or saturated,
// with the cache cold or warm (cmd/loadgen asserts this).
//
// SIGINT/SIGTERM starts a graceful drain: new submissions get
// 503/draining, queued and running jobs finish (or are cancelled when
// -drain-timeout expires), the ledger is flushed, and the process exits
// zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"obfuslock"
	"obfuslock/internal/cliflags"
	"obfuslock/internal/obs"
	"obfuslock/internal/service"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "HTTP listen address")
	jobWorkers := flag.Int("job-workers", 0, "concurrent job executions (0: GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", service.DefaultQueueDepth, "backlog bound; submissions beyond it get 429/queue_full")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM before in-flight jobs are cancelled")
	tenants := flag.String("tenants", "", `per-tenant active-job quotas, e.g. "ci=4,interactive=2" (others use -max-active)`)
	maxActive := flag.Int("max-active", 0, "default per-tenant active-job quota (0: unlimited)")
	maxTimeout := flag.Duration("max-timeout", 0, "per-job wall-clock ceiling; jobs asking for nothing inherit it (0: none)")
	maxConflicts := flag.Int64("max-conflicts", 0, "per-solve SAT conflict ceiling (0: none)")

	var solver cliflags.Solver
	var cacheFlags cliflags.Cache
	var tele cliflags.Telemetry
	solver.Register(flag.CommandLine)
	cacheFlags.Register(flag.CommandLine)
	tele.Register(flag.CommandLine)
	flag.Parse()

	if err := cacheFlags.Validate(cliflags.Visited(flag.CommandLine)); err != nil {
		fmt.Fprintln(os.Stderr, "obfuslockd:", err)
		flag.Usage()
		os.Exit(2)
	}
	overrides, err := parseTenants(*tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obfuslockd:", err)
		flag.Usage()
		os.Exit(2)
	}

	sess, err := tele.Start("obfuslockd")
	if err != nil {
		fatal(err)
	}
	defer sess.Finish()
	sess.ArmFlightDump()
	defer sess.PanicDump()

	// The process-wide cache: every job of every tenant shares it. Safe
	// for byte-identity — results are pinned equal with the cache on,
	// off, cold or warm — so sharing only saves work, never changes it.
	cache, err := cacheFlags.Open(sess.Tracer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obfuslockd:", err)
		flag.Usage()
		os.Exit(2)
	}
	defer cache.Close()

	def := service.TenantLimits{
		MaxActive:     *maxActive,
		MaxTimeoutMS:  maxTimeout.Milliseconds(),
		MaxConflicts:  *maxConflicts,
		MaxSatWorkers: solver.Workers(),
	}
	for name, tl := range overrides {
		// Tenant overrides set the quota; budget ceilings are global.
		tl.MaxTimeoutMS = def.MaxTimeoutMS
		tl.MaxConflicts = def.MaxConflicts
		tl.MaxSatWorkers = def.MaxSatWorkers
		overrides[name] = tl
	}

	runner := obfuslock.NewJobRunner(obfuslock.JobRuntime{
		Cache: cache,
		Simp:  solver.SimpOptions(),
	})
	srv := service.New(service.Config{
		Runner:        withDIPBatchDefault(runner, solver.DIPBatch),
		Workers:       *jobWorkers,
		QueueDepth:    *queueDepth,
		DefaultLimits: def,
		Tenants:       overrides,
		Schemes:       obfuslock.JobSchemes(),
		Attacks:       attackNames(),
		Registry:      sess.Registry,
		ExtraSink:     sess.Sink,
	})

	// One mux serves both the job API and the debug endpoints, so
	// /metrics reflects the scheduler gauges and per-job span histograms
	// without a second listener (-debug-addr still works for a separate
	// one).
	tracer := sess.Tracer
	if tracer == nil {
		tracer = obs.NewWithRegistry(obs.Discard, sess.Registry)
	}
	dbg := obs.NewDebugMux(tracer, sess.Flight)
	mux := http.NewServeMux()
	mux.Handle("/v1/", srv.Handler())
	mux.Handle("/healthz", srv.Handler())
	mux.Handle("/metrics", dbg)
	mux.Handle("/flight", dbg)
	mux.Handle("/debug/", dbg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: mux}
	fmt.Fprintf(os.Stderr, "obfuslockd: serving on http://%s (workers=%d queue=%d)\n",
		ln.Addr(), *jobWorkers, *queueDepth)
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "obfuslockd: %v — draining (budget %v)\n", s, *drainTimeout)
	}

	// Two-phase shutdown: first drain the job engine (submissions get
	// 503 while in-flight jobs finish or, past the budget, are cancelled
	// down to their SAT conflict loops), then close the HTTP listener,
	// then flush the ledger.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	drainErr := srv.Drain(dctx)
	cancel()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	hs.Shutdown(sctx)
	cancel()
	srv.Close()
	if err := sess.WriteLedger(cache); err != nil {
		fmt.Fprintln(os.Stderr, "obfuslockd:", err)
	}
	if drainErr != nil {
		fatal(drainErr)
	}
	fmt.Fprintln(os.Stderr, "obfuslockd: drained cleanly")
}

// withDIPBatchDefault applies the daemon's -dip-batch as the default for
// attack jobs whose spec leaves the width unset. 0 (the flag default)
// changes nothing, keeping daemon transcripts identical to in-process
// RunJob calls with the same specs.
func withDIPBatchDefault(r obfuslock.JobRunner, dipBatch int) obfuslock.JobRunner {
	if dipBatch == 0 {
		return r
	}
	return service.RunnerFunc(func(ctx context.Context, spec service.JobSpec, tr *obs.Tracer) (service.JobResult, *service.Error) {
		if spec.Kind == service.KindAttack {
			if spec.AttackOptions == nil {
				spec.AttackOptions = &service.AttackOptions{}
			}
			if spec.AttackOptions.DIPBatch == 0 {
				ao := *spec.AttackOptions
				ao.DIPBatch = dipBatch
				spec.AttackOptions = &ao
			}
		}
		return r.Run(ctx, spec, tr)
	})
}

// attackNames lists the registered oracle-guided attacks for the
// server's admission-time validation and /v1/schema.
func attackNames() []string {
	var names []string
	for _, a := range obfuslock.Attacks() {
		names = append(names, a.Name())
	}
	return names
}

// parseTenants parses the -tenants syntax: comma-separated
// name=maxactive pairs.
func parseTenants(s string) (map[string]service.TenantLimits, error) {
	out := map[string]service.TenantLimits{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, quota, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -tenants entry %q (want name=maxactive)", part)
		}
		n, err := strconv.Atoi(quota)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -tenants quota in %q", part)
		}
		out[name] = service.TenantLimits{MaxActive: n}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obfuslockd:", err)
	os.Exit(1)
}
