package locking

import (
	"context"
	"fmt"

	"obfuslock/internal/aig"
	"obfuslock/internal/cec"
	"obfuslock/internal/sim"
)

// Locked is a key-protected circuit.
type Locked struct {
	// Scheme names the locking method ("obfuslock", "sarlock", ...).
	Scheme string
	// Enc is the encrypted netlist: inputs = original inputs ++ key inputs.
	Enc *aig.AIG
	// NumInputs is the number of original (non-key) inputs m.
	NumInputs int
	// KeyBits is the key length l.
	KeyBits int
	// Key is the correct key k*.
	Key []bool
}

// Validate checks internal consistency.
func (l *Locked) Validate() error {
	if l.Enc.NumInputs() != l.NumInputs+l.KeyBits {
		return fmt.Errorf("locking: enc has %d inputs, want %d original + %d key",
			l.Enc.NumInputs(), l.NumInputs, l.KeyBits)
	}
	if len(l.Key) != l.KeyBits {
		return fmt.Errorf("locking: key length %d != KeyBits %d", len(l.Key), l.KeyBits)
	}
	return nil
}

// ApplyKey binds the key inputs to constants, returning a circuit over the
// original inputs only.
func (l *Locked) ApplyKey(key []bool) *aig.AIG {
	if len(key) != l.KeyBits {
		panic("locking: key length mismatch")
	}
	ng := aig.New()
	ng.Name = l.Enc.Name
	piMap := make([]aig.Lit, l.Enc.NumInputs())
	for i := 0; i < l.NumInputs; i++ {
		piMap[i] = ng.AddInput(l.Enc.InputName(i))
	}
	for i := 0; i < l.KeyBits; i++ {
		if key[i] {
			piMap[l.NumInputs+i] = aig.ConstTrue
		} else {
			piMap[l.NumInputs+i] = aig.ConstFalse
		}
	}
	outs := ng.Import(l.Enc, piMap)
	for i, o := range outs {
		ng.AddOutput(o, l.Enc.OutputName(i))
	}
	return ng
}

// Unlocked applies the correct key.
func (l *Locked) Unlocked() *aig.AIG { return l.ApplyKey(l.Key) }

// BindInputs binds the first m primary inputs of enc to the constants x,
// keeping the remaining inputs (the key inputs, by convention) free. The
// result is the key-only cone used when recording I/O constraints in
// oracle-guided attacks.
func BindInputs(enc *aig.AIG, m int, x []bool) *aig.AIG {
	return BindInputsInto(aig.New(), enc, m, x)
}

// BindInputsInto is BindInputs building into dst, which is Reset first.
// Reusing one dst across calls keeps the per-call allocations independent
// of how often the cone is rebuilt (the attacks bind one pattern per DIP).
func BindInputsInto(dst, enc *aig.AIG, m int, x []bool) *aig.AIG {
	if len(x) != m || m > enc.NumInputs() {
		panic("locking: BindInputs shape mismatch")
	}
	ng := dst
	ng.Reset()
	piMap := make([]aig.Lit, enc.NumInputs())
	for i := 0; i < m; i++ {
		if x[i] {
			piMap[i] = aig.ConstTrue
		} else {
			piMap[i] = aig.ConstFalse
		}
	}
	for i := m; i < enc.NumInputs(); i++ {
		piMap[i] = ng.AddInput(enc.InputName(i))
	}
	outs := ng.Import(enc, piMap)
	for i, o := range outs {
		ng.AddOutput(o, enc.OutputName(i))
	}
	return ng
}

// KeyCone is the precomputed key-dependent skeleton of a locked
// circuit, the batched counterpart of BindInputs. Binding an input
// pattern folds every key-independent node to a constant, which costs a
// full-graph walk per pattern; a KeyCone amortizes that across a DIP
// batch: Simulate evaluates all key-independent nodes for up to 64
// patterns in one bit-parallel pass, and BindInto then walks only the
// (usually tiny) key-dependent cone per pattern. The bound cone is
// byte-identical to BindInputsInto's for the same pattern. A KeyCone is
// not safe for concurrent use: it reuses internal scratch across calls.
type KeyCone struct {
	enc  *aig.AIG
	m    int
	vars []uint32  // key-dependent non-input vars in output TFI, topological
	dep  []bool    // per var: depends on at least one key input
	mp   []aig.Lit // scratch: enc var -> bound lit, rewritten per BindInto
}

// NewKeyCone precomputes the key-dependent cone of enc, whose first m
// inputs are original inputs and whose remaining inputs are key inputs.
func NewKeyCone(enc *aig.AIG, m int) *KeyCone {
	dep := make([]bool, enc.MaxVar()+1)
	for i := m; i < enc.NumInputs(); i++ {
		dep[enc.InputVar(i)] = true
	}
	tfi := enc.TFI(enc.Outputs()...)
	var vars []uint32
	for v := uint32(1); v <= enc.MaxVar(); v++ {
		if enc.Op(v) == aig.OpInput {
			continue
		}
		for _, f := range enc.Fanins(v) {
			if dep[f.Var()] {
				dep[v] = true
				break
			}
		}
		if dep[v] && tfi[v] {
			vars = append(vars, v)
		}
	}
	return &KeyCone{enc: enc, m: m, vars: vars, dep: dep,
		mp: make([]aig.Lit, enc.MaxVar()+1)}
}

// Simulate evaluates the locked circuit on a batch of original-input
// patterns in one bit-parallel pass. Key inputs are driven with zero,
// which is irrelevant for the key-independent nodes BindInto reads.
func (kc *KeyCone) Simulate(xs [][]bool) *sim.Vectors {
	full := make([][]bool, len(xs))
	for j, x := range xs {
		if len(x) != kc.m {
			panic("locking: KeyCone pattern width mismatch")
		}
		p := make([]bool, kc.enc.NumInputs())
		copy(p, x)
		full[j] = p
	}
	return sim.Run(kc.enc, sim.Pack(full, kc.enc.NumInputs()))
}

// BindInto rebuilds dst (Reset first) as the key-only constraint cone of
// pattern j of a Simulate batch — the same graph BindInputsInto builds
// for that pattern, at cone-sized instead of circuit-sized cost.
func (kc *KeyCone) BindInto(dst *aig.AIG, v *sim.Vectors, j int) *aig.AIG {
	ng := dst
	ng.Reset()
	enc := kc.enc
	word, bit := j/64, uint(j)%64
	m := kc.mp
	for i := kc.m; i < enc.NumInputs(); i++ {
		m[enc.InputVar(i)] = ng.AddInput(enc.InputName(i))
	}
	// mf maps an enc literal: key-dependent vars were bound earlier in
	// the topological walk; everything else is a simulated constant.
	mf := func(l aig.Lit) aig.Lit {
		if kc.dep[l.Var()] {
			return m[l.Var()].NotIf(l.IsCompl())
		}
		if v.Node(l.Var())[word]>>bit&1 == 1 != l.IsCompl() {
			return aig.ConstTrue
		}
		return aig.ConstFalse
	}
	for _, nv := range kc.vars {
		fan := enc.Fanins(nv)
		switch enc.Op(nv) {
		case aig.OpAnd:
			m[nv] = ng.And(mf(fan[0]), mf(fan[1]))
		case aig.OpXor:
			m[nv] = ng.Xor(mf(fan[0]), mf(fan[1]))
		case aig.OpMaj:
			m[nv] = ng.Maj(mf(fan[0]), mf(fan[1]), mf(fan[2]))
		}
	}
	for i, o := range enc.Outputs() {
		ng.AddOutput(mf(o), enc.OutputName(i))
	}
	return ng
}

// VerifyKey checks by SAT whether key restores orig exactly. The proof
// runs unbounded; use VerifyKeyContext to make it cancellable.
func (l *Locked) VerifyKey(orig *aig.AIG, key []bool) (bool, error) {
	return l.VerifyKeyContext(context.Background(), orig, key)
}

// VerifyKeyContext is VerifyKey under a cancellation context; a cancelled
// proof reports an "equivalence undecided" error.
func (l *Locked) VerifyKeyContext(ctx context.Context, orig *aig.AIG, key []bool) (bool, error) {
	return l.VerifyKeyWith(ctx, orig, key, cec.DefaultOptions())
}

// VerifyKeyWith is VerifyKeyContext under explicit equivalence-check
// options — e.g. SAT sweeping (cec.SweepOptions), budgets or tracing.
func (l *Locked) VerifyKeyWith(ctx context.Context, orig *aig.AIG, key []bool, opt cec.Options) (bool, error) {
	r, err := cec.Check(ctx, orig, l.ApplyKey(key), opt)
	if err != nil {
		return false, err
	}
	if !r.Decided {
		return false, fmt.Errorf("locking: equivalence undecided")
	}
	return r.Equivalent, nil
}

// Verify checks internal consistency and that the stored key restores the
// original function exactly.
func (l *Locked) Verify(orig *aig.AIG) error {
	if err := l.Validate(); err != nil {
		return err
	}
	ok, err := l.VerifyKey(orig, l.Key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("locking: stored key does not restore the circuit")
	}
	return nil
}

// VerifyWith is Verify under a cancellation context and explicit
// equivalence-check options (e.g. the swept checker).
func (l *Locked) VerifyWith(ctx context.Context, orig *aig.AIG, opt cec.Options) error {
	if err := l.Validate(); err != nil {
		return err
	}
	ok, err := l.VerifyKeyWith(ctx, orig, l.Key, opt)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("locking: stored key does not restore the circuit")
	}
	return nil
}

// WrongKeyIsWrong checks that the given wrong key corrupts the function.
func (l *Locked) WrongKeyIsWrong(orig *aig.AIG, key []bool) (bool, error) {
	ok, err := l.VerifyKey(orig, key)
	return !ok, err
}

// Oracle models the attacker's working chip: query-only access to the
// original function. It counts queries.
type Oracle struct {
	g       *aig.AIG
	Queries int
}

// NewOracle wraps the original circuit.
func NewOracle(g *aig.AIG) *Oracle { return &Oracle{g: g} }

// Query returns the oracle outputs for one input pattern.
func (o *Oracle) Query(x []bool) []bool {
	o.Queries++
	return o.g.Eval(x)
}

// QueryBatch answers a whole batch of input patterns in one bit-parallel
// simulation pass: the patterns are packed 64 to a word (sim.Pack) and
// the circuit is walked once, instead of once per pattern as with
// repeated Query calls. The result is positionally aligned with xs and
// bit-exact with serial Query answers.
//
// Queries grows by len(xs): a batched query is charged exactly like
// len(xs) serial queries, so batched and serial attacks are compared at
// equal oracle query counts.
func (o *Oracle) QueryBatch(xs [][]bool) [][]bool {
	o.Queries += len(xs)
	if len(xs) == 0 {
		return nil
	}
	if len(xs) == 1 {
		return [][]bool{o.g.Eval(xs[0])}
	}
	v := sim.Run(o.g, sim.Pack(xs, o.g.NumInputs()))
	ys := make([][]bool, len(xs))
	for j := range ys {
		ys[j] = make([]bool, o.g.NumOutputs())
	}
	for i := 0; i < o.g.NumOutputs(); i++ {
		w := v.Output(i)
		for j := range xs {
			ys[j][i] = w[j/64]>>(uint(j)%64)&1 == 1
		}
	}
	return ys
}

// Circuit returns the wrapped original circuit. Attack portfolios use it
// to give every racing variant its own oracle (query counters are not
// shared across goroutines) and to verify the winning key.
func (o *Oracle) Circuit() *aig.AIG { return o.g }

// NumInputs returns the oracle interface width.
func (o *Oracle) NumInputs() int { return o.g.NumInputs() }

// NumOutputs returns the oracle output width.
func (o *Oracle) NumOutputs() int { return o.g.NumOutputs() }

// KeyInputLits returns the Enc literals of the key inputs.
func (l *Locked) KeyInputLits() []aig.Lit {
	lits := make([]aig.Lit, l.KeyBits)
	for i := range lits {
		lits[i] = l.Enc.Input(l.NumInputs + i)
	}
	return lits
}

// KeyName returns the conventional name of key input i.
func KeyName(i int) string { return fmt.Sprintf("k%d", i) }

// FromNetlist reconstructs a Locked from an encrypted netlist by the key
// naming convention: the trailing inputs named k0, k1, ... are the key.
// The secret key is unknown (nil) — this is the attacker's view.
func FromNetlist(enc *aig.AIG, scheme string) (*Locked, error) {
	n := enc.NumInputs()
	// Find the first input named "k0" such that all following inputs are
	// k1, k2, ... to the end.
	for start := 0; start < n; start++ {
		if enc.InputName(start) != KeyName(0) {
			continue
		}
		ok := true
		for i := start; i < n; i++ {
			if enc.InputName(i) != KeyName(i-start) {
				ok = false
				break
			}
		}
		if ok {
			return &Locked{
				Scheme:    scheme,
				Enc:       enc,
				NumInputs: start,
				KeyBits:   n - start,
			}, nil
		}
	}
	return nil, fmt.Errorf("locking: no trailing k0,k1,... key inputs found")
}
