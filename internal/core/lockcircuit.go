package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"obfuslock/internal/aig"
	"obfuslock/internal/memo"
	"obfuslock/internal/obs"
	"obfuslock/internal/sample"
	"obfuslock/internal/simp"
	"obfuslock/internal/skew"
)

// lockingCircuit is the highly skewed single-output circuit L built from
// nodes of the original circuit (Section IV-C of the paper).
type lockingCircuit struct {
	// Root literal of L inside the working graph.
	Root aig.Lit
	// Stages records the accepted chain prefixes, used as splitting stages.
	Stages []aig.Lit
	// SkewBits is the verified skewness of the root.
	SkewBits float64
	// Support is the PI positions feeding L.
	Support []int
	// Attachments counts accepted operator attachments.
	Attachments int
}

// buildOptions tunes the incremental construction.
type buildOptions struct {
	TargetBits    float64
	Seed          int64
	MaxCandidates int
	// GainBits is the initial required skewness gain per attachment.
	GainBits float64
	// GainDecay shrinks the requirement after a failed attachment round.
	GainDecay float64
	// TriesPerLevel attachment attempts before decaying the gain level.
	TriesPerLevel int
	// QuickSamples / RefineSamples for conditional probability estimates.
	QuickSamples  int
	RefineSamples int
	// MaxSupport bounds the key length (support of L).
	MaxSupport int
	// Span, when non-nil, receives per-attachment gain events.
	Span *obs.Span
	// SupportMargin is the minimum excess of L's support over its
	// skewness, in bits. The attack needs ~2^skew queries to hit L's
	// on-set but only 2^(support-skew) keys survive afterwards, so both
	// exponents must clear the attacker's budget.
	SupportMargin float64
	// Simp controls CNF preprocessing inside the witness samplers (zero
	// value: enabled).
	Simp simp.Options
	// Cache memoizes splitting estimates and witness pools (nil: disabled).
	Cache *memo.Cache
}

func defaultBuildOptions(target float64, seed int64) buildOptions {
	return buildOptions{
		TargetBits:    target,
		Seed:          seed,
		MaxCandidates: 48,
		GainBits:      2.5,
		GainDecay:     0.7,
		TriesPerLevel: 6,
		QuickSamples:  60,
		RefineSamples: 200,
		MaxSupport:    0, // derived from target when 0
		SupportMargin: 8,
	}
}

// condEstimate is the memoized form of one conditional-probability query.
type condEstimate struct {
	P  float64 `json:"p"`
	OK bool    `json:"ok"`
}

// condProb estimates P(target=1 | cond) with n witnesses of cond. The
// estimate is a pure function of the concrete graph, the literals, the
// sample budget and the seed (the cube sampler's conflict budgets are
// deterministic), so it memoizes under the graph's exact structural hash —
// a warm cache replays the construction's sampling verbatim.
func condProb(g *aig.AIG, target, cond aig.Lit, n int, seed int64, so simp.Options, cache *memo.Cache) (float64, bool) {
	compute := func() condEstimate {
		s := sample.NewCubeSampler(g, cond, seed)
		s.Simp = so
		p, got := sample.ConditionalProbability(g, target, cond, s, n)
		return condEstimate{P: p, OK: got > 0}
	}
	if !cache.Enabled() {
		e := compute()
		return e.P, e.OK
	}
	key := fmt.Sprintf("core.condprob|%016x|t=%d|c=%d|n=%d|seed=%d|simp=%t.%t.%t.%t.%d",
		g.StructuralHash(), target, cond, n, seed,
		so.Disable, so.NoVarElim, so.NoSubsume, so.NoVivify, so.InprocessEvery)
	e, err := memo.Do(cache, key, func() (condEstimate, error) { return compute(), nil })
	if err != nil {
		e = compute()
	}
	return e.P, e.OK
}

// buildLockingCircuit incrementally constructs L inside work (a private
// copy of the original circuit). Each iteration tentatively attaches an
// operator over candidate nodes to the head of the chain, estimates the
// skewness gain by conditional sampling (Boolean multi-level splitting
// along the chain prefixes), and accepts the attachment when the gain
// clears the current level; otherwise the level decays.
func buildLockingCircuit(work *aig.AIG, opt buildOptions) (*lockingCircuit, error) {
	m := work.NumInputs()
	if float64(m) < opt.TargetBits {
		return nil, fmt.Errorf("core: circuit has %d inputs, fewer than the %g-bit skewness target",
			m, opt.TargetBits)
	}
	if opt.MaxSupport == 0 {
		opt.MaxSupport = int(2.5*opt.TargetBits) + 8
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Candidate pool: algebraically skewed nodes, rare phase, preferring
	// modest support (small keys), plus raw input literals as filler.
	cands := skew.TopSkewedNodes(work, opt.MaxCandidates, 2)
	type scored struct {
		lit  aig.Lit
		sup  []int
		bits float64
	}
	probs := skew.Algebraic(work)
	var pool []scored
	for _, c := range cands {
		sup := work.Support(c)
		if len(sup) == 0 {
			continue
		}
		pool = append(pool, scored{c, sup, skew.Bits(skew.AlgebraicLit(probs, c))})
	}
	for i := 0; i < m; i++ {
		l := work.Input(i)
		if rng.Intn(2) == 0 {
			l = l.Not()
		}
		pool = append(pool, scored{l, []int{i}, 1})
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("core: no usable candidate nodes")
	}
	// Prefer high skew then small support.
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].bits != pool[j].bits {
			return pool[i].bits > pool[j].bits
		}
		return len(pool[i].sup) < len(pool[j].sup)
	})

	// The chain seed must be a common event (a few bits at most): seeding
	// with an already-rare existing node would make L a raw copy of a
	// C node, whose structured on-set can collapse the effective key
	// space (e.g. equality cones are shift-invariant) and whose restore
	// unit would be a verbatim cone copy. Composition with randomly drawn
	// operators is what randomizes the locking pattern.
	lc := &lockingCircuit{}
	seed := pool[0]
	for _, cand := range pool {
		if cand.bits <= 4 {
			seed = cand
			break
		}
	}
	lc.Root = seed.lit
	lc.Stages = []aig.Lit{seed.lit}
	// Measure the seed by Monte Carlo (it is a common event by design).
	p := skew.MonteCarlo(work, lc.Root, 64, opt.Seed)
	if p > 0.5 {
		lc.Root = lc.Root.Not()
		lc.Stages[0] = lc.Root
		p = 1 - p
	}
	if p == 0 {
		// Extremely rare already or constant: re-measure via splitting.
		p = math.Pow(2, -skew.SplittingBits(work, lc.Root, splitOpts(opt, 0)))
	}
	curBits := skew.Bits(p)
	curProb := p

	const minAttachments = 3
	// hardened reports whether L's on-set avoids the two degeneracies that
	// collapse SAT-attack security regardless of skewness:
	//
	//   - membership of attacker-typical points (all-zeros / all-ones):
	//     a default-phase DIP that lands in the on-set reveals the
	//     surviving key coset immediately;
	//   - an affine (coset-structured) on-set — AND chains of parity or
	//     equality cones have this shape — for which every key in the
	//     shifted coset is exactly correct, so one lucky DIP ends the
	//     attack. The statistical test XORs sampled witness triples: for
	//     an affine on-set the triple XOR always stays inside.
	//
	// Majority attachments break affine structure (their on-set is a
	// union, not an intersection, of constraints).
	hardened := func() bool {
		zeros := make([]bool, m)
		ones := make([]bool, m)
		for i := range ones {
			ones[i] = true
		}
		v := work.EvalLits(zeros, lc.Root)
		if v[0] {
			return false
		}
		if work.EvalLits(ones, lc.Root)[0] {
			return false
		}
		ps := &sample.PoolSampler{
			Cache: opt.Cache,
			Key: fmt.Sprintf("core.harden|%016x|root=%d|seed=%d|simp=%t.%t.%t.%t.%d",
				work.StructuralHash(), lc.Root, opt.Seed^0x9e3779b9,
				opt.Simp.Disable, opt.Simp.NoVarElim, opt.Simp.NoSubsume, opt.Simp.NoVivify, opt.Simp.InprocessEvery),
			New: func() sample.Sampler {
				cs := sample.NewCubeSampler(work, lc.Root, opt.Seed^0x9e3779b9)
				cs.Simp = opt.Simp
				return cs
			},
		}
		wit := ps.Sample(6)
		if len(wit) < 3 {
			return true // cannot test; construction estimates vouch for satisfiability
		}
		for a := 0; a < len(wit); a++ {
			for b := a + 1; b < len(wit); b++ {
				for c := b + 1; c < len(wit); c++ {
					x := make([]bool, m)
					for i := range x {
						x[i] = wit[a][i] != wit[b][i] != wit[c][i]
					}
					if !work.EvalLits(x, lc.Root)[0] {
						return true // triple escapes: not affine
					}
				}
			}
		}
		return false
	}
	gain := opt.GainBits
	stall := 0
	maxSupport := opt.MaxSupport
	curSup := map[int]bool{}
	for _, s := range seed.sup {
		curSup[s] = true
	}
	unionSize := func(sup []int) int {
		n := len(curSup)
		for _, s := range sup {
			if !curSup[s] {
				n++
			}
		}
		return n
	}
	// The support must exceed the skewness by the margin, capped by what
	// the circuit can offer at all.
	marginFor := func(bits float64) float64 {
		limit := float64(m) - bits
		if limit < opt.SupportMargin {
			return math.Max(0, limit)
		}
		return opt.SupportMargin
	}
	supportOK := func() bool {
		return float64(len(curSup)) >= curBits+marginFor(curBits)
	}
	hardenOK := false
	hardenChecks := 0
	for curBits < opt.TargetBits || lc.Attachments < minAttachments || !supportOK() || !hardenOK {
		basicsOK := curBits >= opt.TargetBits && lc.Attachments >= minAttachments && supportOK()
		if basicsOK {
			// Only pay for the hardening check once the cheap goals hold.
			hardenChecks++
			if hardened() || hardenChecks > 10 {
				hardenOK = true
				continue
			}
		}
		hardenMode := basicsOK
		supportMode := !supportOK() && curBits >= opt.TargetBits
		accepted := false
		for try := 0; try < opt.TriesPerLevel; try++ {
			cand := pool[rng.Intn(len(pool))]
			// Respect the support bound (key length control); the cap is
			// soft — it relaxes when construction would otherwise stall.
			u := unionSize(cand.sup)
			if u > maxSupport {
				continue
			}
			if supportMode && u <= len(curSup) {
				continue // need candidates bringing fresh inputs
			}
			op := rng.Intn(4)
			if hardenMode || supportMode {
				// Majority attachments widen the support (and usually
				// lower the skewness, which the main loop re-earns) while
				// breaking affine structure.
				op = 3
			}
			var tentative aig.Lit
			switch op {
			case 0, 1: // AND with candidate (the workhorse)
				tentative = work.And(lc.Root, cand.lit)
			case 2: // AND with complement (diversification)
				tentative = work.And(lc.Root, cand.lit.Not())
			default: // MAJ with two candidates: maj(cur, c1, c2)
				c2 := pool[rng.Intn(len(pool))]
				tentative = work.Maj(lc.Root, cand.lit, c2.lit)
			}
			if tentative == lc.Root || tentative.IsConst() {
				continue
			}
			newProb, ok := chainProb(work, tentative, lc.Root, curProb, opt.QuickSamples, opt.Seed+int64(lc.Attachments)*31+int64(try), opt.Simp, opt.Cache)
			if !ok || newProb <= 0 {
				continue
			}
			g := skew.Bits(newProb) - curBits
			need := gain
			if hardenMode {
				// Majority steps commonly cost skew (their on-set grows);
				// the main loop re-earns it afterwards.
				need = -6
			}
			if supportMode {
				// Fresh-support attachments are about width, not depth.
				need = -6
			}
			if g >= need {
				// Accept; refine the estimate with a larger budget.
				refined, ok2 := chainProb(work, tentative, lc.Root, curProb, opt.RefineSamples, opt.Seed^0x5bd1e995+int64(lc.Attachments), opt.Simp, opt.Cache)
				if ok2 && refined > 0 {
					newProb = refined
				}
				prevBits := curBits
				lc.Root = tentative
				lc.Stages = append(lc.Stages, tentative)
				for _, s := range work.Support(tentative) {
					curSup[s] = true
				}
				curProb = newProb
				curBits = skew.Bits(newProb)
				lc.Attachments++
				if opt.Span.Enabled() {
					opt.Span.Event("attach",
						obs.Int("n", int64(lc.Attachments)),
						obs.Int("op", int64(op)),
						obs.Float("gain_bits", curBits-prevBits),
						obs.Float("skew_bits", curBits),
						obs.Int("support", int64(len(curSup))))
				}
				accepted = true
				gain = opt.GainBits
				break
			}
		}
		if !accepted {
			gain *= opt.GainDecay
			stall++
			if stall%12 == 0 {
				// The support cap is binding or the pool is correlated;
				// loosen the cap before giving up.
				maxSupport += 8
			}
			if stall > 60 {
				return nil, fmt.Errorf("core: locking-circuit construction stalled at %.1f bits (target %g)",
					curBits, opt.TargetBits)
			}
			continue
		}
		stall = 0
	}
	lc.SkewBits = curBits
	lc.Support = work.Support(lc.Root)
	return lc, nil
}

// chainProb estimates P(next=1) from P(cur=1) and sampled conditionals —
// one splitting step along the chain.
func chainProb(g *aig.AIG, next, cur aig.Lit, curProb float64, samples int, seed int64, so simp.Options, cache *memo.Cache) (float64, bool) {
	pGiven, ok := condProb(g, next, cur, samples, seed, so, cache)
	if !ok {
		return 0, false
	}
	// P(next | !cur): the complement of a rare event is common — estimate
	// by plain Monte Carlo conditioned by rejection (cheap), falling back
	// to the SAT sampler only when rejection fails.
	pGivenNot, ok2 := condProbRejection(g, next, cur.Not(), samples, seed+1)
	if !ok2 {
		pGivenNot, _ = condProb(g, next, cur.Not(), samples/2, seed+2, so, cache)
	}
	return pGiven*curProb + pGivenNot*(1-curProb), true
}

// condProbRejection estimates P(target|cond) by rejection sampling random
// patterns; works when cond is common.
func condProbRejection(g *aig.AIG, target, cond aig.Lit, want int, seed int64) (float64, bool) {
	rng := rand.New(rand.NewSource(seed))
	probe := g.Copy()
	probe.AddOutput(cond, "cond")
	probe.AddOutput(target, "target")
	nc := probe.NumOutputs() - 2
	nt := probe.NumOutputs() - 1
	pat := make([]bool, g.NumInputs())
	hits, accepted := 0, 0
	for trial := 0; trial < want*8 && accepted < want; trial++ {
		for i := range pat {
			pat[i] = rng.Intn(2) == 1
		}
		out := probe.Eval(pat)
		if !out[nc] {
			continue
		}
		accepted++
		if out[nt] {
			hits++
		}
	}
	if accepted < want/2 {
		return 0, false
	}
	return float64(hits) / float64(accepted), true
}

func splitOpts(opt buildOptions, round int64) skew.SplittingOptions {
	so := skew.DefaultSplittingOptions()
	so.Seed = opt.Seed + round
	so.SamplesPerStage = opt.RefineSamples
	so.Simp = opt.Simp
	so.Cache = opt.Cache
	return so
}
