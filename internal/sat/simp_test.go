package sat

import (
	"bytes"
	"math/rand"
	"testing"
)

// randomInstance builds a random CNF over nVars with mixed clause
// lengths (1..4), biased toward 3. Returns the clause list so tests can
// re-add it to a second solver and evaluate models against the
// original, unsimplified formula.
func randomInstance(rng *rand.Rand, nVars, nClauses int) [][]Lit {
	cls := make([][]Lit, 0, nClauses)
	for i := 0; i < nClauses; i++ {
		n := 3
		switch rng.Intn(6) {
		case 0:
			n = 2
		case 1:
			n = 4
		case 2:
			if rng.Intn(4) == 0 {
				n = 1
			}
		}
		seen := map[int]bool{}
		var cl []Lit
		for len(cl) < n {
			v := rng.Intn(nVars)
			if seen[v] {
				continue
			}
			seen[v] = true
			cl = append(cl, MkLit(v, rng.Intn(2) == 1))
		}
		cls = append(cls, cl)
	}
	return cls
}

func loadInstance(cls [][]Lit, nVars int) *Solver {
	s := New()
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	for _, cl := range cls {
		s.AddClause(cl...)
	}
	return s
}

// modelSatisfies checks a model (from Model()) against the original
// clause list — including clauses over eliminated variables, whose
// values must have been reconstructed.
func modelSatisfies(model []bool, cls [][]Lit) bool {
	for _, cl := range cls {
		sat := false
		for _, l := range cl {
			if model[l.Var()] != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// TestSimplifyCrossCheck solves 100 random instances twice — plain and
// simplified — and demands identical statuses plus a reconstructed
// model that satisfies every original clause.
func TestSimplifyCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		nVars := 8 + rng.Intn(40)
		nClauses := nVars + rng.Intn(4*nVars)
		cls := randomInstance(rng, nVars, nClauses)

		plain := loadInstance(cls, nVars)
		want := plain.Solve()

		simped := loadInstance(cls, nVars)
		simped.Simplify(DefaultSimpOptions())
		got := simped.Solve()

		if got != want {
			t.Fatalf("instance %d: plain=%v simplified=%v", i, want, got)
		}
		if got == Sat && !modelSatisfies(simped.Model(), cls) {
			t.Fatalf("instance %d: reconstructed model violates an original clause", i)
		}
	}
}

// TestSimplifyAssumptionsAfterElimination freezes an interface subset,
// simplifies, and cross-checks assumption solving against a plain
// solver over every assumption pattern of the interface.
func TestSimplifyAssumptionsAfterElimination(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		nVars := 10 + rng.Intn(20)
		cls := randomInstance(rng, nVars, 3*nVars)
		const nIface = 4

		plain := loadInstance(cls, nVars)
		simped := loadInstance(cls, nVars)
		for v := 0; v < nIface; v++ {
			simped.Freeze(v)
		}
		simped.Simplify(DefaultSimpOptions())

		for pat := 0; pat < 1<<nIface; pat++ {
			assumps := make([]Lit, nIface)
			for v := 0; v < nIface; v++ {
				assumps[v] = MkLit(v, pat>>v&1 == 1)
			}
			want := plain.Solve(assumps...)
			got := simped.Solve(assumps...)
			if got != want {
				t.Fatalf("instance %d pattern %b: plain=%v simplified=%v", i, pat, want, got)
			}
			if got == Sat {
				if !modelSatisfies(simped.Model(), cls) {
					t.Fatalf("instance %d pattern %b: bad reconstructed model", i, pat)
				}
				for v := 0; v < nIface; v++ {
					if simped.ModelValue(assumps[v]) != true {
						t.Fatalf("instance %d pattern %b: assumption %d not honored", i, pat, v)
					}
				}
			}
		}
	}
}

// TestSimplifyIncrementalClausesOnFrozen checks the incremental
// contract: clauses added after Simplify over frozen variables keep the
// solver sound.
func TestSimplifyIncrementalClausesOnFrozen(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		nVars := 12 + rng.Intn(16)
		cls := randomInstance(rng, nVars, 3*nVars)
		plain := loadInstance(cls, nVars)
		simped := loadInstance(cls, nVars)
		for v := 0; v < 5; v++ {
			simped.Freeze(v)
		}
		simped.Simplify(DefaultSimpOptions())

		extra := [][]Lit{
			{MkLit(0, false), MkLit(1, true)},
			{MkLit(2, false), MkLit(3, false), MkLit(4, true)},
			{MkLit(1, false), MkLit(4, false)},
		}
		for _, cl := range extra {
			plain.AddClause(cl...)
			simped.AddClause(cl...)
			want := plain.Solve()
			got := simped.Solve()
			if got != want {
				t.Fatalf("instance %d: after extra clause: plain=%v simplified=%v", i, want, got)
			}
			if got == Sat && !modelSatisfies(simped.Model(), cls) {
				t.Fatalf("instance %d: model violates original clauses", i)
			}
		}
	}
}

// TestSimplifyPanicsOnEliminatedUse pins the misuse contract: touching
// an eliminated variable with a new clause or assumption panics instead
// of silently corrupting the answer.
func TestSimplifyPanicsOnEliminatedUse(t *testing.T) {
	s := New()
	// x0 appears only in two-literal chains and nothing is frozen, so
	// elimination will remove some variable; find one.
	for i := 0; i < 8; i++ {
		s.NewVar()
	}
	for i := 0; i+1 < 8; i++ {
		s.AddClause(MkLit(i, true), MkLit(i+1, false))
	}
	s.Simplify(DefaultSimpOptions())
	victim := -1
	for v := 0; v < 8; v++ {
		if s.Eliminated(v) {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Skip("no variable eliminated on this toy instance")
	}
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic on eliminated variable", name)
			}
		}()
		f()
	}
	assertPanics("AddClause", func() { s.AddClause(MkLit(victim, false)) })
	assertPanics("Solve assumption", func() { s.Solve(MkLit(victim, false)) })
}

// TestWriteDimacsAfterSimplify round-trips the simplified clause
// database through DIMACS and demands the same status as the original.
func TestWriteDimacsAfterSimplify(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20; i++ {
		nVars := 10 + rng.Intn(20)
		cls := randomInstance(rng, nVars, 3*nVars)
		plain := loadInstance(cls, nVars)
		want := plain.Solve()

		simped := loadInstance(cls, nVars)
		simped.Simplify(DefaultSimpOptions())
		var buf bytes.Buffer
		if err := simped.WriteDimacs(&buf); err != nil {
			t.Fatal(err)
		}
		re, err := ReadDimacs(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got := re.Solve(); got != want {
			t.Fatalf("instance %d: dimacs round-trip: plain=%v reread=%v", i, want, got)
		}
	}
}

// TestSimplifyUnsatDetected checks that Simplify itself reports
// unsatisfiability discovered during preprocessing.
func TestSimplifyUnsatDetected(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, false), MkLit(b, true))
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.AddClause(MkLit(a, true), MkLit(b, true))
	if s.Simplify(DefaultSimpOptions()) {
		t.Fatal("expected Simplify to refute the formula")
	}
	if s.Solve() != Unsat {
		t.Fatal("solver should be UNSAT after refuting Simplify")
	}
}

// TestSimplifyStats sanity-checks that the counters move on an
// instance constructed to exercise each technique.
func TestSimplifyStats(t *testing.T) {
	s := New()
	n := 30
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	// Subsumption: (0 1) subsumes (0 1 2).
	s.AddClause(MkLit(0, false), MkLit(1, false))
	s.AddClause(MkLit(0, false), MkLit(1, false), MkLit(2, false))
	// Chain for elimination.
	for i := 3; i+1 < n; i++ {
		s.AddClause(MkLit(i, true), MkLit(i+1, false))
	}
	if !s.Simplify(DefaultSimpOptions()) {
		t.Fatal("unexpected UNSAT")
	}
	st := s.SimpStats()
	if st.SubsumedClauses == 0 {
		t.Error("expected at least one subsumed clause")
	}
	if st.ElimVars == 0 {
		t.Error("expected at least one eliminated variable")
	}
	if st.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", st.Rounds)
	}
	if s.Solve() != Sat {
		t.Fatal("chain instance should be SAT")
	}
}
