// Package aig implements And-Inverter Graphs (AIGs) and extended AIGs
// (XAIGs) with XOR and majority nodes, the netlist representation used
// throughout the ObfusLock framework.
//
// Nodes are identified by variables; edges are literals that carry an
// optional complement (inverter) bit, following the convention used by ABC:
// lit = 2*var + phase. Variable 0 is the constant-false node, so literal 0
// is constant false and literal 1 is constant true.
//
// Graphs are structurally hashed: And, Xor and Maj return an existing node
// when an equivalent one (up to operand order and inverter canonicalization)
// already exists. Nodes are created in topological order, so iterating
// variables from 1 to MaxVar visits fanins before fanouts.
package aig

import (
	"fmt"
	"sort"
)

// Lit is an edge in the graph: a node variable with an optional complement.
type Lit uint32

// Constant literals (variable 0 is the constant-false node).
const (
	ConstFalse Lit = 0
	ConstTrue  Lit = 1
)

// MkLit builds a literal from a variable index and a complement flag.
func MkLit(v uint32, compl bool) Lit {
	if compl {
		return Lit(2*v + 1)
	}
	return Lit(2 * v)
}

// Var returns the variable the literal points to.
func (l Lit) Var() uint32 { return uint32(l) >> 1 }

// IsCompl reports whether the literal carries an inverter.
func (l Lit) IsCompl() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotIf complements the literal when c is true.
func (l Lit) NotIf(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// Regular strips the complement bit.
func (l Lit) Regular() Lit { return l &^ 1 }

// IsConst reports whether the literal is one of the two constants.
func (l Lit) IsConst() bool { return l.Var() == 0 }

func (l Lit) String() string {
	if l.IsCompl() {
		return fmt.Sprintf("!n%d", l.Var())
	}
	return fmt.Sprintf("n%d", l.Var())
}

// Op is the function computed by a node.
type Op uint8

// Node operations. OpConst and OpInput have no fanins.
const (
	OpConst Op = iota
	OpInput
	OpAnd
	OpXor
	OpMaj
)

func (o Op) String() string {
	switch o {
	case OpConst:
		return "const"
	case OpInput:
		return "input"
	case OpAnd:
		return "and"
	case OpXor:
		return "xor"
	case OpMaj:
		return "maj"
	}
	return "?"
}

type node struct {
	op  Op
	fan [3]Lit
}

type strashKey struct {
	op         Op
	f0, f1, f2 Lit
}

// AIG is a (possibly extended) And-Inverter Graph.
//
// The zero value is not ready for use; construct graphs with New.
type AIG struct {
	Name string

	nodes   []node
	pis     []uint32 // variables of primary inputs, in creation order
	pos     []Lit
	piNames []string
	poNames []string
	strash  map[strashKey]uint32
	piIndex map[uint32]int // var -> position in pis
}

// New returns an empty graph containing only the constant node.
func New() *AIG {
	g := &AIG{
		nodes:   make([]node, 1, 64),
		strash:  make(map[strashKey]uint32),
		piIndex: make(map[uint32]int),
	}
	g.nodes[0] = node{op: OpConst}
	return g
}

// MaxVar returns the largest variable index in use. Variables run from 0
// (constant) to MaxVar inclusive.
func (g *AIG) MaxVar() uint32 { return uint32(len(g.nodes) - 1) }

// NumNodes returns the number of logic nodes (And/Xor/Maj), the usual
// "AIG size" metric. Inputs and the constant are not counted.
func (g *AIG) NumNodes() int {
	return len(g.nodes) - 1 - len(g.pis)
}

// NumInputs returns the number of primary inputs.
func (g *AIG) NumInputs() int { return len(g.pis) }

// NumOutputs returns the number of primary outputs.
func (g *AIG) NumOutputs() int { return len(g.pos) }

// Op returns the operation of variable v.
func (g *AIG) Op(v uint32) Op { return g.nodes[v].op }

// Fanin returns the i-th fanin literal of variable v.
// And/Xor have fanins 0 and 1; Maj also has fanin 2.
func (g *AIG) Fanin(v uint32, i int) Lit { return g.nodes[v].fan[i] }

// Fanins returns the fanin literals of variable v (a view; do not modify).
func (g *AIG) Fanins(v uint32) []Lit {
	n := &g.nodes[v]
	switch n.op {
	case OpAnd, OpXor:
		return n.fan[:2]
	case OpMaj:
		return n.fan[:3]
	}
	return nil
}

// AddInput creates a new primary input and returns its (positive) literal.
func (g *AIG) AddInput(name string) Lit {
	v := uint32(len(g.nodes))
	g.nodes = append(g.nodes, node{op: OpInput})
	g.piIndex[v] = len(g.pis)
	g.pis = append(g.pis, v)
	if name == "" {
		name = fmt.Sprintf("pi%d", len(g.pis)-1)
	}
	g.piNames = append(g.piNames, name)
	return MkLit(v, false)
}

// AddInputs creates n primary inputs with default names.
func (g *AIG) AddInputs(n int) []Lit {
	lits := make([]Lit, n)
	for i := range lits {
		lits[i] = g.AddInput("")
	}
	return lits
}

// AddOutput registers a primary output driven by lit.
func (g *AIG) AddOutput(lit Lit, name string) {
	if name == "" {
		name = fmt.Sprintf("po%d", len(g.pos))
	}
	g.pos = append(g.pos, lit)
	g.poNames = append(g.poNames, name)
}

// Output returns the i-th primary output literal.
func (g *AIG) Output(i int) Lit { return g.pos[i] }

// SetOutput redirects the i-th primary output.
func (g *AIG) SetOutput(i int, lit Lit) { g.pos[i] = lit }

// Outputs returns a copy of the primary output literals.
func (g *AIG) Outputs() []Lit { return append([]Lit(nil), g.pos...) }

// Input returns the literal of the i-th primary input.
func (g *AIG) Input(i int) Lit { return MkLit(g.pis[i], false) }

// Inputs returns the literals of all primary inputs.
func (g *AIG) Inputs() []Lit {
	lits := make([]Lit, len(g.pis))
	for i, v := range g.pis {
		lits[i] = MkLit(v, false)
	}
	return lits
}

// InputVar returns the variable of the i-th primary input.
func (g *AIG) InputVar(i int) uint32 { return g.pis[i] }

// InputIndex returns the PI position of variable v and whether v is a PI.
func (g *AIG) InputIndex(v uint32) (int, bool) {
	i, ok := g.piIndex[v]
	return i, ok
}

// InputName returns the name of the i-th primary input.
func (g *AIG) InputName(i int) string { return g.piNames[i] }

// OutputName returns the name of the i-th primary output.
func (g *AIG) OutputName(i int) string { return g.poNames[i] }

// SetInputName renames the i-th primary input.
func (g *AIG) SetInputName(i int, name string) { g.piNames[i] = name }

// SetOutputName renames the i-th primary output.
func (g *AIG) SetOutputName(i int, name string) { g.poNames[i] = name }

func (g *AIG) newNode(op Op, f0, f1, f2 Lit) Lit {
	v := uint32(len(g.nodes))
	g.nodes = append(g.nodes, node{op: op, fan: [3]Lit{f0, f1, f2}})
	g.strash[strashKey{op, f0, f1, f2}] = v
	return MkLit(v, false)
}

func (g *AIG) lookup(op Op, f0, f1, f2 Lit) (Lit, bool) {
	if v, ok := g.strash[strashKey{op, f0, f1, f2}]; ok {
		return MkLit(v, false), true
	}
	return 0, false
}

// And returns a literal computing a AND b, reusing an existing node when
// possible and simplifying constant and trivially redundant cases.
func (g *AIG) And(a, b Lit) Lit {
	// Constant and trivial cases.
	if a == ConstFalse || b == ConstFalse || a == b.Not() {
		return ConstFalse
	}
	if a == ConstTrue || a == b {
		return b
	}
	if b == ConstTrue {
		return a
	}
	if a > b {
		a, b = b, a
	}
	if l, ok := g.lookup(OpAnd, a, b, 0); ok {
		return l
	}
	return g.newNode(OpAnd, a, b, 0)
}

// Or returns a literal computing a OR b.
func (g *AIG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// AndN conjoins an arbitrary number of literals (balanced tree).
func (g *AIG) AndN(lits ...Lit) Lit {
	switch len(lits) {
	case 0:
		return ConstTrue
	case 1:
		return lits[0]
	}
	mid := len(lits) / 2
	return g.And(g.AndN(lits[:mid]...), g.AndN(lits[mid:]...))
}

// OrN disjoins an arbitrary number of literals (balanced tree).
func (g *AIG) OrN(lits ...Lit) Lit {
	switch len(lits) {
	case 0:
		return ConstFalse
	case 1:
		return lits[0]
	}
	mid := len(lits) / 2
	return g.Or(g.OrN(lits[:mid]...), g.OrN(lits[mid:]...))
}

// Xor returns a literal computing a XOR b as a native XOR node (extended
// AIG). The stored node is canonical: both fanins regular, ordered, with the
// parity pushed to the output literal.
func (g *AIG) Xor(a, b Lit) Lit {
	compl := a.IsCompl() != b.IsCompl()
	a, b = a.Regular(), b.Regular()
	if a == b {
		return ConstFalse.NotIf(compl)
	}
	if a == ConstFalse {
		return b.NotIf(compl)
	}
	if b == ConstFalse {
		return a.NotIf(compl)
	}
	if a > b {
		a, b = b, a
	}
	if l, ok := g.lookup(OpXor, a, b, 0); ok {
		return l.NotIf(compl)
	}
	return g.newNode(OpXor, a, b, 0).NotIf(compl)
}

// XorAnd returns a XOR b built from AND nodes only (no native XOR node).
func (g *AIG) XorAnd(a, b Lit) Lit {
	return g.And(g.And(a, b.Not()).Not(), g.And(a.Not(), b).Not()).Not()
}

// Maj returns a literal computing the majority of a, b, c as a native MAJ
// node. Canonicalization: operands sorted; if two or more operands are
// complemented, all are flipped and the complement moves to the output
// (majority is self-dual).
func (g *AIG) Maj(a, b, c Lit) Lit {
	// Pairwise simplifications.
	if a == b {
		return a
	}
	if a == c {
		return a
	}
	if b == c {
		return b
	}
	if a == b.Not() {
		return c
	}
	if a == c.Not() {
		return b
	}
	if b == c.Not() {
		return a
	}
	// Constants.
	if a == ConstFalse {
		return g.And(b, c)
	}
	if a == ConstTrue {
		return g.Or(b, c)
	}
	if b == ConstFalse {
		return g.And(a, c)
	}
	if b == ConstTrue {
		return g.Or(a, c)
	}
	if c == ConstFalse {
		return g.And(a, b)
	}
	if c == ConstTrue {
		return g.Or(a, b)
	}
	compl := false
	nc := 0
	if a.IsCompl() {
		nc++
	}
	if b.IsCompl() {
		nc++
	}
	if c.IsCompl() {
		nc++
	}
	if nc >= 2 {
		a, b, c = a.Not(), b.Not(), c.Not()
		compl = true
	}
	s := []Lit{a, b, c}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	a, b, c = s[0], s[1], s[2]
	if l, ok := g.lookup(OpMaj, a, b, c); ok {
		return l.NotIf(compl)
	}
	return g.newNode(OpMaj, a, b, c).NotIf(compl)
}

// MajAnd returns the majority of a, b, c built from AND nodes only.
func (g *AIG) MajAnd(a, b, c Lit) Lit {
	return g.Or(g.And(a, b), g.Or(g.And(a, c), g.And(b, c)))
}

// Mux returns a literal computing "if s then t else e" from AND nodes.
func (g *AIG) Mux(s, t, e Lit) Lit {
	return g.And(g.And(s, t).Not(), g.And(s.Not(), e).Not()).Not()
}

// IsPureAnd reports whether the graph contains only AND logic nodes.
func (g *AIG) IsPureAnd() bool {
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if op := g.nodes[v].op; op == OpXor || op == OpMaj {
			return false
		}
	}
	return true
}

// Levels returns the logic level of every variable (inputs and the constant
// are level 0) and the maximum level over the primary outputs.
func (g *AIG) Levels() ([]int, int) {
	lv := make([]int, len(g.nodes))
	for v := uint32(1); v <= g.MaxVar(); v++ {
		n := &g.nodes[v]
		if n.op == OpInput {
			continue
		}
		m := 0
		for _, f := range g.Fanins(v) {
			if l := lv[f.Var()]; l > m {
				m = l
			}
		}
		lv[v] = m + 1
	}
	depth := 0
	for _, po := range g.pos {
		if l := lv[po.Var()]; l > depth {
			depth = l
		}
	}
	return lv, depth
}

// Depth returns the maximum logic level over the primary outputs.
func (g *AIG) Depth() int {
	_, d := g.Levels()
	return d
}

// TFI returns the set of variables in the transitive fanin cone of roots
// (including the root variables themselves, excluding the constant).
func (g *AIG) TFI(roots ...Lit) map[uint32]bool {
	seen := make(map[uint32]bool)
	var stack []uint32
	for _, r := range roots {
		if v := r.Var(); v != 0 && !seen[v] {
			seen[v] = true
			stack = append(stack, v)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range g.Fanins(v) {
			if w := f.Var(); w != 0 && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// Support returns the primary-input positions feeding the cone of roots,
// in increasing PI order.
func (g *AIG) Support(roots ...Lit) []int {
	tfi := g.TFI(roots...)
	var sup []int
	for i, v := range g.pis {
		if tfi[v] {
			sup = append(sup, i)
		}
	}
	return sup
}

// FanoutCounts returns, for every variable, the number of fanout references
// from logic nodes and primary outputs.
func (g *AIG) FanoutCounts() []int {
	cnt := make([]int, len(g.nodes))
	for v := uint32(1); v <= g.MaxVar(); v++ {
		for _, f := range g.Fanins(v) {
			cnt[f.Var()]++
		}
	}
	for _, po := range g.pos {
		cnt[po.Var()]++
	}
	return cnt
}

// TFO returns the set of variables in the transitive fanout cone of the
// given variables (including themselves).
func (g *AIG) TFO(vars ...uint32) map[uint32]bool {
	in := make(map[uint32]bool, len(vars))
	for _, v := range vars {
		in[v] = true
	}
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if in[v] {
			continue
		}
		for _, f := range g.Fanins(v) {
			if in[f.Var()] {
				in[v] = true
				break
			}
		}
	}
	return in
}

// Reset restores g to the empty state produced by New while keeping the
// allocated node, name and hash-table capacity, so a scratch graph can be
// rebuilt many times without re-allocating (e.g. one key-only cone per
// DIP iteration in the oracle-guided attacks).
func (g *AIG) Reset() {
	g.nodes = g.nodes[:1]
	g.nodes[0] = node{op: OpConst}
	g.pis = g.pis[:0]
	g.pos = g.pos[:0]
	g.piNames = g.piNames[:0]
	g.poNames = g.poNames[:0]
	clear(g.strash)
	clear(g.piIndex)
}

// Copy returns a deep copy of the graph.
func (g *AIG) Copy() *AIG {
	ng := &AIG{
		Name:    g.Name,
		nodes:   append([]node(nil), g.nodes...),
		pis:     append([]uint32(nil), g.pis...),
		pos:     append([]Lit(nil), g.pos...),
		piNames: append([]string(nil), g.piNames...),
		poNames: append([]string(nil), g.poNames...),
		strash:  make(map[strashKey]uint32, len(g.strash)),
		piIndex: make(map[uint32]int, len(g.piIndex)),
	}
	for k, v := range g.strash {
		ng.strash[k] = v
	}
	for k, v := range g.piIndex {
		ng.piIndex[k] = v
	}
	return ng
}

// Import copies the logic of src into g, mapping the i-th primary input of
// src to piMap[i]. It returns the literals in g corresponding to the primary
// outputs of src. Logic is re-hashed, so shared structure is reused.
func (g *AIG) Import(src *AIG, piMap []Lit) []Lit {
	if len(piMap) != src.NumInputs() {
		panic("aig: Import piMap length mismatch")
	}
	return g.ImportCone(src, piMap, src.Outputs())
}

// ImportCone copies only the logic feeding roots (literals of src) into g
// and returns the mapped root literals.
func (g *AIG) ImportCone(src *AIG, piMap []Lit, roots []Lit) []Lit {
	m := make([]Lit, len(src.nodes))
	mapped := make([]bool, len(src.nodes))
	m[0] = ConstFalse
	mapped[0] = true
	for i, v := range src.pis {
		if piMap[i].Var() > g.MaxVar() {
			panic("aig: Import piMap literal out of range")
		}
		m[v] = piMap[i]
		mapped[v] = true
	}
	tfi := src.TFI(roots...)
	for v := uint32(1); v <= src.MaxVar(); v++ {
		if !tfi[v] || mapped[v] {
			continue
		}
		n := &src.nodes[v]
		if n.op == OpInput {
			panic("aig: ImportCone reached an unmapped input")
		}
		f := func(i int) Lit { return m[n.fan[i].Var()].NotIf(n.fan[i].IsCompl()) }
		switch n.op {
		case OpAnd:
			m[v] = g.And(f(0), f(1))
		case OpXor:
			m[v] = g.Xor(f(0), f(1))
		case OpMaj:
			m[v] = g.Maj(f(0), f(1), f(2))
		}
		mapped[v] = true
	}
	out := make([]Lit, len(roots))
	for i, r := range roots {
		out[i] = m[r.Var()].NotIf(r.IsCompl())
	}
	return out
}

// ExtractCone builds a standalone graph computing the given root literals,
// with primary inputs restricted to the support of the cone. It returns the
// new graph and the PI positions (in g) that became its inputs, in order.
func (g *AIG) ExtractCone(roots ...Lit) (*AIG, []int) {
	sup := g.Support(roots...)
	ng := New()
	piMapFull := make([]Lit, g.NumInputs())
	for i := range piMapFull {
		piMapFull[i] = ConstFalse // unused inputs; never referenced in cone
	}
	for _, pi := range sup {
		piMapFull[pi] = ng.AddInput(g.piNames[pi])
	}
	outs := importConePartial(ng, g, piMapFull, roots)
	for i, o := range outs {
		ng.AddOutput(o, fmt.Sprintf("cone%d", i))
	}
	return ng, sup
}

// importConePartial is like ImportCone but tolerates unmapped inputs outside
// the cone (they must not be referenced).
func importConePartial(dst, src *AIG, piMap []Lit, roots []Lit) []Lit {
	return dst.ImportCone(src, piMap, roots)
}

// ExtractBounded builds a standalone graph computing the given roots with
// the traversal cut off at the boundary variables: boundary variables (and
// any primary inputs reached outside the boundary) become the inputs of
// the new graph. It returns the new graph and the ordered list of source
// variables that became its inputs.
func (g *AIG) ExtractBounded(roots []Lit, boundary []uint32) (*AIG, []uint32) {
	isBound := make(map[uint32]bool, len(boundary))
	for _, v := range boundary {
		isBound[v] = true
	}
	// Collect the bounded cone and its leaves.
	seen := map[uint32]bool{}
	var leaves []uint32
	var order []uint32 // internal vars in discovery order
	var stack []uint32
	push := func(v uint32) {
		if v == 0 || seen[v] {
			return
		}
		seen[v] = true
		if isBound[v] || g.Op(v) == OpInput {
			leaves = append(leaves, v)
			return
		}
		order = append(order, v)
		stack = append(stack, v)
	}
	for _, r := range roots {
		push(r.Var())
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range g.Fanins(v) {
			push(f.Var())
		}
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	ng := New()
	m := make(map[uint32]Lit, len(leaves)+len(order)+1)
	m[0] = ConstFalse
	for _, v := range leaves {
		name := fmt.Sprintf("cut_n%d", v)
		if idx, ok := g.piIndex[v]; ok {
			name = g.piNames[idx]
		}
		m[v] = ng.AddInput(name)
	}
	mapped := func(l Lit) Lit { return m[l.Var()].NotIf(l.IsCompl()) }
	for _, v := range order { // ascending var order is topological
		fan := g.Fanins(v)
		switch g.Op(v) {
		case OpAnd:
			m[v] = ng.And(mapped(fan[0]), mapped(fan[1]))
		case OpXor:
			m[v] = ng.Xor(mapped(fan[0]), mapped(fan[1]))
		case OpMaj:
			m[v] = ng.Maj(mapped(fan[0]), mapped(fan[1]), mapped(fan[2]))
		}
	}
	for i, r := range roots {
		if r.IsConst() {
			ng.AddOutput(r, fmt.Sprintf("bounded%d", i))
			continue
		}
		ng.AddOutput(mapped(r), fmt.Sprintf("bounded%d", i))
	}
	return ng, leaves
}

// Cleanup rebuilds the graph keeping only logic reachable from the primary
// outputs. Input order, names and output order are preserved. It returns the
// rebuilt graph and does not modify g.
func (g *AIG) Cleanup() *AIG {
	ng := New()
	ng.Name = g.Name
	piMap := make([]Lit, g.NumInputs())
	for i := range piMap {
		piMap[i] = ng.AddInput(g.piNames[i])
	}
	outs := ng.ImportCone(g, piMap, g.pos)
	for i, o := range outs {
		ng.AddOutput(o, g.poNames[i])
	}
	return ng
}

// LowerToAnd returns an equivalent graph in which every XOR and MAJ node has
// been expanded into AND nodes. Inputs/outputs and names are preserved.
func (g *AIG) LowerToAnd() *AIG {
	ng := New()
	ng.Name = g.Name
	m := make([]Lit, len(g.nodes))
	m[0] = ConstFalse
	for i, v := range g.pis {
		m[v] = ng.AddInput(g.piNames[i])
	}
	for v := uint32(1); v <= g.MaxVar(); v++ {
		n := &g.nodes[v]
		if n.op == OpInput {
			continue
		}
		f := func(i int) Lit { return m[n.fan[i].Var()].NotIf(n.fan[i].IsCompl()) }
		switch n.op {
		case OpAnd:
			m[v] = ng.And(f(0), f(1))
		case OpXor:
			m[v] = ng.XorAnd(f(0), f(1))
		case OpMaj:
			m[v] = ng.MajAnd(f(0), f(1), f(2))
		}
	}
	for i, po := range g.pos {
		ng.AddOutput(m[po.Var()].NotIf(po.IsCompl()), g.poNames[i])
	}
	return ng
}

// EvalLits evaluates the graph on a single input pattern and returns the
// values of the given literals (which need not be outputs).
func (g *AIG) EvalLits(pattern []bool, lits ...Lit) []bool {
	if len(pattern) != g.NumInputs() {
		panic("aig: EvalLits pattern length mismatch")
	}
	val := make([]bool, len(g.nodes))
	for i, v := range g.pis {
		val[v] = pattern[i]
	}
	lv := func(l Lit) bool { return val[l.Var()] != l.IsCompl() }
	for v := uint32(1); v <= g.MaxVar(); v++ {
		n := &g.nodes[v]
		switch n.op {
		case OpAnd:
			val[v] = lv(n.fan[0]) && lv(n.fan[1])
		case OpXor:
			val[v] = lv(n.fan[0]) != lv(n.fan[1])
		case OpMaj:
			a, b, c := lv(n.fan[0]), lv(n.fan[1]), lv(n.fan[2])
			val[v] = (a && b) || (a && c) || (b && c)
		}
	}
	out := make([]bool, len(lits))
	for i, l := range lits {
		out[i] = lv(l)
	}
	return out
}

// Eval evaluates the graph on a single input pattern and returns the output
// values. Convenient for tests; use package sim for bulk simulation.
func (g *AIG) Eval(pattern []bool) []bool {
	if len(pattern) != g.NumInputs() {
		panic("aig: Eval pattern length mismatch")
	}
	val := make([]bool, len(g.nodes))
	for i, v := range g.pis {
		val[v] = pattern[i]
	}
	lv := func(l Lit) bool { return val[l.Var()] != l.IsCompl() }
	for v := uint32(1); v <= g.MaxVar(); v++ {
		n := &g.nodes[v]
		switch n.op {
		case OpAnd:
			val[v] = lv(n.fan[0]) && lv(n.fan[1])
		case OpXor:
			val[v] = lv(n.fan[0]) != lv(n.fan[1])
		case OpMaj:
			a, b, c := lv(n.fan[0]), lv(n.fan[1]), lv(n.fan[2])
			val[v] = (a && b) || (a && c) || (b && c)
		}
	}
	out := make([]bool, len(g.pos))
	for i, po := range g.pos {
		out[i] = lv(po)
	}
	return out
}

// Stats summarizes a graph for reporting.
type Stats struct {
	Inputs  int
	Outputs int
	Ands    int
	Xors    int
	Majs    int
	Depth   int
}

// Nodes returns the total number of logic nodes in the stats.
func (s Stats) Nodes() int { return s.Ands + s.Xors + s.Majs }

func (s Stats) String() string {
	return fmt.Sprintf("i/o=%d/%d and=%d xor=%d maj=%d lev=%d",
		s.Inputs, s.Outputs, s.Ands, s.Xors, s.Majs, s.Depth)
}

// Stats computes summary statistics of the graph.
func (g *AIG) Stats() Stats {
	st := Stats{Inputs: g.NumInputs(), Outputs: g.NumOutputs()}
	for v := uint32(1); v <= g.MaxVar(); v++ {
		switch g.nodes[v].op {
		case OpAnd:
			st.Ands++
		case OpXor:
			st.Xors++
		case OpMaj:
			st.Majs++
		}
	}
	st.Depth = g.Depth()
	return st
}
