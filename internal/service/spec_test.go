package service

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden wire-format files")

// goldenSpecs is one spec per scheme and per attack plus one of every
// other kind: the full v1 submission surface. The golden files pin the
// wire encoding — any field rename, reorder, tag change or type change
// shows up as a diff here before it shows up as a broken client.
func goldenSpecs() map[string]JobSpec {
	specs := map[string]JobSpec{}
	for _, scheme := range []string{"obfuslock", "rll", "sarlock", "antisat", "ttlock", "sfll-hd"} {
		specs["lock_"+scheme] = JobSpec{
			Schema:  SchemaVersion,
			Kind:    KindLock,
			Tenant:  "golden",
			Label:   "lock " + scheme,
			Circuit: "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n",
			Scheme:  scheme,
			SchemeOptions: &SchemeOptions{
				KeyBits: 8, ProtWidth: 6, HammingDistance: 1, SkewBits: 12.5, Seed: 7,
			},
			Budget: &Budget{TimeoutMS: 60_000, MaxConflicts: 1_000_000, SatWorkers: 4},
		}
	}
	for _, attack := range []string{"sat", "appsat", "portfolio"} {
		specs["attack_"+attack] = JobSpec{
			Schema:  SchemaVersion,
			Kind:    KindAttack,
			Tenant:  "golden",
			Label:   "attack " + attack,
			Circuit: "INPUT(a)\nINPUT(k0)\nOUTPUT(y)\ny = XOR(a, k0)\n",
			Oracle:  "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n",
			Attack:  attack,
			AttackOptions: &AttackOptions{
				MaxIterations: 128, Seed: 7, DIPBatch: 16, ReinforceEvery: 10, RandomQueries: 32,
			},
			Budget: &Budget{TimeoutMS: 30_000},
		}
	}
	no := false
	specs["cec"] = JobSpec{
		Schema:  SchemaVersion,
		Kind:    KindCEC,
		Circuit: "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n",
		Oracle:  "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n",
		Sweep:   &no,
		Seed:    7,
	}
	specs["count"] = JobSpec{
		Schema:  SchemaVersion,
		Kind:    KindCount,
		Circuit: "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
		Output:  0,
		Seed:    7,
	}
	specs["sample"] = JobSpec{
		Schema:  SchemaVersion,
		Kind:    KindSample,
		Circuit: "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n",
		Output:  0,
		Seed:    7,
	}
	return specs
}

// goldenResults pins the result layout for every kind, exercising every
// field at least once (including the pointer-typed tri-state ones).
func goldenResults() map[string]JobResult {
	yes, log2 := true, 1.585
	undecided, skew := false, 12.25
	return map[string]JobResult{
		"lock": {
			Schema: ResultSchema, Kind: KindLock, Scheme: "rll",
			Locked: "INPUT(a)\nINPUT(k0)\nOUTPUT(y)\ny = XOR(a, k0)\n",
			Key:    "10110011", KeyBits: 8,
		},
		"attack": {
			Schema: ResultSchema, Kind: KindAttack, Attack: "sat",
			Key: "10110011", KeyBits: 8, Exact: true, Iterations: 17, Queries: 23,
		},
		"attack_timeout": {
			Schema: ResultSchema, Kind: KindAttack, Attack: "appsat",
			TimedOut: true, Iterations: 5, Queries: 160,
		},
		"cec": {
			Schema: ResultSchema, Kind: KindCEC, Equivalent: &yes, Decided: &yes,
		},
		"cec_undecided": {
			Schema: ResultSchema, Kind: KindCEC, Decided: &undecided,
		},
		"count": {
			Schema: ResultSchema, Kind: KindCount, Log2Count: &log2, Decided: &yes,
		},
		"count_zero": {
			Schema: ResultSchema, Kind: KindCount, CountZero: true, ExactCount: true, Decided: &yes,
		},
		"sample": {
			Schema: ResultSchema, Kind: KindSample, SkewBits: &skew,
		},
	}
}

// golden compares v's indented JSON against testdata/<name>.json,
// rewriting the file under -update.
func golden(t *testing.T, name string, v any) []byte {
	t.Helper()
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	enc = append(enc, '\n')
	path := filepath.Join("testdata", name+".json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		return enc
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -run Golden -update): %v", err)
	}
	if string(want) != string(enc) {
		t.Errorf("wire format drifted from %s:\n got: %s\nwant: %s", path, enc, want)
	}
	return enc
}

// TestGoldenSpecs pins the JobSpec wire format and proves the strict
// decoder round-trips every golden byte-for-byte.
func TestGoldenSpecs(t *testing.T) {
	for name, spec := range goldenSpecs() {
		t.Run(name, func(t *testing.T) {
			enc := golden(t, "spec_"+name, spec)
			got, jerr := DecodeSpec(strings.NewReader(string(enc)))
			if jerr != nil {
				t.Fatalf("golden spec rejected by DecodeSpec: %v", jerr)
			}
			re, err := json.MarshalIndent(got, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if string(append(re, '\n')) != string(enc) {
				t.Errorf("round trip not byte-identical:\n got: %s\nwant: %s", re, enc)
			}
		})
	}
}

// TestGoldenResults pins the JobResult wire format, round-tripping each
// golden through a strict decode.
func TestGoldenResults(t *testing.T) {
	for name, res := range goldenResults() {
		t.Run(name, func(t *testing.T) {
			enc := golden(t, "result_"+name, res)
			dec := json.NewDecoder(strings.NewReader(string(enc)))
			dec.DisallowUnknownFields()
			var got JobResult
			if err := dec.Decode(&got); err != nil {
				t.Fatalf("golden result rejected by strict decode: %v", err)
			}
			re, err := json.MarshalIndent(got, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if string(append(re, '\n')) != string(enc) {
				t.Errorf("round trip not byte-identical:\n got: %s\nwant: %s", re, enc)
			}
		})
	}
}

// TestSchemaVersionPinned is the tripwire for accidental version bumps:
// the constants are part of the public contract and every change must be
// deliberate (goldens, docs and the CI schema step all follow).
func TestSchemaVersionPinned(t *testing.T) {
	if SchemaVersion != "obfuslock-job/v1" {
		t.Errorf("job schema version changed to %q — regenerate goldens and update the docs", SchemaVersion)
	}
	if ResultSchema != "obfuslock-result/v1" {
		t.Errorf("result schema version changed to %q — regenerate goldens and update the docs", ResultSchema)
	}
}

// TestDecodeSpecStrict exercises the strict wire contract: unknown
// fields, malformed JSON, trailing data and schema mismatches are all
// structured 400s, never accepted or mangled.
func TestDecodeSpecStrict(t *testing.T) {
	valid := `{"schema":"obfuslock-job/v1","kind":"cec","circuit":"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n","oracle":"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"}`
	cases := []struct {
		name, body, code string
	}{
		{"unknown_top_level_field", `{"schema":"obfuslock-job/v1","kind":"cec","circuit":"x","oracle":"y","bogus":1}`, CodeBadRequest},
		{"unknown_nested_field", `{"schema":"obfuslock-job/v1","kind":"lock","circuit":"x","scheme":"rll","scheme_options":{"key_bits":8,"bogus":1}}`, CodeBadRequest},
		{"malformed_json", `{"schema":`, CodeBadRequest},
		{"trailing_data", valid + `{"again":true}`, CodeBadRequest},
		{"wrong_schema", `{"schema":"obfuslock-job/v0","kind":"cec","circuit":"x","oracle":"y"}`, CodeBadSchema},
		{"missing_schema", `{"kind":"cec","circuit":"x","oracle":"y"}`, CodeBadSchema},
		{"unknown_kind", `{"schema":"obfuslock-job/v1","kind":"transmogrify","circuit":"x"}`, CodeBadRequest},
		{"lock_without_scheme", `{"schema":"obfuslock-job/v1","kind":"lock","circuit":"x"}`, CodeBadRequest},
		{"lock_with_attack_fields", `{"schema":"obfuslock-job/v1","kind":"lock","circuit":"x","scheme":"rll","attack":"sat"}`, CodeBadRequest},
		{"attack_without_oracle", `{"schema":"obfuslock-job/v1","kind":"attack","circuit":"x","attack":"sat"}`, CodeBadRequest},
		{"attack_with_scheme_fields", `{"schema":"obfuslock-job/v1","kind":"attack","circuit":"x","oracle":"y","attack":"sat","scheme":"rll"}`, CodeBadRequest},
		{"cec_one_sided", `{"schema":"obfuslock-job/v1","kind":"cec","circuit":"x"}`, CodeBadRequest},
		{"count_negative_output", `{"schema":"obfuslock-job/v1","kind":"count","circuit":"x","output":-1}`, CodeBadRequest},
		{"negative_timeout", valid[:len(valid)-1] + `,"budget":{"timeout_ms":-1}}`, CodeBadRequest},
		{"negative_conflicts", valid[:len(valid)-1] + `,"budget":{"max_conflicts":-5}}`, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, jerr := DecodeSpec(strings.NewReader(tc.body))
			if jerr == nil {
				t.Fatalf("accepted invalid spec %q", tc.body)
			}
			if jerr.Code != tc.code {
				t.Errorf("code = %q, want %q (message: %s)", jerr.Code, tc.code, jerr.Message)
			}
			if HTTPStatus(jerr.Code) != 400 {
				t.Errorf("HTTPStatus(%q) = %d, want 400", jerr.Code, HTTPStatus(jerr.Code))
			}
		})
	}
	if _, jerr := DecodeSpec(strings.NewReader(valid)); jerr != nil {
		t.Fatalf("valid spec rejected: %v", jerr)
	}
}

// TestBudgetConvertRoundTrip proves the wire budget and exec.Budget are
// the same vocabulary: converting there and back loses nothing.
func TestBudgetConvertRoundTrip(t *testing.T) {
	for _, b := range []Budget{
		{},
		{TimeoutMS: 1500},
		{MaxConflicts: 1 << 20},
		{SatWorkers: 8},
		{TimeoutMS: 250, MaxConflicts: 4096, SatWorkers: 2},
	} {
		if got := BudgetFrom(b.Exec()); got != b {
			t.Errorf("round trip %+v -> %+v", b, got)
		}
	}
}

// TestTenantLimitsClamp documents the "up to" semantics: requests above
// a cap are lowered, absent requests inherit the cap, and a zero limit
// never touches the budget.
func TestTenantLimitsClamp(t *testing.T) {
	tl := TenantLimits{MaxTimeoutMS: 30_000, MaxConflicts: 1000, MaxSatWorkers: 4}
	cases := []struct{ in, want Budget }{
		{Budget{}, Budget{TimeoutMS: 30_000, MaxConflicts: 1000, SatWorkers: 4}},
		{Budget{TimeoutMS: 10_000}, Budget{TimeoutMS: 10_000, MaxConflicts: 1000, SatWorkers: 4}},
		{Budget{TimeoutMS: 60_000}, Budget{TimeoutMS: 30_000, MaxConflicts: 1000, SatWorkers: 4}},
		{Budget{MaxConflicts: 10, SatWorkers: 2}, Budget{TimeoutMS: 30_000, MaxConflicts: 10, SatWorkers: 2}},
		{Budget{SatWorkers: 9}, Budget{TimeoutMS: 30_000, MaxConflicts: 1000, SatWorkers: 4}},
	}
	for _, tc := range cases {
		if got := tl.Clamp(tc.in); got != tc.want {
			t.Errorf("Clamp(%+v) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	if got := (TenantLimits{}).Clamp(Budget{TimeoutMS: 5}); got != (Budget{TimeoutMS: 5}) {
		t.Errorf("zero limits must not touch the budget, got %+v", got)
	}
}

// TestErrorHTTPStatus pins the code -> status mapping clients branch on.
func TestErrorHTTPStatus(t *testing.T) {
	want := map[string]int{
		CodeBadRequest:     400,
		CodeBadSchema:      400,
		CodeUnknownJob:     404,
		CodeQuotaExhausted: 429,
		CodeQueueFull:      429,
		CodeDraining:       503,
		CodeFailed:         500,
		CodeCancelled:      500,
	}
	for code, status := range want {
		if got := HTTPStatus(code); got != status {
			t.Errorf("HTTPStatus(%s) = %d, want %d", code, got, status)
		}
	}
	e := Errorf(CodeQueueFull, "backlog %d", 64)
	if e.Error() != "queue_full: backlog 64" {
		t.Errorf("Error() = %q", e.Error())
	}
	var nilErr *Error
	if nilErr.Error() != "<nil>" {
		t.Errorf("nil Error() = %q", nilErr.Error())
	}
	_ = fmt.Sprintf("%v", e) // must not panic as a value either
}
