package exec

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"obfuslock/internal/obs"
)

func TestConflictCap(t *testing.T) {
	cases := []struct {
		conflicts int64
		want      int64
	}{
		{0, -1}, {-1, 0}, {-100, 0}, {1, 1}, {500000, 500000},
	}
	for _, c := range cases {
		if got := (Budget{Conflicts: c.conflicts}).ConflictCap(); got != c.want {
			t.Errorf("ConflictCap(%d) = %d, want %d", c.conflicts, got, c.want)
		}
	}
}

func TestSatWorkersResolution(t *testing.T) {
	if got := SatWorkers(0); got != 1 {
		t.Errorf("SatWorkers(0) = %d, want 1 (sequential default)", got)
	}
	if got := SatWorkers(3); got != 3 {
		t.Errorf("SatWorkers(3) = %d, want 3", got)
	}
	if got := SatWorkers(-1); got < 1 {
		t.Errorf("SatWorkers(-1) = %d, want >= 1 (GOMAXPROCS)", got)
	}
	if got := (Budget{SatWorkers: 4}).SatWorkerCount(); got != 4 {
		t.Errorf("SatWorkerCount with SatWorkers=4 = %d", got)
	}
	if got := (Budget{}).SatWorkerCount(); got != 1 {
		t.Errorf("zero Budget SatWorkerCount = %d, want 1", got)
	}
}

func TestBindTimeout(t *testing.T) {
	ctx, cancel := Budget{Timeout: time.Millisecond}.Bind(context.Background())
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("timeout budget did not set a deadline")
	}
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("timeout budget never expired")
	}
	// No timeout: cancellation still propagates from the parent.
	parent, pcancel := context.WithCancel(context.Background())
	ctx2, cancel2 := Budget{}.Bind(parent)
	defer cancel2()
	if _, ok := ctx2.Deadline(); ok {
		t.Fatal("unlimited budget set a deadline")
	}
	pcancel()
	if ctx2.Err() == nil {
		t.Fatal("parent cancellation did not propagate")
	}
	// Nil parent is valid.
	ctx3, cancel3 := Budget{}.Bind(nil)
	if ctx3.Err() != nil {
		t.Fatal("nil-parent bind arrived cancelled")
	}
	cancel3()
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(1, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("different masters derived the same seed")
	}
	if DeriveSeed(7, 3) != DeriveSeed(7, 3) {
		t.Fatal("DeriveSeed is not a pure function")
	}
}

// TestCollectOrdered pins the pool's core contract: results are emitted
// in task order at every worker count, and each task sees its own index.
func TestCollectOrdered(t *testing.T) {
	const n = 50
	for _, workers := range []int{1, 2, 4, 9} {
		var got []int
		Collect(context.Background(), workers, n, func(_ context.Context, i int) int {
			if i%3 == 0 {
				time.Sleep(time.Duration(i%5) * time.Millisecond) // jitter completion order
			}
			return i * i
		}, func(i, r int) {
			if r != i*i {
				t.Fatalf("workers=%d: task %d returned %d", workers, i, r)
			}
			got = append(got, i)
		})
		if len(got) != n {
			t.Fatalf("workers=%d: emitted %d of %d results", workers, len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: out-of-order emit %v", workers, got)
			}
		}
	}
}

// TestCollectDeterministicSeeds verifies the combination used by the
// experiment sweeps: per-task derived seeds produce identical outputs at
// any worker count.
func TestCollectDeterministicSeeds(t *testing.T) {
	const n = 32
	sweep := func(workers int) []int64 {
		out := make([]int64, 0, n)
		Collect(context.Background(), workers, n, func(_ context.Context, i int) int64 {
			return DeriveSeed(42, i)
		}, func(_ int, r int64) { out = append(out, r) })
		return out
	}
	ref := sweep(1)
	for _, workers := range []int{2, 4, 8} {
		got := sweep(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: seed stream diverged at %d", workers, i)
			}
		}
	}
}

func TestCollectCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	emitted := 0
	Collect(ctx, 4, 1000, func(ctx context.Context, i int) int {
		if started.Add(1) == 8 {
			cancel()
		}
		return i
	}, func(i, r int) { emitted++ })
	if started.Load() >= 1000 {
		t.Fatal("cancellation did not stop the dispenser")
	}
	if emitted > int(started.Load()) {
		t.Fatalf("emitted %d results but only %d tasks ran", emitted, started.Load())
	}
	cancel()
}

func TestCollectSerialPathCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	Collect(ctx, 1, 100, func(ctx context.Context, i int) int {
		ran++
		if i == 5 {
			cancel()
		}
		return i
	}, func(int, int) {})
	if ran != 6 {
		t.Fatalf("serial path ran %d tasks after cancellation at 5", ran)
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive worker counts must resolve to at least 1")
	}
	if Workers(7) != 7 {
		t.Fatal("explicit worker count not honored")
	}
}

func TestCollectMeteredRecordsPoolTelemetry(t *testing.T) {
	tr := obs.New(obs.Discard)
	pm := PoolMetricsFrom(tr)
	const n = 20
	var order []int
	CollectMetered(context.Background(), 4, n, pm,
		func(ctx context.Context, i int) int { return i * i },
		func(i, r int) {
			if r != i*i {
				t.Fatalf("task %d result %d", i, r)
			}
			order = append(order, i)
		})
	for i, got := range order {
		if got != i {
			t.Fatalf("emit order %v not task order", order)
		}
	}
	if got := pm.Tasks.Value(); got != n {
		t.Fatalf("task counter = %d, want %d", got, n)
	}
	if got := pm.TaskLatency.Count(); got != n {
		t.Fatalf("latency histogram count = %d, want %d", got, n)
	}
	if got := pm.QueueDepth.Value(); got != 0 {
		t.Fatalf("queue depth after drain = %v, want 0", got)
	}
}

func TestPoolMetricsFromNilTracerIsInert(t *testing.T) {
	pm := PoolMetricsFrom(nil)
	if pm.enabled() {
		t.Fatal("nil tracer produced live pool metrics")
	}
	ran := 0
	CollectMetered(context.Background(), 1, 3, pm,
		func(ctx context.Context, i int) int { return i },
		func(i, r int) { ran++ })
	if ran != 3 {
		t.Fatalf("ran %d tasks, want 3", ran)
	}
}
