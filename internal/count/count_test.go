package count

import (
	"context"
	"math"
	"testing"

	"obfuslock/internal/aig"
)

func TestExactSmallCounts(t *testing.T) {
	// cond = AND of k inputs over n: exactly 2^(n-k) models.
	g := aig.New()
	in := g.AddInputs(8)
	cond := g.AndN(in[:4]...)
	g.AddOutput(cond, "c")
	r := Models(context.Background(), g, cond, DefaultOptions())
	if !r.Decided || !r.Exact {
		t.Fatalf("expected exact count, got %+v", r)
	}
	if r.Log2Count != 4 {
		t.Fatalf("log2 count = %v, want 4", r.Log2Count)
	}
}

func TestZeroCount(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	cond := g.And(a, a.Not())
	g.AddOutput(cond, "c")
	r := Models(context.Background(), g, cond, DefaultOptions())
	if !r.Decided || !math.IsInf(r.Log2Count, -1) {
		t.Fatalf("unsat condition: %+v", r)
	}
}

func TestApproximateLargeCount(t *testing.T) {
	// cond = OR of 16 inputs: 2^16 - 1 models, log2 ≈ 16.
	g := aig.New()
	in := g.AddInputs(16)
	cond := g.OrN(in...)
	g.AddOutput(cond, "c")
	opt := DefaultOptions()
	opt.Trials = 7
	r := Models(context.Background(), g, cond, opt)
	if !r.Decided {
		t.Fatal("undecided")
	}
	if math.Abs(r.Log2Count-16) > 2.5 {
		t.Fatalf("log2 count = %v, want ~16", r.Log2Count)
	}
}

func TestApproximateMidCount(t *testing.T) {
	// cond = parity of 14 inputs: exactly 2^13 models.
	g := aig.New()
	in := g.AddInputs(14)
	acc := in[0]
	for _, l := range in[1:] {
		acc = g.Xor(acc, l)
	}
	g.AddOutput(acc, "c")
	opt := DefaultOptions()
	opt.Trials = 7
	opt.Seed = 3
	r := Models(context.Background(), g, acc, opt)
	if !r.Decided {
		t.Fatal("undecided")
	}
	if math.Abs(r.Log2Count-13) > 2.5 {
		t.Fatalf("log2 count = %v, want ~13", r.Log2Count)
	}
}

func TestReachablePatternsFullCut(t *testing.T) {
	// Cut = the inputs themselves: all 2^10 patterns reachable.
	g := aig.New()
	in := g.AddInputs(10)
	g.AddOutput(g.AndN(in...), "f")
	r := ReachablePatterns(context.Background(), g, in, DefaultOptions())
	if !r.Decided {
		t.Fatal("undecided")
	}
	if math.Abs(r.Log2Count-10) > 2 {
		t.Fatalf("log2 reachable = %v, want ~10", r.Log2Count)
	}
}

func TestReachablePatternsConstrainedCut(t *testing.T) {
	// Cut of 6 literals that can only ever take 2 patterns:
	// all equal to x0 or its complement pattern — use replicated x0.
	g := aig.New()
	in := g.AddInputs(6)
	x := in[0]
	cut := []aig.Lit{x, x, x.Not(), x, x.Not(), x}
	g.AddOutput(g.AndN(in...), "f")
	r := ReachablePatterns(context.Background(), g, cut, DefaultOptions())
	if !r.Decided || !r.Exact {
		t.Fatalf("expected exact: %+v", r)
	}
	if r.Log2Count != 1 {
		t.Fatalf("log2 reachable = %v, want 1", r.Log2Count)
	}
}

func TestReachablePatternsOneHot(t *testing.T) {
	// Cut = one-hot decoder outputs of 3 inputs: 8 reachable patterns out
	// of 2^8 cut combinations.
	g := aig.New()
	in := g.AddInputs(3)
	var cut []aig.Lit
	for m := 0; m < 8; m++ {
		lits := make([]aig.Lit, 3)
		for i := 0; i < 3; i++ {
			lits[i] = in[i]
			if m>>i&1 == 0 {
				lits[i] = lits[i].Not()
			}
		}
		cut = append(cut, g.AndN(lits...))
	}
	g.AddOutput(g.OrN(cut...), "f")
	r := ReachablePatterns(context.Background(), g, cut, DefaultOptions())
	if !r.Decided || !r.Exact || r.Log2Count != 3 {
		t.Fatalf("one-hot cut: %+v, want exact log2=3", r)
	}
}
