package aig

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDot emits the graph in Graphviz DOT format: inputs as boxes, logic
// nodes shaped by operation, complemented edges dashed, outputs as
// double circles. Intended for inspecting small cones (locking circuits,
// blended regions); rendering a 40k-node benchmark is not useful.
func WriteDot(w io.Writer, g *AIG) error {
	bw := bufio.NewWriter(w)
	name := g.Name
	if name == "" {
		name = "aig"
	}
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=BT;\n", name)
	tfi := g.TFI(g.Outputs()...)
	constUsed := false
	for v := range tfi {
		for _, f := range g.Fanins(v) {
			if f.IsConst() {
				constUsed = true
			}
		}
	}
	for _, po := range g.Outputs() {
		if po.IsConst() {
			constUsed = true
		}
	}
	if constUsed {
		fmt.Fprintf(bw, "  n0 [label=\"0\", shape=plaintext];\n")
	}
	for i := 0; i < g.NumInputs(); i++ {
		v := g.InputVar(i)
		if !tfi[v] {
			continue
		}
		fmt.Fprintf(bw, "  n%d [label=%q, shape=box];\n", v, g.InputName(i))
	}
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if !tfi[v] {
			continue
		}
		var label, shape string
		switch g.Op(v) {
		case OpAnd:
			label, shape = "AND", "ellipse"
		case OpXor:
			label, shape = "XOR", "diamond"
		case OpMaj:
			label, shape = "MAJ", "hexagon"
		default:
			continue
		}
		fmt.Fprintf(bw, "  n%d [label=\"%s\\nn%d\", shape=%s];\n", v, label, v, shape)
		for _, f := range g.Fanins(v) {
			style := "solid"
			if f.IsCompl() {
				style = "dashed"
			}
			fmt.Fprintf(bw, "  n%d -> n%d [style=%s];\n", f.Var(), v, style)
		}
	}
	for i := 0; i < g.NumOutputs(); i++ {
		po := g.Output(i)
		fmt.Fprintf(bw, "  o%d [label=%q, shape=doublecircle];\n", i, g.OutputName(i))
		style := "solid"
		if po.IsCompl() {
			style = "dashed"
		}
		fmt.Fprintf(bw, "  n%d -> o%d [style=%s];\n", po.Var(), i, style)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
