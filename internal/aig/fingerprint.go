package aig

import "fmt"

// Fingerprint is a 128-bit canonical structural hash of a circuit or cone.
// It is DAG-aware (each shared node is hashed once) and invariant under
// node renumbering and fanin reordering of commutative operators: two
// graphs that are isomorphic modulo variable numbering — same operators,
// same edge polarities, same primary-input positions, same output order —
// fingerprint identically. It deliberately ignores names.
//
// The fingerprint identifies the *function representation*, not solver
// behavior: two circuits with equal fingerprints compute the same function
// the same way, so semantic verdicts (equivalence, model counts) transfer
// between them, but search-dependent artifacts (which witness a SAT solver
// happens to find) may not. Queries whose results depend on concrete
// variable numbering should key on StructuralHash instead.
type Fingerprint [2]uint64

// String renders the fingerprint as 32 hex digits.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x%016x", f[0], f[1]) }

// IsZero reports whether the fingerprint is the zero value (never produced
// for a real graph).
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// splitmix64 finalizer; the same mixer exec.DeriveSeed builds on.
func fpMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Domain-separation tags for the per-node hash lanes.
const (
	fpTagConst = 0x9e3779b97f4a7c15
	fpTagInput = 0xd1b54a32d192ed03
	fpTagAnd   = 0x8cb92ba72f3d8dd7
	fpTagXor   = 0xa24baed4963ee407
	fpTagMaj   = 0x9fb21c651e98df25
	fpTagPhase = 0x5851f42d4c957f2d
	fpTagRoot  = 0x2545f4914f6cdd1d
	fpLane     = 0x6a09e667f3bcc909
)

type fpHash [2]uint64

func fpLeaf(tag uint64, idx int) fpHash {
	return fpHash{
		fpMix(tag + uint64(idx)*0x9e3779b97f4a7c15),
		fpMix(tag ^ fpLane + uint64(idx)*0xc2b2ae3d27d4eb4f),
	}
}

// fpEdge combines a child hash with the edge's complement bit.
func fpEdge(h fpHash, compl bool) fpHash {
	if compl {
		return fpHash{fpMix(h[0] ^ fpTagPhase), fpMix(h[1] + fpTagPhase)}
	}
	return h
}

func fpLess(a, b fpHash) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// fpNode folds the (sorted) edge contributions of a commutative operator.
func fpNode(tag uint64, edges []fpHash) fpHash {
	// Insertion sort: at most 3 fanins.
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && fpLess(edges[j], edges[j-1]); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	acc := fpHash{fpMix(tag), fpMix(tag ^ fpLane)}
	for _, e := range edges {
		acc[0] = fpMix(acc[0]*0x100000001b3 + e[0])
		acc[1] = fpMix(acc[1]*0xc6a4a7935bd1e995 + e[1])
	}
	return acc
}

func fpOpTag(op Op) uint64 {
	switch op {
	case OpAnd:
		return fpTagAnd
	case OpXor:
		return fpTagXor
	default:
		return fpTagMaj
	}
}

// coneHashes computes the canonical per-node hash for every variable in the
// cone of roots. piRank maps a PI variable to the input index used for its
// leaf hash; for the whole graph this is the PI position, for a cone it is
// the rank within the cone's sorted support (matching ExtractCone's input
// numbering, so FingerprintCone(g, r) equals ExtractCone(r).Fingerprint()).
func (g *AIG) coneHashes(cone map[uint32]bool, piRank func(v uint32) int) []fpHash {
	h := make([]fpHash, len(g.nodes))
	h[0] = fpHash{fpMix(fpTagConst), fpMix(fpTagConst ^ fpLane)}
	var edges [3]fpHash
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if cone != nil && !cone[v] {
			continue
		}
		n := &g.nodes[v]
		if n.op == OpInput {
			h[v] = fpLeaf(fpTagInput, piRank(v))
			continue
		}
		fans := g.Fanins(v)
		for i, f := range fans {
			edges[i] = fpEdge(h[f.Var()], f.IsCompl())
		}
		h[v] = fpNode(fpOpTag(n.op), edges[:len(fans)])
	}
	return h
}

// fpFold folds root hashes (with phases) plus the input count into the
// final fingerprint.
func fpFold(numInputs int, roots []Lit, h []fpHash) Fingerprint {
	acc := fpHash{
		fpMix(fpTagRoot + uint64(numInputs)),
		fpMix(fpTagRoot ^ fpLane + uint64(numInputs)),
	}
	for _, r := range roots {
		e := fpEdge(h[r.Var()], r.IsCompl())
		acc[0] = fpMix(acc[0]*0x100000001b3 + e[0])
		acc[1] = fpMix(acc[1]*0xc6a4a7935bd1e995 + e[1])
	}
	return Fingerprint(acc)
}

// Fingerprint returns the canonical structural hash of the whole graph:
// its inputs (by position), outputs (in order, with phases) and every node
// in their cones.
func (g *AIG) Fingerprint() Fingerprint {
	h := g.coneHashes(nil, func(v uint32) int { return g.piIndex[v] })
	return fpFold(len(g.pis), g.pos, h)
}

// FingerprintCone returns the canonical hash of the cone of roots, with
// the cone's support renumbered to 0..k-1 in increasing PI order — the
// same numbering ExtractCone produces, so the fingerprint of a cone equals
// the fingerprint of its extraction as a standalone circuit.
func (g *AIG) FingerprintCone(roots ...Lit) Fingerprint {
	cone := g.TFI(roots...)
	cone[0] = true
	rank := make(map[uint32]int)
	for _, i := range g.Support(roots...) {
		rank[g.pis[i]] = len(rank)
	}
	h := g.coneHashes(cone, func(v uint32) int { return rank[v] })
	return fpFold(len(rank), roots, h)
}

// StructuralHash returns a concrete (numbering-sensitive) 64-bit hash of
// the exact netlist: node records in variable order, PI variables and PO
// literals. Unlike Fingerprint it distinguishes renumbered-but-isomorphic
// graphs, which makes it the right cache key for queries whose results are
// tied to concrete variables (node identities, CNF variable order and the
// solver search artifacts that follow from it).
func (g *AIG) StructuralHash() uint64 {
	acc := fpMix(0x27d4eb2f165667c5 + uint64(len(g.nodes)))
	for v := uint32(1); v <= g.MaxVar(); v++ {
		n := &g.nodes[v]
		acc = fpMix(acc*0x100000001b3 + uint64(n.op))
		acc = fpMix(acc*0x100000001b3 + uint64(n.fan[0])<<42 + uint64(n.fan[1])<<21 + uint64(n.fan[2]))
	}
	for _, v := range g.pis {
		acc = fpMix(acc*0x100000001b3 + uint64(v))
	}
	for _, po := range g.pos {
		acc = fpMix(acc*0x100000001b3 + uint64(po) + fpTagRoot)
	}
	return acc
}
