// Package sim provides 64-way bit-parallel simulation of AIGs.
//
// A simulation vector assigns one uint64 word array per node; bit i of word
// w carries the node value under input pattern 64*w+i. Random simulation is
// the workhorse behind skewness estimation, signature-based equivalence
// filtering and switching-activity extraction for power estimation.
package sim

import (
	"math/bits"
	"math/rand"

	"obfuslock/internal/aig"
)

// Vectors holds per-node simulation words for one run.
type Vectors struct {
	Words int        // words per node
	vals  [][]uint64 // indexed by variable
	g     *aig.AIG
}

// RandomInputs draws words*64 uniform input patterns for n inputs.
func RandomInputs(n, words int, seed int64) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([][]uint64, n)
	for i := range in {
		in[i] = make([]uint64, words)
		for w := range in[i] {
			in[i][w] = rng.Uint64()
		}
	}
	return in
}

// Run simulates the whole graph under the given input words (one slice per
// primary input, all the same length).
func Run(g *aig.AIG, inputs [][]uint64) *Vectors {
	if len(inputs) != g.NumInputs() {
		panic("sim: input count mismatch")
	}
	words := 0
	if len(inputs) > 0 {
		words = len(inputs[0])
	}
	v := &Vectors{Words: words, g: g, vals: make([][]uint64, g.MaxVar()+1)}
	v.vals[0] = make([]uint64, words) // constant false
	for i := 0; i < g.NumInputs(); i++ {
		if len(inputs[i]) != words {
			panic("sim: ragged input words")
		}
		v.vals[g.InputVar(i)] = inputs[i]
	}
	for n := uint32(1); n <= g.MaxVar(); n++ {
		if g.Op(n) == aig.OpInput {
			continue
		}
		dst := make([]uint64, words)
		fan := g.Fanins(n)
		a := v.litWords(fan[0])
		b := v.litWords(fan[1])
		switch g.Op(n) {
		case aig.OpAnd:
			for w := 0; w < words; w++ {
				dst[w] = a(w) & b(w)
			}
		case aig.OpXor:
			for w := 0; w < words; w++ {
				dst[w] = a(w) ^ b(w)
			}
		case aig.OpMaj:
			c := v.litWords(fan[2])
			for w := 0; w < words; w++ {
				x, y, z := a(w), b(w), c(w)
				dst[w] = (x & y) | (x & z) | (y & z)
			}
		}
		v.vals[n] = dst
	}
	return v
}

// RunRandom simulates the graph on words*64 random patterns.
func RunRandom(g *aig.AIG, words int, seed int64) *Vectors {
	return Run(g, RandomInputs(g.NumInputs(), words, seed))
}

func (v *Vectors) litWords(l aig.Lit) func(int) uint64 {
	vals := v.vals[l.Var()]
	if l.IsCompl() {
		return func(w int) uint64 { return ^vals[w] }
	}
	return func(w int) uint64 { return vals[w] }
}

// Node returns the raw words of a variable (positive phase).
func (v *Vectors) Node(n uint32) []uint64 { return v.vals[n] }

// Lit returns a fresh copy of the words of a literal, complement applied.
func (v *Vectors) Lit(l aig.Lit) []uint64 {
	src := v.vals[l.Var()]
	out := make([]uint64, len(src))
	if l.IsCompl() {
		for w := range src {
			out[w] = ^src[w]
		}
	} else {
		copy(out, src)
	}
	return out
}

// Output returns the words of the i-th primary output.
func (v *Vectors) Output(i int) []uint64 { return v.Lit(v.g.Output(i)) }

// OnesFraction returns the fraction of simulated patterns on which the
// literal evaluates to 1.
func (v *Vectors) OnesFraction(l aig.Lit) float64 {
	if v.Words == 0 {
		return 0
	}
	ones := 0
	for _, w := range v.vals[l.Var()] {
		ones += bits.OnesCount64(w)
	}
	total := v.Words * 64
	if l.IsCompl() {
		ones = total - ones
	}
	return float64(ones) / float64(total)
}

// ToggleFraction returns the per-pattern toggle rate of a variable: the
// fraction of adjacent pattern pairs on which the node changes value.
// Used as a switching-activity proxy for dynamic power estimation.
func (v *Vectors) ToggleFraction(n uint32) float64 {
	total := v.Words*64 - 1
	if total <= 0 {
		return 0
	}
	toggles := 0
	var prev uint64 // last bit of previous word
	for wi, w := range v.vals[n] {
		shifted := w<<1 | prev
		if wi == 0 {
			// No predecessor for very first pattern: mask bit 0.
			toggles += bits.OnesCount64((w ^ shifted) &^ 1)
		} else {
			toggles += bits.OnesCount64(w ^ shifted)
		}
		prev = w >> 63
	}
	return float64(toggles) / float64(total)
}

// Signature returns a 64-bit hash of a literal's simulation words, with the
// complement folded in so that functionally complementary literals get
// complementary signatures on the same patterns.
func (v *Vectors) Signature(l aig.Lit) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset
	for _, w := range v.vals[l.Var()] {
		if l.IsCompl() {
			w = ^w
		}
		h ^= w
		h *= 1099511628211
	}
	return h
}

// Distinguishes reports whether two literals differ on any simulated
// pattern, and if so returns the index of one distinguishing pattern.
func (v *Vectors) Distinguishes(a, b aig.Lit) (int, bool) {
	wa, wb := v.vals[a.Var()], v.vals[b.Var()]
	inv := a.IsCompl() != b.IsCompl()
	for w := range wa {
		d := wa[w] ^ wb[w]
		if inv {
			d = ^d
		}
		if d != 0 {
			return w*64 + bits.TrailingZeros64(d), true
		}
	}
	return 0, false
}

// Pack transposes a batch of input patterns (each of width n) into
// per-input simulation words suitable for Run: bit j of word w of input
// i carries patterns[w*64+j][i]. Unused high bits of the last word are
// zero. Pack is the inverse of Pattern and is what lets the batched
// oracle answer up to 64 distinguishing input patterns in one
// bit-parallel pass.
func Pack(patterns [][]bool, n int) [][]uint64 {
	words := (len(patterns) + 63) / 64
	in := make([][]uint64, n)
	for i := range in {
		in[i] = make([]uint64, words)
	}
	for j, p := range patterns {
		if len(p) != n {
			panic("sim: Pack pattern width mismatch")
		}
		w, bit := j/64, uint(j%64)
		for i, v := range p {
			if v {
				in[i][w] |= 1 << bit
			}
		}
	}
	return in
}

// Pattern reconstructs input pattern idx from the input words.
func Pattern(inputs [][]uint64, idx int) []bool {
	p := make([]bool, len(inputs))
	for i := range inputs {
		p[i] = inputs[i][idx/64]>>(idx%64)&1 == 1
	}
	return p
}

// CountOnes counts set bits across a word slice.
func CountOnes(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// EvalAll evaluates the graph on a single input pattern and returns the
// value of every variable, indexed by variable number (variable 0 is the
// constant false). The SAT-sweeping engine uses it to replay solver
// counterexamples against every candidate equivalence class at once.
func EvalAll(g *aig.AIG, pattern []bool) []bool {
	if len(pattern) != g.NumInputs() {
		panic("sim: EvalAll pattern length mismatch")
	}
	val := make([]bool, g.MaxVar()+1)
	for i := 0; i < g.NumInputs(); i++ {
		val[g.InputVar(i)] = pattern[i]
	}
	lv := func(l aig.Lit) bool { return val[l.Var()] != l.IsCompl() }
	for n := uint32(1); n <= g.MaxVar(); n++ {
		fan := g.Fanins(n)
		switch g.Op(n) {
		case aig.OpAnd:
			val[n] = lv(fan[0]) && lv(fan[1])
		case aig.OpXor:
			val[n] = lv(fan[0]) != lv(fan[1])
		case aig.OpMaj:
			a, b, c := lv(fan[0]), lv(fan[1]), lv(fan[2])
			val[n] = (a && b) || (a && c) || (b && c)
		}
	}
	return val
}
