package rewrite

import (
	"context"

	"obfuslock/internal/aig"
	"obfuslock/internal/fraig"
)

// FunctionalRewriteSweep applies FunctionalRewrite and then fraigs the
// result (internal/fraig), merging any functionally equivalent nodes the
// DAG-aware cut rewriting left behind. It returns the swept graph and the
// sweep result (reduction statistics, decidedness). The output is
// functionally identical to the input; cancelling ctx stops the sweep's
// proving early and yields a partially reduced (still correct) graph.
func FunctionalRewriteSweep(ctx context.Context, g *aig.AIG, opt Options, swp fraig.Options) (*aig.AIG, *fraig.Result) {
	rw := FunctionalRewrite(g, opt)
	res := fraig.Sweep(ctx, rw, swp)
	return res.Reduced, res
}
