// Package cec implements SAT-based combinational equivalence checking with
// a random-simulation pre-filter, plus node-level equivalence queries used
// by the structural attacks and the critical-node elimination check. The
// sweeping mode (Options.Sweep) fraigs the combined miter graph — merging
// the internally equivalent logic the two sides share — before the final,
// much smaller, miter solve.
package cec

import (
	"context"
	"fmt"
	"time"

	"obfuslock/internal/aig"
	"obfuslock/internal/cnf"
	"obfuslock/internal/exec"
	"obfuslock/internal/fraig"
	"obfuslock/internal/memo"
	"obfuslock/internal/obs"
	"obfuslock/internal/sat"
	"obfuslock/internal/sim"
	"obfuslock/internal/simp"
)

// simpSig renders the simp policy for cache descriptors.
func simpSig(o simp.Options) string {
	return fmt.Sprintf("%t.%t.%t.%t.%d",
		o.Disable, o.NoVarElim, o.NoSubsume, o.NoVivify, o.InprocessEvery)
}

// Result reports the outcome of an equivalence check.
type Result struct {
	Equivalent bool
	// Counterexample is an input pattern on which the circuits differ
	// (valid only when Equivalent is false and Decided is true).
	Counterexample []bool
	// Decided is false when the solver hit its budget.
	Decided bool
	// Runtime of the check.
	Runtime time.Duration
	// SolverStats accumulates the SAT work of the check (in sweeping
	// mode: the sweep's prover plus the final miter solver).
	SolverStats sat.Stats
}

// Options configures a check.
type Options struct {
	// SimWords of 64 random patterns tried before SAT (0 disables).
	SimWords int
	// Seed for the simulation pre-filter and the sweeping signatures.
	Seed int64
	// Budget bounds the SAT effort (zero value: unlimited). In sweeping
	// mode the conflict cap applies per sweep query and to the final
	// miter solve.
	Budget exec.Budget
	// Sweep enables SAT sweeping: the two circuits are combined over
	// shared inputs, fraiged (internal/fraig), and only output pairs the
	// sweep could not merge go to the final miter solve.
	Sweep bool
	// SweepWords of 64 random patterns seed the sweep's equivalence
	// classes (0: 8). Only used when Sweep is set.
	SweepWords int
	// Simp controls CNF preprocessing before the miter solve (zero
	// value: enabled; simp.Off() disables).
	Simp simp.Options
	// Trace receives cec.check / cec.find_node spans and the sweep's
	// instrumentation (nil: disabled).
	Trace *obs.Tracer
	// Cache memoizes decided verdicts under the circuits' canonical
	// fingerprints (nil: disabled). Verdicts transfer between isomorphic
	// circuit pairs: the equivalence answer is semantic, and a cached
	// counterexample — an input pattern over the shared PI positions —
	// remains a valid refutation for any pair with the same fingerprints.
	// Wall-clock-bounded checks (Budget.Timeout set) are never cached:
	// their verdicts depend on machine speed, not only on the key.
	Cache *memo.Cache
}

// MetricProofLatency is the histogram of final miter-solve latencies
// (microseconds), one observation per SAT proof attempt.
const MetricProofLatency = "cec.proof_us"

// timedSolve runs one proof solve — on the parallel portfolio when the
// budget asks for more than one SAT worker — recording its latency into
// h (which may be nil, in which case the clock is never read). With a
// conflict cap in force SolveParallel falls back to the sequential
// solver internally, so budgeted verdicts stay worker-count-invariant.
func timedSolve(ctx context.Context, s *sat.Solver, workers int, h *obs.Histogram, assumps ...sat.Lit) sat.Status {
	solve := func() sat.Status {
		if workers > 1 {
			return s.SolveParallel(ctx, workers, assumps...)
		}
		return s.Solve(assumps...)
	}
	if h == nil {
		return solve()
	}
	t0 := time.Now()
	st := solve()
	h.RecordDuration(time.Since(t0))
	return st
}

// DefaultOptions uses a small simulation pre-filter and no SAT budget.
func DefaultOptions() Options {
	return Options{SimWords: 4, Seed: 1}
}

// SweepOptions is DefaultOptions with SAT sweeping enabled.
func SweepOptions() Options {
	opt := DefaultOptions()
	opt.Sweep = true
	opt.SweepWords = 8
	return opt
}

// Check decides whether two circuits with identical interfaces are
// functionally equivalent. Cancelling ctx (or exhausting the budget)
// yields an undecided result.
func Check(ctx context.Context, a, b *aig.AIG, opt Options) (Result, error) {
	start := time.Now()
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		return Result{}, fmt.Errorf("cec: interface mismatch: %d/%d inputs, %d/%d outputs",
			a.NumInputs(), b.NumInputs(), a.NumOutputs(), b.NumOutputs())
	}
	sp := opt.Trace.Span("cec.check",
		obs.Int("nodes_a", int64(a.NumNodes())),
		obs.Int("nodes_b", int64(b.NumNodes())),
		obs.Bool("sweep", opt.Sweep))
	r, err := checkCached(ctx, a, b, opt, sp)
	r.Runtime = time.Since(start)
	sp.End(
		obs.Bool("equivalent", r.Equivalent),
		obs.Bool("decided", r.Decided))
	return r, err
}

// checkVerdict is the cacheable (semantic) part of a Result.
type checkVerdict struct {
	Eq  bool   `json:"eq"`
	Cex []bool `json:"cex,omitempty"`
}

// errUndecided marks a budget-exhausted check so memo.Do does not store it.
var errUndecided = fmt.Errorf("cec: undecided result is not cacheable")

// checkCached wraps check with the content-addressed cache. Only decided,
// non-wall-clock-bounded verdicts are stored; anything else falls through
// to a plain compute, so enabling the cache never changes an answer.
func checkCached(ctx context.Context, a, b *aig.AIG, opt Options, sp *obs.Span) (Result, error) {
	if !opt.Cache.Enabled() || opt.Budget.Timeout != 0 {
		return check(ctx, a, b, opt, sp)
	}
	key := fmt.Sprintf("cec.check|%s|%s|sw=%d|seed=%d|conf=%d|sweep=%t.%d|simp=%s",
		a.Fingerprint(), b.Fingerprint(), opt.SimWords, opt.Seed,
		opt.Budget.Conflicts, opt.Sweep, opt.SweepWords, simpSig(opt.Simp))
	var computed *Result
	var computeErr error
	v, err := memo.Do(opt.Cache, key, func() (checkVerdict, error) {
		r, err := check(ctx, a, b, opt, sp)
		computed = &r
		computeErr = err
		if err != nil {
			return checkVerdict{}, err
		}
		if !r.Decided {
			return checkVerdict{}, errUndecided
		}
		return checkVerdict{Eq: r.Equivalent, Cex: r.Counterexample}, nil
	})
	if computed != nil {
		// This call was the singleflight leader: its own result (with
		// solver stats) is authoritative whether or not it was cached.
		return *computed, computeErr
	}
	if err != nil {
		// A concurrent leader failed or was undecided; compute locally.
		return check(ctx, a, b, opt, sp)
	}
	sp.Event("cec.cache_hit")
	return Result{
		Equivalent:     v.Eq,
		Counterexample: append([]bool(nil), v.Cex...),
		Decided:        true,
	}, nil
}

func check(ctx context.Context, a, b *aig.AIG, opt Options, sp *obs.Span) (Result, error) {
	// Simulation pre-filter: a single differing pattern refutes quickly.
	if opt.SimWords > 0 && a.NumInputs() > 0 {
		in := sim.RandomInputs(a.NumInputs(), opt.SimWords, opt.Seed)
		va := sim.Run(a, in)
		vb := sim.Run(b, in)
		for o := 0; o < a.NumOutputs(); o++ {
			wa, wb := va.Output(o), vb.Output(o)
			for w := range wa {
				if d := wa[w] ^ wb[w]; d != 0 {
					idx := w * 64
					for bit := 0; bit < 64; bit++ {
						if d>>uint(bit)&1 == 1 {
							idx += bit
							break
						}
					}
					sp.Event("cec.sim_refuted", obs.Int("output", int64(o)))
					return Result{
						Equivalent:     false,
						Counterexample: sim.Pattern(in, idx),
						Decided:        true,
					}, nil
				}
			}
		}
	}
	if opt.Sweep {
		return checkSwept(ctx, a, b, opt, sp)
	}
	s := sat.New()
	s.SetBudget(opt.Budget.ConflictCap())
	s.SetContext(ctx)
	s.SetTelemetry(opt.Trace.Registry())
	inputs, diff := cnf.Miter(s, a, b)
	s.AddClause(diff)
	// Preprocess the whole miter CNF: the shared-input interface is
	// frozen by the encoder, everything internal may be eliminated.
	if !simp.Apply(s, opt.Simp, opt.Trace) {
		return Result{Equivalent: true, Decided: true, SolverStats: s.Stats()}, nil
	}
	switch timedSolve(ctx, s, opt.Budget.SatWorkerCount(), opt.Trace.Histogram(MetricProofLatency)) {
	case sat.Unsat:
		return Result{Equivalent: true, Decided: true, SolverStats: s.Stats()}, nil
	case sat.Sat:
		cex := make([]bool, len(inputs))
		for i, l := range inputs {
			cex[i] = s.ModelValue(l)
		}
		return Result{Equivalent: false, Counterexample: cex, Decided: true, SolverStats: s.Stats()}, nil
	}
	return Result{SolverStats: s.Stats()}, nil
}

// checkSwept fraigs the combined graph of a and b over shared inputs; if
// the sweep merges every output pair the circuits are proven equivalent
// without a miter at all, otherwise only the surviving pairs feed a final
// (reduced) miter solve.
func checkSwept(ctx context.Context, a, b *aig.AIG, opt Options, sp *obs.Span) (Result, error) {
	comb := aig.New()
	piMap := make([]aig.Lit, a.NumInputs())
	for i := range piMap {
		piMap[i] = comb.AddInput(a.InputName(i))
	}
	oa := comb.Import(a, piMap)
	ob := comb.Import(b, piMap)
	for i, o := range oa {
		comb.AddOutput(o, "a:"+a.OutputName(i))
	}
	for i, o := range ob {
		comb.AddOutput(o, "b:"+b.OutputName(i))
	}
	fr := fraig.Sweep(ctx, comb, fraig.Options{
		Words:  opt.SweepWords,
		Seed:   opt.Seed,
		Budget: opt.Budget,
		Simp:   opt.Simp,
		Trace:  opt.Trace,
	})
	red := fr.Reduced
	n := a.NumOutputs()
	var pending [][2]aig.Lit
	for i := 0; i < n; i++ {
		la, lb := red.Output(i), red.Output(n+i)
		if la != lb {
			pending = append(pending, [2]aig.Lit{la, lb})
		}
	}
	sp.Event("cec.swept",
		obs.Int("nodes", int64(red.NumNodes())),
		obs.Int("merges", int64(fr.Stats.Merges)),
		obs.Int("pending_outputs", int64(len(pending))))
	if len(pending) == 0 {
		// Every output pair merged: equivalence is proven, regardless of
		// whether unrelated internal candidates ran out of budget.
		return Result{Equivalent: true, Decided: true, SolverStats: fr.SolverStats}, nil
	}
	s := sat.New()
	s.SetBudget(opt.Budget.ConflictCap())
	s.SetContext(ctx)
	s.SetTelemetry(opt.Trace.Registry())
	e := cnf.NewEncoder(red, s)
	inputs := make([]sat.Lit, red.NumInputs())
	for i := range inputs {
		inputs[i] = e.InputLit(i)
	}
	diffs := make([]sat.Lit, len(pending))
	for i, p := range pending {
		lits := e.Encode(p[0], p[1])
		diffs[i] = cnf.XorLit(s, lits[0], lits[1])
	}
	s.AddClause(cnf.OrLit(s, diffs...))
	stats := func() sat.Stats { return s.Stats().Add(fr.SolverStats) }
	// The reduced miter is a one-shot solve: full preprocessing
	// (elimination included) is sound here.
	if !simp.Apply(s, opt.Simp, opt.Trace) {
		return Result{Equivalent: true, Decided: true, SolverStats: stats()}, nil
	}
	switch timedSolve(ctx, s, opt.Budget.SatWorkerCount(), opt.Trace.Histogram(MetricProofLatency)) {
	case sat.Unsat:
		return Result{Equivalent: true, Decided: true, SolverStats: stats()}, nil
	case sat.Sat:
		cex := make([]bool, len(inputs))
		for i, l := range inputs {
			cex[i] = s.ModelValue(l)
		}
		return Result{Equivalent: false, Counterexample: cex, Decided: true, SolverStats: stats()}, nil
	}
	return Result{SolverStats: stats()}, nil
}

// LitsEquivalent decides whether two literals of the same graph compute the
// same function of the primary inputs (up to the given conflict budget,
// with <0 meaning unlimited; Unknown maps to decided=false).
func LitsEquivalent(ctx context.Context, g *aig.AIG, x, y aig.Lit, budget int64) (equal, decided bool) {
	s := sat.New()
	e := cnf.NewEncoder(g, s)
	lits := e.Encode(x, y)
	if budget >= 0 {
		s.SetBudget(budget)
	}
	s.SetContext(ctx)
	d := cnf.XorLit(s, lits[0], lits[1])
	s.AddClause(d)
	switch s.Solve() {
	case sat.Unsat:
		return true, true
	case sat.Sat:
		return false, true
	}
	return false, false
}

// FindOptions configures FindEquivalentNode.
type FindOptions struct {
	// SimWords of 64 random patterns build the signature shortlist (0: 8).
	SimWords int
	// Seed for the shortlist patterns.
	Seed int64
	// Budget bounds each candidate's SAT query (the conflict cap applies
	// per query; an exhausted query skips that candidate).
	Budget exec.Budget
	// Simp controls CNF preprocessing of the shared candidate solver.
	// Variable elimination is forced off regardless: the scan keeps
	// encoding new cones against already-encoded internal variables.
	Simp simp.Options
	// Trace receives the cec.find_node span (nil: disabled).
	Trace *obs.Tracer
	// Cache memoizes completed scans (nil: disabled). The answer names a
	// concrete node of g, so the key uses the exact netlist hashes
	// (aig.StructuralHash), not the canonical fingerprint: a
	// renumbered-but-isomorphic graph would make the cached literal
	// meaningless. Cancelled scans are never stored.
	Cache *memo.Cache
}

// DefaultFindOptions matches the paper's elimination check: 512 patterns
// and a 100k-conflict cap per candidate.
func DefaultFindOptions() FindOptions {
	return FindOptions{SimWords: 8, Seed: 1, Budget: exec.WithConflicts(100000)}
}

// FindEquivalentNode searches g for a node (in either phase) functionally
// equivalent to the function computed by literal spec in graph specG, where
// both graphs share the same primary-input ordering. It returns the
// matching literal in g and true, or false when no node matches.
//
// This implements the attacker's "does the critical node still exist?"
// query from the paper's structural-security evaluation: simulation
// signatures shortlist candidates, every solver counterexample further
// prunes the shortlist, and all SAT queries run on one shared incremental
// solver (no per-candidate solver construction).
func FindEquivalentNode(ctx context.Context, g *aig.AIG, specG *aig.AIG, spec aig.Lit, opt FindOptions) (aig.Lit, bool) {
	if g.NumInputs() != specG.NumInputs() {
		panic("cec: FindEquivalentNode input mismatch")
	}
	if opt.SimWords <= 0 {
		opt.SimWords = 8
	}
	if !opt.Cache.Enabled() || opt.Budget.Timeout != 0 {
		return findEquivalentNode(ctx, g, specG, spec, opt)
	}
	key := fmt.Sprintf("cec.find|%016x|%016x|spec=%d|sw=%d|seed=%d|conf=%d|simp=%s",
		g.StructuralHash(), specG.StructuralHash(), spec, opt.SimWords,
		opt.Seed, opt.Budget.Conflicts, simpSig(opt.Simp))
	type findVerdict struct {
		Found bool    `json:"found"`
		Lit   aig.Lit `json:"lit,omitempty"`
	}
	computed := false
	v, err := memo.Do(opt.Cache, key, func() (findVerdict, error) {
		computed = true
		if ctx != nil && ctx.Err() != nil {
			return findVerdict{}, ctx.Err()
		}
		lit, found := findEquivalentNode(ctx, g, specG, spec, opt)
		if ctx != nil && ctx.Err() != nil {
			// A cancelled scan may have stopped early: not a real verdict.
			return findVerdict{}, ctx.Err()
		}
		return findVerdict{Found: found, Lit: lit}, nil
	})
	if err != nil && !computed {
		// A concurrent leader was cancelled; run the scan locally.
		return findEquivalentNode(ctx, g, specG, spec, opt)
	}
	if err != nil {
		return 0, false
	}
	if !computed {
		opt.Trace.Counter("cec.find_node.cache_hit").Inc()
	}
	return v.Lit, v.Found
}

func findEquivalentNode(ctx context.Context, g *aig.AIG, specG *aig.AIG, spec aig.Lit, opt FindOptions) (aig.Lit, bool) {
	sp := opt.Trace.Span("cec.find_node",
		obs.Int("nodes", int64(g.NumNodes())))

	// Combined graph for SAT confirmation: import specG into a copy of g.
	// Structural hashing may land the spec cone directly on a node of g.
	comb := g.Copy()
	specIn := comb.ImportCone(specG, comb.Inputs(), []aig.Lit{spec})[0]
	if v := specIn.Var(); v >= 1 && v <= g.MaxVar() {
		sp.End(obs.Bool("found", true), obs.Int("sat_queries", 0))
		return specIn, true
	}

	// Signature-bucketed shortlist: candidates whose simulated words match
	// the spec's, in ascending variable order.
	vec := sim.RunRandom(comb, opt.SimWords, exec.DeriveSeed(opt.Seed, 0))
	specWords := vec.Lit(specIn)
	var queue []aig.Lit
	for v := uint32(1); v <= g.MaxVar(); v++ {
		for _, ph := range []bool{false, true} {
			cand := aig.MkLit(v, ph)
			cw := vec.Node(v)
			match := true
			for w := range cw {
				x := cw[w]
				if ph {
					x = ^x
				}
				if x != specWords[w] {
					match = false
					break
				}
			}
			if match {
				queue = append(queue, cand)
			}
		}
	}
	sp.Event("cec.shortlist", obs.Int("candidates", int64(len(queue))))

	// One incremental solver for every candidate query; learnt clauses
	// carry over, and each Sat answer prunes the remaining queue.
	s := sat.New()
	s.SetContext(ctx)
	e := cnf.NewEncoder(comb, s)
	for i := 0; i < comb.NumInputs(); i++ {
		e.InputLit(i) // pre-create solver variables for cex extraction
	}
	lspec := e.Encode(specIn)[0]
	fopt := opt.Simp
	fopt.NoVarElim = true
	simp.Apply(s, fopt, opt.Trace)
	queries := 0
	for len(queue) > 0 {
		if ctx != nil && ctx.Err() != nil {
			sp.End(obs.Bool("found", false), obs.Int("sat_queries", int64(queries)))
			return 0, false
		}
		cand := queue[0]
		queue = queue[1:]
		lc := e.Encode(cand)[0]
		d := cnf.XorLit(s, lc, lspec)
		s.SetBudget(opt.Budget.ConflictCap())
		queries++
		switch s.Solve(d) {
		case sat.Unsat:
			sp.End(obs.Bool("found", true), obs.Int("sat_queries", int64(queries)))
			return cand, true
		case sat.Sat:
			// Replay the counterexample on the remaining shortlist.
			pattern := make([]bool, comb.NumInputs())
			for i := range pattern {
				pattern[i] = s.ModelValue(e.InputLit(i))
			}
			lits := make([]aig.Lit, 0, len(queue)+1)
			lits = append(lits, queue...)
			lits = append(lits, specIn)
			vals := comb.EvalLits(pattern, lits...)
			specV := vals[len(vals)-1]
			kept := queue[:0]
			for i, q := range queue {
				if vals[i] == specV {
					kept = append(kept, q)
				}
			}
			queue = kept
		default:
			// Budget exhausted: skip this candidate, keep scanning.
		}
	}
	sp.End(obs.Bool("found", false), obs.Int("sat_queries", int64(queries)))
	return 0, false
}
