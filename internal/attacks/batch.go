package attacks

import (
	"fmt"
	"sync"
	"time"

	"obfuslock/internal/cnf"
	"obfuslock/internal/locking"
	"obfuslock/internal/memo"
	"obfuslock/internal/sat"
)

// defaultDIPBatch is the per-round DIP enumeration width when
// IOOptions.DIPBatch is 0. Sixty-four fills one bit-parallel
// simulation word exactly, so a round's oracle pass costs the same as
// a single pattern while the solve count drops 64-fold; since the
// solver (not simplification) dominates round cost, the widest batch
// wins on the point-function benchmarks (see EXPERIMENTS.md). The
// geometric width ramp keeps the wide default from burning iteration
// budgets on instances that terminate after a handful of DIPs.
const defaultDIPBatch = 64

// DIPQueue shares answered I/O pairs between concurrent attacks on the
// same locked circuit. A portfolio wires one queue per group of
// variants that race the same Locked/oracle pair: whenever a variant
// answers a DIP batch it publishes the ground-truth (input, output)
// pairs, and every other variant drains them into its own constraint
// set at the start of its next round — one variant's oracle work
// shrinks the others' key space for free. Pairs are ground truth for
// the shared circuit, so importing them is always sound; arrival order
// depends on scheduling, which is why only the (already
// scheduling-dependent) portfolio path uses a queue.
type DIPQueue struct {
	mu      sync.Mutex
	xs, ys  [][]bool
	src     []int
	members int
}

// NewDIPQueue returns an empty shared queue.
func NewDIPQueue() *DIPQueue { return &DIPQueue{} }

// Join registers one attack as a queue member and returns its private
// subscription handle. Each concurrent attack needs its own handle.
func (q *DIPQueue) Join() *DIPSub {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.members++
	return &DIPSub{q: q, id: q.members}
}

// DIPSub is one attack's view of a shared DIPQueue: a publisher
// identity plus a read cursor. It is owned by a single goroutine; the
// queue itself handles cross-goroutine synchronization.
type DIPSub struct {
	q      *DIPQueue
	id     int
	cursor int
}

// Publish records a batch of answered pairs for the other members.
// Ownership of the slices transfers to the queue: callers must not
// mutate them afterwards.
func (s *DIPSub) Publish(xs, ys [][]bool) {
	if s == nil || len(xs) == 0 {
		return
	}
	s.q.mu.Lock()
	for range xs {
		s.q.src = append(s.q.src, s.id)
	}
	s.q.xs = append(s.q.xs, xs...)
	s.q.ys = append(s.q.ys, ys...)
	s.q.mu.Unlock()
}

// Drain invokes f for every pair published by other members since the
// previous Drain and returns how many were delivered. Entries are
// delivered in publication order; the subscriber's own entries are
// skipped.
func (s *DIPSub) Drain(f func(x, y []bool)) int {
	if s == nil {
		return 0
	}
	s.q.mu.Lock()
	n := len(s.q.xs)
	xs := s.q.xs[s.cursor:n]
	ys := s.q.ys[s.cursor:n]
	src := s.q.src[s.cursor:n]
	s.cursor = n
	s.q.mu.Unlock()
	delivered := 0
	for i := range xs {
		if src[i] == s.id {
			continue
		}
		f(xs[i], ys[i])
		delivered++
	}
	return delivered
}

// miterImage is the memoized form of a constructed attack miter: a
// replayable solver snapshot plus the interface literals the loop needs.
// All fields are exported so the value survives the memo disk spill.
type miterImage struct {
	Img *sat.Image `json:"img"`
	X   []sat.Lit  `json:"x"`
	K1  []sat.Lit  `json:"k1"`
	K2  []sat.Lit  `json:"k2"`
	Act sat.Lit    `json:"act"`
}

// valid checks a (possibly disk-decoded) image against the circuit the
// attack is actually running on; anything inconsistent is rebuilt.
func (m *miterImage) valid(l *locking.Locked) bool {
	return m != nil && m.Img.Valid() &&
		len(m.X) == l.NumInputs && len(m.K1) == l.KeyBits && len(m.K2) == l.KeyBits
}

// buildMiter constructs the two-copy difference miter: both copies of
// the locked circuit share the input literals x, keep independent key
// literals k1/k2, and the output XORs are OR-ed into a difference signal
// guarded by the frozen activation literal act (act -> diff).
func buildMiter(l *locking.Locked) (s *sat.Solver, x, k1, k2 []sat.Lit, act sat.Lit) {
	s = sat.New()
	e1 := cnf.NewEncoder(l.Enc, s)
	e2 := cnf.NewEncoder(l.Enc, s)
	x = make([]sat.Lit, l.NumInputs)
	for i := range x {
		x[i] = e1.InputLit(i)
		e2.TieInput(i, x[i])
	}
	k1 = make([]sat.Lit, l.KeyBits)
	k2 = make([]sat.Lit, l.KeyBits)
	for i := 0; i < l.KeyBits; i++ {
		k1[i] = e1.InputLit(l.NumInputs + i)
		k2[i] = e2.InputLit(l.NumInputs + i)
	}
	o1 := e1.Encode()
	o2 := e2.Encode()
	diffs := make([]sat.Lit, len(o1))
	for i := range o1 {
		diffs[i] = cnf.XorLit(s, o1[i], o2[i])
	}
	diff := cnf.OrLit(s, diffs...)
	act = sat.MkLit(s.NewVar(), false)
	// act -> diff: the miter is active only under assumption act. The
	// activation literal is assumed both ways later, so it must survive
	// preprocessing.
	s.FreezeLit(act)
	s.AddClause(diff, act.Not())
	return s, x, k1, k2, act
}

// miterKey is the memo key of a locked circuit's attack miter. The
// fingerprint is renumbering-invariant, so isomorphic circuits share an
// entry: the replayed search is bit-identical for the graph the image
// was built from, and sound (same function, same interface positions)
// for any fingerprint-equal graph — see DESIGN.md for the one nuance
// this implies for cross-numbering search identity.
func miterKey(l *locking.Locked) string {
	return fmt.Sprintf("attack.miter/%s/m%d/k%d", l.Enc.Fingerprint(), l.NumInputs, l.KeyBits)
}

// cachedMiter returns a ready miter solver, replaying a memoized image
// when the cache holds one and building (and memoizing) it otherwise.
// With a nil cache it builds directly, image-free.
func cachedMiter(cache *memo.Cache, l *locking.Locked) (s *sat.Solver, x, k1, k2 []sat.Lit, act sat.Lit) {
	if cache == nil {
		return buildMiter(l)
	}
	mi, err := memo.Do(cache, miterKey(l), func() (*miterImage, error) {
		ms, mx, mk1, mk2, mact := buildMiter(l)
		return &miterImage{Img: ms.Export(), X: mx, K1: mk1, K2: mk2, Act: mact}, nil
	})
	if err == nil && mi.valid(l) {
		if rs := sat.NewFromImage(mi.Img); rs != nil {
			return rs, mi.X, mi.K1, mi.K2, mi.Act
		}
	}
	return buildMiter(l)
}

// blockDIP permanently excludes one input pattern from DIP enumeration.
// The clause carries the deactivated miter literal, so it can never
// constrain key extraction (which assumes act false), and once the
// pattern's I/O constraint is recorded the clause is implied outright —
// adding it can therefore never flip a later round's termination
// answer.
func (st *attackState) blockDIP(dip []bool) {
	lits := append(st.blockBuf[:0], st.actDiff.Not())
	for i, xl := range st.xLits {
		if dip[i] {
			lits = append(lits, xl.Not())
		} else {
			lits = append(lits, xl)
		}
	}
	st.blockBuf = lits
	st.s.AddClause(lits...)
}

// solveMiter is the round-deciding miter solve: it rides the parallel
// portfolio when the attack is configured with more than one SAT
// worker. Only solves whose Sat models come from the portfolio's
// pristine parent — and whose Unsat answers are purely semantic for the
// rest of the attack — may go through here; the enumeration re-solves
// inside dipRound must not, because their Sat/Unsat rhythm shapes the
// incremental solver state that later rounds build on, and an
// early-adopted helper refutation there would make that state (and
// hence later DIP models) depend on the worker count.
func (st *attackState) solveMiter(assumps ...sat.Lit) sat.Status {
	if st.satWorkers > 1 {
		return st.s.SolveParallel(st.ctx, st.satWorkers, assumps...)
	}
	return st.s.Solve(assumps...)
}

// dipRound runs the solve-and-enumerate half of one pipeline round: it
// solves the active miter and, on Sat, harvests up to k distinct DIPs by
// blocking each one and re-solving. The returned status is the round's
// *first* solve answer — the only one that decides termination. A
// non-Sat answer during enumeration merely ends the batch early: Unsat
// there just means no pattern distinct from the blocked ones exists
// until the I/O constraints land, and Unknown (budget or cancellation)
// is noticed by the caller on the next round.
func (st *attackState) dipRound(k int) (sat.Status, [][]bool) {
	status := st.solveMiter(st.actDiff)
	if status != sat.Sat {
		return status, nil
	}
	dips := make([][]bool, 0, k)
	for {
		dip := make([]bool, len(st.xLits))
		for i, xl := range st.xLits {
			dip[i] = st.s.ModelValue(xl)
		}
		dips = append(dips, dip)
		if len(dips) >= k {
			break
		}
		st.blockDIP(dip)
		if st.s.Solve(st.actDiff) != sat.Sat {
			break
		}
	}
	return sat.Sat, dips
}

// answerBatch feeds one enumerated batch through the bit-parallel
// oracle and records the batching histograms. Drained queue pairs never
// pass through here — they were answered by their publisher.
func (st *attackState) answerBatch(dips [][]bool) [][]bool {
	if st.hDPS != nil {
		st.hDPS.Record(int64(len(dips)))
	}
	var t0 time.Time
	if st.hOracle != nil {
		t0 = time.Now()
	}
	ys := st.oracle.QueryBatch(dips)
	if st.hOracle != nil {
		st.hOracle.RecordDuration(time.Since(t0))
	}
	if st.hBatch != nil {
		st.hBatch.Record(int64(len(dips)))
	}
	return ys
}

// extractKey returns the lexicographically smallest key consistent with
// every recorded I/O constraint, or nil when none exists. After an
// exact termination the consistent keys are exactly the functionally
// correct keys, so the canonical choice makes the recovered key a
// property of the circuit alone: byte-identical at any DIP batch width,
// worker count or constraint order.
//
// The minimization reuses each Sat model to skip bits already false, so
// it solves at most once per model-true bit. If a trial solve is cut
// off (cancellation), the prefix decided so far completed with the
// current model is still a consistent key and is returned as-is.
func (st *attackState) extractKey() []bool {
	off := st.actDiff.Not()
	if st.solveMiter(off) != sat.Sat {
		return nil
	}
	key := make([]bool, st.l.KeyBits)
	for i, kl := range st.k1Lits {
		key[i] = st.s.ModelValue(kl)
	}
	assumps := make([]sat.Lit, 1, st.l.KeyBits+2)
	assumps[0] = off
	for i, kl := range st.k1Lits {
		if !key[i] {
			assumps = append(assumps, kl.Not())
			continue
		}
		trial := append(assumps[:len(assumps):len(assumps)], kl.Not())
		switch st.solveMiter(trial...) {
		case sat.Sat:
			key[i] = false
			for j := i + 1; j < st.l.KeyBits; j++ {
				key[j] = st.s.ModelValue(st.k1Lits[j])
			}
			assumps = append(assumps, kl.Not())
		case sat.Unsat:
			assumps = append(assumps, kl)
		default:
			return key
		}
	}
	return key
}
