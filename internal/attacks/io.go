package attacks

import (
	"context"
	"time"

	"obfuslock/internal/aig"
	"obfuslock/internal/cnf"
	"obfuslock/internal/exec"
	"obfuslock/internal/locking"
	"obfuslock/internal/memo"
	"obfuslock/internal/obs"
	"obfuslock/internal/sat"
	"obfuslock/internal/simp"
)

// IOOptions bounds an oracle-guided attack.
type IOOptions struct {
	// Timeout on the whole attack (0: none). Folded into the attack's
	// context via exec.Budget.Bind; an external cancellation of the
	// caller's context has the same effect as an expired timeout.
	Timeout time.Duration
	// MaxIterations caps DIP iterations (0: unlimited).
	MaxIterations int
	// Seed drives randomized reinforcement (AppSAT).
	Seed int64
	// ReinforceEvery iterations AppSAT adds RandomQueries random-pattern
	// constraints (AppSAT only).
	ReinforceEvery int
	// RandomQueries per reinforcement round (AppSAT only).
	RandomQueries int
	// DIPBatch caps how many candidate DIPs one solve round enumerates
	// (via activation-guarded blocking clauses) and answers in a single
	// bit-parallel oracle pass. 0 selects the default width
	// (defaultDIPBatch); 1 is the classic serial loop. Rounds ramp up to
	// the cap (1, 2, 4, ...), so easy instances never enumerate a full
	// redundant batch. Any width recovers the same canonical key on
	// exact termination — batching changes wall clock, not answers.
	DIPBatch int
	// SatWorkers selects the parallelism of the attack's individual
	// miter solves (sat.Solver.SolveParallel): 0 or 1 keep the
	// sequential solver, negative resolves to GOMAXPROCS, n > 1 runs an
	// n-worker deterministic portfolio. The recovered key, iteration and
	// query counts are byte-identical at every setting (same resolution
	// convention as exec.Budget.SatWorkers); only wall clock changes.
	// Termination-round solves and key extraction ride the portfolio;
	// the within-round enumeration re-solves stay sequential, because
	// their Sat/Unsat alternation feeds the parent solver state that
	// later rounds replay.
	SatWorkers int
	// Simp controls CNF preprocessing of the miter before the first DIP
	// solve and inprocessing between iterations (zero value: enabled
	// with inprocessing every 16 DIPs; simp.Off() disables; set
	// InprocessEvery < 0 to preprocess once and never inprocess).
	Simp simp.Options
	// Cache, when non-nil, memoizes miter construction as a replayable
	// solver image keyed on the locked circuit's fingerprint: repeated
	// attacks on the same circuit skip encoding and go straight to the
	// DIP loop, with bit-identical search behavior.
	Cache *memo.Cache
	// Queue, when non-nil, shares answered I/O pairs with concurrent
	// attacks on the same locked circuit (see DIPQueue). Drained pairs
	// add constraints but never count as this attack's iterations or
	// queries. Arrival order is scheduling-dependent, so deterministic
	// paths leave Queue nil; Portfolio wires it automatically.
	Queue *DIPSub
	// Trace receives an attack.sat / attack.appsat span with one dip
	// event per DIP (elapsed time, oracle queries, per-round solver
	// conflict/learnt deltas), AppSAT reinforce events, and periodic
	// solver.progress events every ProgressConflicts conflicts. A nil
	// tracer costs nothing and never changes attack behavior.
	Trace *obs.Tracer
	// ProgressConflicts is the solver progress-event interval (default
	// 10000 conflicts; <0 disables).
	ProgressConflicts int64
}

// DefaultIOOptions is an unbounded exact attack.
func DefaultIOOptions() IOOptions {
	return IOOptions{ReinforceEvery: 5, RandomQueries: 8}
}

// inprocessDefault is the DIP-iteration cadence for inprocessing passes
// when IOOptions.Simp.InprocessEvery is 0.
const inprocessDefault = 16

// batchWidth normalizes the configured DIP batch width.
func (o IOOptions) batchWidth() int {
	if o.DIPBatch <= 0 {
		return defaultDIPBatch
	}
	return o.DIPBatch
}

// rampWidth is the enumeration width of 0-based round r: it doubles
// from 1 up to the configured batch width. Easy instances that
// terminate within a handful of DIPs therefore never spend a
// full-width round enumerating redundant patterns — iteration budgets
// calibrated for the serial loop keep their meaning — while long hunts
// reach the full width within log2(K) rounds, which is noise against
// the hundreds of rounds they run.
func (o IOOptions) rampWidth(r int) int {
	w := o.batchWidth()
	if r < 31 && 1<<r < w {
		return 1 << r
	}
	return w
}

// IOResult reports an I/O attack outcome.
type IOResult struct {
	// Key is the returned key (nil when none could be extracted).
	Key []bool
	// Exact is true when the attack proved no DIP remains (SAT attack
	// termination); the key is then provably correct.
	Exact bool
	// TimedOut is true when the budget expired — or the context was
	// cancelled — before the attack could terminate.
	TimedOut bool
	// Iterations counts DIPs processed.
	Iterations int
	// Queries counts oracle queries.
	Queries int
	// Shared counts I/O constraints imported from a portfolio DIP queue
	// (answered by other variants; included in neither Iterations nor
	// Queries).
	Shared int
	// Runtime of the attack.
	Runtime time.Duration
	// SolverStats are the miter solver's cumulative work counters.
	SolverStats sat.Stats
}

// attackState shares the miter machinery of SATAttack and AppSAT.
type attackState struct {
	l       *locking.Locked
	oracle  *locking.Oracle
	s       *sat.Solver
	xLits   []sat.Lit
	k1Lits  []sat.Lit
	k2Lits  []sat.Lit
	actDiff sat.Lit // activation literal for the difference miter
	stopped func() bool
	queue   *DIPSub
	// ctx and satWorkers drive the parallel portfolio of the round
	// solves (see solveMiter); satWorkers is already resolved.
	ctx        context.Context
	satWorkers int
	// cone amortizes I/O-constraint folding across a batch: one
	// bit-parallel pass over the locked circuit per batch instead of a
	// full-graph constant fold per DIP.
	cone *locking.KeyCone
	// Per-DIP scratch, pooled so addIOConstraint's and blockDIP's
	// allocations do not scale with the circuit size on every iteration.
	spec     *aig.AIG
	specEnc  *cnf.Encoder
	blockBuf []sat.Lit
	// Pipeline histograms; all nil with telemetry off, and the loops
	// then never read the clock for them.
	hDIP    *obs.Histogram // per-round latency (attack.dip_us)
	hBatch  *obs.Histogram // answered batch sizes (attack.batch_size)
	hOracle *obs.Histogram // batched oracle latency (attack.oracle_us)
	hDPS    *obs.Histogram // DIPs enumerated per solve round (attack.dips_per_solve)
}

// Histogram names of the batched DIP pipeline. All are record-only:
// detaching the tracer never changes attack behavior.
const (
	// MetricDIPLatency is the per-round pipeline latency histogram
	// (microseconds: miter solve + DIP enumeration + batched oracle
	// query + bulk constraint add).
	MetricDIPLatency = "attack.dip_us"
	// MetricBatchSize is the histogram of answered oracle batch sizes.
	MetricBatchSize = "attack.batch_size"
	// MetricOracleLatency is the batched oracle query latency histogram
	// (microseconds per QueryBatch call).
	MetricOracleLatency = "attack.oracle_us"
	// MetricDIPsPerSolve is the histogram of DIPs enumerated per solve
	// round (how much each round's blocking-clause enumeration yields).
	MetricDIPsPerSolve = "attack.dips_per_solve"
)

func newAttackState(ctx context.Context, l *locking.Locked, oracle *locking.Oracle, opt IOOptions, sp *obs.Span) *attackState {
	s, xLits, k1, k2, act := cachedMiter(opt.Cache, l)
	tr := opt.Trace
	st := &attackState{
		l: l, oracle: oracle, s: s,
		xLits: xLits, k1Lits: k1, k2Lits: k2, actDiff: act,
		stopped: func() bool { return ctx.Err() != nil },
		queue:   opt.Queue,
		ctx:     ctx, satWorkers: exec.SatWorkers(opt.SatWorkers),
		cone:    locking.NewKeyCone(l.Enc, l.NumInputs),
		spec:    aig.New(),
		hDIP:    tr.Histogram(MetricDIPLatency),
		hBatch:  tr.Histogram(MetricBatchSize),
		hOracle: tr.Histogram(MetricOracleLatency),
		hDPS:    tr.Histogram(MetricDIPsPerSolve),
	}
	s.SetContext(ctx)
	s.SetTelemetry(tr.Registry())
	if sp.Enabled() {
		progressEvery := opt.ProgressConflicts
		if progressEvery == 0 {
			progressEvery = 10000
		}
		if progressEvery > 0 {
			s.SetProgress(progressEvery, func(p sat.Progress) {
				sp.Event("solver.progress",
					obs.Int("conflicts", p.Conflicts),
					obs.Int("decisions", p.Decisions),
					obs.Int("propagations", p.Propagations),
					obs.Int("restarts", p.Restarts),
					obs.Int("learnt", p.Learnt),
					obs.Int("deleted", p.Deleted),
					obs.Int("clauses", int64(p.Clauses)))
			})
		}
	}
	return st
}

// addIOConstraint asserts enc(x, k) == y for both key copies by
// constant-folding the inputs into a key-only cone. The cone graph and
// its encoder are pooled on the state: each call rebuilds them in place
// instead of allocating circuit-sized tables per DIP. These clauses only
// mention frozen key literals and fresh solver variables, so they remain
// sound after any earlier variable elimination.
func (st *attackState) addIOConstraint(x, y []bool) {
	st.encodeSpec(locking.BindInputsInto(st.spec, st.l.Enc, st.l.NumInputs, x), y)
}

// addIOConstraints asserts enc(x, k) == y for a whole answered batch.
// One bit-parallel simulation pass over the locked circuit replaces the
// per-pattern full-graph constant fold of addIOConstraint; the bound
// cones (and therefore the emitted clauses) are identical.
func (st *attackState) addIOConstraints(xs, ys [][]bool, perDIP func(j int)) {
	if len(xs) == 1 {
		// A single pattern (the classic serial loop) folds directly; the
		// simulation pass only pays off amortized across a batch.
		st.addIOConstraint(xs[0], ys[0])
		if perDIP != nil {
			perDIP(0)
		}
		return
	}
	v := st.cone.Simulate(xs)
	for j := range xs {
		st.encodeSpec(st.cone.BindInto(st.spec, v, j), ys[j])
		if perDIP != nil {
			perDIP(j)
		}
	}
}

// encodeSpec asserts the key-only cone spec's outputs equal y for both
// key copies of the miter.
func (st *attackState) encodeSpec(spec *aig.AIG, y []bool) {
	for _, kLits := range [][]sat.Lit{st.k1Lits, st.k2Lits} {
		if st.specEnc == nil {
			st.specEnc = cnf.NewEncoder(spec, st.s)
		} else {
			st.specEnc.Reset(spec, st.s)
		}
		e := st.specEnc
		for i := 0; i < st.l.KeyBits; i++ {
			e.TieInput(i, kLits[i])
		}
		outs := e.Encode()
		for i, o := range outs {
			if y[i] {
				st.s.AddClause(o)
			} else {
				st.s.AddClause(o.Not())
			}
		}
	}
}

// drainQueue imports I/O pairs answered by other portfolio variants
// since the last round. Imported pairs become constraints immediately
// but are accounted separately from the attack's own work.
func (st *attackState) drainQueue(res *IOResult) {
	if st.queue == nil {
		return
	}
	res.Shared += st.queue.Drain(func(x, y []bool) { st.addIOConstraint(x, y) })
}

// inprocessDue reports whether the serial inprocessing cadence fires
// anywhere in the iteration span (lo, hi] that one batched round just
// covered; the pass then runs once for the whole round.
func inprocessDue(o simp.Options, lo, hi int) bool {
	for it := lo + 1; it <= hi; it++ {
		if o.InprocessDue(it, inprocessDefault) {
			return true
		}
	}
	return false
}

// SATAttack runs the oracle-guided SAT attack (Subramanyan et al.): find a
// distinguishing input pattern, query the oracle, constrain both key
// copies, repeat until no DIP remains; then any consistent key is correct
// and the canonical (lexicographically smallest) one is returned. The DIP
// loop runs in batched rounds — up to IOOptions.DIPBatch patterns are
// enumerated per solve and answered by one bit-parallel oracle pass —
// which changes wall clock but neither the recovered key nor the oracle
// query accounting. Cancelling ctx stops the attack promptly with a
// TimedOut result.
func SATAttack(ctx context.Context, l *locking.Locked, oracle *locking.Oracle, opt IOOptions) IOResult {
	start := time.Now()
	ctx, cancel := exec.WithTimeout(opt.Timeout).Bind(ctx)
	defer cancel()
	sp := opt.Trace.Span("attack.sat",
		obs.Int("inputs", int64(l.NumInputs)),
		obs.Int("key_bits", int64(l.KeyBits)),
		obs.Int("enc_nodes", int64(l.Enc.NumNodes())),
		obs.Int("dip_batch", int64(opt.batchWidth())))
	st := newAttackState(ctx, l, oracle, opt, sp)
	// Preprocess the miter once up front. All interface literals (inputs,
	// both key copies, the activation literal) are frozen, so full
	// variable elimination is sound here and for every later constraint.
	simp.Apply(st.s, opt.Simp, opt.Trace)
	res := IOResult{}
	for round := 0; ; round++ {
		if opt.MaxIterations > 0 && res.Iterations >= opt.MaxIterations {
			res.TimedOut = true
			break
		}
		width := opt.rampWidth(round)
		if opt.MaxIterations > 0 && res.Iterations+width > opt.MaxIterations {
			width = opt.MaxIterations - res.Iterations
		}
		st.drainQueue(&res)
		var roundStart time.Time
		if st.hDIP != nil {
			roundStart = time.Now()
		}
		prev := st.s.Stats()
		status, dips := st.dipRound(width)
		if status == sat.Unknown {
			res.TimedOut = true
			break
		}
		if status == sat.Unsat {
			// No DIP remains: extract the canonical correct key.
			res.Key = st.extractKey()
			res.Exact = res.Key != nil
			break
		}
		ys := st.answerBatch(dips)
		d := st.s.Stats().Sub(prev)
		st.addIOConstraints(dips, ys, func(j int) {
			res.Iterations++
			if sp.Enabled() {
				sp.Event("dip",
					obs.Int("iter", int64(res.Iterations)),
					obs.Dur("elapsed", time.Since(start)),
					obs.Int("queries", int64(oracle.Queries)),
					obs.Int("batch", int64(len(dips))),
					obs.Int("conflicts_delta", d.Conflicts),
					obs.Int("learnt_delta", d.Learnt),
					obs.Int("decisions_delta", d.Decisions))
			}
		})
		if st.queue != nil {
			st.queue.Publish(dips, ys)
		}
		if st.hDIP != nil {
			st.hDIP.RecordDuration(time.Since(roundStart))
		}
		if inprocessDue(opt.Simp, res.Iterations-len(dips), res.Iterations) {
			simp.Apply(st.s, opt.Simp, opt.Trace)
		}
		if st.stopped() {
			res.TimedOut = true
			break
		}
	}
	if res.TimedOut && res.Key == nil {
		res.Key = st.extractKey()
	}
	res.Queries = oracle.Queries
	res.Runtime = time.Since(start)
	res.SolverStats = st.s.Stats()
	sp.End(
		obs.Int("iterations", int64(res.Iterations)),
		obs.Int("queries", int64(res.Queries)),
		obs.Int("shared", int64(res.Shared)),
		obs.Bool("exact", res.Exact),
		obs.Bool("timed_out", res.TimedOut),
		obs.Bool("key_found", res.Key != nil),
		obs.Int("conflicts", res.SolverStats.Conflicts))
	return res
}

// AppSAT runs the approximate SAT attack (Shamsi et al.): the DIP loop is
// augmented with random-query reinforcement and cut off after a fixed
// iteration budget, returning a key not yet proved incorrect. The loop
// runs in the same batched rounds as SATAttack; reinforcement rounds owed
// by the iterations a batch covered run right after it, drawing the same
// pattern stream as the serial loop. Cancelling ctx stops the attack
// promptly with a TimedOut result.
func AppSAT(ctx context.Context, l *locking.Locked, oracle *locking.Oracle, opt IOOptions) IOResult {
	start := time.Now()
	ctx, cancel := exec.WithTimeout(opt.Timeout).Bind(ctx)
	defer cancel()
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 2048
	}
	if opt.ReinforceEvery <= 0 {
		opt.ReinforceEvery = 5
	}
	if opt.RandomQueries <= 0 {
		opt.RandomQueries = 8
	}
	sp := opt.Trace.Span("attack.appsat",
		obs.Int("inputs", int64(l.NumInputs)),
		obs.Int("key_bits", int64(l.KeyBits)),
		obs.Int("max_iterations", int64(opt.MaxIterations)),
		obs.Int("dip_batch", int64(opt.batchWidth())))
	st := newAttackState(ctx, l, oracle, opt, sp)
	simp.Apply(st.s, opt.Simp, opt.Trace)
	rng := newSplitMix(opt.Seed)
	res := IOResult{}
	reinforced := 0
	for round := 0; res.Iterations < opt.MaxIterations; round++ {
		width := opt.rampWidth(round)
		if res.Iterations+width > opt.MaxIterations {
			width = opt.MaxIterations - res.Iterations
		}
		st.drainQueue(&res)
		var roundStart time.Time
		if st.hDIP != nil {
			roundStart = time.Now()
		}
		prev := st.s.Stats()
		status, dips := st.dipRound(width)
		if status == sat.Unknown {
			res.TimedOut = true
			break
		}
		if status == sat.Unsat {
			res.Key = st.extractKey()
			res.Exact = res.Key != nil
			break
		}
		ys := st.answerBatch(dips)
		d := st.s.Stats().Sub(prev)
		st.addIOConstraints(dips, ys, func(j int) {
			res.Iterations++
			if sp.Enabled() {
				sp.Event("dip",
					obs.Int("iter", int64(res.Iterations)),
					obs.Dur("elapsed", time.Since(start)),
					obs.Int("queries", int64(oracle.Queries)),
					obs.Int("batch", int64(len(dips))),
					obs.Int("conflicts_delta", d.Conflicts),
					obs.Int("learnt_delta", d.Learnt),
					obs.Int("decisions_delta", d.Decisions))
			}
		})
		if st.queue != nil {
			st.queue.Publish(dips, ys)
		}
		if st.hDIP != nil {
			st.hDIP.RecordDuration(time.Since(roundStart))
		}
		// Run the reinforcement rounds the batch's iterations owe,
		// drawing random patterns in the same order as the serial loop
		// and answering each round with one bit-parallel oracle pass.
		for owed := res.Iterations / opt.ReinforceEvery; reinforced < owed; reinforced++ {
			xs := make([][]bool, opt.RandomQueries)
			for q := range xs {
				x := make([]bool, l.NumInputs)
				for i := range x {
					x[i] = rng.next()&1 == 1
				}
				xs[q] = x
			}
			rys := oracle.QueryBatch(xs)
			st.addIOConstraints(xs, rys, nil)
			if sp.Enabled() {
				sp.Event("reinforce",
					obs.Int("round", int64(reinforced+1)),
					obs.Int("random_queries", int64(opt.RandomQueries)),
					obs.Int("queries", int64(oracle.Queries)))
			}
		}
		if inprocessDue(opt.Simp, res.Iterations-len(dips), res.Iterations) {
			simp.Apply(st.s, opt.Simp, opt.Trace)
		}
		if st.stopped() {
			res.TimedOut = true
			break
		}
	}
	if res.Key == nil {
		res.Key = st.extractKey()
	}
	res.Queries = oracle.Queries
	res.Runtime = time.Since(start)
	res.SolverStats = st.s.Stats()
	sp.End(
		obs.Int("iterations", int64(res.Iterations)),
		obs.Int("queries", int64(res.Queries)),
		obs.Int("shared", int64(res.Shared)),
		obs.Bool("exact", res.Exact),
		obs.Bool("timed_out", res.TimedOut),
		obs.Bool("key_found", res.Key != nil),
		obs.Int("conflicts", res.SolverStats.Conflicts))
	return res
}

// splitMix is a tiny deterministic PRNG for reinforcement patterns.
type splitMix struct{ state uint64 }

func newSplitMix(seed int64) *splitMix { return &splitMix{uint64(seed)*0x9E3779B97F4A7C15 + 1} }

func (s *splitMix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// SensitizationResult reports the sensitization attack outcome.
type SensitizationResult struct {
	// Isolatable marks key bits that could be sensitized to an output with
	// all other key bits muted.
	Isolatable []bool
	// Recovered holds bit values inferred via oracle queries for the
	// isolatable bits (undefined elsewhere).
	Recovered []bool
	// NumIsolatable counts true entries of Isolatable.
	NumIsolatable int
	// TimedOut is true when the context was cancelled before every key
	// bit was analyzed (the reported bits are still valid).
	TimedOut bool
	// Runtime of the analysis.
	Runtime time.Duration
}

// Sensitization runs the key-sensitization attack (Rajendran et al.): for
// each key bit it searches for an input pattern propagating that bit to an
// output while the other key bits are muted, then infers the bit with one
// oracle query. ObfusLock's input-permutation keys resist this because all
// key bits interfere on every path. budget bounds each per-bit solve; so
// controls CNF preprocessing of each per-bit solver (every literal the
// attack reads back is a frozen encoder input, so full elimination is
// sound).
func Sensitization(ctx context.Context, l *locking.Locked, oracle *locking.Oracle, budget exec.Budget, so simp.Options) SensitizationResult {
	start := time.Now()
	ctx, cancel := budget.Bind(ctx)
	defer cancel()
	res := SensitizationResult{
		Isolatable: make([]bool, l.KeyBits),
		Recovered:  make([]bool, l.KeyBits),
	}
	for i := 0; i < l.KeyBits; i++ {
		if ctx.Err() != nil {
			res.TimedOut = true
			break
		}
		// Two copies sharing x and all key bits except bit i (0 vs 1).
		s := sat.New()
		s.SetBudget(budget.ConflictCap())
		s.SetContext(ctx)
		e1 := cnf.NewEncoder(l.Enc, s)
		e2 := cnf.NewEncoder(l.Enc, s)
		xLits := make([]sat.Lit, l.NumInputs)
		for j := range xLits {
			xLits[j] = e1.InputLit(j)
			e2.TieInput(j, xLits[j])
		}
		kLits := make([]sat.Lit, l.KeyBits)
		for j := 0; j < l.KeyBits; j++ {
			if j == i {
				continue
			}
			kLits[j] = e1.InputLit(l.NumInputs + j)
			e2.TieInput(l.NumInputs+j, kLits[j])
		}
		ki1 := e1.InputLit(l.NumInputs + i)
		ki2 := e2.InputLit(l.NumInputs + i)
		s.AddClause(ki1.Not()) // copy 1: k_i = 0
		s.AddClause(ki2)       // copy 2: k_i = 1
		o1 := e1.Encode()
		o2 := e2.Encode()
		diffs := make([]sat.Lit, len(o1))
		for j := range o1 {
			diffs[j] = cnf.XorLit(s, o1[j], o2[j])
		}
		s.AddClause(cnf.OrLit(s, diffs...))
		if !simp.Apply(s, so, nil) || s.Solve() != sat.Sat {
			continue // bit cannot be sensitized at all
		}
		x := make([]bool, l.NumInputs)
		for j, xl := range xLits {
			x[j] = s.ModelValue(xl)
		}
		krest := make([]bool, l.KeyBits)
		for j, kl := range kLits {
			if j != i {
				krest[j] = s.ModelValue(kl)
			}
		}
		// Mute check: at (x, krest), no other single key bit may influence
		// the outputs for either value of k_i.
		if !otherBitsMuted(l, x, krest, i) {
			continue
		}
		res.Isolatable[i] = true
		res.NumIsolatable++
		// Infer the bit with one oracle query.
		y := oracle.Query(x)
		k0 := append([]bool(nil), krest...)
		k0[i] = false
		if outputsEqual(evalLocked(l, x, k0), y) {
			res.Recovered[i] = false
		} else {
			res.Recovered[i] = true
		}
	}
	res.Runtime = time.Since(start)
	return res
}

func evalLocked(l *locking.Locked, x, k []bool) []bool {
	full := make([]bool, 0, len(x)+len(k))
	full = append(full, x...)
	full = append(full, k...)
	return l.Enc.Eval(full)
}

func outputsEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func otherBitsMuted(l *locking.Locked, x, krest []bool, i int) bool {
	for _, base := range []bool{false, true} {
		k := append([]bool(nil), krest...)
		k[i] = base
		ref := evalLocked(l, x, k)
		for j := 0; j < l.KeyBits; j++ {
			if j == i {
				continue
			}
			kf := append([]bool(nil), k...)
			kf[j] = !kf[j]
			if !outputsEqual(evalLocked(l, x, kf), ref) {
				return false
			}
		}
	}
	return true
}
