// Command benchgen emits the ObfusLock evaluation benchmark suite as
// ISCAS .bench files.
//
// Usage:
//
//	benchgen [-small] [-out DIR] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"obfuslock"
)

func main() {
	out := flag.String("out", ".", "output directory")
	small := flag.Bool("small", false, "emit the reduced-size suite instead of the full Table I circuits")
	list := flag.Bool("list", false, "list benchmarks without writing files")
	flag.Parse()

	suite := obfuslock.Benchmarks()
	if *small {
		suite = obfuslock.SmallBenchmarks()
	}
	for _, b := range suite {
		if *list {
			fmt.Printf("%-10s paper-nodes=%d\n", b.Name, b.PaperNodes)
			continue
		}
		g := b.Build()
		path := filepath.Join(*out, b.Name+".bench")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := obfuslock.WriteBench(f, g); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st := g.Stats()
		fmt.Printf("%-10s -> %s  (%s)\n", b.Name, path, st)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
