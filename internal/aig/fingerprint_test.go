package aig

import "testing"

// buildMux builds out = s ? a : b with the given input creation order.
func buildMux(order []int) *AIG {
	g := New()
	lits := make([]Lit, 3)
	names := []string{"s", "a", "b"}
	for _, i := range order {
		lits[i] = g.AddInput(names[i])
	}
	s, a, b := lits[0], lits[1], lits[2]
	out := g.And(g.And(s, a).Not(), g.And(s.Not(), b).Not()).Not()
	g.AddOutput(out, "o")
	return g
}

func TestFingerprintRenumberingInvariant(t *testing.T) {
	// Same function, same PI positions, different node numbering: build the
	// two AND legs in opposite orders so internal variables differ.
	g1 := New()
	in1 := g1.AddInputs(3)
	l1 := g1.And(in1[0], in1[1])
	r1 := g1.And(in1[1].Not(), in1[2])
	g1.AddOutput(g1.And(l1.Not(), r1.Not()).Not(), "o")

	g2 := New()
	in2 := g2.AddInputs(3)
	r2 := g2.And(in2[1].Not(), in2[2]) // built first: different var index
	l2 := g2.And(in2[0], in2[1])
	g2.AddOutput(g2.And(r2.Not(), l2.Not()).Not(), "o")

	if f1, f2 := g1.Fingerprint(), g2.Fingerprint(); f1 != f2 {
		t.Fatalf("isomorphic graphs fingerprint differently: %s vs %s", f1, f2)
	}
	if g1.StructuralHash() == g2.StructuralHash() {
		t.Fatalf("StructuralHash should distinguish renumbered graphs")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	g := New()
	in := g.AddInputs(2)
	g.AddOutput(g.And(in[0], in[1]), "o")

	h := New()
	hin := h.AddInputs(2)
	h.AddOutput(h.And(hin[0], hin[1].Not()), "o")

	x := New()
	xin := x.AddInputs(2)
	x.AddOutput(x.Xor(xin[0], xin[1]), "o")

	swapped := New()
	sin := swapped.AddInputs(2)
	swapped.AddOutput(swapped.And(sin[1], sin[0].Not()), "o") // a∧¬b vs ¬a∧b

	fg, fh, fx, fs := g.Fingerprint(), h.Fingerprint(), x.Fingerprint(), swapped.Fingerprint()
	for _, pair := range [][2]Fingerprint{{fg, fh}, {fg, fx}, {fh, fx}, {fh, fs}} {
		if pair[0] == pair[1] {
			t.Fatalf("distinct functions share fingerprint %s", pair[0])
		}
	}
	if fg.IsZero() || fg.String() == "" {
		t.Fatalf("bad fingerprint rendering")
	}
}

func TestFingerprintPIPositionMatters(t *testing.T) {
	// out = s?a:b with inputs declared in different orders: the function over
	// positional inputs differs, so fingerprints must differ.
	g1 := buildMux([]int{0, 1, 2})
	g2 := buildMux([]int{1, 0, 2})
	if g1.Fingerprint() == g2.Fingerprint() {
		t.Fatalf("PI positions should be part of the fingerprint")
	}
}

func TestFingerprintConeMatchesExtraction(t *testing.T) {
	g := New()
	in := g.AddInputs(4)
	n1 := g.And(in[0], in[1])
	n2 := g.Xor(n1, in[3])
	n3 := g.Maj(n1, in[2], n2.Not())
	g.AddOutput(n3, "o")
	g.AddOutput(n1, "p")

	for _, root := range []Lit{n1, n2, n3, n3.Not()} {
		cone, _ := g.ExtractCone(root)
		if got, want := g.FingerprintCone(root), cone.Fingerprint(); got != want {
			t.Fatalf("root %v: FingerprintCone %s != extracted %s", root, got, want)
		}
	}
}

func TestFingerprintOutputPhaseAndOrder(t *testing.T) {
	g := New()
	in := g.AddInputs(2)
	a := g.And(in[0], in[1])
	g.AddOutput(a, "o")

	h := New()
	hin := h.AddInputs(2)
	h.AddOutput(h.And(hin[0], hin[1]).Not(), "o")
	if g.Fingerprint() == h.Fingerprint() {
		t.Fatalf("output phase should change the fingerprint")
	}
}
