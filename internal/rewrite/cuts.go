package rewrite

import (
	"sort"

	"obfuslock/internal/aig"
)

// Cut is a set of leaf variables that cuts the cone of a node; every path
// from the node to the inputs passes through a leaf.
type Cut struct {
	Leaves []uint32 // sorted ascending
}

func (c Cut) size() int { return len(c.Leaves) }

// mergeLeaves unions two sorted leaf sets, failing (nil) beyond k leaves.
func mergeLeaves(a, b []uint32, k int) []uint32 {
	out := make([]uint32, 0, k)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var next uint32
		switch {
		case i >= len(a):
			next = b[j]
			j++
		case j >= len(b):
			next = a[i]
			i++
		case a[i] < b[j]:
			next = a[i]
			i++
		case a[i] > b[j]:
			next = b[j]
			j++
		default:
			next = a[i]
			i++
			j++
		}
		if len(out) == k {
			return nil
		}
		out = append(out, next)
	}
	return out
}

func dominates(a, b []uint32) bool {
	// a dominates b if a ⊆ b.
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

// EnumerateCuts computes up to perNode k-feasible cuts for every variable,
// preferring small cuts. The trivial cut {v} is always present.
func EnumerateCuts(g *aig.AIG, k, perNode int) [][]Cut {
	cuts := make([][]Cut, g.MaxVar()+1)
	cuts[0] = []Cut{{Leaves: []uint32{0}}}
	add := func(set []Cut, leaves []uint32) []Cut {
		if leaves == nil {
			return set
		}
		for _, c := range set {
			if dominates(c.Leaves, leaves) {
				return set
			}
		}
		// Remove cuts dominated by the new one.
		out := set[:0]
		for _, c := range set {
			if !dominates(leaves, c.Leaves) {
				out = append(out, c)
			}
		}
		return append(out, Cut{Leaves: leaves})
	}
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if g.Op(v) == aig.OpInput {
			cuts[v] = []Cut{{Leaves: []uint32{v}}}
			continue
		}
		fan := g.Fanins(v)
		var set []Cut
		switch len(fan) {
		case 2:
			for _, ca := range cuts[fan[0].Var()] {
				for _, cb := range cuts[fan[1].Var()] {
					set = add(set, mergeLeaves(ca.Leaves, cb.Leaves, k))
				}
			}
		case 3:
			for _, ca := range cuts[fan[0].Var()] {
				for _, cb := range cuts[fan[1].Var()] {
					ab := mergeLeaves(ca.Leaves, cb.Leaves, k)
					if ab == nil {
						continue
					}
					for _, cc := range cuts[fan[2].Var()] {
						set = add(set, mergeLeaves(ab, cc.Leaves, k))
					}
				}
			}
		}
		sort.Slice(set, func(i, j int) bool { return set[i].size() < set[j].size() })
		if len(set) > perNode-1 {
			set = set[:perNode-1]
		}
		set = append(set, Cut{Leaves: []uint32{v}}) // trivial cut last
		cuts[v] = set
	}
	return cuts
}

// CutTruth computes the truth table of node v over the cut leaves
// (up to 6 leaves). The table is replicated across all 64 bits.
func CutTruth(g *aig.AIG, v uint32, leaves []uint32) (uint64, bool) {
	if len(leaves) > 6 {
		return 0, false
	}
	memo := map[uint32]uint64{0: 0}
	for i, lf := range leaves {
		memo[lf] = VarTruth(i)
	}
	var eval func(u uint32) (uint64, bool)
	eval = func(u uint32) (uint64, bool) {
		if tt, ok := memo[u]; ok {
			return tt, true
		}
		if g.Op(u) == aig.OpInput {
			return 0, false // reached an input that is not a leaf
		}
		fan := g.Fanins(u)
		fv := func(l aig.Lit) (uint64, bool) {
			tt, ok := eval(l.Var())
			if !ok {
				return 0, false
			}
			if l.IsCompl() {
				tt = ^tt
			}
			return tt, true
		}
		a, ok := fv(fan[0])
		if !ok {
			return 0, false
		}
		b, ok := fv(fan[1])
		if !ok {
			return 0, false
		}
		var tt uint64
		switch g.Op(u) {
		case aig.OpAnd:
			tt = a & b
		case aig.OpXor:
			tt = a ^ b
		case aig.OpMaj:
			c, ok := fv(fan[2])
			if !ok {
				return 0, false
			}
			tt = a&b | a&c | b&c
		}
		memo[u] = tt
		return tt, true
	}
	return eval(v)
}

// BuildCover constructs the OR-of-cubes cover in g over the given leaf
// literals, returning the root literal.
func BuildCover(g *aig.AIG, cover []Cube, leafLits []aig.Lit) aig.Lit {
	if len(cover) == 0 {
		return aig.ConstFalse
	}
	terms := make([]aig.Lit, len(cover))
	for ci, c := range cover {
		var lits []aig.Lit
		for i := 0; i < len(leafLits); i++ {
			if c.Pos>>uint(i)&1 == 1 {
				lits = append(lits, leafLits[i])
			}
			if c.Neg>>uint(i)&1 == 1 {
				lits = append(lits, leafLits[i].Not())
			}
		}
		terms[ci] = g.AndN(lits...)
	}
	return g.OrN(terms...)
}

// BuildFromTruth synthesizes the function tt over leafLits in g by taking
// the cheaper of the ISOP covers of tt and its complement.
func BuildFromTruth(g *aig.AIG, tt uint64, leafLits []aig.Lit) aig.Lit {
	nvars := len(leafLits)
	cPos, _ := Isop(tt, tt, nvars)
	cNeg, _ := Isop(^tt, ^tt, nvars)
	if CoverCost(cNeg) < CoverCost(cPos) {
		return BuildCover(g, cNeg, leafLits).Not()
	}
	return BuildCover(g, cPos, leafLits)
}
