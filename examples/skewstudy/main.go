// Skewness-estimation study: compares the three estimators of Section IV-B
// — algebraic propagation, Monte-Carlo simulation, and Boolean multi-level
// splitting — on functions of known skewness, demonstrating why splitting
// is the only one that scales to exponentially rare events.
package main

import (
	"fmt"
	"math"

	"obfuslock/internal/aig"
	"obfuslock/internal/netlistgen"
	"obfuslock/internal/skew"
)

func main() {
	fmt.Println("== AND chains (exact skewness = k bits) ==")
	fmt.Println("k     exact   algebraic   monte-carlo   splitting")
	for _, k := range []int{4, 8, 12, 16, 20} {
		g := aig.New()
		in := g.AddInputs(k + 4)
		acc := in[0]
		for i := 1; i < k; i++ {
			acc = g.And(acc, in[i])
		}
		g.AddOutput(acc, "f")

		alg := skew.Bits(skew.AlgebraicLit(skew.Algebraic(g), acc))
		mc := skew.Bits(skew.MonteCarlo(g, acc, 64, 1)) // 4096 samples
		so := skew.DefaultSplittingOptions()
		so.Seed = 2
		sp := skew.Bits(skew.Splitting(g, acc, nil, so))
		fmt.Printf("%-4d  %5d   %9.1f   %11s   %9.1f\n",
			k, k, alg, fmtBits(mc), sp)
	}

	fmt.Println("\n== Reconvergent logic (algebraic independence assumption fails) ==")
	// f = (a&b) & (a&c): true probability 1/8, algebraic claims 1/16.
	g := aig.New()
	in := g.AddInputs(3)
	f := g.And(g.And(in[0], in[1]), g.And(in[0], in[2]))
	g.AddOutput(f, "f")
	alg := skew.Bits(skew.AlgebraicLit(skew.Algebraic(g), f))
	mc := skew.Bits(skew.MonteCarlo(g, f, 256, 3))
	fmt.Printf("(a&b)&(a&c): exact 3.0 bits, algebraic %.1f (wrong), monte-carlo %.1f\n", alg, mc)

	fmt.Println("\n== Multiplier MSB-side carries (real circuit) ==")
	c := netlistgen.Multiplier(8)
	probs := skew.Algebraic(c)
	top := skew.TopSkewedNodes(c, 3, 4)
	for _, lit := range top {
		algB := skew.Bits(skew.AlgebraicLit(probs, lit))
		mcB := skew.Bits(skew.MonteCarlo(c, lit, 256, 4))
		so := skew.DefaultSplittingOptions()
		so.Seed = 5
		spB := skew.Bits(skew.Splitting(c, lit, nil, so))
		fmt.Printf("node %-6v  algebraic %5.1f   monte-carlo %-6s  splitting %5.1f bits\n",
			lit, algB, fmtBits(mcB), spB)
	}

	fmt.Println("\nMonte-Carlo saturates once events become rarer than ~1/samples;")
	fmt.Println("multi-level splitting keeps tracking the true value, which is what")
	fmt.Println("lets ObfusLock certify 20..50-bit locking circuits in seconds.")
}

func fmtBits(b float64) string {
	if math.IsInf(b, 1) {
		return "saturated"
	}
	return fmt.Sprintf("%.1f", b)
}
