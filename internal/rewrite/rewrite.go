package rewrite

import (
	"math/rand"

	"obfuslock/internal/aig"
)

// Options configures FunctionalRewrite.
type Options struct {
	// CutSize is the maximum cut width considered (<= 6).
	CutSize int
	// CutsPerNode bounds cut enumeration.
	CutsPerNode int
	// Seed randomizes structural choices when Randomize is true.
	Seed int64
	// Randomize picks among equal-cost equivalent structures at random —
	// the diversification knob ObfusLock uses to break deterministic
	// locking patterns.
	Randomize bool
	// ZeroCost accepts equal-size replacements too (more churn, useful for
	// obfuscation; classic size-driven rewriting sets this false).
	ZeroCost bool
}

// DefaultOptions is size-driven deterministic rewriting.
func DefaultOptions() Options {
	return Options{CutSize: 4, CutsPerNode: 8}
}

// ObfuscationOptions is randomized zero-cost rewriting used to erase
// structural traces after locking.
func ObfuscationOptions(seed int64) Options {
	return Options{CutSize: 4, CutsPerNode: 8, Seed: seed, Randomize: true, ZeroCost: true}
}

// FunctionalRewrite rebuilds the graph, replacing local cones by ISOP-based
// resyntheses of their cut functions whenever that does not increase size
// (standard DAG-aware AIG rewriting, simplified). The result is cleaned up
// and functionally equivalent to the input.
func FunctionalRewrite(g *aig.AIG, opt Options) *aig.AIG {
	if opt.CutSize <= 0 || opt.CutSize > 6 {
		opt.CutSize = 4
	}
	if opt.CutsPerNode <= 0 {
		opt.CutsPerNode = 8
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	cuts := EnumerateCuts(g, opt.CutSize, opt.CutsPerNode)

	ng := aig.New()
	ng.Name = g.Name
	m := make([]aig.Lit, g.MaxVar()+1)
	m[0] = aig.ConstFalse
	for i := 0; i < g.NumInputs(); i++ {
		m[g.InputVar(i)] = ng.AddInput(g.InputName(i))
	}
	mapped := func(l aig.Lit) aig.Lit { return m[l.Var()].NotIf(l.IsCompl()) }

	for v := uint32(1); v <= g.MaxVar(); v++ {
		if g.Op(v) == aig.OpInput {
			continue
		}
		fan := g.Fanins(v)
		// Candidate A: direct reconstruction.
		before := ng.MaxVar()
		var direct aig.Lit
		switch g.Op(v) {
		case aig.OpAnd:
			direct = ng.And(mapped(fan[0]), mapped(fan[1]))
		case aig.OpXor:
			direct = ng.Xor(mapped(fan[0]), mapped(fan[1]))
		case aig.OpMaj:
			direct = ng.Maj(mapped(fan[0]), mapped(fan[1]), mapped(fan[2]))
		}
		directCost := int(ng.MaxVar() - before)

		// Candidate B: best non-trivial cut resynthesis.
		best := direct
		bestCost := directCost
		for _, cut := range cuts[v] {
			if len(cut.Leaves) < 2 || (len(cut.Leaves) == 1 && cut.Leaves[0] == v) {
				continue
			}
			tt, ok := CutTruth(g, v, cut.Leaves)
			if !ok {
				continue
			}
			leafLits := make([]aig.Lit, len(cut.Leaves))
			allMapped := true
			for i, lf := range cut.Leaves {
				if m[lf] == 0 && lf != 0 && g.Op(lf) != aig.OpConst {
					// Leaf not mapped (possible when a leaf is the constant
					// or an unprocessed node — should not happen in topo
					// order, but guard anyway).
					if g.Op(lf) != aig.OpInput {
						allMapped = false
						break
					}
				}
				leafLits[i] = m[lf]
			}
			if !allMapped {
				continue
			}
			b := ng.MaxVar()
			cand := BuildFromTruth(ng, tt, leafLits)
			cost := int(ng.MaxVar() - b)
			replace := cost < bestCost
			if !replace && opt.ZeroCost && cost == bestCost {
				replace = !opt.Randomize || rng.Intn(2) == 0
			}
			if replace {
				best, bestCost = cand, cost
			}
		}
		m[v] = best
	}
	for i := 0; i < g.NumOutputs(); i++ {
		ng.AddOutput(mapped(g.Output(i)), g.OutputName(i))
	}
	return ng.Cleanup()
}

// Unbalance rebuilds the graph with AND and XOR trees flattened into
// left-deep chains (shallow operands first). This maximizes logic depth —
// the reshaping step that precedes Boolean multi-level splitting ("reversely
// applying depth-oriented optimizations").
func Unbalance(g *aig.AIG) *aig.AIG {
	ng := aig.New()
	ng.Name = g.Name
	m := make([]aig.Lit, g.MaxVar()+1)
	m[0] = aig.ConstFalse
	for i := 0; i < g.NumInputs(); i++ {
		m[g.InputVar(i)] = ng.AddInput(g.InputName(i))
	}
	mapped := func(l aig.Lit) aig.Lit { return m[l.Var()].NotIf(l.IsCompl()) }

	const maxFlat = 24
	// collectAnd flattens the AND tree rooted at literal l (old graph);
	// complemented or non-AND fanins stop the expansion.
	var collectAnd func(l aig.Lit, out []aig.Lit) []aig.Lit
	collectAnd = func(l aig.Lit, out []aig.Lit) []aig.Lit {
		if !l.IsCompl() && g.Op(l.Var()) == aig.OpAnd && len(out) < maxFlat {
			fan := g.Fanins(l.Var())
			out = collectAnd(fan[0], out)
			out = collectAnd(fan[1], out)
			return out
		}
		return append(out, l)
	}
	var collectXor func(l aig.Lit, out []aig.Lit, compl *bool) []aig.Lit
	collectXor = func(l aig.Lit, out []aig.Lit, compl *bool) []aig.Lit {
		if l.IsCompl() {
			*compl = !*compl
			l = l.Regular()
		}
		if g.Op(l.Var()) == aig.OpXor && len(out) < maxFlat {
			fan := g.Fanins(l.Var())
			out = collectXor(fan[0], out, compl)
			out = collectXor(fan[1], out, compl)
			return out
		}
		return append(out, l)
	}

	for v := uint32(1); v <= g.MaxVar(); v++ {
		if g.Op(v) == aig.OpInput {
			continue
		}
		fan := g.Fanins(v)
		switch g.Op(v) {
		case aig.OpAnd:
			leaves := collectAnd(aig.MkLit(v, false), nil)
			lits := make([]aig.Lit, len(leaves))
			for i, l := range leaves {
				lits[i] = mapped(l)
			}
			sortByLevel(ng, lits)
			acc := lits[0]
			for _, l := range lits[1:] {
				acc = ng.And(acc, l)
			}
			m[v] = acc
		case aig.OpXor:
			compl := false
			leaves := collectXor(aig.MkLit(v, false), nil, &compl)
			lits := make([]aig.Lit, len(leaves))
			for i, l := range leaves {
				lits[i] = mapped(l)
			}
			sortByLevel(ng, lits)
			acc := lits[0]
			for _, l := range lits[1:] {
				acc = ng.Xor(acc, l)
			}
			m[v] = acc.NotIf(compl)
		case aig.OpMaj:
			m[v] = ng.Maj(mapped(fan[0]), mapped(fan[1]), mapped(fan[2]))
		}
	}
	for i := 0; i < g.NumOutputs(); i++ {
		ng.AddOutput(mapped(g.Output(i)), g.OutputName(i))
	}
	return ng.Cleanup()
}

// Balance rebuilds the graph with AND and XOR trees rebalanced to minimize
// depth: flattened operand lists are combined smallest-level-first
// (Huffman style). The inverse of Unbalance; used after locking to keep
// the delay overhead negligible.
func Balance(g *aig.AIG) *aig.AIG {
	ng := aig.New()
	ng.Name = g.Name
	m := make([]aig.Lit, g.MaxVar()+1)
	m[0] = aig.ConstFalse
	for i := 0; i < g.NumInputs(); i++ {
		m[g.InputVar(i)] = ng.AddInput(g.InputName(i))
	}
	mapped := func(l aig.Lit) aig.Lit { return m[l.Var()].NotIf(l.IsCompl()) }

	const maxFlat = 32
	var collectAnd func(l aig.Lit, out []aig.Lit) []aig.Lit
	collectAnd = func(l aig.Lit, out []aig.Lit) []aig.Lit {
		if !l.IsCompl() && g.Op(l.Var()) == aig.OpAnd && len(out) < maxFlat {
			fan := g.Fanins(l.Var())
			out = collectAnd(fan[0], out)
			out = collectAnd(fan[1], out)
			return out
		}
		return append(out, l)
	}
	var collectXor func(l aig.Lit, out []aig.Lit, compl *bool) []aig.Lit
	collectXor = func(l aig.Lit, out []aig.Lit, compl *bool) []aig.Lit {
		if l.IsCompl() {
			*compl = !*compl
			l = l.Regular()
		}
		if g.Op(l.Var()) == aig.OpXor && len(out) < maxFlat {
			fan := g.Fanins(l.Var())
			out = collectXor(fan[0], out, compl)
			out = collectXor(fan[1], out, compl)
			return out
		}
		return append(out, l)
	}
	// Incrementally maintained levels of ng (vars are created in topo
	// order, so new vars derive from already-leveled fanins).
	lv := []int{0}
	level := func(l aig.Lit) int {
		for uint32(len(lv)) <= ng.MaxVar() {
			v := uint32(len(lv))
			if ng.Op(v) == aig.OpInput {
				lv = append(lv, 0)
				continue
			}
			worst := 0
			for _, f := range ng.Fanins(v) {
				if x := lv[f.Var()]; x > worst {
					worst = x
				}
			}
			lv = append(lv, worst+1)
		}
		return lv[l.Var()]
	}
	// combine merges mapped literals smallest-level-first with op.
	combine := func(lits []aig.Lit, op func(a, b aig.Lit) aig.Lit) aig.Lit {
		for len(lits) > 1 {
			// Find the two smallest-level operands.
			i0, i1 := 0, 1
			if level(lits[i1]) < level(lits[i0]) {
				i0, i1 = i1, i0
			}
			for i := 2; i < len(lits); i++ {
				if level(lits[i]) < level(lits[i0]) {
					i1 = i0
					i0 = i
				} else if level(lits[i]) < level(lits[i1]) {
					i1 = i
				}
			}
			merged := op(lits[i0], lits[i1])
			if i0 > i1 {
				i0, i1 = i1, i0
			}
			lits[i1] = lits[len(lits)-1]
			lits = lits[:len(lits)-1]
			lits[i0] = merged
		}
		return lits[0]
	}

	for v := uint32(1); v <= g.MaxVar(); v++ {
		if g.Op(v) == aig.OpInput {
			continue
		}
		fan := g.Fanins(v)
		switch g.Op(v) {
		case aig.OpAnd:
			leaves := collectAnd(aig.MkLit(v, false), nil)
			lits := make([]aig.Lit, len(leaves))
			for i, l := range leaves {
				lits[i] = mapped(l)
			}
			m[v] = combine(lits, ng.And)
		case aig.OpXor:
			compl := false
			leaves := collectXor(aig.MkLit(v, false), nil, &compl)
			lits := make([]aig.Lit, len(leaves))
			for i, l := range leaves {
				lits[i] = mapped(l)
			}
			m[v] = combine(lits, ng.Xor).NotIf(compl)
		case aig.OpMaj:
			m[v] = ng.Maj(mapped(fan[0]), mapped(fan[1]), mapped(fan[2]))
		}
	}
	for i := 0; i < g.NumOutputs(); i++ {
		ng.AddOutput(mapped(g.Output(i)), g.OutputName(i))
	}
	return ng.Cleanup()
}

// sortByLevel orders literals by their level in g, shallow first, so that
// chained construction yields maximal depth on the last operand.
func sortByLevel(g *aig.AIG, lits []aig.Lit) {
	lv, _ := g.Levels()
	for i := 1; i < len(lits); i++ {
		for j := i; j > 0 && lv[lits[j].Var()] < lv[lits[j-1].Var()]; j-- {
			lits[j], lits[j-1] = lits[j-1], lits[j]
		}
	}
}

// InsertBubbles returns a circuit computing g(x XOR b) for a random bubble
// vector b, together with b. With key-XOR locking, b becomes the correct
// key ("bubbles randomize the key polarities").
func InsertBubbles(g *aig.AIG, seed int64) (*aig.AIG, []bool) {
	rng := rand.New(rand.NewSource(seed))
	b := make([]bool, g.NumInputs())
	for i := range b {
		b[i] = rng.Intn(2) == 1
	}
	return ApplyBubbles(g, b), b
}

// ApplyBubbles returns a circuit computing g(x XOR b).
func ApplyBubbles(g *aig.AIG, b []bool) *aig.AIG {
	if len(b) != g.NumInputs() {
		panic("rewrite: bubble vector length mismatch")
	}
	ng := aig.New()
	ng.Name = g.Name
	piMap := make([]aig.Lit, g.NumInputs())
	for i := range piMap {
		piMap[i] = ng.AddInput(g.InputName(i)).NotIf(b[i])
	}
	outs := ng.Import(g, piMap)
	for i, o := range outs {
		ng.AddOutput(o, g.OutputName(i))
	}
	return ng
}

// HideInverters rewrites AND nodes with complemented primary-input fanins
// into equivalent forms without PI inverter edges — And(!a, b) becomes
// And(b, !And(a, b)) — so bubble polarities are not readable off the input
// edges. XOR nodes already keep their fanins regular by canonicalization;
// MAJ nodes with complemented PI fanins are lowered to ANDs first.
func HideInverters(g *aig.AIG) *aig.AIG {
	ng := aig.New()
	ng.Name = g.Name
	m := make([]aig.Lit, g.MaxVar()+1)
	m[0] = aig.ConstFalse
	isPI := make([]bool, g.MaxVar()+1)
	for i := 0; i < g.NumInputs(); i++ {
		v := g.InputVar(i)
		m[v] = ng.AddInput(g.InputName(i))
		isPI[v] = true
	}
	mapped := func(l aig.Lit) aig.Lit { return m[l.Var()].NotIf(l.IsCompl()) }
	// hiddenAnd builds And(x, y) replacing complemented-PI operands.
	hiddenAnd := func(x, y aig.Lit, xPI, yPI bool) aig.Lit {
		xc := xPI && x.IsCompl()
		yc := yPI && y.IsCompl()
		switch {
		case xc && yc:
			// And(!a, !b) = !(a|b) decomposed over the disjoint cover
			// {a&b, a&!b, !a&b}, complementing only internal edges.
			a, b := x.Not(), y.Not()
			n1 := ng.And(a, b)
			n2 := ng.And(a, n1.Not())
			n3 := ng.And(b, n1.Not())
			return ng.AndN(n1.Not(), n2.Not(), n3.Not())
		case xc:
			// And(!a, y) = And(y, !And(a, y)).
			return ng.And(y, ng.And(x.Not(), y).Not())
		case yc:
			return ng.And(x, ng.And(y.Not(), x).Not())
		}
		return ng.And(x, y)
	}
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if g.Op(v) == aig.OpInput {
			continue
		}
		fan := g.Fanins(v)
		a := mapped(fan[0])
		b := mapped(fan[1])
		aPI := isPI[fan[0].Var()]
		bPI := isPI[fan[1].Var()]
		switch g.Op(v) {
		case aig.OpAnd:
			m[v] = hiddenAnd(a, b, aPI, bPI)
		case aig.OpXor:
			m[v] = ng.Xor(a, b)
		case aig.OpMaj:
			c := mapped(fan[2])
			cPI := isPI[fan[2].Var()]
			if (aPI && a.IsCompl()) || (bPI && b.IsCompl()) || (cPI && c.IsCompl()) {
				ab := hiddenAnd(a, b, aPI, bPI)
				ac := hiddenAnd(a, c, aPI, cPI)
				bc := hiddenAnd(b, c, bPI, cPI)
				m[v] = ng.Or(ab, ng.Or(ac, bc))
			} else {
				m[v] = ng.Maj(a, b, c)
			}
		}
	}
	// Complemented inputs feeding outputs directly stay as-is: output
	// polarity is not key material, so nothing leaks there.
	for i := 0; i < g.NumOutputs(); i++ {
		ng.AddOutput(mapped(g.Output(i)), g.OutputName(i))
	}
	return ng
}

// CountPIInverterEdges counts fanin edges that are complemented references
// to primary inputs — the structural trace HideInverters removes.
func CountPIInverterEdges(g *aig.AIG) int {
	isPI := make([]bool, g.MaxVar()+1)
	for i := 0; i < g.NumInputs(); i++ {
		isPI[g.InputVar(i)] = true
	}
	n := 0
	for v := uint32(1); v <= g.MaxVar(); v++ {
		for _, f := range g.Fanins(v) {
			if f.IsCompl() && isPI[f.Var()] {
				n++
			}
		}
	}
	return n
}
