package skew

import (
	"math"
	"testing"

	"obfuslock/internal/aig"
)

// andChain builds x0 & x1 & ... & x(k-1) as a left-deep chain over n >= k
// inputs and returns the graph and root.
func andChain(n, k int) (*aig.AIG, aig.Lit) {
	g := aig.New()
	in := g.AddInputs(n)
	acc := in[0]
	for i := 1; i < k; i++ {
		acc = g.And(acc, in[i])
	}
	g.AddOutput(acc, "f")
	return g, acc
}

func TestBits(t *testing.T) {
	if Bits(0.5) != 1 {
		t.Fatalf("Bits(0.5) = %v", Bits(0.5))
	}
	if Bits(0.25) != 2 || Bits(0.75) != 2 {
		t.Fatal("Bits not symmetric")
	}
	if !math.IsInf(Bits(0), 1) || !math.IsInf(Bits(1), 1) {
		t.Fatal("Bits at constants should be +Inf")
	}
}

func TestAlgebraicExactOnTrees(t *testing.T) {
	g := aig.New()
	in := g.AddInputs(4)
	and2 := g.And(in[0], in[1])
	xor2 := g.Xor(in[2], in[3])
	maj3 := g.Maj(in[0].Not(), in[2], in[3])
	g.AddOutput(and2, "")
	p := Algebraic(g)
	if p[and2.Var()] != 0.25 {
		t.Fatalf("P(and2) = %v", p[and2.Var()])
	}
	if p[xor2.Var()] != 0.5 {
		t.Fatalf("P(xor2) = %v", p[xor2.Var()])
	}
	if p[maj3.Var()] != 0.5 {
		t.Fatalf("P(maj3) = %v", p[maj3.Var()])
	}
	if AlgebraicLit(p, and2.Not()) != 0.75 {
		t.Fatal("AlgebraicLit complement wrong")
	}
}

func TestAlgebraicReconvergenceError(t *testing.T) {
	// f = (a&b)&(a&c): truth 1/8, algebraic (independence) says 1/16.
	g := aig.New()
	in := g.AddInputs(3)
	f := g.And(g.And(in[0], in[1]), g.And(in[0], in[2]))
	g.AddOutput(f, "f")
	p := Algebraic(g)
	if math.Abs(p[f.Var()]-1.0/16) > 1e-12 {
		t.Fatalf("algebraic should be 1/16 (wrong on purpose), got %v", p[f.Var()])
	}
	// Monte Carlo recovers the true value.
	mc := MonteCarlo(g, f, 512, 7)
	if math.Abs(mc-1.0/8) > 0.02 {
		t.Fatalf("MC = %v, want ~1/8", mc)
	}
}

func TestMonteCarloChain(t *testing.T) {
	g, root := andChain(8, 4)
	mc := MonteCarlo(g, root, 512, 3)
	if math.Abs(mc-1.0/16) > 0.01 {
		t.Fatalf("MC = %v, want ~1/16", mc)
	}
}

func TestStagesChain(t *testing.T) {
	g, root := andChain(24, 20)
	st := Stages(g, root, 4)
	if len(st) < 3 {
		t.Fatalf("expected several stages, got %d", len(st))
	}
	if st[len(st)-1] != root {
		t.Fatal("last stage must be the root")
	}
	// Stage bits must be increasing.
	p := Algebraic(g)
	last := -1.0
	for _, s := range st {
		b := Bits(AlgebraicLit(p, s))
		if b < last-1e-9 {
			t.Fatalf("stage bits not monotone: %v then %v", last, b)
		}
		last = b
	}
}

func TestSplittingDeepChain(t *testing.T) {
	// True skewness: 20 bits. Monte Carlo with 64*64 samples cannot see
	// this; splitting must.
	g, root := andChain(24, 20)
	opt := DefaultSplittingOptions()
	opt.Seed = 5
	bits := Bits(Splitting(g, root, nil, opt))
	if math.Abs(bits-20) > 2.5 {
		t.Fatalf("splitting estimate %.2f bits, want ~20", bits)
	}
	// Plain MC sees a constant (all samples 0) — demonstrating why
	// splitting is needed.
	if mc := MonteCarlo(g, root, 64, 5); mc != 0 {
		t.Logf("MC unexpectedly saw a witness (p=%v); fine but rare", mc)
	}
}

func TestSplittingModerateChainAccuracy(t *testing.T) {
	// 10-bit chain: both MC (with many samples) and splitting should agree.
	g, root := andChain(16, 10)
	opt := DefaultSplittingOptions()
	opt.Seed = 11
	p := Splitting(g, root, nil, opt)
	want := math.Pow(2, -10)
	if p <= 0 {
		t.Fatal("splitting returned 0 for a satisfiable chain")
	}
	ratio := p / want
	if ratio < 0.25 || ratio > 4 {
		t.Fatalf("splitting p = %v, want within 4x of 2^-10", p)
	}
}

func TestSplittingMixedOperators(t *testing.T) {
	// Chain with MAJ and AND-NOT steps: skew compounds irregularly.
	g := aig.New()
	in := g.AddInputs(20)
	acc := g.And(in[0], in[1])
	acc = g.And(acc, in[2].Not())
	acc = g.Maj(acc, g.And(in[3], in[4]), g.And(in[5], in[6]))
	for i := 7; i < 15; i++ {
		acc = g.And(acc, in[i])
	}
	g.AddOutput(acc, "f")
	opt := DefaultSplittingOptions()
	opt.Seed = 13
	opt.SamplesPerStage = 300
	got := Splitting(g, acc, nil, opt)
	// Reference via exhaustive evaluation over the 15 relevant inputs.
	sup := g.Support(acc)
	ones, total := 0, 0
	pat := make([]bool, 20)
	for m := 0; m < 1<<uint(len(sup)); m++ {
		for i, pi := range sup {
			pat[pi] = m>>uint(i)&1 == 1
		}
		if g.Eval(pat)[0] {
			ones++
		}
		total++
	}
	want := float64(ones) / float64(total)
	if want == 0 {
		t.Fatal("reference probability zero — bad test circuit")
	}
	ratio := got / want
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("splitting %v vs exhaustive %v (ratio %.2f)", got, want, ratio)
	}
}

func TestNodeSkewness(t *testing.T) {
	g, root := andChain(12, 6)
	ns := NodeSkewness(g, 256, 3)
	rb := ns[root.Var()]
	if math.Abs(rb-6) > 1 {
		t.Fatalf("root skewness %v bits, want ~6", rb)
	}
	// Inputs are balanced: ~1 bit.
	if math.Abs(ns[g.InputVar(0)]-1) > 0.2 {
		t.Fatalf("input skewness %v, want ~1", ns[g.InputVar(0)])
	}
}

func TestTopSkewedNodes(t *testing.T) {
	g, root := andChain(16, 8)
	// Add some balanced noise nodes.
	g.AddOutput(g.Xor(g.Input(8), g.Input(9)), "noise")
	top := TopSkewedNodes(g, 3, 2)
	if len(top) == 0 {
		t.Fatal("no candidates")
	}
	if top[0].Var() != root.Var() {
		t.Fatalf("most skewed node should be the chain root")
	}
	// minSupport filter: demanding more support than exists yields nothing.
	if res := TopSkewedNodes(g, 5, 100); len(res) != 0 {
		t.Fatalf("expected empty result under impossible support filter, got %d", len(res))
	}
}
