package attacks

import (
	"context"
	"testing"
	"time"

	"obfuslock/internal/aig"
	"obfuslock/internal/cec"
	"obfuslock/internal/exec"
	"obfuslock/internal/lockbase"
	"obfuslock/internal/locking"
	"obfuslock/internal/netlistgen"
	"obfuslock/internal/simp"
)

func smallCircuit() *aig.AIG { return netlistgen.Multiplier(4) }

// SAT attack must crack RLL (no SAT resistance) quickly and exactly.
func TestSATAttackCracksRLL(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.RLL(orig, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle := locking.NewOracle(orig)
	res := SATAttack(context.Background(), l, oracle, DefaultIOOptions())
	if !res.Exact || res.Key == nil {
		t.Fatalf("SAT attack failed on RLL: %+v", res)
	}
	ok, err := l.VerifyKey(orig, res.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("SAT attack returned incorrect key %v", res.Key)
	}
	if res.Iterations > 64 {
		t.Fatalf("RLL should fall in few DIPs, took %d", res.Iterations)
	}
}

// SAT attack on SARLock needs ~2^k DIPs; with a small iteration cap it
// must time out (the SAT-resistance corner of the trilemma).
func TestSATAttackStallsOnSARLock(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.SARLock(orig, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	oracle := locking.NewOracle(orig)
	opt := DefaultIOOptions()
	opt.MaxIterations = 30 // far below 2^8
	res := SATAttack(context.Background(), l, oracle, opt)
	if res.Exact {
		t.Fatalf("SARLock cracked exactly in %d iterations?", res.Iterations)
	}
	if !res.TimedOut {
		t.Fatalf("expected iteration cap: %+v", res)
	}
}

// SAT attack given enough iterations does finish SARLock with a small
// protected width.
func TestSATAttackFinishesSmallSARLock(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.SARLock(orig, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	oracle := locking.NewOracle(orig)
	opt := DefaultIOOptions()
	opt.MaxIterations = 200 // > 2^5
	res := SATAttack(context.Background(), l, oracle, opt)
	if !res.Exact {
		t.Fatalf("SAT attack should finish 5-bit SARLock: %+v", res)
	}
	ok, _ := l.VerifyKey(orig, res.Key)
	if !ok {
		t.Fatal("returned key incorrect")
	}
}

// AppSAT returns an approximately-correct key for SARLock-like compound
// locks: it should at least terminate and produce a key consistent with
// all recorded queries.
func TestAppSATOnSARLock(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.SARLock(orig, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	oracle := locking.NewOracle(orig)
	opt := DefaultIOOptions()
	opt.MaxIterations = 40
	opt.Seed = 7
	res := AppSAT(context.Background(), l, oracle, opt)
	if res.Key == nil {
		t.Fatalf("AppSAT returned no key: %+v", res)
	}
	// With SARLock, a random consistent key is "approximately correct":
	// it corrupts at most a couple of patterns. Verify low error rate.
	bound := l.ApplyKey(res.Key)
	diff := 0
	for trial := 0; trial < 512; trial++ {
		x := make([]bool, orig.NumInputs())
		for i := range x {
			x[i] = (trial>>uint(i%8))&1 == 1 || (trial*31+i*17)%7 == 0
		}
		a := orig.Eval(x)
		b := bound.Eval(x)
		for i := range a {
			if a[i] != b[i] {
				diff++
				break
			}
		}
	}
	if diff > 8 {
		t.Fatalf("AppSAT key error rate too high: %d/512", diff)
	}
}

func TestAppSATExactOnRLL(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.RLL(orig, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	oracle := locking.NewOracle(orig)
	res := AppSAT(context.Background(), l, oracle, DefaultIOOptions())
	if !res.Exact {
		t.Fatalf("AppSAT should finish RLL exactly: %+v", res)
	}
	ok, _ := l.VerifyKey(orig, res.Key)
	if !ok {
		t.Fatal("AppSAT key incorrect on RLL")
	}
}

func TestSATAttackTimeout(t *testing.T) {
	orig := netlistgen.Multiplier(6)
	l, err := lockbase.SARLock(orig, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	oracle := locking.NewOracle(orig)
	opt := DefaultIOOptions()
	opt.Timeout = 300 * time.Millisecond
	res := SATAttack(context.Background(), l, oracle, opt)
	if res.Exact {
		t.Skip("machine fast enough to crack 12-bit SARLock in 300ms")
	}
	if !res.TimedOut {
		t.Fatalf("expected timeout: %+v", res)
	}
	if res.Runtime > 5*time.Second {
		t.Fatalf("timeout not respected: ran %v", res.Runtime)
	}
}

// SPS must spotlight the SARLock flip signal as the top skew outlier.
func TestSPSFindsSARLockFlipNode(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.SARLock(orig, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := SPS(l, 256, 1, 5)
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	// The top candidate must be extremely skewed (flip is ~2^-8 active).
	if res.SkewBits[0] < 6 {
		t.Fatalf("top skew %.1f bits, expected >= 6", res.SkewBits[0])
	}
}

// Removal attack breaks SARLock: replacing the flip node by constant 0
// restores the original.
func TestRemovalBreaksSARLock(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.SARLock(orig, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	sps := SPS(l, 256, 2, 10)
	res := Removal(context.Background(), l, orig, sps.Candidates, cec.DefaultOptions())
	if !res.Success {
		t.Fatalf("removal failed on SARLock: %+v", res)
	}
}

// Bypass attack succeeds against SARLock (one corrupted pattern per wrong
// key) and reports a tiny bypass set.
func TestBypassBreaksSARLock(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.SARLock(orig, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	wrong := append([]bool(nil), l.Key...)
	wrong[0] = !wrong[0]
	res := Bypass(context.Background(), l, orig, wrong, 16, exec.Budget{}, simp.Default())
	if !res.Success {
		t.Fatalf("bypass failed on SARLock: %+v", res)
	}
	if res.Patterns > 4 {
		t.Fatalf("SARLock wrong key corrupts %d patterns, expected <= 4", res.Patterns)
	}
}

// Bypass must give up when the corrupted set is large (RLL wrong keys
// corrupt a constant fraction of the space).
func TestBypassFailsOnMassCorruption(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.RLL(orig, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	wrong := append([]bool(nil), l.Key...)
	for i := range wrong {
		wrong[i] = !wrong[i]
	}
	// Make sure this wrong key actually corrupts.
	broke, err := l.WrongKeyIsWrong(orig, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if !broke {
		t.Skip("picked a don't-care wrong key")
	}
	res := Bypass(context.Background(), l, orig, wrong, 32, exec.Budget{}, simp.Default())
	if res.Success {
		t.Fatalf("bypass should be infeasible: %+v", res)
	}
	if !res.Exhausted {
		t.Fatalf("expected pattern budget exhaustion: %+v", res)
	}
}

// Valkyrie-style search breaks TTLock: the strip and restore comparator
// roots form a replaceable pair.
func TestValkyrieBreaksTTLock(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.TTLock(orig, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	res := Valkyrie(context.Background(), l, orig, 8, 256, 3, cec.DefaultOptions())
	if !res.FoundPair {
		t.Fatalf("valkyrie failed on TTLock: %+v", res)
	}
}

// The structural classifier puts SARLock's comparator cone near the top.
func TestClassifierFlagsSARLock(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.SARLock(orig, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	res := StructuralClassifier(l, 10)
	if len(res.Ranked) == 0 {
		t.Fatal("no ranking")
	}
	// At least one of the top-10 anomalous nodes must have many key inputs
	// in its fanin (the comparator).
	found := false
	for _, v := range res.Ranked {
		tfi := l.Enc.TFI(aig.MkLit(v, false))
		keys := 0
		for i := 0; i < l.KeyBits; i++ {
			if tfi[l.Enc.InputVar(l.NumInputs+i)] {
				keys++
			}
		}
		if keys >= l.KeyBits/2 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("classifier did not flag the key comparator cone")
	}
}

// Sensitization recovers RLL key bits that sit on isolated paths.
func TestSensitizationOnRLL(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.RLL(orig, 6, 13)
	if err != nil {
		t.Fatal(err)
	}
	oracle := locking.NewOracle(orig)
	res := Sensitization(context.Background(), l, oracle, exec.WithConflicts(200000), simp.Default())
	// RLL on a multiplier: typically some bits are isolatable; recovered
	// bits must be correct.
	for i := 0; i < l.KeyBits; i++ {
		if res.Isolatable[i] && res.Recovered[i] != l.Key[i] {
			t.Fatalf("sensitization recovered wrong value for bit %d", i)
		}
	}
}

// SPI rule 2 cracks TTLock: the hard-coded comparator spells the key.
func TestSPICracksTTLock(t *testing.T) {
	orig := smallCircuit()
	l, err := lockbase.TTLock(orig, 8, 14)
	if err != nil {
		t.Fatal(err)
	}
	res := SPI(l, 6)
	if res.PointRuleHits == 0 {
		t.Fatalf("point-function rule did not fire: %+v", res)
	}
	correct := 0
	for i := 0; i < l.KeyBits; i++ {
		if res.Confident[i] && res.Key[i] == l.Key[i] {
			correct++
		}
	}
	if correct < l.KeyBits {
		t.Fatalf("SPI recovered %d/%d TTLock key bits", correct, l.KeyBits)
	}
}

// SPI rule 1 cracks XOR insertion on positive-phase signals.
func TestSPICracksCleanXORInsertion(t *testing.T) {
	// Build a circuit with explicit key XORs on positive AND nodes.
	g := aig.New()
	in := g.AddInputs(6)
	keyBits := 3
	key := []bool{true, false, true}
	var keys []aig.Lit
	for i := 0; i < keyBits; i++ {
		keys = append(keys, g.AddInput(locking.KeyName(i)))
	}
	s1 := g.And(in[0], in[1])
	s2 := g.And(in[2], in[3])
	s3 := g.And(in[4], in[5])
	l1 := g.Xor(s1, keys[0].NotIf(key[0]))
	l2 := g.Xor(s2, keys[1].NotIf(key[1]))
	l3 := g.Xor(s3, keys[2].NotIf(key[2]))
	g.AddOutput(g.And(g.And(l1, l2), l3), "f")
	l := &locking.Locked{Scheme: "xor", Enc: g, NumInputs: 6, KeyBits: keyBits, Key: key}
	res := SPI(l, 100)
	if res.XORRuleHits != 3 {
		t.Fatalf("XOR rule hits = %d, want 3", res.XORRuleHits)
	}
	for i := 0; i < keyBits; i++ {
		if !res.Confident[i] || res.Key[i] != key[i] {
			t.Fatalf("bit %d: confident=%v got=%v want=%v", i, res.Confident[i], res.Key[i], key[i])
		}
	}
}

func TestCriticalNodeSurvivesOnSARLock(t *testing.T) {
	// The SARLock flip signal (x==k & k!=k*) bound to any key is a pure
	// function of x; its equivalent must exist in the bound netlist. Use
	// the first output of the original as an easy "spec that exists":
	// out0_enc == out0_orig XOR flip, so orig out0 itself exists in enc
	// only if flip is factored out — instead check a function that
	// certainly survives: the original's second output (unprotected).
	orig := smallCircuit()
	l, err := lockbase.SARLock(orig, 8, 15)
	if err != nil {
		t.Fatal(err)
	}
	spec := orig.Output(1)
	if _, ok := CriticalNodeSurvives(context.Background(), l, orig, spec, cec.FindOptions{SimWords: 8, Seed: 1}); !ok {
		t.Fatal("unprotected output cone should survive untouched")
	}
}
