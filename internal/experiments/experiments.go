// Package experiments regenerates every table and figure of the paper's
// evaluation section. The same harness backs the root bench_test.go (scaled
// runs) and the cmd/attack -table1 sweep (full runs).
//
//   - TableI: key efficiency, lock runtime and SAT/AppSAT resilience per
//     benchmark and skewness level, for both the whole-circuit and the
//     sub-circuit (protected-cone-only) attacker strategies.
//   - Fig4: distributions of node skewness and keys-in-TFI before and
//     after structural transformation.
//   - Fig5: area and power overheads per skewness level.
//   - Structural: critical-node elimination, Valkyrie, SPI and removal
//     outcomes.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"obfuslock/internal/aig"
	"obfuslock/internal/attacks"
	"obfuslock/internal/cec"
	"obfuslock/internal/core"
	"obfuslock/internal/exec"
	"obfuslock/internal/locking"
	"obfuslock/internal/memo"
	"obfuslock/internal/netlistgen"
	"obfuslock/internal/obs"
	"obfuslock/internal/sat"
	"obfuslock/internal/simp"
	"obfuslock/internal/skew"
	"obfuslock/internal/techmap"
)

// Budget bounds the attacks in a sweep and configures its execution.
type Budget struct {
	// Timeout per attack run (the paper used 3 h). Ignored when
	// Deterministic is set.
	Timeout time.Duration
	// MaxIterations caps DIP loops (the paper capped AppSAT at 2048).
	MaxIterations int
	// Workers is the sweep parallelism (non-positive: GOMAXPROCS). Cells
	// run on the exec worker pool with per-cell seeds derived via
	// splitmix from the master seed, so the output is byte-identical at
	// any worker count.
	Workers int
	// Deterministic renders logical outcomes (iteration counts, "TO",
	// "wrong") instead of wall-clock seconds and disables Timeout, making
	// tables and metrics.json byte-identical across runs and machines.
	Deterministic bool
	// Simp controls CNF preprocessing/inprocessing in the lock pipeline
	// and attacks of every sweep cell (zero value: enabled; simp.Off()
	// for the CLIs' -simp=false).
	Simp simp.Options
	// DIPBatch is the per-round DIP enumeration width of the sweep's I/O
	// attacks (0: the attacks' default; 1: the classic serial loop).
	// Exact attack outcomes are identical at any width; iteration-count
	// cells can differ between widths but are deterministic per width.
	DIPBatch int
	// SatWorkers is the per-solve parallel portfolio width of each cell's
	// attack (0 or 1: sequential; negative: GOMAXPROCS; n>1: n workers).
	// Independent of Workers (sweep-cell parallelism); results are
	// byte-identical at any value.
	SatWorkers int
	// Trace, when non-nil, receives lock and attack spans for every
	// sweep cell plus table1.cell wrapper spans.
	Trace *obs.Tracer
	// Cache memoizes SAT-backed sub-queries (CEC verdicts, skewness
	// estimates, counts, PPA reports) across sweep cells and across runs
	// via the on-disk spill. Nil disables. Output stays byte-identical
	// with the cache on, off, cold or warm.
	Cache *memo.Cache
}

// TableIRow is one row of Table I.
type TableIRow struct {
	Bench    string
	Nodes    int
	SkewBits float64
	KeyBits  int
	LockTime time.Duration
	// Deterministic marks a row produced under Budget.Deterministic:
	// wall-clock cells render as stable markers instead of seconds.
	Deterministic bool
	// Attack cells: decrypt time (or "ok/<iterations>" in deterministic
	// mode), or "TO" / "wrong" markers as in the paper.
	SATSub, SATWhole, AppSATSub, AppSATWhole string
	// SolverStats accumulates the four attack cells' SAT-solver work
	// counters (not printed; surfaced by bench_test.go's BENCH_sat.json).
	SolverStats sat.Stats
}

func (r TableIRow) String() string {
	lockCell := fmt.Sprintf("%8.2fs", r.LockTime.Seconds())
	if r.Deterministic {
		lockCell = fmt.Sprintf("%9s", "-")
	}
	return fmt.Sprintf("%-10s %6d  %6.1f  %4d  %s  %10s %10s %10s %10s",
		r.Bench, r.Nodes, -r.SkewBits, r.KeyBits, lockCell,
		r.SATSub, r.SATWhole, r.AppSATSub, r.AppSATWhole)
}

// TableIHeader is the printable column header.
const TableIHeader = "bench       nodes    skew  keys  lock-time     SAT-sub  SAT-whole  AppSAT-sub AppSAT-whole"

// singleOutput restricts a locked circuit and its oracle to the protected
// output — the attacker's "target only the sub-circuit" strategy (the
// paper notes the resulting numbers lower-bound the attacker's real cost).
func singleOutput(l *locking.Locked, orig *aig.AIG, po int) (*locking.Locked, *aig.AIG) {
	encOne := l.Enc.Copy()
	keep := encOne.Output(po)
	name := encOne.OutputName(po)
	encTrim := aig.New()
	piMap := make([]aig.Lit, encOne.NumInputs())
	for i := range piMap {
		piMap[i] = encTrim.AddInput(encOne.InputName(i))
	}
	out := encTrim.ImportCone(encOne, piMap, []aig.Lit{keep})
	encTrim.AddOutput(out[0], name)

	origTrim := aig.New()
	piMap2 := make([]aig.Lit, orig.NumInputs())
	for i := range piMap2 {
		piMap2[i] = origTrim.AddInput(orig.InputName(i))
	}
	o2 := origTrim.ImportCone(orig, piMap2, []aig.Lit{orig.Output(po)})
	origTrim.AddOutput(o2[0], name)

	return &locking.Locked{
		Scheme: l.Scheme, Enc: encTrim,
		NumInputs: l.NumInputs, KeyBits: l.KeyBits, Key: l.Key,
	}, origTrim
}

// attackCell runs one attack and renders the paper's cell convention:
// decrypt seconds when the returned key is verified correct, "TO" on
// timeout without a correct key, "wrong" when a key came back incorrect.
// In deterministic mode a correct key renders as "ok/<iterations>" —
// wall-clock time is the one quantity that cannot be byte-stable.
func attackCell(ctx context.Context, run func() attacks.IOResult, l *locking.Locked, orig *aig.AIG, deterministic bool, cache *memo.Cache) string {
	r := run()
	correct := false
	if r.Key != nil {
		vopt := cec.DefaultOptions()
		vopt.Cache = cache
		correct, _ = l.VerifyKeyWith(ctx, orig, r.Key, vopt)
	}
	switch {
	case correct:
		if deterministic {
			return fmt.Sprintf("ok/%d", r.Iterations)
		}
		return fmt.Sprintf("%.1f", r.Runtime.Seconds())
	case r.Exact:
		// Terminated claiming exactness but key invalid — should not
		// happen; surface loudly.
		return "broken?"
	case r.TimedOut:
		// SAT attack hit its budget: the paper's "TO" cell (an extracted
		// best-effort key, when present, is incorrect here).
		return "TO"
	case r.Key != nil:
		// Normal termination with an unproven key (AppSAT's cap): the
		// paper's "wrong" cell.
		return "wrong"
	default:
		return "TO"
	}
}

// TableIEntry locks one benchmark at one skewness level and runs the four
// attack cells.
func TableIEntry(ctx context.Context, b netlistgen.Benchmark, skewBits float64, seed int64, budget Budget, w io.Writer) (TableIRow, error) {
	c := b.Build()
	opt := core.DefaultOptions()
	opt.TargetSkewBits = skewBits
	opt.Seed = seed
	opt.AllowDirect = false
	opt.Trace = budget.Trace
	opt.Simp = budget.Simp
	opt.Cache = budget.Cache
	res, err := core.Lock(ctx, c, opt)
	if err != nil {
		return TableIRow{}, fmt.Errorf("%s @ %g bits: %w", b.Name, skewBits, err)
	}
	l := res.Locked
	row := TableIRow{
		Bench:         b.Name,
		Nodes:         c.NumNodes(),
		SkewBits:      res.Report.SkewBits,
		KeyBits:       res.Report.KeyBits,
		LockTime:      res.Report.Runtime,
		Deterministic: budget.Deterministic,
	}
	aopt := attacks.DefaultIOOptions()
	aopt.Timeout = budget.Timeout
	aopt.MaxIterations = budget.MaxIterations
	aopt.Seed = seed
	aopt.Trace = budget.Trace
	aopt.Simp = budget.Simp
	aopt.DIPBatch = budget.DIPBatch
	aopt.SatWorkers = budget.SatWorkers
	aopt.Cache = budget.Cache
	if budget.Deterministic {
		// Deterministic cells are bounded by iteration count only; a
		// wall-clock cutoff would decide cells differently between runs.
		aopt.Timeout = 0
	}

	cell := func(name string, run func() attacks.IOResult, cl *locking.Locked, orig *aig.AIG) string {
		csp := budget.Trace.Span("table1.cell",
			obs.Str("bench", b.Name), obs.Float("skew", skewBits), obs.Str("attack", name))
		out := attackCell(ctx, func() attacks.IOResult {
			r := run()
			row.SolverStats = row.SolverStats.Add(r.SolverStats)
			return r
		}, cl, orig, budget.Deterministic, budget.Cache)
		csp.End(obs.Str("result", out))
		return out
	}

	subL, subOrig := singleOutput(l, c, res.Report.ProtectedOutput)
	row.SATSub = cell("sat-sub", func() attacks.IOResult {
		return attacks.SATAttack(ctx, subL, locking.NewOracle(subOrig), aopt)
	}, subL, subOrig)
	row.SATWhole = cell("sat-whole", func() attacks.IOResult {
		return attacks.SATAttack(ctx, l, locking.NewOracle(c), aopt)
	}, l, c)
	row.AppSATSub = cell("appsat-sub", func() attacks.IOResult {
		return attacks.AppSAT(ctx, subL, locking.NewOracle(subOrig), aopt)
	}, subL, subOrig)
	row.AppSATWhole = cell("appsat-whole", func() attacks.IOResult {
		return attacks.AppSAT(ctx, l, locking.NewOracle(c), aopt)
	}, l, c)

	if w != nil {
		fmt.Fprintln(w, row)
	}
	return row, nil
}

// TableI sweeps benchmarks × skew levels on the worker pool. Each cell
// receives a seed derived via splitmix from the master seed and its cell
// index, so the emitted table is byte-identical at any Budget.Workers
// (modulo wall-clock cells; set Budget.Deterministic for full byte
// stability). Cancelling ctx stops the sweep after the current cells and
// returns the rows finished so far together with the context error.
func TableI(ctx context.Context, suite []netlistgen.Benchmark, skews []float64, seed int64, budget Budget, w io.Writer) ([]TableIRow, error) {
	if w != nil {
		fmt.Fprintln(w, TableIHeader)
	}
	type cellIn struct {
		b    netlistgen.Benchmark
		skew float64
	}
	type cellOut struct {
		row TableIRow
		err error
	}
	var cells []cellIn
	for _, b := range suite {
		for _, s := range skews {
			cells = append(cells, cellIn{b, s})
		}
	}
	var rows []TableIRow
	// Metered variant: queue-depth gauge + per-cell latency histogram when
	// budget.Trace is live; identical scheduling (and output) otherwise.
	exec.CollectMetered(ctx, budget.Workers, len(cells), exec.PoolMetricsFrom(budget.Trace), func(ctx context.Context, i int) cellOut {
		row, err := TableIEntry(ctx, cells[i].b, cells[i].skew, exec.DeriveSeed(seed, i), budget, nil)
		return cellOut{row, err}
	}, func(i int, r cellOut) {
		if r.err != nil {
			if w != nil {
				fmt.Fprintf(w, "%-10s %g bits: %v\n", cells[i].b.Name, cells[i].skew, r.err)
			}
			return
		}
		rows = append(rows, r.row)
		if w != nil {
			fmt.Fprintln(w, r.row)
		}
	})
	return rows, ctx.Err()
}

// Fig4Stats summarizes one distribution panel of Fig. 4.
type Fig4Stats struct {
	// SkewHist buckets node skewness (bits): [0-2, 2-4, 4-8, 8-16, 16+].
	SkewHist [5]int
	// KeyHist buckets the number of key inputs in each node's TFI:
	// [0, 1..25%, 25..75%, 75..99%, all].
	KeyHist [5]int
	// MaxSkewBits is the largest finite node skewness.
	MaxSkewBits float64
	// CriticalVisible reports whether a critical node — a node whose
	// function equals the original protected cone or the locking circuit
	// L — still exists in the netlist (the red outlier of Fig. 4(a)/(b)).
	CriticalVisible bool
}

// Fig4 locks the circuit twice — without and with structural
// transformation — and returns the node-statistics panels (a,b) and (c,d).
// The two locks are independent and run on the worker pool (each on its
// own copy of c), so workers >= 2 overlaps them. cache may be nil.
func Fig4(ctx context.Context, c *aig.AIG, skewBits float64, seed int64, workers int, cache *memo.Cache) (before, after Fig4Stats, err error) {
	type out struct {
		st  Fig4Stats
		err error
	}
	var outs [2]out
	exec.Collect(ctx, workers, 2, func(ctx context.Context, i int) out {
		g := c.Copy()
		opt := core.DefaultOptions()
		opt.TargetSkewBits = skewBits
		opt.Seed = seed
		opt.AllowDirect = false
		opt.DisableObfuscation = i == 0
		opt.Cache = cache
		res, err := core.Lock(ctx, g, opt)
		if err != nil {
			return out{err: err}
		}
		return out{st: fig4Stats(ctx, res, g, cache)}
	}, func(i int, r out) { outs[i] = r })
	if err := ctx.Err(); err != nil {
		return before, after, err
	}
	for _, o := range outs {
		if o.err != nil {
			return before, after, o.err
		}
	}
	return outs[0].st, outs[1].st, nil
}

func fig4Stats(ctx context.Context, res *core.Result, c *aig.AIG, cache *memo.Cache) Fig4Stats {
	l := res.Locked
	st := fig4Hist(l)
	// The red outlier: does a node computing a critical function survive?
	fopt := cec.DefaultFindOptions()
	fopt.Cache = cache
	_, sc := attacks.CriticalNodeSurvives(ctx, l, c, c.Output(res.Report.ProtectedOutput), fopt)
	sl := false
	if res.LockingFunction != nil {
		_, sl = attacks.CriticalNodeSurvives(ctx, l, res.LockingFunction,
			res.LockingFunction.Output(0), fopt)
	}
	st.CriticalVisible = sc || sl
	return st
}

func fig4Hist(l *locking.Locked) Fig4Stats {
	var st Fig4Stats
	g := l.Enc
	sk := skew.NodeSkewness(g, 64, 1)
	keyVars := make([]uint32, l.KeyBits)
	for i := range keyVars {
		keyVars[i] = g.InputVar(l.NumInputs + i)
	}
	// For key counting, walk TFO of keys once and count keys per node via
	// TFI on sampled nodes would be expensive; do one pass: keysIn[v] =
	// union cardinality approximated by bitset when KeyBits <= 64, else
	// sampled.
	keysIn := countKeysInTFI(g, keyVars)
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if g.Op(v) == aig.OpInput {
			continue
		}
		b := sk[v]
		switch {
		case b < 2:
			st.SkewHist[0]++
		case b < 4:
			st.SkewHist[1]++
		case b < 8:
			st.SkewHist[2]++
		case b < 16:
			st.SkewHist[3]++
		default:
			st.SkewHist[4]++
		}
		if !math.IsInf(b, 1) && b > st.MaxSkewBits {
			st.MaxSkewBits = b
		}
		kfrac := float64(keysIn[v]) / float64(max(1, l.KeyBits))
		switch {
		case keysIn[v] == 0:
			st.KeyHist[0]++
		case kfrac < 0.25:
			st.KeyHist[1]++
		case kfrac < 0.75:
			st.KeyHist[2]++
		case keysIn[v] < l.KeyBits:
			st.KeyHist[3]++
		default:
			st.KeyHist[4]++
		}
	}
	return st
}

// countKeysInTFI counts, for each variable, how many of the key variables
// are in its transitive fanin (exact for <= 64 keys via bitsets, otherwise
// a 64-key sample).
func countKeysInTFI(g *aig.AIG, keyVars []uint32) []int {
	words := (len(keyVars) + 63) / 64
	if words == 0 {
		return make([]int, g.MaxVar()+1)
	}
	if words > 1 {
		keyVars = keyVars[:64]
		words = 1
	}
	sets := make([]uint64, g.MaxVar()+1)
	idx := make(map[uint32]int, len(keyVars))
	for i, v := range keyVars {
		idx[v] = i
		sets[v] = 1 << uint(i)
	}
	counts := make([]int, g.MaxVar()+1)
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if g.Op(v) == aig.OpInput {
			counts[v] = popcount(sets[v])
			continue
		}
		var s uint64
		for _, f := range g.Fanins(v) {
			s |= sets[f.Var()]
		}
		sets[v] = s
		counts[v] = popcount(s)
	}
	return counts
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig5Row is one benchmark's PPA overhead at one skewness level.
type Fig5Row struct {
	Bench    string
	SkewBits float64
	Area     techmap.Overhead
}

// Fig5 locks every benchmark at every skewness level and measures the
// area/power/delay overheads on the mapped netlists. Benchmarks run on
// the worker pool, one task per benchmark with a splitmix-derived seed,
// and each task renders its rows into a private buffer so the emitted
// report is byte-identical at any worker count. cache may be nil.
func Fig5(ctx context.Context, suite []netlistgen.Benchmark, skews []float64, seed int64, workers int, cache *memo.Cache, w io.Writer) ([]Fig5Row, error) {
	if w != nil {
		fmt.Fprintln(w, "bench       skew   area%   power%   delay%")
	}
	type out struct {
		rows []Fig5Row
		text []byte
	}
	var rows []Fig5Row
	sums := map[float64]*techmap.Overhead{}
	counts := map[float64]int{}
	exec.Collect(ctx, workers, len(suite), func(ctx context.Context, i int) out {
		b := suite[i]
		bseed := exec.DeriveSeed(seed, i)
		var buf bytes.Buffer
		var o out
		c := b.Build()
		orig := techmap.AnalyzeWith(c, 8, bseed, cache)
		for _, s := range skews {
			opt := core.DefaultOptions()
			opt.TargetSkewBits = s
			opt.Seed = bseed
			opt.AllowDirect = false
			opt.Cache = cache
			res, err := core.Lock(ctx, c, opt)
			if err != nil {
				fmt.Fprintf(&buf, "%-10s %g bits: %v\n", b.Name, s, err)
				continue
			}
			locked := techmap.AnalyzeWith(res.Locked.Enc, 8, bseed, cache)
			ov := techmap.Compare(orig, locked)
			o.rows = append(o.rows, Fig5Row{b.Name, s, ov})
			fmt.Fprintf(&buf, "%-10s %5.0f  %6.1f  %7.1f  %7.1f\n",
				b.Name, s, ov.AreaPct, ov.PowerPct, ov.DelayPct)
		}
		o.text = buf.Bytes()
		return o
	}, func(i int, o out) {
		for _, r := range o.rows {
			rows = append(rows, r)
			if sums[r.SkewBits] == nil {
				sums[r.SkewBits] = &techmap.Overhead{}
			}
			sums[r.SkewBits].AreaPct += r.Area.AreaPct
			sums[r.SkewBits].PowerPct += r.Area.PowerPct
			sums[r.SkewBits].DelayPct += r.Area.DelayPct
			counts[r.SkewBits]++
		}
		if w != nil {
			w.Write(o.text)
		}
	})
	if w != nil {
		for _, s := range skews {
			if counts[s] > 0 {
				n := float64(counts[s])
				fmt.Fprintf(w, "%-10s %5.0f  %6.1f  %7.1f  %7.1f\n",
					"AVERAGE", s, sums[s].AreaPct/n, sums[s].PowerPct/n, sums[s].DelayPct/n)
			}
		}
	}
	return rows, ctx.Err()
}

// StructuralRow summarizes the structural-attack evaluation of one lock.
type StructuralRow struct {
	Bench              string
	CriticalEliminated bool
	ValkyrieBroke      bool
	SPIWrong           bool
	RemovalFailed      bool
}

// Structural locks each benchmark and runs the structural attack battery.
// Benchmarks run on the worker pool with splitmix-derived per-benchmark
// seeds; output is emitted in suite order regardless of worker count.
// cache may be nil.
func Structural(ctx context.Context, suite []netlistgen.Benchmark, skewBits float64, seed int64, workers int, cache *memo.Cache, w io.Writer) ([]StructuralRow, error) {
	if w != nil {
		fmt.Fprintln(w, "bench       critical-eliminated  valkyrie-resisted  spi-wrong  removal-resisted")
	}
	type out struct {
		row  StructuralRow
		ok   bool
		text []byte
	}
	var rows []StructuralRow
	exec.Collect(ctx, workers, len(suite), func(ctx context.Context, i int) out {
		b := suite[i]
		bseed := exec.DeriveSeed(seed, i)
		var buf bytes.Buffer
		c := b.Build()
		opt := core.DefaultOptions()
		opt.TargetSkewBits = skewBits
		opt.Seed = bseed
		opt.AllowDirect = false
		opt.Cache = cache
		res, err := core.Lock(ctx, c, opt)
		if err != nil {
			fmt.Fprintf(&buf, "%-10s: %v\n", b.Name, err)
			return out{text: buf.Bytes()}
		}
		l := res.Locked
		row := StructuralRow{Bench: b.Name}
		fopt := cec.DefaultFindOptions()
		fopt.Seed = bseed
		fopt.Cache = cache
		_, survives := attacks.CriticalNodeSurvives(ctx, l, c, c.Output(res.Report.ProtectedOutput), fopt)
		row.CriticalEliminated = !survives
		copt := cec.SweepOptions()
		copt.Budget = exec.WithConflicts(50000)
		copt.Cache = cache
		vr := attacks.Valkyrie(ctx, l, c, 6, 64, bseed, copt)
		row.ValkyrieBroke = vr.FoundPair
		spi := attacks.SPI(l, 6)
		ok, _ := l.VerifyKey(c, spi.Key)
		row.SPIWrong = !ok
		sps := attacks.SPS(l, 64, bseed, 8)
		rm := attacks.Removal(ctx, l, c, sps.Candidates, copt)
		row.RemovalFailed = !rm.Success
		fmt.Fprintf(&buf, "%-10s %19v  %17v  %9v  %16v\n",
			b.Name, row.CriticalEliminated, !row.ValkyrieBroke, row.SPIWrong, row.RemovalFailed)
		return out{row: row, ok: true, text: buf.Bytes()}
	}, func(i int, o out) {
		if o.ok {
			rows = append(rows, o.row)
		}
		if w != nil {
			w.Write(o.text)
		}
	})
	return rows, ctx.Err()
}
