package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 62, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramSnapshotAndQuantiles(t *testing.T) {
	h := newHistogram("lat.us")
	// 100 observations 1..100: exact quantiles are 50, 90, 99; the log-2
	// estimate must land inside the right bucket's range.
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	ms := h.metricSnapshot()
	if ms.Count != 100 || ms.Sum != 5050 || ms.Min != 1 || ms.Max != 100 {
		t.Fatalf("snapshot = %+v", ms)
	}
	// p50=50 lives in bucket [32,63]; p90=90 and p99=99 in [64,100].
	if ms.P50 < 32 || ms.P50 > 63 {
		t.Errorf("p50 = %v, want within [32,63]", ms.P50)
	}
	if ms.P90 < 64 || ms.P90 > 100 {
		t.Errorf("p90 = %v, want within [64,100]", ms.P90)
	}
	if ms.P99 < ms.P90 || ms.P99 > 100 {
		t.Errorf("p99 = %v, want within [p90,100]", ms.P99)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 {
		t.Fatal("nil histogram not inert")
	}
	nilH.Record(1)
	nilH.RecordDuration(time.Second)

	h := newHistogram("h")
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Record(42)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 42 {
			t.Fatalf("single-value quantile(%v) = %v, want 42", q, got)
		}
	}
	h2 := newHistogram("h2")
	h2.Record(-7) // clamps into bucket 0, min tracks the true value
	ms := h2.metricSnapshot()
	if ms.Min != -7 || ms.Max != -7 || ms.Count != 1 {
		t.Fatalf("negative observation snapshot = %+v", ms)
	}
	if q := h2.Quantile(0.5); q != -7 {
		t.Fatalf("negative quantile = %v, want clamped to -7", q)
	}
}

func TestHistogramRecordDuration(t *testing.T) {
	h := newHistogram("d")
	h.RecordDuration(1500 * time.Microsecond)
	ms := h.metricSnapshot()
	if ms.Count != 1 || ms.Sum != 1500 {
		t.Fatalf("duration recorded as %+v, want 1500us", ms)
	}
}

func TestRegistryStandalone(t *testing.T) {
	var nilR *Registry
	if nilR.Counter("c") != nil || nilR.Gauge("g") != nil || nilR.Histogram("h") != nil {
		t.Fatal("nil registry returned live handles")
	}
	if nilR.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}

	r := NewRegistry()
	r.Counter("z.count").Add(3)
	r.Gauge("a.depth").Set(2)
	r.Histogram("m.lat").Record(10)
	if r.Counter("z.count") != r.Counter("z.count") {
		t.Fatal("counter identity not stable by name")
	}
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if len(s1) != 3 {
		t.Fatalf("got %d metrics, want 3", len(s1))
	}
	// Deterministic: sorted by name, repeatable.
	if s1[0].Name != "a.depth" || s1[1].Name != "m.lat" || s1[2].Name != "z.count" {
		t.Fatalf("snapshot order: %v %v %v", s1[0].Name, s1[1].Name, s1[2].Name)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("snapshots differ at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

func TestTracerRegistryAccessor(t *testing.T) {
	var nilT *Tracer
	if nilT.Registry() != nil {
		t.Fatal("nil tracer registry not nil")
	}
	tr := New(Discard)
	reg := tr.Registry()
	if reg == nil {
		t.Fatal("enabled tracer has nil registry")
	}
	reg.Counter("via.registry").Inc()
	if tr.Counter("via.registry").Value() != 1 {
		t.Fatal("tracer and registry do not share the metric namespace")
	}
}

func TestGaugeAdd(t *testing.T) {
	g := &Gauge{name: "depth"}
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
	var nilG *Gauge
	nilG.Add(1) // must not panic
}

// TestConcurrentMetricRecording hammers one histogram, gauge and
// counter from many goroutines; run under -race this is the
// concurrency proof for the lock-free record paths, and the final
// totals prove no update was lost.
func TestConcurrentMetricRecording(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Histogram("conc.lat")
			g := r.Gauge("conc.depth")
			c := r.Counter("conc.total")
			for i := 0; i < perWorker; i++ {
				h.Record(int64(i%1000 + 1))
				g.Add(1)
				g.Add(-1)
				c.Inc()
				if i%512 == 0 {
					r.Snapshot() // concurrent snapshots must be safe too
				}
			}
		}(w)
	}
	wg.Wait()
	h := r.Histogram("conc.lat")
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	s := h.snapshot()
	var bucketTotal int64
	for _, n := range s.buckets {
		bucketTotal += n
	}
	if bucketTotal != workers*perWorker {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*perWorker)
	}
	if s.min != 1 || s.max != 1000 {
		t.Fatalf("min/max = %d/%d, want 1/1000", s.min, s.max)
	}
	if got := r.Counter("conc.total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("conc.depth").Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
}

func TestFlightRecorderRingAndDump(t *testing.T) {
	fl := NewFlight(8)
	tr := New(fl)
	for i := 0; i < 10; i++ {
		sp := tr.Span("work", Int("i", int64(i)))
		sp.Event("tick")
		sp.End()
	}
	// 30 records through an 8-deep ring: only the last 8 survive.
	if fl.Len() != 8 {
		t.Fatalf("flight holds %d records, want 8", fl.Len())
	}
	var buf bytes.Buffer
	n, err := fl.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("dump has %d lines, want 8", len(lines))
	}
	var prevSeq float64
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("invalid flight JSONL %q: %v", ln, err)
		}
		seq := m["seq"].(float64)
		if seq <= prevSeq {
			t.Fatalf("dump not oldest-first: seq %v after %v", seq, prevSeq)
		}
		prevSeq = seq
	}
	// The newest record is the final span_end (seq 30).
	var last map[string]any
	json.Unmarshal([]byte(lines[len(lines)-1]), &last)
	if last["type"] != "span_end" || last["seq"].(float64) != 30 {
		t.Fatalf("newest record = %v", last)
	}

	var nilF *Flight
	if nilF.Len() != 0 {
		t.Fatal("nil flight not inert")
	}
	if n, err := nilF.WriteTo(io.Discard); n != 0 || err != nil {
		t.Fatal("nil flight WriteTo not inert")
	}
}

func TestFlightCopiesFields(t *testing.T) {
	fl := NewFlight(4)
	fields := []Field{Int("i", 1)}
	fl.Event(1, "e", time.Now(), fields)
	fields[0] = Int("i", 99)
	var buf bytes.Buffer
	fl.WriteTo(&buf)
	if !strings.Contains(buf.String(), `"i":1`) {
		t.Fatalf("flight aliased caller fields: %s", buf.String())
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	tr := New(Discard)
	tr.Counter("runs").Inc()
	tr.Histogram("lat.us").Record(50)

	l := NewLedger("obfuslock-test")
	l.AddExtra("cache_hit_ratio", 0.75)
	l.Finish(tr)

	if l.Schema != LedgerSchema || l.Tool != "obfuslock-test" {
		t.Fatalf("header = %+v", l)
	}
	if l.GoVersion == "" || l.GOOS == "" || l.BuildRevision == "" {
		t.Fatalf("build identity missing: %+v", l)
	}
	if l.End.Before(l.Start) || l.WallSeconds < 0 {
		t.Fatalf("timing mangled: %+v", l)
	}
	if len(l.Metrics) != 2 || l.Metrics[0].Name != "lat.us" || l.Metrics[1].Name != "runs" {
		t.Fatalf("metrics = %+v", l.Metrics)
	}

	path := filepath.Join(t.TempDir(), "ledger.json")
	if err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Ledger
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("ledger.json invalid: %v", err)
	}
	if back.Schema != LedgerSchema || back.Extra["cache_hit_ratio"] != 0.75 {
		t.Fatalf("round trip = %+v", back)
	}
	if back.PeakRSSBytes == 0 && peakRSSBytes() != 0 {
		t.Fatal("peak RSS dropped in round trip")
	}
}

func TestLedgerNilTracer(t *testing.T) {
	l := NewLedger("t")
	l.Finish(nil)
	if len(l.Metrics) != 0 {
		t.Fatalf("nil tracer produced metrics: %+v", l.Metrics)
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	tr := New(Discard)
	tr.Counter("sat.conflicts").Add(11)
	tr.Gauge("pool.depth").Set(2)
	tr.Histogram("dip.us").Record(100)
	fl := NewFlight(16)
	fl.Event(1, "dip", time.Now(), []Field{Int("iter", 3)})

	srv := httptest.NewServer(NewDebugMux(tr, fl))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	text, ct := get("/metrics")
	if !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	for _, want := range []string{
		"dip.us{kind=histogram} count=1", "p50=100",
		"pool.depth{kind=gauge} 2", "sat.conflicts{kind=counter} 11",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// Ordered: dip.us before pool.depth before sat.conflicts.
	if d, p := strings.Index(text, "dip.us"), strings.Index(text, "pool.depth"); d > p {
		t.Fatalf("/metrics not name-ordered:\n%s", text)
	}

	jsonBody, ct := get("/metrics?format=json")
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("/metrics?format=json content type = %q", ct)
	}
	var ms []LedgerMetric
	if err := json.Unmarshal([]byte(jsonBody), &ms); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, jsonBody)
	}
	if len(ms) != 3 || ms[0].Name != "dip.us" || ms[0].P99 != 100 {
		t.Fatalf("metrics JSON = %+v", ms)
	}

	flight, _ := get("/flight")
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(flight)), &rec); err != nil {
		t.Fatalf("/flight invalid JSONL: %v\n%s", err, flight)
	}
	if rec["name"] != "dip" {
		t.Fatalf("/flight record = %v", rec)
	}

	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestListenDebugPicksPort(t *testing.T) {
	addr, err := ListenDebug("127.0.0.1:0", New(Discard), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestStartProfilesWritesAllThree(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "prof")
	stop, err := StartProfiles(prefix)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile is not empty.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof", ".allocs.pprof"} {
		st, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Fatalf("missing profile %s: %v", suffix, err)
		}
		if suffix != ".cpu.pprof" && st.Size() == 0 {
			t.Fatalf("profile %s is empty", suffix)
		}
	}
}

func TestSpanDurationsBridge(t *testing.T) {
	reg := NewRegistry()
	tr := New(Multi(Discard, NewSpanDurations(reg)))
	tr.Span("lock.cec").End()
	tr.Span("lock.cec").End()
	tr.Span("attack.sat").End()
	h := reg.Histogram("span.lock.cec_us")
	if h.Count() != 2 {
		t.Fatalf("span.lock.cec_us count = %d, want 2", h.Count())
	}
	if reg.Histogram("span.attack.sat_us").Count() != 1 {
		t.Fatal("attack.sat span not bridged")
	}
	if NewSpanDurations(nil) != nil {
		t.Fatal("nil registry should yield nil sink")
	}
}
