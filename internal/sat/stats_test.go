package sat

import (
	"reflect"
	"testing"
)

// Stats.Sub and Stats.Add are written out field by field, so a newly
// added counter silently vanishes from attack deltas and portfolio
// aggregates if either method is not extended. Setting every field to a
// distinct value via reflection and checking the arithmetic identities
// catches a forgotten field no matter what it is called.
func TestStatsSubAddCoverEveryField(t *testing.T) {
	var a, b Stats
	ra := reflect.ValueOf(&a).Elem()
	rb := reflect.ValueOf(&b).Elem()
	for i := 0; i < ra.NumField(); i++ {
		f := ra.Type().Field(i)
		if f.Type.Kind() != reflect.Int64 {
			t.Fatalf("Stats.%s is %v; counters are expected to be int64", f.Name, f.Type)
		}
		ra.Field(i).SetInt(int64(1000 + i))
		rb.Field(i).SetInt(int64(i + 1))
	}
	var zero Stats
	if got := a.Sub(zero); got != a {
		t.Errorf("a.Sub(zero) = %+v, want %+v — a field is missing from Sub", got, a)
	}
	if got := a.Sub(a); got != zero {
		t.Errorf("a.Sub(a) = %+v, want zero — a field is missing from Sub", got)
	}
	if got := zero.Add(a); got != a {
		t.Errorf("zero.Add(a) = %+v, want %+v — a field is missing from Add", got, a)
	}
	// Sub must invert Add on every field: (a+b)-b == a.
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("a.Add(b).Sub(b) = %+v, want %+v", got, a)
	}
}
