package sat

// SatELite-style clause-database simplification (Eén & Biere, SAT'05;
// MiniSat-2's SimpSolver): bounded variable elimination by resolution,
// backward subsumption and self-subsuming resolution over occurrence
// lists with signature hashing, top-level unit/pure-literal reduction,
// and clause vivification by unit propagation.
//
// The simplifier operates directly on the clause arena: clauses are
// shrunk in place (arena.shrink) and deleted by marking
// (Solver.deleteClause), never copied in or out. Because arena offsets
// are unstable across compaction, the occurrence-list phases work over
// dense clause ids — `refs` maps id -> cref, and occ/abst/inQueue are
// id-indexed — and the arena GC is deferred to finish, after the
// occurrence lists are dead. The simplifier struct itself is pooled on
// the Solver (s.sp) so inprocessing every few DIP rounds reuses all of
// its scratch instead of reallocating occurrence lists per pass.
//
// The simplifier works on the live incremental solver, so it must honor
// two contracts the preprocessing literature can take for granted:
//
//   - Frozen variables (Freeze/FreezeLit) are exempt from elimination.
//     Any variable later used in an assumption, read through ModelValue,
//     or mentioned by a clause added after Simplify must be frozen
//     first; violating this panics rather than corrupting the answer.
//   - Eliminated variables get their model values reconstructed
//     (extendModel) from the clauses removed at elimination time, so
//     Model/ModelValue keep working unchanged for callers that froze
//     everything they read.
//
// All simplification is deterministic: occurrence lists and queues are
// slices filled and drained in ascending clause-id order, candidate
// variables are sorted with explicit tie-breaks, and no map is iterated
// anywhere on these paths.

import "sort"

// SimpOptions tunes Simplify. The zero value disables every technique;
// use DefaultSimpOptions for the standard configuration.
type SimpOptions struct {
	// VarElim enables bounded variable elimination by resolution.
	// Eliminating a variable is only sound for equisatisfiability:
	// enable it when every literal the caller will assume, read or
	// constrain later is frozen.
	VarElim bool
	// Subsume enables backward subsumption and self-subsuming
	// resolution. These are equivalence-preserving.
	Subsume bool
	// Vivify enables clause vivification by unit propagation
	// (equivalence-preserving: it only removes redundant literals).
	Vivify bool
	// MaxOccur skips elimination of variables occurring in more than
	// this many clauses (SatELite's "don't touch heavily shared
	// variables" guard).
	MaxOccur int
	// MaxGrowth bounds the clause-count growth per eliminated
	// variable: resolvents kept must number at most
	// removed_clauses + MaxGrowth.
	MaxGrowth int
	// MaxResolventLen aborts an elimination producing a resolvent
	// longer than this, and caps the length of clauses considered for
	// vivification.
	MaxResolventLen int
	// VivifyMaxProps bounds the unit propagations spent by one
	// vivification pass.
	VivifyMaxProps int64
	// MaxRounds bounds the subsume/eliminate fixpoint iterations.
	MaxRounds int
}

// DefaultSimpOptions returns the standard simplification configuration.
func DefaultSimpOptions() SimpOptions {
	return SimpOptions{
		VarElim:         true,
		Subsume:         true,
		Vivify:          true,
		MaxOccur:        30,
		MaxGrowth:       0,
		MaxResolventLen: 24,
		VivifyMaxProps:  300000,
		MaxRounds:       3,
	}
}

// SimpStats counts simplification work, cumulative across Simplify calls.
type SimpStats struct {
	// Rounds counts Simplify invocations.
	Rounds int64
	// ElimVars counts variables eliminated by resolution.
	ElimVars int64
	// PureVars counts the subset of ElimVars removed as pure literals
	// (all occurrences in one polarity, so elimination adds nothing).
	PureVars int64
	// FixedVars counts variables fixed at the root level during
	// simplification (top-level units discovered).
	FixedVars int64
	// SubsumedClauses counts clauses deleted by backward subsumption.
	SubsumedClauses int64
	// StrengthenedLits counts literals removed by self-subsuming
	// resolution.
	StrengthenedLits int64
	// VivifiedLits counts literals removed by vivification.
	VivifiedLits int64
	// RemovedClauses counts problem clauses removed by variable
	// elimination (their resolvents are added back).
	RemovedClauses int64
	// ResolventsAdded counts resolvent clauses added by elimination.
	ResolventsAdded int64
}

// Sub returns the per-interval delta s - prev (all counters).
func (s SimpStats) Sub(prev SimpStats) SimpStats {
	return SimpStats{
		Rounds:           s.Rounds - prev.Rounds,
		ElimVars:         s.ElimVars - prev.ElimVars,
		PureVars:         s.PureVars - prev.PureVars,
		FixedVars:        s.FixedVars - prev.FixedVars,
		SubsumedClauses:  s.SubsumedClauses - prev.SubsumedClauses,
		StrengthenedLits: s.StrengthenedLits - prev.StrengthenedLits,
		VivifiedLits:     s.VivifiedLits - prev.VivifiedLits,
		RemovedClauses:   s.RemovedClauses - prev.RemovedClauses,
		ResolventsAdded:  s.ResolventsAdded - prev.ResolventsAdded,
	}
}

// elimRecord remembers the clauses removed when a variable was
// eliminated, for model reconstruction. The literals are deep copies
// (the arena storage they came from is reclaimed by compaction), held
// in the solver-wide append-only store s.elimLits/s.elimEnds: the
// record owns the prefix-end window s.elimEnds[endLo:endHi], and clause
// k's literals are s.elimLits[ends[k-1]:ends[k]] (with the record's
// first clause starting at ends[endLo-1], or 0). One flat store means
// eliminating a variable costs no allocation beyond amortized growth.
type elimRecord struct {
	v            int
	endLo, endHi int32
}

// Freeze exempts a variable from elimination. Freeze every variable
// that will later appear in an assumption, a ModelValue read, or a
// clause added after Simplify.
func (s *Solver) Freeze(v int) { s.frozen[v] = true }

// FreezeLit is Freeze on the literal's variable.
func (s *Solver) FreezeLit(l Lit) { s.frozen[l.Var()] = true }

// Frozen reports whether the variable is exempt from elimination.
func (s *Solver) Frozen(v int) bool { return s.frozen[v] }

// Eliminated reports whether the variable has been eliminated by a
// Simplify call. Its model value is reconstructed after each Sat
// answer, but it may no longer appear in assumptions or new clauses.
func (s *Solver) Eliminated(v int) bool { return s.elim[v] }

// SimpStats returns simplification counters accumulated across all
// Simplify calls.
func (s *Solver) SimpStats() SimpStats { return s.simpStats }

// Simplify reduces the clause database in place: top-level
// unit/pure-literal reduction, backward subsumption, self-subsuming
// resolution, bounded variable elimination, and clause vivification,
// per opt. It returns false when simplification proves the formula
// unsatisfiable (like AddClause). Solving continues to work afterwards:
// frozen variables keep their meaning, eliminated variables are
// reconstructed into the model.
func (s *Solver) Simplify(opt SimpOptions) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	if s.propagate() != crefUndef {
		s.ok = false
		return false
	}
	trailBase := len(s.trail)
	if s.sp == nil {
		s.sp = &simplifier{s: s}
	}
	sp := s.sp
	sp.opt = opt
	ok := sp.run()
	if ok && opt.Vivify {
		ok = sp.vivifyAll()
	}
	s.simpStats.Rounds++
	s.simpStats.FixedVars += int64(len(s.trail) - trailBase)
	if !ok {
		s.ok = false
		return false
	}
	// Watermark for the next (incremental) pass: everything currently in
	// the clause index and on the root trail has been processed.
	s.simpMark = len(s.clauses)
	s.simpTrailMark = len(s.trail)
	return true
}

// simplifier is the Simplify working state, pooled on the Solver so
// repeated inprocessing passes reuse every slice.
type simplifier struct {
	s   *Solver
	opt SimpOptions

	// refs maps dense clause ids to arena references for this pass
	// (problem clauses first, then learnts, then resolvents as they are
	// added). All other per-clause state below is id-indexed.
	refs []cref

	// occ maps each variable to the clause ids containing it in either
	// polarity, learnt clauses included. Valid while occLive. Lists are
	// tombstoned, not compacted: deleting a clause or stripping a
	// literal leaves stale entries behind (occDrop just decrements the
	// live count), and every reader re-verifies an entry against the
	// arena — deleted clauses by the deleted bit, stripped literals by
	// scanning the clause. occCnt holds the exact live occurrence count
	// per variable, so heuristics keyed on list length are unaffected.
	occ     [][]int32
	occLive bool
	abst    []uint64 // per-clause variable signature

	queue   []int32 // subsumption work queue (clause ids)
	qh      int
	inQueue []bool

	markL   []bool  // literal-indexed scratch marks
	scratch []int32 // occurrence-list iteration copy
	keep    []Lit   // vivification scratch

	// Incremental-pass state. A full pass (first Simplify on the solver)
	// considers everything; later passes seed subsumption with the
	// clauses added since the last pass and restrict elimination to
	// touched variables — vars in new clauses, vars losing occurrences
	// to deletion/strengthening, vars of fresh resolvents (SatELite's
	// touch protocol).
	full        bool
	newStart    int32 // first new problem clause id this pass
	problemEnd  int32 // ids below this are problem clauses
	vivStart    int   // first s.clauses index vivifyAll should visit
	touched     []bool
	touchedList []int32

	// Pooled elimination scratch.
	cands   []int
	pos     []int32
	neg     []int32
	lrnt    []int32
	resBuf  []Lit // flattened resolvents of the current tryEliminate
	resEnds []int32

	// occCnt is the exact live occurrence count per variable (buildOcc
	// seeds it, occDrop/addSimpClause maintain it); occBack is the
	// shared backing array the per-var occ lists are carved from.
	occCnt  []int32
	occBack []int32
}

// touch records that a variable's occurrence set changed, making it an
// elimination candidate for the next round/pass.
func (sp *simplifier) touch(v int) {
	if !sp.touched[v] {
		sp.touched[v] = true
		sp.touchedList = append(sp.touchedList, int32(v))
	}
}

func (sp *simplifier) cref(id int32) cref    { return sp.refs[id] }
func (sp *simplifier) deleted(id int32) bool { return sp.s.ar.deleted(sp.refs[id]) }

// run performs the occurrence-list phases (everything but vivification)
// and leaves the solver in a consistent solving state: watches rebuilt,
// clause/learnt indices filtered, propagation queue settled, arena
// compacted when due.
func (sp *simplifier) run() bool {
	s := sp.s
	// Deferred-propagation protocol: from here until finish, units are
	// enqueued at level 0 but never propagated through the watch lists
	// (clause mutation would invalidate them). Clause/value consistency
	// is restored by normalize's fixpoint scans instead.
	sp.full = s.simpMark < 0
	oldMark := s.simpMark
	if sp.full {
		oldMark = 0
	}
	sp.refs = sp.refs[:0]
	sp.newStart = -1
	for i, c := range s.clauses {
		if s.ar.deleted(c) {
			continue
		}
		if i >= oldMark && sp.newStart < 0 {
			sp.newStart = int32(len(sp.refs))
		}
		sp.refs = append(sp.refs, c)
	}
	sp.problemEnd = int32(len(sp.refs))
	if sp.newStart < 0 {
		sp.newStart = sp.problemEnd
	}
	for _, c := range s.learnts {
		if !s.ar.deleted(c) {
			sp.refs = append(sp.refs, c)
		}
	}
	sp.occLive = false
	for len(sp.touched) < s.numVars {
		sp.touched = append(sp.touched, false)
	}
	sp.touchedList = sp.touchedList[:0]
	if !sp.normalize() {
		return false
	}
	sp.buildOcc()
	for len(sp.markL) < 2*s.numVars {
		sp.markL = append(sp.markL, false)
	}
	// Seed the touched set for an incremental pass: every variable of a
	// clause added since the last pass. (A full pass ignores the set and
	// scans all variables.)
	if !sp.full {
		for id := sp.newStart; id < sp.problemEnd; id++ {
			if sp.deleted(id) {
				continue
			}
			for _, w := range s.ar.lits(sp.refs[id]) {
				sp.touch(Lit(w).Var())
			}
		}
	}
	rounds := sp.opt.MaxRounds
	if rounds <= 0 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		changed := 0
		if sp.opt.Subsume {
			if sp.full {
				sp.queueAll()
			} else if r == 0 {
				sp.queueNew()
			}
			// Incremental rounds > 0 drain whatever the previous round
			// strengthened or resolved (enqueueSub keeps the queue fed).
			n, ok := sp.subsumeAll()
			if !ok {
				return false
			}
			changed += n
		}
		if sp.opt.VarElim {
			n, ok := sp.eliminateVars()
			if !ok {
				return false
			}
			changed += n
		}
		if changed == 0 {
			break
		}
	}
	// Clear the touched flags for the next pass (the list is reset on
	// entry, the flags must not leak).
	for _, v := range sp.touchedList {
		sp.touched[v] = false
	}
	return sp.finish()
}

// normalize cleans every live clause against the level-0 assignment
// until no new unit facts appear: satisfied clauses are deleted, false
// literals stripped, and clauses shrunk to units enqueue their literal.
// It returns false on a root-level conflict.
func (sp *simplifier) normalize() bool {
	s := sp.s
	for {
		pre := len(s.trail)
		for id := int32(0); int(id) < len(sp.refs); id++ {
			if sp.deleted(id) {
				continue
			}
			if !sp.cleanClause(id) {
				return false
			}
		}
		if len(s.trail) == pre {
			return true
		}
	}
}

// cleanClause removes literals false at level 0 and deletes the clause
// if satisfied. A clause shrunk to a unit is deleted and its literal
// enqueued (not propagated; see the deferred-propagation protocol). It
// returns false on a root-level conflict.
func (sp *simplifier) cleanClause(id int32) bool {
	s := sp.s
	c := sp.refs[id]
	lits := s.ar.lits(c)
	for _, w := range lits {
		if s.valueLit(Lit(w)) == lTrue {
			sp.removeClause(id)
			return true
		}
	}
	j := 0
	for _, w := range lits {
		l := Lit(w)
		if s.valueLit(l) == lFalse {
			sp.occDrop(l.Var())
			sp.touch(l.Var())
			continue
		}
		lits[j] = w
		j++
	}
	if j == len(lits) {
		return true
	}
	switch j {
	case 0:
		return false
	case 1:
		l := Lit(lits[0])
		sp.removeClause(id)
		// l cannot be assigned here: true lits delete the clause above,
		// false lits were just stripped.
		s.uncheckedEnqueue(l, crefUndef)
		return true
	}
	s.ar.shrink(c, j)
	sp.updateAbst(id)
	return true
}

// removeClause deletes a clause (arena mark + learnt bookkeeping via
// Solver.deleteClause) and removes it from the occurrence lists. The
// clause/learnt indices are filtered later, in finish.
func (sp *simplifier) removeClause(id int32) {
	s := sp.s
	c := sp.refs[id]
	if s.ar.deleted(c) {
		return
	}
	for _, w := range s.ar.lits(c) {
		v := Lit(w).Var()
		sp.occDrop(v)
		sp.touch(v)
	}
	s.deleteClause(c)
}

// occDrop notes that a variable lost one live occurrence. The entry
// itself stays in the occurrence list as a tombstone — compacting the
// list would cost a linear scan per removal, which dominated
// simplification on cone-heavy instances. Readers filter tombstones
// against the arena instead; iteration order stays append order, so
// determinism is unaffected.
func (sp *simplifier) occDrop(v int) {
	if sp.occLive {
		sp.occCnt[v]--
	}
}

// buildOcc constructs the occurrence lists by counting first and then
// carving exact-capacity per-var slices out of one backing array, so a
// pass costs O(1) allocations instead of one growth chain per variable.
// Appends after the carve (resolvents) fall out of the shared backing
// into private storage automatically.
func (sp *simplifier) buildOcc() {
	s := sp.s
	for len(sp.occ) < s.numVars {
		sp.occ = append(sp.occ, nil)
	}
	for len(sp.occCnt) < s.numVars {
		sp.occCnt = append(sp.occCnt, 0)
	}
	cnt := sp.occCnt[:s.numVars]
	for i := range cnt {
		cnt[i] = 0
	}
	sp.abst = sp.abst[:0]
	sp.inQueue = sp.inQueue[:0]
	total := 0
	for id := int32(0); int(id) < len(sp.refs); id++ {
		sp.abst = append(sp.abst, 0)
		sp.inQueue = append(sp.inQueue, false)
		if sp.deleted(id) {
			continue
		}
		for _, w := range s.ar.lits(sp.refs[id]) {
			cnt[Lit(w).Var()]++
			total++
		}
	}
	if cap(sp.occBack) < total {
		sp.occBack = make([]int32, total)
	}
	back := sp.occBack[:total]
	off := 0
	for v := 0; v < s.numVars; v++ {
		n := int(cnt[v])
		sp.occ[v] = back[off : off : off+n]
		off += n
	}
	sp.occLive = true
	for id := int32(0); int(id) < len(sp.refs); id++ {
		if sp.deleted(id) {
			continue
		}
		for _, w := range s.ar.lits(sp.refs[id]) {
			v := Lit(w).Var()
			sp.occ[v] = append(sp.occ[v], id)
		}
		sp.updateAbst(id)
	}
}

// updateAbst recomputes the clause's variable signature: a 64-bit
// Bloom-style filter used to reject non-subset candidates cheaply.
func (sp *simplifier) updateAbst(id int32) {
	if int(id) >= len(sp.abst) {
		return
	}
	var a uint64
	for _, w := range sp.s.ar.lits(sp.refs[id]) {
		a |= 1 << (uint(Lit(w).Var()) & 63)
	}
	sp.abst[id] = a
}

func (sp *simplifier) enqueueSub(id int32) {
	if int(id) < len(sp.inQueue) && !sp.inQueue[id] {
		sp.inQueue[id] = true
		sp.queue = append(sp.queue, id)
	}
}

// queueAll enqueues every live problem clause for backward subsumption,
// in ascending clause-id order (full pass).
func (sp *simplifier) queueAll() {
	sp.queue = sp.queue[:0]
	sp.qh = 0
	for id := int32(0); int(id) < len(sp.refs); id++ {
		if sp.deleted(id) || sp.s.ar.learnt(sp.refs[id]) {
			continue
		}
		sp.inQueue[id] = true
		sp.queue = append(sp.queue, id)
	}
}

// queueNew seeds the subsumption queue with only the problem clauses
// added since the last pass (incremental pass). Old-vs-old pairs were
// already checked then; an old clause newly subsumed by another old
// clause can only arise through strengthening, which requeues.
func (sp *simplifier) queueNew() {
	sp.queue = sp.queue[:0]
	sp.qh = 0
	for id := sp.newStart; id < sp.problemEnd; id++ {
		if sp.deleted(id) {
			continue
		}
		sp.inQueue[id] = true
		sp.queue = append(sp.queue, id)
	}
}

// subsumeAll drains the subsumption queue: each queued clause C is
// checked backward against every clause D sharing C's rarest variable.
// C ⊆ D deletes D; C ⊆ D with exactly one flipped literal strengthens D
// by self-subsuming resolution (learnt D included — that only shrinks a
// redundant clause). Learnt clauses are never used as the subsuming
// side: a problem clause deleted on a learnt's authority would become
// unsound to drop in reduceDB.
func (sp *simplifier) subsumeAll() (int, bool) {
	s := sp.s
	changed := 0
	for sp.qh < len(sp.queue) {
		id := sp.queue[sp.qh]
		sp.qh++
		sp.inQueue[id] = false
		c := sp.refs[id]
		if s.ar.deleted(c) || s.ar.learnt(c) {
			continue
		}
		if !sp.cleanClause(id) {
			return changed, false
		}
		if s.ar.deleted(c) {
			continue
		}
		clits := s.ar.lits(c)
		best := Lit(clits[0]).Var()
		for _, w := range clits[1:] {
			if v := Lit(w).Var(); sp.occCnt[v] < sp.occCnt[best] {
				best = v
			}
		}
		for _, w := range clits {
			sp.markL[Lit(w)] = true
		}
		cl := len(clits)
		ca := sp.abst[id]
		ok := true
		sp.scratch = append(sp.scratch[:0], sp.occ[best]...)
		for _, did := range sp.scratch {
			if did == id {
				continue
			}
			d := sp.refs[did]
			if s.ar.deleted(d) || s.ar.size(d) < cl {
				continue
			}
			if ca&^sp.abst[did] != 0 {
				continue
			}
			cnt := 0
			flips := 0
			flip := LitUndef
			for _, w := range s.ar.lits(d) {
				l := Lit(w)
				if sp.markL[l] {
					cnt++
				} else if sp.markL[l.Not()] {
					flips++
					flip = l
				}
			}
			if cnt == cl {
				sp.removeClause(did)
				s.simpStats.SubsumedClauses++
				changed++
			} else if cnt == cl-1 && flips == 1 {
				if !sp.strengthen(did, flip) {
					ok = false
					break
				}
				s.simpStats.StrengthenedLits++
				changed++
			}
		}
		for _, w := range s.ar.lits(c) {
			sp.markL[Lit(w)] = false
		}
		if !ok {
			return changed, false
		}
	}
	return changed, true
}

// strengthen removes one literal from a clause in place (self-subsuming
// resolution) and, for problem clauses only, requeues it for
// subsumption — learnt clauses must never become the subsuming side. It
// returns false on a root-level conflict.
func (sp *simplifier) strengthen(id int32, l Lit) bool {
	s := sp.s
	c := sp.refs[id]
	lits := s.ar.lits(c)
	j := 0
	for _, w := range lits {
		if Lit(w) == l {
			continue
		}
		lits[j] = w
		j++
	}
	sp.occDrop(l.Var())
	sp.touch(l.Var())
	switch j {
	case 0:
		return false
	case 1:
		u := Lit(lits[0])
		sp.removeClause(id)
		switch s.valueLit(u) {
		case lTrue:
			return true
		case lFalse:
			return false
		}
		s.uncheckedEnqueue(u, crefUndef)
		return true
	}
	s.ar.shrink(c, j)
	sp.updateAbst(id)
	if !s.ar.learnt(c) {
		sp.enqueueSub(id)
	}
	return true
}

// eliminateVars tries bounded variable elimination, cheapest occurrence
// count first (ties by variable index — deterministic). A full pass
// scans every variable; an incremental pass consumes the touched set
// (vars whose occurrence lists changed since the last pass or round),
// which it resets so the try loop can accumulate touches for the next
// round.
func (sp *simplifier) eliminateVars() (int, bool) {
	s := sp.s
	cands := sp.cands[:0]
	consider := func(v int) {
		if s.frozen[v] || s.elim[v] || s.assign[v] != lUndef {
			return
		}
		n := int(sp.occCnt[v])
		if n == 0 || n > sp.opt.MaxOccur {
			return
		}
		cands = append(cands, v)
	}
	if sp.full {
		for v := 0; v < s.numVars; v++ {
			consider(v)
		}
	} else {
		for _, v := range sp.touchedList {
			consider(int(v))
		}
		for _, v := range sp.touchedList {
			sp.touched[v] = false
		}
		sp.touchedList = sp.touchedList[:0]
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if la, lb := sp.occCnt[a], sp.occCnt[b]; la != lb {
			return la < lb
		}
		return a < b
	})
	eliminated := 0
	for _, v := range cands {
		if s.assign[v] != lUndef || s.elim[v] {
			continue
		}
		ok, did := sp.tryEliminate(v)
		if !ok {
			sp.cands = cands[:0]
			return eliminated, false
		}
		if did {
			eliminated++
		}
	}
	sp.cands = cands[:0]
	return eliminated, true
}

// tryEliminate attempts to eliminate v by resolution: it resolves every
// positive problem clause against every negative one, and commits when
// the surviving resolvents do not outnumber the removed clauses by more
// than MaxGrowth (SatELite's growth bound). Removed problem clauses are
// recorded for model reconstruction; learnt clauses mentioning v are
// simply dropped (they are redundant, and keeping them would constrain
// an eliminated variable).
func (sp *simplifier) tryEliminate(v int) (ok, did bool) {
	s := sp.s
	pos, neg, lrnt := sp.pos[:0], sp.neg[:0], sp.lrnt[:0]
	defer func() {
		sp.pos, sp.neg, sp.lrnt = pos[:0], neg[:0], lrnt[:0]
	}()
	sp.scratch = append(sp.scratch[:0], sp.occ[v]...)
	for _, id := range sp.scratch {
		c := sp.refs[id]
		if s.ar.deleted(c) {
			continue
		}
		if !sp.cleanClause(id) {
			return false, false
		}
		if s.ar.deleted(c) {
			continue
		}
		if s.ar.learnt(c) {
			lrnt = append(lrnt, id)
			continue
		}
		found := false
		polNeg := false
		for _, w := range s.ar.lits(c) {
			if l := Lit(w); l.Var() == v {
				found = true
				polNeg = l.Neg()
				break
			}
		}
		if !found {
			// Tombstone: v was stripped from this still-live clause by
			// strengthening or level-0 cleaning. It neither resolves on
			// v nor may be removed here.
			continue
		}
		if polNeg {
			neg = append(neg, id)
		} else {
			pos = append(pos, id)
		}
	}
	// Cleaning can enqueue a unit on v itself; elimination of an
	// assigned variable is meaningless (normalize handles it).
	if s.assign[v] != lUndef {
		return true, false
	}
	pure := len(pos) == 0 || len(neg) == 0
	sp.resBuf = sp.resBuf[:0]
	sp.resEnds = sp.resEnds[:0]
	if !pure {
		limit := len(pos) + len(neg) + sp.opt.MaxGrowth
		for _, pc := range pos {
			for _, nc := range neg {
				n, keep := sp.resolve(pc, nc, v)
				if !keep {
					continue
				}
				if sp.opt.MaxResolventLen > 0 && n > sp.opt.MaxResolventLen {
					return true, false
				}
				sp.resEnds = append(sp.resEnds, int32(len(sp.resBuf)))
				if len(sp.resEnds) > limit {
					return true, false
				}
			}
		}
	}
	// Commit: record removed problem clauses for reconstruction, drop
	// everything touching v, add the resolvents.
	rec := elimRecord{v: v, endLo: int32(len(s.elimEnds))}
	for _, side := range [][]int32{pos, neg} {
		for _, id := range side {
			for _, w := range s.ar.lits(sp.refs[id]) {
				s.elimLits = append(s.elimLits, Lit(w))
			}
			s.elimEnds = append(s.elimEnds, int32(len(s.elimLits)))
		}
	}
	rec.endHi = int32(len(s.elimEnds))
	s.elimCl = append(s.elimCl, rec)
	s.elim[v] = true
	for _, side := range [][]int32{pos, neg} {
		for _, id := range side {
			sp.removeClause(id)
			s.simpStats.RemovedClauses++
		}
	}
	for _, id := range lrnt {
		sp.removeClause(id)
	}
	start := int32(0)
	for _, end := range sp.resEnds {
		if !sp.addSimpClause(sp.resBuf[start:end]) {
			return false, true
		}
		start = end
	}
	s.simpStats.ElimVars++
	if pure {
		s.simpStats.PureVars++
	}
	return true, true
}

// resolve computes the resolvent of a positive and a negative clause of
// v, appending its literals to sp.resBuf (the caller records the
// boundary). keep is false when the resolvent is a tautology or already
// satisfied at level 0, in which case resBuf is rolled back; n is the
// number of literals appended.
func (sp *simplifier) resolve(pc, nc int32, v int) (n int, keep bool) {
	s := sp.s
	base := len(sp.resBuf)
	add := func(l Lit) {
		if !sp.markL[l] {
			sp.markL[l] = true
			sp.resBuf = append(sp.resBuf, l)
		}
	}
	unmark := func() {
		for _, l := range sp.resBuf[base:] {
			sp.markL[l] = false
		}
	}
	for _, w := range s.ar.lits(sp.refs[pc]) {
		l := Lit(w)
		if l.Var() == v {
			continue
		}
		switch s.valueLit(l) {
		case lTrue:
			unmark()
			sp.resBuf = sp.resBuf[:base]
			return 0, false
		case lFalse:
			continue
		}
		add(l)
	}
	for _, w := range s.ar.lits(sp.refs[nc]) {
		l := Lit(w)
		if l.Var() == v {
			continue
		}
		sat := s.valueLit(l) == lTrue
		if sat || sp.markL[l.Not()] {
			unmark()
			sp.resBuf = sp.resBuf[:base]
			return 0, false // satisfied or tautology
		}
		if s.valueLit(l) == lFalse {
			continue
		}
		add(l)
	}
	unmark()
	return len(sp.resBuf) - base, true
}

// addSimpClause inserts a resolvent as a problem clause mid-
// simplification: values are re-checked (units may have fired since the
// resolvent was built), the clause is packed into the arena and indexed
// under a fresh dense id, occurrence lists and signatures are extended,
// and the clause is queued for subsumption. Watches are not touched;
// finish rebuilds them. It returns false on a root-level conflict.
func (sp *simplifier) addSimpClause(lits []Lit) bool {
	s := sp.s
	out := lits[:0]
	for _, l := range lits {
		switch s.valueLit(l) {
		case lTrue:
			return true
		case lFalse:
			continue
		}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		return false
	case 1:
		s.uncheckedEnqueue(out[0], crefUndef)
		return true
	}
	c := s.ar.alloc(out, false, 0)
	s.clauses = append(s.clauses, c)
	id := int32(len(sp.refs))
	sp.refs = append(sp.refs, c)
	sp.abst = append(sp.abst, 0)
	sp.inQueue = append(sp.inQueue, false)
	for _, l := range out {
		sp.occ[l.Var()] = append(sp.occ[l.Var()], id)
		sp.occCnt[l.Var()]++
		sp.touch(l.Var())
	}
	sp.updateAbst(id)
	sp.enqueueSub(id)
	s.simpStats.ResolventsAdded++
	return true
}

// finish restores the solver to a consistent solving state after the
// occurrence-list phases: a final normalize fixpoint (so no surviving
// clause mentions an assigned variable), the clause/learnt indices
// filtered of deleted refs, stale level-0 reasons cleared, all watch
// lists rebuilt from scratch, the propagation queue settled at the
// trail head, and the arena compacted if the pass freed enough words.
func (sp *simplifier) finish() bool {
	s := sp.s
	if !sp.normalize() {
		return false
	}
	sp.occLive = false
	oldMark := s.simpMark
	if oldMark < 0 {
		oldMark = 0
	}
	kept := s.clauses[:0]
	sp.vivStart = 0
	for i, c := range s.clauses {
		if !s.ar.deleted(c) {
			if i < oldMark {
				sp.vivStart++ // clauses vivified by an earlier pass
			}
			kept = append(kept, c)
		}
	}
	s.clauses = kept
	keptL := s.learnts[:0]
	for _, c := range s.learnts {
		if !s.ar.deleted(c) {
			keptL = append(keptL, c)
		}
	}
	s.learnts = keptL
	for _, l := range s.trail {
		s.reason[l.Var()] = crefUndef
	}
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	for _, c := range s.clauses {
		s.watch(s.ar.litAt(c, 0), c, s.ar.litAt(c, 1))
		s.watch(s.ar.litAt(c, 1), c, s.ar.litAt(c, 0))
	}
	for _, c := range s.learnts {
		s.watch(s.ar.litAt(c, 0), c, s.ar.litAt(c, 1))
		s.watch(s.ar.litAt(c, 1), c, s.ar.litAt(c, 0))
	}
	// Every root assignment's consequences are already structural
	// (satisfied clauses deleted, false literals stripped), so there is
	// nothing left to propagate.
	s.qhead = len(s.trail)
	// The occurrence lists are dead now, so crefs may move.
	s.maybeGC()
	return true
}

// vivifyAll runs clause vivification over the problem clauses, after
// finish has rebuilt the watches: for clause (l1 ∨ … ∨ lk), assume
// ¬l1, ¬l2, … one temporary decision level at a time and propagate. A
// conflict or an implied-true literal proves the prefix subsumes the
// clause; an implied-false literal is redundant and dropped. The pass
// is bounded by VivifyMaxProps unit propagations.
func (sp *simplifier) vivifyAll() bool {
	s := sp.s
	if !s.ok {
		return false
	}
	budget := sp.opt.VivifyMaxProps
	if budget <= 0 {
		return true
	}
	maxLen := sp.opt.MaxResolventLen
	if maxLen <= 0 {
		maxLen = 24
	}
	start := s.stats.Propagations
	// An incremental pass only vivifies clauses added since the last
	// pass (earlier clauses already had their turn; strengthened forms
	// of them are cheap enough to leave to the search).
	for ci := sp.vivStart; ci < len(s.clauses); ci++ {
		if s.stats.Propagations-start >= budget {
			break
		}
		c := s.clauses[ci]
		if s.ar.deleted(c) {
			continue
		}
		size := s.ar.size(c)
		if size < 2 || size > maxLen {
			continue
		}
		// Skip clauses touched by units discovered earlier in this
		// pass; the next Simplify round cleans them.
		touched := false
		for _, w := range s.ar.lits(c) {
			if s.valueLit(Lit(w)) != lUndef {
				touched = true
				break
			}
		}
		if touched {
			continue
		}
		// Detach: the clause must not propagate against itself.
		sp.unwatch(s.ar.litAt(c, 0), c)
		sp.unwatch(s.ar.litAt(c, 1), c)
		keep := sp.keep[:0]
		shortened := false
		done := false
		for _, w := range s.ar.lits(c) {
			l := Lit(w)
			switch s.valueLit(l) {
			case lTrue:
				keep = append(keep, l)
				shortened = len(keep) < size
				done = true
			case lFalse:
				shortened = true
			default:
				keep = append(keep, l)
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(l.Not(), crefUndef)
				if s.propagate() != crefUndef {
					shortened = len(keep) < size
					done = true
				}
			}
			if done {
				break
			}
		}
		s.cancelUntil(0)
		sp.keep = keep[:0]
		if !shortened || len(keep) >= size {
			s.watch(s.ar.litAt(c, 0), c, s.ar.litAt(c, 1))
			s.watch(s.ar.litAt(c, 1), c, s.ar.litAt(c, 0))
			continue
		}
		s.simpStats.VivifiedLits += int64(size - len(keep))
		if len(keep) == 1 {
			u := keep[0]
			s.deleteClause(c)
			if s.valueLit(u) == lUndef {
				s.uncheckedEnqueue(u, crefUndef)
			}
			if s.valueLit(u) == lFalse || s.propagate() != crefUndef {
				return false
			}
			continue
		}
		lits := s.ar.lits(c)
		for i, l := range keep {
			lits[i] = uint32(l)
		}
		s.ar.shrink(c, len(keep))
		s.watch(s.ar.litAt(c, 0), c, s.ar.litAt(c, 1))
		s.watch(s.ar.litAt(c, 1), c, s.ar.litAt(c, 0))
	}
	return true
}

// unwatch removes one clause's watcher from a literal's watch list,
// preserving order.
func (sp *simplifier) unwatch(l Lit, c cref) {
	ws := sp.s.watches[l]
	for i := range ws {
		if ws[i].cref == c {
			copy(ws[i:], ws[i+1:])
			sp.s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

// modelLitTrue evaluates a literal under the last model (used only by
// extendModel, where every variable already has a concrete value).
func (s *Solver) modelLitTrue(l Lit) bool {
	v := s.model[l.Var()] == lTrue
	if l.Neg() {
		return !v
	}
	return v
}

// extendModel reconstructs values for eliminated variables after a Sat
// answer. Records are processed newest-first: a clause stored when v
// was eliminated may mention variables eliminated later, whose values
// must be fixed first. Within a record, v defaults to false (which
// satisfies every ¬v clause) and flips to true only when some stored
// clause containing +v has all its other literals false; SatELite's
// elimination invariant guarantees no ¬v clause then becomes falsified.
func (s *Solver) extendModel() {
	for i := len(s.elimCl) - 1; i >= 0; i-- {
		rec := &s.elimCl[i]
		s.model[rec.v] = lFalse
		start := int32(0)
		if rec.endLo > 0 {
			start = s.elimEnds[rec.endLo-1]
		}
		for _, end := range s.elimEnds[rec.endLo:rec.endHi] {
			cl := s.elimLits[start:end]
			start = end
			needs := true
			positive := false
			for _, l := range cl {
				if l.Var() == rec.v {
					positive = !l.Neg()
					continue
				}
				if s.modelLitTrue(l) {
					needs = false
					break
				}
			}
			if needs && positive {
				s.model[rec.v] = lTrue
				break
			}
		}
	}
}
