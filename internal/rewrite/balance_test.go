package rewrite

import (
	"math/rand"
	"testing"

	"obfuslock/internal/aig"
)

func TestBalanceReducesDepth(t *testing.T) {
	// Left-deep AND chain over 16 inputs: depth 15 -> ~4 after balancing.
	g := aig.New()
	in := g.AddInputs(16)
	acc := in[0]
	for _, l := range in[1:] {
		acc = g.And(acc, l)
	}
	g.AddOutput(acc, "f")
	b := Balance(g)
	mustEquivalent(t, g, b, "balance chain")
	if b.Depth() > 5 {
		t.Fatalf("balanced depth = %d, want <= 5", b.Depth())
	}
}

func TestBalanceXorChain(t *testing.T) {
	g := aig.New()
	in := g.AddInputs(12)
	acc := in[0]
	for _, l := range in[1:] {
		acc = g.Xor(acc, l.Not())
	}
	g.AddOutput(acc, "f")
	b := Balance(g)
	mustEquivalent(t, g, b, "balance xor chain")
	if b.Depth() > 5 {
		t.Fatalf("balanced xor depth = %d", b.Depth())
	}
}

func TestBalanceRandomEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 6, 60)
		b := Balance(g)
		mustEquivalent(t, g, b, "balance random")
		if b.Depth() > g.Depth() {
			t.Fatalf("balance increased depth: %d -> %d", g.Depth(), b.Depth())
		}
	}
}

func TestBalanceRoundTripWithUnbalance(t *testing.T) {
	g := aig.New()
	in := g.AddInputs(16)
	g.AddOutput(g.AndN(in...), "f")
	ub := Unbalance(g)
	rb := Balance(ub)
	mustEquivalent(t, g, rb, "unbalance+balance")
	if rb.Depth() >= ub.Depth() {
		t.Fatalf("balance after unbalance: %d -> %d", ub.Depth(), rb.Depth())
	}
}
