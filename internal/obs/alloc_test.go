package obs

import "testing"

// hotLoop mimics the solver/attack hot-loop instrumentation pattern: a
// span per unit of work, a guarded event with fields, counters,
// histogram records and gauge updates.
func hotLoop(tr *Tracer, n int) {
	c := tr.Counter("conflicts")
	h := tr.Histogram("depth")
	g := tr.Gauge("queue")
	for i := 0; i < n; i++ {
		sp := tr.Span("solve")
		if sp.Enabled() {
			sp.Event("conflict", Int("n", int64(i)), Float("rate", 0.5))
		}
		c.Add(1)
		h.Record(int64(i))
		g.Set(float64(i))
		g.Add(1)
		sp.End()
	}
}

// TestDisabledPathZeroAllocs pins the contract relied on by the solver
// and attack loops: with tracing disabled, span/event/counter/
// histogram/gauge calls allocate nothing.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var tr *Tracer
	if allocs := testing.AllocsPerRun(1000, func() { hotLoop(tr, 1) }); allocs != 0 {
		t.Fatalf("disabled tracer hot loop allocates %v per op, want 0", allocs)
	}
}

// TestEnabledRecordPathZeroAllocs pins the complementary contract: once
// the metric handles exist, Record/Add/Set themselves stay 0 allocs/op
// even with telemetry ON — the lock-free histogram never allocates per
// observation.
func TestEnabledRecordPathZeroAllocs(t *testing.T) {
	tr := New(Discard)
	c := tr.Counter("conflicts")
	h := tr.Histogram("depth")
	g := tr.Gauge("queue")
	var i int64
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		c.Add(1)
		h.Record(i)
		g.Set(float64(i))
		g.Add(1)
	})
	if allocs != 0 {
		t.Fatalf("enabled metric record path allocates %v per op, want 0", allocs)
	}
}

// BenchmarkHistogramRecord measures the lock-free record hot path; run
// with -benchmem to see 0 allocs/op.
func BenchmarkHistogramRecord(b *testing.B) {
	h := New(Discard).Histogram("bench.lat")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i & 1023))
	}
}

// BenchmarkDisabledHistogramRecord is the disabled (nil handle) side.
func BenchmarkDisabledHistogramRecord(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

// BenchmarkDisabledSpanEvent measures the disabled-sink fast path; run
// with -benchmem to see 0 allocs/op.
func BenchmarkDisabledSpanEvent(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Span("solve")
		if sp.Enabled() {
			sp.Event("conflict", Int("n", int64(i)))
		}
		sp.End()
	}
}

// BenchmarkEnabledSpanEvent is the comparison point: a live collector
// sink (in-memory), amortized per span+event.
func BenchmarkEnabledSpanEvent(b *testing.B) {
	tr := New(Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Span("solve")
		if sp.Enabled() {
			sp.Event("conflict", Int("n", int64(i)))
		}
		sp.End()
	}
}
