// Package netlistgen synthesizes the benchmark circuits used in the
// ObfusLock evaluation. The published suites (ISCAS'85/'89, ITC'99, EPFL)
// are not redistributable here, so this package builds functional
// stand-ins:
//
//   - arithmetic benchmarks (c6288, square, max, c7552) are real circuits —
//     an array multiplier, a squarer, a 4-way wide-word maximum, and an
//     adder/comparator/parity datapath;
//   - control-dominated ISCAS'89/ITC'99 benchmarks are seeded structured
//     random logic with realistic building blocks (decoders, parity trees,
//     mux networks, layered random gates) matched in I/O and node count.
//
// All generators are deterministic for a given seed.
package netlistgen

import (
	"fmt"
	"math/rand"

	"obfuslock/internal/aig"
)

// Multiplier returns an n×n array multiplier (2n inputs, 2n outputs).
func Multiplier(n int) *aig.AIG {
	g := aig.New()
	g.Name = fmt.Sprintf("mult%dx%d", n, n)
	a := make([]aig.Lit, n)
	b := make([]aig.Lit, n)
	for i := range a {
		a[i] = g.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := range b {
		b[i] = g.AddInput(fmt.Sprintf("b%d", i))
	}
	prods := multiplyArray(g, a, b)
	for i, p := range prods {
		g.AddOutput(p, fmt.Sprintf("p%d", i))
	}
	return g
}

// multiplyArray builds the partial-product array and carry-save reduction
// for a*b, returning len(a)+len(b) sum bits.
func multiplyArray(g *aig.AIG, a, b []aig.Lit) []aig.Lit {
	n, m := len(a), len(b)
	cols := make([][]aig.Lit, n+m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			cols[i+j] = append(cols[i+j], g.And(a[i], b[j]))
		}
	}
	// Carry-save reduction: repeatedly compress columns with full/half
	// adders until every column has at most two bits, then ripple.
	for {
		again := false
		for c := 0; c < len(cols); c++ {
			for len(cols[c]) > 2 {
				again = true
				x, y, z := cols[c][0], cols[c][1], cols[c][2]
				cols[c] = cols[c][3:]
				s := g.Xor(g.Xor(x, y), z)
				carry := g.Maj(x, y, z)
				cols[c] = append(cols[c], s)
				if c+1 < len(cols) {
					cols[c+1] = append(cols[c+1], carry)
				}
			}
		}
		if !again {
			break
		}
	}
	// Final ripple addition of the two remaining rows.
	out := make([]aig.Lit, n+m)
	carry := aig.ConstFalse
	for c := 0; c < len(cols); c++ {
		var x, y aig.Lit = aig.ConstFalse, aig.ConstFalse
		if len(cols[c]) > 0 {
			x = cols[c][0]
		}
		if len(cols[c]) > 1 {
			y = cols[c][1]
		}
		out[c] = g.Xor(g.Xor(x, y), carry)
		carry = g.Maj(x, y, carry)
	}
	return out
}

// Squarer returns an n-bit squarer (n inputs, 2n outputs), the "square"
// EPFL benchmark stand-in.
func Squarer(n int) *aig.AIG {
	g := aig.New()
	g.Name = fmt.Sprintf("square%d", n)
	a := make([]aig.Lit, n)
	for i := range a {
		a[i] = g.AddInput(fmt.Sprintf("a%d", i))
	}
	prods := multiplyArray(g, a, a)
	for i, p := range prods {
		g.AddOutput(p, fmt.Sprintf("p%d", i))
	}
	return g
}

// lessThan returns the literal "a < b" for equal-width vectors (LSB first).
func lessThan(g *aig.AIG, a, b []aig.Lit) aig.Lit {
	lt := aig.ConstFalse
	for i := 0; i < len(a); i++ { // LSB to MSB; MSB decides last
		eq := g.Xor(a[i], b[i]).Not()
		bi := g.And(a[i].Not(), b[i])
		lt = g.Or(bi, g.And(eq, lt))
	}
	return lt
}

// mux2 selects word t when s else e.
func mux2(g *aig.AIG, s aig.Lit, t, e []aig.Lit) []aig.Lit {
	out := make([]aig.Lit, len(t))
	for i := range t {
		out[i] = g.Mux(s, t[i], e[i])
	}
	return out
}

// Max returns the EPFL-max stand-in: the maximum of k w-bit unsigned words
// (k*w inputs, w outputs plus a selector indicator per word).
func Max(k, w int) *aig.AIG {
	g := aig.New()
	g.Name = fmt.Sprintf("max%dx%d", k, w)
	words := make([][]aig.Lit, k)
	for i := range words {
		words[i] = make([]aig.Lit, w)
		for j := range words[i] {
			words[i][j] = g.AddInput(fmt.Sprintf("x%d_%d", i, j))
		}
	}
	best := words[0]
	for i := 1; i < k; i++ {
		lt := lessThan(g, best, words[i])
		best = mux2(g, lt, words[i], best)
	}
	for j, l := range best {
		g.AddOutput(l, fmt.Sprintf("max%d", j))
	}
	return g
}

// AdderCmp is the c7552 stand-in: an n-bit adder and subtractor, magnitude
// and equality comparators, and per-byte parity networks over two operands
// (the real c7552 is an adder/comparator with parity checking).
func AdderCmp(n int) *aig.AIG {
	g := aig.New()
	g.Name = fmt.Sprintf("addercmp%d", n)
	a := make([]aig.Lit, n)
	b := make([]aig.Lit, n)
	for i := range a {
		a[i] = g.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := range b {
		b[i] = g.AddInput(fmt.Sprintf("b%d", i))
	}
	cin := g.AddInput("cin")
	carry := cin
	for i := 0; i < n; i++ {
		s := g.Xor(g.Xor(a[i], b[i]), carry)
		carry = g.Maj(a[i], b[i], carry)
		g.AddOutput(s, fmt.Sprintf("s%d", i))
	}
	g.AddOutput(carry, "cout")
	// Difference a - b = a + ~b + 1.
	borrow := aig.ConstTrue
	for i := 0; i < n; i++ {
		d := g.Xor(g.Xor(a[i], b[i].Not()), borrow)
		borrow = g.Maj(a[i], b[i].Not(), borrow)
		g.AddOutput(d, fmt.Sprintf("d%d", i))
	}
	g.AddOutput(lessThan(g, a, b), "lt")
	eq := aig.ConstTrue
	for i := 0; i < n; i++ {
		eq = g.And(eq, g.Xor(a[i], b[i]).Not())
	}
	g.AddOutput(eq, "eq")
	for base := 0; base < n; base += 8 {
		par := aig.ConstFalse
		for i := base; i < base+8 && i < n; i++ {
			par = g.Xor(par, g.Xor(a[i], b[i]))
		}
		g.AddOutput(par, fmt.Sprintf("par%d", base/8))
	}
	return g
}

// ControlSpec parameterizes a structured random control-logic circuit.
type ControlSpec struct {
	Name        string
	Inputs      int
	Outputs     int
	TargetNodes int
	Seed        int64
}

// Control generates a control-dominated circuit: decoders, parity chains,
// mux networks and layered random gates, sized to roughly TargetNodes AIG
// nodes. All outputs depend on substantial input cones.
func Control(spec ControlSpec) *aig.AIG {
	g := aig.New()
	g.Name = spec.Name
	rng := rand.New(rand.NewSource(spec.Seed))
	ins := make([]aig.Lit, spec.Inputs)
	for i := range ins {
		ins[i] = g.AddInput(fmt.Sprintf("x%d", i))
	}
	pool := append([]aig.Lit(nil), ins...)
	pick := func() aig.Lit {
		// Bias toward recently created signals for depth.
		idx := len(pool) - 1 - rng.Intn(1+min(len(pool)-1, 64))
		l := pool[idx]
		if rng.Intn(2) == 0 {
			l = l.Not()
		}
		return l
	}
	pickInput := func() aig.Lit {
		l := ins[rng.Intn(len(ins))]
		if rng.Intn(2) == 0 {
			l = l.Not()
		}
		return l
	}
	for g.NumNodes() < spec.TargetNodes {
		switch rng.Intn(10) {
		case 0: // decoder term: AND of 3-6 inputs
			k := 3 + rng.Intn(4)
			lits := make([]aig.Lit, k)
			for i := range lits {
				lits[i] = pickInput()
			}
			pool = append(pool, g.AndN(lits...))
		case 1: // parity chain over 3-8 signals
			k := 3 + rng.Intn(6)
			acc := pick()
			for i := 1; i < k; i++ {
				acc = g.Xor(acc, pick())
			}
			pool = append(pool, acc)
		case 2: // mux
			pool = append(pool, g.Mux(pick(), pick(), pick()))
		case 3: // majority (carry-like)
			pool = append(pool, g.Maj(pick(), pick(), pick()))
		case 4, 5, 6: // plain AND
			pool = append(pool, g.And(pick(), pick()))
		case 7, 8: // OR
			pool = append(pool, g.Or(pick(), pick()))
		default: // XOR
			pool = append(pool, g.Xor(pick(), pick()))
		}
	}
	// Outputs: drawn from the deepest third of the pool so cones are large.
	lo := len(pool) * 2 / 3
	for i := 0; i < spec.Outputs; i++ {
		l := pool[lo+rng.Intn(len(pool)-lo)]
		if rng.Intn(2) == 0 {
			l = l.Not()
		}
		g.AddOutput(l, fmt.Sprintf("y%d", i))
	}
	return g
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Benchmark identifies one circuit of the evaluation suite.
type Benchmark struct {
	Name       string
	PaperNodes int // AIG node count reported in the paper's Table I
	Build      func() *aig.AIG
}

// lowered converts a generator to its pure-AND AIG form, matching the
// paper's methodology of mapping every benchmark to AIG before counting
// nodes.
func lowered(build func() *aig.AIG) func() *aig.AIG {
	return func() *aig.AIG {
		g := build().LowerToAnd()
		return g
	}
}

// Catalog returns the ten Table I benchmarks, ordered as in the paper.
// Arithmetic benchmarks are lowered to pure-AND AIGs as in the paper's
// node-count methodology; node counts land near the paper's values and the
// harness records exact values at run time.
func Catalog() []Benchmark {
	return []Benchmark{
		{"s9234", 3677, func() *aig.AIG {
			return Control(ControlSpec{Name: "s9234", Inputs: 247, Outputs: 250, TargetNodes: 3677, Seed: 9234})
		}},
		{"c7552", 4003, lowered(func() *aig.AIG { return AdderCmp(96) })},
		{"c6288", 4660, lowered(func() *aig.AIG { return Multiplier(16) })},
		{"max", 5907, lowered(func() *aig.AIG { return Max(4, 128) })},
		{"s15850", 6820, func() *aig.AIG {
			return Control(ControlSpec{Name: "s15850", Inputs: 611, Outputs: 684, TargetNodes: 6820, Seed: 15850})
		}},
		{"b14", 10635, func() *aig.AIG {
			return Control(ControlSpec{Name: "b14", Inputs: 277, Outputs: 299, TargetNodes: 10635, Seed: 14})
		}},
		{"s38417", 18781, func() *aig.AIG {
			return Control(ControlSpec{Name: "s38417", Inputs: 1664, Outputs: 1742, TargetNodes: 18781, Seed: 38417})
		}},
		{"b20", 24292, func() *aig.AIG {
			return Control(ControlSpec{Name: "b20", Inputs: 522, Outputs: 512, TargetNodes: 24292, Seed: 20})
		}},
		{"s38584", 24296, func() *aig.AIG {
			return Control(ControlSpec{Name: "s38584", Inputs: 1464, Outputs: 1730, TargetNodes: 24296, Seed: 38584})
		}},
		{"square", 39248, lowered(func() *aig.AIG { return Squarer(64) })},
	}
}

// Lookup returns the catalog entry with the given name.
func Lookup(name string) (Benchmark, bool) {
	for _, b := range Catalog() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// SmallSuite returns reduced-size counterparts of the catalog used by unit
// tests and the scaled benchmark harness, preserving each circuit family.
func SmallSuite() []Benchmark {
	return []Benchmark{
		{"s9234-s", 400, func() *aig.AIG {
			return Control(ControlSpec{Name: "s9234-s", Inputs: 48, Outputs: 32, TargetNodes: 400, Seed: 9234})
		}},
		{"c7552-s", 400, func() *aig.AIG { return AdderCmp(16) }},
		{"c6288-s", 500, func() *aig.AIG { return Multiplier(6) }},
		{"max-s", 500, func() *aig.AIG { return Max(4, 24) }},
		{"b14-s", 800, func() *aig.AIG {
			return Control(ControlSpec{Name: "b14-s", Inputs: 64, Outputs: 40, TargetNodes: 800, Seed: 14})
		}},
		{"square-s", 700, func() *aig.AIG { return Squarer(12) }},
	}
}
