package sat

import (
	"testing"
)

// decodeFuzzCNF turns raw fuzz bytes into a small CNF: the first byte
// picks the variable count (3..8, small enough for brute-force
// reference), each following byte either terminates the current clause
// (b%5 == 0, so empty clauses are reachable) or appends a literal. The
// decoder is total — every input maps to some formula — which keeps the
// fuzzer exploring solver behavior instead of input validation.
func decodeFuzzCNF(data []byte) (numVars int, cnf [][]Lit) {
	if len(data) == 0 {
		return 3, nil
	}
	numVars = 3 + int(data[0])%6
	var clause []Lit
	for _, b := range data[1:] {
		if len(cnf) >= 64 {
			break
		}
		if b%5 == 0 {
			cnf = append(cnf, clause)
			clause = nil
			continue
		}
		v := int(b>>1) % numVars
		clause = append(clause, MkLit(v, b&1 == 1))
		if len(clause) >= 8 {
			cnf = append(cnf, clause)
			clause = nil
		}
	}
	if len(clause) > 0 {
		cnf = append(cnf, clause)
	}
	return numVars, cnf
}

// FuzzSolverVsReference differentially tests the CDCL solver against
// brute-force enumeration: verdicts must agree on every decoded
// formula, SAT models must actually satisfy it, and running Simplify
// (subsumption + variable elimination + vivification) first must change
// neither the verdict nor model validity. This is the main soundness
// net over the arena clause store: any corruption from compaction,
// in-place shrinking, or watcher remapping shows up as a verdict
// mismatch or a bogus model on some small formula.
func FuzzSolverVsReference(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 2, 7, 0, 9, 12, 0})
	f.Add([]byte{5, 3, 3, 0, 4, 4, 0, 2, 9, 11, 0, 13, 6, 0})
	f.Add([]byte{7, 1, 2, 4, 0, 6, 8, 10, 0, 12, 14, 1, 0, 3, 7, 0, 9, 13, 0})
	f.Add([]byte{2, 5}) // empty clause: immediately UNSAT
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			return
		}
		numVars, cnf := decodeFuzzCNF(data)
		want, _ := brute(numVars, cnf)

		hasEmpty := false
		for _, cl := range cnf {
			if len(cl) == 0 {
				hasEmpty = true
			}
		}

		build := func() *Solver {
			s := New()
			for i := 0; i < numVars; i++ {
				s.NewVar()
			}
			for _, cl := range cnf {
				s.AddClause(cl...)
			}
			return s
		}
		checkModel := func(t *testing.T, s *Solver, mode string) {
			for _, cl := range cnf {
				ok := false
				for _, l := range cl {
					if s.ModelValue(l) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("%s: model does not satisfy clause %v", mode, cl)
				}
			}
		}

		s := build()
		if got := s.Solve(); (got == Sat) != want {
			t.Fatalf("plain: solver %v, brute-force %v (vars=%d cnf=%v)", got, want, numVars, cnf)
		} else if got == Sat {
			checkModel(t, s, "plain")
		}

		// The simplified solver must agree too. Skip the empty-clause case:
		// Simplify requires a solver that is still ok.
		if hasEmpty {
			return
		}
		ss := build()
		ss.Simplify(DefaultSimpOptions())
		if got := ss.Solve(); (got == Sat) != want {
			t.Fatalf("simplified: solver %v, brute-force %v (vars=%d cnf=%v)", got, want, numVars, cnf)
		} else if got == Sat {
			// ModelValue transparently replays eliminated variables, so the
			// model must cover the original formula, not just the remnant.
			checkModel(t, ss, "simplified")
		}
	})
}
