package obfuslock

// Golden test over the exported API surface: the facade may NAME internal
// types only through type aliases. Exported functions, methods, variables
// and non-alias type declarations must not reference internal/... concrete
// types in their signatures — otherwise callers are forced to import an
// internal package (which the compiler forbids) to hold a value.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// internalImports maps the local import names of a file to true when they
// point into this module's internal tree.
func internalImports(f *ast.File) map[string]bool {
	out := map[string]bool{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !strings.Contains(path, "internal/") {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		out[name] = true
	}
	return out
}

// internalRefs collects selector expressions (pkg.Ident) under root that
// resolve to internal packages.
func internalRefs(root ast.Node, internal map[string]bool) []string {
	var refs []string
	if root == nil {
		return nil
	}
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && internal[id.Name] {
			refs = append(refs, id.Name+"."+sel.Sel.Name)
		}
		return true
	})
	return refs
}

// TestDeprecatedWrappersRemoved pins the API redesign: the pre-registry
// convenience wrappers are gone for good. LockWith/SchemeOptions and
// AttackNamed are the only paths, matching what the job API serializes.
func TestDeprecatedWrappersRemoved(t *testing.T) {
	removed := map[string]bool{
		"LockRLL": true, "LockSARLock": true, "LockAntiSAT": true,
		"LockTTLock": true, "LockSFLLHD": true,
		"RunSATAttack": true, "RunAppSAT": true, "WithTimeout": true,
	}
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			if d, ok := decl.(*ast.FuncDecl); ok && d.Recv == nil && removed[d.Name.Name] {
				t.Errorf("%s: deprecated wrapper %s has been resurrected", file, d.Name.Name)
			}
		}
	}
}

// TestServiceWireTypesSelfContained keeps the job wire schema free of
// foreign types: every field of the serialized service types must be a
// built-in or another wire type, never a reference into an internal
// package (or even the stdlib — a time.Duration field would tie the JSON
// to Go formatting). This is what lets clients in any language hold a
// JobSpec without importing anything of ours.
func TestServiceWireTypesSelfContained(t *testing.T) {
	wire := map[string]bool{
		"JobSpec": true, "JobResult": true, "Error": true,
		"Budget": true, "SchemeOptions": true, "AttackOptions": true,
		"Status": true,
	}
	files, err := filepath.Glob("internal/service/*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	seen := map[string]bool{}
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range d.Specs {
				s, ok := spec.(*ast.TypeSpec)
				if !ok || !wire[s.Name.Name] {
					continue
				}
				seen[s.Name.Name] = true
				ast.Inspect(s.Type, func(n ast.Node) bool {
					if sel, ok := n.(*ast.SelectorExpr); ok {
						if id, ok := sel.X.(*ast.Ident); ok {
							t.Errorf("service wire type %s references %s.%s; wire types must be self-contained",
								s.Name.Name, id.Name, sel.Sel.Name)
						}
					}
					return true
				})
			}
		}
	}
	for name := range wire {
		if !seen[name] {
			t.Errorf("service wire type %s not found; update this test if the schema was renamed", name)
		}
	}
}

func TestAPISurfaceLeaksNoInternalTypes(t *testing.T) {
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		internal := internalImports(f)
		if len(internal) == 0 {
			continue
		}
		report := func(what string, node ast.Node) {
			for _, ref := range internalRefs(node, internal) {
				t.Errorf("%s: %s leaks internal type %s in its exported surface",
					file, what, ref)
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					// Methods on unexported types are not part of the surface.
					recv := d.Recv.List[0].Type
					if star, ok := recv.(*ast.StarExpr); ok {
						recv = star.X
					}
					if id, ok := recv.(*ast.Ident); ok && !id.IsExported() {
						continue
					}
				}
				report("func "+d.Name.Name, d.Type)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						if s.Assign != token.NoPos {
							// Type alias: the sanctioned way to name an
							// internal type from the facade.
							continue
						}
						report("type "+s.Name.Name, s.Type)
					case *ast.ValueSpec:
						exported := false
						for _, n := range s.Names {
							if n.IsExported() {
								exported = true
							}
						}
						if exported {
							report("var/const "+s.Names[0].Name, s.Type)
						}
					}
				}
			}
		}
	}
}
