// Command obfuslock locks a gate-level netlist with ObfusLock.
//
// Usage:
//
//	obfuslock -in design.bench -skew 20 -out locked.bench -key key.txt
//	obfuslock -bench c6288 -skew 30 -sub -out locked.bench
//
// The locked netlist's key inputs are named k0, k1, ...; the correct key
// is written to -key as a 0/1 string (k0 first).
package main

import (
	"flag"
	"fmt"
	"os"

	"obfuslock"
)

func main() {
	in := flag.String("in", "", "input .bench netlist")
	benchName := flag.String("bench", "", "lock a built-in benchmark instead of -in")
	out := flag.String("out", "locked.bench", "output locked netlist")
	keyOut := flag.String("key", "key.txt", "output key file")
	skewBits := flag.Float64("skew", 20, "target skewness in bits")
	seed := flag.Int64("seed", 1, "construction seed")
	sub := flag.Bool("sub", false, "lock a sub-circuit behind a reachable cut (for large designs)")
	minCut := flag.Int("mincut", 0, "minimum sub-circuit cut width (0: derived)")
	output := flag.Int("po", -1, "protected output index (-1: deepest cone)")
	noRewrite := flag.Bool("norewrite", false, "skip the final functional-rewriting pass")
	verify := flag.Bool("verify", true, "prove key correctness by SAT equivalence checking")
	flag.Parse()

	var (
		c   *obfuslock.Circuit
		err error
	)
	switch {
	case *benchName != "":
		found := false
		for _, b := range append(obfuslock.Benchmarks(), obfuslock.SmallBenchmarks()...) {
			if b.Name == *benchName {
				c = b.Build()
				found = true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("unknown benchmark %q (try benchgen -list)", *benchName))
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		c, err = obfuslock.ReadBench(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("one of -in or -bench is required"))
	}

	opt := obfuslock.DefaultOptions()
	opt.TargetSkewBits = *skewBits
	opt.Seed = *seed
	opt.SubCircuit = *sub
	opt.SubCircuitMinCut = *minCut
	opt.ProtectedOutput = *output
	opt.FinalRewrite = !*noRewrite

	res, err := obfuslock.Lock(c, opt)
	if err != nil {
		fatal(err)
	}
	rep := res.Report
	fmt.Printf("mode=%s key-bits=%d skew=%.1f bits L-nodes=%d attachments=%d\n",
		rep.Mode, rep.KeyBits, rep.SkewBits, rep.LockingNodes, rep.Attachments)
	fmt.Printf("nodes %d -> %d, runtime %v\n", rep.OrigNodes, rep.EncNodes, rep.Runtime)

	if *verify {
		if err := res.Locked.Verify(c); err != nil {
			fatal(fmt.Errorf("verification failed: %w", err))
		}
		fmt.Println("verified: correct key restores the original function")
	}

	of, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := obfuslock.WriteBench(of, res.Locked.Enc); err != nil {
		fatal(err)
	}
	of.Close()

	key := make([]byte, res.Locked.KeyBits)
	for i, b := range res.Locked.Key {
		key[i] = '0'
		if b {
			key[i] = '1'
		}
	}
	if err := os.WriteFile(*keyOut, append(key, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s and %s\n", *out, *keyOut)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obfuslock:", err)
	os.Exit(1)
}
