// Command obfuslock locks a gate-level netlist with ObfusLock.
//
// Usage:
//
//	obfuslock -in design.bench -skew 20 -out locked.bench -key key.txt
//	obfuslock -bench c6288 -skew 30 -sub -out locked.bench
//
// The locked netlist's key inputs are named k0, k1, ...; the correct key
// is written to -key as a 0/1 string (k0 first).
//
// The -verify proof runs SAT-swept by default (-sweep, -sweep-words; see
// DESIGN.md "Equivalence checking & SAT sweeping"); -sweep=false forces
// the monolithic miter.
//
// With -resilience <duration> the tool additionally attacks its own
// output: the oracle-guided SAT attack runs for that long as a
// self-check that the lock resists what it claims to resist (-dip-batch
// sets the attack's DIP batching width).
//
// Observability (see DESIGN.md "Observability"): -trace out.jsonl records
// every lock phase as a JSON-Lines span/event stream, -progress paints a
// live status line on stderr, -pprof prefix writes <prefix>.cpu.pprof
// during the run plus <prefix>.heap.pprof and <prefix>.allocs.pprof at
// exit, -debug-addr serves /metrics, /flight and /debug/pprof live (spans
// label the profiles), -ledger writes a ledger.json run record, and -v
// prints cache statistics after the run. Any telemetry flag arms a flight
// recorder whose recent-span ring is dumped to stderr on SIGQUIT or panic.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"obfuslock"
)

func main() {
	in := flag.String("in", "", "input .bench netlist")
	benchName := flag.String("bench", "", "lock a built-in benchmark instead of -in")
	out := flag.String("out", "locked.bench", "output locked netlist")
	keyOut := flag.String("key", "key.txt", "output key file")
	skewBits := flag.Float64("skew", 20, "target skewness in bits")
	seed := flag.Int64("seed", 1, "construction seed")
	sub := flag.Bool("sub", false, "lock a sub-circuit behind a reachable cut (for large designs)")
	minCut := flag.Int("mincut", 0, "minimum sub-circuit cut width (0: derived)")
	output := flag.Int("po", -1, "protected output index (-1: deepest cone)")
	noRewrite := flag.Bool("norewrite", false, "skip the final functional-rewriting pass")
	verify := flag.Bool("verify", true, "prove key correctness by SAT equivalence checking")
	resilience := flag.Duration("resilience", 0, "after locking, self-check resilience by running the SAT attack with this time budget (0: skip)")
	dipBatch := flag.Int("dip-batch", 0, "DIPs per solver round of the -resilience self-check, answered in one bit-parallel oracle pass (0: default width, 1: serial)")
	satWorkers := flag.Int("sat-workers", 1, "parallel SAT portfolio width per -verify/-resilience solve; results are byte-identical at any width (1: sequential, 0: GOMAXPROCS)")
	sweep := flag.Bool("sweep", true, "use SAT sweeping (fraig) for the -verify equivalence proof")
	sweepWords := flag.Int("sweep-words", 8, "64-pattern signature words seeding the sweep's equivalence classes")
	useSimp := flag.Bool("simp", true, "SatELite-style CNF preprocessing/inprocessing in every SAT solver")
	useCache := flag.Bool("cache", false, "memoize SAT-backed sub-queries in a content-addressed result cache")
	cacheDir := flag.String("cache-dir", "", "spill the cache to <dir>/cache.jsonl and reload it on start (requires -cache)")
	cacheMB := flag.Int("cache-mb", 256, "in-memory cache budget in MiB (requires -cache)")
	tracePath := flag.String("trace", "", "write the span/event stream as JSON Lines to this file")
	progress := flag.Bool("progress", false, "live one-line progress on stderr")
	pprofPrefix := flag.String("pprof", "", "write <prefix>.cpu.pprof, <prefix>.heap.pprof and <prefix>.allocs.pprof profiles")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /flight and /debug/pprof on this address (e.g. localhost:6060)")
	ledgerPath := flag.String("ledger", "", "write a ledger.json run record (flags, build, metrics, peak RSS) to this file")
	verbose := flag.Bool("v", false, "print cache statistics after the run")
	workers := flag.Int("workers", 0, "GOMAXPROCS override for the construction (0: leave as is)")
	flag.Parse()

	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateCacheFlags(*useCache, *cacheMB, set); err != nil {
		fmt.Fprintln(os.Stderr, "obfuslock:", err)
		flag.Usage()
		os.Exit(2)
	}

	var ledger *obfuslock.RunLedger
	if *ledgerPath != "" {
		ledger = obfuslock.NewRunLedger("obfuslock")
	}
	tracer, flight, finish := setupTelemetry(*tracePath, *progress, *pprofPrefix, *debugAddr, ledger != nil)
	defer finish()
	armFlightDump(flight)
	defer dumpFlightOnPanic(flight)

	cache := setupCache(*useCache, *cacheDir, *cacheMB, tracer)
	defer cache.Close()

	// Ctrl-C / SIGTERM cancels the lock construction down to its SAT
	// solves instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		c   *obfuslock.Circuit
		err error
	)
	switch {
	case *benchName != "":
		found := false
		for _, b := range append(obfuslock.Benchmarks(), obfuslock.SmallBenchmarks()...) {
			if b.Name == *benchName {
				c = b.Build()
				found = true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("unknown benchmark %q (try benchgen -list)", *benchName))
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		c, err = obfuslock.ReadBench(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("one of -in or -bench is required"))
	}

	sopt := obfuslock.DefaultSimp()
	if !*useSimp {
		sopt = obfuslock.SimpOff()
	}

	opt := obfuslock.DefaultOptions()
	opt.TargetSkewBits = *skewBits
	opt.Seed = *seed
	opt.SubCircuit = *sub
	opt.SubCircuitMinCut = *minCut
	opt.ProtectedOutput = *output
	opt.FinalRewrite = !*noRewrite
	opt.Trace = tracer
	opt.Simp = sopt
	opt.Cache = cache

	res, err := obfuslock.LockContext(ctx, c, opt)
	if err != nil {
		fatal(err)
	}
	rep := res.Report
	fmt.Printf("mode=%s key-bits=%d skew=%.1f bits L-nodes=%d attachments=%d\n",
		rep.Mode, rep.KeyBits, rep.SkewBits, rep.LockingNodes, rep.Attachments)
	fmt.Printf("nodes %d -> %d, runtime %v\n", rep.OrigNodes, rep.EncNodes, rep.Runtime)

	if *verify {
		vsp := tracer.Span("verify", obfuslock.TraceBool("sweep", *sweep))
		copt := obfuslock.DefaultCECOptions()
		if *sweep {
			copt = obfuslock.SweepCECOptions()
			copt.SweepWords = *sweepWords
		}
		copt.Seed = *seed
		copt.Budget.SatWorkers = satWorkersArg(*satWorkers)
		copt.Trace = tracer
		copt.Simp = sopt
		copt.Cache = cache
		err := res.Locked.VerifyWith(ctx, c, copt)
		if err != nil {
			vsp.End(obfuslock.TraceStr("error", err.Error()))
			fatal(fmt.Errorf("verification failed: %w", err))
		}
		vsp.End()
		fmt.Println("verified: correct key restores the original function")
	}

	if *resilience > 0 {
		rsp := tracer.Span("resilience", obfuslock.TraceDur("budget", *resilience))
		aopt := obfuslock.DefaultAttackOptions()
		aopt.Timeout = *resilience
		aopt.Seed = *seed
		aopt.Trace = tracer
		aopt.Simp = sopt
		aopt.DIPBatch = *dipBatch
		aopt.SatWorkers = satWorkersArg(*satWorkers)
		aopt.Cache = cache
		a, _ := obfuslock.AttackNamed("sat")
		r := a.Run(ctx, res.Locked, obfuslock.NewOracle(c), aopt)
		rsp.End(obfuslock.TraceBool("key_found", r.Key != nil),
			obfuslock.TraceInt("iterations", int64(r.Iterations)),
			obfuslock.TraceInt("queries", int64(r.Queries)))
		if r.Key != nil {
			fmt.Printf("resilience: BROKEN — SAT attack recovered a key in %v (%d iterations, %d queries)\n",
				r.Runtime, r.Iterations, r.Queries)
		} else {
			fmt.Printf("resilience: survived a %v SAT attack (%d iterations, %d queries)\n",
				*resilience, r.Iterations, r.Queries)
		}
	}

	of, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := obfuslock.WriteBench(of, res.Locked.Enc); err != nil {
		fatal(err)
	}
	of.Close()

	key := make([]byte, res.Locked.KeyBits)
	for i, b := range res.Locked.Key {
		key[i] = '0'
		if b {
			key[i] = '1'
		}
	}
	if err := os.WriteFile(*keyOut, append(key, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s and %s\n", *out, *keyOut)

	if *verbose {
		printCacheStats(cache)
	}
	if ledger != nil {
		if st := cache.Stats(); st.Lookups() > 0 {
			ledger.AddExtra("cache_hit_ratio", st.HitRatio())
		}
		ledger.Finish(tracer)
		if err := ledger.WriteFile(*ledgerPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *ledgerPath)
	}
}

// printCacheStats surfaces the memo cache's own counters (available even
// without a tracer) for -v runs.
func printCacheStats(cache *obfuslock.Cache) {
	if cache == nil {
		fmt.Println("cache: disabled (use -cache)")
		return
	}
	st := cache.Stats()
	fmt.Printf("cache: hits=%d misses=%d hit-ratio=%.3f dedups=%d evictions=%d spills=%d disk-loads=%d bytes=%d\n",
		st.Hits, st.Misses, st.HitRatio(), st.InflightDedups, st.Evictions, st.Spills, st.DiskLoads, st.Bytes)
}

// setupTelemetry builds the tracer, flight recorder and profile writers
// from the observability flags and returns them with a finish func that
// flushes metrics, stops profiling and closes the trace file. All flags
// off yields a nil (zero-cost) tracer and no flight recorder.
func setupTelemetry(tracePath string, progress bool, pprofPrefix, debugAddr string, ledger bool) (*obfuslock.Tracer, *obfuslock.FlightRecorder, func()) {
	reg := obfuslock.NewMetricRegistry()
	var sinks []obfuslock.TraceSink
	var closers []func()
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		sinks = append(sinks, obfuslock.NewJSONLSink(f))
		closers = append(closers, func() { f.Close() })
	}
	if progress {
		p := obfuslock.NewProgressSink(os.Stderr)
		sinks = append(sinks, p)
		closers = append(closers, p.Done)
	}
	var flight *obfuslock.FlightRecorder
	if tracePath != "" || progress || debugAddr != "" || ledger {
		flight = obfuslock.NewFlightRecorder(obfuslock.DefaultFlightDepth)
		sinks = append(sinks, flight)
	}
	if len(sinks) > 0 {
		// Every completed span also lands in a span.<name>_us histogram,
		// so /metrics and the ledger carry per-phase latency distributions.
		sinks = append(sinks, obfuslock.NewSpanDurationsSink(reg))
	}
	sink := obfuslock.MultiSink(sinks...)
	if sink == nil && pprofPrefix != "" {
		// pprof labels need an enabled tracer even with no stream.
		sink = obfuslock.DiscardSink
	}
	tracer := obfuslock.NewTracerWithRegistry(sink, reg)
	tracer.EnablePprofLabels()
	if pprofPrefix != "" {
		stop, err := obfuslock.StartProfiles(pprofPrefix)
		if err != nil {
			fatal(err)
		}
		closers = append(closers, func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "obfuslock: pprof:", err)
			}
		})
	}
	if debugAddr != "" {
		addr, err := obfuslock.ListenDebug(debugAddr, tracer, flight)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "obfuslock: debug endpoint on http://%s (/metrics, /flight, /debug/pprof)\n", addr)
	}
	done := false
	finish := func() {
		if done {
			return
		}
		done = true
		tracer.Close()
		for _, c := range closers {
			c()
		}
	}
	return tracer, flight, finish
}

// armFlightDump dumps the flight recorder's recent-span ring to stderr on
// SIGQUIT (the run keeps going, like a thread dump).
func armFlightDump(flight *obfuslock.FlightRecorder) {
	if flight == nil {
		return
	}
	qc := make(chan os.Signal, 1)
	signal.Notify(qc, syscall.SIGQUIT)
	go func() {
		for range qc {
			fmt.Fprintln(os.Stderr, "obfuslock: SIGQUIT — flight recorder dump:")
			flight.WriteTo(os.Stderr)
		}
	}()
}

// dumpFlightOnPanic preserves the flight recorder's evidence when the run
// dies: deferred in main, it dumps the ring and re-panics.
func dumpFlightOnPanic(flight *obfuslock.FlightRecorder) {
	if r := recover(); r != nil {
		if flight != nil {
			fmt.Fprintln(os.Stderr, "obfuslock: panic — flight recorder dump:")
			flight.WriteTo(os.Stderr)
		}
		panic(r)
	}
}

// validateCacheFlags enforces the cache flag contract: -cache-mb must be a
// positive budget, and the cache tuning flags only mean something when the
// cache is on.
func validateCacheFlags(useCache bool, cacheMB int, set map[string]bool) error {
	if set["cache-mb"] && cacheMB <= 0 {
		return fmt.Errorf("-cache-mb must be positive, got %d", cacheMB)
	}
	if !useCache && (set["cache-dir"] || set["cache-mb"]) {
		return fmt.Errorf("-cache-dir/-cache-mb require -cache")
	}
	return nil
}

// setupCache opens the result cache; an unusable -cache-dir (unwritable,
// or a corrupt spill file) is a flag error, reported before any work starts.
func setupCache(enabled bool, dir string, mb int, tracer *obfuslock.Tracer) *obfuslock.Cache {
	if !enabled {
		return nil
	}
	c, err := obfuslock.NewCache(obfuslock.CacheOptions{MaxBytes: int64(mb) << 20, Dir: dir, Trace: tracer})
	if err != nil {
		fmt.Fprintln(os.Stderr, "obfuslock:", err)
		flag.Usage()
		os.Exit(2)
	}
	return c
}

// satWorkersArg maps the CLI's -sat-workers convention (0 means "all
// cores") onto the internal exec.SatWorkers one (negative means "all
// cores", 0 means sequential).
func satWorkersArg(n int) int {
	if n == 0 {
		return -1
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obfuslock:", err)
	os.Exit(1)
}
