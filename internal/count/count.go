// Package count implements approximate (projected) model counting with
// random XOR hashing, in the style of ApproxMC. ObfusLock uses it to track
// the number of reachable patterns on a candidate cut when selecting the
// sub-circuit to encrypt.
package count

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"obfuslock/internal/aig"
	"obfuslock/internal/cnf"
	"obfuslock/internal/exec"
	"obfuslock/internal/memo"
	"obfuslock/internal/obs"
	"obfuslock/internal/sat"
	"obfuslock/internal/simp"
)

// Options configures the counter.
type Options struct {
	// Pivot is the cell-size threshold; larger is more accurate and slower.
	Pivot int
	// Trials is the number of independent hashing rounds (median taken).
	Trials int
	// Budget bounds each individual solve (wall-clock side enforced via
	// the caller's context; the zero value is unlimited).
	Budget exec.Budget
	// Seed drives the random parity constraints.
	Seed int64
	// Simp controls CNF preprocessing of each trial's solver (zero
	// value: enabled; simp.Off() disables). The projection literals are
	// frozen, so full elimination is sound.
	Simp simp.Options
	// Trace receives a count.approx span with one count.trial event per
	// XOR hashing round. Nil disables tracing.
	Trace *obs.Tracer
	// Cache memoizes decided estimates under the canonical fingerprint of
	// the projected cone plus the full option descriptor (nil: disabled).
	// Counts are semantic — the same function yields the same count — so
	// verdicts transfer between isomorphic instances. Wall-clock-bounded
	// queries are never cached.
	Cache *memo.Cache
}

// DefaultOptions balances accuracy and runtime for cut selection.
func DefaultOptions() Options {
	return Options{Pivot: 24, Trials: 5, Budget: exec.WithConflicts(500000), Seed: 1}
}

// Result is an approximate count.
type Result struct {
	// Log2Count estimates log2 of the model count (-Inf when zero).
	Log2Count float64
	// Exact is set when the count was fully enumerated (<= Pivot).
	Exact bool
	// Decided is false when solver budgets prevented an estimate.
	Decided bool
}

// problem captures one projected counting instance: a base encoding
// factory so every trial gets a fresh solver.
type problem struct {
	build func() (*sat.Solver, []sat.Lit) // returns solver + projection lits
}

// enumerateUpTo counts models over the projection literals, stopping at
// limit+1. Returns count and whether the solver stayed decisive. With
// workers > 1 each solve rides the deterministic parallel portfolio
// (sound here: every Sat model is the portfolio parent's own, and the
// terminating Unsat is the enumeration's last solve), though the
// default conflict-capped budget keeps the solver sequential anyway.
func enumerateUpTo(ctx context.Context, s *sat.Solver, workers int, proj []sat.Lit, limit int) (int, bool) {
	solve := s.Solve
	if workers > 1 {
		solve = func(assumps ...sat.Lit) sat.Status {
			return s.SolveParallel(ctx, workers, assumps...)
		}
	}
	count := 0
	for count <= limit {
		switch solve() {
		case sat.Sat:
			count++
			block := make([]sat.Lit, len(proj))
			for i, l := range proj {
				if s.ModelValue(l) {
					block[i] = l.Not()
				} else {
					block[i] = l
				}
			}
			if !s.AddClause(block...) {
				return count, true
			}
		case sat.Unsat:
			return count, true
		default:
			return count, false
		}
	}
	return count, true
}

// approx runs the ApproxMC loop on one problem.
func approx(ctx context.Context, p problem, opt Options) Result {
	sp := opt.Trace.Span("count.approx",
		obs.Int("pivot", int64(opt.Pivot)), obs.Int("trials", int64(opt.Trials)))
	r := approxTraced(ctx, p, opt, sp)
	sp.End(obs.Float("log2_count", r.Log2Count),
		obs.Bool("exact", r.Exact), obs.Bool("decided", r.Decided))
	return r
}

func approxTraced(ctx context.Context, p problem, opt Options, sp *obs.Span) Result {
	rng := rand.New(rand.NewSource(opt.Seed))
	// Fast path: full enumeration below the pivot.
	s, proj := p.build()
	s.SetBudget(opt.Budget.ConflictCap())
	s.SetContext(ctx)
	freezeAndSimp(s, proj, opt)
	n, ok := enumerateUpTo(ctx, s, opt.Budget.SatWorkerCount(), proj, opt.Pivot)
	if !ok {
		return Result{Decided: false}
	}
	if n == 0 {
		return Result{Log2Count: math.Inf(-1), Exact: true, Decided: true}
	}
	if n <= opt.Pivot {
		return Result{Log2Count: math.Log2(float64(n)), Exact: true, Decided: true}
	}
	nproj := 0
	{
		_, pr := p.build()
		nproj = len(pr)
	}
	var estimates []float64
	for trial := 0; trial < opt.Trials; trial++ {
		// Galloping search for the number of XORs that leaves <= pivot
		// models in the cell, then refine.
		lo, hi := 1, nproj
		found := -1
		cellAt := func(m int) (int, bool) {
			s, proj := p.build()
			s.SetBudget(opt.Budget.ConflictCap())
			s.SetContext(ctx)
			for x := 0; x < m; x++ {
				var lits []sat.Lit
				for _, l := range proj {
					if rng.Intn(2) == 0 {
						lits = append(lits, l)
					}
				}
				cnf.AddXorConstraint(s, lits, rng.Intn(2) == 0)
			}
			// Simplify after the parity constraints so the XOR chain
			// variables are eliminable too.
			freezeAndSimp(s, proj, opt)
			return enumerateUpTo(ctx, s, opt.Budget.SatWorkerCount(), proj, opt.Pivot)
		}
		probes := 0
		lastCell := 0
		for lo <= hi {
			mid := (lo + hi) / 2
			c, ok := cellAt(mid)
			probes++
			lastCell = c
			if !ok {
				found = -2
				break
			}
			if c > opt.Pivot {
				lo = mid + 1
			} else if c == 0 {
				hi = mid - 1
			} else {
				found = mid
				estimates = append(estimates, math.Log2(float64(c))+float64(mid))
				break
			}
		}
		if sp.Enabled() {
			est := math.NaN()
			if n := len(estimates); n > 0 && found >= 0 {
				est = estimates[n-1]
			}
			sp.Event("count.trial",
				obs.Int("trial", int64(trial)),
				obs.Int("xors", int64(found)),
				obs.Int("probes", int64(probes)),
				obs.Int("cell", int64(lastCell)),
				obs.Float("estimate_log2", est))
		}
		if found == -2 {
			continue
		}
		if found == -1 && lo > nproj {
			// Even with nproj XORs the cell stayed large; count ~ 2^nproj.
			estimates = append(estimates, float64(nproj))
		}
	}
	if len(estimates) == 0 {
		return Result{Decided: false}
	}
	sort.Float64s(estimates)
	return Result{Log2Count: estimates[len(estimates)/2], Decided: true}
}

// freezeAndSimp pins the projection literals (the counter assumes,
// blocks and reads them after preprocessing — for ReachablePatterns
// they are internal cut nodes, not just inputs) and runs one
// simplification pass. An UNSAT outcome needs no special handling: the
// following enumeration just sees Unsat.
func freezeAndSimp(s *sat.Solver, proj []sat.Lit, opt Options) {
	if !opt.Simp.Enabled() {
		return
	}
	for _, l := range proj {
		s.FreezeLit(l)
	}
	simp.Apply(s, opt.Simp, opt.Trace)
}

// errUndecided marks a budget-exhausted estimate so memo.Do skips storing it.
var errUndecided = fmt.Errorf("count: undecided result is not cacheable")

// descriptor renders the options that influence an estimate.
func (opt Options) descriptor() string {
	s := opt.Simp
	return fmt.Sprintf("pivot=%d|trials=%d|conf=%d|seed=%d|simp=%t.%t.%t.%t.%d",
		opt.Pivot, opt.Trials, opt.Budget.Conflicts, opt.Seed,
		s.Disable, s.NoVarElim, s.NoSubsume, s.NoVivify, s.InprocessEvery)
}

// cachedApprox wraps approx with the content-addressed cache: decided
// estimates are stored, everything else falls through to a plain compute.
func cachedApprox(ctx context.Context, keyFn func() string, p problem, opt Options) Result {
	if !opt.Cache.Enabled() || opt.Budget.Timeout != 0 {
		return approx(ctx, p, opt)
	}
	var computed *Result
	v, err := memo.Do(opt.Cache, keyFn(), func() (Result, error) {
		r := approx(ctx, p, opt)
		computed = &r
		if !r.Decided {
			return Result{}, errUndecided
		}
		return r, nil
	})
	if computed != nil {
		return *computed
	}
	if err != nil {
		return approx(ctx, p, opt)
	}
	opt.Trace.Counter("count.cache_hit").Inc()
	return v
}

// Models approximately counts satisfying input assignments of cond in g.
func Models(ctx context.Context, g *aig.AIG, cond aig.Lit, opt Options) Result {
	key := func() string {
		return fmt.Sprintf("count.models|%s|nin=%d|%s",
			g.FingerprintCone(cond), g.NumInputs(), opt.descriptor())
	}
	return cachedApprox(ctx, key, problem{build: func() (*sat.Solver, []sat.Lit) {
		s := sat.New()
		e := cnf.NewEncoder(g, s)
		ins := make([]sat.Lit, g.NumInputs())
		for i := range ins {
			ins[i] = e.InputLit(i)
		}
		root := e.Encode(cond)
		s.AddClause(root[0])
		return s, ins
	}}, opt)
}

// ReachablePatterns approximately counts the number of distinct value
// combinations the given cut literals can take over all inputs — the
// projected count used by ObfusLock's sub-circuit selection.
func ReachablePatterns(ctx context.Context, g *aig.AIG, cut []aig.Lit, opt Options) Result {
	key := func() string {
		// The cone fingerprint folds the cut roots in order, so the XOR
		// draws (which follow the projection order) match across hits.
		return fmt.Sprintf("count.reach|%s|%s", g.FingerprintCone(cut...), opt.descriptor())
	}
	return cachedApprox(ctx, key, problem{build: func() (*sat.Solver, []sat.Lit) {
		s := sat.New()
		e := cnf.NewEncoder(g, s)
		lits := e.Encode(cut...)
		return s, lits
	}}, opt)
}
