package obfuslock

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"obfuslock/internal/attacks"
	"obfuslock/internal/exec"
	"obfuslock/internal/experiments"
	"obfuslock/internal/lockbase"
	"obfuslock/internal/locking"
	"obfuslock/internal/netlistgen"
)

// lockBench locks the small adder/comparator at a fixed seed and returns
// the serialized locked netlist.
func lockBench(t *testing.T, tr *Tracer) []byte {
	t.Helper()
	c := SmallBenchmarks()[1].Build()
	opt := DefaultOptions()
	opt.TargetSkewBits = 8
	opt.Seed = 5
	opt.AllowDirect = false
	opt.Trace = tr
	res, err := Lock(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, res.Locked.Enc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLockSeedByteIdentical pins the determinism contract: the same
// Options.Seed yields a byte-identical .bench serialization, with and
// without tracing (tracing must never influence randomized choices).
func TestLockSeedByteIdentical(t *testing.T) {
	a := lockBench(t, nil)
	b := lockBench(t, nil)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different .bench output")
	}
	traced := lockBench(t, NewTracer(NewTraceCollector()))
	if !bytes.Equal(a, traced) {
		t.Fatal("enabling tracing changed the locked netlist")
	}
}

// TestAttackTranscriptDeterministic pins the attack-side contract: at a
// fixed seed the SAT-attack transcript (iteration and oracle-query
// counts) is reproducible, and tracing does not perturb it.
func TestAttackTranscriptDeterministic(t *testing.T) {
	c := SmallBenchmarks()[1].Build()
	opt := DefaultOptions()
	opt.TargetSkewBits = 8
	opt.Seed = 5
	opt.AllowDirect = false
	res, err := Lock(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	satAttack, ok := AttackNamed("sat")
	if !ok {
		t.Fatal("sat attack missing from registry")
	}
	run := func(tr *Tracer) AttackResult {
		aopt := DefaultAttackOptions()
		aopt.MaxIterations = 25
		aopt.Seed = 7
		aopt.Trace = tr
		return satAttack.Run(context.Background(), res.Locked, NewOracle(c), aopt)
	}
	r1 := run(nil)
	r2 := run(nil)
	if r1.Iterations != r2.Iterations || r1.Queries != r2.Queries {
		t.Fatalf("same seed, different transcript: (%d,%d) vs (%d,%d)",
			r1.Iterations, r1.Queries, r2.Iterations, r2.Queries)
	}
	col := NewTraceCollector()
	r3 := run(NewTracer(col))
	if r3.Iterations != r1.Iterations || r3.Queries != r1.Queries {
		t.Fatalf("tracing changed the transcript: (%d,%d) vs (%d,%d)",
			r3.Iterations, r3.Queries, r1.Iterations, r1.Queries)
	}
	if got := len(col.EventsNamed("dip")); got != r3.Iterations {
		t.Fatalf("%d dip events for %d iterations", got, r3.Iterations)
	}
}

// batchedKeysAt attacks 50 random lock instances at the given worker
// count, each once with the classic serial loop (DIPBatch=1) and once
// with the batched default, and returns the recovered keys. It fails
// the test if any attack is inexact or any instance's serial and
// batched keys differ.
func batchedKeysAt(t *testing.T, workers int) [][]bool {
	t.Helper()
	const instances = 50
	keys := make([][]bool, instances)
	fail := make([]error, instances)
	exec.Collect(context.Background(), workers, instances,
		func(ctx context.Context, i int) []bool {
			// Alternate schemes; every instance gets its own seed, so the
			// 50 locks (key values, inserted gates) are all distinct.
			var orig = netlistgen.Multiplier(3) // 6 inputs
			var l *locking.Locked
			var err error
			if i%2 == 0 {
				l, err = lockbase.RLL(orig, 10, int64(i+1))
			} else {
				l, err = lockbase.SARLock(orig, 6, int64(i+1))
			}
			if err != nil {
				fail[i] = err
				return nil
			}
			run := func(batch int) []bool {
				opt := attacks.DefaultIOOptions()
				opt.MaxIterations = 200 // > 2^6 SARLock DIPs
				opt.DIPBatch = batch
				r := attacks.SATAttack(ctx, l, locking.NewOracle(orig), opt)
				if !r.Exact {
					fail[i] = fmt.Errorf("instance %d batch=%d: not exact: %+v", i, batch, r)
					return nil
				}
				return r.Key
			}
			serial, batched := run(1), run(0)
			if fail[i] == nil && !equalBools(serial, batched) {
				fail[i] = fmt.Errorf("instance %d: serial key %v != batched key %v", i, serial, batched)
			}
			return batched
		},
		func(i int, k []bool) { keys[i] = k })
	for _, err := range fail {
		if err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchedKeysByteIdentical pins the batched-oracle determinism
// contract: on 50 random lock instances (alternating RLL and SARLock)
// the batched DIP pipeline recovers exactly the key the classic serial
// loop recovers, and the whole sweep is byte-identical at 1 and 4
// workers. Canonical key extraction makes the key a property of the
// locked circuit alone, so neither the enumeration width nor the
// scheduling of concurrent attacks may leak into the result.
func TestBatchedKeysByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("50-instance attack sweep")
	}
	k1 := batchedKeysAt(t, 1)
	k4 := batchedKeysAt(t, 4)
	for i := range k1 {
		if !equalBools(k1[i], k4[i]) {
			t.Fatalf("instance %d: key differs between 1 and 4 workers: %v vs %v", i, k1[i], k4[i])
		}
	}
}

// sweepAt runs a small deterministic Table I sweep at the given worker
// count and returns the rendered table and metrics.json bytes.
func sweepAt(t *testing.T, workers int) (table, metrics []byte) {
	t.Helper()
	suite := SmallBenchmarks()[:2]
	budget := experiments.Budget{
		MaxIterations: 40,
		Workers:       workers,
		Deterministic: true,
	}
	var tbl bytes.Buffer
	rows, err := experiments.TableI(context.Background(), suite, []float64{8}, 5, budget, &tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("sweep produced no rows")
	}
	var mj bytes.Buffer
	if err := experiments.WriteMetricsJSON(&mj, rows, nil); err != nil {
		t.Fatal(err)
	}
	return tbl.Bytes(), mj.Bytes()
}

// TestTableIWorkersByteIdentical pins the parallel-sweep determinism
// contract: a deterministic Table I sweep emits byte-identical tables and
// metrics.json at any worker count, because every cell derives its seed
// from the master seed and its cell index, and rows are emitted in cell
// order regardless of completion order.
func TestTableIWorkersByteIdentical(t *testing.T) {
	tbl1, mj1 := sweepAt(t, 1)
	tbl4, mj4 := sweepAt(t, 4)
	if !bytes.Equal(tbl1, tbl4) {
		t.Fatalf("table differs between 1 and 4 workers:\n--- workers=1\n%s--- workers=4\n%s", tbl1, tbl4)
	}
	if !bytes.Equal(mj1, mj4) {
		t.Fatalf("metrics.json differs between 1 and 4 workers:\n--- workers=1\n%s--- workers=4\n%s", mj1, mj4)
	}
	if bytes.Contains(tbl1, []byte("s  ")) && !bytes.Contains(tbl1, []byte("-")) {
		t.Fatal("deterministic table still renders wall-clock lock cells")
	}
	if !bytes.Contains(mj1, []byte(`"lock_seconds": 0`)) {
		t.Fatal("deterministic metrics.json carries non-zero lock_seconds")
	}
}

// satWorkerKeysAt attacks a handful of SARLock'd multiplier instances —
// large enough that the attack miter clears the parallel portfolio's
// minimum-clause floor — at the given SAT portfolio width and returns
// each instance's recovered key plus its iteration and query counts.
func satWorkerKeysAt(t *testing.T, satWorkers int) ([][]bool, []int, []int) {
	t.Helper()
	const instances = 4
	keys := make([][]bool, instances)
	iters := make([]int, instances)
	queries := make([]int, instances)
	for i := 0; i < instances; i++ {
		orig := netlistgen.Multiplier(4) // 8 inputs
		l, err := lockbase.SARLock(orig, 8, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		opt := attacks.DefaultIOOptions()
		opt.MaxIterations = 400 // > 2^8 SARLock DIPs
		opt.SatWorkers = satWorkers
		r := attacks.SATAttack(context.Background(), l, locking.NewOracle(orig), opt)
		if !r.Exact {
			t.Fatalf("instance %d workers=%d: not exact: %+v", i, satWorkers, r)
		}
		keys[i] = r.Key
		iters[i] = r.Iterations
		queries[i] = r.Queries
	}
	return keys, iters, queries
}

// TestSatWorkersKeysByteIdentical pins the parallel-portfolio
// determinism contract at the attack level: the SAT attack recovers
// byte-identical keys with identical iteration and query counts at 1
// and 4 SAT workers, because only solves whose models come from the
// portfolio's sequential-equivalent parent (and whose Unsat answers are
// terminal for the round) ride the portfolio.
func TestSatWorkersKeysByteIdentical(t *testing.T) {
	k1, i1, q1 := satWorkerKeysAt(t, 1)
	k4, i4, q4 := satWorkerKeysAt(t, 4)
	for i := range k1 {
		if !equalBools(k1[i], k4[i]) {
			t.Fatalf("instance %d: key differs between 1 and 4 SAT workers: %v vs %v", i, k1[i], k4[i])
		}
		if i1[i] != i4[i] || q1[i] != q4[i] {
			t.Fatalf("instance %d: trajectory differs between 1 and 4 SAT workers: iters %d vs %d, queries %d vs %d",
				i, i1[i], i4[i], q1[i], q4[i])
		}
	}
}
