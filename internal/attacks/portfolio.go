package attacks

import (
	"context"
	"sync"
	"time"

	"obfuslock/internal/aig"
	"obfuslock/internal/locking"
	"obfuslock/internal/obs"
)

// PortfolioVariant is one concurrent racer of a portfolio attack: an
// attack strategy plus the (possibly restricted) locked circuit and
// oracle it targets. Each variant must own its Oracle — oracles count
// queries and are not safe to share across goroutines.
type PortfolioVariant struct {
	// Name labels the variant in results and traces (e.g. "sat-whole").
	Name string
	// Attack selects the strategy: "sat" (default) or "appsat".
	Attack string
	// Locked is the circuit under attack.
	Locked *locking.Locked
	// Oracle answers this variant's queries (not shared with others).
	Oracle *locking.Oracle
	// Orig is the reference circuit used to verify a recovered key; when
	// nil, only Exact results count as wins.
	Orig *aig.AIG
	// Opt bounds the variant's attack.
	Opt IOOptions
}

// PortfolioOutcome is one variant's result after the race settles.
type PortfolioOutcome struct {
	Name string
	// Result is the variant's attack result. Losing variants usually
	// report TimedOut: they were cancelled when the winner finished.
	Result IOResult
	// Correct is true when the variant's key was verified against Orig
	// (or proved exact with no reference circuit).
	Correct bool
}

// PortfolioResult reports a portfolio race.
type PortfolioResult struct {
	// Winner names the first variant that recovered a correct key (""
	// when none did).
	Winner string
	// Key is the winner's key (nil when there is no winner).
	Key []bool
	// Outcomes lists every variant's result in input order.
	Outcomes []PortfolioOutcome
	// Runtime of the whole race.
	Runtime time.Duration
}

// Portfolio races the variants concurrently and cancels the losers as
// soon as one recovers a verified-correct key, the idea behind
// algorithm-portfolio SAT solving applied to the attack suite: SAT-sub,
// SAT-whole and AppSAT have wildly different runtimes per circuit, and
// the attacker only needs the fastest one.
//
// Variants that attack the same locked circuit (same Locked value and
// same underlying oracle circuit) are wired to a shared DIPQueue: each
// publishes the I/O pairs it answers and drains the others' between
// rounds, so the racers cooperate on shrinking the key space while still
// competing on strategy. A variant whose Opt.Queue is already set keeps
// the caller's wiring.
//
// Every variant goroutine is joined before Portfolio returns — no
// goroutines outlive the call. Which variant wins can depend on
// scheduling; use the deterministic sweep paths when byte-stable output
// matters.
func Portfolio(ctx context.Context, variants []PortfolioVariant, tr *obs.Tracer) PortfolioResult {
	start := time.Now()
	sp := tr.Span("attack.portfolio", obs.Int("variants", int64(len(variants))))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	subs := wireQueues(variants)
	res := PortfolioResult{Outcomes: make([]PortfolioOutcome, len(variants))}
	wins := make(chan int, len(variants))
	var wg sync.WaitGroup
	for i := range variants {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := variants[i]
			if v.Opt.Queue == nil {
				v.Opt.Queue = subs[i]
			}
			var r IOResult
			switch v.Attack {
			case "appsat":
				r = AppSAT(ctx, v.Locked, v.Oracle, v.Opt)
			default:
				r = SATAttack(ctx, v.Locked, v.Oracle, v.Opt)
			}
			correct := false
			if r.Key != nil {
				if v.Orig != nil {
					correct, _ = v.Locked.VerifyKey(v.Orig, r.Key)
				} else {
					correct = r.Exact
				}
			}
			res.Outcomes[i] = PortfolioOutcome{Name: v.Name, Result: r, Correct: correct}
			if correct {
				wins <- i
				cancel() // the race is over; stop the losers
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	if w, ok := <-wins; ok {
		res.Winner = variants[w].Name
		res.Key = res.Outcomes[w].Result.Key
	}
	res.Runtime = time.Since(start)
	sp.End(obs.Str("winner", res.Winner),
		obs.Bool("key_found", res.Key != nil),
		obs.Dur("runtime", res.Runtime))
	return res
}

// wireQueues builds one shared DIPQueue per group of variants racing the
// same locked circuit against the same oracle circuit, and returns a
// per-variant subscription (nil for variants with no group partner).
// I/O pairs are ground truth for the shared circuit, so cross-feeding
// them between the group's members is sound for every strategy.
func wireQueues(variants []PortfolioVariant) []*DIPSub {
	type groupKey struct {
		l *locking.Locked
		g *aig.AIG
	}
	counts := make(map[groupKey]int, len(variants))
	for i := range variants {
		v := &variants[i]
		if v.Locked == nil || v.Oracle == nil {
			continue
		}
		counts[groupKey{v.Locked, v.Oracle.Circuit()}]++
	}
	queues := make(map[groupKey]*DIPQueue)
	subs := make([]*DIPSub, len(variants))
	for i := range variants {
		v := &variants[i]
		if v.Locked == nil || v.Oracle == nil {
			continue
		}
		k := groupKey{v.Locked, v.Oracle.Circuit()}
		if counts[k] < 2 {
			continue
		}
		q := queues[k]
		if q == nil {
			q = NewDIPQueue()
			queues[k] = q
		}
		subs[i] = q.Join()
	}
	return subs
}
