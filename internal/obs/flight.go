package obs

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// flightRecord is one ring-buffer entry: a span start, span end, or
// event, in arrival order.
type flightRecord struct {
	typ    string // "span_start", "span_end", "event"
	spanID uint64
	parent uint64
	name   string
	at     time.Time
	dur    time.Duration
	fields []Field
	seq    uint64
}

// Flight is a bounded ring buffer of the most recent span/event records
// flowing through a tracer — a flight recorder. It costs O(1) per
// record, never blocks the stream, and its contents can be dumped as
// JSONL after a panic, on SIGQUIT, or when an attack exhausts its
// budget, so a wedged DIP loop is debuggable post mortem. Attach it to
// a tracer with Multi(primary, flight). A nil *Flight is valid and
// inert.
type Flight struct {
	mu   sync.Mutex
	ring []flightRecord
	next int    // ring index of the next write
	n    int    // live records (== len(ring) once wrapped)
	seq  uint64 // monotone record number, survives wrapping
}

// DefaultFlightDepth is the record capacity used by NewFlight when the
// caller passes a non-positive depth.
const DefaultFlightDepth = 4096

// NewFlight returns a flight recorder keeping the last depth records
// (DefaultFlightDepth if depth <= 0).
func NewFlight(depth int) *Flight {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &Flight{ring: make([]flightRecord, depth)}
}

func (f *Flight) push(rec flightRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.seq++
	rec.seq = f.seq
	// Fields are copied: the emitting span's variadic slice is reused by
	// the caller's stack frame once the Sink call returns.
	rec.fields = append([]Field(nil), rec.fields...)
	f.ring[f.next] = rec
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	f.mu.Unlock()
}

// SpanStart implements Sink.
func (f *Flight) SpanStart(sd SpanData) {
	f.push(flightRecord{typ: "span_start", spanID: sd.ID, parent: sd.Parent, name: sd.Name, at: sd.Start, fields: sd.Fields})
}

// SpanEnd implements Sink.
func (f *Flight) SpanEnd(sd SpanData) {
	f.push(flightRecord{typ: "span_end", spanID: sd.ID, parent: sd.Parent, name: sd.Name, at: sd.Start, dur: sd.Duration, fields: sd.Fields})
}

// Event implements Sink.
func (f *Flight) Event(id uint64, name string, at time.Time, fields []Field) {
	f.push(flightRecord{typ: "event", spanID: id, name: name, at: at, fields: fields})
}

// Metric implements Sink. Metric snapshots are not ring-buffered: the
// registry already holds the live aggregate state.
func (f *Flight) Metric(MetricSnapshot) {}

// Len returns the number of buffered records.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// WriteTo dumps the buffered records oldest-first as JSONL, one record
// per line in the trace schema plus a "seq" record number showing how
// much history scrolled past. It implements io.WriterTo.
func (f *Flight) WriteTo(w io.Writer) (int64, error) {
	if f == nil {
		return 0, nil
	}
	f.mu.Lock()
	recs := make([]flightRecord, 0, f.n)
	start := f.next - f.n
	if start < 0 {
		start += len(f.ring)
	}
	for i := 0; i < f.n; i++ {
		recs = append(recs, f.ring[(start+i)%len(f.ring)])
	}
	f.mu.Unlock()

	var total int64
	var buf []byte
	for _, rec := range recs {
		buf = appendFlightLine(buf[:0], rec)
		n, err := w.Write(buf)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func appendFlightLine(b []byte, rec flightRecord) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, rec.seq, 10)
	b = append(b, `,"type":`...)
	b = strconv.AppendQuote(b, rec.typ)
	if rec.typ == "event" {
		b = append(b, `,"span":`...)
		b = strconv.AppendUint(b, rec.spanID, 10)
	} else {
		b = append(b, `,"id":`...)
		b = strconv.AppendUint(b, rec.spanID, 10)
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, rec.parent, 10)
	}
	b = append(b, `,"name":`...)
	b = strconv.AppendQuote(b, rec.name)
	b = appendTS(b, rec.at)
	if rec.typ == "span_end" {
		b = append(b, `,"dur_us":`...)
		b = strconv.AppendInt(b, int64(rec.dur/time.Microsecond), 10)
	}
	b = appendFields(b, rec.fields)
	b = append(b, '}', '\n')
	return b
}
