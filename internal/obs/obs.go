// Package obs is the repository's observability layer: hierarchical
// wall-clock spans, structured events, and named counters/gauges/
// histograms, all delivered to a pluggable Sink. It is stdlib-only and
// built around one invariant: a disabled tracer (a nil *Tracer, or one
// the caller never created) costs nothing on the hot paths — every
// method is nil-safe and the guarded call pattern
//
//	if sp.Enabled() {
//		sp.Event("dip", obs.Int("iter", n))
//	}
//
// performs zero allocations when tracing is off (proved by the package
// benchmark). The lock pipeline (internal/core), the SAT solver's
// progress callback (internal/sat), the attack suite (internal/attacks)
// and the counting/sampling engines (internal/count, internal/sample)
// all emit through this package; cmd/attack and cmd/obfuslock expose it
// via -trace, -progress and -pprof.
package obs

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
	"time"
)

// fieldKind discriminates the value stored in a Field.
type fieldKind uint8

const (
	kindInt fieldKind = iota
	kindFloat
	kindStr
	kindBool
	kindDur
)

// Field is a typed key/value attached to spans and events. It is a plain
// value struct (no interface boxing) so building one never allocates.
type Field struct {
	Key  string
	kind fieldKind
	num  int64
	fl   float64
	str  string
}

// Int builds an integer field.
func Int(key string, v int64) Field { return Field{Key: key, kind: kindInt, num: v} }

// Float builds a float field.
func Float(key string, v float64) Field { return Field{Key: key, kind: kindFloat, fl: v} }

// Str builds a string field.
func Str(key, v string) Field { return Field{Key: key, kind: kindStr, str: v} }

// Bool builds a boolean field.
func Bool(key string, v bool) Field {
	f := Field{Key: key, kind: kindBool}
	if v {
		f.num = 1
	}
	return f
}

// Dur builds a duration field (serialized as microseconds).
func Dur(key string, d time.Duration) Field { return Field{Key: key, kind: kindDur, num: int64(d)} }

// Value returns the field's value as int64, float64, string, bool or
// time.Duration, for consumers outside the built-in sinks.
func (f Field) Value() any {
	switch f.kind {
	case kindInt:
		return f.num
	case kindFloat:
		return f.fl
	case kindStr:
		return f.str
	case kindBool:
		return f.num != 0
	default:
		return time.Duration(f.num)
	}
}

// SpanData is the sink-facing view of a span.
type SpanData struct {
	ID     uint64
	Parent uint64 // 0 for root spans
	Name   string
	Start  time.Time
	// Duration is set on SpanEnd only.
	Duration time.Duration
	// Fields holds the start fields on SpanStart and the end fields on
	// SpanEnd.
	Fields []Field
}

// Sink receives the span/event/metric stream. Implementations must be
// safe for concurrent use.
type Sink interface {
	SpanStart(sd SpanData)
	SpanEnd(sd SpanData)
	Event(spanID uint64, name string, at time.Time, fields []Field)
	Metric(ms MetricSnapshot)
}

// Tracer is the root of an observability session. A nil *Tracer is a
// valid, fully disabled tracer.
type Tracer struct {
	sink   Sink
	reg    *Registry
	nextID atomic.Uint64
	pprof  bool
}

// New returns a tracer delivering to sink. A nil sink yields a nil
// (disabled) tracer.
func New(sink Sink) *Tracer {
	return NewWithRegistry(sink, nil)
}

// NewWithRegistry returns a tracer delivering to sink whose metric
// namespace is reg, letting a sink built before the tracer (such as
// SpanDurations) share the tracer's registry. A nil reg allocates a
// fresh one; a nil sink yields a nil (disabled) tracer.
func NewWithRegistry(sink Sink, reg *Registry) *Tracer {
	if sink == nil {
		return nil
	}
	if reg == nil {
		reg = NewRegistry()
	}
	return &Tracer{sink: sink, reg: reg}
}

// Registry returns the tracer's metric registry (nil for a disabled
// tracer). It lets callers hand the metric namespace to components that
// do not emit spans.
func (t *Tracer) Registry() *Registry {
	if !t.Enabled() {
		return nil
	}
	return t.reg
}

// EnablePprofLabels makes every span tag the current goroutine's pprof
// labels with obs_span=<name> for its duration, so CPU/heap profiles can
// be sliced by lock phase or attack iteration.
func (t *Tracer) EnablePprofLabels() {
	if t != nil {
		t.pprof = true
	}
}

// Enabled reports whether the tracer delivers anywhere.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// Span is one timed unit of work. A nil *Span is valid and inert.
type Span struct {
	t      *Tracer
	parent *Span
	id     uint64
	name   string
	start  time.Time
	ctx    context.Context // pprof label context, when enabled
}

// Span starts a root span.
func (t *Tracer) Span(name string, fields ...Field) *Span {
	if !t.Enabled() {
		return nil
	}
	return t.startSpan(nil, name, fields)
}

// Span starts a child span.
func (s *Span) Span(name string, fields ...Field) *Span {
	if s == nil {
		return nil
	}
	return s.t.startSpan(s, name, fields)
}

func (t *Tracer) startSpan(parent *Span, name string, fields []Field) *Span {
	sp := &Span{t: t, parent: parent, id: t.nextID.Add(1), name: name, start: time.Now()}
	var pid uint64
	if parent != nil {
		pid = parent.id
	}
	if t.pprof {
		sp.ctx = pprof.WithLabels(context.Background(), pprof.Labels("obs_span", name))
		pprof.SetGoroutineLabels(sp.ctx)
	}
	t.sink.SpanStart(SpanData{ID: sp.id, Parent: pid, Name: name, Start: sp.start, Fields: fields})
	return sp
}

// Enabled reports whether events on this span are delivered.
func (s *Span) Enabled() bool { return s != nil }

// End closes the span, recording its duration and any final fields.
func (s *Span) End(fields ...Field) {
	if s == nil {
		return
	}
	var pid uint64
	if s.parent != nil {
		pid = s.parent.id
	}
	if s.t.pprof {
		if s.parent != nil && s.parent.ctx != nil {
			pprof.SetGoroutineLabels(s.parent.ctx)
		} else {
			pprof.SetGoroutineLabels(context.Background())
		}
	}
	s.t.sink.SpanEnd(SpanData{
		ID: s.id, Parent: pid, Name: s.name, Start: s.start,
		Duration: time.Since(s.start), Fields: fields,
	})
}

// Event emits a point-in-time event under the span.
func (s *Span) Event(name string, fields ...Field) {
	if s == nil {
		return
	}
	s.t.sink.Event(s.id, name, time.Now(), fields)
}

// Event emits a root-level event (span id 0).
func (t *Tracer) Event(name string, fields ...Field) {
	if !t.Enabled() {
		return
	}
	t.sink.Event(0, name, time.Now(), fields)
}

// Close flushes the metric registry to the sink. It does not close the
// sink's underlying writer (the caller owns it).
func (t *Tracer) Close() {
	if !t.Enabled() {
		return
	}
	for _, ms := range t.Metrics() {
		t.sink.Metric(ms)
	}
}
