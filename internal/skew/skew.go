// Package skew estimates signal probabilities and skewness values of AIG
// nodes. Skewness of a node p with on-set size h_p (taking the smaller of
// the on-set and off-set) is h_p / 2^m; we report it as "bits":
// -log2(h_p/2^m), so a 20-bit-skewed node is 1 (or 0) on a 2^-20 fraction
// of input patterns.
//
// Three estimators are provided, mirroring Section IV-B of the paper:
//
//   - Algebraic: gate-by-gate probability propagation assuming fanin
//     independence — fast, inaccurate under reconvergence; used to shortlist
//     candidate nodes.
//   - MonteCarlo: random simulation — accurate only down to a few bits of
//     skewness (sample-size bound O(1/eps^2)).
//   - Splitting: Boolean multi-level splitting — a rare event is factored
//     into a chain of common conditional events along a staged path, each
//     estimated from sampled witnesses; accurate for exponentially small
//     probabilities.
package skew

import (
	"fmt"
	"math"
	"sort"

	"obfuslock/internal/aig"
	"obfuslock/internal/memo"
	"obfuslock/internal/sample"
	"obfuslock/internal/sim"
	"obfuslock/internal/simp"
)

// Bits converts a probability p of being 1 into bits of skewness:
// -log2(min(p, 1-p)). Returns +Inf for constants.
func Bits(p float64) float64 {
	h := math.Min(p, 1-p)
	if h <= 0 {
		return math.Inf(1)
	}
	return -math.Log2(h)
}

// Algebraic propagates signal probabilities through the graph assuming
// independent fanins. It returns P(node = 1) for every variable.
func Algebraic(g *aig.AIG) []float64 {
	p := make([]float64, g.MaxVar()+1)
	p[0] = 0 // constant false
	for i := 0; i < g.NumInputs(); i++ {
		p[g.InputVar(i)] = 0.5
	}
	lp := func(l aig.Lit) float64 {
		v := p[l.Var()]
		if l.IsCompl() {
			return 1 - v
		}
		return v
	}
	for v := uint32(1); v <= g.MaxVar(); v++ {
		fan := g.Fanins(v)
		switch g.Op(v) {
		case aig.OpAnd:
			p[v] = lp(fan[0]) * lp(fan[1])
		case aig.OpXor:
			a, b := lp(fan[0]), lp(fan[1])
			p[v] = a + b - 2*a*b
		case aig.OpMaj:
			a, b, c := lp(fan[0]), lp(fan[1]), lp(fan[2])
			p[v] = a*b + a*c + b*c - 2*a*b*c
		}
	}
	return p
}

// AlgebraicLit returns the algebraic probability of a literal being 1
// given precomputed node probabilities.
func AlgebraicLit(p []float64, l aig.Lit) float64 {
	v := p[l.Var()]
	if l.IsCompl() {
		return 1 - v
	}
	return v
}

// MonteCarlo estimates P(lit = 1) from words*64 random patterns.
func MonteCarlo(g *aig.AIG, lit aig.Lit, words int, seed int64) float64 {
	v := sim.RunRandom(g, words, seed)
	return v.OnesFraction(lit)
}

// SplittingOptions tunes the multi-level splitting estimator.
type SplittingOptions struct {
	// SamplesPerStage witnesses drawn per conditional estimate.
	SamplesPerStage int
	// MCWords of direct simulation for the first (common) stage.
	MCWords int
	// MaxStageGap bounds the algebraic-skewness spacing between
	// consecutive stage nodes, in bits.
	MaxStageGap float64
	// Seed drives sampling.
	Seed int64
	// UseXorSampler switches to the (slower, more uniform) parity-cell
	// sampler for conditionals.
	UseXorSampler bool
	// Simp controls CNF preprocessing inside the witness samplers (zero
	// value: enabled).
	Simp simp.Options
	// Cache memoizes splitting estimates (nil: disabled). The estimate is
	// built from sampled SAT witnesses, which depend on concrete CNF
	// variable order, so the key uses the exact netlist hash
	// (aig.StructuralHash) rather than the canonical fingerprint: only a
	// bit-identical graph replays to the identical estimate.
	Cache *memo.Cache
}

// DefaultSplittingOptions returns sane defaults.
func DefaultSplittingOptions() SplittingOptions {
	return SplittingOptions{
		SamplesPerStage: 160,
		MCWords:         64,
		MaxStageGap:     4,
		Seed:            1,
	}
}

// Stages selects the staged path p_1..p_n for the splitting estimator:
// a chain of nodes from shallow to deep ending at root, following the
// higher-level fanin at each step, thinned so that consecutive algebraic
// skewness values differ by at most MaxStageGap bits.
func Stages(g *aig.AIG, root aig.Lit, maxGap float64) []aig.Lit {
	probs := Algebraic(g)
	lv, _ := g.Levels()
	// Walk from the root down the deeper fanin.
	var path []aig.Lit
	cur := root
	for {
		path = append(path, cur)
		v := cur.Var()
		op := g.Op(v)
		if op == aig.OpInput || op == aig.OpConst {
			break
		}
		fan := g.Fanins(v)
		best := fan[0]
		for _, f := range fan[1:] {
			if lv[f.Var()] > lv[best.Var()] {
				best = f
			}
		}
		// Track the phase that keeps each stage a "1-event" aligned with
		// its rare side: choose the fanin literal as stored.
		cur = best
	}
	// path is root..leaf; reverse to leaf..root.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	// Thin by algebraic skewness gap, always keeping the root.
	var stages []aig.Lit
	lastBits := 0.0
	for i, l := range path {
		b := Bits(AlgebraicLit(probs, l))
		if math.IsInf(b, 1) {
			continue // constant-looking node, not a useful stage
		}
		if len(stages) == 0 || b-lastBits >= maxGap || i == len(path)-1 {
			// Orient the stage literal toward its rare phase so each
			// conditional event is "stage = rare value".
			if AlgebraicLit(probs, l) > 0.5 {
				l = l.Not()
			}
			if len(stages) > 0 && i == len(path)-1 && stages[len(stages)-1] == l {
				continue
			}
			stages = append(stages, l)
			lastBits = Bits(AlgebraicLit(probs, l))
		}
	}
	if len(stages) == 0 {
		stages = []aig.Lit{root}
	}
	// The last stage must be the root, rare-phase oriented consistently
	// with the caller's literal: force exact root literal at the end.
	if stages[len(stages)-1].Var() != root.Var() {
		stages = append(stages, root)
	} else {
		stages[len(stages)-1] = root
	}
	return stages
}

// Splitting estimates P(root = 1) by Boolean multi-level splitting over
// the given stages (pass nil to derive stages automatically). It returns
// the probability estimate; combine with Bits for bit-skewness.
func Splitting(g *aig.AIG, root aig.Lit, stages []aig.Lit, opt SplittingOptions) float64 {
	if !opt.Cache.Enabled() {
		return splitting(g, root, stages, opt, "")
	}
	sig := opt.descriptor(g)
	key := fmt.Sprintf("skew.split|%s|root=%d|stages=%v", sig, root, stages)
	v, err := memo.Do(opt.Cache, key, func() (float64, error) {
		return splitting(g, root, stages, opt, sig), nil
	})
	if err != nil {
		return splitting(g, root, stages, opt, sig)
	}
	return v
}

// descriptor renders the exact netlist hash plus every option that
// influences an estimate; it prefixes both the splitting key and the
// per-stage witness-pool keys.
func (opt SplittingOptions) descriptor(g *aig.AIG) string {
	s := opt.Simp
	return fmt.Sprintf("%016x|n=%d|mc=%d|gap=%g|seed=%d|xor=%t|simp=%t.%t.%t.%t.%d",
		g.StructuralHash(), opt.SamplesPerStage, opt.MCWords,
		opt.MaxStageGap, opt.Seed, opt.UseXorSampler,
		s.Disable, s.NoVarElim, s.NoSubsume, s.NoVivify, s.InprocessEvery)
}

// splitting is the estimator body. sig is the precomputed descriptor for
// witness-pool cache keys ("" when the cache is off).
func splitting(g *aig.AIG, root aig.Lit, stages []aig.Lit, opt SplittingOptions, sig string) float64 {
	if len(stages) == 0 {
		stages = Stages(g, root, opt.MaxStageGap)
	}
	if stages[len(stages)-1] != root {
		stages = append(stages, root)
	}
	// Stage 1: direct Monte Carlo (the first stage is a common event).
	sk := MonteCarlo(g, stages[0], opt.MCWords, opt.Seed)
	if len(stages) == 1 {
		return sk
	}
	newSampler := func(cond aig.Lit, seed int64) sample.Sampler {
		mk := func() sample.Sampler {
			if opt.UseXorSampler {
				xs := sample.NewXorSampler(g, cond, seed)
				xs.Simp = opt.Simp
				return xs
			}
			cs := sample.NewCubeSampler(g, cond, seed)
			cs.Simp = opt.Simp
			return cs
		}
		if !opt.Cache.Enabled() {
			return mk()
		}
		// Each stage sampler draws exactly one pool, so the stateless
		// pool cache replays it byte-identically.
		return &sample.PoolSampler{
			Cache: opt.Cache,
			Key:   fmt.Sprintf("sample.pool|%s|cond=%d|sseed=%d", sig, cond, seed),
			New:   mk,
		}
	}
	for i := 1; i < len(stages); i++ {
		prev, cur := stages[i-1], stages[i]
		// P(cur | prev): sample witnesses of prev.
		sPos := newSampler(prev, opt.Seed+int64(i)*7919)
		pGivenPrev, n1 := sample.ConditionalProbability(g, cur, prev, sPos, opt.SamplesPerStage)
		if n1 == 0 {
			// prev unsatisfiable: the whole chain has probability 0 along
			// this path; fall back to direct MC of the root.
			return MonteCarlo(g, root, opt.MCWords, opt.Seed+999)
		}
		if pGivenPrev == 0 {
			// The stage gap was wider than planned; try harder before
			// flooring at the rule-of-three bound (a hard zero would make
			// every later stage meaningless).
			sRetry := newSampler(prev, opt.Seed+int64(i)*7919+1)
			p2, n2 := sample.ConditionalProbability(g, cur, prev, sRetry, 4*opt.SamplesPerStage)
			if n2 > 0 && p2 > 0 {
				pGivenPrev = p2
			} else {
				pGivenPrev = 1 / float64(2*(n1+n2)+2)
			}
		}
		// P(cur | !prev): witnesses of the complement (a common event when
		// prev is rare, so Monte Carlo would also do; sampling keeps the
		// estimator uniform in structure).
		sNeg := newSampler(prev.Not(), opt.Seed+int64(i)*104729)
		pGivenNotPrev, n0 := sample.ConditionalProbability(g, cur, prev.Not(), sNeg, opt.SamplesPerStage)
		if n0 == 0 {
			pGivenNotPrev = 0
		}
		sk = pGivenPrev*sk + pGivenNotPrev*(1-sk)
	}
	return sk
}

// SplittingBits is a convenience wrapper returning bits of skewness of the
// root literal's ON probability: -log2(P(root=1)) when P<0.5.
func SplittingBits(g *aig.AIG, root aig.Lit, opt SplittingOptions) float64 {
	return Bits(Splitting(g, root, nil, opt))
}

// NodeSkewness computes per-node skewness bits from random simulation —
// the statistic plotted in Fig. 4(a)/(c) of the paper. Nodes that are
// constant under simulation get +Inf.
func NodeSkewness(g *aig.AIG, words int, seed int64) []float64 {
	v := sim.RunRandom(g, words, seed)
	out := make([]float64, g.MaxVar()+1)
	for n := uint32(0); n <= g.MaxVar(); n++ {
		out[n] = Bits(v.OnesFraction(aig.MkLit(n, false)))
	}
	return out
}

// TopSkewedNodes returns up to k node literals with the highest algebraic
// skewness (rarest phase), excluding constants, inputs and nodes whose
// support is smaller than minSupport.
func TopSkewedNodes(g *aig.AIG, k int, minSupport int) []aig.Lit {
	probs := Algebraic(g)
	type cand struct {
		lit  aig.Lit
		bits float64
	}
	var cands []cand
	for v := uint32(1); v <= g.MaxVar(); v++ {
		op := g.Op(v)
		if op == aig.OpInput || op == aig.OpConst {
			continue
		}
		l := aig.MkLit(v, false)
		if probs[v] > 0.5 {
			l = l.Not()
		}
		b := Bits(probs[v])
		if math.IsInf(b, 1) {
			continue
		}
		if minSupport > 1 && len(g.Support(l)) < minSupport {
			continue
		}
		cands = append(cands, cand{l, b})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].bits > cands[j].bits })
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]aig.Lit, len(cands))
	for i, c := range cands {
		out[i] = c.lit
	}
	return out
}
