// Package exec is the execution layer shared by every analysis in the
// repository. It unifies the three bounding mechanisms that used to live
// in separate packages — wall-clock deadlines, SAT conflict caps and
// context.Context cancellation — behind one Budget type, provides the
// splitmix64 seed-derivation scheme that gives every parallel task an
// independent deterministic seed, and implements a worker pool whose
// results are emitted in task order so sweep output is byte-identical at
// any worker count.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"obfuslock/internal/obs"
)

// Budget bounds one unit of work. The zero value is unlimited.
type Budget struct {
	// Timeout is the wall-clock allowance (0: none). Enforced through the
	// context returned by Bind.
	Timeout time.Duration
	// Conflicts caps SAT conflicts per solver: 0 is unlimited, a negative
	// value exhausts immediately (propagation-only solves), a positive
	// value is the cap. See ConflictCap.
	Conflicts int64
	// SatWorkers selects the parallelism of individual SAT calls
	// (sat.Solver.SolveParallel): 0 or 1 keep today's sequential solver,
	// a negative value resolves to GOMAXPROCS, n > 1 runs an n-worker
	// deterministic portfolio. Results are byte-identical at every
	// setting; only wall-clock changes. See SatWorkerCount.
	SatWorkers int
}

// WithConflicts returns a conflict-capped budget with no wall-clock bound.
func WithConflicts(n int64) Budget { return Budget{Conflicts: n} }

// WithTimeout returns a wall-clock-bounded budget with no conflict cap.
func WithTimeout(d time.Duration) Budget { return Budget{Timeout: d} }

// Bind derives a context enforcing the wall-clock side of the budget:
// the parent's cancellation always propagates, and when Timeout is
// positive the derived context additionally expires after it. The caller
// must call the returned CancelFunc. A nil parent binds against
// context.Background.
func (b Budget) Bind(parent context.Context) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	if b.Timeout > 0 {
		return context.WithTimeout(parent, b.Timeout)
	}
	return context.WithCancel(parent)
}

// ConflictCap converts Conflicts into the argument convention of
// sat.Solver.SetBudget: -1 (no limit) when Conflicts is zero, 0 (exhaust
// immediately) when Conflicts is negative, and Conflicts itself otherwise.
func (b Budget) ConflictCap() int64 {
	switch {
	case b.Conflicts == 0:
		return -1
	case b.Conflicts < 0:
		return 0
	default:
		return b.Conflicts
	}
}

// SatWorkers resolves a -sat-workers style setting into the argument
// convention of sat.Solver.SolveParallel: 0 means 1 (the sequential
// default, so a zero Budget behaves exactly like before the portfolio
// existed), negative means GOMAXPROCS, positive is taken as-is.
func SatWorkers(n int) int {
	switch {
	case n == 0:
		return 1
	case n < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return n
	}
}

// SatWorkerCount resolves the budget's SatWorkers field (see SatWorkers).
func (b Budget) SatWorkerCount() int { return SatWorkers(b.SatWorkers) }

// DeriveSeed expands a master seed into an independent per-task seed
// using the splitmix64 finalizer. Derived seeds depend only on (master,
// index), never on scheduling, which is what keeps parallel sweeps
// byte-identical at any worker count: task i always receives the same
// seed whether it runs first, last, or concurrently with its neighbours.
func DeriveSeed(master int64, index int) int64 {
	z := uint64(master) + (uint64(index)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Workers resolves a worker-count setting: a non-positive value means
// GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PoolMetrics is the optional telemetry surface of the worker pool: a
// gauge tracking how many tasks are currently executing and a histogram
// of per-task latency. The zero value (all nil handles) is fully inert,
// so Collect pays nothing when telemetry is off.
type PoolMetrics struct {
	// QueueDepth tracks tasks currently in flight across the pool.
	QueueDepth *obs.Gauge
	// TaskLatency receives each task's run duration in microseconds.
	TaskLatency *obs.Histogram
	// Tasks counts completed tasks.
	Tasks *obs.Counter
}

// Pool metric names used by PoolMetricsFrom.
const (
	MetricQueueDepth  = "exec.queue_depth"
	MetricTaskLatency = "exec.task_us"
	MetricTasks       = "exec.tasks"
)

// PoolMetricsFrom builds the standard pool metrics from a tracer's
// registry. A nil tracer yields the inert zero value.
func PoolMetricsFrom(tr *obs.Tracer) PoolMetrics {
	reg := tr.Registry()
	if reg == nil {
		return PoolMetrics{}
	}
	return PoolMetrics{
		QueueDepth:  reg.Gauge(MetricQueueDepth),
		TaskLatency: reg.Histogram(MetricTaskLatency),
		Tasks:       reg.Counter(MetricTasks),
	}
}

// enabled reports whether any metric handle is live.
func (pm PoolMetrics) enabled() bool {
	return pm.QueueDepth != nil || pm.TaskLatency != nil || pm.Tasks != nil
}

// Collect runs n independent tasks on a pool of workers and hands every
// result to emit on the calling goroutine, in task order (0, 1, 2, …)
// regardless of completion order or worker count. run must not depend on
// shared mutable state; emit may (it is never called concurrently).
//
// workers is resolved through Workers (non-positive: GOMAXPROCS) and
// clamped to n. With one worker the tasks run serially on the calling
// goroutine. When ctx is cancelled, workers stop picking up new tasks
// and Collect returns after emitting the contiguous prefix of completed
// results; tasks that never ran are not emitted.
func Collect[T any](ctx context.Context, workers, n int, run func(ctx context.Context, i int) T, emit func(i int, r T)) {
	CollectMetered(ctx, workers, n, PoolMetrics{}, run, emit)
}

// CollectMetered is Collect with pool telemetry: every task's execution
// updates the queue-depth gauge while running and records its latency
// and completion on finish. The zero PoolMetrics adds no overhead and
// never reads the clock; ordering semantics are identical to Collect at
// any worker count (instrumentation is per-task and scheduling-free).
func CollectMetered[T any](ctx context.Context, workers, n int, pm PoolMetrics, run func(ctx context.Context, i int) T, emit func(i int, r T)) {
	if n <= 0 {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if pm.enabled() {
		inner := run
		run = func(ctx context.Context, i int) T {
			pm.QueueDepth.Add(1)
			var t0 time.Time
			if pm.TaskLatency != nil {
				t0 = time.Now()
			}
			r := inner(ctx, i)
			if pm.TaskLatency != nil {
				pm.TaskLatency.RecordDuration(time.Since(t0))
			}
			pm.Tasks.Inc()
			pm.QueueDepth.Add(-1)
			return r
		}
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			emit(i, run(ctx, i))
		}
		return
	}
	type item struct {
		i int
		r T
	}
	var next atomic.Int64
	results := make(chan item, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				results <- item{i, run(ctx, i)}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	// Reorder: emit the contiguous prefix as it completes.
	pending := make(map[int]T, workers)
	nextEmit := 0
	for it := range results {
		pending[it.i] = it.r
		for {
			r, ok := pending[nextEmit]
			if !ok {
				break
			}
			delete(pending, nextEmit)
			emit(nextEmit, r)
			nextEmit++
		}
	}
}
