package simp

import "testing"

// The zero value must stay the recommended everything-on configuration,
// and the negative flags must compose: all three techniques off is as
// disabled as Disable itself.
func TestEnabled(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		want bool
	}{
		{"zero", Options{}, true},
		{"default", Default(), true},
		{"off", Off(), false},
		{"equivalence", Equivalence(), true},
		{"all-techniques-off", Options{NoVarElim: true, NoSubsume: true, NoVivify: true}, false},
		{"two-techniques-off", Options{NoVarElim: true, NoSubsume: true}, true},
	}
	for _, c := range cases {
		if got := c.o.Enabled(); got != c.want {
			t.Errorf("%s: Enabled() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestInprocessDue(t *testing.T) {
	// Consumer default cadence applies when InprocessEvery is 0.
	o := Options{}
	for round, want := range map[int]bool{0: false, 1: false, 15: false, 16: true, 32: true, 33: false} {
		if got := o.InprocessDue(round, 16); got != want {
			t.Errorf("default cadence, round %d: got %v, want %v", round, got, want)
		}
	}
	// Explicit cadence overrides the default.
	o.InprocessEvery = 4
	if !o.InprocessDue(4, 16) || o.InprocessDue(16+2, 16) && !o.InprocessDue(8, 16) {
		t.Error("explicit cadence ignored")
	}
	// Negative disables inprocessing entirely; so does a disabled config
	// and a zero default cadence.
	o.InprocessEvery = -1
	if o.InprocessDue(100, 16) {
		t.Error("negative InprocessEvery must disable inprocessing")
	}
	if Off().InprocessDue(16, 16) {
		t.Error("disabled options must never inprocess")
	}
	if (Options{}).InprocessDue(16, 0) {
		t.Error("zero default cadence must mean no inprocessing")
	}
}
