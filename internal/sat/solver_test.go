package sat

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	if st := s.Solve(); st != Sat {
		t.Fatalf("empty formula: %v", st)
	}
	s.AddClause(MkLit(a, false))
	if st := s.Solve(); st != Sat {
		t.Fatalf("unit: %v", st)
	}
	if !s.ModelValue(MkLit(a, false)) {
		t.Fatal("unit not satisfied in model")
	}
	s.AddClause(MkLit(a, true))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("contradiction: %v", st)
	}
	// Solver stays UNSAT forever after.
	if st := s.Solve(); st != Unsat {
		t.Fatal("solver should remain UNSAT")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("empty clause should report false")
	}
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(MkLit(a, false), MkLit(a, true)) {
		t.Fatal("tautology rejected")
	}
	if s.NumClauses() != 0 {
		t.Fatal("tautology stored")
	}
	if s.Solve() != Sat {
		t.Fatal("tautology-only formula should be SAT")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// x1 & (x1->x2) & (x2->x3) ... & (x9->x10), then force !x10: UNSAT.
	s := New()
	vars := make([]int, 10)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(MkLit(vars[0], false))
	for i := 0; i+1 < len(vars); i++ {
		s.AddClause(MkLit(vars[i], true), MkLit(vars[i+1], false))
	}
	if s.Solve() != Sat {
		t.Fatal("chain should be SAT")
	}
	for _, v := range vars {
		if !s.ModelValue(MkLit(v, false)) {
			t.Fatal("all chain vars must be true")
		}
	}
	if s.Solve(MkLit(vars[9], true)) != Unsat {
		t.Fatal("chain with negated sink should be UNSAT under assumption")
	}
	// Assumptions don't poison the solver.
	if s.Solve() != Sat {
		t.Fatal("solver must recover after assumption UNSAT")
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false)) // a | b
	if s.Solve(MkLit(a, true)) != Sat {
		t.Fatal("a=false should still be SAT via b")
	}
	if !s.ModelValue(MkLit(b, false)) {
		t.Fatal("b must be true when a assumed false")
	}
	if s.Solve(MkLit(a, true), MkLit(b, true)) != Unsat {
		t.Fatal("both false should be UNSAT")
	}
	if s.Solve(MkLit(a, false), MkLit(b, false)) != Sat {
		t.Fatal("both true should be SAT")
	}
}

// pigeonhole generates PHP(n+1, n): n+1 pigeons in n holes, classic UNSAT.
func pigeonhole(s *Solver, pigeons, holes int) {
	v := make([][]int, pigeons)
	for p := range v {
		v[p] = make([]int, holes)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = MkLit(v[p][h], false)
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 7; n++ {
		s := New()
		pigeonhole(s, n+1, n)
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d,%d): got %v", n+1, n, st)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	if st := s.Solve(); st != Sat {
		t.Fatalf("PHP(5,5): got %v", st)
	}
}

func TestBudgetReturnsUnknown(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8) // hard enough to exceed a tiny budget
	s.SetBudget(5)
	if st := s.Solve(); st != Unknown {
		t.Fatalf("budgeted solve: got %v, want UNKNOWN", st)
	}
	s.SetBudget(-1)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("unbudgeted solve after reset: got %v", st)
	}
}

func TestStopCallback(t *testing.T) {
	s := New()
	pigeonhole(s, 10, 9)
	calls := 0
	s.SetStop(func() bool { calls++; return calls > 2 })
	if st := s.Solve(); st != Unknown {
		t.Fatalf("stopped solve: got %v", st)
	}
}

func TestContextCancellation(t *testing.T) {
	// An already-cancelled context aborts before any search.
	s := New()
	pigeonhole(s, 10, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.SetContext(ctx)
	if st := s.Solve(); st != Unknown {
		t.Fatalf("cancelled solve: got %v, want UNKNOWN", st)
	}
	// Removing the context restores normal solving.
	s.SetContext(nil)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("solve after clearing context: got %v, want UNSAT", st)
	}
	// Cancellation mid-search is observed by the stopped() poll.
	s2 := New()
	pigeonhole(s2, 12, 11) // far beyond the deadline below
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	s2.SetContext(ctx2)
	start := time.Now()
	if st := s2.Solve(); st != Unknown {
		t.Fatalf("deadline solve: got %v, want UNKNOWN", st)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation honored only after %v", elapsed)
	}
}

// brute checks satisfiability of a CNF by enumeration.
func brute(numVars int, cnf [][]Lit) (bool, []bool) {
	assign := make([]bool, numVars)
	for m := 0; m < 1<<numVars; m++ {
		for i := 0; i < numVars; i++ {
			assign[i] = m>>i&1 == 1
		}
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				if assign[l.Var()] != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true, append([]bool(nil), assign...)
		}
	}
	return false, nil
}

func randomCNF(rng *rand.Rand, numVars, numClauses, maxLen int) [][]Lit {
	cnf := make([][]Lit, numClauses)
	for i := range cnf {
		n := 1 + rng.Intn(maxLen)
		cl := make([]Lit, n)
		for j := range cl {
			cl[j] = MkLit(rng.Intn(numVars), rng.Intn(2) == 1)
		}
		cnf[i] = cl
	}
	return cnf
}

// Property test: the solver agrees with brute force on random small CNFs,
// and its models really satisfy the formula.
func TestAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numVars := 3 + rng.Intn(8)
		cnf := randomCNF(rng, numVars, 2+rng.Intn(30), 4)
		s := New()
		for i := 0; i < numVars; i++ {
			s.NewVar()
		}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		st := s.Solve()
		want, _ := brute(numVars, cnf)
		if (st == Sat) != want {
			t.Logf("seed %d: solver %v, brute %v", seed, st, want)
			return false
		}
		if st == Sat {
			// Model must satisfy every clause.
			for _, cl := range cnf {
				ok := false
				for _, l := range cl {
					if s.ModelValue(l) {
						ok = true
						break
					}
				}
				if !ok {
					t.Logf("seed %d: model does not satisfy clause %v", seed, cl)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property test: assumptions behave like temporary unit clauses.
func TestAssumptionsAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numVars := 3 + rng.Intn(6)
		cnf := randomCNF(rng, numVars, 2+rng.Intn(20), 3)
		nAssump := 1 + rng.Intn(3)
		assumps := make([]Lit, nAssump)
		for i := range assumps {
			assumps[i] = MkLit(rng.Intn(numVars), rng.Intn(2) == 1)
		}
		s := New()
		for i := 0; i < numVars; i++ {
			s.NewVar()
		}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		st := s.Solve(assumps...)
		withUnits := append([][]Lit{}, cnf...)
		for _, a := range assumps {
			withUnits = append(withUnits, []Lit{a})
		}
		want, _ := brute(numVars, withUnits)
		if (st == Sat) != want {
			t.Logf("seed %d: solver %v brute %v assumps %v", seed, st, want, assumps)
			return false
		}
		// Incremental reuse must keep working.
		st2 := s.Solve()
		want2, _ := brute(numVars, cnf)
		return (st2 == Sat) == want2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Incremental use: grow the formula between solves.
func TestIncrementalGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := New()
	numVars := 8
	for i := 0; i < numVars; i++ {
		s.NewVar()
	}
	var cnf [][]Lit
	for step := 0; step < 40; step++ {
		cl := randomCNF(rng, numVars, 1, 3)[0]
		cnf = append(cnf, cl)
		s.AddClause(cl...)
		st := s.Solve()
		want, _ := brute(numVars, cnf)
		if (st == Sat) != want {
			t.Fatalf("step %d: solver %v brute %v", step, st, want)
		}
		if st == Unsat {
			break
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestXorChainForcesReduceDB(t *testing.T) {
	// A moderately hard random 3-SAT instance near threshold exercises
	// learning, restarts and DB reduction paths.
	rng := rand.New(rand.NewSource(5))
	s := New()
	n := 60
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	for c := 0; c < int(4.2*float64(n)); c++ {
		var cl [3]Lit
		for j := range cl {
			cl[j] = MkLit(rng.Intn(n), rng.Intn(2) == 1)
		}
		s.AddClause(cl[:]...)
	}
	st := s.Solve()
	if st == Unknown {
		t.Fatal("unbudgeted solve returned UNKNOWN")
	}
	if st == Sat {
		// spot check recorded stats
		if s.Stats().Decisions == 0 {
			t.Fatal("no decisions recorded")
		}
	}
}

func BenchmarkPigeonhole8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonhole(s, 8, 7)
		if s.Solve() != Unsat {
			b.Fatal("wrong result")
		}
	}
}

func BenchmarkRandom3SAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		s := New()
		n := 100
		for v := 0; v < n; v++ {
			s.NewVar()
		}
		for c := 0; c < 4*n; c++ {
			var cl [3]Lit
			for j := range cl {
				cl[j] = MkLit(rng.Intn(n), rng.Intn(2) == 1)
			}
			s.AddClause(cl[:]...)
		}
		s.Solve()
	}
}

func TestProgressCallback(t *testing.T) {
	s := New()
	pigeonhole(s, 8, 7)
	var snaps []Progress
	s.SetProgress(50, func(p Progress) { snaps = append(snaps, p) })
	if s.Solve() != Unsat {
		t.Fatal("PHP(8,7) should be UNSAT")
	}
	if len(snaps) == 0 {
		t.Fatalf("no progress callbacks fired over %d conflicts", s.Stats().Conflicts)
	}
	// Snapshots must be spaced by the interval and monotone.
	for i, p := range snaps {
		if p.Conflicts < 50*int64(i+1) {
			t.Fatalf("snapshot %d at %d conflicts, want >= %d", i, p.Conflicts, 50*(i+1))
		}
		if i > 0 && p.Conflicts <= snaps[i-1].Conflicts {
			t.Fatalf("snapshots not monotone: %d then %d", snaps[i-1].Conflicts, p.Conflicts)
		}
		if p.Vars != s.NumVars() {
			t.Fatalf("snapshot vars = %d, want %d", p.Vars, s.NumVars())
		}
	}
	// Disabling stops further callbacks.
	s.SetProgress(0, nil)
	if s.progressFn != nil {
		t.Fatal("SetProgress(0, nil) did not disable reporting")
	}
}

func TestStatsDeltasAndDeletion(t *testing.T) {
	// A large hard instance drives the learnt DB over the reduction
	// threshold so Deleted/Reductions become nonzero.
	rng := rand.New(rand.NewSource(7))
	s := New()
	n := 120
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	for c := 0; c < int(4.26*float64(n)); c++ {
		var cl [3]Lit
		for j := range cl {
			cl[j] = MkLit(rng.Intn(n), rng.Intn(2) == 1)
		}
		s.AddClause(cl[:]...)
	}
	s.SetBudget(80000)
	s.Solve()
	st := s.Stats()
	if st.Learnt == 0 || st.Propagations == 0 {
		t.Fatalf("expected learning and propagation work, got %+v", st)
	}
	if st.Reductions > 0 && st.Deleted == 0 {
		t.Fatalf("reduction passes ran but deleted nothing: %+v", st)
	}
	d := st.Sub(Stats{Conflicts: 1, Learnt: 1})
	if d.Conflicts != st.Conflicts-1 || d.Learnt != st.Learnt-1 || d.Deleted != st.Deleted {
		t.Fatalf("Sub delta wrong: %+v", d)
	}
}

// BenchmarkPigeonhole8Simp runs the same UNSAT instance through the
// SatELite-style simplifier first: the resolution-based eliminations
// shrink the formula before CDCL search, and the pair quantifies what
// preprocessing buys (or costs) on a search-bound instance.
func BenchmarkPigeonhole8Simp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonhole(s, 8, 7)
		if !s.Simplify(DefaultSimpOptions()) {
			continue // refuted during preprocessing: also a win
		}
		if s.Solve() != Unsat {
			b.Fatal("wrong result")
		}
	}
}
