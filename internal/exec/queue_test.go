package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueueRunsEverythingAccepted submits a burst and proves every
// accepted task runs exactly once.
func TestQueueRunsEverythingAccepted(t *testing.T) {
	q := NewQueue(4, 64, PoolMetrics{})
	var ran atomic.Int32
	accepted := 0
	for i := 0; i < 64; i++ {
		if err := q.Submit(func() { ran.Add(1) }); err == nil {
			accepted++
		}
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if int(ran.Load()) != accepted {
		t.Errorf("ran %d of %d accepted tasks", ran.Load(), accepted)
	}
}

// TestQueueSaturation fills the backlog behind a blocked worker and
// proves Submit fails fast with ErrSaturated instead of blocking.
func TestQueueSaturation(t *testing.T) {
	block := make(chan struct{})
	q := NewQueue(1, 2, PoolMetrics{})
	if err := q.Submit(func() { <-block }); err != nil {
		t.Fatal(err)
	}
	// The worker dequeues asynchronously; keep filling until the bounded
	// channel pushes back.
	saturated := false
	for i := 0; i < 10 && !saturated; i++ {
		err := q.Submit(func() { <-block })
		if errors.Is(err, ErrSaturated) {
			saturated = true
		} else if err != nil {
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if !saturated {
		t.Fatal("backlog never saturated")
	}
	if q.Backlog() == 0 {
		t.Error("saturated queue reports empty backlog")
	}
	close(block)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestQueueSubmitAfterDrain pins the draining contract: once Drain is
// called, Submit returns ErrDraining and the task never runs.
func TestQueueSubmitAfterDrain(t *testing.T) {
	q := NewQueue(1, 4, PoolMetrics{})
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !q.Draining() {
		t.Error("Draining() = false after Drain")
	}
	err := q.Submit(func() { t.Error("task ran after drain") })
	if !errors.Is(err, ErrDraining) {
		t.Errorf("Submit after drain = %v, want ErrDraining", err)
	}
	time.Sleep(20 * time.Millisecond) // would surface the stray execution
}

// TestQueueDrainDeadline proves Drain honors its context when a task
// never finishes, and that a later unbounded Drain still completes once
// the task does.
func TestQueueDrainDeadline(t *testing.T) {
	block := make(chan struct{})
	q := NewQueue(1, 1, PoolMetrics{})
	if err := q.Submit(func() { <-block }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with stuck task = %v, want deadline exceeded", err)
	}
	close(block)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestQueueConcurrentSubmitDrain races submitters against Drain under
// the race detector: every Submit must either be accepted (and run) or
// rejected, never lost, and nothing may panic on the closed channel.
func TestQueueConcurrentSubmitDrain(t *testing.T) {
	q := NewQueue(2, 8, PoolMetrics{})
	var ran, ok atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := q.Submit(func() { ran.Add(1) }); err == nil {
					ok.Add(1)
				}
			}
		}()
	}
	time.Sleep(time.Millisecond)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	// Accepted-but-not-yet-run tasks still run even though Drain was
	// called concurrently; give the invariant a moment to settle.
	deadline := time.Now().Add(2 * time.Second)
	for ran.Load() != ok.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ran.Load() != ok.Load() {
		t.Errorf("accepted %d tasks but ran %d", ok.Load(), ran.Load())
	}
}

// TestQueueNilTask pins the no-op contract for nil submissions.
func TestQueueNilTask(t *testing.T) {
	q := NewQueue(1, 1, PoolMetrics{})
	if err := q.Submit(nil); err != nil {
		t.Errorf("Submit(nil) = %v, want nil", err)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
