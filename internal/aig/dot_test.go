package aig

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDot(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	_ = g.AddInput("unused")
	x := g.Xor(g.And(a, b.Not()), c)
	m := g.Maj(a, b, x)
	g.AddOutput(m.Not(), "f")
	g.AddOutput(ConstTrue, "one")

	var buf bytes.Buffer
	if err := WriteDot(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph", "shape=box", "AND", "XOR", "MAJ",
		"style=dashed", "doublecircle", `label="0"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "unused") {
		t.Error("unused input should be omitted")
	}
	// Balanced braces / terminator.
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("missing closing brace")
	}
}

func TestEvalLits(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	ab := g.And(a, b)
	x := g.Xor(a, b)
	g.AddOutput(ab, "f")
	for m := 0; m < 4; m++ {
		pat := []bool{m&1 == 1, m>>1&1 == 1}
		vals := g.EvalLits(pat, ab, x.Not(), ConstTrue)
		if vals[0] != (pat[0] && pat[1]) {
			t.Fatalf("EvalLits AND wrong at %v", pat)
		}
		if vals[1] != !(pat[0] != pat[1]) {
			t.Fatalf("EvalLits complemented XOR wrong at %v", pat)
		}
		if !vals[2] {
			t.Fatal("EvalLits constant wrong")
		}
	}
}

func TestExtractBounded(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	ab := g.And(a, b)
	abc := g.Xor(ab, c)
	top := g.Maj(abc, a, c.Not())
	g.AddOutput(top, "f")

	// Cut at {ab, c}: the bounded cone computes maj(ab^c, a, !c) with
	// inputs {a (PI reached), ab (boundary), c (boundary)}.
	sub, leaves := g.ExtractBounded([]Lit{top}, []uint32{ab.Var(), c.Var()})
	if sub.NumInputs() != 3 || sub.NumOutputs() != 1 {
		t.Fatalf("bounded interface: %v (leaves %v)", sub.Stats(), leaves)
	}
	// Verify functionally: for all assignments to (a, ab, c).
	// Identify leaf order: leaves sorted ascending by source var.
	for m := 0; m < 8; m++ {
		vals := map[uint32]bool{}
		for i, lv := range leaves {
			vals[lv] = m>>uint(i)&1 == 1
		}
		pat := make([]bool, 3)
		for i, lv := range leaves {
			pat[i] = vals[lv]
		}
		got := sub.Eval(pat)[0]
		av, abv, cv := vals[a.Var()], vals[ab.Var()], vals[c.Var()]
		x := abv != cv
		want := (x && av) || (x && !cv) || (av && !cv)
		if got != want {
			t.Fatalf("bounded cone wrong at %v", vals)
		}
	}
}
