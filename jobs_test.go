package obfuslock

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// jobBench returns the .bench text of a small benchmark by index.
func jobBench(t *testing.T, i int) string {
	t.Helper()
	suite := SmallBenchmarks()
	var sb strings.Builder
	if err := WriteBench(&sb, suite[i%len(suite)].Build()); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestRunJobLockEverySchemeAttackRoundTrip drives the full job surface
// with the real runner: lock with every registered scheme (including the
// ObfusLock core construction), then recover each baseline's key with
// the SAT attack and verify it against the declared key length.
func TestRunJobLockEverySchemeAttackRoundTrip(t *testing.T) {
	bench := jobBench(t, 1)
	ctx := context.Background()
	for _, scheme := range JobSchemes() {
		t.Run(scheme, func(t *testing.T) {
			opt := &SchemeOptions{KeyBits: 8, ProtWidth: 6, HammingDistance: 1, Seed: 5}
			if scheme == "obfuslock" {
				opt = &SchemeOptions{SkewBits: 6, Seed: 5}
			}
			res, err := RunJob(ctx, JobSpec{
				Schema: JobSchemaVersion, Kind: "lock",
				Circuit: bench, Scheme: scheme, SchemeOptions: opt,
			}, JobRuntime{})
			if err != nil {
				t.Fatalf("lock: %v", err)
			}
			if res.Schema != JobResultSchema || res.Kind != "lock" || res.Scheme != scheme {
				t.Errorf("result header = %+v", res)
			}
			if res.Locked == "" || res.KeyBits == 0 || len(res.Key) != res.KeyBits {
				t.Fatalf("locked=%d bytes key=%q key_bits=%d", len(res.Locked), res.Key, res.KeyBits)
			}
			if scheme == "obfuslock" {
				return // attacking the core construction is the point of the paper, not of this test
			}
			att, err := RunJob(ctx, JobSpec{
				Schema: JobSchemaVersion, Kind: "attack",
				Circuit: res.Locked, Oracle: bench, Attack: "sat",
				AttackOptions: &JobAttackOptions{MaxIterations: 200, Seed: 5},
			}, JobRuntime{})
			if err != nil {
				t.Fatalf("attack: %v", err)
			}
			switch scheme {
			case "rll", "sfll-hd":
				// Low-resilience baselines fall within the cap.
				if !att.Exact {
					t.Fatalf("SAT attack did not terminate exactly on %s: %+v", scheme, att)
				}
			default:
				// The point-function schemes are built to exhaust the DIP
				// budget: either they fell anyway or they hit the cap.
				if !att.Exact && !att.TimedOut {
					t.Fatalf("attack on %s neither terminated nor hit its budget: %+v", scheme, att)
				}
			}
			if len(att.Key) != res.KeyBits {
				t.Errorf("recovered key %q has %d bits, want %d", att.Key, len(att.Key), res.KeyBits)
			}
		})
	}
}

// TestRunJobCECCountSample covers the analysis kinds end to end,
// including the tri-state fields: equivalent vs inequivalent pairs, a
// zero-model output, and a skewness estimate.
func TestRunJobCECCountSample(t *testing.T) {
	bench := jobBench(t, 2)
	ctx := context.Background()

	t.Run("cec_equivalent", func(t *testing.T) {
		res, err := RunJob(ctx, JobSpec{
			Schema: JobSchemaVersion, Kind: "cec",
			Circuit: bench, Oracle: bench, Seed: 3,
		}, JobRuntime{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Decided == nil || !*res.Decided || res.Equivalent == nil || !*res.Equivalent {
			t.Errorf("self-CEC = %+v, want decided equivalent", res)
		}
	})

	t.Run("cec_inequivalent", func(t *testing.T) {
		other := "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n"
		mine := "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n"
		res, err := RunJob(ctx, JobSpec{
			Schema: JobSchemaVersion, Kind: "cec",
			Circuit: mine, Oracle: other, Seed: 3,
		}, JobRuntime{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Decided == nil || !*res.Decided || res.Equivalent == nil || *res.Equivalent {
			t.Errorf("AND-vs-OR CEC = %+v, want decided inequivalent", res)
		}
	})

	t.Run("count_and_zero", func(t *testing.T) {
		res, err := RunJob(ctx, JobSpec{
			Schema: JobSchemaVersion, Kind: "count",
			Circuit: "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", Output: 0, Seed: 3,
		}, JobRuntime{})
		if err != nil {
			t.Fatal(err)
		}
		if res.CountZero || res.Log2Count == nil || *res.Log2Count != 0 {
			t.Errorf("AND count = %+v, want log2 = 0 (one model)", res)
		}
		zero := "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = AND(a, na)\n"
		res, err = RunJob(ctx, JobSpec{
			Schema: JobSchemaVersion, Kind: "count",
			Circuit: zero, Output: 0, Seed: 3,
		}, JobRuntime{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.CountZero || res.Log2Count != nil {
			t.Errorf("UNSAT count = %+v, want count_zero with no log2", res)
		}
	})

	t.Run("sample", func(t *testing.T) {
		res, err := RunJob(ctx, JobSpec{
			Schema: JobSchemaVersion, Kind: "sample",
			Circuit: bench, Output: 0, Seed: 3,
		}, JobRuntime{})
		if err != nil {
			t.Fatal(err)
		}
		if res.SkewBits == nil {
			t.Fatalf("sample returned no skewness: %+v", res)
		}
	})
}

// TestRunJobErrorPaths maps runner failures onto structured job errors:
// every error RunJob returns is a *JobError with a stable code.
func TestRunJobErrorPaths(t *testing.T) {
	bench := jobBench(t, 0)
	ctx := context.Background()
	cases := []struct {
		name string
		spec JobSpec
		code string
	}{
		{"bad_schema", JobSpec{Schema: "nope", Kind: "cec", Circuit: bench, Oracle: bench}, "bad_schema"},
		{"bad_bench_text", JobSpec{Schema: JobSchemaVersion, Kind: "cec", Circuit: "y = FROB(a)\n", Oracle: bench}, "bad_request"},
		{"unknown_scheme", JobSpec{Schema: JobSchemaVersion, Kind: "lock", Circuit: bench, Scheme: "rot13"}, "bad_request"},
		{"unknown_attack", JobSpec{Schema: JobSchemaVersion, Kind: "attack", Circuit: bench, Oracle: bench, Attack: "guess"}, "bad_request"},
		{"output_out_of_range", JobSpec{Schema: JobSchemaVersion, Kind: "count", Circuit: bench, Output: 9999}, "bad_request"},
		{"attack_io_mismatch", JobSpec{Schema: JobSchemaVersion, Kind: "attack", Circuit: bench, Oracle: "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", Attack: "sat"}, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunJob(ctx, tc.spec, JobRuntime{})
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			var jerr *JobError
			if !errors.As(err, &jerr) {
				t.Fatalf("error is %T, want *JobError: %v", err, err)
			}
			if jerr.Code != tc.code {
				t.Errorf("code = %s, want %s (message: %s)", jerr.Code, tc.code, jerr.Message)
			}
		})
	}
}

// TestRunJobCancellation proves context cancellation surfaces as a
// cancelled job error, both pre-cancelled and mid-attack.
func TestRunJobCancellation(t *testing.T) {
	bench := jobBench(t, 3)

	t.Run("pre_cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := RunJob(ctx, JobSpec{
			Schema: JobSchemaVersion, Kind: "sample", Circuit: bench, Output: 0,
		}, JobRuntime{})
		var jerr *JobError
		if !errors.As(err, &jerr) || jerr.Code != "cancelled" {
			t.Fatalf("pre-cancelled sample = %v, want cancelled", err)
		}
	})

	t.Run("mid_attack", func(t *testing.T) {
		// An Anti-SAT instance the iteration-capped attack cannot finish
		// quickly; cancel shortly after it starts.
		locked, err := RunJob(context.Background(), JobSpec{
			Schema: JobSchemaVersion, Kind: "lock", Circuit: bench,
			Scheme: "antisat", SchemeOptions: &SchemeOptions{ProtWidth: 10, Seed: 7},
		}, JobRuntime{})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		start := time.Now()
		res, err := RunJob(ctx, JobSpec{
			Schema: JobSchemaVersion, Kind: "attack",
			Circuit: locked.Locked, Oracle: bench, Attack: "sat",
			AttackOptions: &JobAttackOptions{Seed: 7},
		}, JobRuntime{})
		if took := time.Since(start); took > 5*time.Second {
			t.Errorf("cancellation took %v to propagate", took)
		}
		// The attack layer reports a budget-expired run as a timed-out
		// result rather than an error; either form is a prompt stop.
		if err == nil && !res.TimedOut {
			t.Errorf("cancelled attack returned a terminal result: %+v", res)
		}
	})
}

// TestRunJobConcurrentByteIdentity is the in-process soak: the same
// mixed specs run serially and then highly concurrently (sharing one
// cache, like daemon workers do), and every result must be
// byte-identical to its serial reference.
func TestRunJobConcurrentByteIdentity(t *testing.T) {
	ctx := context.Background()
	var specs []JobSpec
	for i := 0; i < 12; i++ {
		bench := jobBench(t, i)
		seed := DeriveSeed(42, i)
		switch i % 4 {
		case 0:
			schemes := Schemes()
			specs = append(specs, JobSpec{
				Schema: JobSchemaVersion, Kind: "lock", Circuit: bench,
				Scheme: schemes[i%len(schemes)],
				SchemeOptions: &SchemeOptions{
					KeyBits: 8, ProtWidth: 6, HammingDistance: 1, Seed: seed,
				},
			})
		case 1:
			specs = append(specs, JobSpec{
				Schema: JobSchemaVersion, Kind: "cec", Circuit: bench, Oracle: bench, Seed: seed,
			})
		case 2:
			specs = append(specs, JobSpec{
				Schema: JobSchemaVersion, Kind: "sample", Circuit: bench, Output: 0, Seed: seed,
			})
		default:
			locked, err := RunJob(ctx, JobSpec{
				Schema: JobSchemaVersion, Kind: "lock", Circuit: bench,
				Scheme: "rll", SchemeOptions: &SchemeOptions{KeyBits: 8, Seed: seed},
			}, JobRuntime{})
			if err != nil {
				t.Fatal(err)
			}
			specs = append(specs, JobSpec{
				Schema: JobSchemaVersion, Kind: "attack",
				Circuit: locked.Locked, Oracle: bench, Attack: "sat",
				AttackOptions: &JobAttackOptions{MaxIterations: 16, Seed: seed},
			})
		}
	}

	serial := make([][]byte, len(specs))
	for i, spec := range specs {
		res, err := RunJob(ctx, spec, JobRuntime{})
		if err != nil {
			t.Fatalf("serial job %d (%s): %v", i, spec.Kind, err)
		}
		enc, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = enc
	}

	cache, err := NewCache(CacheOptions{MaxBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	rt := JobRuntime{Cache: cache}
	var wg sync.WaitGroup
	errs := make(chan error, 3*len(specs))
	for round := 0; round < 3; round++ {
		for i, spec := range specs {
			wg.Add(1)
			go func(round, i int, spec JobSpec) {
				defer wg.Done()
				res, err := RunJob(ctx, spec, rt)
				if err != nil {
					errs <- fmt.Errorf("round %d job %d: %w", round, i, err)
					return
				}
				enc, err := json.Marshal(res)
				if err != nil {
					errs <- err
					return
				}
				if string(enc) != string(serial[i]) {
					errs <- fmt.Errorf("round %d job %d (%s) diverged:\n concurrent: %s\n serial:     %s",
						round, i, spec.Kind, enc, serial[i])
				}
			}(round, i, spec)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRunJobMatchesServiceRunner proves NewJobRunner and RunJob are the
// same execution path: the daemon-side runner with a nil tracer returns
// the exact bytes the facade call does.
func TestRunJobMatchesServiceRunner(t *testing.T) {
	bench := jobBench(t, 4)
	spec := JobSpec{
		Schema: JobSchemaVersion, Kind: "lock", Circuit: bench,
		Scheme: "sarlock", SchemeOptions: &SchemeOptions{ProtWidth: 8, Seed: 9},
	}
	direct, err := RunJob(context.Background(), spec, JobRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	viaRunner, jerr := NewJobRunner(JobRuntime{}).Run(context.Background(), spec, nil)
	if jerr != nil {
		t.Fatal(jerr)
	}
	a, _ := json.Marshal(direct)
	b, _ := json.Marshal(viaRunner)
	if string(a) != string(b) {
		t.Errorf("facade and service runner diverge:\n RunJob: %s\n Runner: %s", a, b)
	}
}
