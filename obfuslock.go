// Package obfuslock is a pure-Go implementation of ObfusLock (Li, Zhao,
// He, Zhou — DATE 2023), a logic-locking framework for circuit IP
// protection that simultaneously achieves locking security (exponential
// SAT-attack resistance), obfuscation safety (no surviving critical
// nodes), and locking efficiency (small keys, seconds of runtime, low PPA
// overhead).
//
// The package is a facade over the internal packages:
//
//   - circuits are And-Inverter Graphs (Circuit, ReadBench/WriteBench);
//   - Lock encrypts a circuit, returning the locked netlist, the secret
//     key and a construction report;
//   - the attack suite (SAT attack, AppSAT, sensitization, SPS, removal,
//     bypass, Valkyrie-style, SPI) evaluates locked designs;
//   - PPA estimates area/power/delay overhead on a NanGate-45nm-flavoured
//     cell library;
//   - Benchmarks reproduces the paper's evaluation circuits.
//
// A minimal round trip:
//
//	c := obfuslock.Benchmarks()[2].Build() // c6288 multiplier
//	res, err := obfuslock.Lock(c, obfuslock.DefaultOptions())
//	if err != nil { ... }
//	err = res.Locked.Verify(c) // correct key restores the circuit
package obfuslock

import (
	"context"
	"io"
	"time"

	"obfuslock/internal/aig"
	"obfuslock/internal/attacks"
	"obfuslock/internal/bench"
	"obfuslock/internal/cec"
	"obfuslock/internal/core"
	"obfuslock/internal/exec"
	"obfuslock/internal/locking"
	"obfuslock/internal/memo"
	"obfuslock/internal/netlistgen"
	"obfuslock/internal/obs"
	"obfuslock/internal/simp"
	"obfuslock/internal/skew"
	"obfuslock/internal/techmap"
)

// Circuit is an (extended) And-Inverter Graph: AND/XOR/MAJ nodes over
// primary inputs, with complemented edges.
type Circuit = aig.AIG

// Lit is a literal (edge) of a Circuit: a node with an optional inverter.
type Lit = aig.Lit

// NewCircuit returns an empty circuit.
func NewCircuit() *Circuit { return aig.New() }

// ReadBench parses an ISCAS .bench netlist.
func ReadBench(r io.Reader) (*Circuit, error) { return bench.Read(r) }

// WriteBench writes the circuit in .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return bench.Write(w, c) }

// Options configures Lock. See core.Options for field documentation.
type Options = core.Options

// DefaultOptions targets 20 bits of skewness with randomized obfuscation.
func DefaultOptions() Options { return core.DefaultOptions() }

// Locked is a key-protected circuit: the encrypted netlist, the key
// convention (original inputs first, key inputs last) and the secret key.
type Locked = locking.Locked

// Report summarizes a completed lock.
type Report = core.Report

// Result is a locked circuit plus its report.
type Result = core.Result

// Lock encrypts the circuit with ObfusLock.
func Lock(c *Circuit, opt Options) (*Result, error) {
	return core.Lock(context.Background(), c, opt)
}

// LockContext is Lock under a cancellation context: cancelling ctx aborts
// the construction (including its SAT solves) promptly.
func LockContext(ctx context.Context, c *Circuit, opt Options) (*Result, error) {
	return core.Lock(ctx, c, opt)
}

// Oracle is the attacker's working chip: query access to the original
// function.
type Oracle = locking.Oracle

// NewOracle wraps an original circuit as an oracle.
func NewOracle(c *Circuit) *Oracle { return locking.NewOracle(c) }

// Equivalent proves or refutes functional equivalence of two circuits.
func Equivalent(a, b *Circuit) (bool, error) {
	r, err := cec.Check(context.Background(), a, b, cec.DefaultOptions())
	if err != nil {
		return false, err
	}
	return r.Equivalent, nil
}

// CECOptions configures an equivalence check (simulation pre-filter, SAT
// budget, SAT sweeping, tracing). See internal/cec.Options.
type CECOptions = cec.Options

// CECResult reports an equivalence check.
type CECResult = cec.Result

// DefaultCECOptions returns the plain (monolithic-miter) configuration.
func DefaultCECOptions() CECOptions { return cec.DefaultOptions() }

// SweepCECOptions returns a configuration with SAT sweeping enabled: the
// combined graph is fraiged (internal/fraig) so the shared logic of the
// two sides collapses before the final, much smaller, miter solve.
func SweepCECOptions() CECOptions { return cec.SweepOptions() }

// CheckEquivalent proves or refutes functional equivalence under explicit
// options and a cancellation context.
func CheckEquivalent(ctx context.Context, a, b *Circuit, opt CECOptions) (CECResult, error) {
	return cec.Check(ctx, a, b, opt)
}

// AttackOptions bounds the oracle-guided attacks.
type AttackOptions = attacks.IOOptions

// DefaultAttackOptions returns an unbounded exact attack configuration.
func DefaultAttackOptions() AttackOptions { return attacks.DefaultIOOptions() }

// AttackResult reports an oracle-guided attack outcome.
type AttackResult = attacks.IOResult

// SimpOptions controls SatELite-style CNF preprocessing and inprocessing
// inside every SAT-backed step (lock construction, equivalence checking,
// attacks). The zero value enables it; see internal/simp for the knobs
// and DESIGN.md "CNF preprocessing & inprocessing" for the soundness
// rules. Options.Simp, CECOptions.Simp and AttackOptions.Simp all take
// one.
type SimpOptions = simp.Options

// DefaultSimp returns the enabled-by-default preprocessing configuration.
func DefaultSimp() SimpOptions { return simp.Default() }

// SimpOff disables CNF preprocessing entirely.
func SimpOff() SimpOptions { return simp.Off() }

// Budget bounds SAT effort: a wall-clock timeout plus a conflict cap
// (0 = unlimited). See internal/exec for the full semantics.
type Budget = exec.Budget

// WithConflicts returns a Budget capped at n solver conflicts.
func WithConflicts(n int64) Budget { return exec.WithConflicts(n) }

// DeriveSeed derives a statistically independent child seed from a master
// seed and an index (splitmix64); the experiment sweeps use it to give
// every cell its own stream regardless of worker count.
func DeriveSeed(master int64, index int) int64 { return exec.DeriveSeed(master, index) }

// Cache is a deterministic content-addressed result cache with
// singleflight deduplication. Every SAT-backed layer accepts one
// (Options.Cache, CECOptions.Cache, and the counting/skewness options);
// results are byte-identical with the cache on, off, cold or warm. See
// internal/memo and DESIGN.md "Memoization & canonical fingerprints".
type Cache = memo.Cache

// CacheOptions configures a Cache: in-memory byte budget, optional
// on-disk JSONL spill directory, optional tracer for hit/miss counters.
type CacheOptions = memo.Options

// NewCache opens a result cache. With CacheOptions.Dir set, an existing
// spill file is loaded (warm start) and new results are appended to it;
// an unwritable directory is an error. Close flushes the spill handle.
// A nil *Cache is valid everywhere and disables caching.
func NewCache(opt CacheOptions) (*Cache, error) { return memo.New(opt) }

// PortfolioVariant is one racer of a portfolio attack.
type PortfolioVariant = attacks.PortfolioVariant

// PortfolioResult reports a portfolio race.
type PortfolioResult = attacks.PortfolioResult

// RunPortfolio races several attack variants concurrently and cancels the
// losers once one recovers a verified-correct key.
func RunPortfolio(ctx context.Context, variants []PortfolioVariant) PortfolioResult {
	return attacks.Portfolio(ctx, variants, nil)
}

// PPAReport estimates area, power and delay of a mapped netlist.
type PPAReport = techmap.Report

// PPAOverhead is the locked-versus-original percentage overhead.
type PPAOverhead = techmap.Overhead

// AnalyzePPA maps the circuit onto the cell library and estimates PPA
// using words*64 random patterns for switching activity.
func AnalyzePPA(c *Circuit, words int, seed int64) PPAReport {
	return techmap.Analyze(c, words, seed)
}

// ComparePPA computes locked-vs-original overhead percentages.
func ComparePPA(orig, locked PPAReport) PPAOverhead { return techmap.Compare(orig, locked) }

// Benchmark is one evaluation circuit of the paper's Table I.
type Benchmark = netlistgen.Benchmark

// Benchmarks returns the ten Table I benchmark circuits.
func Benchmarks() []Benchmark { return netlistgen.Catalog() }

// SmallBenchmarks returns reduced-size counterparts used for quick runs.
func SmallBenchmarks() []Benchmark { return netlistgen.SmallSuite() }

// SkewnessBits estimates the skewness of an output literal in bits using
// Boolean multi-level splitting (accurate for exponentially rare events).
func SkewnessBits(c *Circuit, output int, seed int64) float64 {
	opt := skew.DefaultSplittingOptions()
	opt.Seed = seed
	return skew.SplittingBits(c, c.Output(output), opt)
}

// Baseline locking schemes for comparison (the trilemma corners) live in
// the scheme registry: Schemes() lists them, LockWith applies one by name
// with a SchemeOptions. ObfusLock itself is Lock/LockContext with its own
// Options; the job API (RunJob, kind "lock") routes to either by name.

// Observability. Options.Trace and AttackOptions.Trace accept a *Tracer;
// a nil tracer is fully disabled and costs nothing. See internal/obs and
// DESIGN.md "Observability" for the span taxonomy and JSONL schema.

// Tracer delivers hierarchical spans, events and metrics to a TraceSink.
type Tracer = obs.Tracer

// TraceSink receives the span/event/metric stream.
type TraceSink = obs.Sink

// NewTracer returns a tracer delivering to sink (nil sink: nil tracer).
func NewTracer(sink TraceSink) *Tracer { return obs.New(sink) }

// NewTracerWithRegistry returns a tracer delivering to sink whose metric
// namespace is reg — use it when a sink built before the tracer (such as
// NewSpanDurationsSink) must share the tracer's registry. A nil reg
// allocates a fresh one; a nil sink yields a nil tracer.
func NewTracerWithRegistry(sink TraceSink, reg *MetricRegistry) *Tracer {
	return obs.NewWithRegistry(sink, reg)
}

// NewJSONLSink returns a sink writing the stream as JSON Lines to w.
func NewJSONLSink(w io.Writer) TraceSink { return obs.NewJSONL(w) }

// ProgressSink paints a live one-line status; it implements TraceSink.
type ProgressSink = obs.Progress

// TraceCollector records the stream in memory; it implements TraceSink.
type TraceCollector = obs.Collector

// NewProgressSink returns a sink painting a live one-line status on w.
// Call Done on it after the tracer is finished to end the line.
func NewProgressSink(w io.Writer) *ProgressSink { return obs.NewProgress(w) }

// NewTraceCollector returns an in-memory sink for tests and inspection.
func NewTraceCollector() *TraceCollector { return obs.NewCollector() }

// MultiSink fans the stream out to several sinks (nils are skipped).
func MultiSink(sinks ...TraceSink) TraceSink { return obs.Multi(sinks...) }

// DiscardSink drops the stream; use it when only pprof labels are wanted.
var DiscardSink TraceSink = obs.Discard

// TraceField is a typed key/value attached to spans and events.
type TraceField = obs.Field

// TraceInt builds an integer trace field.
func TraceInt(key string, v int64) TraceField { return obs.Int(key, v) }

// TraceFloat builds a float trace field.
func TraceFloat(key string, v float64) TraceField { return obs.Float(key, v) }

// TraceStr builds a string trace field.
func TraceStr(key, v string) TraceField { return obs.Str(key, v) }

// TraceBool builds a boolean trace field.
func TraceBool(key string, v bool) TraceField { return obs.Bool(key, v) }

// TraceDur builds a duration trace field (serialized as microseconds).
func TraceDur(key string, d time.Duration) TraceField { return obs.Dur(key, d) }

// Deep telemetry. Beyond the span stream, a tracer owns a metric
// registry of counters, gauges and log-2 histograms (p50/p90/p99
// snapshots); a flight recorder keeps the most recent spans/events for
// post-mortems; a run ledger captures a whole invocation; and
// ListenDebug serves /metrics, /flight and net/http/pprof live. See
// DESIGN.md "Observability" for the full model.

// MetricRegistry names counters, gauges and histograms and takes
// deterministic (name-ordered) snapshots. Every enabled Tracer owns one,
// reachable via its Registry method; standalone registries work too.
type MetricRegistry = obs.Registry

// Metric is one entry of an ordered metric snapshot: a counter or gauge
// value, or a histogram's count/sum/min/max plus p50/p90/p99 estimates.
type Metric = obs.MetricSnapshot

// NewMetricRegistry returns an empty standalone metric registry.
func NewMetricRegistry() *MetricRegistry { return obs.NewRegistry() }

// FlightRecorder is a bounded ring buffer over the most recent spans and
// events; it implements TraceSink. Dump it with WriteTo after a panic,
// on SIGQUIT, or when an attack exhausts its budget, to see what the run
// was doing at the end. A nil *FlightRecorder is valid and inert.
type FlightRecorder = obs.Flight

// DefaultFlightDepth is the flight-recorder ring depth used by the CLIs.
const DefaultFlightDepth = obs.DefaultFlightDepth

// NewFlightRecorder returns a flight recorder keeping the last depth
// records (depth <= 0 selects DefaultFlightDepth).
func NewFlightRecorder(depth int) *FlightRecorder { return obs.NewFlight(depth) }

// RunLedger accumulates one CLI invocation's provenance — args, go
// version, build revision, wall time, peak RSS and the final metric
// snapshot — and serializes it as ledger.json.
type RunLedger = obs.Ledger

// LedgerSchema identifies the ledger.json layout.
const LedgerSchema = obs.LedgerSchema

// NewRunLedger starts a ledger for the named tool, stamping the start
// time, command-line arguments and build info.
func NewRunLedger(tool string) *RunLedger { return obs.NewLedger(tool) }

// ListenDebug serves the live introspection endpoint on addr: /metrics
// (ordered text, ?format=json), /flight (recorder dump as JSONL) and the
// standard /debug/pprof mux. It returns the bound address (useful with
// ":0") and never blocks; the listener lives until process exit.
func ListenDebug(addr string, tr *Tracer, fl *FlightRecorder) (string, error) {
	return obs.ListenDebug(addr, tr, fl)
}

// StartProfiles begins a CPU profile at <prefix>.cpu.pprof; the returned
// stop function finishes it and writes <prefix>.heap.pprof and
// <prefix>.allocs.pprof snapshots taken after a final GC.
func StartProfiles(prefix string) (func() error, error) { return obs.StartProfiles(prefix) }

// NewSpanDurationsSink bridges the span stream into reg: every completed
// span records its latency into the histogram "span.<name>_us", giving
// per-phase latency distributions with no extra instrumentation. Attach
// it alongside a primary sink via MultiSink. A nil registry yields a nil
// sink.
func NewSpanDurationsSink(reg *MetricRegistry) TraceSink {
	if sd := obs.NewSpanDurations(reg); sd != nil {
		return sd
	}
	return nil
}

// CacheStats is a point-in-time snapshot of a Cache's effectiveness,
// available from Cache.Stats even when no tracer is attached.
type CacheStats = memo.Stats
