package sample

import (
	"math"
	"testing"

	"obfuslock/internal/aig"
)

// skewCircuit: cond = AND of first k inputs (witness set = 2^(n-k)).
func skewCircuit(n, k int) (*aig.AIG, aig.Lit) {
	g := aig.New()
	in := g.AddInputs(n)
	cond := g.AndN(in[:k]...)
	g.AddOutput(cond, "cond")
	return g, cond
}

func validateWitnesses(t *testing.T, g *aig.AIG, cond aig.Lit, wit [][]bool) {
	t.Helper()
	probe := g.Copy()
	probe.AddOutput(cond, "probe")
	idx := probe.NumOutputs() - 1
	for _, w := range wit {
		if !probe.Eval(w)[idx] {
			t.Fatalf("non-witness sampled: %v", w)
		}
	}
}

func TestCubeSamplerValidity(t *testing.T) {
	g, cond := skewCircuit(12, 5)
	s := NewCubeSampler(g, cond, 3)
	wit := s.Sample(40)
	if len(wit) < 30 {
		t.Fatalf("only %d witnesses", len(wit))
	}
	validateWitnesses(t, g, cond, wit)
	// All witnesses must set the first 5 inputs.
	for _, w := range wit {
		for i := 0; i < 5; i++ {
			if !w[i] {
				t.Fatal("witness violates the AND condition")
			}
		}
	}
}

func TestCubeSamplerSpread(t *testing.T) {
	// Free inputs should not be constant across witnesses.
	g, cond := skewCircuit(12, 4)
	s := NewCubeSampler(g, cond, 11)
	wit := s.Sample(60)
	if len(wit) < 30 {
		t.Fatalf("only %d witnesses", len(wit))
	}
	for i := 4; i < 12; i++ {
		ones := 0
		for _, w := range wit {
			if w[i] {
				ones++
			}
		}
		frac := float64(ones) / float64(len(wit))
		if frac < 0.1 || frac > 0.9 {
			t.Errorf("input %d heavily biased: %.2f", i, frac)
		}
	}
}

func TestCubeSamplerUnsatCond(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	cond := g.And(a, a.Not()) // constant false
	g.AddOutput(cond, "c")
	s := NewCubeSampler(g, cond, 1)
	if wit := s.Sample(5); len(wit) != 0 {
		t.Fatalf("sampled %d witnesses of an unsatisfiable condition", len(wit))
	}
}

func TestXorSamplerValidityAndUniformity(t *testing.T) {
	// Witness set: 2^6 = 64 patterns out of 2^10.
	g, cond := skewCircuit(10, 4)
	s := NewXorSampler(g, cond, 5)
	wit := s.Sample(80)
	if len(wit) < 40 {
		t.Fatalf("only %d witnesses", len(wit))
	}
	validateWitnesses(t, g, cond, wit)
	// Distinct coverage: with near-uniform sampling of 64 witnesses we
	// expect many distinct values among 80 draws.
	seen := map[string]bool{}
	for _, w := range wit {
		key := ""
		for _, b := range w {
			if b {
				key += "1"
			} else {
				key += "0"
			}
		}
		seen[key] = true
	}
	if len(seen) < 20 {
		t.Fatalf("poor witness diversity: %d distinct of %d draws", len(seen), len(wit))
	}
}

func TestXorSamplerUnsat(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	cond := g.And(g.And(a, b), g.Xor(a, b)) // unsatisfiable
	g.AddOutput(cond, "c")
	s := NewXorSampler(g, cond, 2)
	if wit := s.Sample(4); len(wit) != 0 {
		t.Fatal("sampled witnesses of an unsatisfiable condition")
	}
}

func TestConditionalProbability(t *testing.T) {
	// cond = x0&x1, target = x0&x1&x2: P(target|cond) = 1/2.
	g := aig.New()
	in := g.AddInputs(8)
	cond := g.And(in[0], in[1])
	target := g.And(cond, in[2])
	g.AddOutput(target, "t")
	cs := NewCubeSampler(g, cond, 17)
	p, n := ConditionalProbability(g, target, cond, cs, 200)
	if n < 100 {
		t.Fatalf("too few witnesses: %d", n)
	}
	if math.Abs(p-0.5) > 0.15 {
		t.Fatalf("P(target|cond) = %.3f, want ~0.5", p)
	}
	// P(cond|cond) must be exactly 1.
	p1, _ := ConditionalProbability(g, cond, cond, cs, 50)
	if p1 != 1 {
		t.Fatalf("P(cond|cond) = %v", p1)
	}
}
