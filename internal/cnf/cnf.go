// Package cnf encodes AIGs into CNF via the Tseitin transformation and
// provides the miter constructions used by equivalence checking and the
// oracle-guided attacks.
package cnf

import (
	"obfuslock/internal/aig"
	"obfuslock/internal/sat"
)

// Encoder maps the nodes of one AIG instance into solver variables.
// Several encoders may share one solver (e.g. two copies of a locked
// circuit inside a SAT-attack miter): inputs can be tied to existing
// solver literals before Encode is called. The graph may keep growing
// after the encoder is created — the SAT-sweeping engine interleaves node
// construction with incremental cone encoding — and Encode only ever adds
// clauses for cones not yet encoded.
//
// The encoder marks the interface of every encoded cone as frozen for
// the solver's simplifier: primary inputs (fresh or tied) and the root
// literals returned by Encode. Callers that read or constrain other
// internal literals after a Simplify call must freeze those themselves
// (or restrict simplification to equivalence-preserving techniques).
type Encoder struct {
	G      *aig.AIG
	S      *sat.Solver
	varOf  []sat.Lit // per AIG variable: solver literal of positive phase
	mapped []bool
	stack  []uint32 // Encode DFS scratch
}

// NewEncoder prepares an encoder of g into s. No clauses are added yet.
func NewEncoder(g *aig.AIG, s *sat.Solver) *Encoder {
	e := &Encoder{
		G:      g,
		S:      s,
		varOf:  make([]sat.Lit, g.MaxVar()+1),
		mapped: make([]bool, g.MaxVar()+1),
	}
	return e
}

// Reset rebinds the encoder to a graph and solver, reusing its internal
// tables (the SAT-attack inner loop pools encoders to keep per-DIP
// allocations flat). All input ties and encoded cones are forgotten.
func (e *Encoder) Reset(g *aig.AIG, s *sat.Solver) {
	e.G, e.S = g, s
	n := int(g.MaxVar()) + 1
	if cap(e.varOf) < n {
		e.varOf = make([]sat.Lit, n)
		e.mapped = make([]bool, n)
		return
	}
	e.varOf = e.varOf[:n]
	e.mapped = e.mapped[:n]
	for i := range e.mapped {
		e.mapped[i] = false
	}
}

// grow extends the per-variable tables to cover nodes added to the graph
// after the encoder was created.
func (e *Encoder) grow() {
	if n := int(e.G.MaxVar()) + 1; n > len(e.varOf) {
		varOf := make([]sat.Lit, n)
		copy(varOf, e.varOf)
		e.varOf = varOf
		mapped := make([]bool, n)
		copy(mapped, e.mapped)
		e.mapped = mapped
	}
}

// constVar lazily creates a solver variable pinned to false to stand for
// the AIG constant node.
func (e *Encoder) constLit() sat.Lit {
	if !e.mapped[0] {
		v := e.S.NewVar()
		l := sat.MkLit(v, false)
		e.S.AddClause(l.Not()) // pin to false
		e.varOf[0] = l
		e.mapped[0] = true
	}
	return e.varOf[0]
}

// TieInput binds the i-th primary input of the AIG to an existing solver
// literal. Must be called before Encode. The literal's variable becomes
// part of the encoding interface and is frozen against elimination.
func (e *Encoder) TieInput(i int, l sat.Lit) {
	e.grow()
	v := e.G.InputVar(i)
	e.varOf[v] = l
	e.mapped[v] = true
	e.S.FreezeLit(l)
}

// InputLit returns the solver literal of the i-th primary input, creating a
// fresh (frozen) variable if the input was not tied.
func (e *Encoder) InputLit(i int) sat.Lit {
	e.grow()
	v := e.G.InputVar(i)
	if !e.mapped[v] {
		e.varOf[v] = sat.MkLit(e.S.NewVar(), false)
		e.mapped[v] = true
		e.S.FreezeLit(e.varOf[v])
	}
	return e.varOf[v]
}

// Lit returns the solver literal for an AIG literal. The cone feeding it
// must already have been encoded.
func (e *Encoder) Lit(l aig.Lit) sat.Lit {
	if l.IsConst() {
		c := e.constLit()
		if l == aig.ConstTrue {
			return c.Not()
		}
		return c
	}
	if !e.mapped[l.Var()] {
		panic("cnf: literal not yet encoded")
	}
	sl := e.varOf[l.Var()]
	if l.IsCompl() {
		return sl.Not()
	}
	return sl
}

// Encode adds Tseitin clauses for the cones of the given roots (or the
// whole graph when roots is empty). Untied inputs get fresh variables.
// Returns the solver literals of the roots; root and input variables
// are frozen against simplifier elimination (they are the interface the
// caller reads and constrains).
//
// The traversal is an iterative post-order DFS from the roots, so the
// cost is proportional to the unencoded cone, not to the whole graph —
// the SAT-attack inner loop encodes two small key-binding cones per DIP
// against circuits three orders of magnitude larger.
func (e *Encoder) Encode(roots ...aig.Lit) []sat.Lit {
	g := e.G
	e.grow()
	if len(roots) == 0 {
		roots = g.Outputs()
	}
	stack := e.stack[:0]
	for _, r := range roots {
		if !r.IsConst() && !e.mapped[r.Var()] {
			stack = append(stack, r.Var())
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		if e.mapped[v] {
			stack = stack[:len(stack)-1]
			continue
		}
		if g.Op(v) == aig.OpInput {
			l := sat.MkLit(e.S.NewVar(), false)
			e.varOf[v] = l
			e.mapped[v] = true
			e.S.FreezeLit(l)
			stack = stack[:len(stack)-1]
			continue
		}
		fan := g.Fanins(v)
		ready := true
		// Push in reverse so fan[0]'s cone encodes first (keeps the
		// variable order aligned with fanin order for determinism).
		for i := len(fan) - 1; i >= 0; i-- {
			if f := fan[i]; !f.IsConst() && !e.mapped[f.Var()] {
				stack = append(stack, f.Var())
				ready = false
			}
		}
		if !ready {
			continue
		}
		out := sat.MkLit(e.S.NewVar(), false)
		a := e.Lit(fan[0])
		b := e.Lit(fan[1])
		switch g.Op(v) {
		case aig.OpAnd:
			// out <-> a & b
			e.S.AddClause(out.Not(), a)
			e.S.AddClause(out.Not(), b)
			e.S.AddClause(out, a.Not(), b.Not())
		case aig.OpXor:
			// out <-> a ^ b
			e.S.AddClause(out.Not(), a, b)
			e.S.AddClause(out.Not(), a.Not(), b.Not())
			e.S.AddClause(out, a.Not(), b)
			e.S.AddClause(out, a, b.Not())
		case aig.OpMaj:
			c := e.Lit(fan[2])
			// out <-> maj(a,b,c): clauses from the two-level forms.
			e.S.AddClause(out.Not(), a, b)
			e.S.AddClause(out.Not(), a, c)
			e.S.AddClause(out.Not(), b, c)
			e.S.AddClause(out, a.Not(), b.Not())
			e.S.AddClause(out, a.Not(), c.Not())
			e.S.AddClause(out, b.Not(), c.Not())
		}
		e.varOf[v] = out
		e.mapped[v] = true
		stack = stack[:len(stack)-1]
	}
	e.stack = stack[:0]
	lits := make([]sat.Lit, len(roots))
	for i, r := range roots {
		lits[i] = e.Lit(r)
		e.S.FreezeLit(lits[i])
	}
	return lits
}

// XorLit adds clauses defining a fresh literal out <-> a ^ b and returns it.
func XorLit(s *sat.Solver, a, b sat.Lit) sat.Lit {
	out := sat.MkLit(s.NewVar(), false)
	s.AddClause(out.Not(), a, b)
	s.AddClause(out.Not(), a.Not(), b.Not())
	s.AddClause(out, a.Not(), b)
	s.AddClause(out, a, b.Not())
	return out
}

// OrLit adds clauses defining a fresh literal out <-> (l1 | l2 | ...).
func OrLit(s *sat.Solver, lits ...sat.Lit) sat.Lit {
	out := sat.MkLit(s.NewVar(), false)
	big := make([]sat.Lit, 0, len(lits)+1)
	big = append(big, out.Not())
	for _, l := range lits {
		s.AddClause(out, l.Not())
		big = append(big, l)
	}
	s.AddClause(big...)
	return out
}

// AndLit adds clauses defining a fresh literal out <-> (l1 & l2 & ...).
func AndLit(s *sat.Solver, lits ...sat.Lit) sat.Lit {
	out := sat.MkLit(s.NewVar(), false)
	big := make([]sat.Lit, 0, len(lits)+1)
	big = append(big, out)
	for _, l := range lits {
		s.AddClause(out.Not(), l)
		big = append(big, l.Not())
	}
	s.AddClause(big...)
	return out
}

// EqualLit adds clauses defining out <-> (a == b).
func EqualLit(s *sat.Solver, a, b sat.Lit) sat.Lit {
	return XorLit(s, a, b).Not()
}

// AddXorConstraint adds the parity constraint lits[0] ^ ... ^ lits[n-1] = rhs
// by chaining fresh variables (3-literal XOR steps). Used by the XOR-hashing
// model counter and sampler.
func AddXorConstraint(s *sat.Solver, lits []sat.Lit, rhs bool) {
	if len(lits) == 0 {
		if rhs {
			// 0 = 1: unsatisfiable.
			v := s.NewVar()
			s.AddClause(sat.MkLit(v, false))
			s.AddClause(sat.MkLit(v, true))
		}
		return
	}
	acc := lits[0]
	for _, l := range lits[1:] {
		acc = XorLit(s, acc, l)
	}
	if rhs {
		s.AddClause(acc)
	} else {
		s.AddClause(acc.Not())
	}
}

// Miter encodes "outputs of ga differ from outputs of gb" over shared
// inputs into s. Both graphs must have identical PI/PO counts. It returns
// the shared input literals and the literal asserting inequality (already
// constrained true is NOT done; caller decides).
func Miter(s *sat.Solver, ga, gb *aig.AIG) (inputs []sat.Lit, diff sat.Lit) {
	if ga.NumInputs() != gb.NumInputs() || ga.NumOutputs() != gb.NumOutputs() {
		panic("cnf: miter interface mismatch")
	}
	ea := NewEncoder(ga, s)
	eb := NewEncoder(gb, s)
	inputs = make([]sat.Lit, ga.NumInputs())
	for i := range inputs {
		inputs[i] = ea.InputLit(i)
		eb.TieInput(i, inputs[i])
	}
	oa := ea.Encode()
	ob := eb.Encode()
	diffs := make([]sat.Lit, len(oa))
	for i := range oa {
		diffs[i] = XorLit(s, oa[i], ob[i])
	}
	diff = OrLit(s, diffs...)
	return inputs, diff
}
