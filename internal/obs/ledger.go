package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
)

// LedgerSchema identifies the ledger.json layout; bump on breaking
// changes so cross-run trajectory tooling can detect stale files.
const LedgerSchema = "obfuslock-ledger/v1"

// Ledger is the run ledger: one JSON document per CLI invocation
// recording what ran (tool, args, build), on what (go version,
// GOOS/GOARCH), for how long, at what peak memory, and the final metric
// snapshot. Accumulated across runs, ledgers give the perf trajectory
// of the project — the cross-run counterpart to a single run's
// metrics.json.
type Ledger struct {
	Schema    string   `json:"schema"`
	Tool      string   `json:"tool"`
	Args      []string `json:"args"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	// BuildRevision is the VCS revision baked into the binary
	// (git-describe style: short hash, "+dirty" when the tree was
	// modified, or "devel" when no VCS stamp is present).
	BuildRevision string    `json:"build_revision"`
	Start         time.Time `json:"start"`
	End           time.Time `json:"end"`
	WallSeconds   float64   `json:"wall_seconds"`
	// PeakRSSBytes is the process's high-water resident set size (VmHWM
	// on Linux; 0 where the platform offers no cheap source).
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
	// Extra holds tool-specific scalars (cache hit ratio, key bits
	// recovered, ...) keyed by name.
	Extra map[string]float64 `json:"extra,omitempty"`
	// Metrics is the final registry snapshot, sorted by name.
	Metrics []LedgerMetric `json:"metrics,omitempty"`
}

// LedgerMetric mirrors one MetricSnapshot in ledger JSON form.
type LedgerMetric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value,omitempty"`
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// NewLedger opens a ledger for the named tool, stamping the start time,
// command-line args, and build identity.
func NewLedger(tool string) *Ledger {
	return &Ledger{
		Schema:        LedgerSchema,
		Tool:          tool,
		Args:          append([]string(nil), os.Args[1:]...),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		BuildRevision: buildRevision(),
		Start:         time.Now(),
	}
}

// AddExtra records one tool-specific scalar.
func (l *Ledger) AddExtra(name string, v float64) {
	if l.Extra == nil {
		l.Extra = make(map[string]float64)
	}
	l.Extra[name] = v
}

// Finish stamps the end time, wall duration, peak RSS, and the final
// metric snapshot from tr (which may be nil).
func (l *Ledger) Finish(tr *Tracer) {
	l.End = time.Now()
	l.WallSeconds = l.End.Sub(l.Start).Seconds()
	l.PeakRSSBytes = peakRSSBytes()
	l.Metrics = l.Metrics[:0]
	for _, m := range tr.Metrics() {
		l.Metrics = append(l.Metrics, LedgerMetric{
			Name: m.Name, Kind: m.Kind, Value: m.Value,
			Count: m.Count, Sum: m.Sum, Min: m.Min, Max: m.Max,
			P50: m.P50, P90: m.P90, P99: m.P99,
		})
	}
}

// WriteFile writes the ledger as indented JSON to path.
func (l *Ledger) WriteFile(path string) error {
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// buildRevision extracts a git-describe-style revision from the
// binary's embedded build info.
func buildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// peakRSSBytes returns the process's peak resident set size, or 0 when
// the platform offers no cheap source. On Linux it parses VmHWM from
// /proc/self/status.
func peakRSSBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
