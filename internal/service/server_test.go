package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"obfuslock/internal/obs"
)

// stubRunner is a controllable Runner: it records every spec it sees,
// optionally blocks until released or cancelled, and returns a canned
// result echoing the job kind.
type stubRunner struct {
	mu      sync.Mutex
	specs   []JobSpec
	block   chan struct{} // when non-nil, Run waits for close or ctx
	fail    *Error
	onTrace string // span name emitted through the per-job tracer
}

func (r *stubRunner) Run(ctx context.Context, spec JobSpec, tr *obs.Tracer) (JobResult, *Error) {
	r.mu.Lock()
	r.specs = append(r.specs, spec)
	block := r.block
	r.mu.Unlock()
	if r.onTrace != "" {
		sp := tr.Span(r.onTrace)
		sp.End()
	}
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return JobResult{}, Errorf(CodeCancelled, "runner: %v", ctx.Err())
		}
	}
	if r.fail != nil {
		return JobResult{}, r.fail
	}
	return JobResult{Schema: ResultSchema, Kind: spec.Kind, Key: "101", KeyBits: 3}, nil
}

func (r *stubRunner) seen() []JobSpec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]JobSpec(nil), r.specs...)
}

const testBench = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"

func validSpec(kind string) JobSpec {
	spec := JobSpec{Schema: SchemaVersion, Kind: kind, Circuit: testBench}
	switch kind {
	case KindLock:
		spec.Scheme = "rll"
	case KindAttack:
		spec.Oracle = testBench
		spec.Attack = "sat"
	case KindCEC:
		spec.Oracle = testBench
	}
	return spec
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec, query string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func decodeError(t *testing.T, data []byte) *Error {
	t.Helper()
	var body struct {
		Error *Error `json:"error"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("response is not a structured error: %v (%s)", err, data)
	}
	if body.Error == nil {
		t.Fatalf("response has no error object: %s", data)
	}
	return body.Error
}

// TestSubmitPollLifecycle covers the async happy path: 202 with a
// Location header, queued/running visible while polling, and a terminal
// envelope whose result echoes the runner's.
func TestSubmitPollLifecycle(t *testing.T) {
	runner := &stubRunner{}
	srv := New(Config{Runner: runner, Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postJob(t, ts, validSpec(KindCEC), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202: %s", resp.StatusCode, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || resp.Header.Get("Location") != "/v1/jobs/"+st.ID {
		t.Errorf("Location = %q, id = %q", resp.Header.Get("Location"), st.ID)
	}
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (error %v), want done", fin.State, fin.Error)
	}
	if fin.Result == nil || fin.Result.Kind != KindCEC || fin.Result.Schema != ResultSchema {
		t.Errorf("result = %+v", fin.Result)
	}
	if fin.CreatedAt == "" || fin.StartedAt == "" || fin.FinishedAt == "" {
		t.Errorf("missing lifecycle timestamps: %+v", fin)
	}
	if got := runner.seen(); len(got) != 1 || got[0].Kind != KindCEC {
		t.Errorf("runner saw %+v", got)
	}
}

// TestSubmitWaitMode covers ?wait=1: one round trip, 200, terminal
// envelope in the body.
func TestSubmitWaitMode(t *testing.T) {
	srv := New(Config{Runner: &stubRunner{}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postJob(t, ts, validSpec(KindCount), "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait submit = %d: %s", resp.StatusCode, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result == nil {
		t.Errorf("wait-mode envelope = %+v", st)
	}
}

// TestSubmitValidation maps the admission failures onto their structured
// errors and HTTP statuses, including registry-backed scheme/attack
// checks.
func TestSubmitValidation(t *testing.T) {
	srv := New(Config{
		Runner:  &stubRunner{},
		Schemes: []string{"rll", "obfuslock"},
		Attacks: []string{"sat"},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	unknownScheme := validSpec(KindLock)
	unknownScheme.Scheme = "xor-extra"
	unknownAttack := validSpec(KindAttack)
	unknownAttack.Attack = "quantum"
	badSchema := validSpec(KindCEC)
	badSchema.Schema = "obfuslock-job/v9"

	cases := []struct {
		name   string
		spec   JobSpec
		status int
		code   string
	}{
		{"unknown_scheme", unknownScheme, 400, CodeBadRequest},
		{"unknown_attack", unknownAttack, 400, CodeBadRequest},
		{"bad_schema", badSchema, 400, CodeBadSchema},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJob(t, ts, tc.spec, "")
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			if jerr := decodeError(t, data); jerr.Code != tc.code {
				t.Errorf("code = %s, want %s", jerr.Code, tc.code)
			}
		})
	}

	// Raw malformed bodies never reach the runner either.
	for _, body := range []string{"", "{", `{"schema":"obfuslock-job/v1","kind":"cec","circuit":"x","oracle":"y","extra":1}`} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("body %q: status %d, want 400: %s", body, resp.StatusCode, data)
		}
	}
}

// TestQuotaBackpressure fills a tenant's MaxActive quota with blocked
// jobs and proves the next submission is a 429/quota_exhausted with
// Retry-After, while another tenant still gets in.
func TestQuotaBackpressure(t *testing.T) {
	block := make(chan struct{})
	runner := &stubRunner{block: block}
	srv := New(Config{
		Runner:        runner,
		Workers:       4,
		DefaultLimits: TenantLimits{MaxActive: 2},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := validSpec(KindCEC)
	spec.Tenant = "quota"
	var ids []string
	for i := 0; i < 2; i++ {
		resp, data := postJob(t, ts, spec, "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill %d = %d: %s", i, resp.StatusCode, data)
		}
		var st Status
		json.Unmarshal(data, &st)
		ids = append(ids, st.ID)
	}
	resp, data := postJob(t, ts, spec, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota = %d, want 429: %s", resp.StatusCode, data)
	}
	if jerr := decodeError(t, data); jerr.Code != CodeQuotaExhausted {
		t.Errorf("code = %s, want %s", jerr.Code, CodeQuotaExhausted)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	other := validSpec(KindCEC)
	other.Tenant = "neighbor"
	if resp, data := postJob(t, ts, other, ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant blocked by neighbor's quota: %d %s", resp.StatusCode, data)
	}

	close(block)
	for _, id := range ids {
		waitTerminal(t, ts, id)
	}
	// Slots free after completion: the tenant can submit again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := postJob(t, ts, spec, "")
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("quota slot never released after completion")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueueFullBackpressure saturates the bounded backlog behind one
// busy worker and proves the overflow submission is 429/queue_full.
func TestQueueFullBackpressure(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv := New(Config{Runner: &stubRunner{block: block}, Workers: 1, QueueDepth: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// First job occupies the worker; the backlog (depth 1) then fills.
	// The worker dequeues asynchronously, so saturation may take an extra
	// submission or two — keep going until the queue pushes back.
	saw429 := false
	for i := 0; i < 10 && !saw429; i++ {
		resp, data := postJob(t, ts, validSpec(KindCEC), "")
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			saw429 = true
			if jerr := decodeError(t, data); jerr.Code != CodeQueueFull {
				t.Errorf("code = %s, want %s", jerr.Code, CodeQueueFull)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d: %s", resp.StatusCode, data)
		}
	}
	if !saw429 {
		t.Fatal("backlog never saturated")
	}
}

// TestCancelRunningJob proves DELETE propagates to the runner's context
// and the job lands in cancelled, not done.
func TestCancelRunningJob(t *testing.T) {
	runner := &stubRunner{block: make(chan struct{})} // only ctx releases it
	srv := New(Config{Runner: runner})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, data := postJob(t, ts, validSpec(KindSample), "")
	var st Status
	json.Unmarshal(data, &st)

	// Wait until the runner actually has the job.
	deadline := time.Now().Add(5 * time.Second)
	for len(runner.seen()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", fin.State)
	}
	if fin.Error == nil || fin.Error.Code != CodeCancelled {
		t.Errorf("error = %+v, want code %s", fin.Error, CodeCancelled)
	}
	if fin.Result != nil {
		t.Errorf("cancelled job carries a result: %+v", fin.Result)
	}
}

// TestUnknownJobRoutes pins the 404 surface.
func TestUnknownJobRoutes(t *testing.T) {
	srv := New(Config{Runner: &stubRunner{}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/v1/jobs/j-999999", "/v1/jobs/j-999999/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s = %d, want 404", path, resp.StatusCode)
		}
		if jerr := decodeError(t, data); jerr.Code != CodeUnknownJob {
			t.Errorf("%s code = %s, want %s", path, jerr.Code, CodeUnknownJob)
		}
	}
}

// TestEventStream proves the per-job tracer lands in /events as JSONL,
// and that ?follow=1 tails until the job completes.
func TestEventStream(t *testing.T) {
	block := make(chan struct{})
	runner := &stubRunner{block: block, onTrace: "stub_phase"}
	srv := New(Config{Runner: runner})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, data := postJob(t, ts, validSpec(KindCount), "")
	var st Status
	json.Unmarshal(data, &st)

	// Follow the stream while the job is still running; the reader must
	// see the span record and then get EOF when the job finishes.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	time.AfterFunc(50*time.Millisecond, func() { close(block) })
	sawSpan := false
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(scanner.Bytes(), &rec); err != nil {
			t.Fatalf("non-JSON event line %q: %v", scanner.Text(), err)
		}
		if name, _ := rec["name"].(string); strings.Contains(name, "stub_phase") {
			sawSpan = true
		}
	}
	if !sawSpan {
		t.Error("tracer span never reached the event stream")
	}
	fin := waitTerminal(t, ts, st.ID)
	if fin.Events == 0 {
		t.Error("envelope reports zero events")
	}
}

// TestBudgetClampWrittenBack proves tenant ceilings rewrite the spec the
// runner sees: the admission-time Clamp is not advisory.
func TestBudgetClampWrittenBack(t *testing.T) {
	runner := &stubRunner{}
	srv := New(Config{
		Runner:        runner,
		DefaultLimits: TenantLimits{MaxTimeoutMS: 1000, MaxConflicts: 500, MaxSatWorkers: 2},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := validSpec(KindCEC)
	spec.Budget = &Budget{TimeoutMS: 99_000, SatWorkers: 64}
	_, data := postJob(t, ts, spec, "?wait=1")
	var st Status
	json.Unmarshal(data, &st)
	seen := runner.seen()
	if len(seen) != 1 || seen[0].Budget == nil {
		t.Fatalf("runner saw %+v", seen)
	}
	want := Budget{TimeoutMS: 1000, MaxConflicts: 500, SatWorkers: 2}
	if *seen[0].Budget != want {
		t.Errorf("clamped budget = %+v, want %+v", *seen[0].Budget, want)
	}
}

// TestFailedJobEnvelope routes a runner error into state failed with the
// structured error in the envelope.
func TestFailedJobEnvelope(t *testing.T) {
	runner := &stubRunner{fail: Errorf(CodeFailed, "solver exploded")}
	srv := New(Config{Runner: runner})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, data := postJob(t, ts, validSpec(KindCEC), "?wait=1")
	var st Status
	json.Unmarshal(data, &st)
	if st.State != StateFailed || st.Error == nil || st.Error.Code != CodeFailed {
		t.Errorf("envelope = %+v", st)
	}
}

// TestListAndSchemaEndpoints smoke-tests GET /v1/jobs and /v1/schema.
func TestListAndSchemaEndpoints(t *testing.T) {
	srv := New(Config{Runner: &stubRunner{}, Schemes: []string{"rll"}, Attacks: []string{"sat"}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJob(t, ts, validSpec(KindCEC), "?wait=1")
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []Status `json:"jobs"`
	}
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list.Jobs) != 1 {
		t.Errorf("job list has %d entries, want 1", len(list.Jobs))
	}

	resp, err = http.Get(ts.URL + "/v1/schema")
	if err != nil {
		t.Fatal(err)
	}
	var schema struct {
		JobSchema    string   `json:"job_schema"`
		ResultSchema string   `json:"result_schema"`
		Kinds        []string `json:"kinds"`
		Schemes      []string `json:"schemes"`
		Attacks      []string `json:"attacks"`
	}
	json.NewDecoder(resp.Body).Decode(&schema)
	resp.Body.Close()
	if schema.JobSchema != SchemaVersion || schema.ResultSchema != ResultSchema {
		t.Errorf("schema endpoint = %+v", schema)
	}
	if len(schema.Kinds) != len(Kinds()) || len(schema.Schemes) != 1 || len(schema.Attacks) != 1 {
		t.Errorf("schema lists = %+v", schema)
	}
}

// TestServiceMetrics proves the registry counters track the lifecycle:
// submissions, completions, rejections.
func TestServiceMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	block := make(chan struct{})
	srv := New(Config{
		Runner:        &stubRunner{block: block},
		Workers:       1,
		DefaultLimits: TenantLimits{MaxActive: 1},
		Registry:      reg,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, first := postJob(t, ts, validSpec(KindCEC), "")
	var st Status
	json.Unmarshal(first, &st)
	if resp, _ := postJob(t, ts, validSpec(KindCEC), ""); resp.StatusCode != 429 {
		t.Fatalf("second submit = %d, want 429", resp.StatusCode)
	}
	close(block)
	waitTerminal(t, ts, st.ID)

	snap := map[string]float64{}
	for _, m := range reg.Snapshot() {
		snap[m.Name] = m.Value
	}
	if snap[MetricJobsSubmitted] != 1 || snap[MetricJobsDone] != 1 || snap[MetricRejectedQuota] != 1 {
		t.Errorf("metrics = %+v", snap)
	}
}

// TestMethodNotAllowed pins the 405 surface.
func TestMethodNotAllowed(t *testing.T) {
	srv := New(Config{Runner: &stubRunner{}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs", strings.NewReader("{}"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/jobs = %d, want 405", resp.StatusCode)
	}
}

// TestNewPanicsWithoutRunner pins the constructor contract.
func TestNewPanicsWithoutRunner(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted a nil Runner")
		}
	}()
	New(Config{})
}
