package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
)

// NewDebugMux builds the live introspection mux served by -debug-addr
// (and, later, mounted per job by the obfuslockd daemon):
//
//	/metrics        ordered text snapshot of the registry (?format=json for JSON)
//	/flight         flight-recorder dump as JSONL
//	/debug/pprof/*  the standard runtime profiling endpoints
//
// It registers on a private mux, not http.DefaultServeMux, so embedding
// programs keep control of their global handler space. tr and fl may be
// nil; the endpoints then serve empty documents.
func NewDebugMux(tr *Tracer, fl *Flight) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snaps := tr.Metrics()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			out := make([]LedgerMetric, 0, len(snaps))
			for _, m := range snaps {
				out = append(out, LedgerMetric{
					Name: m.Name, Kind: m.Kind, Value: m.Value,
					Count: m.Count, Sum: m.Sum, Min: m.Min, Max: m.Max,
					P50: m.P50, P90: m.P90, P99: m.P99,
				})
			}
			json.NewEncoder(w).Encode(out)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, m := range snaps {
			switch m.Kind {
			case "histogram":
				fmt.Fprintf(w, "%s{kind=histogram} count=%d sum=%s min=%s max=%s p50=%s p90=%s p99=%s\n",
					m.Name, m.Count, ftoa(m.Sum), ftoa(m.Min), ftoa(m.Max),
					ftoa(m.P50), ftoa(m.P90), ftoa(m.P99))
			default:
				fmt.Fprintf(w, "%s{kind=%s} %s\n", m.Name, m.Kind, ftoa(m.Value))
			}
		}
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl.WriteTo(w)
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ListenDebug starts the introspection server on addr (":0" picks a
// free port) and returns the bound address. The server runs on a
// background goroutine for the life of the process; errors after a
// successful bind are dropped, matching the best-effort nature of a
// debug surface.
func ListenDebug(addr string, tr *Tracer, fl *Flight) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: NewDebugMux(tr, fl)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
