// Quickstart: lock a circuit with ObfusLock, verify the key, and watch the
// SAT attack fail.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"obfuslock"
)

func main() {
	// Build a circuit. Any extended AIG works; here a 7x7 array
	// multiplier via the public API (14 inputs: enough headroom for an
	// 8-bit-skew lock — min(2^8, 2^(keys-8)) must exceed attack budgets).
	c := obfuslock.NewCircuit()
	a := c.AddInputs(7)
	b := c.AddInputs(7)
	product := multiply(c, a, b)
	for i, p := range product {
		c.AddOutput(p, fmt.Sprintf("p%d", i))
	}
	fmt.Printf("original circuit: %s\n", c.Stats())

	// Lock at 8 bits of skewness (use 20+ in production; this keeps the
	// demo attack fast).
	opt := obfuslock.DefaultOptions()
	opt.TargetSkewBits = 8
	opt.Seed = 42
	opt.AllowDirect = false
	res, err := obfuslock.Lock(c, opt)
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Report
	fmt.Printf("locked: mode=%s key=%d bits, L skew=%.1f bits, %d -> %d nodes in %v\n",
		rep.Mode, rep.KeyBits, rep.SkewBits, rep.OrigNodes, rep.EncNodes, rep.Runtime)

	// The correct key provably restores the function.
	if err := res.Locked.Verify(c); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: correct key restores the original function")

	// A wrong key provably corrupts it.
	wrong := append([]bool(nil), res.Locked.Key...)
	wrong[0] = !wrong[0]
	broke, err := res.Locked.WrongKeyIsWrong(c, wrong)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrong key corrupts the circuit: %v\n", broke)

	// The oracle-guided SAT attack needs ~2^skew queries; give it a
	// budget far below that and watch it fail.
	aopt := obfuslock.DefaultAttackOptions()
	aopt.MaxIterations = 40
	aopt.Timeout = 30 * time.Second
	satAttack, _ := obfuslock.AttackNamed("sat")
	r := satAttack.Run(context.Background(), res.Locked, obfuslock.NewOracle(c), aopt)
	verdict := "defeated (no correct key within budget)"
	if r.Key != nil {
		if ok, _ := res.Locked.VerifyKey(c, r.Key); ok {
			verdict = "BROKEN"
		}
	}
	fmt.Printf("SAT attack: %d DIP iterations, exact=%v -> %s\n",
		r.Iterations, r.Exact, verdict)
}

// multiply builds a carry-save array multiplier over the public API.
func multiply(g *obfuslock.Circuit, a, b []obfuslock.Lit) []obfuslock.Lit {
	n, m := len(a), len(b)
	cols := make([][]obfuslock.Lit, n+m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			cols[i+j] = append(cols[i+j], g.And(a[i], b[j]))
		}
	}
	for {
		again := false
		for c := 0; c < len(cols); c++ {
			for len(cols[c]) > 2 {
				again = true
				x, y, z := cols[c][0], cols[c][1], cols[c][2]
				cols[c] = cols[c][3:]
				cols[c] = append(cols[c], g.Xor(g.Xor(x, y), z))
				if c+1 < len(cols) {
					cols[c+1] = append(cols[c+1], g.Maj(x, y, z))
				}
			}
		}
		if !again {
			break
		}
	}
	out := make([]obfuslock.Lit, n+m)
	carry := obfuslock.Lit(0) // constant false
	for c := 0; c < len(cols); c++ {
		var x, y obfuslock.Lit
		if len(cols[c]) > 0 {
			x = cols[c][0]
		}
		if len(cols[c]) > 1 {
			y = cols[c][1]
		}
		out[c] = g.Xor(g.Xor(x, y), carry)
		carry = g.Maj(x, y, carry)
	}
	return out
}
