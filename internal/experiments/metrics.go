package experiments

import (
	"encoding/json"
	"io"

	"obfuslock/internal/obs"
)

// MetricsSchema identifies the metrics.json layout; bump on breaking
// changes so downstream tooling can detect stale files.
const MetricsSchema = "obfuslock-table1/v1"

// MetricsRow is the machine-readable form of one TableIRow.
type MetricsRow struct {
	Bench       string  `json:"bench"`
	Nodes       int     `json:"nodes"`
	SkewBits    float64 `json:"skew_bits"`
	KeyBits     int     `json:"key_bits"`
	LockSeconds float64 `json:"lock_seconds"`
	// Attacks maps attack-cell name (sat_sub, sat_whole, appsat_sub,
	// appsat_whole) to the paper's cell convention: decrypt seconds as a
	// string, "TO", or "wrong".
	Attacks map[string]string `json:"attacks"`
}

// MetricsMetric mirrors one obs.MetricSnapshot in JSON form.
type MetricsMetric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value,omitempty"`
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// MetricsFile is the top-level metrics.json document written by
// cmd/attack -table1.
type MetricsFile struct {
	Schema  string          `json:"schema"`
	Rows    []MetricsRow    `json:"rows"`
	Metrics []MetricsMetric `json:"metrics,omitempty"`
}

// NewMetricsFile converts sweep rows (and, when tr is non-nil, its
// registered counters/gauges/histograms) into the metrics.json document.
func NewMetricsFile(rows []TableIRow, tr *obs.Tracer) MetricsFile {
	mf := MetricsFile{Schema: MetricsSchema, Rows: make([]MetricsRow, 0, len(rows))}
	for _, r := range rows {
		lockSeconds := r.LockTime.Seconds()
		if r.Deterministic {
			// Wall-clock time is the one column that cannot be byte-stable
			// across runs; deterministic sweeps zero it.
			lockSeconds = 0
		}
		mf.Rows = append(mf.Rows, MetricsRow{
			Bench:       r.Bench,
			Nodes:       r.Nodes,
			SkewBits:    r.SkewBits,
			KeyBits:     r.KeyBits,
			LockSeconds: lockSeconds,
			Attacks: map[string]string{
				"sat_sub":      r.SATSub,
				"sat_whole":    r.SATWhole,
				"appsat_sub":   r.AppSATSub,
				"appsat_whole": r.AppSATWhole,
			},
		})
	}
	for _, m := range tr.Metrics() {
		mf.Metrics = append(mf.Metrics, MetricsMetric{
			Name: m.Name, Kind: m.Kind, Value: m.Value,
			Count: m.Count, Sum: m.Sum, Min: m.Min, Max: m.Max,
			P50: m.P50, P90: m.P90, P99: m.P99,
		})
	}
	return mf
}

// WriteMetricsJSON writes the metrics.json document for a Table I sweep.
func WriteMetricsJSON(w io.Writer, rows []TableIRow, tr *obs.Tracer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(NewMetricsFile(rows, tr))
}
