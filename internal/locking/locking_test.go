package locking

import (
	"testing"

	"obfuslock/internal/aig"
)

// toy returns a locked circuit with 2 original inputs and 2 key inputs:
// f = (a ^ k0) & (b ^ k1); correct key 00.
func toy() (*aig.AIG, *Locked) {
	orig := aig.New()
	a := orig.AddInput("a")
	b := orig.AddInput("b")
	orig.AddOutput(orig.And(a, b), "f")

	enc := aig.New()
	ea := enc.AddInput("a")
	eb := enc.AddInput("b")
	k0 := enc.AddInput(KeyName(0))
	k1 := enc.AddInput(KeyName(1))
	enc.AddOutput(enc.And(enc.Xor(ea, k0), enc.Xor(eb, k1)), "f")
	return orig, &Locked{
		Scheme: "toy", Enc: enc,
		NumInputs: 2, KeyBits: 2, Key: []bool{false, false},
	}
}

func TestValidate(t *testing.T) {
	_, l := toy()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	l.KeyBits = 3
	if err := l.Validate(); err == nil {
		t.Fatal("expected input-count mismatch")
	}
	l.KeyBits = 2
	l.Key = []bool{true}
	if err := l.Validate(); err == nil {
		t.Fatal("expected key-length mismatch")
	}
}

func TestApplyKeyAndVerify(t *testing.T) {
	orig, l := toy()
	if err := l.Verify(orig); err != nil {
		t.Fatal(err)
	}
	ok, err := l.VerifyKey(orig, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("wrong key accepted")
	}
	broke, err := l.WrongKeyIsWrong(orig, []bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	if !broke {
		t.Fatal("wrong key not flagged")
	}
	// Unlocked is functionally the original.
	u := l.Unlocked()
	for m := 0; m < 4; m++ {
		pat := []bool{m&1 == 1, m>>1&1 == 1}
		if u.Eval(pat)[0] != orig.Eval(pat)[0] {
			t.Fatal("Unlocked differs from original")
		}
	}
}

func TestOracleCountsQueries(t *testing.T) {
	orig, _ := toy()
	o := NewOracle(orig)
	if o.NumInputs() != 2 || o.NumOutputs() != 1 {
		t.Fatal("oracle interface wrong")
	}
	o.Query([]bool{true, true})
	o.Query([]bool{false, true})
	if o.Queries != 2 {
		t.Fatalf("queries = %d", o.Queries)
	}
}

func TestBindInputs(t *testing.T) {
	_, l := toy()
	spec := BindInputs(l.Enc, 2, []bool{true, true})
	if spec.NumInputs() != 2 {
		t.Fatalf("spec inputs = %d, want 2 (keys only)", spec.NumInputs())
	}
	// spec(k0,k1) = (1^k0)&(1^k1) = !k0 & !k1.
	for m := 0; m < 4; m++ {
		pat := []bool{m&1 == 1, m>>1&1 == 1}
		want := !pat[0] && !pat[1]
		if spec.Eval(pat)[0] != want {
			t.Fatalf("BindInputs wrong at %v", pat)
		}
	}
}

func TestKeyInputLits(t *testing.T) {
	_, l := toy()
	lits := l.KeyInputLits()
	if len(lits) != 2 {
		t.Fatal("wrong key literal count")
	}
	for i, kl := range lits {
		if l.Enc.InputName(l.NumInputs+i) != KeyName(i) || kl.IsCompl() {
			t.Fatal("key literal convention broken")
		}
	}
}

func TestFromNetlist(t *testing.T) {
	_, l := toy()
	got, err := FromNetlist(l.Enc, "recovered")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumInputs != 2 || got.KeyBits != 2 {
		t.Fatalf("recovered shape: %+v", got)
	}
	if got.Key != nil {
		t.Fatal("recovered key must be unknown")
	}
	// No key inputs at all.
	g := aig.New()
	g.AddInput("a")
	g.AddOutput(g.Input(0), "f")
	if _, err := FromNetlist(g, "x"); err == nil {
		t.Fatal("expected error for keyless netlist")
	}
}
