package core

import (
	"context"
	"testing"
	"time"

	"obfuslock/internal/aig"
	"obfuslock/internal/attacks"
	"obfuslock/internal/cec"
	"obfuslock/internal/exec"
	"obfuslock/internal/lockbase"
	"obfuslock/internal/locking"
	"obfuslock/internal/netlistgen"
	"obfuslock/internal/simp"
)

// lockedFixture locks a 25-input adder at 10 bits of skewness once for the
// whole security suite.
func lockedFixture(t *testing.T, seed int64) (*aig.AIG, *Result) {
	t.Helper()
	c := netlistgen.AdderCmp(12)
	opt := DefaultOptions()
	opt.TargetSkewBits = 10
	opt.Seed = seed
	opt.AllowDirect = false
	res, err := Lock(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	return c, res
}

// The SAT attack must not finish within a DIP budget far below 2^skew.
func TestObfusLockResistsSATAttack(t *testing.T) {
	c, res := lockedFixture(t, 21)
	oracle := locking.NewOracle(c)
	opt := attacks.DefaultIOOptions()
	opt.MaxIterations = 60 // ~2^10 needed
	r := attacks.SATAttack(context.Background(), res.Locked, oracle, opt)
	if r.Exact {
		t.Fatalf("SAT attack finished ObfusLock in %d iterations", r.Iterations)
	}
	if r.Key != nil {
		ok, err := res.Locked.VerifyKey(c, r.Key)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("SAT attack's partial key is correct — skew analysis must be wrong")
		}
	}
}

// AppSAT at a modest iteration cap must return a wrong key (the paper's
// "wrong" cells in Table I).
func TestObfusLockDefeatsAppSAT(t *testing.T) {
	c, res := lockedFixture(t, 22)
	oracle := locking.NewOracle(c)
	opt := attacks.DefaultIOOptions()
	opt.MaxIterations = 40
	opt.Seed = 1
	r := attacks.AppSAT(context.Background(), res.Locked, oracle, opt)
	if r.Key == nil {
		t.Fatal("AppSAT returned no key at all")
	}
	if r.Exact {
		t.Fatal("AppSAT finished exactly — should not at this skew")
	}
	ok, err := res.Locked.VerifyKey(c, r.Key)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("AppSAT's approximate key is exactly correct — vanishingly unlikely")
	}
}

// All key bits must be sensitized together: the sensitization attack
// recovers nothing.
func TestObfusLockResistsSensitization(t *testing.T) {
	c, res := lockedFixture(t, 23)
	oracle := locking.NewOracle(c)
	r := attacks.Sensitization(context.Background(), res.Locked, oracle, exec.WithConflicts(100000), simp.Default())
	if r.NumIsolatable != 0 {
		t.Fatalf("%d key bits isolatable; input permutation should mute none", r.NumIsolatable)
	}
}

// Bypass must drown: every input pattern is protected by permutation.
func TestObfusLockResistsBypass(t *testing.T) {
	c, res := lockedFixture(t, 24)
	wrong := append([]bool(nil), res.Locked.Key...)
	wrong[0] = !wrong[0]
	wrong[1] = !wrong[1]
	r := attacks.Bypass(context.Background(), res.Locked, c, wrong, 64, exec.WithConflicts(500000), simp.Default())
	if r.Success {
		t.Fatalf("bypass succeeded with %d patterns", r.Patterns)
	}
}

// The critical nodes — root of C's protected cone and root of L — must be
// eliminated: no node of the (wrong-key-bound) netlist computes either
// function.
func TestObfusLockEliminatesCriticalNodes(t *testing.T) {
	c, res := lockedFixture(t, 25)
	po := res.Report.ProtectedOutput
	spec := c.Output(po)
	fopt := cec.FindOptions{SimWords: 8, Seed: 3, Budget: exec.WithConflicts(200000)}
	if lit, found := attacks.CriticalNodeSurvives(context.Background(), res.Locked, c, spec, fopt); found {
		t.Fatalf("original root survives as %v", lit)
	}
}

// Valkyrie-style perturb/restore search must fail: no node pair replacement
// reproduces the oracle.
func TestObfusLockResistsValkyrie(t *testing.T) {
	c, res := lockedFixture(t, 26)
	opt := cec.DefaultOptions()
	opt.Budget = exec.WithConflicts(50000)
	r := attacks.Valkyrie(context.Background(), res.Locked, c, 6, 64, 4, opt)
	if r.FoundPair {
		t.Fatalf("valkyrie broke ObfusLock: %+v", r)
	}
}

// SPI must return an incorrect key.
func TestObfusLockDefeatsSPI(t *testing.T) {
	c, res := lockedFixture(t, 27)
	r := attacks.SPI(res.Locked, 6)
	ok, err := res.Locked.VerifyKey(c, r.Key)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("SPI recovered the ObfusLock key")
	}
}

// Removal attack on the SPS shortlist must fail.
func TestObfusLockResistsRemoval(t *testing.T) {
	c, res := lockedFixture(t, 28)
	sps := attacks.SPS(res.Locked, 64, 5, 8)
	opt := cec.DefaultOptions()
	opt.Budget = exec.WithConflicts(50000)
	r := attacks.Removal(context.Background(), res.Locked, c, sps.Candidates, opt)
	if r.Success {
		t.Fatalf("removal broke ObfusLock at node %d", r.Node)
	}
}

// Sanity: the attack budget used above is genuinely able to crack an easy
// scheme, so the resistance results are meaningful (no broken-attack
// false negatives).
func TestAttackBudgetSanity(t *testing.T) {
	c := netlistgen.AdderCmp(12)
	l, err := lockbaseRLL(c)
	if err != nil {
		t.Fatal(err)
	}
	oracle := locking.NewOracle(c)
	opt := attacks.DefaultIOOptions()
	opt.MaxIterations = 60
	opt.Timeout = 30 * time.Second
	r := attacks.SATAttack(context.Background(), l, oracle, opt)
	if !r.Exact {
		t.Fatalf("budgeted SAT attack cannot even crack RLL: %+v", r)
	}
}

func lockbaseRLL(c *aig.AIG) (*locking.Locked, error) {
	// Local shim to avoid importing lockbase at top level twice.
	return rllShim(c)
}

// rllShim wires the lockbase baseline without cluttering the imports above.
func rllShim(c *aig.AIG) (*locking.Locked, error) {
	return lockbase.RLL(c, 10, 1)
}
