package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDimacs parses a DIMACS CNF file into a fresh solver. Comment lines
// and the problem line are tolerated in any position; variables are
// created on demand, so a missing or understated problem line still works.
func ReadDimacs(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var clause []Lit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "cnf" {
				n, err := strconv.Atoi(fields[2])
				if err != nil {
					return nil, fmt.Errorf("dimacs: line %d: bad variable count: %v", lineNo, err)
				}
				for s.NumVars() < n {
					s.NewVar()
				}
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs: line %d: bad literal %q", lineNo, tok)
			}
			if v == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			idx := v
			if idx < 0 {
				idx = -idx
			}
			for s.NumVars() < idx {
				s.NewVar()
			}
			clause = append(clause, MkLit(idx-1, v < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dimacs: %v", err)
	}
	if len(clause) > 0 {
		return nil, fmt.Errorf("dimacs: trailing clause without terminating 0")
	}
	return s, nil
}

// WriteDimacs emits the solver's problem clauses (not learnt clauses) in
// DIMACS CNF format. Unit facts implied at level 0 are emitted as unit
// clauses so the formula round-trips.
func (s *Solver) WriteDimacs(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var problem [][]Lit
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.learnt || c.deleted {
			continue
		}
		problem = append(problem, c.lits)
	}
	var units []Lit
	if !s.ok {
		// Formula already refuted: emit a trivially UNSAT pair.
		fmt.Fprintf(bw, "p cnf 1 2\n1 0\n-1 0\n")
		return bw.Flush()
	}
	for _, l := range s.trail {
		units = append(units, l)
	}
	fmt.Fprintf(bw, "p cnf %d %d\n", s.numVars, len(problem)+len(units))
	emit := func(lits []Lit) {
		for _, l := range lits {
			v := l.Var() + 1
			if l.Neg() {
				v = -v
			}
			fmt.Fprintf(bw, "%d ", v)
		}
		fmt.Fprintln(bw, 0)
	}
	for _, l := range units {
		emit([]Lit{l})
	}
	for _, c := range problem {
		emit(c)
	}
	return bw.Flush()
}
