package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestReadDimacsBasic(t *testing.T) {
	src := `c example
p cnf 3 3
1 -2 0
2 3 0
-1 0
`
	s, err := ReadDimacs(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 3 {
		t.Fatalf("vars = %d", s.NumVars())
	}
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
	// x1 false (unit), so x2 must be false (clause 1), so x3 true.
	if s.ModelValue(MkLit(0, false)) || s.ModelValue(MkLit(1, false)) || !s.ModelValue(MkLit(2, false)) {
		t.Fatal("model wrong")
	}
}

func TestReadDimacsImplicitVarsAndMultiline(t *testing.T) {
	src := "1 2\n-1\n0 -2 0\n" // clauses split across lines, no p-line
	s, err := ReadDimacs(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 2 {
		t.Fatalf("vars = %d", s.NumVars())
	}
	// (1|2|-1) taut dropped; (-2) unit.
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
	if s.ModelValue(MkLit(1, false)) {
		t.Fatal("x2 should be false")
	}
}

func TestReadDimacsErrors(t *testing.T) {
	cases := []string{
		"p cnf x 3\n1 0\n",
		"1 two 0\n",
		"1 2 3\n", // missing terminator
	}
	for _, src := range cases {
		if _, err := ReadDimacs(strings.NewReader(src)); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestDimacsRoundTripPreservesSatisfiability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		numVars := 3 + rng.Intn(7)
		cnf := randomCNF(rng, numVars, 3+rng.Intn(25), 3)
		s1 := New()
		for i := 0; i < numVars; i++ {
			s1.NewVar()
		}
		for _, cl := range cnf {
			s1.AddClause(cl...)
		}
		var buf bytes.Buffer
		if err := s1.WriteDimacs(&buf); err != nil {
			t.Fatal(err)
		}
		s2, err := ReadDimacs(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		if got, want := s2.Solve(), s1.Solve(); got != want {
			t.Fatalf("trial %d: round trip changed satisfiability: %v vs %v", trial, got, want)
		}
	}
}

func TestWriteDimacsUnsat(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(MkLit(v, false))
	s.AddClause(MkLit(v, true))
	var buf bytes.Buffer
	if err := s.WriteDimacs(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadDimacs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Solve() != Unsat {
		t.Fatal("UNSAT not preserved")
	}
}

// Round trip over a solver whose clause index holds arena tombstones:
// Simplify deletes and shrinks problem clauses in place, a solve plus a
// forced reduceDB deletes learnts, and a forced garbageCollect compacts
// and remaps every surviving reference. The writer must skip dead slots
// and emit a formula with the same satisfiability as the original.
func TestDimacsRoundTripAfterReduceAndSimplify(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		numVars := 4 + rng.Intn(6)
		cnf := randomCNF(rng, numVars, 5+rng.Intn(30), 3)
		s1 := New()
		for i := 0; i < numVars; i++ {
			s1.NewVar()
		}
		for _, cl := range cnf {
			s1.AddClause(cl...)
		}
		want, _ := brute(numVars, cnf)

		s1.Simplify(DefaultSimpOptions())
		st := s1.Solve()
		if (st == Sat) != want {
			t.Fatalf("trial %d: solver %v, brute-force %v", trial, st, want)
		}
		if st == Sat {
			// Exercise the learnt-deletion and compaction paths directly so
			// the writer sees a database with tombstones regardless of how
			// small the instance is. (Unsat solvers stop accepting work.)
			s1.reduceDB()
			s1.garbageCollect()
			s1.Simplify(DefaultSimpOptions())
		}

		var buf bytes.Buffer
		if err := s1.WriteDimacs(&buf); err != nil {
			t.Fatal(err)
		}
		s2, err := ReadDimacs(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		if got := s2.Solve(); (got == Sat) != want {
			t.Fatalf("trial %d: round trip changed satisfiability: %v, brute-force %v\n%s",
				trial, got, want, buf.String())
		}
	}
}

func TestWriteDimacsAfterSolveKeepsLearntOut(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 4)
	before := s.NumClauses()
	if s.Solve() != Unsat {
		t.Fatal("PHP(5,4) should be UNSAT")
	}
	var buf bytes.Buffer
	if err := s.WriteDimacs(&buf); err != nil {
		t.Fatal(err)
	}
	// Learnt clauses are excluded: the emitted count matches the problem.
	head := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.HasPrefix(head, "p cnf") {
		t.Fatalf("bad header %q", head)
	}
	_ = before
	s2, err := ReadDimacs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Solve() != Unsat {
		t.Fatal("round trip lost unsatisfiability")
	}
}
