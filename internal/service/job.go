package service

import (
	"bytes"
	"context"
	"sync"
	"time"
)

// State is a job's lifecycle phase. Transitions are monotone:
// queued → running → {done, failed, cancelled}, or queued → cancelled
// directly when the job is cancelled before a worker picks it up.
type State string

// Job lifecycle states.
const (
	// StateQueued: admitted, waiting for a worker slot.
	StateQueued State = "queued"
	// StateRunning: executing on a scheduler worker.
	StateRunning State = "running"
	// StateDone: finished with a result.
	StateDone State = "done"
	// StateFailed: finished with an error.
	StateFailed State = "failed"
	// StateCancelled: cancelled by the client (or by a drain checkpoint)
	// before completing.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Status is the job envelope served by GET /v1/jobs/{id}: metadata,
// lifecycle timestamps, and — once terminal — the result or error.
// Unlike JobResult it may carry wall-clock fields; byte-identity claims
// cover the result only.
type Status struct {
	// ID is the server-assigned job identifier.
	ID string `json:"id"`
	// Tenant is the quota-accounting tenant.
	Tenant string `json:"tenant"`
	// Kind echoes the spec's kind.
	Kind string `json:"kind"`
	// Label echoes the client's tag, if any.
	Label string `json:"label,omitempty"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// CreatedAt is the admission time (RFC3339Nano).
	CreatedAt string `json:"created_at"`
	// StartedAt is set when a worker picks the job up.
	StartedAt string `json:"started_at,omitempty"`
	// FinishedAt is set when the job reaches a terminal state.
	FinishedAt string `json:"finished_at,omitempty"`
	// Events counts the progress records available at /events.
	Events int `json:"events"`
	// Result is the versioned outcome (done only).
	Result *JobResult `json:"result,omitempty"`
	// Error describes the failure (failed/cancelled only).
	Error *Error `json:"error,omitempty"`
}

// Job is one tracked submission. All fields behind mu; the exported
// accessors take consistent snapshots.
type Job struct {
	id     string
	tenant string
	spec   JobSpec

	mu        sync.Mutex
	state     State
	result    *JobResult
	jerr      *Error
	created   time.Time
	started   time.Time
	finished  time.Time
	cancelled bool // client asked for cancellation

	ctx    context.Context
	cancel context.CancelFunc
	events *eventLog
	done   chan struct{}
}

// newJob builds a queued job whose execution context is derived from
// base (the server's lifetime context, NOT the submitting request's —
// async jobs outlive their submission).
func newJob(base context.Context, id string, spec JobSpec, maxEvents int) *Job {
	ctx, cancel := context.WithCancel(base)
	return &Job{
		id:      id,
		tenant:  spec.TenantOrDefault(),
		spec:    spec,
		state:   StateQueued,
		created: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		events:  newEventLog(maxEvents),
		done:    make(chan struct{}),
	}
}

// ID returns the server-assigned identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the submitted spec.
func (j *Job) Spec() JobSpec { return j.spec }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the result once the job is done (nil otherwise).
func (j *Job) Result() *JobResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Status snapshots the envelope.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.id,
		Tenant:    j.tenant,
		Kind:      j.spec.Kind,
		Label:     j.spec.Label,
		State:     j.state,
		CreatedAt: j.created.Format(time.RFC3339Nano),
		Events:    j.events.Len(),
		Result:    j.result,
		Error:     j.jerr,
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.Format(time.RFC3339Nano)
	}
	return st
}

// Cancel requests cancellation: a queued job goes terminal immediately
// (its scheduler slot is reclaimed when the tombstoned task drains), a
// running job has its context cancelled and goes terminal when the
// runner returns. Cancel reports whether the request changed anything
// (false once the job is already terminal).
func (j *Job) Cancel(reason string) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.cancelled = true
	if j.state == StateQueued {
		j.finishLocked(StateCancelled, nil, Errorf(CodeCancelled, "%s", reason))
		j.mu.Unlock()
		j.cancel()
		return true
	}
	j.mu.Unlock()
	j.cancel() // running: the runner observes ctx and returns
	return true
}

// start moves queued → running. It returns false when the job is
// already terminal (cancelled while queued): the caller must skip it.
func (j *Job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish records the runner's outcome, classifying a client-cancelled
// job as cancelled regardless of what the runner managed to return.
func (j *Job) finish(res *JobResult, jerr *Error) {
	j.mu.Lock()
	switch {
	case j.cancelled:
		j.finishLocked(StateCancelled, nil, Errorf(CodeCancelled, "job cancelled"))
	case jerr != nil:
		j.finishLocked(StateFailed, nil, jerr)
	default:
		j.finishLocked(StateDone, res, nil)
	}
	j.mu.Unlock()
	j.cancel() // release the context's timer/goroutine resources
}

// finishLocked is the single terminal-state writer; callers hold mu.
func (j *Job) finishLocked(s State, res *JobResult, jerr *Error) {
	if j.state.Terminal() {
		return
	}
	j.state = s
	j.result = res
	j.jerr = jerr
	j.finished = time.Now()
	j.events.Close()
	close(j.done)
}

// eventLog is a bounded append-only list of JSONL progress records with
// follow support: readers block on Wait until new lines arrive or the
// log closes. The per-job obs tracer writes into it through the
// io.Writer interface (it emits complete lines, matching the JSONL
// sink's line-at-a-time writes).
type eventLog struct {
	mu      sync.Mutex
	cond    *sync.Cond
	lines   [][]byte
	dropped int
	closed  bool
	max     int
	partial []byte
}

// defaultMaxEvents bounds one job's retained progress records.
const defaultMaxEvents = 4096

func newEventLog(max int) *eventLog {
	if max <= 0 {
		max = defaultMaxEvents
	}
	l := &eventLog{max: max}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Write appends JSONL bytes, splitting on newlines. Once the bound is
// reached further lines are counted but not retained (progress streams
// are diagnostics, not archives; the full stream still reaches any
// process-wide trace sink).
func (l *eventLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.partial = append(l.partial, p...)
	appended := false
	for {
		i := bytes.IndexByte(l.partial, '\n')
		if i < 0 {
			break
		}
		line := make([]byte, i)
		copy(line, l.partial[:i])
		l.partial = l.partial[i+1:]
		if len(l.lines) >= l.max {
			l.dropped++
			continue
		}
		l.lines = append(l.lines, line)
		appended = true
	}
	if appended {
		l.cond.Broadcast()
	}
	return len(p), nil
}

// Len reports how many lines were recorded (dropped ones included).
func (l *eventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.lines) + l.dropped
}

// Close marks the log complete and wakes all followers.
func (l *eventLog) Close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Snapshot returns the retained lines from offset on, the next offset,
// and whether the log is closed.
func (l *eventLog) Snapshot(from int) ([][]byte, int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from > len(l.lines) {
		from = len(l.lines)
	}
	out := l.lines[from:]
	return out, len(l.lines), l.closed
}

// Wait blocks until the log grows past offset, closes, or stop is
// closed. It returns false when the caller should give up (stop).
func (l *eventLog) Wait(from int, stop <-chan struct{}) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.lines) <= from && !l.closed {
		select {
		case <-stop:
			return false
		default:
		}
		// cond.Wait cannot select on stop; poke the cond from a watcher.
		waitDone := make(chan struct{})
		go func() {
			select {
			case <-stop:
				l.cond.Broadcast()
			case <-waitDone:
			}
		}()
		l.cond.Wait()
		close(waitDone)
		select {
		case <-stop:
			return false
		default:
		}
	}
	return true
}
