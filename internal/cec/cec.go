// Package cec implements SAT-based combinational equivalence checking with
// a random-simulation pre-filter, plus node-level equivalence queries used
// by the structural attacks and the critical-node elimination check.
package cec

import (
	"context"
	"fmt"
	"time"

	"obfuslock/internal/aig"
	"obfuslock/internal/cnf"
	"obfuslock/internal/exec"
	"obfuslock/internal/sat"
	"obfuslock/internal/sim"
)

// Result reports the outcome of an equivalence check.
type Result struct {
	Equivalent bool
	// Counterexample is an input pattern on which the circuits differ
	// (valid only when Equivalent is false and Decided is true).
	Counterexample []bool
	// Decided is false when the solver hit its budget.
	Decided bool
	// Runtime of the check.
	Runtime time.Duration
}

// Options configures a check.
type Options struct {
	// SimWords of 64 random patterns tried before SAT (0 disables).
	SimWords int
	// Seed for the simulation pre-filter.
	Seed int64
	// Budget bounds the SAT effort (zero value: unlimited).
	Budget exec.Budget
}

// DefaultOptions uses a small simulation pre-filter and no SAT budget.
func DefaultOptions() Options {
	return Options{SimWords: 4, Seed: 1}
}

// Check decides whether two circuits with identical interfaces are
// functionally equivalent. Cancelling ctx (or exhausting the budget)
// yields an undecided result.
func Check(ctx context.Context, a, b *aig.AIG, opt Options) (Result, error) {
	start := time.Now()
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		return Result{}, fmt.Errorf("cec: interface mismatch: %d/%d inputs, %d/%d outputs",
			a.NumInputs(), b.NumInputs(), a.NumOutputs(), b.NumOutputs())
	}
	// Simulation pre-filter: a single differing pattern refutes quickly.
	if opt.SimWords > 0 && a.NumInputs() > 0 {
		in := sim.RandomInputs(a.NumInputs(), opt.SimWords, opt.Seed)
		va := sim.Run(a, in)
		vb := sim.Run(b, in)
		for o := 0; o < a.NumOutputs(); o++ {
			wa, wb := va.Output(o), vb.Output(o)
			for w := range wa {
				if d := wa[w] ^ wb[w]; d != 0 {
					idx := w * 64
					for bit := 0; bit < 64; bit++ {
						if d>>uint(bit)&1 == 1 {
							idx += bit
							break
						}
					}
					return Result{
						Equivalent:     false,
						Counterexample: sim.Pattern(in, idx),
						Decided:        true,
						Runtime:        time.Since(start),
					}, nil
				}
			}
		}
	}
	s := sat.New()
	s.SetBudget(opt.Budget.ConflictCap())
	s.SetContext(ctx)
	inputs, diff := cnf.Miter(s, a, b)
	s.AddClause(diff)
	switch s.Solve() {
	case sat.Unsat:
		return Result{Equivalent: true, Decided: true, Runtime: time.Since(start)}, nil
	case sat.Sat:
		cex := make([]bool, len(inputs))
		for i, l := range inputs {
			cex[i] = s.ModelValue(l)
		}
		return Result{Equivalent: false, Counterexample: cex, Decided: true, Runtime: time.Since(start)}, nil
	}
	return Result{Decided: false, Runtime: time.Since(start)}, nil
}

// LitsEquivalent decides whether two literals of the same graph compute the
// same function of the primary inputs (up to the given conflict budget,
// with <0 meaning unlimited; Unknown maps to decided=false).
func LitsEquivalent(ctx context.Context, g *aig.AIG, x, y aig.Lit, budget int64) (equal, decided bool) {
	s := sat.New()
	e := cnf.NewEncoder(g, s)
	lits := e.Encode(x, y)
	if budget >= 0 {
		s.SetBudget(budget)
	}
	s.SetContext(ctx)
	d := cnf.XorLit(s, lits[0], lits[1])
	s.AddClause(d)
	switch s.Solve() {
	case sat.Unsat:
		return true, true
	case sat.Sat:
		return false, true
	}
	return false, false
}

// FindEquivalentNode searches g for a node (in either phase) functionally
// equivalent to the function computed by literal spec in graph specG, where
// both graphs share the same primary-input ordering. It returns the
// matching literal in g and true, or false when no node matches.
//
// This implements the attacker's "does the critical node still exist?"
// query from the paper's structural-security evaluation: simulation
// signatures shortlist candidates and SAT confirms them.
func FindEquivalentNode(ctx context.Context, g *aig.AIG, specG *aig.AIG, spec aig.Lit, simWords int, seed int64, budget int64) (aig.Lit, bool) {
	if g.NumInputs() != specG.NumInputs() {
		panic("cec: FindEquivalentNode input mismatch")
	}
	in := sim.RandomInputs(g.NumInputs(), simWords, seed)
	vg := sim.Run(g, in)
	vs := sim.Run(specG, in)
	specWords := vs.Lit(spec)

	// Combined graph for SAT confirmation: import specG into a copy of g.
	comb := g.Copy()
	mapped := comb.ImportCone(specG, comb.Inputs(), []aig.Lit{spec})
	specIn := mapped[0]

	matches := func(cand aig.Lit) bool {
		cw := vg.Lit(cand)
		for w := range cw {
			if cw[w] != specWords[w] {
				return false
			}
		}
		return true
	}
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if ctx != nil && ctx.Err() != nil {
			return 0, false
		}
		for _, ph := range []bool{false, true} {
			cand := aig.MkLit(v, ph)
			if !matches(cand) {
				continue
			}
			if eq, dec := LitsEquivalent(ctx, comb, cand, specIn, budget); dec && eq {
				return cand, true
			}
		}
	}
	return 0, false
}
