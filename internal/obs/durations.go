package obs

import (
	"strings"
	"sync"
	"time"
)

// SpanDurations is a Sink that turns the span stream into latency
// histograms: every completed span records its duration (microseconds)
// into the registry histogram "span.<name>_us". Attached alongside a
// primary sink via Multi, it gives per-phase latency distributions —
// lock.assess_skew, lock.cec, table1.cell, attack.sat — without any
// call-site instrumentation. Metric handles are cached per span name,
// so steady state costs one map read per span end.
type SpanDurations struct {
	reg *Registry

	mu    sync.RWMutex
	hists map[string]*Histogram
}

// NewSpanDurations returns the bridge sink recording into reg. A nil
// registry yields a nil sink (valid for Multi, which skips it).
func NewSpanDurations(reg *Registry) *SpanDurations {
	if reg == nil {
		return nil
	}
	return &SpanDurations{reg: reg, hists: make(map[string]*Histogram)}
}

func (d *SpanDurations) hist(name string) *Histogram {
	d.mu.RLock()
	h, ok := d.hists[name]
	d.mu.RUnlock()
	if ok {
		return h
	}
	var b strings.Builder
	b.Grow(len("span.") + len(name) + len("_us"))
	b.WriteString("span.")
	b.WriteString(name)
	b.WriteString("_us")
	h = d.reg.Histogram(b.String())
	d.mu.Lock()
	d.hists[name] = h
	d.mu.Unlock()
	return h
}

// SpanStart implements Sink.
func (d *SpanDurations) SpanStart(SpanData) {}

// SpanEnd implements Sink.
func (d *SpanDurations) SpanEnd(sd SpanData) {
	if d == nil {
		return
	}
	d.hist(sd.Name).RecordDuration(sd.Duration)
}

// Event implements Sink.
func (d *SpanDurations) Event(uint64, string, time.Time, []Field) {}

// Metric implements Sink.
func (d *SpanDurations) Metric(MetricSnapshot) {}
