package cec

import (
	"context"
	"math/rand"
	"testing"

	"obfuslock/internal/aig"
)

// adder builds a ripple-carry adder: 2n inputs, n+1 outputs.
func adder(n int) *aig.AIG {
	g := aig.New()
	a := make([]aig.Lit, n)
	b := make([]aig.Lit, n)
	for i := range a {
		a[i] = g.AddInput("")
	}
	for i := range b {
		b[i] = g.AddInput("")
	}
	carry := aig.ConstFalse
	for i := 0; i < n; i++ {
		s := g.Xor(g.Xor(a[i], b[i]), carry)
		carry = g.Maj(a[i], b[i], carry)
		g.AddOutput(s, "")
	}
	g.AddOutput(carry, "cout")
	return g
}

// adderAnd is the same adder lowered to pure AND logic with a different
// carry formulation: structurally distinct, functionally identical.
func adderAnd(n int) *aig.AIG {
	g := aig.New()
	a := make([]aig.Lit, n)
	b := make([]aig.Lit, n)
	for i := range a {
		a[i] = g.AddInput("")
	}
	for i := range b {
		b[i] = g.AddInput("")
	}
	carry := aig.ConstFalse
	for i := 0; i < n; i++ {
		axb := g.XorAnd(a[i], b[i])
		s := g.XorAnd(axb, carry)
		carry = g.Or(g.And(a[i], b[i]), g.And(axb, carry))
		g.AddOutput(s, "")
	}
	g.AddOutput(carry, "cout")
	return g
}

func TestEquivalentAdders(t *testing.T) {
	for _, n := range []int{1, 4, 8, 16} {
		r, err := Check(context.Background(), adder(n), adderAnd(n), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !r.Decided || !r.Equivalent {
			t.Fatalf("n=%d: adders not proven equivalent: %+v", n, r)
		}
	}
}

func TestInequivalentCounterexample(t *testing.T) {
	g1 := adder(4)
	g2 := adder(4)
	// Corrupt one output of g2.
	g2.SetOutput(2, g2.Output(2).Not())
	r, err := Check(context.Background(), g1, g2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Equivalent || !r.Decided {
		t.Fatalf("corrupted adder reported equivalent: %+v", r)
	}
	// The counterexample must exhibit the difference.
	o1 := g1.Eval(r.Counterexample)
	o2 := g2.Eval(r.Counterexample)
	same := true
	for i := range o1 {
		if o1[i] != o2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("counterexample does not distinguish the circuits")
	}
}

func TestInequivalentWithoutSimFilter(t *testing.T) {
	// Difference on exactly one input pattern: simulation will likely miss
	// it, forcing the SAT path.
	n := 16
	g1 := aig.New()
	in1 := g1.AddInputs(n)
	g1.AddOutput(aig.ConstFalse, "f")
	g2 := aig.New()
	in2 := g2.AddInputs(n)
	g2.AddOutput(g2.AndN(in2...), "f")
	_ = in1
	opt := DefaultOptions()
	opt.SimWords = 1
	r, err := Check(context.Background(), g1, g2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Equivalent || !r.Decided {
		t.Fatalf("point-function difference missed: %+v", r)
	}
	for _, bit := range r.Counterexample {
		if !bit {
			t.Fatal("only the all-ones pattern distinguishes; got something else")
		}
	}
}

func TestInterfaceMismatch(t *testing.T) {
	if _, err := Check(context.Background(), adder(2), adder(3), DefaultOptions()); err == nil {
		t.Fatal("expected interface mismatch error")
	}
}

func TestBudgetUndecided(t *testing.T) {
	// A hard miter: two structurally very different 24-bit adders with a
	// budget of 0 conflicts can at most be decided by pure propagation.
	opt := DefaultOptions()
	opt.SimWords = 0
	opt.Budget.Conflicts = -1 // propagation-only: exhaust immediately
	r, err := Check(context.Background(), adder(24), adderAnd(24), opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decided && !r.Equivalent {
		t.Fatal("budget-limited check returned a wrong refutation")
	}
}

func TestLitsEquivalent(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	x1 := g.Xor(a, b)
	x2 := g.XorAnd(a, b)
	o := g.Or(a, b)
	g.AddOutput(x1, "")
	eq, dec := LitsEquivalent(context.Background(), g, x1, x2, -1)
	if !dec || !eq {
		t.Fatal("xor forms should be equivalent")
	}
	eq, dec = LitsEquivalent(context.Background(), g, x1, o, -1)
	if !dec || eq {
		t.Fatal("xor and or should differ")
	}
	eq, dec = LitsEquivalent(context.Background(), g, x1, x2.Not(), -1)
	if !dec || eq {
		t.Fatal("literal and its complement cannot be equivalent")
	}
}

func TestFindEquivalentNode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// specG computes f = (a&b)^c ; g contains an equivalent node buried in
	// other logic, built differently.
	specG := aig.New()
	sa := specG.AddInput("a")
	sb := specG.AddInput("b")
	sc := specG.AddInput("c")
	spec := specG.Xor(specG.And(sa, sb), sc)
	specG.AddOutput(spec, "f")

	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	// Same function via mux decomposition: if c then !(a&b) else (a&b).
	ab := g.And(a, b)
	target := g.Mux(c, ab.Not(), ab)
	noise := g.Maj(a, b.Not(), c)
	g.AddOutput(g.And(target, noise.Not()).Not(), "z")
	g.AddOutput(noise, "y")

	got, ok := FindEquivalentNode(context.Background(), g, specG, spec, FindOptions{SimWords: 4, Seed: 7})
	if !ok {
		t.Fatal("equivalent node not found")
	}
	// Verify the find by exhaustive evaluation.
	for m := 0; m < 8; m++ {
		pat := []bool{m&1 == 1, m>>1&1 == 1, m>>2&1 == 1}
		gg := g.Copy()
		gg.AddOutput(got, "probe")
		probe := gg.Eval(pat)[2]
		want := (pat[0] && pat[1]) != pat[2]
		if probe != want {
			t.Fatalf("found literal wrong at %v", pat)
		}
	}
	// Negative case: no node computes parity of all three inputs here.
	spec2G := aig.New()
	p := spec2G.Xor(spec2G.Xor(spec2G.AddInput("a"), spec2G.AddInput("b")), spec2G.AddInput("c"))
	spec2G.AddOutput(p, "f")
	if _, ok := FindEquivalentNode(context.Background(), g, spec2G, p, FindOptions{SimWords: 4, Seed: rng.Int63()}); ok {
		t.Fatal("found a node that should not exist")
	}
}
