package aig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if ConstFalse.Var() != 0 || ConstTrue.Var() != 0 {
		t.Fatal("constants must live on variable 0")
	}
	if ConstFalse.Not() != ConstTrue || ConstTrue.Not() != ConstFalse {
		t.Fatal("constant complement broken")
	}
}

func TestLitOps(t *testing.T) {
	l := MkLit(7, true)
	if l.Var() != 7 || !l.IsCompl() {
		t.Fatalf("MkLit: got var=%d compl=%v", l.Var(), l.IsCompl())
	}
	if l.Regular() != MkLit(7, false) {
		t.Fatal("Regular broken")
	}
	if l.NotIf(false) != l || l.NotIf(true) != l.Not() {
		t.Fatal("NotIf broken")
	}
}

func TestAndSimplifications(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	cases := []struct {
		got, want Lit
		name      string
	}{
		{g.And(a, ConstFalse), ConstFalse, "a&0"},
		{g.And(ConstFalse, a), ConstFalse, "0&a"},
		{g.And(a, ConstTrue), a, "a&1"},
		{g.And(ConstTrue, a), a, "1&a"},
		{g.And(a, a), a, "a&a"},
		{g.And(a, a.Not()), ConstFalse, "a&!a"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v want %v", c.name, c.got, c.want)
		}
	}
	ab := g.And(a, b)
	if g.And(b, a) != ab {
		t.Error("And not commutative under strashing")
	}
	if g.NumNodes() != 1 {
		t.Errorf("expected 1 node, got %d", g.NumNodes())
	}
}

func TestXorCanonical(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	x := g.Xor(a, b)
	if g.Xor(b, a) != x {
		t.Error("Xor not commutative")
	}
	if g.Xor(a.Not(), b) != x.Not() {
		t.Error("Xor complement not pulled to output")
	}
	if g.Xor(a.Not(), b.Not()) != x {
		t.Error("double complement should cancel")
	}
	if g.Xor(a, a) != ConstFalse || g.Xor(a, a.Not()) != ConstTrue {
		t.Error("Xor self cases broken")
	}
	if g.Xor(a, ConstFalse) != a || g.Xor(a, ConstTrue) != a.Not() {
		t.Error("Xor constant cases broken")
	}
	if g.NumNodes() != 1 {
		t.Errorf("expected 1 XOR node, got %d", g.NumNodes())
	}
}

func TestMajCanonical(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	m := g.Maj(a, b, c)
	if g.Maj(c, a, b) != m || g.Maj(b, c, a) != m {
		t.Error("Maj not symmetric under strashing")
	}
	if g.Maj(a.Not(), b.Not(), c.Not()) != m.Not() {
		t.Error("Maj self-duality canonicalization broken")
	}
	if g.Maj(a, a, c) != a {
		t.Error("Maj(a,a,c) != a")
	}
	if g.Maj(a, a.Not(), c) != c {
		t.Error("Maj(a,!a,c) != c")
	}
	if g.Maj(ConstTrue, b, c) != g.Or(b, c) {
		t.Error("Maj(1,b,c) != b|c")
	}
	if g.Maj(ConstFalse, b, c) != g.And(b, c) {
		t.Error("Maj(0,b,c) != b&c")
	}
}

// evalLit is a reference evaluator used by the property tests.
func evalTruth(g *AIG, root Lit, n int) []bool {
	tt := make([]bool, 1<<n)
	pat := make([]bool, g.NumInputs())
	for m := 0; m < 1<<n; m++ {
		for i := 0; i < n; i++ {
			pat[i] = m>>i&1 == 1
		}
		g2 := g.Copy()
		g2.AddOutput(root, "t")
		out := g2.Eval(pat)
		tt[m] = out[len(out)-1]
	}
	return tt
}

func TestDerivedGatesTruth(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	type tc struct {
		name string
		lit  Lit
		f    func(a, b, c bool) bool
	}
	cases := []tc{
		{"or", g.Or(a, b), func(x, y, _ bool) bool { return x || y }},
		{"xorand", g.XorAnd(a, b), func(x, y, _ bool) bool { return x != y }},
		{"mux", g.Mux(a, b, c), func(x, y, z bool) bool {
			if x {
				return y
			}
			return z
		}},
		{"majand", g.MajAnd(a, b, c), func(x, y, z bool) bool {
			return (x && y) || (x && z) || (y && z)
		}},
		{"maj", g.Maj(a, b, c), func(x, y, z bool) bool {
			return (x && y) || (x && z) || (y && z)
		}},
		{"xor", g.Xor(a, b), func(x, y, _ bool) bool { return x != y }},
	}
	for _, cse := range cases {
		tt := evalTruth(g, cse.lit, 3)
		for m := 0; m < 8; m++ {
			want := cse.f(m&1 == 1, m>>1&1 == 1, m>>2&1 == 1)
			if tt[m] != want {
				t.Errorf("%s: minterm %d got %v want %v", cse.name, m, tt[m], want)
			}
		}
	}
}

func TestAndNOrN(t *testing.T) {
	g := New()
	lits := g.AddInputs(5)
	all := g.AndN(lits...)
	any := g.OrN(lits...)
	pat := make([]bool, 5)
	g.AddOutput(all, "all")
	g.AddOutput(any, "any")
	for m := 0; m < 32; m++ {
		cnt := 0
		for i := 0; i < 5; i++ {
			pat[i] = m>>i&1 == 1
			if pat[i] {
				cnt++
			}
		}
		out := g.Eval(pat)
		if out[0] != (cnt == 5) || out[1] != (cnt > 0) {
			t.Fatalf("AndN/OrN wrong at minterm %d", m)
		}
	}
	if g.AndN() != ConstTrue || g.OrN() != ConstFalse {
		t.Error("empty AndN/OrN identities wrong")
	}
}

// randomGraph builds a random extended AIG for property testing.
func randomGraph(rng *rand.Rand, nin, nnodes int) *AIG {
	g := New()
	lits := g.AddInputs(nin)
	for i := 0; i < nnodes; i++ {
		pick := func() Lit {
			l := lits[rng.Intn(len(lits))]
			if rng.Intn(2) == 0 {
				l = l.Not()
			}
			return l
		}
		var l Lit
		switch rng.Intn(4) {
		case 0, 1:
			l = g.And(pick(), pick())
		case 2:
			l = g.Xor(pick(), pick())
		default:
			l = g.Maj(pick(), pick(), pick())
		}
		lits = append(lits, l)
	}
	nout := 1 + rng.Intn(3)
	for i := 0; i < nout; i++ {
		g.AddOutput(lits[rng.Intn(len(lits))], "")
	}
	return g
}

func graphsEqual(t *testing.T, a, b *AIG, trials int, rng *rand.Rand) {
	t.Helper()
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		t.Fatalf("interface mismatch: %v vs %v", a.Stats(), b.Stats())
	}
	pat := make([]bool, a.NumInputs())
	for i := 0; i < trials; i++ {
		for j := range pat {
			pat[j] = rng.Intn(2) == 1
		}
		oa, ob := a.Eval(pat), b.Eval(pat)
		for k := range oa {
			if oa[k] != ob[k] {
				t.Fatalf("graphs differ at output %d on %v", k, pat)
			}
		}
	}
}

func TestLowerToAndEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 4+rng.Intn(5), 10+rng.Intn(40))
		low := g.LowerToAnd()
		if !low.IsPureAnd() {
			t.Fatal("LowerToAnd left extended nodes")
		}
		graphsEqual(t, g, low, 64, rng)
	}
}

func TestCleanupEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 4+rng.Intn(5), 10+rng.Intn(40))
		c := g.Cleanup()
		if c.MaxVar() > g.MaxVar() {
			t.Fatal("Cleanup grew the graph")
		}
		graphsEqual(t, g, c, 64, rng)
	}
}

func TestImportRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 5, 25)
		ng := New()
		piMap := make([]Lit, g.NumInputs())
		for i := range piMap {
			piMap[i] = ng.AddInput("")
		}
		outs := ng.Import(g, piMap)
		for _, o := range outs {
			ng.AddOutput(o, "")
		}
		graphsEqual(t, g, ng, 64, rng)
	}
}

func TestExtractConeSupport(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	_ = g.AddInput("c") // not in the cone
	d := g.AddInput("d")
	ab := g.And(a, b)
	root := g.Xor(ab, d)
	g.AddOutput(root, "f")
	cone, sup := g.ExtractCone(root)
	if len(sup) != 3 {
		t.Fatalf("support: got %v, want 3 PIs", sup)
	}
	if cone.NumInputs() != 3 || cone.NumOutputs() != 1 {
		t.Fatalf("cone interface wrong: %v", cone.Stats())
	}
	// cone(a,b,d) must equal (a&b)^d
	for m := 0; m < 8; m++ {
		pa, pb, pd := m&1 == 1, m>>1&1 == 1, m>>2&1 == 1
		out := cone.Eval([]bool{pa, pb, pd})
		if out[0] != ((pa && pb) != pd) {
			t.Fatalf("cone wrong at %d", m)
		}
	}
}

func TestTFIAndSupport(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	ab := g.And(a, b)
	abc := g.And(ab, c)
	g.AddOutput(abc, "f")
	tfi := g.TFI(abc)
	if len(tfi) != 5 {
		t.Fatalf("TFI size: got %d want 5", len(tfi))
	}
	sup := g.Support(ab)
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 1 {
		t.Fatalf("Support(ab) = %v", sup)
	}
}

func TestTFO(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	ab := g.And(a, b)
	x := g.Xor(ab, a)
	g.AddOutput(x, "f")
	tfo := g.TFO(ab.Var())
	if !tfo[ab.Var()] || !tfo[x.Var()] {
		t.Fatal("TFO missing nodes")
	}
	if tfo[a.Var()] {
		t.Fatal("TFO contains a fanin")
	}
}

func TestLevels(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	ab := g.And(a, b)
	abc := g.And(ab, c)
	g.AddOutput(abc, "f")
	lv, d := g.Levels()
	if d != 2 {
		t.Fatalf("depth: got %d want 2", d)
	}
	if lv[ab.Var()] != 1 || lv[abc.Var()] != 2 {
		t.Fatal("levels wrong")
	}
}

func TestFanoutCounts(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	ab := g.And(a, b)
	x := g.Xor(ab, a)
	g.AddOutput(x, "f")
	g.AddOutput(ab, "g")
	cnt := g.FanoutCounts()
	if cnt[a.Var()] != 2 {
		t.Errorf("fanout(a)=%d want 2", cnt[a.Var()])
	}
	if cnt[ab.Var()] != 2 {
		t.Errorf("fanout(ab)=%d want 2 (one node + one PO)", cnt[ab.Var()])
	}
}

func TestStats(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	g.AddOutput(g.Maj(g.And(a, b), g.Xor(b, c), c), "f")
	st := g.Stats()
	if st.Ands != 1 || st.Xors != 1 || st.Majs != 1 || st.Nodes() != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

// Property: strashing means building the same expression twice never adds
// nodes the second time.
func TestStrashingIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 5, 30)
		before := g.MaxVar()
		// Re-import the graph into itself over the same inputs.
		outs := g.Import(g, g.Inputs())
		for i, o := range outs {
			if o != g.Output(i) {
				return false
			}
		}
		return g.MaxVar() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Copy is independent — mutating the copy leaves the original
// untouched.
func TestCopyIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 4, 20)
	n := g.MaxVar()
	cp := g.Copy()
	x := cp.AddInput("extra")
	cp.AddOutput(cp.And(x, cp.Input(0)), "extra")
	if g.MaxVar() != n || g.NumInputs() == cp.NumInputs() {
		t.Fatal("Copy shares state with the original")
	}
}

func TestEvalPanicsOnBadPattern(t *testing.T) {
	g := New()
	g.AddInput("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong pattern length")
		}
	}()
	g.Eval([]bool{})
}

func TestAccessorsAndStrings(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	ab := g.And(a, b)
	x := g.Xor(a, b)
	m := g.Maj(a, b, ab)
	g.AddOutput(ab, "f")

	if g.Fanin(ab.Var(), 0) != a || g.Fanin(ab.Var(), 1) != b {
		t.Fatal("Fanin accessor wrong")
	}
	if s := a.String(); s != "n1" {
		t.Fatalf("lit string %q", s)
	}
	if s := a.Not().String(); s != "!n1" {
		t.Fatalf("complemented lit string %q", s)
	}
	for _, op := range []Op{OpConst, OpInput, OpAnd, OpXor, OpMaj, Op(99)} {
		if op.String() == "" {
			t.Fatal("empty op string")
		}
	}
	if idx, ok := g.InputIndex(a.Var()); !ok || idx != 0 {
		t.Fatal("InputIndex wrong for input")
	}
	if _, ok := g.InputIndex(ab.Var()); ok {
		t.Fatal("InputIndex accepted a logic node")
	}
	g.SetInputName(1, "bee")
	if g.InputName(1) != "bee" {
		t.Fatal("SetInputName failed")
	}
	g.SetOutputName(0, "eff")
	if g.OutputName(0) != "eff" {
		t.Fatal("SetOutputName failed")
	}
	g.SetOutput(0, x)
	if g.Output(0) != x {
		t.Fatal("SetOutput failed")
	}
	if g.Stats().String() == "" {
		t.Fatal("stats string empty")
	}
	if g.IsPureAnd() {
		t.Fatal("graph with XOR/MAJ is not pure AND")
	}
	g2 := New()
	p := g2.AddInput("p")
	q := g2.AddInput("q")
	g2.AddOutput(g2.And(p, q), "r")
	if !g2.IsPureAnd() {
		t.Fatal("pure AND graph misclassified")
	}
	_ = m
}

func TestImportPanicsOnBadMap(t *testing.T) {
	src := New()
	a := src.AddInput("a")
	src.AddOutput(a, "f")
	dst := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short piMap")
		}
	}()
	dst.Import(src, nil)
}

func TestImportConePanicsOnOutOfRangeLit(t *testing.T) {
	src := New()
	a := src.AddInput("a")
	b := src.AddInput("b")
	src.AddOutput(src.And(a, b), "f")
	dst := New()
	x := dst.AddInput("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range literal")
		}
	}()
	dst.Import(src, []Lit{x, MkLit(999, false)})
}
