package attacks

import (
	"context"
	"math"
	"sort"
	"time"

	"obfuslock/internal/aig"
	"obfuslock/internal/cec"
	"obfuslock/internal/cnf"
	"obfuslock/internal/exec"
	"obfuslock/internal/locking"
	"obfuslock/internal/sat"
	"obfuslock/internal/sim"
	"obfuslock/internal/simp"
)

// SPSResult reports the signal-probability-skewness analysis.
type SPSResult struct {
	// Candidates are internal node variables ranked by skewness (most
	// skewed first).
	Candidates []uint32
	// SkewBits are the matching skewness values in bits.
	SkewBits []float64
	// All maps every variable to its skewness bits (Fig. 4 raw data).
	All []float64
}

// SPS runs the signal probability skewness attack (Yasin et al.): simulate
// the locked netlist under random inputs and random keys and rank internal
// nodes by skewness; single-flip defences expose their flip node as the
// extreme outlier.
func SPS(l *locking.Locked, words int, seed int64, topK int) SPSResult {
	v := sim.RunRandom(l.Enc, words, seed)
	type entry struct {
		v    uint32
		bits float64
	}
	all := make([]float64, l.Enc.MaxVar()+1)
	var entries []entry
	for n := uint32(1); n <= l.Enc.MaxVar(); n++ {
		p := v.OnesFraction(aig.MkLit(n, false))
		b := skewBits(p)
		all[n] = b
		if l.Enc.Op(n) == aig.OpInput {
			continue
		}
		entries = append(entries, entry{n, b})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].bits > entries[j].bits })
	if len(entries) > topK {
		entries = entries[:topK]
	}
	res := SPSResult{All: all}
	for _, e := range entries {
		res.Candidates = append(res.Candidates, e.v)
		res.SkewBits = append(res.SkewBits, e.bits)
	}
	return res
}

func skewBits(p float64) float64 {
	h := math.Min(p, 1-p)
	if h <= 0 {
		return math.Inf(1)
	}
	return -math.Log2(h)
}

// replaceNodes rebuilds g with each variable in repl replaced by the given
// constant. All replacements refer to variables of g (one pass, so several
// nodes can be pinned at once).
func replaceNodes(g *aig.AIG, repl map[uint32]bool) *aig.AIG {
	ng := aig.New()
	ng.Name = g.Name
	m := make([]aig.Lit, g.MaxVar()+1)
	m[0] = aig.ConstFalse
	constOf := func(val bool) aig.Lit {
		if val {
			return aig.ConstTrue
		}
		return aig.ConstFalse
	}
	for i := 0; i < g.NumInputs(); i++ {
		v := g.InputVar(i)
		m[v] = ng.AddInput(g.InputName(i))
		if val, ok := repl[v]; ok {
			m[v] = constOf(val)
		}
	}
	mapped := func(l aig.Lit) aig.Lit { return m[l.Var()].NotIf(l.IsCompl()) }
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if g.Op(v) == aig.OpInput {
			continue
		}
		fan := g.Fanins(v)
		var nl aig.Lit
		switch g.Op(v) {
		case aig.OpAnd:
			nl = ng.And(mapped(fan[0]), mapped(fan[1]))
		case aig.OpXor:
			nl = ng.Xor(mapped(fan[0]), mapped(fan[1]))
		case aig.OpMaj:
			nl = ng.Maj(mapped(fan[0]), mapped(fan[1]), mapped(fan[2]))
		}
		if val, ok := repl[v]; ok {
			nl = constOf(val)
		}
		m[v] = nl
	}
	for i := 0; i < g.NumOutputs(); i++ {
		ng.AddOutput(mapped(g.Output(i)), g.OutputName(i))
	}
	return ng
}

// replaceNode rebuilds g with a single variable replaced by a constant.
func replaceNode(g *aig.AIG, target uint32, val bool) *aig.AIG {
	return replaceNodes(g, map[uint32]bool{target: val})
}

// RemovalResult reports a removal attack outcome.
type RemovalResult struct {
	Success  bool
	Node     uint32
	Constant bool
	Tried    int
	Runtime  time.Duration
}

// Removal runs the removal attack: take the most skewed candidate nodes,
// replace each with a constant (both polarities), bind an arbitrary key,
// and check equivalence with the original. Single-flip defences fall to
// this; ObfusLock leaves no removable node.
func Removal(ctx context.Context, l *locking.Locked, orig *aig.AIG, candidates []uint32, opt cec.Options) RemovalResult {
	start := time.Now()
	res := RemovalResult{}
	anyKey := make([]bool, l.KeyBits) // all-zero wrong key
	for _, cand := range candidates {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		for _, val := range []bool{false, true} {
			res.Tried++
			mod := replaceNode(l.Enc, cand, val)
			bound := (&locking.Locked{
				Scheme: l.Scheme, Enc: mod,
				NumInputs: l.NumInputs, KeyBits: l.KeyBits, Key: anyKey,
			}).ApplyKey(anyKey)
			r, err := cec.Check(ctx, orig, bound, opt)
			if err == nil && r.Decided && r.Equivalent {
				res.Success = true
				res.Node = cand
				res.Constant = val
				res.Runtime = time.Since(start)
				return res
			}
		}
	}
	res.Runtime = time.Since(start)
	return res
}

// BypassResult reports a bypass attack outcome.
type BypassResult struct {
	// Success is true when all differing patterns were enumerated within
	// the budget (a bypass unit of that size would restore the chip).
	Success bool
	// Patterns actually enumerated.
	Patterns int
	// Exhausted is true when the pattern budget was hit (attack failed:
	// the corrupted set is too large to bypass).
	Exhausted bool
	Runtime   time.Duration
}

// Bypass runs the bypass attack (Xu et al.): pick a wrong key, enumerate
// every input pattern on which the wrongly-keyed circuit differs from the
// oracle, and wrap them with bypass logic. It fails when the differing set
// exceeds the pattern budget — ObfusLock protects all patterns by
// permutation, so the set is exponential. so controls CNF preprocessing
// of the difference miter (the enumeration blocks and reads only the
// frozen input literals, so full elimination is sound).
func Bypass(ctx context.Context, l *locking.Locked, orig *aig.AIG, wrongKey []bool, maxPatterns int, budget exec.Budget, so simp.Options) BypassResult {
	start := time.Now()
	bound := l.ApplyKey(wrongKey)
	s := sat.New()
	inputs, diff := cnf.Miter(s, orig, bound)
	s.AddClause(diff)
	s.SetBudget(budget.ConflictCap())
	s.SetContext(ctx)
	res := BypassResult{}
	if !simp.Apply(s, so, nil) {
		// No differing pattern at all: the wrong key is correct.
		res.Success = true
		res.Runtime = time.Since(start)
		return res
	}
	for res.Patterns <= maxPatterns {
		switch s.Solve() {
		case sat.Sat:
			res.Patterns++
			if res.Patterns > maxPatterns {
				res.Exhausted = true
				res.Runtime = time.Since(start)
				return res
			}
			block := make([]sat.Lit, len(inputs))
			for i, il := range inputs {
				if s.ModelValue(il) {
					block[i] = il.Not()
				} else {
					block[i] = il
				}
			}
			if !s.AddClause(block...) {
				res.Success = true
				res.Runtime = time.Since(start)
				return res
			}
		case sat.Unsat:
			res.Success = true
			res.Runtime = time.Since(start)
			return res
		default:
			res.Runtime = time.Since(start)
			return res // undecided: treat as failure
		}
	}
	res.Exhausted = true
	res.Runtime = time.Since(start)
	return res
}

// ValkyrieResult reports the perturb/restore search.
type ValkyrieResult struct {
	// FoundPair is true when constants for a (perturb, restore) node pair
	// reproduce the original circuit.
	FoundPair bool
	Perturb   uint32
	Restore   uint32
	// RestoreOnly is true when killing the restore unit alone reproduces
	// the functionality-stripped circuit (Valkyrie's first phase): the
	// attack then still needs the perturb node, which ObfusLock removes.
	RestoreOnly bool
	PairsTried  int
	Runtime     time.Duration
}

// Valkyrie runs a Valkyrie-style vulnerability assessment (Limaye et al.):
// shortlist skewed nodes, then search for a node pair whose simultaneous
// constant replacement makes the locked circuit equivalent to the oracle.
func Valkyrie(ctx context.Context, l *locking.Locked, orig *aig.AIG, shortlist int, simWords int, seed int64, opt cec.Options) ValkyrieResult {
	start := time.Now()
	res := ValkyrieResult{}
	sps := SPS(l, simWords, seed, shortlist)
	anyKey := make([]bool, l.KeyBits)
	bindAndCheck := func(mod *aig.AIG) bool {
		bound := (&locking.Locked{
			Scheme: l.Scheme, Enc: mod,
			NumInputs: l.NumInputs, KeyBits: l.KeyBits, Key: anyKey,
		}).ApplyKey(anyKey)
		r, err := cec.Check(ctx, orig, bound, opt)
		return err == nil && r.Decided && r.Equivalent
	}
	// Phase 1: restore-only (single-node) replacements.
	for _, cand := range sps.Candidates {
		for _, val := range []bool{false, true} {
			if bindAndCheck(replaceNode(l.Enc, cand, val)) {
				res.RestoreOnly = true
				res.Restore = cand
				// A single node sufficed — report it as a full break.
				res.FoundPair = true
				res.Perturb = cand
				res.Runtime = time.Since(start)
				return res
			}
		}
	}
	// Phase 2: pairs.
	for i, p := range sps.Candidates {
		for j, r := range sps.Candidates {
			if i == j || (ctx != nil && ctx.Err() != nil) {
				continue
			}
			for _, pv := range []bool{false, true} {
				for _, rv := range []bool{false, true} {
					res.PairsTried++
					mod := replaceNodes(l.Enc, map[uint32]bool{p: pv, r: rv})
					if bindAndCheck(mod) {
						res.FoundPair = true
						res.Perturb = p
						res.Restore = r
						res.Runtime = time.Since(start)
						return res
					}
				}
			}
		}
	}
	res.Runtime = time.Since(start)
	return res
}

// ClassifierResult ranks nodes by structural anomaly.
type ClassifierResult struct {
	// Ranked lists node variables, most anomalous first.
	Ranked []uint32
	// Scores are the matching anomaly scores (z-score norms).
	Scores []float64
}

// StructuralClassifier is the stand-in for the published learning-based
// attacks (GNNUnlock, OMLA, SAIL): it extracts local structural features —
// gate-type histogram of the 2-hop fanin neighbourhood, fanout count,
// level, and key-input density of the cone — and ranks nodes by Mahalanobis
// -like anomaly score. A locking scheme with deterministic local structure
// places its critical nodes at the top.
func StructuralClassifier(l *locking.Locked, topK int) ClassifierResult {
	g := l.Enc
	lv, _ := g.Levels()
	fanout := g.FanoutCounts()
	keyVar := make(map[uint32]bool, l.KeyBits)
	for i := 0; i < l.KeyBits; i++ {
		keyVar[g.InputVar(l.NumInputs+i)] = true
	}
	const nf = 8
	var feats [][nf]float64
	var vars []uint32
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if g.Op(v) == aig.OpInput {
			continue
		}
		var f [nf]float64
		// 2-hop fanin gate-type histogram and inverter count.
		visit := []aig.Lit{aig.MkLit(v, false)}
		for hop := 0; hop < 2; hop++ {
			var next []aig.Lit
			for _, u := range visit {
				for _, fi := range g.Fanins(u.Var()) {
					switch g.Op(fi.Var()) {
					case aig.OpAnd:
						f[0]++
					case aig.OpXor:
						f[1]++
					case aig.OpMaj:
						f[2]++
					case aig.OpInput:
						f[3]++
						if keyVar[fi.Var()] {
							f[4]++
						}
					}
					if fi.IsCompl() {
						f[5]++
					}
					next = append(next, fi)
				}
			}
			visit = next
		}
		f[6] = float64(fanout[v])
		f[7] = float64(lv[v])
		feats = append(feats, f)
		vars = append(vars, v)
	}
	if len(feats) == 0 {
		return ClassifierResult{}
	}
	var mean, std [nf]float64
	for _, f := range feats {
		for i := range f {
			mean[i] += f[i]
		}
	}
	for i := range mean {
		mean[i] /= float64(len(feats))
	}
	for _, f := range feats {
		for i := range f {
			d := f[i] - mean[i]
			std[i] += d * d
		}
	}
	for i := range std {
		std[i] = math.Sqrt(std[i]/float64(len(feats))) + 1e-9
	}
	type scored struct {
		v uint32
		s float64
	}
	sc := make([]scored, len(feats))
	for i, f := range feats {
		var norm float64
		for j := range f {
			z := (f[j] - mean[j]) / std[j]
			norm += z * z
		}
		sc[i] = scored{vars[i], math.Sqrt(norm)}
	}
	sort.Slice(sc, func(i, j int) bool { return sc[i].s > sc[j].s })
	if len(sc) > topK {
		sc = sc[:topK]
	}
	res := ClassifierResult{}
	for _, e := range sc {
		res.Ranked = append(res.Ranked, e.v)
		res.Scores = append(res.Scores, e.s)
	}
	return res
}

// CriticalNodeSurvives checks whether any node of enc (keys bound to an
// arbitrary wrong key) is functionally equivalent to the given function of
// the original inputs — the paper's combinational-equivalence check that
// all critical nodes were eliminated. The search runs on one shared
// incremental solver (see cec.FindEquivalentNode).
func CriticalNodeSurvives(ctx context.Context, l *locking.Locked, specG *aig.AIG, spec aig.Lit, opt cec.FindOptions) (aig.Lit, bool) {
	anyKey := make([]bool, l.KeyBits)
	bound := l.ApplyKey(anyKey)
	return cec.FindEquivalentNode(ctx, bound, specG, spec, opt)
}
