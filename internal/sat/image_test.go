package sat

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// randomPreSearchSolver builds a solver with random clauses (including
// units, duplicates and level-0 propagation chains) but no search.
func randomPreSearchSolver(t *testing.T, seed int64) (*Solver, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := New()
	n := 8 + rng.Intn(12)
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	for i := 0; i < n/3; i++ {
		s.FreezeLit(MkLit(rng.Intn(n), false))
	}
	clauses := 3 * n
	for i := 0; i < clauses && s.ok; i++ {
		width := 1 + rng.Intn(4)
		lits := make([]Lit, width)
		for j := range lits {
			lits[j] = MkLit(rng.Intn(n), rng.Intn(2) == 1)
		}
		s.AddClause(lits...)
	}
	return s, n
}

// driveIdentically runs the same post-snapshot workload on two solvers
// and asserts identical answers, models and statistics at every step.
func driveIdentically(t *testing.T, a, b *Solver, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for step := 0; step < 6; step++ {
		width := 2 + rng.Intn(3)
		lits := make([]Lit, width)
		for j := range lits {
			lits[j] = MkLit(rng.Intn(n), rng.Intn(2) == 1)
		}
		oka := a.AddClause(lits...)
		okb := b.AddClause(lits...)
		if oka != okb {
			t.Fatalf("step %d: AddClause diverged: %v vs %v", step, oka, okb)
		}
		var assumps []Lit
		if rng.Intn(2) == 0 {
			assumps = []Lit{MkLit(rng.Intn(n), rng.Intn(2) == 1)}
		}
		sta := a.Solve(assumps...)
		stb := b.Solve(assumps...)
		if sta != stb {
			t.Fatalf("step %d: Solve diverged: %v vs %v", step, sta, stb)
		}
		if sta == Sat {
			for v := 0; v < n; v++ {
				l := MkLit(v, false)
				if a.ModelValue(l) != b.ModelValue(l) {
					t.Fatalf("step %d: model diverged at var %d", step, v)
				}
			}
		}
		if a.Stats() != b.Stats() {
			t.Fatalf("step %d: stats diverged:\n%+v\n%+v", step, a.Stats(), b.Stats())
		}
	}
}

func TestImageReplayIdentical(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		s, n := randomPreSearchSolver(t, seed)
		img := s.Export()
		if !img.Valid() {
			t.Fatalf("seed %d: exported image invalid", seed)
		}
		r := NewFromImage(img)
		if r == nil {
			t.Fatalf("seed %d: replay refused a valid image", seed)
		}
		if r.NumVars() != s.NumVars() || r.Stats() != s.Stats() {
			t.Fatalf("seed %d: replayed shape differs", seed)
		}
		driveIdentically(t, s, r, n, seed^0x5eed)
	}
}

func TestImageJSONRoundTrip(t *testing.T) {
	s, n := randomPreSearchSolver(t, 42)
	img := s.Export()
	raw, err := json.Marshal(img)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Image
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(img, &back) {
		t.Fatal("image changed across JSON round trip")
	}
	r := NewFromImage(&back)
	if r == nil {
		t.Fatal("replay refused round-tripped image")
	}
	driveIdentically(t, s, r, n, 7)
}

func TestImageReplayIndependent(t *testing.T) {
	// Mutating the replayed solver must not leak back into the image: a
	// second replay from the same image behaves like the first did.
	s, n := randomPreSearchSolver(t, 9)
	img := s.Export()
	r1 := NewFromImage(img)
	driveIdentically(t, s, r1, n, 11)
	r2 := NewFromImage(img)
	fresh := NewFromImage(img)
	driveIdentically(t, fresh, r2, n, 11)
}

// TestImageRestoredSolversConcurrent proves two solvers restored from
// the same image share no mutable state: driven concurrently with
// different workloads (one of them a parallel portfolio solve), each
// must produce exactly the answers a serially-driven twin produces.
// Run under -race this also guards the clone path SolveParallel
// depends on.
func TestImageRestoredSolversConcurrent(t *testing.T) {
	s, n := randomPreSearchSolver(t, 17)
	img := s.Export()

	type outcome struct {
		st    Status
		model []bool
	}
	drive := func(r *Solver, extra Lit, parallel bool) []outcome {
		var outs []outcome
		for step := 0; step < 4; step++ {
			var st Status
			if parallel {
				st = r.SolveParallel(context.Background(), 3, extra)
			} else {
				st = r.Solve(extra)
			}
			o := outcome{st: st}
			if st == Sat {
				o.model = r.Model()
				var block []Lit
				for v := 0; v < n; v++ {
					block = append(block, MkLit(v, o.model[v]))
				}
				r.AddClause(block...)
			}
			outs = append(outs, o)
			if st != Sat {
				break
			}
		}
		return outs
	}

	litA, litB := MkLit(0, false), MkLit(1, true)
	// Serial references first.
	wantA := drive(NewFromImage(img), litA, false)
	wantB := drive(NewFromImage(img), litB, false)

	ra, rb := NewFromImage(img), NewFromImage(img)
	done := make(chan []outcome, 2)
	go func() { done <- drive(ra, litA, false) }()
	go func() { done <- drive(rb, litB, true) }()
	got1, got2 := <-done, <-done
	match := func(got, want []outcome) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].st != want[i].st || !reflect.DeepEqual(got[i].model, want[i].model) {
				return false
			}
		}
		return true
	}
	okA := match(got1, wantA) || match(got2, wantA)
	okB := match(got1, wantB) || match(got2, wantB)
	if !okA || !okB {
		t.Fatalf("concurrently driven restored solvers diverged from serial twins:\nA want %+v\nB want %+v\ngot %+v / %+v",
			wantA, wantB, got1, got2)
	}
}

func TestImageInvalid(t *testing.T) {
	var nilImg *Image
	if nilImg.Valid() {
		t.Fatal("nil image reported valid")
	}
	if NewFromImage(nilImg) != nil {
		t.Fatal("replay of nil image should fail")
	}
	// A zero-value image (what decoding "{}" yields) is the empty solver.
	empty := &Image{}
	if !empty.Valid() {
		t.Fatal("empty image should be valid")
	}
	s, _ := randomPreSearchSolver(t, 3)
	img := s.Export()
	img.Assign = img.Assign[:len(img.Assign)-1]
	if img.Valid() {
		t.Fatal("truncated image reported valid")
	}
	if NewFromImage(img) != nil {
		t.Fatal("replay of truncated image should fail")
	}
}

func TestExportPanicsAfterSearch(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.AddClause(MkLit(a, false), MkLit(b, true))
	s.AddClause(MkLit(a, true), MkLit(b, true))
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Export after search did not panic")
		}
	}()
	s.Export()
}

func TestExportPanicsAfterSimplify(t *testing.T) {
	s := New()
	for i := 0; i < 6; i++ {
		s.NewVar()
	}
	s.AddClause(MkLit(0, false), MkLit(1, false))
	s.AddClause(MkLit(1, true), MkLit(2, false))
	s.FreezeLit(MkLit(0, false))
	s.Simplify(DefaultSimpOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("Export after Simplify did not panic")
		}
	}()
	s.Export()
}
