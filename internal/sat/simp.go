package sat

// SatELite-style clause-database simplification (Eén & Biere, SAT'05;
// MiniSat-2's SimpSolver): bounded variable elimination by resolution,
// backward subsumption and self-subsuming resolution over occurrence
// lists with signature hashing, top-level unit/pure-literal reduction,
// and clause vivification by unit propagation.
//
// The simplifier works on the live incremental solver, so it must honor
// two contracts the preprocessing literature can take for granted:
//
//   - Frozen variables (Freeze/FreezeLit) are exempt from elimination.
//     Any variable later used in an assumption, read through ModelValue,
//     or mentioned by a clause added after Simplify must be frozen
//     first; violating this panics rather than corrupting the answer.
//   - Eliminated variables get their model values reconstructed
//     (extendModel) from the clauses removed at elimination time, so
//     Model/ModelValue keep working unchanged for callers that froze
//     everything they read.
//
// All simplification is deterministic: occurrence lists and queues are
// slices filled and drained in ascending clause-reference order,
// candidate variables are sorted with explicit tie-breaks, and no map
// is iterated anywhere on these paths.

import "sort"

// SimpOptions tunes Simplify. The zero value disables every technique;
// use DefaultSimpOptions for the standard configuration.
type SimpOptions struct {
	// VarElim enables bounded variable elimination by resolution.
	// Eliminating a variable is only sound for equisatisfiability:
	// enable it when every literal the caller will assume, read or
	// constrain later is frozen.
	VarElim bool
	// Subsume enables backward subsumption and self-subsuming
	// resolution. These are equivalence-preserving.
	Subsume bool
	// Vivify enables clause vivification by unit propagation
	// (equivalence-preserving: it only removes redundant literals).
	Vivify bool
	// MaxOccur skips elimination of variables occurring in more than
	// this many clauses (SatELite's "don't touch heavily shared
	// variables" guard).
	MaxOccur int
	// MaxGrowth bounds the clause-count growth per eliminated
	// variable: resolvents kept must number at most
	// removed_clauses + MaxGrowth.
	MaxGrowth int
	// MaxResolventLen aborts an elimination producing a resolvent
	// longer than this, and caps the length of clauses considered for
	// vivification.
	MaxResolventLen int
	// VivifyMaxProps bounds the unit propagations spent by one
	// vivification pass.
	VivifyMaxProps int64
	// MaxRounds bounds the subsume/eliminate fixpoint iterations.
	MaxRounds int
}

// DefaultSimpOptions returns the standard simplification configuration.
func DefaultSimpOptions() SimpOptions {
	return SimpOptions{
		VarElim:         true,
		Subsume:         true,
		Vivify:          true,
		MaxOccur:        30,
		MaxGrowth:       0,
		MaxResolventLen: 24,
		VivifyMaxProps:  300000,
		MaxRounds:       3,
	}
}

// SimpStats counts simplification work, cumulative across Simplify calls.
type SimpStats struct {
	// Rounds counts Simplify invocations.
	Rounds int64
	// ElimVars counts variables eliminated by resolution.
	ElimVars int64
	// PureVars counts the subset of ElimVars removed as pure literals
	// (all occurrences in one polarity, so elimination adds nothing).
	PureVars int64
	// FixedVars counts variables fixed at the root level during
	// simplification (top-level units discovered).
	FixedVars int64
	// SubsumedClauses counts clauses deleted by backward subsumption.
	SubsumedClauses int64
	// StrengthenedLits counts literals removed by self-subsuming
	// resolution.
	StrengthenedLits int64
	// VivifiedLits counts literals removed by vivification.
	VivifiedLits int64
	// RemovedClauses counts problem clauses removed by variable
	// elimination (their resolvents are added back).
	RemovedClauses int64
	// ResolventsAdded counts resolvent clauses added by elimination.
	ResolventsAdded int64
}

// Sub returns the per-interval delta s - prev (all counters).
func (s SimpStats) Sub(prev SimpStats) SimpStats {
	return SimpStats{
		Rounds:           s.Rounds - prev.Rounds,
		ElimVars:         s.ElimVars - prev.ElimVars,
		PureVars:         s.PureVars - prev.PureVars,
		FixedVars:        s.FixedVars - prev.FixedVars,
		SubsumedClauses:  s.SubsumedClauses - prev.SubsumedClauses,
		StrengthenedLits: s.StrengthenedLits - prev.StrengthenedLits,
		VivifiedLits:     s.VivifiedLits - prev.VivifiedLits,
		RemovedClauses:   s.RemovedClauses - prev.RemovedClauses,
		ResolventsAdded:  s.ResolventsAdded - prev.ResolventsAdded,
	}
}

// elimRecord remembers the clauses removed when a variable was
// eliminated, for model reconstruction. The literal slices are deep
// copies: clause storage is mutated and nil'd as simplification
// proceeds.
type elimRecord struct {
	v       int
	clauses [][]Lit
}

// Freeze exempts a variable from elimination. Freeze every variable
// that will later appear in an assumption, a ModelValue read, or a
// clause added after Simplify.
func (s *Solver) Freeze(v int) { s.frozen[v] = true }

// FreezeLit is Freeze on the literal's variable.
func (s *Solver) FreezeLit(l Lit) { s.frozen[l.Var()] = true }

// Frozen reports whether the variable is exempt from elimination.
func (s *Solver) Frozen(v int) bool { return s.frozen[v] }

// Eliminated reports whether the variable has been eliminated by a
// Simplify call. Its model value is reconstructed after each Sat
// answer, but it may no longer appear in assumptions or new clauses.
func (s *Solver) Eliminated(v int) bool { return s.elim[v] }

// SimpStats returns simplification counters accumulated across all
// Simplify calls.
func (s *Solver) SimpStats() SimpStats { return s.simpStats }

// Simplify reduces the clause database in place: top-level
// unit/pure-literal reduction, backward subsumption, self-subsuming
// resolution, bounded variable elimination, and clause vivification,
// per opt. It returns false when simplification proves the formula
// unsatisfiable (like AddClause). Solving continues to work afterwards:
// frozen variables keep their meaning, eliminated variables are
// reconstructed into the model.
func (s *Solver) Simplify(opt SimpOptions) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	if s.propagate() != clauseNone {
		s.ok = false
		return false
	}
	trailBase := len(s.trail)
	sp := &simplifier{s: s, opt: opt}
	ok := sp.run()
	if ok && opt.Vivify {
		ok = sp.vivifyAll()
	}
	s.simpStats.Rounds++
	s.simpStats.FixedVars += int64(len(s.trail) - trailBase)
	if !ok {
		s.ok = false
	}
	return ok
}

// simplifier is the per-Simplify working state.
type simplifier struct {
	s   *Solver
	opt SimpOptions

	// occ maps each variable to the (live) clause refs containing it in
	// either polarity, learnt clauses included. nil until buildOcc.
	occ  [][]int32
	abst []uint64 // per-clause variable signature

	queue   []int32 // subsumption work queue (clause refs)
	qh      int
	inQueue []bool

	markL   []bool  // literal-indexed scratch marks
	scratch []int32 // occurrence-list iteration copy
	resolv  []Lit   // resolvent scratch
}

// run performs the occurrence-list phases (everything but vivification)
// and leaves the solver in a consistent solving state: watches rebuilt,
// learnts list filtered, propagation queue settled.
func (sp *simplifier) run() bool {
	s := sp.s
	// Deferred-propagation protocol: from here until finish, units are
	// enqueued at level 0 but never propagated through the watch lists
	// (clause mutation would invalidate them). Clause/value consistency
	// is restored by normalize's fixpoint scans instead.
	if !sp.normalize() {
		return false
	}
	sp.buildOcc()
	sp.markL = make([]bool, 2*s.numVars)
	rounds := sp.opt.MaxRounds
	if rounds <= 0 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		changed := 0
		if sp.opt.Subsume {
			sp.queueAll()
			n, ok := sp.subsumeAll()
			if !ok {
				return false
			}
			changed += n
		}
		if sp.opt.VarElim {
			n, ok := sp.eliminateVars()
			if !ok {
				return false
			}
			changed += n
		}
		if changed == 0 {
			break
		}
	}
	return sp.finish()
}

// normalize cleans every live clause against the level-0 assignment
// until no new unit facts appear: satisfied clauses are deleted, false
// literals stripped, and clauses shrunk to units enqueue their literal.
// It returns false on a root-level conflict.
func (sp *simplifier) normalize() bool {
	s := sp.s
	for {
		pre := len(s.trail)
		for ci := range s.clauses {
			if s.clauses[ci].deleted {
				continue
			}
			if !sp.cleanClause(int32(ci)) {
				return false
			}
		}
		if len(s.trail) == pre {
			return true
		}
	}
}

// cleanClause removes literals false at level 0 and deletes the clause
// if satisfied. A clause shrunk to a unit is deleted and its literal
// enqueued (not propagated; see the deferred-propagation protocol). It
// returns false on a root-level conflict.
func (sp *simplifier) cleanClause(cref int32) bool {
	s := sp.s
	c := &s.clauses[cref]
	for _, l := range c.lits {
		if s.valueLit(l) == lTrue {
			sp.removeClause(cref)
			return true
		}
	}
	out := c.lits[:0]
	for _, l := range c.lits {
		if s.valueLit(l) == lFalse {
			sp.occRemove(l.Var(), cref)
			continue
		}
		out = append(out, l)
	}
	c.lits = out
	switch len(out) {
	case 0:
		return false
	case 1:
		l := out[0]
		sp.removeClause(cref)
		// l cannot be assigned here: true lits delete the clause above,
		// false lits were just stripped.
		s.uncheckedEnqueue(l, clauseNone)
		return true
	}
	sp.updateAbst(cref)
	return true
}

// removeClause deletes a clause and removes it from the occurrence
// lists. The learnts index is filtered later, in finish.
func (sp *simplifier) removeClause(cref int32) {
	s := sp.s
	c := &s.clauses[cref]
	if c.deleted {
		return
	}
	for _, l := range c.lits {
		sp.occRemove(l.Var(), cref)
	}
	c.deleted = true
	c.lits = nil
	if c.learnt {
		s.stats.Deleted++
	}
}

// occRemove drops one clause ref from a variable's occurrence list,
// preserving order (determinism: later iterations see a stable order).
func (sp *simplifier) occRemove(v int, cref int32) {
	if sp.occ == nil {
		return
	}
	ws := sp.occ[v]
	for i, w := range ws {
		if w == cref {
			copy(ws[i:], ws[i+1:])
			sp.occ[v] = ws[:len(ws)-1]
			return
		}
	}
}

func (sp *simplifier) buildOcc() {
	s := sp.s
	sp.occ = make([][]int32, s.numVars)
	sp.abst = make([]uint64, len(s.clauses))
	sp.inQueue = make([]bool, len(s.clauses))
	for ci := range s.clauses {
		c := &s.clauses[ci]
		if c.deleted {
			continue
		}
		for _, l := range c.lits {
			sp.occ[l.Var()] = append(sp.occ[l.Var()], int32(ci))
		}
		sp.updateAbst(int32(ci))
	}
}

// updateAbst recomputes the clause's variable signature: a 64-bit
// Bloom-style filter used to reject non-subset candidates cheaply.
func (sp *simplifier) updateAbst(cref int32) {
	if sp.abst == nil {
		return
	}
	var a uint64
	for _, l := range sp.s.clauses[cref].lits {
		a |= 1 << (uint(l.Var()) & 63)
	}
	sp.abst[cref] = a
}

func (sp *simplifier) enqueueSub(cref int32) {
	if int(cref) < len(sp.inQueue) && !sp.inQueue[cref] {
		sp.inQueue[cref] = true
		sp.queue = append(sp.queue, cref)
	}
}

// queueAll enqueues every live problem clause for backward subsumption,
// in ascending clause-ref order.
func (sp *simplifier) queueAll() {
	sp.queue = sp.queue[:0]
	sp.qh = 0
	for ci := range sp.s.clauses {
		c := &sp.s.clauses[ci]
		if c.deleted || c.learnt {
			continue
		}
		sp.inQueue[ci] = true
		sp.queue = append(sp.queue, int32(ci))
	}
}

// subsumeAll drains the subsumption queue: each queued clause C is
// checked backward against every clause D sharing C's rarest variable.
// C ⊆ D deletes D; C ⊆ D with exactly one flipped literal strengthens D
// by self-subsuming resolution (learnt D included — that only shrinks a
// redundant clause). Learnt clauses are never used as the subsuming
// side: a problem clause deleted on a learnt's authority would become
// unsound to drop in reduceDB.
func (sp *simplifier) subsumeAll() (int, bool) {
	s := sp.s
	changed := 0
	for sp.qh < len(sp.queue) {
		cref := sp.queue[sp.qh]
		sp.qh++
		sp.inQueue[cref] = false
		c := &s.clauses[cref]
		if c.deleted || c.learnt {
			continue
		}
		if !sp.cleanClause(cref) {
			return changed, false
		}
		if c.deleted {
			continue
		}
		best := c.lits[0].Var()
		for _, l := range c.lits[1:] {
			if len(sp.occ[l.Var()]) < len(sp.occ[best]) {
				best = l.Var()
			}
		}
		for _, l := range c.lits {
			sp.markL[l] = true
		}
		cl := len(c.lits)
		ca := sp.abst[cref]
		ok := true
		sp.scratch = append(sp.scratch[:0], sp.occ[best]...)
		for _, dref := range sp.scratch {
			if dref == cref {
				continue
			}
			d := &s.clauses[dref]
			if d.deleted || len(d.lits) < cl {
				continue
			}
			if ca&^sp.abst[dref] != 0 {
				continue
			}
			cnt := 0
			flips := 0
			flip := LitUndef
			for _, l := range d.lits {
				if sp.markL[l] {
					cnt++
				} else if sp.markL[l.Not()] {
					flips++
					flip = l
				}
			}
			if cnt == cl {
				sp.removeClause(dref)
				s.simpStats.SubsumedClauses++
				changed++
			} else if cnt == cl-1 && flips == 1 {
				if !sp.strengthen(dref, flip) {
					ok = false
					break
				}
				s.simpStats.StrengthenedLits++
				changed++
			}
		}
		for _, l := range c.lits {
			sp.markL[l] = false
		}
		if !ok {
			return changed, false
		}
	}
	return changed, true
}

// strengthen removes one literal from a clause (self-subsuming
// resolution or vivification) and, for problem clauses only, requeues
// it for subsumption — learnt clauses must never become the subsuming
// side. It returns false on a root-level conflict.
func (sp *simplifier) strengthen(cref int32, l Lit) bool {
	s := sp.s
	c := &s.clauses[cref]
	out := c.lits[:0]
	for _, q := range c.lits {
		if q == l {
			continue
		}
		out = append(out, q)
	}
	c.lits = out
	sp.occRemove(l.Var(), cref)
	switch len(out) {
	case 0:
		return false
	case 1:
		u := out[0]
		sp.removeClause(cref)
		switch s.valueLit(u) {
		case lTrue:
			return true
		case lFalse:
			return false
		}
		s.uncheckedEnqueue(u, clauseNone)
		return true
	}
	sp.updateAbst(cref)
	if !c.learnt {
		sp.enqueueSub(cref)
	}
	return true
}

// eliminateVars tries bounded variable elimination on every unfrozen,
// unassigned variable, cheapest occurrence count first (ties by
// variable index — deterministic).
func (sp *simplifier) eliminateVars() (int, bool) {
	s := sp.s
	var cands []int
	for v := 0; v < s.numVars; v++ {
		if s.frozen[v] || s.elim[v] || s.assign[v] != lUndef {
			continue
		}
		n := len(sp.occ[v])
		if n == 0 || n > sp.opt.MaxOccur {
			continue
		}
		cands = append(cands, v)
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if la, lb := len(sp.occ[a]), len(sp.occ[b]); la != lb {
			return la < lb
		}
		return a < b
	})
	eliminated := 0
	for _, v := range cands {
		if s.assign[v] != lUndef || s.elim[v] {
			continue
		}
		ok, did := sp.tryEliminate(v)
		if !ok {
			return eliminated, false
		}
		if did {
			eliminated++
		}
	}
	return eliminated, true
}

// tryEliminate attempts to eliminate v by resolution: it resolves every
// positive problem clause against every negative one, and commits when
// the surviving resolvents do not outnumber the removed clauses by more
// than MaxGrowth (SatELite's growth bound). Removed problem clauses are
// recorded for model reconstruction; learnt clauses mentioning v are
// simply dropped (they are redundant, and keeping them would constrain
// an eliminated variable).
func (sp *simplifier) tryEliminate(v int) (ok, did bool) {
	s := sp.s
	var pos, neg, lrnt []int32
	sp.scratch = append(sp.scratch[:0], sp.occ[v]...)
	for _, cref := range sp.scratch {
		c := &s.clauses[cref]
		if c.deleted {
			continue
		}
		if !sp.cleanClause(cref) {
			return false, false
		}
		if c.deleted {
			continue
		}
		if c.learnt {
			lrnt = append(lrnt, cref)
			continue
		}
		polNeg := false
		for _, l := range c.lits {
			if l.Var() == v {
				polNeg = l.Neg()
				break
			}
		}
		if polNeg {
			neg = append(neg, cref)
		} else {
			pos = append(pos, cref)
		}
	}
	// Cleaning can enqueue a unit on v itself; elimination of an
	// assigned variable is meaningless (normalize handles it).
	if s.assign[v] != lUndef {
		return true, false
	}
	pure := len(pos) == 0 || len(neg) == 0
	var resolvents [][]Lit
	if !pure {
		limit := len(pos) + len(neg) + sp.opt.MaxGrowth
		for _, pc := range pos {
			for _, nc := range neg {
				lits, keep := sp.resolve(pc, nc, v)
				if !keep {
					continue
				}
				if sp.opt.MaxResolventLen > 0 && len(lits) > sp.opt.MaxResolventLen {
					return true, false
				}
				resolvents = append(resolvents, lits)
				if len(resolvents) > limit {
					return true, false
				}
			}
		}
	}
	// Commit: record removed problem clauses for reconstruction, drop
	// everything touching v, add the resolvents.
	rec := elimRecord{v: v}
	for _, side := range [][]int32{pos, neg} {
		for _, cref := range side {
			rec.clauses = append(rec.clauses,
				append([]Lit(nil), s.clauses[cref].lits...))
		}
	}
	s.elimCl = append(s.elimCl, rec)
	s.elim[v] = true
	for _, side := range [][]int32{pos, neg} {
		for _, cref := range side {
			sp.removeClause(cref)
			s.simpStats.RemovedClauses++
		}
	}
	for _, cref := range lrnt {
		sp.removeClause(cref)
	}
	for _, lits := range resolvents {
		if !sp.addSimpClause(lits) {
			return false, true
		}
	}
	s.simpStats.ElimVars++
	if pure {
		s.simpStats.PureVars++
	}
	return true, true
}

// resolve computes the resolvent of a positive and a negative clause of
// v into fresh storage. keep is false when the resolvent is a
// tautology or already satisfied at level 0.
func (sp *simplifier) resolve(pc, nc int32, v int) (lits []Lit, keep bool) {
	s := sp.s
	sp.resolv = sp.resolv[:0]
	defer func() {
		for _, l := range sp.resolv {
			sp.markL[l] = false
		}
	}()
	for _, l := range s.clauses[pc].lits {
		if l.Var() == v {
			continue
		}
		switch s.valueLit(l) {
		case lTrue:
			return nil, false
		case lFalse:
			continue
		}
		if !sp.markL[l] {
			sp.markL[l] = true
			sp.resolv = append(sp.resolv, l)
		}
	}
	for _, l := range s.clauses[nc].lits {
		if l.Var() == v {
			continue
		}
		switch s.valueLit(l) {
		case lTrue:
			return nil, false
		case lFalse:
			continue
		}
		if sp.markL[l.Not()] {
			return nil, false // tautology
		}
		if !sp.markL[l] {
			sp.markL[l] = true
			sp.resolv = append(sp.resolv, l)
		}
	}
	return append([]Lit(nil), sp.resolv...), true
}

// addSimpClause inserts a resolvent as a problem clause mid-
// simplification: values are re-checked (units may have fired since the
// resolvent was built), occurrence lists and signatures are extended,
// and the clause is queued for subsumption. Watches are not touched;
// finish rebuilds them. It returns false on a root-level conflict.
func (sp *simplifier) addSimpClause(lits []Lit) bool {
	s := sp.s
	out := lits[:0]
	for _, l := range lits {
		switch s.valueLit(l) {
		case lTrue:
			return true
		case lFalse:
			continue
		}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		return false
	case 1:
		s.uncheckedEnqueue(out[0], clauseNone)
		return true
	}
	cref := int32(len(s.clauses))
	s.clauses = append(s.clauses, clause{lits: out})
	sp.abst = append(sp.abst, 0)
	sp.inQueue = append(sp.inQueue, false)
	for _, l := range out {
		sp.occ[l.Var()] = append(sp.occ[l.Var()], cref)
	}
	sp.updateAbst(cref)
	sp.enqueueSub(cref)
	s.simpStats.ResolventsAdded++
	return true
}

// finish restores the solver to a consistent solving state after the
// occurrence-list phases: a final normalize fixpoint (so no surviving
// clause mentions an assigned variable), the learnts index filtered of
// deleted refs (reduceDB dereferences lits[0] of every indexed learnt),
// stale level-0 reasons cleared, all watch lists rebuilt from scratch,
// and the propagation queue settled at the trail head.
func (sp *simplifier) finish() bool {
	s := sp.s
	if !sp.normalize() {
		return false
	}
	kept := s.learnts[:0]
	for _, ci := range s.learnts {
		if !s.clauses[ci].deleted {
			kept = append(kept, ci)
		}
	}
	s.learnts = kept
	for _, l := range s.trail {
		s.reason[l.Var()] = clauseNone
	}
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	for ci := range s.clauses {
		c := &s.clauses[ci]
		if c.deleted {
			continue
		}
		s.watch(c.lits[0], int32(ci), c.lits[1])
		s.watch(c.lits[1], int32(ci), c.lits[0])
	}
	// Every root assignment's consequences are already structural
	// (satisfied clauses deleted, false literals stripped), so there is
	// nothing left to propagate.
	s.qhead = len(s.trail)
	sp.occ = nil
	return true
}

// vivifyAll runs clause vivification over the problem clauses, after
// finish has rebuilt the watches: for clause (l1 ∨ … ∨ lk), assume
// ¬l1, ¬l2, … one temporary decision level at a time and propagate. A
// conflict or an implied-true literal proves the prefix subsumes the
// clause; an implied-false literal is redundant and dropped. The pass
// is bounded by VivifyMaxProps unit propagations.
func (sp *simplifier) vivifyAll() bool {
	s := sp.s
	if !s.ok {
		return false
	}
	budget := sp.opt.VivifyMaxProps
	if budget <= 0 {
		return true
	}
	maxLen := sp.opt.MaxResolventLen
	if maxLen <= 0 {
		maxLen = 24
	}
	start := s.stats.Propagations
	var keep []Lit
	for ci := 0; ci < len(s.clauses); ci++ {
		if s.stats.Propagations-start >= budget {
			break
		}
		c := &s.clauses[ci]
		if c.deleted || c.learnt || len(c.lits) < 2 || len(c.lits) > maxLen {
			continue
		}
		// Skip clauses touched by units discovered earlier in this
		// pass; the next Simplify round cleans them.
		touched := false
		for _, l := range c.lits {
			if s.valueLit(l) != lUndef {
				touched = true
				break
			}
		}
		if touched {
			continue
		}
		// Detach: the clause must not propagate against itself.
		sp.unwatch(c.lits[0], int32(ci))
		sp.unwatch(c.lits[1], int32(ci))
		keep = keep[:0]
		shortened := false
		done := false
		for _, l := range c.lits {
			switch s.valueLit(l) {
			case lTrue:
				keep = append(keep, l)
				shortened = len(keep) < len(c.lits)
				done = true
			case lFalse:
				shortened = true
			default:
				keep = append(keep, l)
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(l.Not(), clauseNone)
				if s.propagate() != clauseNone {
					shortened = len(keep) < len(c.lits)
					done = true
				}
			}
			if done {
				break
			}
		}
		s.cancelUntil(0)
		if !shortened || len(keep) >= len(c.lits) {
			s.watch(c.lits[0], int32(ci), c.lits[1])
			s.watch(c.lits[1], int32(ci), c.lits[0])
			continue
		}
		s.simpStats.VivifiedLits += int64(len(c.lits) - len(keep))
		if len(keep) == 1 {
			u := keep[0]
			c.deleted = true
			c.lits = nil
			if s.valueLit(u) == lUndef {
				s.uncheckedEnqueue(u, clauseNone)
			}
			if s.valueLit(u) == lFalse || s.propagate() != clauseNone {
				return false
			}
			continue
		}
		c.lits = append(c.lits[:0], keep...)
		s.watch(c.lits[0], int32(ci), c.lits[1])
		s.watch(c.lits[1], int32(ci), c.lits[0])
	}
	return true
}

// unwatch removes one clause's watcher from a literal's watch list,
// preserving order.
func (sp *simplifier) unwatch(l Lit, cref int32) {
	ws := sp.s.watches[l]
	for i := range ws {
		if ws[i].cref == cref {
			copy(ws[i:], ws[i+1:])
			sp.s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

// modelLitTrue evaluates a literal under the last model (used only by
// extendModel, where every variable already has a concrete value).
func (s *Solver) modelLitTrue(l Lit) bool {
	v := s.model[l.Var()] == lTrue
	if l.Neg() {
		return !v
	}
	return v
}

// extendModel reconstructs values for eliminated variables after a Sat
// answer. Records are processed newest-first: a clause stored when v
// was eliminated may mention variables eliminated later, whose values
// must be fixed first. Within a record, v defaults to false (which
// satisfies every ¬v clause) and flips to true only when some stored
// clause containing +v has all its other literals false; SatELite's
// elimination invariant guarantees no ¬v clause then becomes falsified.
func (s *Solver) extendModel() {
	for i := len(s.elimCl) - 1; i >= 0; i-- {
		rec := &s.elimCl[i]
		s.model[rec.v] = lFalse
		for _, cl := range rec.clauses {
			needs := true
			positive := false
			for _, l := range cl {
				if l.Var() == rec.v {
					positive = !l.Neg()
					continue
				}
				if s.modelLitTrue(l) {
					needs = false
					break
				}
			}
			if needs && positive {
				s.model[rec.v] = lTrue
				break
			}
		}
	}
}
