// Package locking defines the conventions shared by every locking scheme
// and attack in this repository: how key inputs are represented, how keys
// are applied, and how oracles are queried.
//
// # The locked-circuit convention
//
// A locked circuit is an AIG whose primary inputs are the m original
// inputs followed by KeyBits key inputs (named k0, k1, ...). Binding the
// key inputs to the correct key restores the original function. Locked
// bundles the encrypted netlist with that interface split; FromNetlist
// recovers the split from the key-input naming convention, which is the
// attacker's view of a netlist leaked without its key.
//
// # Oracles and the batching contract
//
// Oracle models the attacker's working chip: query-only access to the
// original function, with a query counter. It answers one pattern at a
// time (Query) or a whole batch in one 64-way bit-parallel simulation
// pass (QueryBatch). The two are bit-exact for the same patterns, and
// both charge one query per pattern, so serial and batched attacks are
// always compared at equal oracle query counts. Batching only changes
// how fast answers arrive, never what they are — the batched SAT-attack
// pipeline in internal/attacks leans on this to stay byte-identical
// with its serial counterpart.
//
// Oracles are not safe for concurrent use (the query counter is
// unsynchronized); racing attack variants each wrap their own Oracle
// around the shared circuit (Circuit).
package locking
