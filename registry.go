// Registries for the baseline locking schemes and the oracle-guided
// attacks. Callers select by name — CLIs and experiment sweeps route
// through these instead of hand-rolled switch statements, so adding a
// scheme or an attack is one registry entry, not N call sites.
package obfuslock

import (
	"context"
	"fmt"
	"sort"

	"obfuslock/internal/attacks"
	"obfuslock/internal/exec"
	"obfuslock/internal/lockbase"
	"obfuslock/internal/locking"
	"obfuslock/internal/service"
)

// SchemeOptions parameterizes the locking schemes. It is the package's
// single scheme-options vocabulary: LockWith takes it directly and the
// job API (JobSpec.SchemeOptions) carries the very same type over the
// wire, so an in-process call and an HTTP submission describe a lock
// identically. Each scheme reads the fields it needs and ignores the
// rest; zero values fall back to per-scheme defaults. SkewBits applies
// only to the "obfuslock" scheme accepted by RunJob.
type SchemeOptions = service.SchemeOptions

// schemeFunc adapts one baseline to the common registry signature.
type schemeFunc func(c *Circuit, opt SchemeOptions) (*Locked, error)

// schemeRegistry maps scheme names to constructors. Names are the
// lower-case identifiers the CLIs accept.
var schemeRegistry = map[string]schemeFunc{
	"rll": func(c *Circuit, opt SchemeOptions) (*Locked, error) {
		return lockbase.RLL(c, defaultInt(opt.KeyBits, 16), opt.Seed)
	},
	"sarlock": func(c *Circuit, opt SchemeOptions) (*Locked, error) {
		return lockbase.SARLock(c, defaultInt(opt.ProtWidth, 10), opt.Seed)
	},
	"antisat": func(c *Circuit, opt SchemeOptions) (*Locked, error) {
		return lockbase.AntiSAT(c, defaultInt(opt.ProtWidth, 10), opt.Seed)
	},
	"ttlock": func(c *Circuit, opt SchemeOptions) (*Locked, error) {
		return lockbase.TTLock(c, defaultInt(opt.ProtWidth, 10), opt.Seed)
	},
	"sfll-hd": func(c *Circuit, opt SchemeOptions) (*Locked, error) {
		return lockbase.SFLLHD(c, defaultInt(opt.ProtWidth, 10), opt.HammingDistance, opt.Seed)
	},
}

func defaultInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

// Schemes lists the registered baseline locking schemes, sorted by name.
// Every name is accepted by LockWith. (ObfusLock itself is not in the
// list: it is the package's Lock function, with its own Options.)
func Schemes() []string {
	names := make([]string, 0, len(schemeRegistry))
	for name := range schemeRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LockWith applies the named baseline locking scheme to the circuit.
// Unknown names report an error listing the registry. Cancelling ctx
// before the call starts aborts it; the baselines themselves are fast
// (no SAT solving) and run to completion once started.
func LockWith(ctx context.Context, name string, c *Circuit, opt SchemeOptions) (*Locked, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("obfuslock: lock %s cancelled: %w", name, err)
		}
	}
	fn, ok := schemeRegistry[name]
	if !ok {
		return nil, fmt.Errorf("obfuslock: unknown scheme %q (have %v)", name, Schemes())
	}
	return fn(c, opt)
}

// Attack is one oracle-guided key-recovery attack. Implementations are
// stateless; Run may be called concurrently with distinct oracles.
type Attack interface {
	// Name is the registry identifier ("sat", "appsat", "portfolio").
	Name() string
	// Description is a one-line summary for CLI help text.
	Description() string
	// Run attacks the locked design with query access to the oracle.
	// Cancelling ctx stops the attack within one solver progress
	// interval; opt bounds it (AttackOptions.Timeout, .MaxIterations).
	Run(ctx context.Context, l *Locked, o *Oracle, opt AttackOptions) AttackResult
}

type attackEntry struct {
	name, desc string
	run        func(ctx context.Context, l *Locked, o *Oracle, opt AttackOptions) AttackResult
}

func (a attackEntry) Name() string        { return a.name }
func (a attackEntry) Description() string { return a.desc }
func (a attackEntry) Run(ctx context.Context, l *Locked, o *Oracle, opt AttackOptions) AttackResult {
	return a.run(ctx, l, o, opt)
}

var attackRegistry = []attackEntry{
	{
		name: "sat",
		desc: "oracle-guided SAT attack (Subramanyan et al.): exact key recovery via DIPs",
		run: func(ctx context.Context, l *Locked, o *Oracle, opt AttackOptions) AttackResult {
			return attacks.SATAttack(ctx, l, o, opt)
		},
	},
	{
		name: "appsat",
		desc: "approximate SAT attack (Shamsi et al.): capped DIP loop with random-query settling",
		run: func(ctx context.Context, l *Locked, o *Oracle, opt AttackOptions) AttackResult {
			return attacks.AppSAT(ctx, l, o, opt)
		},
	},
	{
		name: "portfolio",
		desc: "race SAT and AppSAT (plus a reseeded AppSAT); first verified key wins",
		run: func(ctx context.Context, l *Locked, o *Oracle, opt AttackOptions) AttackResult {
			orig := o.Circuit()
			appopt := opt
			appopt.Seed = exec.DeriveSeed(opt.Seed, 1)
			r := attacks.Portfolio(ctx, []attacks.PortfolioVariant{
				{Name: "sat", Attack: "sat", Locked: l, Oracle: locking.NewOracle(orig), Orig: orig, Opt: opt},
				{Name: "appsat", Attack: "appsat", Locked: l, Oracle: locking.NewOracle(orig), Orig: orig, Opt: opt},
				{Name: "appsat-r2", Attack: "appsat", Locked: l, Oracle: locking.NewOracle(orig), Orig: orig, Opt: appopt},
			}, opt.Trace)
			return AttackResult{Key: r.Key, Exact: r.Key != nil, Runtime: r.Runtime}
		},
	},
}

// Attacks lists the registered oracle-guided attacks in registry order.
func Attacks() []Attack {
	out := make([]Attack, len(attackRegistry))
	for i, a := range attackRegistry {
		out[i] = a
	}
	return out
}

// AttackNamed returns the registered attack with the given name.
func AttackNamed(name string) (Attack, bool) {
	for _, a := range attackRegistry {
		if a.name == name {
			return a, true
		}
	}
	return nil, false
}
