// The job API: one versioned spec type drives every pipeline in the
// package — locking (ObfusLock and the baselines), the oracle-guided
// attacks, equivalence checking, model counting and skewness sampling.
// RunJob executes a spec in-process; NewJobRunner adapts the same
// execution to the service layer so obfuslockd serves byte-identical
// results over HTTP. See internal/service for the wire schema and the
// daemon's scheduler/admission model.
package obfuslock

import (
	"context"
	"math"
	"strings"
	"time"

	"obfuslock/internal/count"
	"obfuslock/internal/locking"
	"obfuslock/internal/obs"
	"obfuslock/internal/service"
	"obfuslock/internal/skew"
)

// JobSpec is one versioned job submission ("obfuslock-job/v1"): the body
// of the daemon's POST /v1/jobs and the argument of RunJob. Circuits
// travel as .bench text.
type JobSpec = service.JobSpec

// JobResult is the versioned outcome ("obfuslock-result/v1"). It carries
// no wall-clock fields: equal specs produce byte-identical encodings
// whether run serially or under a loaded daemon.
type JobResult = service.JobResult

// JobError is the structured error of the job API; its Code is stable
// and maps to an HTTP status in the daemon.
type JobError = service.Error

// JobBudget is the wire form of an execution Budget (integer
// milliseconds, conflict cap, SAT portfolio width).
type JobBudget = service.Budget

// JobAttackOptions is the serializable subset of AttackOptions: the
// fields that shape an attack transcript, none of the runtime handles.
type JobAttackOptions = service.AttackOptions

// JobRunner executes job specs for a service.Server.
type JobRunner = service.Runner

// JobSchemaVersion is the job-spec schema RunJob accepts.
const JobSchemaVersion = service.SchemaVersion

// JobResultSchema is the schema stamped on every JobResult.
const JobResultSchema = service.ResultSchema

// JobKinds lists the accepted JobSpec kinds.
func JobKinds() []string { return service.Kinds() }

// JobSchemes lists the scheme names accepted by lock jobs: "obfuslock"
// itself plus every registered baseline.
func JobSchemes() []string { return append([]string{"obfuslock"}, Schemes()...) }

// JobRuntime carries the per-process handles a job execution may use but
// that never ride the wire: a tracer for progress spans, a shared result
// cache, and the CNF preprocessing configuration. The zero value is
// valid (no tracing, no cache, default preprocessing).
type JobRuntime struct {
	// Trace receives the job's span/event/metric stream (nil: none).
	// Under NewJobRunner the service supplies a per-job tracer instead
	// and this field is ignored.
	Trace *Tracer
	// Cache memoizes SAT-backed results across jobs (nil: disabled).
	// Sharing one cache across concurrent jobs is sound: results are
	// byte-identical with the cache on, off, cold or warm.
	Cache *Cache
	// Simp configures CNF preprocessing (zero value: enabled).
	Simp SimpOptions
}

// NewJobRunner adapts RunJob to the service.Runner interface. The
// runtime's cache and preprocessing configuration are shared across all
// jobs; the tracer is per-job, supplied by the service (rt.Trace is
// ignored).
func NewJobRunner(rt JobRuntime) JobRunner {
	return service.RunnerFunc(func(ctx context.Context, spec JobSpec, tr *obs.Tracer) (JobResult, *JobError) {
		rt := rt
		rt.Trace = tr
		return runJob(ctx, spec, rt)
	})
}

// RunJob executes one job spec in-process and returns its versioned
// result. It is the exact execution path of the obfuslockd daemon — the
// loadgen soak asserts the two produce byte-identical result encodings —
// so it doubles as the reference implementation for clients that want
// job semantics without a server. The returned error, when non-nil, is
// always a *JobError.
func RunJob(ctx context.Context, spec JobSpec, rt JobRuntime) (JobResult, error) {
	res, jerr := runJob(ctx, spec, rt)
	if jerr != nil {
		return res, jerr
	}
	return res, nil
}

func runJob(ctx context.Context, spec JobSpec, rt JobRuntime) (JobResult, *JobError) {
	if ctx == nil {
		ctx = context.Background()
	}
	if jerr := spec.Validate(); jerr != nil {
		return JobResult{}, jerr
	}
	var budget JobBudget
	if spec.Budget != nil {
		budget = *spec.Budget
	}
	res := JobResult{Schema: JobResultSchema, Kind: spec.Kind}
	switch spec.Kind {
	case service.KindLock:
		return runLockJob(ctx, spec, rt, res)
	case service.KindAttack:
		return runAttackJob(ctx, spec, rt, budget, res)
	case service.KindCEC:
		return runCECJob(ctx, spec, rt, budget, res)
	case service.KindCount:
		return runCountJob(ctx, spec, rt, budget, res)
	case service.KindSample:
		return runSampleJob(ctx, spec, rt, res)
	default:
		return res, service.Errorf(service.CodeBadRequest, "unknown kind %q", spec.Kind)
	}
}

func runLockJob(ctx context.Context, spec JobSpec, rt JobRuntime, res JobResult) (JobResult, *JobError) {
	c, jerr := parseBench(spec.Circuit, "circuit")
	if jerr != nil {
		return res, jerr
	}
	var so SchemeOptions
	if spec.SchemeOptions != nil {
		so = *spec.SchemeOptions
	}
	var locked *Locked
	if spec.Scheme == "obfuslock" {
		opt := DefaultOptions()
		if so.SkewBits > 0 {
			opt.TargetSkewBits = so.SkewBits
		}
		opt.Seed = so.Seed
		opt.Trace = rt.Trace
		opt.Simp = rt.Simp
		opt.Cache = rt.Cache
		r, err := LockContext(ctx, c, opt)
		if err != nil {
			return res, lockErr(ctx, err)
		}
		locked = r.Locked
	} else {
		l, err := LockWith(ctx, spec.Scheme, c, so)
		if err != nil {
			return res, service.Errorf(service.CodeBadRequest, "%v", err)
		}
		locked = l
	}
	enc, jerr := benchText(locked.Enc)
	if jerr != nil {
		return res, jerr
	}
	res.Scheme = spec.Scheme
	res.Locked = enc
	res.Key = keyString(locked.Key)
	res.KeyBits = locked.KeyBits
	return res, nil
}

func runAttackJob(ctx context.Context, spec JobSpec, rt JobRuntime, budget JobBudget, res JobResult) (JobResult, *JobError) {
	enc, jerr := parseBench(spec.Circuit, "circuit")
	if jerr != nil {
		return res, jerr
	}
	orig, jerr := parseBench(spec.Oracle, "oracle")
	if jerr != nil {
		return res, jerr
	}
	locked, err := locking.FromNetlist(enc, "unknown")
	if err != nil {
		return res, service.Errorf(service.CodeBadRequest, "circuit is not a locked netlist: %v", err)
	}
	if locked.NumInputs != orig.NumInputs() {
		return res, service.Errorf(service.CodeBadRequest,
			"oracle has %d inputs, locked design expects %d", orig.NumInputs(), locked.NumInputs)
	}
	a, ok := AttackNamed(spec.Attack)
	if !ok {
		return res, service.Errorf(service.CodeBadRequest, "unknown attack %q", spec.Attack)
	}
	opt := DefaultAttackOptions()
	if ao := spec.AttackOptions; ao != nil {
		if ao.MaxIterations > 0 {
			opt.MaxIterations = ao.MaxIterations
		}
		opt.Seed = ao.Seed
		if ao.DIPBatch > 0 {
			opt.DIPBatch = ao.DIPBatch
		}
		if ao.ReinforceEvery > 0 {
			opt.ReinforceEvery = ao.ReinforceEvery
		}
		if ao.RandomQueries > 0 {
			opt.RandomQueries = ao.RandomQueries
		}
	}
	opt.Timeout = time.Duration(budget.TimeoutMS) * time.Millisecond
	opt.SatWorkers = budget.SatWorkers
	opt.Trace = rt.Trace
	opt.Simp = rt.Simp
	opt.Cache = rt.Cache
	r := a.Run(ctx, locked, NewOracle(orig), opt)
	res.Attack = spec.Attack
	res.Key = keyString(r.Key)
	res.KeyBits = locked.KeyBits
	res.Exact = r.Exact
	res.TimedOut = r.TimedOut
	res.Iterations = r.Iterations
	res.Queries = r.Queries
	return res, nil
}

func runCECJob(ctx context.Context, spec JobSpec, rt JobRuntime, budget JobBudget, res JobResult) (JobResult, *JobError) {
	a, jerr := parseBench(spec.Circuit, "circuit")
	if jerr != nil {
		return res, jerr
	}
	b, jerr := parseBench(spec.Oracle, "oracle")
	if jerr != nil {
		return res, jerr
	}
	opt := SweepCECOptions()
	if spec.Sweep != nil && !*spec.Sweep {
		opt = DefaultCECOptions()
	}
	if spec.Seed != 0 {
		opt.Seed = spec.Seed
	}
	opt.Budget = budget.Exec()
	opt.Trace = rt.Trace
	opt.Simp = rt.Simp
	opt.Cache = rt.Cache
	r, err := CheckEquivalent(ctx, a, b, opt)
	if err != nil {
		return res, service.Errorf(service.CodeBadRequest, "%v", err)
	}
	decided := r.Decided
	res.Decided = &decided
	if decided {
		eq := r.Equivalent
		res.Equivalent = &eq
	}
	return res, nil
}

func runCountJob(ctx context.Context, spec JobSpec, rt JobRuntime, budget JobBudget, res JobResult) (JobResult, *JobError) {
	c, jerr := parseBench(spec.Circuit, "circuit")
	if jerr != nil {
		return res, jerr
	}
	if jerr := checkOutput(c, spec.Output); jerr != nil {
		return res, jerr
	}
	opt := count.DefaultOptions()
	if spec.Seed != 0 {
		opt.Seed = spec.Seed
	}
	if spec.Budget != nil {
		opt.Budget = budget.Exec()
	}
	opt.Trace = rt.Trace
	opt.Simp = rt.Simp
	opt.Cache = rt.Cache
	r := count.Models(ctx, c, c.Output(spec.Output), opt)
	decided := r.Decided
	res.Decided = &decided
	if decided {
		if math.IsInf(r.Log2Count, -1) {
			res.CountZero = true
		} else {
			v := r.Log2Count
			res.Log2Count = &v
		}
		res.ExactCount = r.Exact
	}
	return res, nil
}

func runSampleJob(ctx context.Context, spec JobSpec, rt JobRuntime, res JobResult) (JobResult, *JobError) {
	c, jerr := parseBench(spec.Circuit, "circuit")
	if jerr != nil {
		return res, jerr
	}
	if jerr := checkOutput(c, spec.Output); jerr != nil {
		return res, jerr
	}
	if err := ctx.Err(); err != nil {
		return res, service.Errorf(service.CodeCancelled, "%v", err)
	}
	opt := skew.DefaultSplittingOptions()
	if spec.Seed != 0 {
		opt.Seed = spec.Seed
	}
	opt.Simp = rt.Simp
	opt.Cache = rt.Cache
	bits := skew.SplittingBits(c, c.Output(spec.Output), opt)
	res.SkewBits = &bits
	return res, nil
}

// lockErr classifies a core.Lock failure: a cancelled context is the
// client's doing, anything else is a failed job.
func lockErr(ctx context.Context, err error) *JobError {
	if ctx.Err() != nil {
		return service.Errorf(service.CodeCancelled, "%v", err)
	}
	return service.Errorf(service.CodeFailed, "%v", err)
}

func parseBench(text, what string) (*Circuit, *JobError) {
	c, err := ReadBench(strings.NewReader(text))
	if err != nil {
		return nil, service.Errorf(service.CodeBadRequest, "%s: %v", what, err)
	}
	return c, nil
}

func benchText(c *Circuit) (string, *JobError) {
	var sb strings.Builder
	if err := WriteBench(&sb, c); err != nil {
		return "", service.Errorf(service.CodeFailed, "serializing netlist: %v", err)
	}
	return sb.String(), nil
}

func checkOutput(c *Circuit, i int) *JobError {
	if i < 0 || i >= c.NumOutputs() {
		return service.Errorf(service.CodeBadRequest,
			"output index %d out of range (circuit has %d outputs)", i, c.NumOutputs())
	}
	return nil
}

// keyString renders a key as a 0/1 string, k0 first (empty for nil).
func keyString(key []bool) string {
	if key == nil {
		return ""
	}
	var sb strings.Builder
	sb.Grow(len(key))
	for _, b := range key {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
