module obfuslock

go 1.22
