package sat

import (
	"context"
	"time"

	"obfuslock/internal/exec"
)

// Parallel portfolio solving. SolveParallel races the solver's own
// search (worker 0, the "parent") against workers-1 diversified clones,
// synchronizing at conflict-counted epochs where low-LBD learnts are
// exchanged in fixed worker-index order. Everything the caller can
// observe — status, model, and therefore every artifact derived from
// them downstream — is byte-identical at any worker count on any
// machine:
//
//   - The parent runs the exact search Solve would run: epoch slicing
//     resumes its restart schedule mid-round (see parRun), and the
//     parent exports learnts but never imports any, so its trajectory —
//     and in particular any model it finds — is the sequential one.
//   - Helpers can only win with Unsat, which carries no witness:
//     adopting a helper's refutation changes when the call returns,
//     never what it returns. A helper that answers Sat simply retires;
//     the parent keeps searching for the canonical model.
//   - Which clauses a helper imports at epoch k depends only on the
//     formula and the worker count (every worker's epoch-(k-1) exports,
//     merged by worker index), never on goroutine scheduling.
//
// The practical consequence: parallelism accelerates refutations (the
// hard-miter UNSAT proofs that dominate attack termination, CEC and
// fraiging) and leaves satisfiable answers bit-for-bit identical to the
// sequential solver at a modest clone cost.

const (
	// parEpochConflicts is the per-worker conflict quantum between
	// barriers: long enough to amortize synchronization, short enough
	// that an early helper refutation is adopted promptly.
	parEpochConflicts = 2048
	// parShareLBD caps the quality of exported learnts ("glue" clauses,
	// in glucose terms).
	parShareLBD = 3
	// parShareCap bounds one worker's exports per epoch; overflow is
	// dropped deterministically (export order is search order).
	parShareCap = 512
	// parMinClauses is the formula size floor below which the clone and
	// barrier overhead cannot pay off and SolveParallel degrades to
	// Solve.
	parMinClauses = 256
	// parSeedMaster derives each helper's polarity noise via
	// exec.DeriveSeed(parSeedMaster, workerIndex); a compile-time
	// constant, so diversification is a property of the worker index
	// alone.
	parSeedMaster = 0x0b5f510c
)

// shareBuf collects the clauses a worker exports during one epoch. The
// solver's search loop appends into it at learn time (solver.go); the
// coordinator swaps it out at each barrier via take.
type shareBuf struct {
	maxLBD  int
	cap     int
	lits    []Lit
	lens    []int32
	lbds    []int32
	dropped int64
}

func (b *shareBuf) add(lits []Lit, lbd int) {
	if lbd > b.maxLBD {
		return
	}
	if len(b.lens) >= b.cap {
		b.dropped++
		return
	}
	b.lits = append(b.lits, lits...)
	b.lens = append(b.lens, int32(len(lits)))
	b.lbds = append(b.lbds, int32(lbd))
}

// take hands the accumulated exports to the coordinator and resets the
// buffer for the next epoch.
func (b *shareBuf) take() shareSnap {
	snap := shareSnap{lits: b.lits, lens: b.lens, lbds: b.lbds}
	b.lits, b.lens, b.lbds = nil, nil, nil
	return snap
}

// shareSnap is one worker's frozen epoch exports.
type shareSnap struct {
	lits []Lit
	lens []int32
	lbds []int32
}

func (sn shareSnap) count() int { return len(sn.lens) }

// parRun resumes a restart schedule across epoch slices. Solve's loop
// is `search(quota(round))` with a restart between rounds; parRun runs
// the same schedule but can pause at an epoch boundary mid-round and
// continue later. The stopping points match the unsliced run exactly:
// search only returns at propagation-fixpoint no-conflict states, and a
// round sliced as c1+c2+… ends at the first fixpoint whose cumulative
// conflict count reaches the round quota — the same fixpoint the single
// search(quota) call stops at.
type parRun struct {
	s       *Solver
	assumps []Lit
	round   int64
	quota   int64 // conflicts left in the current round
	lubyU   int64 // Luby restart unit (0: geometric)
	geom    int64 // next geometric quota (0: Luby)
}

// newParRun wraps a solver in the parent schedule (Luby, unit 100 —
// exactly Solve's).
func newParRun(s *Solver, assumps []Lit) *parRun {
	return &parRun{s: s, assumps: assumps, lubyU: 100}
}

func (r *parRun) nextQuota() int64 {
	r.round++
	if r.geom > 0 {
		q := r.geom
		r.geom += r.geom / 2
		return q
	}
	return r.lubyU * luby(r.round)
}

// step advances the schedule by up to budget conflicts. Unknown with
// s.exhausted unset means the epoch slice completed and the run can be
// resumed; any other outcome is final for this worker.
func (r *parRun) step(budget int64) Status {
	s := r.s
	used := int64(0)
	for {
		if r.quota <= 0 {
			if r.round > 0 {
				s.stats.Restarts++
				s.cancelUntil(0)
			}
			r.quota = r.nextQuota()
		}
		c := r.quota
		if rem := budget - used; rem < c {
			c = rem
		}
		before := s.stats.Conflicts
		st := s.search(c, r.assumps)
		d := s.stats.Conflicts - before
		used += d
		r.quota -= d
		if st != Unknown {
			return st
		}
		if s.exhausted {
			return Unknown
		}
		if s.cancelled() {
			s.exhausted = true
			return Unknown
		}
		if used >= budget {
			return Unknown
		}
	}
}

// parProfile diversifies one helper: optional random branching
// polarity, a restart policy (fast/slow Luby or geometric) and a
// learnt-database reduction aggressiveness. All parameters derive from
// the worker index alone.
type parProfile struct {
	seed   int64 // random-polarity seed; 0 keeps saved phases
	lubyU  int64
	geom   int64
	reduce int
}

func parProfileFor(idx int) parProfile {
	p := parProfile{seed: exec.DeriveSeed(parSeedMaster, idx)}
	switch (idx - 1) % 4 {
	case 0:
		p.lubyU, p.reduce = 32, 1500
		if idx == 1 {
			// One helper keeps saved phases: pure restart-policy
			// diversity against the parent.
			p.seed = 0
		}
	case 1:
		p.geom, p.reduce = 100, 2500
	case 2:
		p.lubyU, p.reduce = 256, 1000
	default:
		p.geom, p.reduce = 64, 3000
	}
	return p
}

// cloneForWorker deep-copies the solver's search state for a portfolio
// helper. The clone shares only state that search never writes: the
// frozen/eliminated maps and the eliminated-clause store (helpers never
// Simplify, AddClause or NewVar). Stats start at zero so helper work is
// accounted separately (see Solver.Stats).
func (s *Solver) cloneForWorker() *Solver {
	c := &Solver{
		clauses:       append([]cref(nil), s.clauses...),
		learnts:       append([]cref(nil), s.learnts...),
		numLocal:      s.numLocal,
		assign:        append([]int8(nil), s.assign...),
		level:         append([]int32(nil), s.level...),
		reason:        append([]cref(nil), s.reason...),
		polarity:      append([]bool(nil), s.polarity...),
		activity:      append([]float64(nil), s.activity...),
		seen:          make([]bool, len(s.seen)),
		trail:         append([]Lit(nil), s.trail...),
		trailLim:      append([]int(nil), s.trailLim...),
		qhead:         s.qhead,
		varInc:        s.varInc,
		claInc:        s.claInc,
		ok:            s.ok,
		numVars:       s.numVars,
		reduceBase:    s.reduceBase,
		frozen:        s.frozen,
		elim:          s.elim,
		elimCl:        s.elimCl,
		elimLits:      s.elimLits,
		elimEnds:      s.elimEnds,
		simpMark:      s.simpMark,
		simpTrailMark: s.simpTrailMark,
	}
	c.ar.data = append([]uint32(nil), s.ar.data...)
	c.ar.wasted = s.ar.wasted
	c.watches = make([][]watcher, len(s.watches))
	for i, ws := range s.watches {
		if len(ws) > 0 {
			c.watches[i] = append([]watcher(nil), ws...)
		}
	}
	c.order.s = c
	c.order.heap = append([]int(nil), s.order.heap...)
	c.order.indices = append([]int(nil), s.order.indices...)
	return c
}

// importShared adds one foreign learnt clause at root level. CDCL
// learnts are implied by the clause database alone (assumptions enter
// search as decisions, never as facts), so importing across workers
// with different assumptions-in-flight is sound. The clause is
// normalized against the importer's root assignment first.
func (s *Solver) importShared(lits []Lit, lbd int) {
	if !s.ok {
		return
	}
	out := s.addBuf[:0]
	for _, l := range lits {
		switch s.valueLit(l) {
		case lTrue:
			s.addBuf = out[:0]
			return
		case lFalse:
			continue
		}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
	case 1:
		s.uncheckedEnqueue(out[0], crefUndef)
		if s.propagate() != crefUndef {
			s.ok = false
		}
	default:
		if lbd > len(out) {
			lbd = len(out)
		}
		s.attachLearnt(out, lbd)
	}
	s.addBuf = out[:0]
}

// parReport is one helper's barrier message.
type parReport struct {
	status    Status
	exhausted bool
	rootUnsat bool // s.ok turned false: refutation independent of assumptions
	out       shareSnap
}

// parHelper is one diversified clone plus its coordination channels.
// The helper goroutine owns its solver exclusively between a start send
// and the matching report receive; the channel pair establishes the
// happens-before edges that let the coordinator read helper state at
// barriers.
type parHelper struct {
	idx   int
	s     *Solver
	run   *parRun
	start chan []shareSnap
	rep   chan parReport
	done  bool
}

func (h *parHelper) loop() {
	for snaps := range h.start {
		h.s.cancelUntil(0)
		for _, sn := range snaps {
			off := 0
			for i, n := range sn.lens {
				h.s.importShared(sn.lits[off:off+int(n)], int(sn.lbds[i]))
				off += int(n)
			}
		}
		var st Status
		if !h.s.ok {
			st = Unsat
		} else {
			st = h.run.step(parEpochConflicts)
		}
		h.rep <- parReport{
			status:    st,
			exhausted: st == Unknown && h.s.exhausted,
			rootUnsat: !h.s.ok,
			out:       h.s.parShare.take(),
		}
		if st != Unknown || h.s.exhausted {
			return
		}
	}
}

// SolveParallel runs the solver under the given assumptions on a
// deterministic clause-sharing portfolio of the given width. workers <=
// 1 (and every configuration parallelism cannot serve: a conflict
// budget in force, a formula below the size floor, an already-broken
// database) is byte-for-byte Solve. The ctx bounds the portfolio in
// addition to any SetContext hook already installed; a pre-cancelled
// ctx returns Unknown immediately.
//
// The status and (on Sat) the model are identical to Solve's at every
// worker count — see the package commentary at the top of this file for
// the argument. Only the wall-clock and the work counters (Stats
// includes helper effort) vary with workers.
func (s *Solver) SolveParallel(ctx context.Context, workers int, assumps ...Lit) Status {
	if !s.ok {
		return Unsat
	}
	if workers <= 1 || s.limited || len(s.clauses) < parMinClauses {
		return s.Solve(assumps...)
	}
	for _, a := range assumps {
		if s.elim[a.Var()] {
			panic("sat: assumption over eliminated variable (freeze it before Simplify)")
		}
	}
	if s.cancelled() || (ctx != nil && ctx.Err() != nil) {
		s.exhausted = true
		return Unknown
	}
	s.cancelUntil(0)
	if s.propagate() != crefUndef {
		s.ok = false
		return Unsat
	}
	s.exhausted = false

	helpers := make([]*parHelper, workers-1)
	for i := range helpers {
		idx := i + 1
		hs := s.cloneForWorker()
		p := parProfileFor(idx)
		if p.seed != 0 {
			hs.SetRandomPolarity(p.seed)
		}
		hs.reduceBase = p.reduce
		hs.SetContext(ctx)
		hs.parShare = &shareBuf{maxLBD: parShareLBD, cap: parShareCap}
		run := newParRun(hs, assumps)
		run.lubyU, run.geom = p.lubyU, p.geom
		helpers[i] = &parHelper{
			idx:   idx,
			s:     hs,
			run:   run,
			start: make(chan []shareSnap, 1),
			rep:   make(chan parReport, 1),
		}
		go helpers[i].loop()
	}
	defer func() {
		for _, h := range helpers {
			if !h.done {
				s.parStats = s.parStats.Add(h.s.stats)
			}
			close(h.start)
		}
	}()

	s.parShare = &shareBuf{maxLBD: parShareLBD, cap: parShareCap}
	defer func() { s.parShare = nil }()
	prun := newParRun(s, assumps)

	retire := func(h *parHelper) {
		h.done = true
		s.parStats = s.parStats.Add(h.s.stats)
	}

	result := Unknown
	winner := -1
	rootUnsat := false
	prev := make([]shareSnap, workers)
	for result == Unknown {
		nActive := 0
		for _, h := range helpers {
			if h.done {
				continue
			}
			var snaps []shareSnap
			for w := 0; w < workers; w++ {
				if w != h.idx && prev[w].count() > 0 {
					snaps = append(snaps, prev[w])
				}
			}
			h.start <- snaps
			nActive++
		}
		if nActive == 0 {
			// Every helper has retired: the portfolio degenerates to the
			// parent, which now just finishes its sequential search.
			pst := prun.step(1 << 62)
			result, winner = pst, 0
			break
		}
		var t0 time.Time
		if s.hParEpoch != nil {
			t0 = time.Now()
		}
		pst := prun.step(parEpochConflicts)
		next := make([]shareSnap, workers)
		next[0] = s.parShare.take()
		reports := make([]parReport, workers)
		for _, h := range helpers {
			if h.done {
				continue
			}
			r := <-h.rep
			reports[h.idx] = r
			next[h.idx] = r.out
		}
		if s.cParEpochs != nil {
			s.cParEpochs.Inc()
			shared := int64(0)
			for _, sn := range next {
				shared += int64(sn.count())
			}
			s.cParShared.Add(shared)
			s.hParEpoch.RecordDuration(time.Since(t0))
		}
		// Winner rule: earliest finishing epoch, lowest worker index —
		// the parent is worker 0 and is examined first.
		if pst != Unknown {
			result, winner = pst, 0
			break
		}
		if s.exhausted {
			break // stop callback or context; result stays Unknown
		}
		for _, h := range helpers {
			if h.done {
				continue
			}
			r := reports[h.idx]
			switch {
			case r.status == Unsat:
				if result == Unknown {
					result, winner, rootUnsat = Unsat, h.idx, r.rootUnsat
				}
				retire(h)
			case r.status == Sat || r.exhausted:
				// A helper model is never adopted (the parent's is the
				// canonical one); an exhausted helper cannot continue.
				retire(h)
			}
		}
		if result != Unknown {
			break
		}
		if ctx != nil && ctx.Err() != nil {
			s.exhausted = true
			break
		}
		prev = next
	}

	switch result {
	case Sat:
		// Only the parent reaches here; mirror Solve's model handling.
		s.model = append(s.model[:0], s.assign...)
		for i, a := range s.model {
			if a == lUndef {
				s.model[i] = lFalse
			}
		}
		s.modelDirty = len(s.elimCl) > 0
	case Unsat:
		if winner > 0 && rootUnsat {
			// The helper refuted the formula itself (not just the
			// assumptions); the parent database is unsatisfiable too.
			s.ok = false
		}
	default:
		s.exhausted = true
	}
	if winner > 0 && s.cParWinner != nil {
		s.cParWinner.Inc()
	}
	s.cancelUntil(0)
	return result
}
