package obfuslock

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestFacadeRoundTrip(t *testing.T) {
	c := SmallBenchmarks()[1].Build() // small adder/comparator
	opt := DefaultOptions()
	opt.TargetSkewBits = 8
	opt.Seed = 1
	opt.AllowDirect = false
	res, err := Lock(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Locked.Verify(c); err != nil {
		t.Fatal(err)
	}
	// Locked netlist serializes and parses.
	var buf bytes.Buffer
	if err := WriteBench(&buf, res.Locked.Enc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := Equivalent(res.Locked.Enc, back)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("bench round trip changed the locked netlist")
	}
}

func TestFacadeAttackAndPPA(t *testing.T) {
	c := SmallBenchmarks()[1].Build()
	opt := DefaultOptions()
	opt.TargetSkewBits = 8
	opt.Seed = 2
	opt.AllowDirect = false
	res, err := Lock(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	aopt := DefaultAttackOptions()
	aopt.MaxIterations = 30
	satAttack, ok := AttackNamed("sat")
	if !ok {
		t.Fatal("sat attack missing from registry")
	}
	r := satAttack.Run(context.Background(), res.Locked, NewOracle(c), aopt)
	if r.Exact {
		t.Fatalf("8-bit lock fell in %d iterations", r.Iterations)
	}
	ov := ComparePPA(AnalyzePPA(c, 8, 1), AnalyzePPA(res.Locked.Enc, 8, 1))
	if ov.AreaPct < 0 {
		t.Fatalf("negative area overhead: %+v", ov)
	}
}

func TestFacadeBaselines(t *testing.T) {
	c := SmallBenchmarks()[2].Build() // small multiplier
	for name, opt := range map[string]SchemeOptions{
		"rll":     {KeyBits: 8, Seed: 1},
		"sarlock": {ProtWidth: 8, Seed: 1},
		"antisat": {ProtWidth: 6, Seed: 1},
		"ttlock":  {ProtWidth: 8, Seed: 1},
		"sfll-hd": {ProtWidth: 8, HammingDistance: 1, Seed: 1},
	} {
		l, err := LockWith(context.Background(), name, c, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := l.Verify(c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFacadeSkewness(t *testing.T) {
	c := NewCircuit()
	lits := make([]Lit, 0)
	_ = lits
	in := c.AddInputs(12)
	c.AddOutput(c.AndN(in...), "f")
	bits := SkewnessBits(c, 0, 1)
	if bits < 9 || bits > 15 {
		t.Fatalf("AND12 skewness = %.1f bits, want ~12", bits)
	}
}

func TestBenchmarksCatalog(t *testing.T) {
	names := []string{}
	for _, b := range Benchmarks() {
		names = append(names, b.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"s9234", "c7552", "c6288", "max", "square"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("catalog missing %s: %v", want, names)
		}
	}
}
