package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// discard is a Sink that drops everything. It exists so callers can hold
// an *enabled* tracer (for pprof labels) without writing a stream.
type discard struct{}

func (discard) SpanStart(SpanData)                       {}
func (discard) SpanEnd(SpanData)                         {}
func (discard) Event(uint64, string, time.Time, []Field) {}
func (discard) Metric(MetricSnapshot)                    {}

// Discard is a sink that drops the whole stream.
var Discard Sink = discard{}

// Multi fans the stream out to several sinks. Nil entries are skipped.
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

func (m multiSink) SpanStart(sd SpanData) {
	for _, s := range m {
		s.SpanStart(sd)
	}
}

func (m multiSink) SpanEnd(sd SpanData) {
	for _, s := range m {
		s.SpanEnd(sd)
	}
}

func (m multiSink) Event(id uint64, name string, at time.Time, fields []Field) {
	for _, s := range m {
		s.Event(id, name, at, fields)
	}
}

func (m multiSink) Metric(ms MetricSnapshot) {
	for _, s := range m {
		s.Metric(ms)
	}
}

// JSONL writes the stream as JSON Lines. One object per line, four
// record shapes (see DESIGN.md "Observability" for the schema):
//
//	{"type":"span_start","id":2,"parent":1,"name":"lock.build_l","ts":"…"}
//	{"type":"span_end","id":2,"parent":1,"name":"lock.build_l","ts":"…","dur_us":8123,"fields":{…}}
//	{"type":"event","span":2,"name":"attach","ts":"…","fields":{"gain_bits":2.1}}
//	{"type":"metric","name":"sat.conflicts","kind":"counter","value":512}
//
// Timestamps are RFC3339Nano; durations are integer microseconds. JSONL
// is safe for concurrent use.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

// NewJSONL returns a JSON-Lines sink writing to w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

func (j *JSONL) line(build func([]byte) []byte) {
	j.mu.Lock()
	j.buf = build(j.buf[:0])
	j.buf = append(j.buf, '\n')
	j.w.Write(j.buf)
	j.mu.Unlock()
}

func appendFields(b []byte, fields []Field) []byte {
	if len(fields) == 0 {
		return b
	}
	b = append(b, `,"fields":{`...)
	for i, f := range fields {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, f.Key)
		b = append(b, ':')
		switch f.kind {
		case kindInt:
			b = strconv.AppendInt(b, f.num, 10)
		case kindFloat:
			b = appendJSONFloat(b, f.fl)
		case kindStr:
			b = strconv.AppendQuote(b, f.str)
		case kindBool:
			b = strconv.AppendBool(b, f.num != 0)
		case kindDur:
			b = strconv.AppendInt(b, f.num/int64(time.Microsecond), 10)
		}
	}
	return append(b, '}')
}

// appendJSONFloat renders a float as valid JSON (Inf/NaN are not JSON
// numbers; render them as strings).
func appendJSONFloat(b []byte, v float64) []byte {
	if v != v || v > 1e308 || v < -1e308 {
		return strconv.AppendQuote(b, fmt.Sprintf("%g", v))
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendTS(b []byte, at time.Time) []byte {
	b = append(b, `,"ts":`...)
	return at.AppendFormat(append(b, '"'), time.RFC3339Nano+`"`)
}

func (j *JSONL) spanLine(typ string, sd SpanData, withDur bool) {
	j.line(func(b []byte) []byte {
		b = append(b, `{"type":"`...)
		b = append(b, typ...)
		b = append(b, `","id":`...)
		b = strconv.AppendUint(b, sd.ID, 10)
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, sd.Parent, 10)
		b = append(b, `,"name":`...)
		b = strconv.AppendQuote(b, sd.Name)
		b = appendTS(b, sd.Start)
		if withDur {
			b = append(b, `,"dur_us":`...)
			b = strconv.AppendInt(b, int64(sd.Duration/time.Microsecond), 10)
		}
		b = appendFields(b, sd.Fields)
		return append(b, '}')
	})
}

// SpanStart implements Sink.
func (j *JSONL) SpanStart(sd SpanData) { j.spanLine("span_start", sd, false) }

// SpanEnd implements Sink.
func (j *JSONL) SpanEnd(sd SpanData) { j.spanLine("span_end", sd, true) }

// Event implements Sink.
func (j *JSONL) Event(id uint64, name string, at time.Time, fields []Field) {
	j.line(func(b []byte) []byte {
		b = append(b, `{"type":"event","span":`...)
		b = strconv.AppendUint(b, id, 10)
		b = append(b, `,"name":`...)
		b = strconv.AppendQuote(b, name)
		b = appendTS(b, at)
		b = appendFields(b, fields)
		return append(b, '}')
	})
}

// Metric implements Sink.
func (j *JSONL) Metric(ms MetricSnapshot) {
	j.line(func(b []byte) []byte {
		b = append(b, `{"type":"metric","name":`...)
		b = strconv.AppendQuote(b, ms.Name)
		b = append(b, `,"kind":`...)
		b = strconv.AppendQuote(b, ms.Kind)
		if ms.Kind == "histogram" {
			b = append(b, `,"count":`...)
			b = strconv.AppendInt(b, ms.Count, 10)
			b = append(b, `,"sum":`...)
			b = appendJSONFloat(b, ms.Sum)
			b = append(b, `,"min":`...)
			b = appendJSONFloat(b, ms.Min)
			b = append(b, `,"max":`...)
			b = appendJSONFloat(b, ms.Max)
			b = append(b, `,"p50":`...)
			b = appendJSONFloat(b, ms.P50)
			b = append(b, `,"p90":`...)
			b = appendJSONFloat(b, ms.P90)
			b = append(b, `,"p99":`...)
			b = appendJSONFloat(b, ms.P99)
		} else {
			b = append(b, `,"value":`...)
			b = appendJSONFloat(b, ms.Value)
		}
		return append(b, '}')
	})
}

// CollectedEvent is one event captured by a Collector.
type CollectedEvent struct {
	SpanID uint64
	Name   string
	At     time.Time
	Fields map[string]any
}

// Collector is an in-memory Sink for tests: it records every span
// (keyed by completion), event and metric.
type Collector struct {
	mu      sync.Mutex
	started []SpanData
	ended   []SpanData
	events  []CollectedEvent
	metrics []MetricSnapshot
}

// NewCollector returns an empty in-memory sink.
func NewCollector() *Collector { return &Collector{} }

// SpanStart implements Sink.
func (c *Collector) SpanStart(sd SpanData) {
	c.mu.Lock()
	sd.Fields = append([]Field(nil), sd.Fields...)
	c.started = append(c.started, sd)
	c.mu.Unlock()
}

// SpanEnd implements Sink.
func (c *Collector) SpanEnd(sd SpanData) {
	c.mu.Lock()
	sd.Fields = append([]Field(nil), sd.Fields...)
	c.ended = append(c.ended, sd)
	c.mu.Unlock()
}

// Event implements Sink.
func (c *Collector) Event(id uint64, name string, at time.Time, fields []Field) {
	fm := make(map[string]any, len(fields))
	for _, f := range fields {
		switch f.kind {
		case kindInt:
			fm[f.Key] = f.num
		case kindFloat:
			fm[f.Key] = f.fl
		case kindStr:
			fm[f.Key] = f.str
		case kindBool:
			fm[f.Key] = f.num != 0
		case kindDur:
			fm[f.Key] = time.Duration(f.num)
		}
	}
	c.mu.Lock()
	c.events = append(c.events, CollectedEvent{SpanID: id, Name: name, At: at, Fields: fm})
	c.mu.Unlock()
}

// Metric implements Sink.
func (c *Collector) Metric(ms MetricSnapshot) {
	c.mu.Lock()
	c.metrics = append(c.metrics, ms)
	c.mu.Unlock()
}

// Spans returns the completed spans in end order.
func (c *Collector) Spans() []SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanData(nil), c.ended...)
}

// Started returns the started spans in start order.
func (c *Collector) Started() []SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanData(nil), c.started...)
}

// Events returns the captured events in emission order.
func (c *Collector) Events() []CollectedEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CollectedEvent(nil), c.events...)
}

// EventsNamed returns the captured events with the given name.
func (c *Collector) EventsNamed(name string) []CollectedEvent {
	var out []CollectedEvent
	for _, e := range c.Events() {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// SpanNamed returns the first completed span with the given name.
func (c *Collector) SpanNamed(name string) (SpanData, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sd := range c.ended {
		if sd.Name == name {
			return sd, true
		}
	}
	return SpanData{}, false
}

// MetricsSnapshot returns the captured metrics.
func (c *Collector) MetricsSnapshot() []MetricSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]MetricSnapshot(nil), c.metrics...)
}

// Progress renders the stream as a live single-line status on w
// (intended for a terminal's stderr): the path of open spans plus the
// latest event, throttled to one repaint per interval. It is what
// cmd/attack -progress and cmd/obfuslock -progress show.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	interval time.Duration
	last     time.Time
	open     []openSpan     // open spans in start order; ended ones tombstoned in place
	idx      map[uint64]int // span ID -> index in open
	dead     int            // tombstones currently in open
	lastLen  int
}

// openSpan tracks one live span by ID: with parallel sweeps several spans
// of the same name are open at once, so removal must match the ID, not
// the name. An ID of 0 marks a tombstone (real span IDs start at 1).
type openSpan struct {
	id   uint64
	name string
}

// NewProgress returns a live progress sink repainting at most every
// 100 ms.
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w, interval: 100 * time.Millisecond, idx: make(map[uint64]int)}
}

func (p *Progress) paint(tail string, force bool) {
	now := time.Now()
	if !force && now.Sub(p.last) < p.interval {
		return
	}
	p.last = now
	line := ""
	for _, o := range p.open {
		if o.id == 0 {
			continue
		}
		if line != "" {
			line += ">"
		}
		line += o.name
	}
	if tail != "" {
		if line != "" {
			line += " "
		}
		line += tail
	}
	pad := ""
	for len(line)+len(pad) < p.lastLen {
		pad += " "
	}
	p.lastLen = len(line)
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
}

// SpanStart implements Sink.
func (p *Progress) SpanStart(sd SpanData) {
	p.mu.Lock()
	if p.idx == nil {
		p.idx = make(map[uint64]int)
	}
	p.idx[sd.ID] = len(p.open)
	p.open = append(p.open, openSpan{id: sd.ID, name: sd.Name})
	p.paint("", true)
	p.mu.Unlock()
}

// SpanEnd implements Sink. Removal is O(1) amortized: the ended span is
// found through the ID index and tombstoned in place (a linear delete
// per completion made high-fan-out sweeps quadratic); trailing
// tombstones are trimmed eagerly and interior ones compacted once they
// outnumber live entries.
func (p *Progress) SpanEnd(sd SpanData) {
	p.mu.Lock()
	if i, ok := p.idx[sd.ID]; ok {
		delete(p.idx, sd.ID)
		p.open[i] = openSpan{}
		p.dead++
		for n := len(p.open); n > 0 && p.open[n-1].id == 0; n = len(p.open) {
			p.open = p.open[:n-1]
			p.dead--
		}
		if p.dead > len(p.open)-p.dead {
			p.compact()
		}
	}
	p.paint(fmt.Sprintf("(%s done in %v)", sd.Name, sd.Duration.Round(time.Millisecond)), true)
	p.mu.Unlock()
}

// compact rewrites open without tombstones and rebuilds the ID index.
// Called with p.mu held.
func (p *Progress) compact() {
	live := p.open[:0]
	for _, o := range p.open {
		if o.id != 0 {
			p.idx[o.id] = len(live)
			live = append(live, o)
		}
	}
	p.open = live
	p.dead = 0
}

// Event implements Sink.
func (p *Progress) Event(id uint64, name string, at time.Time, fields []Field) {
	p.mu.Lock()
	tail := name
	for _, f := range fields {
		switch f.kind {
		case kindInt:
			tail += fmt.Sprintf(" %s=%d", f.Key, f.num)
		case kindFloat:
			tail += fmt.Sprintf(" %s=%.2f", f.Key, f.fl)
		case kindStr:
			tail += fmt.Sprintf(" %s=%s", f.Key, f.str)
		case kindBool:
			tail += fmt.Sprintf(" %s=%v", f.Key, f.num != 0)
		case kindDur:
			tail += fmt.Sprintf(" %s=%v", f.Key, time.Duration(f.num).Round(time.Millisecond))
		}
	}
	p.paint(tail, false)
	p.mu.Unlock()
}

// Metric implements Sink.
func (p *Progress) Metric(MetricSnapshot) {}

// Done finishes the live line with a newline.
func (p *Progress) Done() {
	p.mu.Lock()
	fmt.Fprintln(p.w)
	p.mu.Unlock()
}
