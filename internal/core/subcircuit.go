package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"obfuslock/internal/aig"
	"obfuslock/internal/cnf"
	"obfuslock/internal/count"
	"obfuslock/internal/exec"
	"obfuslock/internal/locking"
	"obfuslock/internal/memo"
	"obfuslock/internal/obs"
	"obfuslock/internal/rewrite"
	"obfuslock/internal/sat"
	"obfuslock/internal/simp"
)

// selectCut walks backwards from the protected output's root, repeatedly
// expanding the deepest frontier node into its fanins, until the frontier
// is wide enough AND the number of reachable patterns on it is exponential
// in its width (checked with the approximate model counter). Primary
// inputs stop the expansion (a PI frontier is trivially fully reachable).
func selectCut(ctx context.Context, g *aig.AIG, po int, minCut int, seed int64, tr *obs.Tracer, so simp.Options, cache *memo.Cache) ([]uint32, float64, error) {
	lv, _ := g.Levels()
	root := g.Output(po)
	inFrontier := map[uint32]bool{}
	var frontier []uint32
	add := func(v uint32) {
		if v != 0 && !inFrontier[v] {
			inFrontier[v] = true
			frontier = append(frontier, v)
		}
	}
	if g.Op(root.Var()) == aig.OpInput {
		return nil, 0, fmt.Errorf("core: protected output is a primary input")
	}
	for _, f := range g.Fanins(root.Var()) {
		add(f.Var())
	}
	expand := func() bool {
		// Pick the deepest expandable frontier node.
		best := -1
		for i, v := range frontier {
			if g.Op(v) == aig.OpInput {
				continue
			}
			if best < 0 || lv[v] > lv[frontier[best]] {
				best = i
			}
		}
		if best < 0 {
			return false // all PIs
		}
		v := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)
		delete(inFrontier, v)
		for _, f := range g.Fanins(v) {
			add(f.Var())
		}
		return true
	}
	const gamma = 0.7
	copt := count.DefaultOptions()
	copt.Seed = seed
	copt.Trials = 3
	copt.Trace = tr
	copt.Simp = so
	copt.Cache = cache
	for round := 0; ; round++ {
		for len(frontier) < minCut {
			if !expand() {
				break
			}
		}
		// All-PI frontier: fully reachable by definition.
		allPI := true
		for _, v := range frontier {
			if g.Op(v) != aig.OpInput {
				allPI = false
				break
			}
		}
		cutLits := make([]aig.Lit, len(frontier))
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		for i, v := range frontier {
			cutLits[i] = aig.MkLit(v, false)
		}
		if allPI {
			return frontier, float64(len(frontier)), nil
		}
		r := count.ReachablePatterns(ctx, g, cutLits, copt)
		if r.Decided && !math.IsInf(r.Log2Count, -1) && r.Log2Count >= gamma*float64(len(frontier)) {
			return frontier, r.Log2Count, nil
		}
		// Not reachable enough: push the cut deeper.
		progressed := false
		for i := 0; i < 4; i++ {
			if expand() {
				progressed = true
			}
		}
		if !progressed {
			return frontier, float64(len(frontier)), nil // PI cut fallback
		}
		if round > 64 {
			return nil, 0, fmt.Errorf("core: no sufficiently reachable cut found")
		}
	}
}

// lockSubCircuit locks only the transitive fan-out cone of a selected cut:
// the sub-circuit between the cut and the protected output is double-flip
// locked over the cut variables, and the result is stitched back into the
// full netlist. Attackers must reason through the input logic to drive cut
// patterns, which the reachability condition makes expensive.
func lockSubCircuit(ctx context.Context, c *aig.AIG, opt Options, sp *obs.Span) (*Result, error) {
	po := opt.ProtectedOutput
	if po < 0 {
		po = pickProtectedOutput(c)
	}
	if po >= c.NumOutputs() {
		return nil, fmt.Errorf("core: protected output %d out of range", po)
	}
	minCut := opt.SubCircuitMinCut
	if minCut <= 0 {
		minCut = int(opt.TargetSkewBits) + 8
	}
	csp := sp.Span("lock.select_cut", obs.Int("min_cut", int64(minCut)))
	cut, reach, err := selectCut(ctx, c, po, minCut, opt.Seed, opt.Trace, opt.Simp, opt.Cache)
	if err != nil {
		csp.End(obs.Str("error", err.Error()))
		return nil, err
	}
	csp.End(obs.Int("cut_width", int64(len(cut))), obs.Float("log2_reach", reach))
	sub, bnd := c.ExtractBounded([]aig.Lit{c.Output(po)}, cut)

	// The chain is built over the free cut space, but the flips only ever
	// fire on cut patterns the input logic can actually produce. A chain
	// whose (tiny) on-set misses the reachable set — or is shift-invariant
	// over it — has dead key bits: the correct key verifies, yet flipping
	// those bits corrupts nothing. Count the provably dead bits of each
	// candidate chain (bit j is dead when no input x gives
	// L(cut(x)) ≠ L(cut(x) ⊕ e_j)) and retry the construction under fresh
	// seeds until a fully effective chain appears, keeping the best one.
	subOpt := opt
	subOpt.SubCircuit = false
	subOpt.AllowDirect = false
	subOpt.ProtectedOutput = 0
	var (
		subRes   *Result
		lockFn   *aig.AIG
		bestDead = -1
	)
	const chainAttempts = 4
	for attempt := int64(0); attempt < chainAttempts; attempt++ {
		if attempt > 0 {
			subOpt.Seed = opt.Seed + 104729*attempt
		}
		r, rerr := lockDoubleFlip(ctx, sub, subOpt, sp)
		if rerr != nil {
			// A stalled seed is only fatal when no attempt built anything.
			if attempt == chainAttempts-1 && subRes == nil {
				return nil, fmt.Errorf("core: sub-circuit lock: %w", rerr)
			}
			sp.Event("lock.sub_retry",
				obs.Int("attempt", attempt+1), obs.Str("error", rerr.Error()))
			continue
		}
		dead := 0
		if r.LockingFunction != nil {
			dead = deadKeyBits(ctx, c, bnd, r.LockingFunction, opt.Simp, opt.Cache)
		}
		if bestDead < 0 || dead < bestDead {
			subRes, lockFn, bestDead = r, composeSubLockingFn(c, bnd, r.LockingFunction), dead
		}
		if dead == 0 {
			break
		}
		sp.Event("lock.sub_retry",
			obs.Int("attempt", attempt+1), obs.Int("dead_key_bits", int64(dead)))
	}
	subL := subRes.Locked

	// Stitch: rebuild C, append key inputs, replace the protected output
	// by the locked sub-circuit evaluated on the cut signals.
	enc := c.Copy()
	enc.Name = c.Name + "_obfuslock"
	ks := make([]aig.Lit, subL.KeyBits)
	for i := range ks {
		ks[i] = enc.AddInput(locking.KeyName(i))
	}
	piMap := make([]aig.Lit, len(bnd)+subL.KeyBits)
	for i, v := range bnd {
		piMap[i] = aig.MkLit(v, false)
	}
	copy(piMap[len(bnd):], ks)
	newOut := enc.ImportCone(subL.Enc, piMap, []aig.Lit{subL.Enc.Output(0)})[0]
	enc.SetOutput(po, newOut)
	encC := enc.Cleanup()
	if opt.FinalRewrite {
		encC = rewrite.FunctionalRewrite(encC, rewrite.ObfuscationOptions(opt.Seed+9))
	}

	l := &locking.Locked{
		Scheme:    "obfuslock",
		Enc:       encC,
		NumInputs: c.NumInputs(),
		KeyBits:   subL.KeyBits,
		Key:       subL.Key,
	}
	rep := subRes.Report
	rep.Mode = "sub-circuit"
	rep.ProtectedOutput = po
	rep.CutWidth = len(cut)
	rep.CutLog2Reach = reach
	rep.OrigNodes = c.NumNodes()
	rep.EncNodes = encC.NumNodes()

	return &Result{Locked: l, Report: rep, LockingFunction: lockFn}, nil
}

// composeSubLockingFn builds the locking-function reference over the full
// inputs, L(cut(x)), from the sub-circuit's locking function (over the cut
// variables bnd of c). Returns nil when subLF is nil.
func composeSubLockingFn(c *aig.AIG, bnd []uint32, subLF *aig.AIG) *aig.AIG {
	if subLF == nil {
		return nil
	}
	lockFn := aig.New()
	xs := make([]aig.Lit, c.NumInputs())
	for i := range xs {
		xs[i] = lockFn.AddInput(c.InputName(i))
	}
	bndRoots := make([]aig.Lit, len(bnd))
	for i, v := range bnd {
		bndRoots[i] = aig.MkLit(v, false)
	}
	mappedBnd := lockFn.ImportCone(c, xs, bndRoots)
	lOut := lockFn.ImportCone(subLF, mappedBnd, []aig.Lit{subLF.Output(0)})
	lockFn.AddOutput(lOut[0], "L")
	return lockFn
}

// deadKeyBits counts the key bits of the sub lock that are ineffective
// through the cut: for support position j of subLF (the locking function
// over the cut variables bnd of c), some input x must satisfy
// L(cut(x)) ≠ L(cut(x) ⊕ e_j) — otherwise flipping that key bit never
// corrupts the shipped netlist. Only a proven UNSAT counts as dead; an
// exhausted budget or a cancelled context gives the bit the benefit of
// the doubt (a retry could not be validated any better).
func deadKeyBits(ctx context.Context, c *aig.AIG, bnd []uint32, subLF *aig.AIG, so simp.Options, cache *memo.Cache) int {
	if !cache.Enabled() {
		return deadKeyBitsCompute(ctx, c, bnd, subLF, so)
	}
	// The count is a pure function of the concrete netlists (the miters
	// follow exact node numbering), the cut and the preprocessing options:
	// the conflict budget is deterministic. Only context cancellation is
	// wall-clock-dependent, so a cancelled scan is never stored.
	key := fmt.Sprintf("core.deadbits|%016x|%016x|bnd=%v|simp=%t.%t.%t.%t.%d",
		c.StructuralHash(), subLF.StructuralHash(), bnd,
		so.Disable, so.NoVarElim, so.NoSubsume, so.NoVivify, so.InprocessEvery)
	var computed *int
	v, err := memo.Do(cache, key, func() (int, error) {
		n := deadKeyBitsCompute(ctx, c, bnd, subLF, so)
		computed = &n
		if ctx.Err() != nil {
			return 0, fmt.Errorf("core: cancelled dead-key-bit scan is not cacheable")
		}
		return n, nil
	})
	if computed != nil {
		return *computed
	}
	if err != nil {
		return deadKeyBitsCompute(ctx, c, bnd, subLF, so)
	}
	return v
}

func deadKeyBitsCompute(ctx context.Context, c *aig.AIG, bnd []uint32, subLF *aig.AIG, so simp.Options) int {
	g := aig.New()
	xs := make([]aig.Lit, c.NumInputs())
	for i := range xs {
		xs[i] = g.AddInput(c.InputName(i))
	}
	bndRoots := make([]aig.Lit, len(bnd))
	for i, v := range bnd {
		bndRoots[i] = aig.MkLit(v, false)
	}
	mapped := g.ImportCone(c, xs, bndRoots)
	root := []aig.Lit{subLF.Output(0)}
	base := g.ImportCone(subLF, mapped, root)[0]
	var miters []aig.Lit
	for _, p := range subLF.Support(root[0]) {
		shifted := append([]aig.Lit(nil), mapped...)
		shifted[p] = mapped[p].Not()
		alt := g.ImportCone(subLF, shifted, root)[0]
		miters = append(miters, g.Xor(base, alt))
	}
	s := sat.New()
	e := cnf.NewEncoder(g, s)
	lits := e.Encode(miters...)
	s.SetBudget(exec.WithConflicts(2_000_000).ConflictCap())
	s.SetContext(ctx)
	for _, l := range lits {
		s.FreezeLit(l)
	}
	simp.Apply(s, so, nil)
	dead := 0
	for _, l := range lits {
		if s.Solve(l) == sat.Unsat {
			dead++
		}
	}
	return dead
}
