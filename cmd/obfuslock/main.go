// Command obfuslock locks a gate-level netlist with ObfusLock.
//
// Usage:
//
//	obfuslock -in design.bench -skew 20 -out locked.bench -key key.txt
//	obfuslock -bench c6288 -skew 30 -sub -out locked.bench
//
// The locked netlist's key inputs are named k0, k1, ...; the correct key
// is written to -key as a 0/1 string (k0 first).
//
// The -verify proof runs SAT-swept by default (-sweep, -sweep-words; see
// DESIGN.md "Equivalence checking & SAT sweeping"); -sweep=false forces
// the monolithic miter.
//
// With -resilience <duration> the tool additionally attacks its own
// output: the oracle-guided SAT attack runs for that long as a
// self-check that the lock resists what it claims to resist (-dip-batch
// sets the attack's DIP batching width).
//
// Observability (see DESIGN.md "Observability"): -trace out.jsonl records
// every lock phase as a JSON-Lines span/event stream, -progress paints a
// live status line on stderr, -pprof prefix writes <prefix>.cpu.pprof
// during the run plus <prefix>.heap.pprof and <prefix>.allocs.pprof at
// exit, -debug-addr serves /metrics, /flight and /debug/pprof live (spans
// label the profiles), -ledger writes a ledger.json run record, and -v
// prints cache statistics after the run. Any telemetry flag arms a flight
// recorder whose recent-span ring is dumped to stderr on SIGQUIT or panic.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"obfuslock"
	"obfuslock/internal/cliflags"
)

func main() {
	in := flag.String("in", "", "input .bench netlist")
	benchName := flag.String("bench", "", "lock a built-in benchmark instead of -in")
	out := flag.String("out", "locked.bench", "output locked netlist")
	keyOut := flag.String("key", "key.txt", "output key file")
	skewBits := flag.Float64("skew", 20, "target skewness in bits")
	seed := flag.Int64("seed", 1, "construction seed")
	sub := flag.Bool("sub", false, "lock a sub-circuit behind a reachable cut (for large designs)")
	minCut := flag.Int("mincut", 0, "minimum sub-circuit cut width (0: derived)")
	output := flag.Int("po", -1, "protected output index (-1: deepest cone)")
	noRewrite := flag.Bool("norewrite", false, "skip the final functional-rewriting pass")
	verify := flag.Bool("verify", true, "prove key correctness by SAT equivalence checking")
	resilience := flag.Duration("resilience", 0, "after locking, self-check resilience by running the SAT attack with this time budget (0: skip)")
	sweep := flag.Bool("sweep", true, "use SAT sweeping (fraig) for the -verify equivalence proof")
	sweepWords := flag.Int("sweep-words", 8, "64-pattern signature words seeding the sweep's equivalence classes")

	var solver cliflags.Solver
	var cacheFlags cliflags.Cache
	var tele cliflags.Telemetry
	solver.Register(flag.CommandLine)
	cacheFlags.Register(flag.CommandLine)
	tele.Register(flag.CommandLine)

	verbose := flag.Bool("v", false, "print cache statistics after the run")
	workers := flag.Int("workers", 0, "GOMAXPROCS override for the construction (0: leave as is)")
	flag.Parse()

	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	if err := cacheFlags.Validate(cliflags.Visited(flag.CommandLine)); err != nil {
		fmt.Fprintln(os.Stderr, "obfuslock:", err)
		flag.Usage()
		os.Exit(2)
	}

	sess, err := tele.Start("obfuslock")
	if err != nil {
		fatal(err)
	}
	defer sess.Finish()
	sess.ArmFlightDump()
	defer sess.PanicDump()
	tracer := sess.Tracer

	cache, err := cacheFlags.Open(tracer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obfuslock:", err)
		flag.Usage()
		os.Exit(2)
	}
	defer cache.Close()

	// Ctrl-C / SIGTERM cancels the lock construction down to its SAT
	// solves instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var c *obfuslock.Circuit
	switch {
	case *benchName != "":
		found := false
		for _, b := range append(obfuslock.Benchmarks(), obfuslock.SmallBenchmarks()...) {
			if b.Name == *benchName {
				c = b.Build()
				found = true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("unknown benchmark %q (try benchgen -list)", *benchName))
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		c, err = obfuslock.ReadBench(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("one of -in or -bench is required"))
	}

	sopt := solver.SimpOptions()

	opt := obfuslock.DefaultOptions()
	opt.TargetSkewBits = *skewBits
	opt.Seed = *seed
	opt.SubCircuit = *sub
	opt.SubCircuitMinCut = *minCut
	opt.ProtectedOutput = *output
	opt.FinalRewrite = !*noRewrite
	opt.Trace = tracer
	opt.Simp = sopt
	opt.Cache = cache

	res, err := obfuslock.LockContext(ctx, c, opt)
	if err != nil {
		fatal(err)
	}
	rep := res.Report
	fmt.Printf("mode=%s key-bits=%d skew=%.1f bits L-nodes=%d attachments=%d\n",
		rep.Mode, rep.KeyBits, rep.SkewBits, rep.LockingNodes, rep.Attachments)
	fmt.Printf("nodes %d -> %d, runtime %v\n", rep.OrigNodes, rep.EncNodes, rep.Runtime)

	if *verify {
		vsp := tracer.Span("verify", obfuslock.TraceBool("sweep", *sweep))
		copt := obfuslock.DefaultCECOptions()
		if *sweep {
			copt = obfuslock.SweepCECOptions()
			copt.SweepWords = *sweepWords
		}
		copt.Seed = *seed
		copt.Budget.SatWorkers = solver.Workers()
		copt.Trace = tracer
		copt.Simp = sopt
		copt.Cache = cache
		err := res.Locked.VerifyWith(ctx, c, copt)
		if err != nil {
			vsp.End(obfuslock.TraceStr("error", err.Error()))
			fatal(fmt.Errorf("verification failed: %w", err))
		}
		vsp.End()
		fmt.Println("verified: correct key restores the original function")
	}

	if *resilience > 0 {
		rsp := tracer.Span("resilience", obfuslock.TraceDur("budget", *resilience))
		aopt := obfuslock.DefaultAttackOptions()
		aopt.Timeout = *resilience
		aopt.Seed = *seed
		aopt.Trace = tracer
		aopt.Simp = sopt
		aopt.DIPBatch = solver.DIPBatch
		aopt.SatWorkers = solver.Workers()
		aopt.Cache = cache
		a, _ := obfuslock.AttackNamed("sat")
		r := a.Run(ctx, res.Locked, obfuslock.NewOracle(c), aopt)
		rsp.End(obfuslock.TraceBool("key_found", r.Key != nil),
			obfuslock.TraceInt("iterations", int64(r.Iterations)),
			obfuslock.TraceInt("queries", int64(r.Queries)))
		if r.Key != nil {
			fmt.Printf("resilience: BROKEN — SAT attack recovered a key in %v (%d iterations, %d queries)\n",
				r.Runtime, r.Iterations, r.Queries)
		} else {
			fmt.Printf("resilience: survived a %v SAT attack (%d iterations, %d queries)\n",
				*resilience, r.Iterations, r.Queries)
		}
	}

	of, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := obfuslock.WriteBench(of, res.Locked.Enc); err != nil {
		fatal(err)
	}
	of.Close()

	key := make([]byte, res.Locked.KeyBits)
	for i, b := range res.Locked.Key {
		key[i] = '0'
		if b {
			key[i] = '1'
		}
	}
	if err := os.WriteFile(*keyOut, append(key, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s and %s\n", *out, *keyOut)

	if *verbose {
		printCacheStats(cache)
	}
	if err := sess.WriteLedger(cache); err != nil {
		fatal(err)
	}
	if sess.Ledger != nil {
		fmt.Printf("wrote %s\n", tele.LedgerPath)
	}
}

// printCacheStats surfaces the memo cache's own counters (available even
// without a tracer) for -v runs.
func printCacheStats(cache *obfuslock.Cache) {
	if cache == nil {
		fmt.Println("cache: disabled (use -cache)")
		return
	}
	st := cache.Stats()
	fmt.Printf("cache: hits=%d misses=%d hit-ratio=%.3f dedups=%d evictions=%d spills=%d disk-loads=%d bytes=%d\n",
		st.Hits, st.Misses, st.HitRatio(), st.InflightDedups, st.Evictions, st.Spills, st.DiskLoads, st.Bytes)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obfuslock:", err)
	os.Exit(1)
}
