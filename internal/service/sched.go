package service

import (
	"context"
	"errors"
	"sync"

	"obfuslock/internal/exec"
)

// TenantLimits is one tenant's admission quota and budget ceiling. The
// zero value is unlimited — quotas are opt-in per deployment.
type TenantLimits struct {
	// MaxActive caps the tenant's queued-plus-running jobs (0: no cap).
	// Submissions beyond it are rejected with 429/quota_exhausted.
	MaxActive int
	// MaxTimeoutMS caps (and, for jobs that ask for none, imposes) the
	// per-job wall clock in milliseconds (0: no ceiling).
	MaxTimeoutMS int64
	// MaxConflicts caps (and defaults) the per-solve conflict budget
	// (0: no ceiling).
	MaxConflicts int64
	// MaxSatWorkers caps the per-solve SAT portfolio width (0: no
	// ceiling). Widths are byte-identical in results, so clamping only
	// limits resource use, never changes answers.
	MaxSatWorkers int
}

// Clamp applies the ceiling to a requested budget: requests above a cap
// are lowered to it, and absent requests inherit the cap (an "up to"
// semantics — a tenant with a 30s ceiling gets 30s when asking for
// nothing, 10s when asking for 10s, 30s when asking for a minute).
func (tl TenantLimits) Clamp(b Budget) Budget {
	if tl.MaxTimeoutMS > 0 && (b.TimeoutMS == 0 || b.TimeoutMS > tl.MaxTimeoutMS) {
		b.TimeoutMS = tl.MaxTimeoutMS
	}
	if tl.MaxConflicts > 0 && (b.MaxConflicts == 0 || b.MaxConflicts > tl.MaxConflicts) {
		b.MaxConflicts = tl.MaxConflicts
	}
	if tl.MaxSatWorkers > 0 && (b.SatWorkers <= 0 || b.SatWorkers > tl.MaxSatWorkers) {
		b.SatWorkers = tl.MaxSatWorkers
	}
	return b
}

// Scheduler is the admission-controlled execution stage: an exec.Queue
// (bounded backlog, fail-fast saturation) fronted by per-tenant
// concurrency quotas. Admission and slot-release are explicit so the
// server can reserve a slot before the job exists and reclaim it exactly
// once, whatever path the job takes through its lifecycle.
type Scheduler struct {
	q   *exec.Queue
	mu  sync.Mutex
	act map[string]int
	lim map[string]TenantLimits
	def TenantLimits
}

// NewScheduler builds a scheduler with the given worker count (resolved
// like exec.Workers), backlog depth, default limits and per-tenant
// overrides. pm is the optional pool telemetry (queue-depth gauge,
// task latency histogram).
func NewScheduler(workers, depth int, def TenantLimits, overrides map[string]TenantLimits, pm exec.PoolMetrics) *Scheduler {
	lim := make(map[string]TenantLimits, len(overrides))
	for k, v := range overrides {
		lim[k] = v
	}
	return &Scheduler{
		q:   exec.NewQueue(workers, depth, pm),
		act: map[string]int{},
		lim: lim,
		def: def,
	}
}

// Limits resolves the tenant's effective limits.
func (s *Scheduler) Limits(tenant string) TenantLimits {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tl, ok := s.lim[tenant]; ok {
		return tl
	}
	return s.def
}

// Admit reserves one active-job slot for the tenant, or explains why it
// cannot: quota exhausted (429). The caller must pair every successful
// Admit with exactly one Release.
func (s *Scheduler) Admit(tenant string) *Error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tl, ok := s.lim[tenant]
	if !ok {
		tl = s.def
	}
	if tl.MaxActive > 0 && s.act[tenant] >= tl.MaxActive {
		return Errorf(CodeQuotaExhausted, "tenant %q has %d active jobs (quota %d)", tenant, s.act[tenant], tl.MaxActive)
	}
	s.act[tenant]++
	return nil
}

// Release returns a previously admitted slot.
func (s *Scheduler) Release(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.act[tenant] > 0 {
		s.act[tenant]--
	}
	if s.act[tenant] == 0 {
		delete(s.act, tenant)
	}
}

// Active reports the tenant's queued-plus-running job count.
func (s *Scheduler) Active(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.act[tenant]
}

// Submit hands a task to the queue, mapping the exec-layer errors onto
// the wire vocabulary: a full backlog is 429/queue_full backpressure, a
// draining queue is 503/draining.
func (s *Scheduler) Submit(task func()) *Error {
	switch err := s.q.Submit(task); {
	case err == nil:
		return nil
	case errors.Is(err, exec.ErrSaturated):
		return Errorf(CodeQueueFull, "job queue is full (%d tasks backlogged); retry later", s.q.Backlog())
	case errors.Is(err, exec.ErrDraining):
		return Errorf(CodeDraining, "server is draining; not admitting jobs")
	default:
		return Errorf(CodeFailed, "scheduler: %v", err)
	}
}

// Backlog reports how many accepted tasks await a worker.
func (s *Scheduler) Backlog() int { return s.q.Backlog() }

// Drain stops admission and waits (bounded by ctx) for the backlog and
// in-flight tasks to finish.
func (s *Scheduler) Drain(ctx context.Context) error { return s.q.Drain(ctx) }
