package obs

import (
	"sort"
	"sync"
)

// Registry is a global-free namespace of counters, gauges and
// histograms. Every Tracer owns one, but a Registry is also usable on
// its own (the planned obfuslockd daemon keeps one per job, with no
// span stream attached). Lookup takes a mutex; the returned metric
// handles are lock-free, so callers cache them outside hot loops. A nil
// *Registry is valid and inert: every lookup returns a nil handle whose
// methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h := r.hists[name]
	if h == nil {
		h = newHistogram(name)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every registered metric, sorted by name, so two
// snapshots of the same registry state are identical — the property the
// deterministic metrics.json and /metrics endpoints rely on.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]MetricSnapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, MetricSnapshot{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, MetricSnapshot{Name: name, Kind: "gauge", Value: g.Value()})
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()
	// Histogram snapshots walk 64 buckets each; take them outside the
	// registry lock so concurrent metric creation is never stalled.
	for _, h := range hists {
		out = append(out, h.metricSnapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
