package sim

import (
	"math"
	"math/rand"
	"testing"

	"obfuslock/internal/aig"
)

func buildXorChain(n int) *aig.AIG {
	g := aig.New()
	lits := g.AddInputs(n)
	acc := lits[0]
	for _, l := range lits[1:] {
		acc = g.Xor(acc, l)
	}
	g.AddOutput(acc, "parity")
	return g
}

func TestRunMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := aig.New()
	in := g.AddInputs(6)
	a := g.And(in[0], in[1].Not())
	b := g.Xor(a, in[2])
	c := g.Maj(b, in[3], in[4].Not())
	d := g.Or(c, in[5])
	g.AddOutput(d, "f")
	g.AddOutput(b.Not(), "g")

	inputs := RandomInputs(6, 2, 42)
	v := Run(g, inputs)
	for idx := 0; idx < 128; idx++ {
		pat := Pattern(inputs, idx)
		want := g.Eval(pat)
		for o := 0; o < g.NumOutputs(); o++ {
			got := v.Output(o)[idx/64]>>(idx%64)&1 == 1
			if got != want[o] {
				t.Fatalf("pattern %d output %d: sim %v eval %v", idx, o, got, want[o])
			}
		}
	}
	_ = rng
}

func TestOnesFraction(t *testing.T) {
	g := buildXorChain(8)
	v := RunRandom(g, 64, 1)
	// Parity of uniform bits is balanced.
	f := v.OnesFraction(g.Output(0))
	if math.Abs(f-0.5) > 0.05 {
		t.Fatalf("parity OnesFraction = %v, want ~0.5", f)
	}
	// AND of 4 inputs has probability 1/16.
	g2 := aig.New()
	in := g2.AddInputs(4)
	and4 := g2.AndN(in...)
	g2.AddOutput(and4, "f")
	v2 := RunRandom(g2, 256, 2)
	f2 := v2.OnesFraction(and4)
	if math.Abs(f2-1.0/16) > 0.02 {
		t.Fatalf("AND4 OnesFraction = %v, want ~1/16", f2)
	}
	// Complement literal flips the fraction.
	if math.Abs(v2.OnesFraction(and4.Not())-(1-f2)) > 1e-12 {
		t.Fatal("complement fraction inconsistent")
	}
}

func TestSignatureAndDistinguish(t *testing.T) {
	g := aig.New()
	in := g.AddInputs(4)
	f1 := g.And(in[0], in[1])
	f2 := g.And(in[1], in[0]) // same node due to strashing
	f3 := g.Or(in[0], in[1])
	g.AddOutput(f1, "")
	v := RunRandom(g, 8, 3)
	if v.Signature(f1) != v.Signature(f2) {
		t.Fatal("equal nodes, different signatures")
	}
	if v.Signature(f1) == v.Signature(f1.Not()) {
		t.Fatal("complement has same signature")
	}
	if _, diff := v.Distinguishes(f1, f2); diff {
		t.Fatal("identical literals distinguished")
	}
	idx, diff := v.Distinguishes(f1, f3)
	if !diff {
		t.Fatal("AND and OR not distinguished")
	}
	inputs := RandomInputs(4, 8, 3)
	_ = inputs
	// Replay: f1 and f3 must actually differ on that pattern index.
	pat := Pattern(RandomInputs(4, 8, 3), idx)
	g.SetOutput(0, f1)
	a := g.Eval(pat)[0]
	g.SetOutput(0, f3)
	b := g.Eval(pat)[0]
	if a == b {
		t.Fatal("reported distinguishing pattern does not distinguish")
	}
}

func TestToggleFraction(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	g.AddOutput(a, "f")
	// Alternating pattern toggles every step.
	in := [][]uint64{make([]uint64, 2)}
	in[0][0] = 0xAAAAAAAAAAAAAAAA
	in[0][1] = 0xAAAAAAAAAAAAAAAA
	v := Run(g, in)
	if tf := v.ToggleFraction(a.Var()); math.Abs(tf-1.0) > 1e-9 {
		t.Fatalf("alternating toggle fraction = %v, want 1", tf)
	}
	// Constant pattern never toggles.
	in2 := [][]uint64{{^uint64(0), ^uint64(0)}}
	v2 := Run(g, in2)
	if tf := v2.ToggleFraction(a.Var()); tf != 0 {
		t.Fatalf("constant toggle fraction = %v, want 0", tf)
	}
}

func TestCountOnes(t *testing.T) {
	if CountOnes([]uint64{0, ^uint64(0), 0xF}) != 68 {
		t.Fatal("CountOnes wrong")
	}
}

func TestRunPanicsOnMismatch(t *testing.T) {
	g := aig.New()
	g.AddInputs(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(g, make([][]uint64, 2))
}

func BenchmarkRunRandom(b *testing.B) {
	g := buildXorChain(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunRandom(g, 16, int64(i))
	}
}
